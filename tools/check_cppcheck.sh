#!/usr/bin/env bash
# cppcheck gate, run by the CI `cppcheck` job (and locally).
#
# Complements clang-tidy (tools/check_static.sh) with cppcheck's
# whole-program dataflow checks: out-of-bounds access, uninitialized
# reads, null dereference, resource leaks. Any finding of severity
# error/warning fails the run (--error-exitcode=1); style/performance
# noise is left to clang-tidy's curated profile.
#
# Suppressions live in tools/cppcheck-suppressions.txt and each one must
# carry a justification comment there -- an unexplained suppression is a
# review defect.
#
# Usage: tools/check_cppcheck.sh [build-dir]   (default: build)
#
# Prefers the compilation database ($build_dir/compile_commands.json) so
# cppcheck sees the real include paths and -D flags; without one it falls
# back to scanning the source tree with the project include roots, so the
# gate still runs on a fresh checkout. Skips with a notice when cppcheck
# itself is not installed (the container ships GCC only).
set -u
cd "$(dirname "$0")/.."

build_dir=${1:-build}

if ! command -v cppcheck >/dev/null 2>&1; then
    echo "check_cppcheck: cppcheck not installed; skipping" >&2
    exit 0
fi

common_args=(
    --enable=warning,portability
    --inline-suppr
    --suppressions-list=tools/cppcheck-suppressions.txt
    --error-exitcode=1
    --inconclusive
    --std=c++20
    --quiet
    # Parallel across the source set; cppcheck analyzes files
    # independently at this --enable level.
    -j "$(nproc 2>/dev/null || echo 2)"
)

if [ -f "$build_dir/compile_commands.json" ]; then
    cppcheck "${common_args[@]}" --project="$build_dir/compile_commands.json" \
        "--cppcheck-build-dir=$build_dir" || {
        echo "check_cppcheck: FAILED" >&2
        exit 1
    }
else
    echo "check_cppcheck: no $build_dir/compile_commands.json;" \
         "falling back to tree scan with project include roots" >&2
    includes=()
    for inc in src/*/include; do
        includes+=("-I$inc")
    done
    cppcheck "${common_args[@]}" "${includes[@]}" src tools examples || {
        echo "check_cppcheck: FAILED" >&2
        exit 1
    }
fi
echo "check_cppcheck: OK"
