// sag_cli — command-line front end for the library.
//
//   sag_cli generate --out scenario.json [--users N] [--bs N] [--field S]
//                    [--snr DB] [--seed K] [--bs-layout uniform|corners|center]
//                    [--propagation two_ray|log_distance|lora]
//                    [--shadowing-sigma DB] [--shadowing-seed K]
//       Generate a random scenario and write it as JSON. --propagation
//       log_distance adds seeded lognormal shadowing on the two-ray-
//       calibrated median; lora switches to the SF9/125kHz link-budget
//       preset (real-meter power scale, router/client profiles).
//
//   sag_cli solve --scenario scenario.json [--out result.json] [--csv tree.csv]
//                 [--coverage samc|iac|gac] [--grid SIZE] [--trace-json FILE]
//       Run the SAG pipeline (coverage + PRO + MBMC + UCPO) and report.
//       --trace-json writes the obs::RunReport (per-phase spans + solver
//       counters; schema in docs/OBSERVABILITY.md).
//
//   sag_cli verify --scenario scenario.json --result result.json
//       Re-check a previously produced deployment against its scenario.
//
//   sag_cli resilience --scenario scenario.json [--model independent|disc|degrade]
//                      [--fraction F] [--radius R] [--factor F] [--seed K]
//                      [--out report.json]
//       Solve the scenario, inject seeded RS failures, assess the damage,
//       run the staged self-healing repair, and report coverage survival
//       and power overhead (survivability JSON schema in docs/RESILIENCE.md).
//
//   sag_cli serve --scenario scenario.json --events stream.jsonl
//                 [--out report.jsonl] [--threads N] [--budget SECONDS]
//                 [--fault-stage P] [--fault-resolve P] [--fault-seed K]
//       Solve the scenario, then feed the JSONL churn stream through a
//       serve::Session and report one outcome line per event (byte-
//       deterministic replay fingerprint; schema in docs/SERVING.md).
//       Exits non-zero if any event breaks the verified-or-degraded
//       serving contract.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "sag/core/candidates.h"
#include "sag/core/feasibility.h"
#include "sag/core/ilpqc.h"
#include "sag/core/sag.h"
#include "sag/io/event_io.h"
#include "sag/io/report_io.h"
#include "sag/io/resilience_io.h"
#include "sag/io/scenario_io.h"
#include "sag/obs/obs.h"
#include "sag/serve/session.h"
#include "sag/resilience/damage.h"
#include "sag/resilience/failure.h"
#include "sag/resilience/repair.h"
#include "sag/sim/paper_presets.h"
#include "sag/sim/scenario_gen.h"

namespace {

using namespace sag;

/// Tiny --key value / --flag argument map.
class Args {
public:
    Args(int argc, char** argv) {
        for (int i = 2; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0) continue;
            key = key.substr(2);
            if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
                values_[key] = argv[++i];
            } else {
                values_[key] = "";
            }
        }
    }
    std::optional<std::string> get(const std::string& key) const {
        const auto it = values_.find(key);
        return it == values_.end() ? std::nullopt : std::make_optional(it->second);
    }
    std::string get_or(const std::string& key, const std::string& fallback) const {
        return get(key).value_or(fallback);
    }
    double num_or(const std::string& key, double fallback) const {
        const auto v = get(key);
        return v ? std::stod(*v) : fallback;
    }

private:
    std::map<std::string, std::string> values_;
};

int usage() {
    std::fprintf(stderr,
                 "usage:\n"
                 "  sag_cli generate --out FILE [--users N] [--bs N] [--field S]"
                 " [--snr DB] [--seed K] [--bs-layout uniform|corners|center]"
                 " [--propagation two_ray|log_distance|lora]"
                 " [--shadowing-sigma DB] [--shadowing-seed K]\n"
                 "  sag_cli solve --scenario FILE [--out FILE] [--csv FILE]"
                 " [--coverage samc|iac|gac] [--grid SIZE] [--trace-json FILE]\n"
                 "  sag_cli verify --scenario FILE --result FILE\n"
                 "  sag_cli resilience --scenario FILE"
                 " [--model independent|disc|degrade] [--fraction F]"
                 " [--radius R] [--factor F] [--seed K] [--out FILE]\n"
                 "  sag_cli serve --scenario FILE --events FILE [--out FILE]"
                 " [--threads N] [--budget SECONDS] [--fault-stage P]"
                 " [--fault-resolve P] [--fault-seed K]\n");
    return 2;
}

int cmd_generate(const Args& args) {
    const auto out = args.get("out");
    if (!out) return usage();
    const std::string propagation = args.get_or("propagation", "two_ray");
    sim::GeneratorConfig cfg;
    if (propagation == "log_distance") {
        cfg = sim::presets::log_distance_shadowed(
            30, units::Decibel{args.num_or("shadowing-sigma", 4.0)},
            static_cast<std::uint64_t>(args.num_or("shadowing-seed", 1)));
    } else if (propagation == "lora") {
        cfg = sim::presets::lora_field(30);
    } else if (propagation != "two_ray") {
        std::fprintf(stderr, "unknown propagation model '%s'\n",
                     propagation.c_str());
        return usage();
    }
    cfg.field_side = args.num_or("field", cfg.field_side);
    cfg.subscriber_count = static_cast<std::size_t>(args.num_or("users", 30));
    cfg.base_station_count = static_cast<std::size_t>(args.num_or("bs", 4));
    cfg.snr_threshold_db =
        sag::units::Decibel{args.num_or("snr", cfg.snr_threshold_db.db())};
    const std::string layout = args.get_or("bs-layout", "uniform");
    cfg.bs_layout = layout == "corners"  ? sim::BsLayout::Corners
                    : layout == "center" ? sim::BsLayout::Center
                                         : sim::BsLayout::Uniform;
    const auto seed = static_cast<std::uint64_t>(args.num_or("seed", 1));
    const core::Scenario scenario = sim::generate_scenario(cfg, seed);
    io::save_scenario(*out, scenario);
    std::printf(
        "wrote %s (%zu subscribers, %zu base stations, %.0fx%.0f, %s)\n",
        out->c_str(), cfg.subscriber_count, cfg.base_station_count,
        cfg.field_side, cfg.field_side,
        std::string(scenario.model().kind()).c_str());
    return 0;
}

int cmd_solve(const Args& args) {
    const auto scenario_path = args.get("scenario");
    if (!scenario_path) return usage();
    const core::Scenario scenario = io::load_scenario(*scenario_path);
    const auto trace_path = args.get("trace-json");

    // Install the sink only when a trace was requested: without it the
    // instrumentation stays on its no-sink (one branch) path.
    std::optional<obs::ScopedRecorder> recorder;
    if (trace_path) recorder.emplace();

    const std::string method = args.get_or("coverage", "samc");
    core::CoveragePlan coverage;
    {
        SAG_OBS_SPAN("sag.coverage");
        if (method == "samc") {
            coverage = core::solve_samc(scenario).plan;
        } else if (method == "iac" || method == "gac") {
            core::IlpqcOptions opts;
            opts.time_budget_seconds = 10.0;
            const auto candidates =
                method == "iac"
                    ? core::iac_candidates(scenario)
                    : core::prune_useless_candidates(
                          scenario,
                          core::gac_candidates(scenario, args.num_or("grid", 15.0)));
            coverage = core::solve_ilpqc_coverage(scenario, candidates, opts);
        } else {
            std::fprintf(stderr, "unknown coverage method '%s'\n", method.c_str());
            return usage();
        }
    }

    const core::SagResult result = core::green_pipeline(scenario, std::move(coverage));
    if (trace_path) {
        io::write_run_report(recorder->snapshot(), *trace_path);
        std::printf("wrote %s\n", trace_path->c_str());
    }
    std::printf("coverage method : %s\n", method.c_str());
    std::printf("propagation     : %s\n",
                std::string(scenario.model().kind()).c_str());
    std::printf("feasible        : %s\n", result.feasible ? "yes" : "no");
    if (result.feasible) {
        std::printf("coverage RSs    : %zu\n", result.coverage_rs_count());
        std::printf("connectivity RSs: %zu\n", result.connectivity_rs_count());
        std::printf("P_L / P_H       : %.2f / %.2f\n", result.lower_tier_power(),
                    result.upper_tier_power());
        std::printf("P_total         : %.2f\n", result.total_power());
    }

    if (const auto out = args.get("out")) {
        io::write_text_file(*out, io::sag_result_to_json(result).dump(2) + "\n");
        std::printf("wrote %s\n", out->c_str());
    }
    if (const auto csv = args.get("csv")) {
        std::ofstream os(*csv);
        io::write_deployment_csv(os, scenario, result.coverage, result.connectivity);
        std::printf("wrote %s\n", csv->c_str());
    }
    return result.feasible ? 0 : 1;
}

int cmd_verify(const Args& args) {
    const auto scenario_path = args.get("scenario");
    const auto result_path = args.get("result");
    if (!scenario_path || !result_path) return usage();
    const core::Scenario scenario = io::load_scenario(*scenario_path);
    const io::Json report = io::Json::parse(io::read_text_file(*result_path));

    // Rebuild the coverage plan + powers from the archived report.
    core::CoveragePlan coverage;
    coverage.feasible = report.at("feasible").as_bool();
    std::vector<double> powers;
    for (const auto& rs : report.at("coverage_rs").as_array()) {
        const auto& pos = rs.at("pos");
        coverage.rs_positions.push_back(
            {pos.at(std::size_t{0}).as_number(), pos.at(std::size_t{1}).as_number()});
        powers.push_back(rs.at("power").as_number());
    }
    for (const auto& a : report.at("assignment").as_array()) {
        coverage.assignment.push_back(
            sag::ids::RsId{static_cast<std::size_t>(a.as_number())});
    }

    const auto check = core::verify_coverage(scenario, coverage, powers);
    std::printf("coverage check: %s (%zu violations over %zu subscribers)\n",
                check.feasible ? "OK" : "FAILED", check.violations,
                check.subscribers.size());
    return check.feasible ? 0 : 1;
}

int cmd_resilience(const Args& args) {
    const auto scenario_path = args.get("scenario");
    if (!scenario_path) return usage();
    const core::Scenario scenario = io::load_scenario(*scenario_path);

    const core::SagResult deployment = core::solve_sag(scenario);
    if (!deployment.feasible) {
        std::fprintf(stderr,
                     "scenario is infeasible for the intact pipeline; "
                     "nothing to damage\n");
        return 1;
    }

    const auto seed = static_cast<std::uint64_t>(args.num_or("seed", 1));
    const std::string model = args.get_or("model", "independent");
    resilience::FailureSet failures;
    if (model == "independent") {
        resilience::IndependentFailureModel m;
        m.probability = args.num_or("fraction", 0.1);
        failures = resilience::inject_independent(deployment, m, seed);
    } else if (model == "disc") {
        resilience::DiscOutageModel m;
        m.radius = units::Meters{args.num_or("radius", 100.0)};
        failures = resilience::inject_disc_outage(scenario, deployment, m, seed);
    } else if (model == "degrade") {
        resilience::PowerDegradationModel m;
        m.probability = args.num_or("fraction", 0.1);
        m.factor = args.num_or("factor", 0.5);
        failures = resilience::inject_power_degradation(deployment, m, seed);
    } else {
        std::fprintf(stderr, "unknown failure model '%s'\n", model.c_str());
        return usage();
    }

    const auto damage = resilience::assess_damage(scenario, deployment, failures);
    const auto outcome = resilience::repair(scenario, deployment, failures);

    std::printf("failure model   : %s (seed %llu)\n", model.c_str(),
                static_cast<unsigned long long>(seed));
    std::printf("failed RSs      : %zu coverage, %zu connectivity"
                " (%zu degraded)\n",
                failures.coverage_down.size(), failures.connectivity_down.size(),
                failures.degraded.size());
    std::printf("damage          : %zu orphaned SSs, %zu cut-off RSs\n",
                damage.orphaned.size(), damage.cut_off.size());
    std::printf("repair          : %zu reassigned, %zu new relays, "
                "%zu unrecoverable (%d rounds)\n",
                outcome.reassigned, outcome.new_relays,
                outcome.unrecoverable.size(), outcome.rounds);
    std::printf("verified        : %s\n",
                outcome.repaired.feasible ? "yes" : "no");
    std::printf("coverage kept   : %zu / %zu\n", outcome.covered.size(),
                scenario.subscriber_count());
    std::printf("P_total         : %.2f -> %.2f (overhead %.3f)\n",
                outcome.power_before, outcome.power_after,
                outcome.power_overhead());

    if (const auto out = args.get("out")) {
        io::write_text_file(
            *out,
            io::survivability_to_json(failures, damage, outcome).dump(2) + "\n");
        std::printf("wrote %s\n", out->c_str());
    }
    return outcome.repaired.feasible ? 0 : 1;
}

int cmd_serve(const Args& args) {
    const auto scenario_path = args.get("scenario");
    const auto events_path = args.get("events");
    if (!scenario_path || !events_path) return usage();
    const core::Scenario scenario = io::load_scenario(*scenario_path);

    std::vector<serve::Event> events;
    try {
        events = io::events_from_jsonl(io::read_text_file(*events_path));
    } catch (const io::EventFormatError& e) {
        std::fprintf(stderr, "%s: %s\n", events_path->c_str(), e.what());
        return 1;
    }

    const core::SagResult deployment = core::solve_sag(scenario);
    if (!deployment.feasible) {
        std::fprintf(stderr,
                     "scenario is infeasible for the intact pipeline; "
                     "nothing to serve\n");
        return 1;
    }

    serve::ServeOptions opts;
    opts.threads = static_cast<std::size_t>(args.num_or("threads", 1));
    opts.event_budget_seconds = args.num_or("budget", 0.0);
    serve::FaultOptions faults;
    faults.stage_timeout_probability = args.num_or("fault-stage", 0.0);
    faults.resolve_timeout_probability = args.num_or("fault-resolve", 0.0);
    faults.seed = static_cast<std::uint64_t>(args.num_or("fault-seed", 1));
    opts.faults = serve::FaultPlan(faults);

    serve::Session session(scenario, deployment, opts);
    std::string report;
    std::size_t rejected = 0, degraded = 0, adopted = 0, contract_broken = 0;
    for (const serve::Event& event : events) {
        const serve::EventOutcome out = session.apply(event);
        rejected += out.level == serve::RepairLevel::Rejected ? 1 : 0;
        degraded += out.degraded ? 1 : 0;
        adopted += out.resolve_adopted ? 1 : 0;
        contract_broken += (out.verified || out.degraded) ? 0 : 1;
        report += io::event_outcome_to_json(out).dump();
        report.push_back('\n');
    }

    std::printf("events          : %zu (%zu rejected)\n", events.size(),
                rejected);
    std::printf("degraded events : %zu\n", degraded);
    std::printf("re-solves       : %zu adopted\n", adopted);
    std::printf("final           : %zu subscribers, %zu unserved, "
                "%zu active RSs, P_total %.2f\n",
                session.live_subscriber_count(), session.unserved_count(),
                session.active_rs_count(), session.total_power());
    if (const auto out = args.get("out")) {
        io::write_text_file(*out, report);
        std::printf("wrote %s\n", out->c_str());
    }
    if (contract_broken > 0) {
        std::fprintf(stderr,
                     "serving contract broken on %zu events "
                     "(neither verified nor degraded)\n",
                     contract_broken);
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const Args args(argc, argv);
    const std::string cmd = argv[1];
    try {
        if (cmd == "generate") return cmd_generate(args);
        if (cmd == "solve") return cmd_solve(args);
        if (cmd == "verify") return cmd_verify(args);
        if (cmd == "resilience") return cmd_resilience(args);
        if (cmd == "serve") return cmd_serve(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
