#!/usr/bin/env bash
# Static-analysis gate, run by the CI `static` job (and locally).
#
#  1. clang-tidy over the compilation database, using the curated check
#     set in .clang-tidy (WarningsAsErrors: '*'). Skipped with a notice
#     when clang-tidy is not installed, so the domain lints below still
#     run on toolchains without LLVM (the container ships GCC only).
#  2. sag_lint (tools/sag_lint/, python3): the domain rules as real
#     token/AST analyses --
#       units-param  no bare-double power/SNR/noise/dB parameter outside
#                    src/units (sag::units strong types at boundaries);
#       ids-param    no raw size_t entity-index parameter in solver
#                    headers (sag::ids strong IDs);
#       gain-param   no bare-double path-gain parameter outside
#                    src/wireless (GainKernel / PropagationModel);
#       raw-escape   every .raw()/.value() escape from a strong type
#                    outside its defining module carries a
#                    `// SAG_RAW_OK:` justification;
#       layering     the include graph matches tools/layering.json
#                    exactly (no undeclared and no dead edges);
#       dead-suppression  every allowlist entry names its rule and
#                    still matches something.
#     The three param rules resolve typedef/using aliases and ignore
#     comments and strings, so renaming `double` or quoting a signature
#     cannot dodge them. In CI the libclang engine re-derives them from
#     canonical AST types on top. Only when python3 itself is missing do
#     the legacy grep lints (sections 2-4 below) gate instead.
#  3. Determinism lint (grep): no nondeterminism source may enter src/
#     -- no std::random_device, rand()/srand(), time(nullptr), or
#     unseeded std::mt19937 (rule det-entropy: all randomness is seeded
#     std::mt19937_64, so threads=N == serial == yesterday's run), and
#     no unordered_map/unordered_set in the solver result-construction
#     layers src/core, src/opt (rule det-unordered), whose iteration
#     order is implementation-defined. Justified exceptions:
#     tools/check_determinism_allowlist.txt.
#  4. Concurrency-confinement lint (grep): no raw std::thread/std::mutex/
#     std::condition_variable (or lock types / their headers) outside
#     src/exec/ (rule conc-raw). All parallelism flows through the one
#     annotated (Clang Thread Safety Analysis) and TSan-covered
#     abstraction -- exec::ThreadPool + exec::Mutex/MutexLock/CondVar.
#     Justified exceptions: tools/check_concurrency_allowlist.txt.
#
# Allowlist format (all three allowlist files): `rule-id: fragment`, the
# fragment fixed-string matched against `file:line:content` hits of that
# rule only. An entry without a valid rule prefix is an error, and so is
# a dead entry that matches nothing -- stale suppressions cannot linger.
#
# Usage: tools/check_static.sh [--strict] [--require-libclang] [build-dir]
#        (default build dir: build)
#
# Degradation policy: locally, a missing compilation database skips the
# clang-tidy pass with a notice and everything else still gates. Under
# CI=true or --strict that hole closes: a missing database (or missing
# python3) is a hard failure, so CI can never silently run a weaker gate
# than the one this script documents. --require-libclang additionally
# makes sag_lint fail unless its libclang engine actually loaded (the CI
# static job sets it; dev containers without clang bindings do not).
set -u
cd "$(dirname "$0")/.."

build_dir=build
strict=0
require_libclang=0
for arg in "$@"; do
    case $arg in
        --strict) strict=1 ;;
        --require-libclang) require_libclang=1 ;;
        *) build_dir=$arg ;;
    esac
done
if [ "${CI:-}" = "true" ]; then
    strict=1
fi

fail=0
err() { echo "check_static: $*" >&2; fail=1; }

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Rule-scoped allowlist filter for the grep lints: entries are
# `rule-id: fragment` lines; only entries naming $3 apply, each matched
# fixed-string against the `file:line:content` hits. Entries that fire
# are recorded so validate_allowlist() can flag the dead ones.
apply_allowlist() {
    # $1 = hits, $2 = allowlist path, $3 = rule id
    local hits=$1 file=$2 rule=$3 out frag
    out=$hits
    if [ -z "$hits" ] || [ ! -f "$file" ]; then
        echo "$out"
        return
    fi
    while IFS= read -r frag; do
        [ -n "$frag" ] || continue
        if echo "$hits" | grep -qF -- "$frag"; then
            printf '%s: %s\n' "$rule" "$frag" >> "$tmpdir/used.${file##*/}"
        fi
        out=$(echo "$out" | grep -vF -- "$frag" || true)
    done < <(sed -n "s/^${rule}:[[:space:]]*//p" "$file")
    echo "$out"
}

# Validate one allowlist file after its rules ran: every non-comment
# entry must name one of the file's rules, and every entry must have
# suppressed at least one hit this run (dead entries mask nothing today
# and hide violations tomorrow, so they fail the gate).
validate_allowlist() {
    # $1 = allowlist path, $2.. = rule ids this file may name
    local file=$1 used line rule frag valid r
    shift
    [ -f "$file" ] || return 0
    used="$tmpdir/used.${file##*/}"
    while IFS= read -r line; do
        rule=${line%%:*}
        valid=0
        for r in "$@"; do
            [ "$rule" = "$r" ] && valid=1
        done
        if [ "$rule" = "$line" ] || [ "$valid" -eq 0 ]; then
            err "$file: allowlist entry must be \`rule-id: fragment\`" \
                "naming one of: $* -- got: $line"
            continue
        fi
        frag=$(printf '%s' "${line#*:}" | sed 's/^[[:space:]]*//')
        if [ ! -f "$used" ] || ! grep -qF -- "$rule: $frag" "$used"; then
            err "$file: dead allowlist entry (matches nothing): $line" \
                "-- delete it so it cannot mask a future violation"
        fi
    done < <(grep -v '^[[:space:]]*\(#\|$\)' "$file" || true)
}

# --- 0. degradation policy ---------------------------------------------------
have_db=0
if [ -f "$build_dir/compile_commands.json" ]; then
    have_db=1
elif [ "$strict" -eq 1 ]; then
    err "no $build_dir/compile_commands.json under CI/--strict; the tidy" \
        "and libclang passes would silently degrade -- configure with" \
        "cmake (CMAKE_EXPORT_COMPILE_COMMANDS is on by default) first"
fi

# --- 1. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ "$have_db" -eq 0 ]; then
        echo "check_static: no $build_dir/compile_commands.json;" \
             "skipping tidy pass (lint-only mode -- configure with cmake" \
             "to enable clang-tidy)" >&2
    else
        # Project sources only; third-party and generated code are not ours
        # to fix. run-clang-tidy parallelizes over the compilation DB.
        sources=$(git ls-files 'src/*.cpp' 'tools/*.cpp' 'examples/*.cpp')
        if command -v run-clang-tidy >/dev/null 2>&1; then
            # Capture the findings: run-clang-tidy's stdout is the only
            # place they appear, so on failure it must be echoed, not
            # discarded (a silent "see above" pointed at nothing).
            # shellcheck disable=SC2086
            if ! tidy_out=$(run-clang-tidy -quiet -p "$build_dir" $sources 2>&1); then
                echo "$tidy_out" >&2
                err "clang-tidy reported findings (echoed above)"
            fi
        else
            for f in $sources; do
                clang-tidy --quiet -p "$build_dir" "$f" ||
                    err "clang-tidy: findings in $f"
            done
        fi
    fi
else
    echo "check_static: clang-tidy not installed; skipping tidy pass" >&2
fi

# --- 2. sag_lint (param rules, raw-escape audit, layering, suppressions) ----
sag_lint_ran=0
if command -v python3 >/dev/null 2>&1; then
    sag_lint_args=(--build-dir "$build_dir")
    if [ "$require_libclang" -eq 1 ]; then
        sag_lint_args+=(--require-libclang)
    fi
    if python3 tools/sag_lint "${sag_lint_args[@]}"; then
        sag_lint_ran=1
    else
        status=$?
        if [ "$status" -eq 2 ]; then
            err "sag_lint could not run (environment/configuration error above)"
        else
            err "sag_lint reported findings (listed above)"
            sag_lint_ran=1
        fi
    fi
elif [ "$strict" -eq 1 ]; then
    err "python3 not available under CI/--strict; sag_lint (the param," \
        "raw-escape, and layering rules) would silently degrade to grep"
else
    echo "check_static: python3 not installed; falling back to the grep" \
         "param lints (no raw-escape/layering checks this run)" >&2
fi

if [ "$sag_lint_ran" -eq 0 ]; then
    # Grep fallback for the three param rules, python3-less toolchains
    # only. Weaker than sag_lint by construction: single-line matches,
    # no alias resolution, no comment/string immunity beyond the shape
    # of the patterns.

    # units-param: a scalar `double` function parameter whose name says
    # it carries power, noise, SNR, watts, or dB -- the exact mixups
    # sag::units exists to prevent. Bulk vector/span parameters carry a
    # template type, not scalar double, and do not match.
    pattern='[(,][[:space:]]*(const[[:space:]]+)?double[[:space:]]+[a-zA-Z_]*(power|snr|noise|watt|_db|_dbm)[a-zA-Z_]*[[:space:]]*[,)=]'
    hits=$(grep -rnE "$pattern" src tools examples \
               --include='*.h' --include='*.cpp' 2>/dev/null |
           grep -v '^src/units/') || true
    hits=$(apply_allowlist "$hits" tools/check_static_allowlist.txt units-param)
    if [ -n "$hits" ]; then
        err "bare-double power/SNR parameter(s); use sag::units types" \
            "(or add a justified units-param entry to" \
            "tools/check_static_allowlist.txt):"
        echo "$hits" >&2
    fi

    # ids-param: a scalar size_t/std::size_t function parameter whose
    # name is an entity index (ss, rs, bs, sub, cand, zone -- alone or
    # as an underscore-delimited token, e.g. `rs_idx`, `serving_rs`).
    # Those must be SsId/RsId/BsId/CandId/ZoneId from sag::ids so
    # `snr.move_rs(ss)` cannot compile. Count-like names (rs_count,
    # sub_budget, zone_rounds) denote a quantity, not a position in an
    # entity array, and are filtered back out.
    id_pattern='[(,][[:space:]]*(const[[:space:]]+)?(std::)?size_t[[:space:]]+([a-zA-Z0-9_]*_)?(ss|rs|bs|sub|cand|zone)(_[a-zA-Z0-9_]*)?[[:space:]]*[,)=]'
    count_pattern='(std::)?size_t[[:space:]]+[a-zA-Z0-9_]*(count|size|num|total|budget|round|iter|capacity|limit|max|min)'
    id_hits=$(grep -rnE "$id_pattern" src/core/include --include='*.h' 2>/dev/null |
              grep -vE "$count_pattern") || true
    id_hits=$(apply_allowlist "$id_hits" tools/check_static_allowlist.txt ids-param)
    if [ -n "$id_hits" ]; then
        err "raw size_t entity-index parameter(s); use sag::ids strong IDs" \
            "(or add a justified ids-param entry to" \
            "tools/check_static_allowlist.txt):"
        echo "$id_hits" >&2
    fi

    # gain-param: a scalar `double` function parameter carrying a channel
    # gain, attenuation, or path loss. Channel physics must flow through
    # sag::wireless::PropagationModel / GainKernel (the single gain
    # authority of the scenario) -- a function elsewhere accepting a bare
    # gain double is a second channel model waiting to drift from the
    # first. The kernel structs themselves live in src/wireless (exempt).
    gain_pattern='[(,][[:space:]]*(const[[:space:]]+)?double[[:space:]]+[a-zA-Z_]*(gain|atten|path_loss)[a-zA-Z_]*[[:space:]]*[,)=]'
    gain_hits=$(grep -rnE "$gain_pattern" src tools examples \
                    --include='*.h' --include='*.cpp' 2>/dev/null |
                grep -v '^src/wireless/') || true
    gain_hits=$(apply_allowlist "$gain_hits" tools/check_static_allowlist.txt gain-param)
    if [ -n "$gain_hits" ]; then
        err "bare-double path-gain parameter(s); route the channel through" \
            "sag::wireless::GainKernel / PropagationModel instead:"
        echo "$gain_hits" >&2
    fi

    # sag_lint validates this allowlist when it runs; in fallback mode
    # the shell does (same rules, same dead-entry policy).
    validate_allowlist tools/check_static_allowlist.txt \
        units-param ids-param gain-param
fi

# --- 3. determinism lint ----------------------------------------------------
# The reproducibility contract (docs/PERFORMANCE.md): solver output is a
# pure function of (scenario, options, seed) — threads=N, the serial
# path, and yesterday's binary all agree bit-for-bit. Two sub-lints:
#
# det-entropy: no ambient-entropy source anywhere in src/ --
#     std::random_device, C rand()/srand(), wall-clock seeding via
#     time(nullptr)/time(NULL), or a default-constructed (unseeded)
#     std::mt19937/mt19937_64. Seeded engines (std::mt19937_64 rng(seed))
#     are the one sanctioned randomness and do not match.
det_entropy_pattern='std::random_device|[^a-zA-Z0-9_](rand|srand)[[:space:]]*\(|[^a-zA-Z0-9_]time[[:space:]]*\([[:space:]]*(nullptr|NULL)[[:space:]]*\)|mt19937(_64)?[[:space:]]+[a-zA-Z_][a-zA-Z0-9_]*[[:space:]]*(;|\{[[:space:]]*\}|=[[:space:]]*\{[[:space:]]*\})'
det_hits=$(grep -rnE "$det_entropy_pattern" src \
               --include='*.h' --include='*.cpp' 2>/dev/null) || true
det_hits=$(apply_allowlist "$det_hits" tools/check_determinism_allowlist.txt det-entropy)
if [ -n "$det_hits" ]; then
    err "nondeterminism source(s) in src/; seed a std::mt19937_64 explicitly" \
        "(or add a justified det-entropy entry to" \
        "tools/check_determinism_allowlist.txt):"
    echo "$det_hits" >&2
fi

# det-unordered: no unordered_map/unordered_set in the solver
#     result-construction layers (src/core, src/opt): their iteration
#     order is implementation-defined, so any loop over one while
#     assembling a plan/cover/assignment makes results compiler- or
#     run-dependent. Ordered containers (std::map/set) or index-sorted
#     vectors convey the same lookups deterministically. Spatial hashing
#     in sag::geometry is out of scope — it never iterates its buckets
#     into results.
det_unord_hits=$(grep -rnE 'unordered_(map|set)' src/core src/opt \
                     --include='*.h' --include='*.cpp' 2>/dev/null) || true
det_unord_hits=$(apply_allowlist "$det_unord_hits" tools/check_determinism_allowlist.txt det-unordered)
if [ -n "$det_unord_hits" ]; then
    err "unordered container(s) in solver result-construction paths" \
        "(src/core, src/opt); use an ordered container or sorted vector" \
        "(or add a justified det-unordered entry to" \
        "tools/check_determinism_allowlist.txt):"
    echo "$det_unord_hits" >&2
fi

validate_allowlist tools/check_determinism_allowlist.txt \
    det-entropy det-unordered

# --- 4. concurrency-confinement lint ----------------------------------------
# conc-raw: all parallelism flows through sag::exec — the one ThreadPool
# plus the exec::Mutex/MutexLock/CondVar wrappers that carry Clang
# Thread Safety Analysis annotations and sit inside the TSan CI job's
# test scope. A raw std::thread/std::mutex/std::condition_variable (or
# lock helper, or its header) elsewhere in src/ is unanalyzed,
# unannotated concurrency: it compiles on GCC with no thread-safety
# checking at all. std::atomic stays allowed (lock-free leaf discipline,
# e.g. sag::obs cells).
conc_pattern='std::(thread|jthread|mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock|call_once|once_flag)[^a-zA-Z0-9_]|#[[:space:]]*include[[:space:]]*<(thread|mutex|shared_mutex|condition_variable)>'
conc_hits=$(grep -rnE "$conc_pattern" src \
                --include='*.h' --include='*.cpp' 2>/dev/null |
            grep -v '^src/exec/') || true
conc_hits=$(apply_allowlist "$conc_hits" tools/check_concurrency_allowlist.txt conc-raw)
if [ -n "$conc_hits" ]; then
    err "raw threading primitive(s) outside src/exec/; route through" \
        "exec::ThreadPool / exec::Mutex (sag/exec/mutex.h) so the locking" \
        "is thread-safety-annotated and TSan-covered (or add a justified" \
        "conc-raw entry to tools/check_concurrency_allowlist.txt):"
    echo "$conc_hits" >&2
fi

validate_allowlist tools/check_concurrency_allowlist.txt conc-raw

if [ "$fail" -ne 0 ]; then
    echo "check_static: FAILED" >&2
    exit 1
fi
echo "check_static: OK"
