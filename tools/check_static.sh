#!/usr/bin/env bash
# Static-analysis gate, run by the CI `static` job (and locally).
#
#  1. clang-tidy over the compilation database, using the curated check
#     set in .clang-tidy (WarningsAsErrors: '*'). Skipped with a notice
#     when clang-tidy is not installed, so the domain lint below still
#     runs on toolchains without LLVM (the container ships GCC only).
#  2. Domain lint: no NEW bare-double power/SNR/noise/dB parameter may
#     appear in a function signature outside src/units. Scalar
#     power-like quantities cross API boundaries as sag::units strong
#     types (Watt, Decibel, ...); bulk buffers (std::vector<double>,
#     std::span<const double>) are exempt by construction since the
#     lint only matches scalar `double` parameters. Justified exceptions
#     (like §3's) live in tools/check_static_allowlist.txt.
#  3. Domain lint: no NEW raw size_t entity-index parameter (ss/rs/bs/
#     sub/cand/zone) may appear in a solver header. Entity indices cross
#     API boundaries as sag::ids strong IDs (SsId, RsId, ...); genuine
#     counts/sizes/budgets keep size_t and simply must not be named like
#     an entity index. Justified exceptions live in
#     tools/check_static_allowlist.txt.
#  4. Domain lint: no NEW bare-double path-gain/attenuation parameter may
#     appear outside src/wireless. Channel gains flow through
#     sag::wireless::GainKernel / PropagationModel so every solver,
#     verifier, and the SnrField evaluate the one true channel.
#  5. Determinism lint: no nondeterminism source may enter src/ — no
#     std::random_device, rand()/srand(), time(nullptr), or unseeded
#     std::mt19937 (all randomness is seeded std::mt19937_64, so
#     threads=N == serial == yesterday's run), and no unordered_map/
#     unordered_set in the solver result-construction layers (src/core,
#     src/opt), whose iteration order is implementation-defined.
#     Justified exceptions: tools/check_determinism_allowlist.txt.
#  6. Concurrency-confinement lint: no raw std::thread/std::mutex/
#     std::condition_variable (or lock types / their headers) outside
#     src/exec/. All parallelism flows through the one annotated
#     (Clang Thread Safety Analysis) and TSan-covered abstraction —
#     exec::ThreadPool + exec::Mutex/MutexLock/CondVar. Justified
#     exceptions: tools/check_concurrency_allowlist.txt.
#
# Usage: tools/check_static.sh [build-dir]   (default: build)
#
# Runs without a compilation database: if $build_dir/compile_commands.json
# is missing the clang-tidy pass degrades to a warning and the grep lints
# (2, 3) still gate.
set -u
cd "$(dirname "$0")/.."

build_dir=${1:-build}
fail=0
err() { echo "check_static: $*" >&2; fail=1; }

# Shared allowlist filter for the grep lints: fixed-string match of
# `file:line:content` hits against the non-comment lines of an allowlist
# file. Every allowlist entry must carry a written justification in its
# file; an absent file (or one with no entries) filters nothing.
apply_allowlist() {
    # $1 = hits, $2 = allowlist path
    if [ -n "$1" ] && [ -f "$2" ]; then
        echo "$1" | grep -vFf <(grep -v '^[[:space:]]*\(#\|$\)' "$2") || true
    else
        echo "$1"
    fi
}

# --- 1. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "check_static: no $build_dir/compile_commands.json;" \
             "skipping tidy pass (lint-only mode -- configure with cmake" \
             "to enable clang-tidy)" >&2
    else
        # Project sources only; third-party and generated code are not ours
        # to fix. run-clang-tidy parallelizes over the compilation DB.
        sources=$(git ls-files 'src/*.cpp' 'tools/*.cpp' 'examples/*.cpp')
        if command -v run-clang-tidy >/dev/null 2>&1; then
            # Capture the findings: run-clang-tidy's stdout is the only
            # place they appear, so on failure it must be echoed, not
            # discarded (a silent "see above" pointed at nothing).
            # shellcheck disable=SC2086
            if ! tidy_out=$(run-clang-tidy -quiet -p "$build_dir" $sources 2>&1); then
                echo "$tidy_out" >&2
                err "clang-tidy reported findings (echoed above)"
            fi
        else
            for f in $sources; do
                clang-tidy --quiet -p "$build_dir" "$f" ||
                    err "clang-tidy: findings in $f"
            done
        fi
    fi
else
    echo "check_static: clang-tidy not installed; skipping tidy pass" >&2
fi

# --- 2. bare-double power/SNR parameters ----------------------------------
# Matches a scalar `double` function parameter whose name says it carries
# power, noise, SNR, watts, or dB -- the exact mixups sag::units exists to
# prevent. Local variables and struct members do not match (no '(' or ','
# immediately before the type), and bulk vector/span parameters carry a
# template type, not scalar double.
pattern='[(,][[:space:]]*(const[[:space:]]+)?double[[:space:]]+[a-zA-Z_]*(power|snr|noise|watt|_db|_dbm)[a-zA-Z_]*[[:space:]]*[,)=]'
hits=$(grep -rnE "$pattern" src tools examples \
           --include='*.h' --include='*.cpp' 2>/dev/null |
       grep -v '^src/units/') || true
hits=$(apply_allowlist "$hits" tools/check_static_allowlist.txt)
if [ -n "$hits" ]; then
    err "bare-double power/SNR parameter(s); use sag::units types" \
        "(or add a justified entry to tools/check_static_allowlist.txt):"
    echo "$hits" >&2
fi

# --- 3. raw size_t entity-index parameters in solver headers ---------------
# Matches a scalar size_t/std::size_t function parameter whose name is an
# entity index (ss, rs, bs, sub, cand, zone -- alone or as an underscore-
# delimited token, e.g. `rs_idx`, `serving_rs`). Those must be SsId/RsId/
# BsId/CandId/ZoneId from sag::ids so `snr.move_rs(ss)` cannot compile.
# Count-like names (rs_count, sub_budget, zone_rounds) denote a quantity,
# not a position in an entity array, and are filtered back out. Justified
# exceptions go in tools/check_static_allowlist.txt (fixed-string match
# against the file:line:content hit).
id_pattern='[(,][[:space:]]*(const[[:space:]]+)?(std::)?size_t[[:space:]]+([a-zA-Z0-9_]*_)?(ss|rs|bs|sub|cand|zone)(_[a-zA-Z0-9_]*)?[[:space:]]*[,)=]'
count_pattern='(std::)?size_t[[:space:]]+[a-zA-Z0-9_]*(count|size|num|total|budget|round|iter|capacity|limit|max|min)'
allowlist=tools/check_static_allowlist.txt
id_hits=$(grep -rnE "$id_pattern" src/core/include --include='*.h' 2>/dev/null |
          grep -vE "$count_pattern") || true
id_hits=$(apply_allowlist "$id_hits" "$allowlist")
if [ -n "$id_hits" ]; then
    err "raw size_t entity-index parameter(s); use sag::ids strong IDs" \
        "(or add a justified entry to $allowlist):"
    echo "$id_hits" >&2
fi

# --- 4. raw-double path-gain parameters outside src/wireless ---------------
# Matches a scalar `double` function parameter carrying a channel gain,
# attenuation, or path loss. Channel physics must flow through
# sag::wireless::PropagationModel / GainKernel (the single gain authority
# of the scenario) -- a function elsewhere accepting a bare gain double is
# a second channel model waiting to drift from the first. Bulk matrices
# (std::vector<double>) do not match; the kernel structs themselves live
# in src/wireless, which is exempt.
gain_pattern='[(,][[:space:]]*(const[[:space:]]+)?double[[:space:]]+[a-zA-Z_]*(gain|atten|path_loss)[a-zA-Z_]*[[:space:]]*[,)=]'
gain_hits=$(grep -rnE "$gain_pattern" src tools examples \
                --include='*.h' --include='*.cpp' 2>/dev/null |
            grep -v '^src/wireless/') || true
gain_hits=$(apply_allowlist "$gain_hits" tools/check_static_allowlist.txt)
if [ -n "$gain_hits" ]; then
    err "bare-double path-gain parameter(s); route the channel through" \
        "sag::wireless::GainKernel / PropagationModel instead:"
    echo "$gain_hits" >&2
fi

# --- 5. determinism lint ----------------------------------------------------
# The reproducibility contract (docs/PERFORMANCE.md): solver output is a
# pure function of (scenario, options, seed) — threads=N, the serial
# path, and yesterday's binary all agree bit-for-bit. Two sub-lints:
#
# 5a. No ambient-entropy source anywhere in src/: std::random_device,
#     C rand()/srand(), wall-clock seeding via time(nullptr)/time(NULL),
#     or a default-constructed (unseeded) std::mt19937/mt19937_64.
#     Seeded engines (std::mt19937_64 rng(seed)) are the one sanctioned
#     randomness and do not match.
det_entropy_pattern='std::random_device|[^a-zA-Z0-9_](rand|srand)[[:space:]]*\(|[^a-zA-Z0-9_]time[[:space:]]*\([[:space:]]*(nullptr|NULL)[[:space:]]*\)|mt19937(_64)?[[:space:]]+[a-zA-Z_][a-zA-Z0-9_]*[[:space:]]*(;|\{[[:space:]]*\}|=[[:space:]]*\{[[:space:]]*\})'
det_hits=$(grep -rnE "$det_entropy_pattern" src \
               --include='*.h' --include='*.cpp' 2>/dev/null) || true
det_hits=$(apply_allowlist "$det_hits" tools/check_determinism_allowlist.txt)
if [ -n "$det_hits" ]; then
    err "nondeterminism source(s) in src/; seed a std::mt19937_64 explicitly" \
        "(or add a justified entry to tools/check_determinism_allowlist.txt):"
    echo "$det_hits" >&2
fi

# 5b. No unordered_map/unordered_set in the solver result-construction
#     layers (src/core, src/opt): their iteration order is
#     implementation-defined, so any loop over one while assembling a
#     plan/cover/assignment makes results compiler- or run-dependent.
#     Ordered containers (std::map/set) or index-sorted vectors convey
#     the same lookups deterministically. Spatial hashing in sag::geometry
#     is out of scope — it never iterates its buckets into results.
det_unord_hits=$(grep -rnE 'unordered_(map|set)' src/core src/opt \
                     --include='*.h' --include='*.cpp' 2>/dev/null) || true
det_unord_hits=$(apply_allowlist "$det_unord_hits" tools/check_determinism_allowlist.txt)
if [ -n "$det_unord_hits" ]; then
    err "unordered container(s) in solver result-construction paths" \
        "(src/core, src/opt); use an ordered container or sorted vector" \
        "(or add a justified entry to tools/check_determinism_allowlist.txt):"
    echo "$det_unord_hits" >&2
fi

# --- 6. concurrency-confinement lint ----------------------------------------
# All parallelism flows through sag::exec — the one ThreadPool plus the
# exec::Mutex/MutexLock/CondVar wrappers that carry Clang Thread Safety
# Analysis annotations and sit inside the TSan CI job's test scope. A raw
# std::thread/std::mutex/std::condition_variable (or lock helper, or its
# header) elsewhere in src/ is unanalyzed, unannotated concurrency: it
# compiles on GCC with no thread-safety checking at all. std::atomic
# stays allowed (lock-free leaf discipline, e.g. sag::obs cells).
conc_pattern='std::(thread|jthread|mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|condition_variable|condition_variable_any|lock_guard|unique_lock|scoped_lock|shared_lock|call_once|once_flag)[^a-zA-Z0-9_]|#[[:space:]]*include[[:space:]]*<(thread|mutex|shared_mutex|condition_variable)>'
conc_hits=$(grep -rnE "$conc_pattern" src \
                --include='*.h' --include='*.cpp' 2>/dev/null |
            grep -v '^src/exec/') || true
conc_hits=$(apply_allowlist "$conc_hits" tools/check_concurrency_allowlist.txt)
if [ -n "$conc_hits" ]; then
    err "raw threading primitive(s) outside src/exec/; route through" \
        "exec::ThreadPool / exec::Mutex (sag/exec/mutex.h) so the locking" \
        "is thread-safety-annotated and TSan-covered (or add a justified" \
        "entry to tools/check_concurrency_allowlist.txt):"
    echo "$conc_hits" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "check_static: FAILED" >&2
    exit 1
fi
echo "check_static: OK"
