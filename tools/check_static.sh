#!/usr/bin/env bash
# Static-analysis gate, run by the CI `static` job (and locally).
#
#  1. clang-tidy over the compilation database, using the curated check
#     set in .clang-tidy (WarningsAsErrors: '*'). Skipped with a notice
#     when clang-tidy is not installed, so the domain lint below still
#     runs on toolchains without LLVM (the container ships GCC only).
#  2. Domain lint: no NEW bare-double power/SNR/noise/dB parameter may
#     appear in a function signature outside src/units. Scalar
#     power-like quantities cross API boundaries as sag::units strong
#     types (Watt, Decibel, ...); bulk buffers (std::vector<double>,
#     std::span<const double>) are exempt by construction since the
#     lint only matches scalar `double` parameters.
#  3. Domain lint: no NEW raw size_t entity-index parameter (ss/rs/bs/
#     sub/cand/zone) may appear in a solver header. Entity indices cross
#     API boundaries as sag::ids strong IDs (SsId, RsId, ...); genuine
#     counts/sizes/budgets keep size_t and simply must not be named like
#     an entity index. Justified exceptions live in
#     tools/check_static_allowlist.txt.
#  4. Domain lint: no NEW bare-double path-gain/attenuation parameter may
#     appear outside src/wireless. Channel gains flow through
#     sag::wireless::GainKernel / PropagationModel so every solver,
#     verifier, and the SnrField evaluate the one true channel.
#
# Usage: tools/check_static.sh [build-dir]   (default: build)
#
# Runs without a compilation database: if $build_dir/compile_commands.json
# is missing the clang-tidy pass degrades to a warning and the grep lints
# (2, 3) still gate.
set -u
cd "$(dirname "$0")/.."

build_dir=${1:-build}
fail=0
err() { echo "check_static: $*" >&2; fail=1; }

# --- 1. clang-tidy ---------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
    if [ ! -f "$build_dir/compile_commands.json" ]; then
        echo "check_static: no $build_dir/compile_commands.json;" \
             "skipping tidy pass (lint-only mode -- configure with cmake" \
             "to enable clang-tidy)" >&2
    else
        # Project sources only; third-party and generated code are not ours
        # to fix. run-clang-tidy parallelizes over the compilation DB.
        sources=$(git ls-files 'src/*.cpp' 'tools/*.cpp' 'examples/*.cpp')
        if command -v run-clang-tidy >/dev/null 2>&1; then
            # shellcheck disable=SC2086
            run-clang-tidy -quiet -p "$build_dir" $sources >/dev/null ||
                err "clang-tidy reported findings (see above)"
        else
            for f in $sources; do
                clang-tidy --quiet -p "$build_dir" "$f" ||
                    err "clang-tidy: findings in $f"
            done
        fi
    fi
else
    echo "check_static: clang-tidy not installed; skipping tidy pass" >&2
fi

# --- 2. bare-double power/SNR parameters ----------------------------------
# Matches a scalar `double` function parameter whose name says it carries
# power, noise, SNR, watts, or dB -- the exact mixups sag::units exists to
# prevent. Local variables and struct members do not match (no '(' or ','
# immediately before the type), and bulk vector/span parameters carry a
# template type, not scalar double.
pattern='[(,][[:space:]]*(const[[:space:]]+)?double[[:space:]]+[a-zA-Z_]*(power|snr|noise|watt|_db|_dbm)[a-zA-Z_]*[[:space:]]*[,)=]'
hits=$(grep -rnE "$pattern" src tools examples \
           --include='*.h' --include='*.cpp' 2>/dev/null |
       grep -v '^src/units/') || true
if [ -n "$hits" ]; then
    err "bare-double power/SNR parameter(s); use sag::units types instead:"
    echo "$hits" >&2
fi

# --- 3. raw size_t entity-index parameters in solver headers ---------------
# Matches a scalar size_t/std::size_t function parameter whose name is an
# entity index (ss, rs, bs, sub, cand, zone -- alone or as an underscore-
# delimited token, e.g. `rs_idx`, `serving_rs`). Those must be SsId/RsId/
# BsId/CandId/ZoneId from sag::ids so `snr.move_rs(ss)` cannot compile.
# Count-like names (rs_count, sub_budget, zone_rounds) denote a quantity,
# not a position in an entity array, and are filtered back out. Justified
# exceptions go in tools/check_static_allowlist.txt (fixed-string match
# against the file:line:content hit).
id_pattern='[(,][[:space:]]*(const[[:space:]]+)?(std::)?size_t[[:space:]]+([a-zA-Z0-9_]*_)?(ss|rs|bs|sub|cand|zone)(_[a-zA-Z0-9_]*)?[[:space:]]*[,)=]'
count_pattern='(std::)?size_t[[:space:]]+[a-zA-Z0-9_]*(count|size|num|total|budget|round|iter|capacity|limit|max|min)'
allowlist=tools/check_static_allowlist.txt
id_hits=$(grep -rnE "$id_pattern" src/core/include --include='*.h' 2>/dev/null |
          grep -vE "$count_pattern") || true
if [ -n "$id_hits" ] && [ -f "$allowlist" ]; then
    id_hits=$(echo "$id_hits" |
              grep -vFf <(grep -v '^[[:space:]]*\(#\|$\)' "$allowlist")) || true
fi
if [ -n "$id_hits" ]; then
    err "raw size_t entity-index parameter(s); use sag::ids strong IDs" \
        "(or add a justified entry to $allowlist):"
    echo "$id_hits" >&2
fi

# --- 4. raw-double path-gain parameters outside src/wireless ---------------
# Matches a scalar `double` function parameter carrying a channel gain,
# attenuation, or path loss. Channel physics must flow through
# sag::wireless::PropagationModel / GainKernel (the single gain authority
# of the scenario) -- a function elsewhere accepting a bare gain double is
# a second channel model waiting to drift from the first. Bulk matrices
# (std::vector<double>) do not match; the kernel structs themselves live
# in src/wireless, which is exempt.
gain_pattern='[(,][[:space:]]*(const[[:space:]]+)?double[[:space:]]+[a-zA-Z_]*(gain|atten|path_loss)[a-zA-Z_]*[[:space:]]*[,)=]'
gain_hits=$(grep -rnE "$gain_pattern" src tools examples \
                --include='*.h' --include='*.cpp' 2>/dev/null |
            grep -v '^src/wireless/') || true
if [ -n "$gain_hits" ]; then
    err "bare-double path-gain parameter(s); route the channel through" \
        "sag::wireless::GainKernel / PropagationModel instead:"
    echo "$gain_hits" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "check_static: FAILED" >&2
    exit 1
fi
echo "check_static: OK"
