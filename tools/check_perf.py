#!/usr/bin/env python3
"""CI perf-regression gate over the bench_micro JSON output.

Compares the gated benchmark families of a fresh Release bench_micro run
against the committed reference in results/BENCH_BASELINE.json and fails
(exit 1) when any gated benchmark's cpu_time regressed by more than the
tolerance. The contract lives in docs/PERFORMANCE.md.

Usage:
    tools/check_perf.py CURRENT.json [BASELINE.json]

CURRENT.json comes from:
    ./build-rel/bench/bench_micro --benchmark_out=CURRENT.json \
        --benchmark_out_format=json

Environment:
    SAG_PERF_TOLERANCE   allowed relative slowdown, default 0.15 (i.e. a
                         +20% regression trips the gate, run-to-run noise
                         of a pinned CI runner does not). Speedups never
                         fail; commit a regenerated baseline to ratchet.

Benchmarks present in only one of the two files are reported but do not
fail the gate (new benchmarks land before their baseline does).
"""

import json
import os
import sys

# Gated families: the SnrField incremental-delta kernel (the SIMD/SoA
# hot path), the solver micro-benchmarks, and the serve per-event path
# (the online engine's latency contract). The scratch and recorder
# variants are diagnostics, not gates.
GATED_PREFIXES = (
    "BM_SnrFieldDeltaIncremental",
    "BM_ZoneHittingSet",
    "BM_Samc",
    "BM_IlpqcIac",
    "BM_ProPowerReduction",
    "BM_OptimalPowerFixedPoint",
    "BM_Mbmc",
    "BM_ServeEventMove",
    "BM_ServeEventFailRecover",
)


def load_times(path):
    """name -> cpu_time (ns) for every gated iteration benchmark."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue
        name = bench["name"]
        if name.startswith(GATED_PREFIXES):
            times[name] = float(bench["cpu_time"])
    return times


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        return 2
    current_path = argv[1]
    baseline_path = (
        argv[2]
        if len(argv) == 3
        else os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(argv[0]))),
            "results",
            "BENCH_BASELINE.json",
        )
    )
    tolerance = float(os.environ.get("SAG_PERF_TOLERANCE", "0.15"))

    current = load_times(current_path)
    baseline = load_times(baseline_path)
    if not baseline:
        print(f"error: no gated benchmarks in baseline {baseline_path}")
        return 2
    if not current:
        print(f"error: no gated benchmarks in current run {current_path}")
        return 2

    failures = []
    print(f"perf gate: tolerance +{tolerance:.0%} over {baseline_path}")
    print(f"{'benchmark':<38} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for name in sorted(baseline):
        if name not in current:
            print(f"{name:<38} {baseline[name]:>12.0f} {'absent':>12} {'-':>8}")
            continue
        ratio = current[name] / baseline[name]
        verdict = ""
        if ratio > 1.0 + tolerance:
            failures.append((name, ratio))
            verdict = "  REGRESSION"
        print(
            f"{name:<38} {baseline[name]:>12.0f} {current[name]:>12.0f} "
            f"{ratio:>8.3f}{verdict}"
        )
    for name in sorted(set(current) - set(baseline)):
        print(f"{name:<38} {'absent':>12} {current[name]:>12.0f} {'-':>8}  (new)")

    if failures:
        print()
        for name, ratio in failures:
            print(
                f"FAIL: {name} is {ratio:.2f}x the baseline "
                f"(limit {1.0 + tolerance:.2f}x)"
            )
        print(
            "If the slowdown is intended, regenerate results/BENCH_BASELINE.json "
            "(see docs/PERFORMANCE.md) and commit it with the change."
        )
        return 1
    print(f"perf gate: {len(current)} gated benchmarks within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
