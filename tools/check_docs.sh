#!/usr/bin/env bash
# Documentation consistency checks, run by the CI `docs` job.
#
#  1. Every relative markdown link in the repo's docs resolves to a file.
#  2. The sag::obs metrics contract is bidirectionally complete:
#     every metric name emitted by a SAG_OBS_* macro in src/ or tools/
#     appears in docs/OBSERVABILITY.md, and every dotted metric name the
#     registry documents exists in the source tree (no stale rows).
#  3. The performance contract (docs/PERFORMANCE.md) is bidirectionally
#     complete: every perf-layer runtime flag read in source
#     (getenv("SAG_*"), SAG_PERF_TOLERANCE) is documented, every SAG_*
#     flag the contract names exists in the tree, and the benchmark
#     families gated by tools/check_perf.py are documented and defined.
#  4. The module-layering contract is bidirectionally in sync: the
#     ```layering``` block in DESIGN.md §10 lists exactly the modules
#     and dependency edges tools/layering.json declares (which sag_lint
#     in turn holds the include graph to), so a DAG change is always a
#     design-document diff too.
set -u
cd "$(dirname "$0")/.."

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }

# --- 1. relative markdown links -------------------------------------------
docs=$(git ls-files '*.md' 2>/dev/null || find . -name '*.md' -not -path './build*')
for doc in $docs; do
    # Extract ](target) links; keep relative paths only (skip URLs/anchors).
    links=$(grep -oE '\]\([^)#]+' "$doc" | sed 's/^](//') || true
    for link in $links; do
        case "$link" in
            http://*|https://*|mailto:*) continue ;;
        esac
        target="$(dirname "$doc")/$link"
        [ -e "$target" ] || err "$doc: broken relative link -> $link"
    done
done

# --- 2. metric registry <-> source ----------------------------------------
registry=docs/OBSERVABILITY.md
[ -f "$registry" ] || { err "missing $registry"; exit 1; }

emitted=$(grep -rhoE 'SAG_OBS_(SPAN|COUNT|COUNT_ADD|GAUGE)\("[^"]+"' src tools \
          | sed 's/.*("//; s/"$//' | sort -u)
[ -n "$emitted" ] || err "found no SAG_OBS_* emission sites in src/ or tools/"

for name in $emitted; do
    grep -qF "\`$name\`" "$registry" || \
        err "metric \`$name\` is emitted in source but missing from $registry"
done

# Documented names: backticked dotted identifiers in the registry tables.
# Only check names whose first segment is an emitting module prefix, so
# prose mentions of file paths or options are not misread as metrics.
documented=$(grep -oE '`(sag|samc|pro|ilpqc|ucra|opt|dual_coverage|snr_field|sim|resilience|serve)\.[a-z0-9_.]+`' \
             "$registry" | tr -d '\`' | sort -u)
for name in $documented; do
    echo "$emitted" | grep -qxF "$name" || \
        err "metric \`$name\` is documented in $registry but not emitted anywhere in src/ or tools/"
done

# --- 3. performance contract <-> source -----------------------------------
perf=docs/PERFORMANCE.md
[ -f "$perf" ] || { err "missing $perf"; exit 1; }

# Runtime knobs the perf layer actually reads: SAG_* environment
# variables consumed in src/, plus the gate's own tolerance override.
perf_flags=$( { grep -rhoE 'getenv\("SAG_[A-Z_]+"\)' src \
                    | sed 's/.*("//; s/")$//'; \
                grep -hoE 'SAG_PERF_TOLERANCE' tools/check_perf.py; } | sort -u)
[ -n "$perf_flags" ] || err "found no perf-layer runtime flags in source"
for flag in $perf_flags; do
    grep -qF "\`$flag\`" "$perf" || \
        err "flag \`$flag\` is read in source but missing from $perf"
done

# Every SAG_* flag the contract documents must exist somewhere in the
# tree (source, CMake options, or the gate script) — no stale knobs.
documented_flags=$(grep -oE '`SAG_[A-Z_]+`' "$perf" | tr -d '\`' | sort -u)
for flag in $documented_flags; do
    grep -rqF "$flag" src tools CMakeLists.txt || \
        err "flag \`$flag\` is documented in $perf but not used anywhere"
done

# Gated benchmark families: the gate script and the contract must agree,
# and every gated family must be a real bench_micro benchmark.
gated=$(grep -oE '"BM_[A-Za-z]+"' tools/check_perf.py | tr -d '"' | sort -u)
[ -n "$gated" ] || err "found no gated benchmark families in tools/check_perf.py"
for bm in $gated; do
    grep -qF "\`$bm\`" "$perf" || \
        err "gated benchmark \`$bm\` (tools/check_perf.py) is missing from $perf"
    grep -qE "void $bm\(" bench/bench_micro.cpp || \
        err "gated benchmark $bm is not defined in bench/bench_micro.cpp"
done
documented_bms=$(grep -oE '`BM_[A-Za-z]+`' "$perf" | tr -d '\`' | sort -u)
for bm in $documented_bms; do
    grep -qE "void $bm\(" bench/bench_micro.cpp || \
        err "benchmark \`$bm\` is documented in $perf but not defined in bench/bench_micro.cpp"
done

# --- 4. layering manifest <-> DESIGN.md ------------------------------------
design=DESIGN.md
manifest=tools/layering.json
if [ ! -f "$manifest" ]; then
    err "missing $manifest"
else
    # The manifest keeps one module per line (`"name": { "deps": [...] }`),
    # which sag_lint parses as real JSON; here a sed projection to the
    # same `module -> dep, dep` shape as the DESIGN.md block suffices.
    manifest_edges=$(sed -n \
        's/^[[:space:]]*"\([a-z_]*\)": { "deps": \[\(.*\)\] }.*$/\1 -> \2/p' \
        "$manifest" | tr -d '"' | sed 's/[[:space:]]*$//' | sort)
    doc_edges=$(sed -n '/^```layering$/,/^```$/p' "$design" |
                grep -v '^```' | sed 's/[[:space:]]*$//' | sort)
    if [ -z "$manifest_edges" ]; then
        err "$manifest: could not extract any module -> deps lines"
    fi
    if [ -z "$doc_edges" ]; then
        err "$design: no \`\`\`layering block (module DAG section missing)"
    fi
    if [ "$manifest_edges" != "$doc_edges" ]; then
        err "module DAG mismatch between $manifest and $design:"
        diff <(echo "$manifest_edges") <(echo "$doc_edges") |
            sed 's/^</  only in manifest: /; s/^>/  only in DESIGN.md: /' |
            grep -v '^---' >&2
    fi
fi

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED" >&2
    exit 1
fi
echo "check_docs: OK ($(echo "$emitted" | wc -l) metrics, $(echo "$perf_flags" | wc -l) perf flags, $(echo "$manifest_edges" | wc -l) layering edges, docs links clean)"
