#!/usr/bin/env bash
# Documentation consistency checks, run by the CI `docs` job.
#
#  1. Every relative markdown link in the repo's docs resolves to a file.
#  2. The sag::obs metrics contract is bidirectionally complete:
#     every metric name emitted by a SAG_OBS_* macro in src/ or tools/
#     appears in docs/OBSERVABILITY.md, and every dotted metric name the
#     registry documents exists in the source tree (no stale rows).
set -u
cd "$(dirname "$0")/.."

fail=0
err() { echo "check_docs: $*" >&2; fail=1; }

# --- 1. relative markdown links -------------------------------------------
docs=$(git ls-files '*.md' 2>/dev/null || find . -name '*.md' -not -path './build*')
for doc in $docs; do
    # Extract ](target) links; keep relative paths only (skip URLs/anchors).
    links=$(grep -oE '\]\([^)#]+' "$doc" | sed 's/^](//') || true
    for link in $links; do
        case "$link" in
            http://*|https://*|mailto:*) continue ;;
        esac
        target="$(dirname "$doc")/$link"
        [ -e "$target" ] || err "$doc: broken relative link -> $link"
    done
done

# --- 2. metric registry <-> source ----------------------------------------
registry=docs/OBSERVABILITY.md
[ -f "$registry" ] || { err "missing $registry"; exit 1; }

emitted=$(grep -rhoE 'SAG_OBS_(SPAN|COUNT|COUNT_ADD|GAUGE)\("[^"]+"' src tools \
          | sed 's/.*("//; s/"$//' | sort -u)
[ -n "$emitted" ] || err "found no SAG_OBS_* emission sites in src/ or tools/"

for name in $emitted; do
    grep -qF "\`$name\`" "$registry" || \
        err "metric \`$name\` is emitted in source but missing from $registry"
done

# Documented names: backticked dotted identifiers in the registry tables.
# Only check names whose first segment is an emitting module prefix, so
# prose mentions of file paths or options are not misread as metrics.
documented=$(grep -oE '`(sag|samc|pro|ilpqc|ucra|opt|dual_coverage|snr_field|sim|resilience)\.[a-z0-9_.]+`' \
             "$registry" | tr -d '\`' | sort -u)
for name in $documented; do
    echo "$emitted" | grep -qxF "$name" || \
        err "metric \`$name\` is documented in $registry but not emitted anywhere in src/ or tools/"
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED" >&2
    exit 1
fi
echo "check_docs: OK ($(echo "$emitted" | wc -l) metrics, docs links clean)"
