"""Escape-hatch audit: `.raw()` / `.value()` outside sag::ids / sag::units.

The strong types deliberately keep one named exit each — `IdVec::raw()`
/ `IdSpan::raw()` / `Id::value()` and the unit types' `.value()` — for
serialization and bulk math.  The contract (docs/STATIC_ANALYSIS.md) is
that every such call *outside the defining modules* carries a written
justification at the call site:

    total += powers[i].value();  // SAG_RAW_OK: summing a bulk column

The marker may sit on the call's line or the line directly above it.
Unjustified calls are findings; there is intentionally no allowlist
route for this rule — the justification lives next to the call, where
review sees it.

The token engine flags any `.raw()` / `->value()` call spelling in the
audited tree; the libclang engine narrows that to calls whose receiver
really is a sag::ids / sag::units type.  The tree currently has no
other `.raw()`/`.value()` members in audited scope, so both engines
agree; if a future type introduces one (e.g. std::optional::value), the
precise engine exempts it and the token engine asks for a SAG_RAW_OK —
a conservative, loudly-visible disagreement, never a silent pass.
"""

from __future__ import annotations

import re

from core import Finding, RULE_RAW_ESCAPE

CALL_RE = re.compile(r"(?:\.|->)\s*(raw|value)\s*\(\s*\)")
MARKER = "SAG_RAW_OK:"

# The defining modules own their escape hatches; tests/ exercise the raw
# views on purpose (they test the escape hatch itself).
EXEMPT_PREFIXES = ("src/ids/", "src/units/")


def justified(src, line: int) -> bool:
    if MARKER in src.line_text(line):
        return True
    return line > 1 and MARKER in src.line_text(line - 1)


def message(member: str) -> str:
    return (f"unjustified strong-type escape hatch `.{member}()`; add a "
            "`// SAG_RAW_OK: <why>` comment on this line or the one above")


def run(sources) -> list:
    findings = []
    for src in sources:
        if src.path.startswith(EXEMPT_PREFIXES):
            continue
        for m in CALL_RE.finditer(src.stripped):
            line = src.stripped.count("\n", 0, m.start()) + 1
            if justified(src, line):
                continue
            findings.append(Finding(
                rule=RULE_RAW_ESCAPE, path=src.path, line=line,
                message=message(m.group(1)), content=src.line_text(line)))
    return findings
