"""Token-engine port of the §2/§3/§4 domain lints, grounded in types.

The grep lints matched the literal token `double` / `size_t` next to a
suspicious parameter name, so a `using PowerScalar = double;` alias (or
a parameter list quoted in a comment) silently escaped or fooled them.
This engine fixes both failure modes without needing libclang:

  * it scans the *stripped* source (comments and strings blanked), so
    prose can never match;
  * it first builds a project-wide type-alias table (`using X = ...;`
    and `typedef ... X;` chains, resolved transitively) and matches a
    parameter's *resolved* type — a typedef'd bare double is caught,
    and an alias to a strong type is not a false positive.

When the libclang engine is also available (CI), it re-derives the same
rules from canonical AST parameter types; findings are deduplicated, so
the two engines agree or the stricter one wins.
"""

from __future__ import annotations

import re

from core import (
    Finding,
    RULE_GAIN_PARAM,
    RULE_IDS_PARAM,
    RULE_UNITS_PARAM,
)

# Parameter-name shapes, kept identical to the grep lints so existing
# allowlist fragments keep their meaning.
POWER_NAME_RE = r"[A-Za-z_]*(?:power|snr|noise|watt|_db|_dbm)[A-Za-z0-9_]*"
GAIN_NAME_RE = r"[A-Za-z_]*(?:gain|atten|path_loss)[A-Za-z0-9_]*"
ENTITY_NAME_RE = r"(?:[A-Za-z0-9_]*_)?(?:ss|rs|bs|sub|cand|zone)(?:_[A-Za-z0-9_]*)?"
COUNT_NAME_RE = re.compile(
    r"(?:count|size|num|total|budget|round|iter|capacity|limit|max|min)")

DOUBLE_BASES = frozenset({"double"})
SIZE_BASES = frozenset({"size_t", "std::size_t"})

_USING_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;{}]+?)\s*;")
_TYPEDEF_RE = re.compile(r"\btypedef\s+([^;{}()]+?)\s+([A-Za-z_]\w*)\s*;")


def _normalize_type(spelling: str) -> str:
    s = re.sub(r"\bconst\b", " ", spelling)
    s = re.sub(r"\s+", " ", s).strip()
    return s


def collect_aliases(sources) -> dict:
    """Project-wide alias table name -> normalized target spelling."""
    table = {}
    for src in sources:
        for m in _USING_RE.finditer(src.stripped):
            table.setdefault(m.group(1), _normalize_type(m.group(2)))
        for m in _TYPEDEF_RE.finditer(src.stripped):
            table.setdefault(m.group(2), _normalize_type(m.group(1)))
    return table


def resolve_alias_set(table: dict, bases: frozenset) -> frozenset:
    """All names that resolve (transitively) to one of `bases`."""
    resolved = set(bases)
    changed = True
    while changed:
        changed = False
        for name, target in table.items():
            if name not in resolved and target in resolved:
                # Aliases whose target carries template arguments were
                # normalized with their full spelling and never land in
                # `resolved`, so vector<double> et al. stay exempt.
                resolved.add(name)
                changed = True
    return frozenset(resolved)


def units_param_message(name: str) -> str:
    return (f"bare-double power/SNR parameter `{name}`; scalar power-like "
            "quantities cross API boundaries as sag::units strong types")


def ids_param_message(name: str) -> str:
    return (f"raw size_t entity-index parameter `{name}`; entity indices "
            "cross solver API boundaries as sag::ids strong IDs")


def gain_param_message(name: str) -> str:
    return (f"bare-double path-gain parameter `{name}`; route the channel "
            "through sag::wireless::GainKernel / PropagationModel")


def _param_pattern(type_names, name_re: str) -> re.Pattern:
    alts = "|".join(sorted(re.escape(t) for t in type_names))
    return re.compile(
        r"[(,]\s*(?:const\s+)?(?<![\w:])(?:" + alts + r")(?![\w:<])"
        r"\s+(" + name_re + r")\s*(?=[,)=])")


def _scan(src, pattern: re.Pattern, rule: str, message_fn, name_filter=None):
    findings = []
    for m in pattern.finditer(src.stripped):
        name = m.group(1)
        if name_filter and not name_filter(name):
            continue
        line = src.stripped.count("\n", 0, m.start(1)) + 1
        findings.append(Finding(
            rule=rule, path=src.path, line=line,
            message=message_fn(name), content=src.line_text(line)))
    return findings


def run(sources, aliases) -> list:
    """Run the three parameter rules over the scanned sources."""
    double_types = resolve_alias_set(aliases, DOUBLE_BASES)
    size_types = resolve_alias_set(aliases, SIZE_BASES)
    units_pat = _param_pattern(double_types, POWER_NAME_RE)
    gain_pat = _param_pattern(double_types, GAIN_NAME_RE)
    ids_pat = _param_pattern(size_types, ENTITY_NAME_RE)

    findings = []
    for src in sources:
        in_units = src.path.startswith("src/units/")
        in_wireless = src.path.startswith("src/wireless/")
        solver_header = src.path.startswith("src/core/include/")
        if not in_units:
            findings += _scan(src, units_pat, RULE_UNITS_PARAM,
                              units_param_message)
        if not in_wireless:
            findings += _scan(src, gain_pat, RULE_GAIN_PARAM,
                              gain_param_message)
        if solver_header:
            findings += _scan(
                src, ids_pat, RULE_IDS_PARAM, ids_param_message,
                name_filter=lambda n: not COUNT_NAME_RE.search(n))
    return findings
