"""libclang engine: canonical-type-exact re-derivation of the AST rules.

Layered on top of the builtin token engine when two prerequisites hold:

  * the clang python bindings import (CI installs python3-clang-18;
    the dev container has no libclang and runs builtin-only), and
  * the build directory holds a compile_commands.json (the project
    always exports one).

It parses every project translation unit in the compilation database
and re-derives the three parameter rules from each parameter's
*canonical* type — so a `using PowerScalar = double;` chain, an
aliased std::size_t, or any formatting the token engine cannot follow
resolves exactly — and narrows the raw-escape audit to member calls
whose receiver class really lives in sag::ids / sag::units.  Findings
carry the same messages as the builtin engine and are deduplicated
against it.

Everything is wrapped defensively: an unparsable TU degrades to a
warning list the caller reports, never a crash of the gate.
"""

from __future__ import annotations

import glob
import json
import os
import re
import shlex

import param_rules
import raw_escape
from core import (
    Finding,
    RULE_GAIN_PARAM,
    RULE_IDS_PARAM,
    RULE_RAW_ESCAPE,
    RULE_UNITS_PARAM,
)

_POWER_RE = re.compile(r"\A" + param_rules.POWER_NAME_RE + r"\Z")
_GAIN_RE = re.compile(r"\A" + param_rules.GAIN_NAME_RE + r"\Z")
_ENTITY_RE = re.compile(r"\A" + param_rules.ENTITY_NAME_RE + r"\Z")

# Canonical spellings of the guarded scalar types.  size_t canonicalizes
# per-platform; cover the LP64/LLP64 spellings.
_DOUBLE_CANON = {"double", "const double"}
_SIZE_CANON = {"unsigned long", "const unsigned long",
               "unsigned long long", "const unsigned long long"}

_LIBCLANG_GLOBS = (
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/llvm-*/lib/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
    "/usr/lib/*/libclang.so*",
)


def load() -> tuple:
    """Returns (cindex, None) when usable, else (None, reason)."""
    try:
        from clang import cindex
    except ImportError as e:
        return None, f"clang python bindings not importable ({e})"
    override = os.environ.get("SAG_LIBCLANG")
    candidates = [override] if override else [None]
    if not override:
        for pattern in _LIBCLANG_GLOBS:
            candidates += sorted(glob.glob(pattern), reverse=True)
    last_err = "no libclang shared library found"
    for cand in candidates:
        try:
            if cand is not None:
                cindex.Config.library_file = cand
            cindex.Index.create()
            return cindex, None
        except Exception as e:  # cindex raises LibclangError and friends
            last_err = str(e)
            # A Config already bound to a bad library cannot be rebound
            # in-process once loaded; only unloaded configs retry.
            if getattr(cindex.conf, "loaded", False):
                break
    return None, f"libclang not loadable ({last_err})"


def version_string(cindex) -> str:
    try:
        fn = cindex.conf.lib.clang_getClangVersion
        fn.restype = cindex._CXString
        return cindex.conf.lib.clang_getCString(fn()).decode()
    except Exception:
        return "libclang (version unknown)"


def _tu_args(entry: dict) -> list:
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    args, skip = [], False
    for a in argv[1:]:
        if skip:
            skip = False
            continue
        if a in ("-o", "-c"):
            skip = a == "-o"
            continue
        # Keep only flags clang's frontend understands everywhere; a
        # GCC-only flag would fail the parse outright.
        if a.startswith(("-I", "-D", "-U", "-std=", "-isystem", "-include")):
            args.append(a)
    return args


def _qualified_name(cursor) -> str:
    parts = []
    c = cursor
    while c is not None and c.kind != c.kind.TRANSLATION_UNIT:
        if c.spelling:
            parts.append(c.spelling)
        c = c.semantic_parent
    return "::".join(reversed(parts))


def run(cindex, root: str, build_dir: str, sources_by_path: dict) -> tuple:
    """Returns (findings, warnings). sources_by_path maps repo-relative
    path -> SourceFile (the audit scope; anything else is ignored)."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)

    findings, warnings = [], []
    index = cindex.Index.create()
    seen_tus = set()
    for entry in entries:
        src = os.path.normpath(os.path.join(entry.get("directory", root),
                                            entry["file"]))
        rel = os.path.relpath(src, root).replace(os.sep, "/")
        if rel.startswith("..") or rel in seen_tus:
            continue
        if not rel.startswith(("src/", "tools/", "examples/")):
            continue
        seen_tus.add(rel)
        try:
            tu = index.parse(src, args=_tu_args(entry))
        except Exception as e:
            warnings.append(f"libclang failed to parse {rel}: {e}")
            continue
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            warnings.append(f"libclang diagnostics in {rel}: {fatal[0]}")
        try:
            _visit(cindex, tu.cursor, root, sources_by_path, findings)
        except Exception as e:
            warnings.append(f"libclang visit failed in {rel}: {e}")
    return findings, warnings


def _visit(cindex, cursor, root, sources_by_path, findings):
    K = cindex.CursorKind
    for c in cursor.walk_preorder():
        try:
            loc_file = c.location.file
        except Exception:
            continue
        if loc_file is None:
            continue
        rel = os.path.relpath(str(loc_file), root).replace(os.sep, "/")
        src = sources_by_path.get(rel)
        if src is None:
            continue
        if c.kind == K.PARM_DECL:
            _check_param(c, rel, src, findings)
        elif c.kind == K.MEMBER_REF_EXPR and c.spelling in ("raw", "value"):
            _check_member_ref(c, rel, src, findings)


def _check_param(c, rel, src, findings):
    name = c.spelling
    if not name:
        return
    canon = c.type.get_canonical().spelling
    line = c.location.line
    if canon in _DOUBLE_CANON and not rel.startswith("src/units/"):
        if _POWER_RE.match(name):
            findings.append(Finding(
                rule=RULE_UNITS_PARAM, path=rel, line=line,
                message=param_rules.units_param_message(name),
                content=src.line_text(line)))
        if _GAIN_RE.match(name) and not rel.startswith("src/wireless/"):
            findings.append(Finding(
                rule=RULE_GAIN_PARAM, path=rel, line=line,
                message=param_rules.gain_param_message(name),
                content=src.line_text(line)))
    elif canon in _SIZE_CANON and rel.startswith("src/core/include/"):
        if (_ENTITY_RE.match(name)
                and not param_rules.COUNT_NAME_RE.search(name)):
            findings.append(Finding(
                rule=RULE_IDS_PARAM, path=rel, line=line,
                message=param_rules.ids_param_message(name),
                content=src.line_text(line)))


def _check_member_ref(c, rel, src, findings):
    if rel.startswith(raw_escape.EXEMPT_PREFIXES):
        return
    ref = c.referenced
    if ref is None:
        return
    owner = _qualified_name(ref.semantic_parent) if ref.semantic_parent else ""
    if not (owner.startswith("sag::ids") or owner.startswith("sag::units")):
        return
    line = c.location.line
    if raw_escape.justified(src, line):
        return
    findings.append(Finding(
        rule=RULE_RAW_ESCAPE, path=rel, line=line,
        message=raw_escape.message(c.spelling),
        content=src.line_text(line)))
