"""Include-graph layering check against the tools/layering.json manifest.

The manifest declares the module DAG the architecture is built around
(units/ids/geometry at the bottom, core above the algorithm layers,
io/sim at the top).  This rule makes the DAG real:

  * every source file under src/<dir>/ must belong to a declared module;
  * every `#include <sag/X/...>` / `#include "sag/X/..."` crossing from
    module M into X must be a declared edge (X == M or X in deps(M));
  * apex directories (tools, examples, bench, tests) sit above the DAG
    and may include any *declared* module — but an include of an
    undeclared sag/<X>/ is still an error;
  * a declared edge that no include exercises is *dead* and fails, so
    the manifest can never drift looser than the code: every entry in
    tools/layering.json is load-bearing, and deleting any one of them
    makes this check (and with it the static gate) fail.

Layering findings are not suppressible: the manifest IS the policy, so
a new edge is legalized by declaring it (and passing review + the
check_docs.sh DESIGN.md sync), never by allowlisting a violation.
"""

from __future__ import annotations

import json
import os
import re

from core import Finding, RULE_LAYERING

MANIFEST_DEFAULT = "tools/layering.json"
# Matched against ORIGINAL lines: quoted include paths are string
# literals, so the stripped view blanks them.  A line only counts when
# its stripped counterpart still carries the directive, which is what
# keeps commented-out includes out of the graph.
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]sag/([A-Za-z0-9_]+)/')
DIRECTIVE_RE = re.compile(r"^\s*#\s*include\b")


def include_edges(src):
    """Yield (lineno, target-module) for every live sag/ include."""
    stripped_lines = src.stripped.split("\n")
    for lineno, line in enumerate(src.lines, 1):
        m = INCLUDE_RE.match(line)
        if not m:
            continue
        if lineno <= len(stripped_lines) and not DIRECTIVE_RE.match(
                stripped_lines[lineno - 1]):
            continue  # the directive only exists inside a comment
        yield lineno, m.group(1)


class ManifestError(Exception):
    pass


def load_manifest(path: str) -> tuple[dict, list]:
    """Returns ({module: set(deps)}, [apex dirs]).  Keys starting with
    '_' are documentation and ignored."""
    try:
        with open(path, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        raise ManifestError(f"cannot read layering manifest {path}: {e}")
    raw_modules = data.get("modules")
    if not isinstance(raw_modules, dict) or not raw_modules:
        raise ManifestError(f"{path}: no \"modules\" object")
    modules = {}
    for name, spec in raw_modules.items():
        if name.startswith("_"):
            continue
        deps = spec.get("deps", []) if isinstance(spec, dict) else None
        if deps is None or not isinstance(deps, list):
            raise ManifestError(f"{path}: module {name!r} needs a \"deps\" list")
        modules[name] = set(deps)
    apex = data.get("apex", [])
    if not isinstance(apex, list):
        raise ManifestError(f"{path}: \"apex\" must be a list of directories")
    return modules, apex


def module_of(path: str):
    parts = path.split("/")
    if len(parts) >= 2 and parts[0] == "src":
        return parts[1]
    return None


def run(sources, manifest_path: str) -> list:
    modules, apex = load_manifest(manifest_path)
    findings = []

    for name, deps in sorted(modules.items()):
        for dep in sorted(deps):
            if dep not in modules:
                findings.append(Finding(
                    rule=RULE_LAYERING, path=manifest_path, line=1,
                    message=(f"module `{name}` declares dependency on "
                             f"undeclared module `{dep}`")))
            if dep == name:
                findings.append(Finding(
                    rule=RULE_LAYERING, path=manifest_path, line=1,
                    message=f"module `{name}` declares a self-dependency"))

    used_edges = set()  # (module, dep) include edges actually seen
    modules_with_files = set()

    for src in sources:
        mod = module_of(src.path)
        if mod is not None:
            if mod not in modules:
                findings.append(Finding(
                    rule=RULE_LAYERING, path=src.path, line=1,
                    message=(f"src/{mod}/ is not a declared module in "
                             f"{manifest_path}; add it (with its deps) to "
                             "the layering manifest and to DESIGN.md"),
                    content=src.path))
                continue
            modules_with_files.add(mod)
        top = src.path.split("/")[0]
        in_apex = mod is None and top in apex
        if mod is None and not in_apex:
            continue
        for line, target in include_edges(src):
            if target not in modules:
                findings.append(Finding(
                    rule=RULE_LAYERING, path=src.path, line=line,
                    message=(f"include of undeclared module `sag/{target}/`"
                             f" (not in {manifest_path})"),
                    content=src.line_text(line)))
                continue
            if mod is None or target == mod:
                continue  # apex dirs may use any declared module
            if target in modules[mod]:
                used_edges.add((mod, target))
            else:
                findings.append(Finding(
                    rule=RULE_LAYERING, path=src.path, line=line,
                    message=(
                        f"illegal include edge: module `{mod}` -> `{target}` "
                        f"violates the layering manifest ({manifest_path}); "
                        f"`{target}` is not in `{mod}`'s declared deps"),
                    content=src.line_text(line)))

    for name in sorted(modules_with_files):
        for dep in sorted(modules[name] - {d for (m, d) in used_edges
                                           if m == name}):
            findings.append(Finding(
                rule=RULE_LAYERING, path=manifest_path, line=1,
                message=(
                    f"dead layering edge `{name}` -> `{dep}`: declared in "
                    f"{manifest_path} but no include in src/{name}/ uses it; "
                    "remove the stale edge so the manifest stays tight"),
                content=f"{name} -> {dep}"))
    return findings
