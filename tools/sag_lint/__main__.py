"""sag_lint entry point.  Run from the repository root:

    python3 tools/sag_lint [--build-dir build] [--require-libclang]

Exit codes: 0 clean, 1 findings, 2 environment/configuration error.

Engine ladder (docs/STATIC_ANALYSIS.md §4.8):

  1. builtin token engine — always runs; python3 stdlib only.  Strips
     comments/strings, resolves project-wide type aliases, and applies
     the parameter rules, the raw-escape audit, the layering check, and
     dead-suppression detection.
  2. libclang engine — layered on top when the clang python bindings
     and $build_dir/compile_commands.json both exist (the CI static
     job; --require-libclang makes its absence fatal there).  Re-derives
     the parameter rules from canonical AST types and the raw-escape
     audit from real receiver types; findings are deduplicated.

tools/check_static.sh prefers this linter and only falls back to its
grep lints when python3 itself is unavailable.
"""

from __future__ import annotations

import argparse
import os
import sys

import clang_engine
import layering
import param_rules
import raw_escape
from core import (
    Finding,
    RULE_DEAD_SUPPRESSION,
    SUPPRESSIBLE_RULES,
    SourceFile,
    Suppressions,
    walk_sources,
)

ALLOWLIST = "tools/check_static_allowlist.txt"
CPPCHECK_SUPPRESSIONS = "tools/cppcheck-suppressions.txt"
SCAN_DIRS = ("src", "tools", "examples", "bench", "tests")
AUDIT_PREFIXES = ("src/", "tools/", "examples/")


def parse_args(argv):
    p = argparse.ArgumentParser(prog="sag_lint")
    p.add_argument("--root", default=".", help="repository root")
    p.add_argument("--build-dir", default="build",
                   help="build dir holding compile_commands.json")
    p.add_argument("--layering", default=layering.MANIFEST_DEFAULT,
                   help="layering manifest path (relative to --root)")
    p.add_argument("--require-libclang", action="store_true",
                   help="fail (exit 2) unless the libclang engine runs")
    p.add_argument("--report", default=os.environ.get("SAG_LINT_REPORT", ""),
                   help="also write the findings report to this file")
    p.add_argument("--print-engine", action="store_true",
                   help="print the resolved engine(s) and exit")
    return p.parse_args(argv)


def check_cppcheck_paths(root: str) -> list:
    """Suppression entries pinned to a path must point at a real file —
    a moved or deleted file leaves a dead suppression behind."""
    findings = []
    path = os.path.join(root, CPPCHECK_SUPPRESSIONS)
    if not os.path.isfile(path):
        return findings
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":")
            if len(parts) < 2:
                continue  # bare checkId: nothing to verify statically
            target = parts[1]
            if target and not os.path.exists(os.path.join(root, target)):
                findings.append(Finding(
                    rule=RULE_DEAD_SUPPRESSION, path=CPPCHECK_SUPPRESSIONS,
                    line=lineno,
                    message=(f"dead allowlist entry: suppression path "
                             f"`{target}` does not exist in the tree"),
                    content=line))
    return findings


def main(argv) -> int:
    args = parse_args(argv)
    root = args.root

    cindex, clang_reason = clang_engine.load()
    db = os.path.join(root, args.build_dir, "compile_commands.json")
    have_db = os.path.isfile(db)
    use_clang = cindex is not None and have_db
    if cindex is not None and not have_db:
        clang_reason = f"no compilation database at {db}"

    engine_desc = "builtin token engine"
    if use_clang:
        engine_desc += f" + {clang_engine.version_string(cindex)}"
    else:
        engine_desc += f" (libclang engine off: {clang_reason})"
    if args.print_engine:
        print(engine_desc)
        return 0
    if args.require_libclang and not use_clang:
        print(f"sag_lint: --require-libclang but {clang_reason}",
              file=sys.stderr)
        return 2

    rel_paths = walk_sources(root, SCAN_DIRS)
    sources = [SourceFile.load(root, p) for p in rel_paths]
    by_path = {s.path: s for s in sources}
    audited = [s for s in sources if s.path.startswith(AUDIT_PREFIXES)]

    findings = []
    aliases = param_rules.collect_aliases(audited)
    findings += param_rules.run(audited, aliases)
    findings += raw_escape.run(audited)
    try:
        findings += layering.run(sources, os.path.join(root, args.layering))
    except layering.ManifestError as e:
        print(f"sag_lint: {e}", file=sys.stderr)
        return 2

    warnings = []
    if use_clang:
        try:
            clang_findings, warnings = clang_engine.run(
                cindex, root, os.path.join(root, args.build_dir), by_path)
            findings += clang_findings
        except Exception as e:
            print(f"sag_lint: libclang engine failed: {e}", file=sys.stderr)
            return 2

    # Dedupe across engines, keep a stable order for reports.
    unique = {}
    for f in findings:
        unique.setdefault(f.identity(), f)
    findings = sorted(unique.values(),
                      key=lambda f: (f.path, f.line, f.rule, f.message))

    sup = Suppressions()
    sup.load(root, ALLOWLIST, SUPPRESSIBLE_RULES)
    findings = sup.filter(findings)
    findings += sup.format_errors
    findings += sup.dead_entries()
    findings += check_cppcheck_paths(root)

    lines = [f"sag_lint: {engine_desc}"]
    lines += [f"sag_lint: note: {w}" for w in warnings]
    for f in findings:
        lines.append(f"sag_lint: [{f.rule}] {f.path}:{f.line}: {f.message}")
        if f.content:
            lines.append(f"    {f.path}:{f.line}:{f.content}")
    verdict = (f"sag_lint: FAILED ({len(findings)} finding(s))"
               if findings else
               f"sag_lint: OK ({len(audited)} files audited, "
               f"{len(sup.entries)} suppression(s) all live)")
    lines.append(verdict)
    text = "\n".join(lines)
    print(text, file=sys.stderr if findings else sys.stdout)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(text + "\n")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    sys.exit(main(sys.argv[1:]))
