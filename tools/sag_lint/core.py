"""Shared infrastructure for sag_lint: source model, findings, suppressions.

Everything here is dependency-free python3 stdlib, so the linter runs on
any toolchain (the dev container ships no libclang).  The clang engine
in clang_engine.py layers exact AST analysis on top when the bindings
and a compilation database exist.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

# Rule identifiers.  Suppression entries name one of these explicitly;
# an entry with an unknown or absent rule name is itself an error.
RULE_UNITS_PARAM = "units-param"
RULE_IDS_PARAM = "ids-param"
RULE_GAIN_PARAM = "gain-param"
RULE_RAW_ESCAPE = "raw-escape"
RULE_LAYERING = "layering"
RULE_DEAD_SUPPRESSION = "dead-suppression"

# Rules whose findings may be suppressed via tools/check_static_allowlist.txt.
SUPPRESSIBLE_RULES = (RULE_UNITS_PARAM, RULE_IDS_PARAM, RULE_GAIN_PARAM)

SOURCE_EXTS = (".h", ".cpp")


@dataclass
class Finding:
    """One lint violation, anchored to a source line."""

    rule: str
    path: str  # repo-relative, posix separators
    line: int  # 1-based
    message: str
    content: str = ""  # the source line, for reporting + suppression match

    def key(self) -> str:
        """The string suppression fragments are matched against."""
        return f"{self.path}:{self.line}:{self.content}"

    def identity(self) -> tuple:
        """Dedupe key across engines (builtin + libclang see the same site)."""
        return (self.rule, self.path, self.line, self.message)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving layout.

    Every replaced character becomes a space (newlines are kept), so
    byte offsets and line numbers in the stripped text match the
    original.  Handles //, /* */, "..."/'...' with escapes, and C++ raw
    strings R"delim(...)delim".  This is what makes the token rules
    immune to the classic grep false positives: a parameter list quoted
    in a comment or a log string never matches.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"' and (not out or not _ident_char(text[i - 1])):
            # Raw string: R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            stop = n if end < 0 else end + len(m.group(1)) + 2
            while i < stop:
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
        elif c == '"' or c == "'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def _ident_char(c: str) -> bool:
    return c.isalnum() or c == "_"


@dataclass
class SourceFile:
    """One scanned source file: original lines plus a stripped view."""

    path: str  # repo-relative posix path
    text: str
    stripped: str
    lines: list = field(default_factory=list)

    @classmethod
    def load(cls, root: str, rel_path: str) -> "SourceFile":
        with open(os.path.join(root, rel_path), encoding="utf-8", errors="replace") as f:
            text = f.read()
        return cls(
            path=rel_path.replace(os.sep, "/"),
            text=text,
            stripped=strip_comments_and_strings(text),
            lines=text.split("\n"),
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].rstrip()
        return ""


def walk_sources(root: str, top_dirs, exts=SOURCE_EXTS):
    """Deterministically list repo-relative source paths under top_dirs."""
    found = []
    for top in top_dirs:
        base = os.path.join(root, top)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(tuple(exts)):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    found.append(rel.replace(os.sep, "/"))
    return found


@dataclass
class SuppressionEntry:
    file: str  # allowlist file the entry came from
    lineno: int
    rule: str
    fragment: str
    used: bool = False

    def describe(self) -> str:
        return f"{self.file}:{self.lineno}: `{self.rule}: {self.fragment}`"


class Suppressions:
    """Rule-named allowlist: `rule-id: fixed-string-fragment` per line.

    A fragment is matched (substring, fixed) against a finding's
    `path:line:content` key, exactly like the grep lints' `grep -F`
    filter.  Every entry must name the rule it suppresses; after a run,
    entries that matched nothing are dead and reported as findings
    themselves (dead-suppression), so stale entries cannot silently
    mask future violations.
    """

    ENTRY_RE = re.compile(r"^([a-z][a-z0-9-]*):\s*(.+?)\s*$")

    def __init__(self):
        self.entries: list[SuppressionEntry] = []
        self.format_errors: list[Finding] = []

    def load(self, root: str, rel_path: str, allowed_rules) -> None:
        path = os.path.join(root, rel_path)
        if not os.path.isfile(path):
            return
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                m = self.ENTRY_RE.match(line)
                if not m or m.group(1) not in allowed_rules:
                    self.format_errors.append(Finding(
                        rule=RULE_DEAD_SUPPRESSION,
                        path=rel_path,
                        line=lineno,
                        message=(
                            "allowlist entry must name the rule it suppresses "
                            f"(one of: {', '.join(allowed_rules)}), as "
                            "`rule-id: fixed-fragment`"),
                        content=line,
                    ))
                    continue
                self.entries.append(SuppressionEntry(
                    file=rel_path, lineno=lineno,
                    rule=m.group(1), fragment=m.group(2)))

    def filter(self, findings):
        """Drop suppressed findings, marking the entries that fired."""
        kept = []
        for f in findings:
            suppressed = False
            for e in self.entries:
                if e.rule == f.rule and e.fragment in f.key():
                    e.used = True
                    suppressed = True
            if not suppressed:
                kept.append(f)
        return kept

    def dead_entries(self):
        """Entries that matched no finding this run → dead-suppression."""
        dead = []
        for e in self.entries:
            if not e.used:
                dead.append(Finding(
                    rule=RULE_DEAD_SUPPRESSION,
                    path=e.file,
                    line=e.lineno,
                    message=(
                        f"dead allowlist entry (matches nothing): {e.describe()}; "
                        "delete it so it cannot mask a future violation"),
                    content=f"{e.rule}: {e.fragment}",
                ))
        return dead
