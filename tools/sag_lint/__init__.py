# sag_lint: AST/token-grounded static analysis for the SAG repository.
#
# The package is run as `python3 tools/sag_lint` from the repository root
# (tools/check_static.sh does this for you). See docs/STATIC_ANALYSIS.md
# for the rule catalog, suppression syntax, and the layering manifest
# schema (tools/layering.json).
