// Ablation: the attenuation factor alpha. The paper only says alpha
// "usually varies in a range of 2-4" (Eq. 2.1); this sweep shows how the
// choice moves the headline quantities. Expected: coverage RS counts are
// insensitive (they are distance-driven), but power costs and the
// SNR-feasibility margin shift — smaller alpha means interference decays
// slower, so green allocations must keep more power in reserve.
#include <cmath>

#include "bench_common.h"

#include "sag/core/power.h"
#include "sag/core/samc.h"
#include "sag/core/ucra.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    bench::print_header("Ablation: attenuation factor alpha",
                        "500x500, 30 users, SNR=-15dB, 4 BSs");

    sim::Table table({"alpha", "cov-RSs", "conn-RSs", "P_L(PRO)", "P_H(UCPO)",
                      "feasible%"});
    for (const double alpha : {2.0, 2.5, 3.0, 3.5, 4.0}) {
        bench::SeedAverage cov, conn, pl, ph, ok;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg;
            cfg.field_side = 500.0;
            cfg.subscriber_count = 30;
            cfg.base_station_count = 4;
            cfg.snr_threshold_db = units::Decibel{-15.0};
            cfg.radio.alpha = alpha;
            // The default ambient noise is calibrated for alpha = 3; keep
            // the noise-only SNR at the 40 m boundary constant across the
            // sweep so the comparison isolates the interference geometry.
            cfg.radio.snr_ambient_noise =
                cfg.radio.snr_ambient_noise * std::pow(40.0, 3.0 - alpha);
            const auto s = sim::generate_scenario(cfg, 9500 + seed);
            const auto plan = core::solve_samc(s).plan;
            if (!plan.feasible) {
                cov.add(bench::kInfeasible);
                conn.add(bench::kInfeasible);
                pl.add(bench::kInfeasible);
                ph.add(bench::kInfeasible);
                ok.add(0.0);
                continue;
            }
            ok.add(100.0);
            cov.add(static_cast<double>(plan.rs_count()));
            const auto pro = core::allocate_power_pro(s, plan);
            pl.add(pro.feasible ? pro.total : bench::kInfeasible);
            auto tree = core::solve_mbmc(s, plan);
            conn.add(static_cast<double>(tree.connectivity_rs_count()));
            core::allocate_power_ucpo(s, plan, tree);
            ph.add(tree.upper_tier_power());
        }
        table.add_numeric_row(
            {alpha, cov.mean(), conn.mean(), pl.mean(), ph.mean(), ok.mean()}, 1);
    }
    table.print(std::cout);
    return 0;
}
