// Feasibility-onset curve of the LoRa link-budget family: the non-two-ray
// scenario family run end-to-end through solve_sag. Sweeps the SNR
// threshold beta (and user density) over presets::lora_field and reports
// the share of seeds that stay feasible, the deployment sizes, and the
// total power. Expected shape: full feasibility at the permissive end, a
// sharp onset as beta approaches the ambient-noise-limited SNR of a
// 150-250 m SF9 access link (~-5 dB), mirroring the paper's Fig. 3(d)
// infeasibility cliff under the two-ray model. Every feasible point is
// re-checked by the independent verifiers. Writes the curve to
// results/LORA_ONSET.json for plotting.
#include "bench_common.h"

#include <cmath>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/io/json.h"
#include "sag/io/scenario_io.h"
#include "sag/sim/paper_presets.h"

namespace {

using namespace sag;
using bench::BenchConfig;
using bench::kInfeasible;
using bench::SeedAverage;

struct PointStats {
    SeedAverage cover_rs, connect_rs, power;
};

/// One solve, verifier-checked: NaN if the pipeline fails or either
/// verifier rejects the plan (a silently-broken plan must not count as
/// a feasible data point).
bool solve_point(const core::Scenario& s, PointStats& out) {
    const core::SagResult r = core::solve_sag(s);
    const bool ok =
        r.feasible &&
        core::verify_coverage(s, r.coverage, r.lower_power.powers).feasible &&
        core::verify_topology(s, r.coverage, r.connectivity).feasible;
    out.cover_rs.add(ok ? static_cast<double>(r.coverage_rs_count()) : kInfeasible);
    out.connect_rs.add(ok ? static_cast<double>(r.connectivity_rs_count())
                          : kInfeasible);
    out.power.add(ok ? r.total_power() : kInfeasible);
    return ok;
}

io::Json point_json(double x, const char* x_name, const PointStats& st) {
    io::Json::Object o;
    o[x_name] = io::Json(x);
    o["feasible_share"] = io::Json(st.power.feasible_share());
    o["coverage_rs"] = io::Json(st.cover_rs.mean());
    o["connectivity_rs"] = io::Json(st.connect_rs.mean());
    o["total_power"] = io::Json(st.power.mean());
    return io::Json(std::move(o));
}

io::Json::Array snr_sweep(const BenchConfig& bc) {
    bench::print_header(
        "LoRa onset (beta)",
        "500x500 SF9/125kHz field, 30 users, router relays / client "
        "subscribers: feasibility share vs SNR threshold");
    sim::Table table(
        {"SNR(dB)", "feas%", "RS_cover", "RS_connect", "P_total(W)"});
    io::Json::Array points;
    for (double snr = -20.0; snr <= -4.0 + 1e-9; snr += 2.0) {
        PointStats st;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg = sim::presets::lora_field(30);
            cfg.snr_threshold_db = units::Decibel{snr};
            (void)solve_point(sim::generate_scenario(cfg, 7000 + seed), st);
        }
        table.add_numeric_row({snr, 100.0 * st.power.feasible_share(),
                               st.cover_rs.mean(), st.connect_rs.mean(),
                               st.power.mean()},
                              3);
        points.push_back(point_json(snr, "snr_threshold_db", st));
    }
    table.print(std::cout);
    std::printf("\n");
    return points;
}

io::Json::Array user_sweep(const BenchConfig& bc) {
    bench::print_header(
        "LoRa onset (density)",
        "500x500 SF9/125kHz field at beta=-15dB: feasibility and deployment "
        "size vs user count");
    sim::Table table(
        {"users", "feas%", "RS_cover", "RS_connect", "P_total(W)"});
    io::Json::Array points;
    for (const std::size_t users : {10, 20, 30, 40, 50, 60}) {
        PointStats st;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            (void)solve_point(
                sim::generate_scenario(sim::presets::lora_field(users),
                                       8000 + seed),
                st);
        }
        table.add_numeric_row({static_cast<double>(users),
                               100.0 * st.power.feasible_share(),
                               st.cover_rs.mean(), st.connect_rs.mean(),
                               st.power.mean()},
                              3);
        points.push_back(point_json(static_cast<double>(users), "users", st));
    }
    table.print(std::cout);
    std::printf("\n");
    return points;
}

}  // namespace

int main(int argc, char** argv) {
    const BenchConfig bc = BenchConfig::parse(argc, argv);
    const sag::bench::ReportScope report_scope(bc);
    std::printf(
        "LoRa link-budget feasibility onset (seeds per point: %d%s)\n\n",
        bc.seeds, bc.fast ? ", fast mode" : "");

    io::Json curve;
    curve["bench"] = io::Json(std::string("lora_onset"));
    curve["model"] = io::Json(std::string("lora"));
    curve["preset"] = io::Json(std::string("lora_field"));
    curve["seeds"] = io::Json(bc.seeds);
    curve["snr_sweep"] = io::Json(snr_sweep(bc));
    curve["user_sweep"] = io::Json(user_sweep(bc));

    try {
        std::filesystem::create_directories("results");
        const std::string path = "results/LORA_ONSET.json";
        sag::io::write_text_file(path, curve.dump(2) + "\n");
        std::printf("wrote onset curve: %s\n", path.c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "failed writing results/LORA_ONSET.json: %s\n",
                     e.what());
        return 1;
    }
    return 0;
}
