// Ablation: what the paper's UCPO (Algorithm 8) leaves on the table by
// powering each relay chain only for its own coverage RS's strictest
// subscriber. The aggregation-aware variant sizes every chain for the
// subtree's summed data rate. Expected: the paper allocation undercounts
// increasingly with user density (deeper trees aggregate more traffic),
// while both stay far below the all-Pmax baseline.
#include "bench_common.h"

#include "sag/core/samc.h"
#include "sag/core/ucra.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    bench::print_header("Ablation: UCPO traffic aggregation",
                        "upper-tier power, 800x800, SNR=-15dB, 4 BSs");

    sim::Table table(
        {"users", "UCPO(paper)", "UCPO(aggregated)", "undercount%", "baseline"});
    for (const std::size_t users : {10ul, 20ul, 30ul, 40ul, 50ul, 60ul, 70ul}) {
        bench::SeedAverage paper_p, agg_p, gap, base_p;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg;
            cfg.field_side = 800.0;
            cfg.subscriber_count = users;
            cfg.base_station_count = 4;
            cfg.snr_threshold_db = units::Decibel{-15.0};
            const auto s = sim::generate_scenario(cfg, 9400 + seed);
            const auto cov = core::solve_samc(s).plan;
            if (!cov.feasible) {
                paper_p.add(bench::kInfeasible);
                agg_p.add(bench::kInfeasible);
                gap.add(bench::kInfeasible);
                base_p.add(bench::kInfeasible);
                continue;
            }
            auto paper = core::solve_mbmc(s, cov);
            auto aggregated = paper;
            auto baseline = paper;
            core::allocate_power_ucpo(s, cov, paper);
            core::allocate_power_ucpo_aggregated(s, cov, aggregated);
            core::allocate_power_max(s, baseline);
            paper_p.add(paper.upper_tier_power());
            agg_p.add(aggregated.upper_tier_power());
            base_p.add(baseline.upper_tier_power());
            if (aggregated.upper_tier_power() > 1e-9) {
                gap.add(100.0 * (aggregated.upper_tier_power() -
                                 paper.upper_tier_power()) /
                        aggregated.upper_tier_power());
            }
        }
        table.add_numeric_row({static_cast<double>(users), paper_p.mean(),
                               agg_p.mean(), gap.mean(), base_p.mean()},
                              1);
    }
    table.print(std::cout);
    return 0;
}
