// Reproduces paper Fig. 7 (a)-(c): total power consumption of the full
// SAG pipeline vs {SAMC, IAC, GAC} + DARP baselines on 300x300, 500x500
// and 800x800 fields. Expected shape: SAG lowest everywhere; the DARP
// variants cluster above it and grow linearly in the RS count (everything
// at P_max); the gap widens with the field size.
#include "bench_common.h"

#include "sag/exec/thread_pool.h"

#include "sag/core/candidates.h"
#include "sag/core/ilpqc.h"
#include "sag/core/sag.h"

namespace {

using namespace sag;
using bench::BenchConfig;
using bench::kInfeasible;
using bench::SeedAverage;

double darp_total(const core::Scenario& s, const core::CoveragePlan& plan) {
    if (!plan.feasible) return kInfeasible;
    const auto darp = core::solve_darp_baseline(s, plan, sag::ids::BsId{0});
    return darp.feasible ? darp.total_power() : kInfeasible;
}

void field_sweep(const char* figure, double side,
                 const std::vector<std::size_t>& user_counts, double grid,
                 const BenchConfig& bc) {
    bench::print_header(figure, "total power: SAG vs SAMC/IAC/GAC + DARP");
    sim::Table table({"users", "SAG", "SAMC+DARP", "IAC+DARP", "GAC+DARP"});
    const std::size_t iac_nodes = bc.fast ? 50'000 : 400'000;
    const std::size_t gac_nodes = bc.fast ? 30'000 : 200'000;

    sim::GeneratorConfig cfg;
    cfg.field_side = side;
    cfg.base_station_count = 4;
    cfg.snr_threshold_db = units::Decibel{-15.0};

    exec::ThreadPool pool(static_cast<std::size_t>(bc.threads));
    for (const std::size_t users : user_counts) {
        cfg.subscriber_count = users;
        // Evaluate seeds in parallel into per-seed slots (deterministic
        // regardless of thread count), reduce serially.
        struct SeedResult {
            double sag = kInfeasible;
            double samc_darp = kInfeasible;
            double iac_darp = kInfeasible;
            double gac_darp = kInfeasible;
        };
        std::vector<SeedResult> slots(static_cast<std::size_t>(bc.seeds));
        exec::parallel_for_index(pool, slots.size(), [&](std::size_t seed) {
            const auto s =
                sim::generate_scenario(cfg, 7000 + static_cast<int>(seed));
            SeedResult& slot = slots[seed];

            const auto samc = core::solve_samc(s);
            if (samc.plan.feasible) {
                const auto sag_result = core::green_pipeline(s, samc.plan);
                slot.sag = sag_result.feasible ? sag_result.total_power()
                                               : kInfeasible;
                slot.samc_darp = darp_total(s, samc.plan);
            }

            core::IlpqcOptions iopts;
            iopts.node_budget = iac_nodes;
            iopts.time_budget_seconds = bc.fast ? 0.25 : 2.0;
            slot.iac_darp = darp_total(
                s, core::solve_ilpqc_coverage(s, core::iac_candidates(s), iopts));

            core::IlpqcOptions gopts;
            gopts.node_budget = gac_nodes;
            gopts.time_budget_seconds = bc.fast ? 0.25 : 2.0;
            slot.gac_darp = darp_total(
                s, core::solve_ilpqc_coverage(
                       s,
                       core::prune_useless_candidates(s, core::gac_candidates(s, grid)),
                       gopts));
        });

        SeedAverage sag_p, samc_darp, iac_darp, gac_darp;
        for (const SeedResult& slot : slots) {
            sag_p.add(slot.sag);
            samc_darp.add(slot.samc_darp);
            iac_darp.add(slot.iac_darp);
            gac_darp.add(slot.gac_darp);
        }
        table.add_numeric_row({static_cast<double>(users), sag_p.mean(),
                               samc_darp.mean(), iac_darp.mean(), gac_darp.mean()},
                              1);
    }
    table.print(std::cout);
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    const BenchConfig bc = BenchConfig::parse(argc, argv);
    const sag::bench::ReportScope report_scope(bc);
    std::printf("Fig. 7 reproduction (seeds per point: %d%s)\n\n", bc.seeds,
                bc.fast ? ", fast mode" : "");
    field_sweep("Fig 7(a)", 300.0, {5, 10, 15, 20, 25, 30, 35, 40}, 15.0, bc);
    field_sweep("Fig 7(b)", 500.0, {5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, 15.0, bc);
    field_sweep("Fig 7(c)", 800.0, {20, 30, 40, 50, 60, 70}, 20.0, bc);
    return 0;
}
