// Reproduces paper Fig. 5 (a)-(d): the 800x800 playing field suite.
#include "bench_fig45_impl.h"

int main(int argc, char** argv) {
    const auto bc = sag::bench::BenchConfig::parse(argc, argv);
    const sag::bench::ReportScope report_scope(bc);
    sag::bench::run_field_suite("Fig. 5 (800x800 field, SNR=-15dB)", 800.0,
                                {20, 30, 40, 50, 60, 70}, 20.0, bc);
    return 0;
}
