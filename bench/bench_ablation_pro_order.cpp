// Ablation: PRO's stuck-RS selection rule (paper Algorithm 6 Step 11).
// The paper pays the smallest P_snr - P_c premium first; the ablation
// compares that against a naive first-index rule and the LPQC optimum.
// Expected: min-premium tracks the optimum; first-index loses ground on
// instances where several RSs get stuck.
#include "bench_common.h"

#include "sag/core/power.h"
#include "sag/core/samc.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    bench::print_header("Ablation: PRO stuck-RS selection",
                        "coverage-tier power, 500x500, SNR=-11.5dB; min-delta ties the "
                        "optimum, first-index pays slightly more when RSs get stuck");

    sim::Table table({"users", "min-delta", "first-index", "optimal", "baseline"});
    for (const std::size_t users : {10ul, 20ul, 30ul, 40ul, 50ul}) {
        bench::SeedAverage min_delta, first_index, optimal, baseline;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg;
            cfg.field_side = 500.0;
            cfg.subscriber_count = users;
            cfg.snr_threshold_db = units::Decibel{-11.5};
            const auto s = sim::generate_scenario(cfg, 9200 + seed);
            const auto plan = core::solve_samc(s).plan;
            if (!plan.feasible) {
                min_delta.add(bench::kInfeasible);
                first_index.add(bench::kInfeasible);
                optimal.add(bench::kInfeasible);
                baseline.add(bench::kInfeasible);
                continue;
            }
            core::ProOptions naive;
            naive.selection = core::ProOptions::Selection::FirstIndex;
            const auto a = core::allocate_power_pro(s, plan);
            const auto b = core::allocate_power_pro(s, plan, naive);
            const auto opt = core::allocate_power_optimal(s, plan);
            min_delta.add(a.feasible ? a.total : bench::kInfeasible);
            first_index.add(b.feasible ? b.total : bench::kInfeasible);
            optimal.add(opt.feasible ? opt.total : bench::kInfeasible);
            baseline.add(core::allocate_power_baseline(s, plan).total);
        }
        table.add_numeric_row({static_cast<double>(users), min_delta.mean(),
                               first_index.mean(), optimal.mean(), baseline.mean()},
                              1);
    }
    table.print(std::cout);
    return 0;
}
