// Reproduces paper Table II: number of connectivity RSs deployed by MUST
// pinned to each base station vs MBMC, as the number of base stations in a
// 500x500 field grows from 1 to 4 (30 users, SNR = -15 dB). Expected
// shape: with one BS, MBMC == MUST; with more BSs MBMC strictly improves
// because each coverage RS routes to its nearest BS.
#include "bench_common.h"

#include "sag/core/samc.h"
#include "sag/core/ucra.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    bench::print_header("Table II",
                        "connectivity RSs, MUST(BSk) vs MBMC, 500x500, 30 users, "
                        "SNR=-15dB (n/a = BS k does not exist in that row)");

    sim::Table table({"#BS", "MUST-BS1", "MUST-BS2", "MUST-BS3", "MUST-BS4", "MBMC"});
    for (std::size_t n_bs = 1; n_bs <= 4; ++n_bs) {
        bench::SeedAverage must[4], mbmc;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg;
            cfg.field_side = 500.0;
            cfg.subscriber_count = 30;
            cfg.base_station_count = n_bs;
            cfg.snr_threshold_db = units::Decibel{-15.0};
            const auto s = sim::generate_scenario(cfg, 8000 + seed);
            const auto cov = core::solve_samc(s).plan;
            if (!cov.feasible) {
                for (auto& m : must) m.add(bench::kInfeasible);
                mbmc.add(bench::kInfeasible);
                continue;
            }
            for (std::size_t b = 0; b < 4; ++b) {
                must[b].add(b < n_bs
                                ? static_cast<double>(core::solve_must(s, cov, sag::ids::BsId{b})
                                                          .connectivity_rs_count())
                                : bench::kInfeasible);
            }
            mbmc.add(static_cast<double>(
                core::solve_mbmc(s, cov).connectivity_rs_count()));
        }
        table.add_numeric_row({static_cast<double>(n_bs), must[0].mean(),
                               must[1].mean(), must[2].mean(), must[3].mean(),
                               mbmc.mean()},
                              1);
    }
    table.print(std::cout);
    return 0;
}
