// Reproduces paper Fig. 3 (a)-(e): number of coverage RSs placed by IAC,
// GAC and SAMC across field sizes, user counts, SNR thresholds and grid
// sizes. Expected shape (paper §IV-B): SAMC <= IAC <= GAC everywhere;
// IAC/GAC lose feasibility as the SNR threshold tightens (3d) or the
// instance grows dense (3b), while SAMC keeps solving; finer grids make
// GAC better but slower (3e).
#include "bench_common.h"

#include "sag/core/candidates.h"
#include "sag/core/feasibility.h"
#include "sag/core/ilpqc.h"
#include "sag/core/samc.h"

namespace {

using namespace sag;
using bench::BenchConfig;
using bench::kInfeasible;
using bench::SeedAverage;

struct MethodBudgets {
    std::size_t iac_nodes;
    std::size_t gac_nodes;
    double seconds;  ///< wall-clock cap per ILP solve (the Gurobi analogue)
};

MethodBudgets budgets(const BenchConfig& cfg) {
    return cfg.fast ? MethodBudgets{50'000, 30'000, 0.25}
                    : MethodBudgets{400'000, 200'000, 2.0};
}

double iac_count(const core::Scenario& s, const MethodBudgets& b) {
    core::IlpqcOptions opts;
    opts.node_budget = b.iac_nodes;
    opts.time_budget_seconds = b.seconds;
    const auto plan = core::solve_ilpqc_coverage(s, core::iac_candidates(s), opts);
    if (!plan.feasible || !core::verify_coverage_max_power(s, plan).feasible) {
        return kInfeasible;
    }
    return static_cast<double>(plan.rs_count());
}

double gac_count(const core::Scenario& s, double grid, const MethodBudgets& b) {
    core::IlpqcOptions opts;
    opts.node_budget = b.gac_nodes;
    opts.time_budget_seconds = b.seconds;
    const auto cands =
        core::prune_useless_candidates(s, core::gac_candidates(s, grid));
    const auto plan = core::solve_ilpqc_coverage(s, cands, opts);
    if (!plan.feasible || !core::verify_coverage_max_power(s, plan).feasible) {
        return kInfeasible;
    }
    return static_cast<double>(plan.rs_count());
}

double samc_count(const core::Scenario& s) {
    const auto result = core::solve_samc(s);
    if (!result.plan.feasible) return kInfeasible;
    return static_cast<double>(result.plan.rs_count());
}

sim::GeneratorConfig base_config(double side, std::size_t users, double snr_db) {
    sim::GeneratorConfig cfg;
    cfg.field_side = side;
    cfg.subscriber_count = users;
    cfg.base_station_count = 4;
    cfg.snr_threshold_db = units::Decibel{snr_db};
    return cfg;
}

void user_sweep(const char* figure, const char* label, double side, double snr_db,
                const std::vector<std::size_t>& user_counts, double grid,
                const BenchConfig& bc) {
    bench::print_header(figure, label);
    sim::Table table({"users", "IAC", "GAC", "SAMC"});
    const MethodBudgets b = budgets(bc);
    for (const std::size_t users : user_counts) {
        SeedAverage iac, gac, samc;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            const auto s = sim::generate_scenario(base_config(side, users, snr_db),
                                                  1000 + seed);
            iac.add(iac_count(s, b));
            gac.add(gac_count(s, grid, b));
            samc.add(samc_count(s));
        }
        table.add_numeric_row(
            {static_cast<double>(users), iac.mean(), gac.mean(), samc.mean()}, 1);
    }
    table.print(std::cout);
    std::printf("\n");
}

void snr_sweep(const BenchConfig& bc) {
    bench::print_header("Fig 3(d)",
                        "500x500, 30 users: #coverage RSs vs SNR threshold "
                        "(n/a = no feasible solution, cf. paper's infeasible "
                        "IAC beyond -12 dB)");
    sim::Table table({"SNR(dB)", "IAC", "GAC", "SAMC", "IAC-feas%", "GAC-feas%",
                      "SAMC-feas%"});
    const MethodBudgets b = budgets(bc);
    for (double snr = -14.0; snr <= -10.0 + 1e-9; snr += 0.5) {
        SeedAverage iac, gac, samc;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            const auto s =
                sim::generate_scenario(base_config(500.0, 30, snr), 2000 + seed);
            iac.add(iac_count(s, b));
            gac.add(gac_count(s, 15.0, b));
            samc.add(samc_count(s));
        }
        table.add_numeric_row({snr, iac.mean(), gac.mean(), samc.mean(),
                               100.0 * iac.feasible_share(),
                               100.0 * gac.feasible_share(),
                               100.0 * samc.feasible_share()},
                              1);
    }
    table.print(std::cout);
    std::printf("\n");
}

void grid_sweep(const BenchConfig& bc) {
    bench::print_header("Fig 3(e)",
                        "500x500, 30 users, SNR=-11.55dB: GAC quality vs grid "
                        "size (IAC/SAMC are grid-independent reference lines)");
    sim::Table table({"grid", "IAC", "GAC", "SAMC", "GAC-feas%"});
    const MethodBudgets b = budgets(bc);
    // IAC and SAMC do not depend on the grid size: solve once per seed.
    SeedAverage iac, samc;
    std::vector<core::Scenario> scenarios;
    for (int seed = 0; seed < bc.seeds; ++seed) {
        scenarios.push_back(
            sim::generate_scenario(base_config(500.0, 30, -11.55), 3000 + seed));
        iac.add(iac_count(scenarios.back(), b));
        samc.add(samc_count(scenarios.back()));
    }
    for (double grid = 13.0; grid <= 20.0 + 1e-9; grid += 1.0) {
        SeedAverage gac;
        for (const auto& s : scenarios) gac.add(gac_count(s, grid, b));
        table.add_numeric_row({grid, iac.mean(), gac.mean(), samc.mean(),
                               100.0 * gac.feasible_share()},
                              1);
    }
    table.print(std::cout);
    std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
    const BenchConfig bc = BenchConfig::parse(argc, argv);
    const sag::bench::ReportScope report_scope(bc);
    std::printf("Fig. 3 reproduction (seeds per point: %d%s)\n\n", bc.seeds,
                bc.fast ? ", fast mode" : "");

    user_sweep("Fig 3(a)", "500x500, SNR=-15dB: #coverage RSs vs users", 500.0,
               -15.0, {15, 20, 25, 30, 35, 40, 45, 50}, 15.0, bc);
    user_sweep("Fig 3(b)", "800x800, SNR=-15dB: #coverage RSs vs users", 800.0,
               -15.0, {20, 30, 40, 50, 60, 70}, 20.0, bc);
    user_sweep("Fig 3(c)", "800x800, SNR=-40dB: #coverage RSs vs users", 800.0,
               -40.0, {50, 55, 60, 65, 70}, 20.0, bc);
    snr_sweep(bc);
    grid_sweep(bc);
    return 0;
}
