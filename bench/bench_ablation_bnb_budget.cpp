// Ablation: node budget of the set-cover branch-and-bound (the Gurobi
// stand-in behind IAC/GAC). Shows the anytime profile: how solution size
// and the proven-optimal share respond to the budget. Expected: small
// budgets fall back to greedy covers (larger), generous budgets prove
// optimality; the knee sits surprisingly low on these geometric
// instances.
#include "bench_common.h"

#include "sag/core/candidates.h"
#include "sag/core/ilpqc.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    bench::print_header("Ablation: B&B node budget",
                        "GAC (grid 15) on 500x500, 35 users, SNR=-15dB");

    sim::Table table({"budget", "RSs", "proven-opt%", "time(ms)"});
    for (const std::size_t budget :
         {std::size_t{10}, std::size_t{100}, std::size_t{1'000}, std::size_t{10'000},
          std::size_t{100'000}, std::size_t{1'000'000}}) {
        bench::SeedAverage rs, proven, time_ms;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg;
            cfg.field_side = 500.0;
            cfg.subscriber_count = 35;
            cfg.snr_threshold_db = units::Decibel{-15.0};
            const auto s = sim::generate_scenario(cfg, 9100 + seed);
            const auto cands =
                core::prune_useless_candidates(s, core::gac_candidates(s, 15.0));
            core::IlpqcOptions opts;
            opts.node_budget = budget;
            sim::Stopwatch sw;
            const auto plan = core::solve_ilpqc_coverage(s, cands, opts);
            time_ms.add(sw.milliseconds());
            rs.add(plan.feasible ? static_cast<double>(plan.rs_count())
                                 : bench::kInfeasible);
            proven.add(plan.proven_optimal ? 100.0 : 0.0);
        }
        table.add_numeric_row({static_cast<double>(budget), rs.mean(), proven.mean(),
                               time_ms.mean()},
                              2);
    }
    table.print(std::cout);
    return 0;
}
