// Micro-benchmarks (google-benchmark) for the core algorithmic kernels:
// how each solver scales with instance size. Complements the paper-figure
// binaries, which measure end-to-end wall time.
#include <benchmark/benchmark.h>

#include "sag/core/candidates.h"
#include "sag/core/ilpqc.h"
#include "sag/core/power.h"
#include "sag/core/samc.h"
#include "sag/core/snr.h"
#include "sag/core/snr_field.h"
#include "sag/core/ucra.h"
#include "sag/ids/ids.h"
#include "sag/obs/obs.h"
#include "sag/opt/hitting_set.h"
#include "sag/serve/event.h"
#include "sag/serve/fault.h"
#include "sag/serve/session.h"
#include "sag/sim/scenario_gen.h"

namespace {

using namespace sag;

core::Scenario make_scenario(std::size_t users, double side = 500.0) {
    sim::GeneratorConfig cfg;
    cfg.field_side = side;
    cfg.subscriber_count = users;
    cfg.base_station_count = 4;
    cfg.snr_threshold_db = units::Decibel{-15.0};
    return sim::generate_scenario(cfg, 97);
}

void BM_ZoneHittingSet(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    std::vector<geom::Circle> disks = s.feasible_circles();
    for (auto _ : state) {
        benchmark::DoNotOptimize(opt::geometric_hitting_set(disks, {}));
    }
}
BENCHMARK(BM_ZoneHittingSet)->Arg(10)->Arg(20)->Arg(40);

void BM_Samc(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_samc(s));
    }
}
BENCHMARK(BM_Samc)->Arg(10)->Arg(20)->Arg(40);

void BM_IlpqcIac(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto cands = core::iac_candidates(s);
    core::IlpqcOptions opts;
    opts.node_budget = 100'000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_ilpqc_coverage(s, cands, opts));
    }
}
BENCHMARK(BM_IlpqcIac)->Arg(10)->Arg(20)->Arg(30);

void BM_ProPowerReduction(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto plan = core::solve_samc(s).plan;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::allocate_power_pro(s, plan));
    }
}
BENCHMARK(BM_ProPowerReduction)->Arg(10)->Arg(20)->Arg(40);

void BM_OptimalPowerFixedPoint(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto plan = core::solve_samc(s).plan;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::allocate_power_optimal(s, plan));
    }
}
BENCHMARK(BM_OptimalPowerFixedPoint)->Arg(10)->Arg(20)->Arg(40);

void BM_Mbmc(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto plan = core::solve_samc(s).plan;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_mbmc(s, plan));
    }
}
BENCHMARK(BM_Mbmc)->Arg(10)->Arg(20)->Arg(40);

// --- snr_field_delta: single-RS-move SNR re-evaluation, scratch vs
// incremental, at the paper's 800x800 m preset. One RS per 8 subscribers
// (the paper's coverage density ballpark); each iteration relocates one RS
// and re-reads every subscriber's SNR.

struct DeltaBenchFixture {
    core::Scenario scenario;
    std::vector<geom::Vec2> rs;
    std::vector<double> powers;
    ids::IdVec<ids::SsId, ids::RsId> serving;
    geom::Vec2 home, away;

    explicit DeltaBenchFixture(std::size_t users)
        : scenario(make_scenario(users, 800.0)) {
        for (std::size_t j = 0; j < users; j += 8) {
            rs.push_back(scenario.subscribers[j].pos);
        }
        powers.assign(rs.size(), scenario.radio.max_power.watts());
        serving.reserve(users);
        for (std::size_t j = 0; j < users; ++j) {
            serving.push_back(ids::RsId{j % rs.size()});
        }
        home = rs[0];
        away = home + geom::Vec2{15.0, -10.0};
    }
};

void BM_SnrFieldDeltaScratch(benchmark::State& state) {
    DeltaBenchFixture f(static_cast<std::size_t>(state.range(0)));
    bool flip = false;
    for (auto _ : state) {
        f.rs[0] = flip ? f.away : f.home;
        flip = !flip;
        benchmark::DoNotOptimize(
            core::coverage_snrs(f.scenario, f.rs, f.powers, f.serving));
    }
}
BENCHMARK(BM_SnrFieldDeltaScratch)->Arg(500)->Arg(1000)->Arg(2000);

void BM_SnrFieldDeltaIncremental(benchmark::State& state) {
    DeltaBenchFixture f(static_cast<std::size_t>(state.range(0)));
    core::SnrField field(f.scenario, f.rs, f.powers);
    field.set_check_interval(0);
    std::vector<double> snrs(f.serving.size());
    bool flip = false;
    for (auto _ : state) {
        field.move_rs(ids::RsId{0}, flip ? f.away : f.home);
        flip = !flip;
        field.snrs(f.serving, snrs);
        benchmark::DoNotOptimize(snrs);
    }
}
BENCHMARK(BM_SnrFieldDeltaIncremental)->Arg(500)->Arg(1000)->Arg(2000);

// Overhead smoke for the obs instrumentation contract (see
// docs/OBSERVABILITY.md): the incremental-delta kernel runs the
// SAG_OBS_* macros on every mutation, so comparing this timing against
// BM_SnrFieldDeltaIncremental (no recorder installed: the macros reduce
// to one load + branch) bounds the no-sink cost, and the WithRecorder
// variant bounds the full recording cost. The acceptance budget is a
// no-sink delta <= 2% on snr_field_delta.
void BM_SnrFieldDeltaWithRecorder(benchmark::State& state) {
    DeltaBenchFixture f(static_cast<std::size_t>(state.range(0)));
    core::SnrField field(f.scenario, f.rs, f.powers);
    field.set_check_interval(0);
    obs::ScopedRecorder recorder;
    std::vector<double> snrs(f.serving.size());
    bool flip = false;
    for (auto _ : state) {
        field.move_rs(ids::RsId{0}, flip ? f.away : f.home);
        flip = !flip;
        field.snrs(f.serving, snrs);
        benchmark::DoNotOptimize(snrs);
    }
    const auto report = recorder.snapshot();
    state.counters["deltas"] = static_cast<double>(
        report.counters.count("snr_field.deltas.applied")
            ? report.counters.at("snr_field.deltas.applied")
            : 0);
}
BENCHMARK(BM_SnrFieldDeltaWithRecorder)->Arg(500)->Arg(1000)->Arg(2000);

// --- serve event path: per-event cost of the online churn engine. Both
// variants disable the background re-solve by injecting a guaranteed
// solver timeout (FaultPlan, deterministic) so the measurement is the
// pure event path — mutate, ladder, verify — not an occasional full
// pipeline run.

serve::ServeOptions serve_bench_options() {
    serve::ServeOptions opts;
    serve::FaultOptions faults;
    faults.resolve_timeout_probability = 1.0;
    opts.faults = serve::FaultPlan(faults);
    return opts;
}

/// Steady state: a subscriber oscillates between two positions. Every
/// event runs the mutation delta, the candidate scan, the power stage
/// and the coverage/topology verifiers; no repair work is needed.
void BM_ServeEventMove(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    serve::Session session(s, serve_bench_options());
    const geom::Vec2 home = s.subscribers[0].pos;
    serve::Event move;
    move.kind = serve::EventKind::SsMove;
    move.key = 0;
    bool flip = false;
    for (auto _ : state) {
        move.pos = flip ? home + geom::Vec2{1.0, -1.0} : home;
        flip = !flip;
        benchmark::DoNotOptimize(session.apply(move));
    }
}
BENCHMARK(BM_ServeEventMove)->Arg(20)->Arg(40)->Arg(80);

/// Repair state: one RS slot fails and recovers alternately, so every
/// other event re-homes that relay's subscribers and every event pays
/// the Yates re-escalation plus a backhaul rebuild over the shifted
/// active set.
void BM_ServeEventFailRecover(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    serve::Session session(s, serve_bench_options());
    serve::Event event;
    event.rs = ids::RsId{0};
    bool fail = true;
    for (auto _ : state) {
        event.kind = fail ? serve::EventKind::RsFail : serve::EventKind::RsRecover;
        fail = !fail;
        benchmark::DoNotOptimize(session.apply(event));
    }
}
BENCHMARK(BM_ServeEventFailRecover)->Arg(20)->Arg(40)->Arg(80);

}  // namespace

BENCHMARK_MAIN();
