// Micro-benchmarks (google-benchmark) for the core algorithmic kernels:
// how each solver scales with instance size. Complements the paper-figure
// binaries, which measure end-to-end wall time.
#include <benchmark/benchmark.h>

#include "sag/core/candidates.h"
#include "sag/core/ilpqc.h"
#include "sag/core/power.h"
#include "sag/core/samc.h"
#include "sag/core/ucra.h"
#include "sag/opt/hitting_set.h"
#include "sag/sim/scenario_gen.h"

namespace {

using namespace sag;

core::Scenario make_scenario(std::size_t users, double side = 500.0) {
    sim::GeneratorConfig cfg;
    cfg.field_side = side;
    cfg.subscriber_count = users;
    cfg.base_station_count = 4;
    cfg.snr_threshold_db = -15.0;
    return sim::generate_scenario(cfg, 97);
}

void BM_ZoneHittingSet(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    std::vector<geom::Circle> disks = s.feasible_circles();
    for (auto _ : state) {
        benchmark::DoNotOptimize(opt::geometric_hitting_set(disks, {}));
    }
}
BENCHMARK(BM_ZoneHittingSet)->Arg(10)->Arg(20)->Arg(40);

void BM_Samc(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_samc(s));
    }
}
BENCHMARK(BM_Samc)->Arg(10)->Arg(20)->Arg(40);

void BM_IlpqcIac(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto cands = core::iac_candidates(s);
    core::IlpqcOptions opts;
    opts.node_budget = 100'000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_ilpqc_coverage(s, cands, opts));
    }
}
BENCHMARK(BM_IlpqcIac)->Arg(10)->Arg(20)->Arg(30);

void BM_ProPowerReduction(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto plan = core::solve_samc(s).plan;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::allocate_power_pro(s, plan));
    }
}
BENCHMARK(BM_ProPowerReduction)->Arg(10)->Arg(20)->Arg(40);

void BM_OptimalPowerFixedPoint(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto plan = core::solve_samc(s).plan;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::allocate_power_optimal(s, plan));
    }
}
BENCHMARK(BM_OptimalPowerFixedPoint)->Arg(10)->Arg(20)->Arg(40);

void BM_Mbmc(benchmark::State& state) {
    const auto s = make_scenario(static_cast<std::size_t>(state.range(0)));
    const auto plan = core::solve_samc(s).plan;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::solve_mbmc(s, plan));
    }
}
BENCHMARK(BM_Mbmc)->Arg(10)->Arg(20)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
