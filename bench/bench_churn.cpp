// Churn soak benchmark: a seeded, fault-injected event stream (joins,
// leaves, moves, rate changes, RS failures/degradations/recoveries,
// plus corrupted events the session must reject) through one live
// serve::Session, asserting the serving contract on every event and
// reporting:
//
//   - per-event repair latency percentiles (p50/p90/p99/max), split by
//     ladder level,
//   - the drift-vs-oracle curve: at fixed checkpoints, the session's
//     P_total and active-RS count against a from-scratch solve of the
//     same live scenario (how far does incremental repair drift from
//     what the full pipeline would build, and how well does the
//     background re-solve pull it back),
//   - fault/ladder accounting (rejected, degraded, re-solves).
//
// Any event that is neither verified nor explicitly degraded — a
// silently wrong plan — fails the binary. Default is the 10^5-event
// soak; --smoke is the CI tier (~2k events, threaded, plus a
// threads=N-vs-1 byte-identity replay check).
//
//   bench_churn [--smoke] [--events=N] [--threads=N] [--seed=K]
//               [--subs=N] [--out=FILE]
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/io/event_io.h"
#include "sag/io/scenario_io.h"
#include "sag/serve/event.h"
#include "sag/serve/fault.h"
#include "sag/serve/session.h"
#include "sag/sim/scenario_gen.h"
#include "sag/sim/stopwatch.h"

namespace {

using namespace sag;
using serve::Event;
using serve::EventKind;

struct ChurnConfig {
    std::size_t events = 100000;
    std::size_t threads = 1;
    std::uint64_t seed = 1;
    std::size_t subscribers = 30;
    bool smoke = false;
    std::string out_path;
};

ChurnConfig parse(int argc, char** argv) {
    ChurnConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            cfg.smoke = true;
            cfg.events = 2000;
            cfg.subscribers = 20;
            cfg.threads = 2;
        } else if (arg.rfind("--events=", 0) == 0) {
            cfg.events = static_cast<std::size_t>(std::atoll(arg.c_str() + 9));
        } else if (arg.rfind("--threads=", 0) == 0) {
            cfg.threads = static_cast<std::size_t>(std::atoll(arg.c_str() + 10));
        } else if (arg.rfind("--seed=", 0) == 0) {
            cfg.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
        } else if (arg.rfind("--subs=", 0) == 0) {
            cfg.subscribers = static_cast<std::size_t>(std::atoll(arg.c_str() + 7));
        } else if (arg.rfind("--out=", 0) == 0) {
            cfg.out_path = arg.substr(6);
        } else {
            std::fprintf(stderr,
                         "usage: bench_churn [--smoke] [--events=N] "
                         "[--threads=N] [--seed=K] [--subs=N] [--out=FILE]\n");
            std::exit(2);
        }
    }
    return cfg;
}

/// Seeded churn stream mixing every event kind; deliberately includes
/// stale keys/slots the session must reject. `plan` is the corruption
/// plan the stream will be run through: events at indices it will
/// mangle are generated but excluded from the population bookkeeping
/// (the session rejects them), keeping the live count stationary over
/// arbitrarily long soaks.
std::vector<Event> churn_stream(std::uint64_t seed,
                                std::size_t initial_subscribers,
                                std::size_t rs_slots, std::size_t count,
                                const serve::FaultPlan& plan) {
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> coord(0.0, 500.0);
    std::uniform_real_distribution<double> rate(28.0, 42.0);
    std::uniform_real_distribution<double> factor(0.4, 1.0);
    std::vector<std::uint64_t> live(initial_subscribers);
    for (std::size_t k = 0; k < initial_subscribers; ++k) live[k] = k;
    std::uint64_t next_key = initial_subscribers;

    std::vector<Event> events;
    events.reserve(count);
    const std::size_t target = initial_subscribers;
    while (events.size() < count) {
        const bool voided = plan.corrupts(events.size());
        const int kind = static_cast<int>(rng() % 10);
        Event e;
        if (kind < 4) {
            // Population churn regulated toward the initial size: an
            // unregulated join/leave mix drifts the population linearly
            // and turns a long soak quadratic.
            if (live.size() < target ||
                (live.size() == target && rng() % 2 == 0)) {
                e.kind = EventKind::SsJoin;
                e.key = next_key++;
                e.pos = {coord(rng), coord(rng)};
                e.distance_request = rate(rng);
                if (!voided) live.push_back(e.key);
            } else {
                e.kind = EventKind::SsLeave;
                const std::size_t at = rng() % live.size();
                e.key = live[at];
                if (!voided) {
                    live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
                }
            }
        } else if (kind < 7 && !live.empty()) {
            e.kind = EventKind::SsMove;
            e.key = live[rng() % live.size()];
            e.pos = {coord(rng), coord(rng)};
        } else if (kind < 8 && !live.empty()) {
            e.kind = EventKind::SsRate;
            e.key = live[rng() % live.size()];
            e.distance_request = rate(rng);
        } else if (kind < 9) {
            e.kind = EventKind::RsFail;
            e.rs = ids::RsId{rng() % rs_slots};
        } else if (rng() % 2 == 0) {
            e.kind = EventKind::RsRecover;
            e.rs = ids::RsId{rng() % rs_slots};
        } else {
            e.kind = EventKind::RsDegrade;
            e.rs = ids::RsId{rng() % rs_slots};
            e.factor = factor(rng);
        }
        events.push_back(e);
    }
    return events;
}

double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const double rank = p * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

struct RunResult {
    std::string fingerprint;  ///< outcome JSONL (latency-free, replayable)
    std::size_t contract_broken = 0;
};

RunResult run(const core::Scenario& scenario,
              const core::SagResult& deployment,
              const serve::ServeOptions& opts, const std::vector<Event>& events,
              bool report, std::size_t oracle_every) {
    serve::Session session(scenario, deployment, opts);
    RunResult result;
    std::vector<double> latency_ms;          // all non-rejected events
    std::vector<double> latency_repair_ms;   // events that re-homed/patched/shed
    latency_ms.reserve(events.size());
    std::size_t rejected = 0, degraded = 0, full = 0, rehome_only = 0,
                level_degraded = 0, triggered = 0, adopted = 0;
    double worst_ms = 0.0;
    std::size_t worst_at = 0;

    struct OracleSample {
        std::size_t event;
        std::size_t session_rs, oracle_rs;
        double session_power, oracle_power;
        std::size_t unserved;
    };
    std::vector<OracleSample> drift;

    sim::Stopwatch watch;
    for (std::size_t i = 0; i < events.size(); ++i) {
        watch.reset();
        const serve::EventOutcome out = session.apply(events[i]);
        const double ms = watch.milliseconds();

        result.contract_broken += (out.verified || out.degraded) ? 0 : 1;
        switch (out.level) {
            case serve::RepairLevel::Rejected: ++rejected; break;
            case serve::RepairLevel::Full: ++full; break;
            case serve::RepairLevel::RehomeOnly: ++rehome_only; break;
            case serve::RepairLevel::Degraded: ++level_degraded; break;
        }
        if (out.level != serve::RepairLevel::Rejected) {
            latency_ms.push_back(ms);
            if (out.rehomed + out.patched + out.shed > 0) {
                latency_repair_ms.push_back(ms);
            }
            if (ms > worst_ms) {
                worst_ms = ms;
                worst_at = i;
            }
        }
        degraded += out.degraded ? 1 : 0;
        triggered += out.resolve_triggered ? 1 : 0;
        adopted += out.resolve_adopted ? 1 : 0;
        result.fingerprint += io::event_outcome_to_json(out).dump();
        result.fingerprint.push_back('\n');

        if (oracle_every > 0 && (i + 1) % oracle_every == 0) {
            // Drift vs oracle: a from-scratch solve of the live scenario.
            const core::SagResult oracle =
                core::solve_sag(session.scenario(), opts.solve);
            drift.push_back({i + 1, session.active_rs_count(),
                             oracle.feasible ? oracle.coverage_rs_count() : 0,
                             session.total_power(),
                             oracle.feasible ? oracle.total_power() : 0.0,
                             session.unserved_count()});
        }
    }

    if (!report) return result;

    std::sort(latency_ms.begin(), latency_ms.end());
    std::sort(latency_repair_ms.begin(), latency_repair_ms.end());
    std::printf("\nevents          : %zu (%zu rejected)\n", events.size(),
                rejected);
    std::printf("ladder          : %zu full, %zu rehome-only, %zu degraded\n",
                full, rehome_only, level_degraded);
    std::printf("degraded events : %zu (%.2f%%)\n", degraded,
                100.0 * static_cast<double>(degraded) /
                    static_cast<double>(events.size()));
    std::printf("re-solves       : %zu triggered, %zu adopted\n", triggered,
                adopted);
    std::printf("contract broken : %zu\n", result.contract_broken);
    std::printf("\nper-event latency (ms, %zu applied events)\n",
                latency_ms.size());
    std::printf("  p50 %8.3f  p90 %8.3f  p99 %8.3f  max %8.3f (event %zu)\n",
                percentile(latency_ms, 0.50), percentile(latency_ms, 0.90),
                percentile(latency_ms, 0.99), worst_ms, worst_at);
    std::printf("repair-event latency (ms, %zu events with ladder work)\n",
                latency_repair_ms.size());
    std::printf("  p50 %8.3f  p90 %8.3f  p99 %8.3f\n",
                percentile(latency_repair_ms, 0.50),
                percentile(latency_repair_ms, 0.90),
                percentile(latency_repair_ms, 0.99));

    if (!drift.empty()) {
        std::printf("\ndrift vs oracle (session / from-scratch solve)\n");
        std::printf("  %8s %14s %22s %9s\n", "event", "active RSs", "P_total",
                    "unserved");
        for (const auto& s : drift) {
            std::printf("  %8zu %6zu / %-5zu %10.2f / %-9.2f %9zu\n", s.event,
                        s.session_rs, s.oracle_rs, s.session_power,
                        s.oracle_power, s.unserved);
        }
    }
    return result;
}

}  // namespace

int main(int argc, char** argv) {
    const ChurnConfig cfg = parse(argc, argv);

    sim::GeneratorConfig gen;
    gen.field_side = 500.0;
    gen.subscriber_count = cfg.subscribers;
    gen.base_station_count = 4;
    const core::Scenario scenario =
        sim::generate_scenario(gen, static_cast<int>(cfg.seed));
    const core::SagResult deployment = core::solve_sag(scenario);
    if (!deployment.feasible) {
        std::fprintf(stderr, "seed scenario infeasible; pick another seed\n");
        return 1;
    }

    serve::ServeOptions opts;
    opts.threads = cfg.threads;
    opts.resolve_horizon = 16;
    opts.resolve_backoff_start = 16;
    serve::FaultOptions faults;
    faults.stage_timeout_probability = 0.02;
    faults.resolve_timeout_probability = 0.10;
    faults.corrupt_probability = 0.02;
    faults.seed = cfg.seed;
    opts.faults = serve::FaultPlan(faults);

    const std::vector<Event> events = opts.faults.corrupt(
        churn_stream(cfg.seed, cfg.subscribers,
                     deployment.coverage.rs_count(), cfg.events, opts.faults));

    std::printf("bench_churn: %zu events, %zu initial subscribers, "
                "threads=%zu, seed=%llu%s\n",
                cfg.events, cfg.subscribers, cfg.threads,
                static_cast<unsigned long long>(cfg.seed),
                cfg.smoke ? " (smoke)" : "");

    const std::size_t oracle_every =
        cfg.smoke ? cfg.events / 4 : cfg.events / 10;
    const RunResult main_run =
        run(scenario, deployment, opts, events, /*report=*/true, oracle_every);
    if (!cfg.out_path.empty()) {
        io::write_text_file(cfg.out_path, main_run.fingerprint);
        std::printf("wrote %s\n", cfg.out_path.c_str());
    }

    std::size_t broken = main_run.contract_broken;
    if (cfg.smoke) {
        // Thread-count byte-identity: the same stream at threads=1 must
        // replay the threaded run's outcome JSONL exactly.
        serve::ServeOptions serial = opts;
        serial.threads = 1;
        const RunResult serial_run = run(scenario, deployment, serial, events,
                                         /*report=*/false, /*oracle_every=*/0);
        broken += serial_run.contract_broken;
        if (serial_run.fingerprint != main_run.fingerprint) {
            std::fprintf(stderr,
                         "FAIL: threads=%zu replay diverges from threads=1\n",
                         cfg.threads);
            return 1;
        }
        std::printf("replay          : threads=%zu byte-identical to "
                    "threads=1 (%zu outcome bytes)\n",
                    cfg.threads, main_run.fingerprint.size());
    }

    if (broken > 0) {
        std::fprintf(stderr,
                     "FAIL: serving contract broken on %zu events "
                     "(neither verified nor degraded)\n",
                     broken);
        return 1;
    }
    std::printf("serving contract: every event verified or explicitly "
                "degraded\n");
    return 0;
}
