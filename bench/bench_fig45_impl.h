#pragma once

// Shared implementation of the paper's Fig. 4 (500x500) and Fig. 5
// (800x800) suites: per field size, four sub-experiments at SNR = -15 dB:
//   (a) lower-tier power: all-Pmax baseline vs PRO vs LPQC optimum,
//   (b) running time of SAMC vs IAC vs GAC (milliseconds),
//   (c) connectivity RS count: MUST pinned to each BS vs MBMC,
//   (d) upper-tier power: all-Pmax baseline vs UCPO.
// Expected shapes: PRO hugs the optimum well under baseline and the gap
// widens with the field (4a/5a); SAMC stays fast while GAC blows up
// (4b/5b); MBMC beats every pinned MUST (4c/5c); UCPO sits well under the
// baseline (4d/5d).

#include "bench_common.h"

#include "sag/core/candidates.h"
#include "sag/core/ilpqc.h"
#include "sag/core/power.h"
#include "sag/core/samc.h"
#include "sag/core/ucra.h"

namespace sag::bench {

inline void run_field_suite(const char* figure, double side,
                            const std::vector<std::size_t>& user_counts,
                            double grid, const BenchConfig& bc) {
    const std::size_t iac_nodes = bc.fast ? 50'000 : 400'000;
    const std::size_t gac_nodes = bc.fast ? 30'000 : 200'000;

    sim::GeneratorConfig cfg;
    cfg.field_side = side;
    cfg.base_station_count = 4;
    cfg.snr_threshold_db = units::Decibel{-15.0};

    sim::Table power_low({"users", "baseline", "PRO", "optimal"});
    sim::Table runtimes(
        {"users", "SAMC(ms)", "IAC(ms)", "GAC(ms)", "IAC-nodes", "GAC-nodes"});
    sim::Table conn({"users", "MUST-BS1", "MUST-BS2", "MUST-BS3", "MUST-BS4", "MBMC"});
    sim::Table power_high({"users", "baseline", "UCPO"});

    for (const std::size_t users : user_counts) {
        cfg.subscriber_count = users;
        SeedAverage base_l, pro_l, opt_l;
        SeedAverage t_samc, t_iac, t_gac, n_iac, n_gac;
        SeedAverage must_rs[4], mbmc_rs;
        SeedAverage base_h, ucpo_h;

        for (int seed = 0; seed < bc.seeds; ++seed) {
            const auto s = sim::generate_scenario(cfg, 5000 + seed);

            sim::Stopwatch sw;
            const auto samc = core::solve_samc(s);
            t_samc.add(sw.milliseconds());

            sw.reset();
            core::IlpqcOptions iopts;
            iopts.node_budget = iac_nodes;
            iopts.time_budget_seconds = bc.fast ? 0.25 : 2.0;
            const auto iac =
                core::solve_ilpqc_coverage(s, core::iac_candidates(s), iopts);
            t_iac.add(sw.milliseconds());
            n_iac.add(static_cast<double>(iac.search_nodes));

            sw.reset();
            core::IlpqcOptions gopts;
            gopts.node_budget = gac_nodes;
            gopts.time_budget_seconds = bc.fast ? 0.25 : 2.0;
            const auto gac = core::solve_ilpqc_coverage(
                s, core::prune_useless_candidates(s, core::gac_candidates(s, grid)),
                gopts);
            t_gac.add(sw.milliseconds());
            n_gac.add(static_cast<double>(gac.search_nodes));

            if (!samc.plan.feasible) {
                base_l.add(kInfeasible);
                pro_l.add(kInfeasible);
                opt_l.add(kInfeasible);
                for (auto& m : must_rs) m.add(kInfeasible);
                mbmc_rs.add(kInfeasible);
                base_h.add(kInfeasible);
                ucpo_h.add(kInfeasible);
                continue;
            }

            // (a) lower-tier power on the SAMC coverage plan.
            base_l.add(core::allocate_power_baseline(s, samc.plan).total);
            const auto pro = core::allocate_power_pro(s, samc.plan);
            pro_l.add(pro.feasible ? pro.total : kInfeasible);
            const auto opt = core::allocate_power_optimal(s, samc.plan);
            opt_l.add(opt.feasible ? opt.total : kInfeasible);

            // (c) connectivity counts.
            for (std::size_t b = 0; b < 4; ++b) {
                must_rs[b].add(static_cast<double>(
                    core::solve_must(s, samc.plan, sag::ids::BsId{b}).connectivity_rs_count()));
            }
            auto mbmc = core::solve_mbmc(s, samc.plan);
            mbmc_rs.add(static_cast<double>(mbmc.connectivity_rs_count()));

            // (d) upper-tier power on the MBMC tree.
            core::allocate_power_max(s, mbmc);
            base_h.add(mbmc.upper_tier_power());
            core::allocate_power_ucpo(s, samc.plan, mbmc);
            ucpo_h.add(mbmc.upper_tier_power());
        }

        const double u = static_cast<double>(users);
        power_low.add_numeric_row({u, base_l.mean(), pro_l.mean(), opt_l.mean()}, 1);
        runtimes.add_numeric_row(
            {u, t_samc.mean(), t_iac.mean(), t_gac.mean(), n_iac.mean(),
             n_gac.mean()},
            1);
        conn.add_numeric_row({u, must_rs[0].mean(), must_rs[1].mean(),
                              must_rs[2].mean(), must_rs[3].mean(), mbmc_rs.mean()},
                             1);
        power_high.add_numeric_row({u, base_h.mean(), ucpo_h.mean()}, 1);
    }

    std::printf("%s reproduction (seeds per point: %d%s)\n\n", figure, bc.seeds,
                bc.fast ? ", fast mode" : "");
    print_header("(a)", "coverage-tier power: baseline vs PRO vs optimal");
    power_low.print(std::cout);
    std::printf("\n");
    print_header("(b)", "running times of the three coverage solvers");
    runtimes.print(std::cout);
    std::printf("\n");
    print_header("(c)", "connectivity RSs: MUST pinned to BS1..BS4 vs MBMC");
    conn.print(std::cout);
    std::printf("\n");
    print_header("(d)", "connectivity-tier power: baseline vs UCPO");
    power_high.print(std::cout);
    std::printf("\n");
}

}  // namespace sag::bench
