// Reproduces paper Fig. 6 (a)-(d): relay tree topologies on a 300x300
// field with 4 corner base stations, for IAC+MBMC, GAC+MBMC, SAMC+MBMC and
// SAMC+MUST. Fig. 6 is a scatter plot; here each variant prints its node
// inventory and writes a CSV (kind,x,y,parent_x,parent_y) that plots the
// exact figure. The headline comparison (paper §IV-C): MUST hauls all
// traffic to one corner BS with far more connectivity RSs than MBMC's
// nearest-BS forest.
#include <filesystem>
#include <fstream>

#include "bench_common.h"

#include "sag/io/svg.h"

#include "sag/core/candidates.h"
#include "sag/core/ilpqc.h"
#include "sag/core/samc.h"
#include "sag/core/ucra.h"

namespace {

using namespace sag;

void dump(const std::filesystem::path& out_dir, const char* name,
          const core::Scenario& s, const core::CoveragePlan& cov,
          const core::ConnectivityPlan& plan) {
    std::printf("--- %s ---\n", name);
    std::printf("  coverage RSs: %zu, connectivity RSs: %zu, nodes: %zu\n",
                cov.rs_count(), plan.connectivity_rs_count(), plan.node_count());

    const std::string path = (out_dir / (std::string("fig6_") + name + ".csv")).string();
    std::ofstream csv(path);
    csv << "kind,x,y,parent_x,parent_y\n";
    // Subscribers first (no parent).
    for (const auto& sub : s.subscribers) {
        csv << "SS," << sub.pos.x << ',' << sub.pos.y << ",,\n";
    }
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        const char* kind = plan.kinds[v] == core::NodeKind::BaseStation ? "BS"
                           : plan.kinds[v] == core::NodeKind::CoverageRs
                               ? "RS_cover"
                               : "RS_connect";
        csv << kind << ',' << plan.positions[v].x << ',' << plan.positions[v].y;
        if (plan.parent[v] != v) {
            csv << ',' << plan.positions[plan.parent[v]].x << ','
                << plan.positions[plan.parent[v]].y << '\n';
        } else {
            csv << ",,\n";
        }
    }
    std::printf("  wrote %s\n", path.c_str());

    io::SvgOptions svg_opts;
    svg_opts.title = name;
    const std::string svg_path = (out_dir / (std::string("fig6_") + name + ".svg")).string();
    std::ofstream svg(svg_path);
    svg << io::render_deployment_svg(s, cov, plan, svg_opts);
    std::printf("  wrote %s\n", svg_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    (void)bc;
    // Plot artifacts go under results/ (gitignored) by default so reruns
    // never litter the repo root; --out-dir=DIR overrides.
    std::filesystem::path out_dir = "results";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--out-dir=", 0) == 0) out_dir = arg.substr(10);
    }
    std::filesystem::create_directories(out_dir);
    bench::print_header("Fig 6", "tree topologies, 300x300 (plot axes +-300), "
                                 "30 users, 4 corner BSs, SNR=-15dB");

    sim::GeneratorConfig cfg;
    cfg.field_side = 600.0;  // the paper plots axes [-300, 300]
    cfg.subscriber_count = 30;
    cfg.base_station_count = 4;
    cfg.bs_layout = sim::BsLayout::Corners;
    cfg.snr_threshold_db = units::Decibel{-15.0};
    const auto s = sim::generate_scenario(cfg, 4242);

    core::IlpqcOptions iopts;
    iopts.node_budget = bc.fast ? 50'000 : 400'000;
    iopts.time_budget_seconds = bc.fast ? 0.25 : 2.0;

    const auto iac_plan = core::solve_ilpqc_coverage(s, core::iac_candidates(s), iopts);
    if (iac_plan.feasible) {
        dump(out_dir, "IAC+MBMC", s, iac_plan, core::solve_mbmc(s, iac_plan));
    } else {
        std::printf("--- IAC+MBMC ---\n  IAC infeasible on this instance\n");
    }

    const auto gac_plan = core::solve_ilpqc_coverage(
        s, core::prune_useless_candidates(s, core::gac_candidates(s, 15.0)), iopts);
    if (gac_plan.feasible) {
        dump(out_dir, "GAC+MBMC", s, gac_plan, core::solve_mbmc(s, gac_plan));
    } else {
        std::printf("--- GAC+MBMC ---\n  GAC infeasible on this instance\n");
    }

    const auto samc = core::solve_samc(s);
    if (samc.plan.feasible) {
        dump(out_dir, "SAMC+MBMC", s, samc.plan, core::solve_mbmc(s, samc.plan));
        // Fig. 6(d): everything drags to the single corner BS 0.
        dump(out_dir, "SAMC+MUST", s, samc.plan, core::solve_must(s, samc.plan, sag::ids::BsId{0}));
    } else {
        std::printf("--- SAMC ---\n  infeasible on this instance\n");
    }
    return 0;
}
