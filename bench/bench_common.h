#pragma once

// Shared helpers for the figure/table reproduction binaries. Each binary
// regenerates one paper artifact: it sweeps the paper's x-axis, averages
// over seeds (the paper uses 10 test runs per point), and prints an
// aligned table whose columns mirror the figure's series.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <filesystem>
#include <iostream>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "sag/io/report_io.h"
#include "sag/obs/obs.h"
#include "sag/sim/scenario_gen.h"
#include "sag/sim/stats.h"
#include "sag/sim/stopwatch.h"
#include "sag/sim/table.h"

namespace sag::bench {

/// Command-line knobs shared by all benchmark binaries.
///   --seeds=N    runs per point (default 10, the paper's count)
///   --fast       3 seeds and reduced ILP budgets (CI-friendly)
///   --threads=N  parallel seed evaluation where the binary supports it
///                (never used for wall-clock measurements)
///   --report[=FILE]  write an obs::RunReport with per-phase spans and
///                solver counters (default results/<binary>_report.json;
///                schema in docs/OBSERVABILITY.md)
struct BenchConfig {
    int seeds = 10;
    bool fast = false;
    int threads = 1;
    std::string report_path;  ///< empty = no run report requested

    static BenchConfig parse(int argc, char** argv) {
        BenchConfig cfg;
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg.rfind("--seeds=", 0) == 0) {
                cfg.seeds = std::atoi(arg.c_str() + 8);
            } else if (arg.rfind("--threads=", 0) == 0) {
                cfg.threads = std::atoi(arg.c_str() + 10);
            } else if (arg == "--fast") {
                cfg.fast = true;
                cfg.seeds = 3;
            } else if (arg.rfind("--report=", 0) == 0) {
                cfg.report_path = arg.substr(9);
            } else if (arg == "--report") {
                cfg.report_path =
                    "results/" +
                    std::filesystem::path(argv[0]).filename().string() +
                    "_report.json";
            } else if (arg == "--help") {
                std::printf(
                    "usage: %s [--seeds=N] [--threads=N] [--fast]"
                    " [--report[=FILE]]\n",
                    argv[0]);
                std::exit(0);
            }
        }
        if (cfg.seeds < 1) cfg.seeds = 1;
        if (cfg.threads < 1) cfg.threads = 1;
        return cfg;
    }
};

/// Installs an obs::Recorder for the binary's lifetime when --report was
/// given and writes the merged report on destruction. With no --report
/// the recorder is never created, so the solvers stay on the no-sink
/// instrumentation path and wall-clock numbers are untouched.
class ReportScope {
public:
    explicit ReportScope(const BenchConfig& cfg) : path_(cfg.report_path) {
        if (!path_.empty()) recorder_.emplace();
    }
    ~ReportScope() {
        if (!recorder_) return;
        try {
            const std::filesystem::path p(path_);
            if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
            io::write_run_report(recorder_->snapshot(), path_);
            std::printf("\nwrote run report: %s\n", path_.c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "failed writing run report %s: %s\n",
                         path_.c_str(), e.what());
        }
    }
    ReportScope(const ReportScope&) = delete;
    ReportScope& operator=(const ReportScope&) = delete;

private:
    std::string path_;
    std::optional<obs::ScopedRecorder> recorder_;
};

/// NaN marks "no feasible solution" — the paper's missing data points
/// (e.g. IAC/GAC beyond 50 users in Fig. 3b). Averages skip NaN seeds and
/// come back NaN only when every seed failed.
inline constexpr double kInfeasible = std::numeric_limits<double>::quiet_NaN();

class SeedAverage {
public:
    void add(double v) {
        if (v == v) stat_.add(v);  // skip NaN
        ++total_;
    }
    double mean() const { return stat_.count() > 0 ? stat_.mean() : kInfeasible; }
    /// Fraction of seeds that produced a feasible value.
    double feasible_share() const {
        return total_ > 0 ? static_cast<double>(stat_.count()) /
                                static_cast<double>(total_)
                          : 0.0;
    }

private:
    sim::RunningStat stat_;
    std::size_t total_ = 0;
};

inline void print_header(const char* figure, const char* description) {
    std::printf("=== %s ===\n%s\n\n", figure, description);
}

}  // namespace sag::bench
