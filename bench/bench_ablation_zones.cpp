// Ablation: the Zone Partition noise ceiling N_max (Algorithm 2). Larger
// N_max shrinks d_max, splitting the field into more zones: each zone
// solves faster, but ignored inter-zone interference grows, so the
// verifier (which always evaluates global SNR) starts reporting
// violations. Expected: a plateau of safe N_max values, then a cliff.
#include "bench_common.h"

#include "sag/core/feasibility.h"
#include "sag/core/samc.h"
#include "sag/core/zone_partition.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    bench::print_header("Ablation: Zone Partition N_max",
                        "1500x1500, 60 users, SNR=-15dB; d_max, zone count, "
                        "SAMC time, and globally verified feasibility vs N_max");

    sim::Table table({"N_max", "d_max", "zones", "RSs", "time(ms)",
                      "verified-feasible%"});
    for (const double nmax : {1e-6, 1e-5, 7.5e-5, 5e-4, 5e-3, 5e-2}) {
        bench::SeedAverage dmax_stat, zones_stat, rs_stat, time_stat, ok_stat;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg;
            cfg.field_side = 1500.0;
            cfg.subscriber_count = 60;
            cfg.snr_threshold_db = units::Decibel{-15.0};
            cfg.radio.ignorable_noise = units::Watt{nmax};
            const auto s = sim::generate_scenario(cfg, 9300 + seed);
            dmax_stat.add(core::zone_partition_dmax(s));
            sim::Stopwatch sw;
            const auto result = core::solve_samc(s);
            time_stat.add(sw.milliseconds());
            zones_stat.add(static_cast<double>(result.zones.size()));
            if (!result.plan.feasible) {
                rs_stat.add(bench::kInfeasible);
                ok_stat.add(0.0);
                continue;
            }
            rs_stat.add(static_cast<double>(result.plan.rs_count()));
            // Global check: per-zone SNR reasoning must survive the sum of
            // all inter-zone interference.
            const auto report = core::verify_coverage_max_power(s, result.plan);
            ok_stat.add(report.feasible ? 100.0 : 0.0);
        }
        table.add_numeric_row({nmax, dmax_stat.mean(), zones_stat.mean(),
                               rs_stat.mean(), time_stat.mean(), ok_stat.mean()},
                              4);
    }
    table.print(std::cout);
    return 0;
}
