// Survivability degradation curves: sweep the independent RS-failure
// fraction over seeded scenario batches, repair each damaged deployment,
// and report (a) coverage survival — the share of initially covered SSs
// the repaired network still serves with *verified* feasibility — and
// (b) power overhead — repaired P_total over intact P_total. Expected
// shape: survival stays near 1 while the surviving RSs have slack to
// absorb orphans, then degrades as the candidate pool thins; overhead
// grows with the failure fraction (reassignments lengthen access links).
//
// --curves[=FILE] additionally writes the averaged curves as JSON
// (default results/bench_resilience_curves.json); output is
// deterministic for a fixed --seeds value.
#include "bench_common.h"

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/io/resilience_io.h"
#include "sag/io/scenario_io.h"
#include "sag/resilience/damage.h"
#include "sag/resilience/failure.h"
#include "sag/resilience/repair.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);

    std::string curves_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--curves=", 0) == 0) {
            curves_path = arg.substr(9);
        } else if (arg == "--curves") {
            curves_path = "results/bench_resilience_curves.json";
        }
    }
    // --report implies the curves artifact: degradation curves are this
    // binary's primary result.
    if (curves_path.empty() && !bc.report_path.empty()) {
        curves_path = "results/bench_resilience_curves.json";
    }

    bench::print_header(
        "Resilience (independent RS failures, 500x500 field)",
        "coverage survival and power overhead vs failure fraction, "
        "post-repair, verified via verify_coverage/verify_topology");

    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = bc.fast ? 20 : 30;
    cfg.base_station_count = 4;

    const std::vector<double> fractions = {0.0,  0.05, 0.10, 0.15,
                                           0.20, 0.25, 0.30};
    sim::Table table({"fraction", "survival", "power-overhead", "reassigned",
                      "new-relays", "unrecoverable", "repair-ok"});
    io::Json::Array curve_rows;

    for (const double fraction : fractions) {
        bench::SeedAverage survival, overhead, reassigned, new_relays,
            unrecoverable, repair_ok;
        for (int seed = 0; seed < bc.seeds; ++seed) {
            const auto scenario = sim::generate_scenario(cfg, 9000 + seed);
            const auto deployment = core::solve_sag(scenario);
            if (!deployment.feasible) {
                survival.add(bench::kInfeasible);
                overhead.add(bench::kInfeasible);
                reassigned.add(bench::kInfeasible);
                new_relays.add(bench::kInfeasible);
                unrecoverable.add(bench::kInfeasible);
                repair_ok.add(bench::kInfeasible);
                continue;
            }
            const resilience::IndependentFailureModel model{fraction, true};
            const auto failures = resilience::inject_independent(
                deployment, model, static_cast<std::uint64_t>(seed));
            const auto outcome =
                resilience::repair(scenario, deployment, failures);
            const double initial =
                static_cast<double>(scenario.subscriber_count());
            // Survival only counts *verified* coverage: an unverified
            // repair contributes zero, not its claimed covered count.
            const double kept = outcome.repaired.feasible
                                    ? static_cast<double>(outcome.covered.size())
                                    : 0.0;
            survival.add(initial > 0.0 ? kept / initial : 1.0);
            overhead.add(outcome.power_overhead());
            reassigned.add(static_cast<double>(outcome.reassigned));
            new_relays.add(static_cast<double>(outcome.new_relays));
            unrecoverable.add(static_cast<double>(outcome.unrecoverable.size()));
            repair_ok.add(outcome.repaired.feasible ? 1.0 : 0.0);
        }
        table.add_numeric_row({fraction, survival.mean(), overhead.mean(),
                               reassigned.mean(), new_relays.mean(),
                               unrecoverable.mean(), repair_ok.mean()},
                              3);
        io::Json row;
        row["fraction"] = fraction;
        row["coverage_survival"] = survival.mean();
        row["power_overhead"] = overhead.mean();
        row["reassigned"] = reassigned.mean();
        row["new_relays"] = new_relays.mean();
        row["unrecoverable"] = unrecoverable.mean();
        row["repair_feasible_share"] = repair_ok.mean();
        curve_rows.emplace_back(std::move(row));
    }

    table.print(std::cout);

    if (!curves_path.empty()) {
        io::Json doc;
        doc["format"] = 1;
        doc["model"] = "independent";
        doc["field_side"] = cfg.field_side;
        doc["subscribers"] = cfg.subscriber_count;
        doc["base_stations"] = cfg.base_station_count;
        doc["seeds"] = static_cast<std::size_t>(bc.seeds);
        doc["curves"] = io::Json(std::move(curve_rows));
        try {
            const std::filesystem::path p(curves_path);
            if (p.has_parent_path())
                std::filesystem::create_directories(p.parent_path());
            io::write_text_file(curves_path, doc.dump(2) + "\n");
            std::printf("\nwrote degradation curves: %s\n", curves_path.c_str());
        } catch (const std::exception& e) {
            std::fprintf(stderr, "failed writing curves %s: %s\n",
                         curves_path.c_str(), e.what());
            return 1;
        }
    }
    return 0;
}
