// Reproduces paper Fig. 4 (a)-(d): the 500x500 playing field suite.
#include "bench_fig45_impl.h"

int main(int argc, char** argv) {
    const auto bc = sag::bench::BenchConfig::parse(argc, argv);
    const sag::bench::ReportScope report_scope(bc);
    sag::bench::run_field_suite("Fig. 4 (500x500 field, SNR=-15dB)", 500.0,
                                {5, 10, 15, 20, 25, 30, 35, 40, 45, 50}, 15.0, bc);
    return 0;
}
