// Ablation: local-search swap depth in the geometric hitting set (the
// Mustafa–Ray PTAS stand-in inside SAMC). Deeper swaps buy smaller
// hitting sets — and hence fewer coverage RSs — at more time. Expected:
// (2,1) swaps recover almost all of the gain; (3,2) helps occasionally.
#include "bench_common.h"

#include "sag/opt/hitting_set.h"
#include "sag/sim/scenario_gen.h"

int main(int argc, char** argv) {
    using namespace sag;
    const auto bc = bench::BenchConfig::parse(argc, argv);
    const bench::ReportScope report_scope(bc);
    bench::print_header("Ablation: hitting-set swap depth",
                        "points placed / time for max_swap = 1, 2, 3 "
                        "(disk radii 30-40, 500x500 field)");

    sim::Table table({"disks", "swap1", "swap2", "swap3", "t1(ms)", "t2(ms)",
                      "t3(ms)"});
    for (const std::size_t n : {10ul, 20ul, 30ul, 40ul, 60ul}) {
        bench::SeedAverage count[3], time_ms[3];
        for (int seed = 0; seed < bc.seeds; ++seed) {
            sim::GeneratorConfig cfg;
            cfg.field_side = 500.0;
            cfg.subscriber_count = n;
            const auto s = sim::generate_scenario(cfg, 9000 + seed);
            const auto disks = s.feasible_circles();
            for (int swap = 1; swap <= 3; ++swap) {
                opt::HittingSetOptions opts;
                opts.max_swap = swap;
                sim::Stopwatch sw;
                const auto pts = opt::geometric_hitting_set(disks, opts);
                time_ms[swap - 1].add(sw.milliseconds());
                count[swap - 1].add(static_cast<double>(pts.size()));
            }
        }
        table.add_numeric_row({static_cast<double>(n), count[0].mean(),
                               count[1].mean(), count[2].mean(), time_ms[0].mean(),
                               time_ms[1].mean(), time_ms[2].mean()},
                              2);
    }
    table.print(std::cout);
    return 0;
}
