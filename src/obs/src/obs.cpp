#include "sag/obs/obs.h"

#include <chrono>

namespace sag::obs {

namespace detail {
std::atomic<Recorder*> g_current{nullptr};
}  // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t next_recorder_id() {
    static std::atomic<std::uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Fold `node` into `siblings`, aggregating with an existing same-name
/// sibling (children merged recursively) or appending a copy.
void merge_node(std::vector<TraceNode>& siblings, const TraceNode& node) {
    for (TraceNode& s : siblings) {
        if (s.name == node.name) {
            s.seconds += node.seconds;
            s.count += node.count;
            for (const TraceNode& c : node.children) merge_node(s.children, c);
            return;
        }
    }
    siblings.push_back(node);
}

}  // namespace

/// Per-thread recording state. Counter/gauge cells live in deques so
/// their addresses stay stable while the owning thread appends; the
/// values are atomics so snapshot() can read them concurrently with the
/// owner's relaxed increments. The span structures are only touched
/// under `m` (spans are phase-grained, the lock is uncontended).
///
/// `m` guards structure growth, spans, and snapshot reads. The cell
/// deques are SAG_GUARDED_BY(m) for every *cross-thread* access
/// (growth, snapshot); the owning thread's lock-free scan of its own
/// cells is the one analysis exemption, isolated in find_counter/
/// find_gauge below.
struct Recorder::ThreadBuffer {
    struct CounterCell {
        const char* name;
        std::atomic<std::uint64_t> value;
        CounterCell(const char* n, std::uint64_t v) : name(n), value(v) {}
    };
    struct GaugeCell {
        const char* name;
        std::atomic<double> value;
        GaugeCell(const char* n, double v) : name(n), value(v) {}
    };
    struct OpenSpan {
        const char* name;
        Clock::time_point start;
        std::vector<TraceNode> children;
    };

    exec::Mutex m;
    std::deque<CounterCell> counters SAG_GUARDED_BY(m);
    std::deque<GaugeCell> gauges SAG_GUARDED_BY(m);
    std::vector<OpenSpan> open SAG_GUARDED_BY(m);
    std::vector<TraceNode> roots SAG_GUARDED_BY(m);

    /// Lock-free scan for an existing cell, called only by the buffer's
    /// owning thread. Safe without `m`: cell names are literals, only
    /// the owner appends (so the prefix it scans is immutable), deque
    /// growth never moves existing cells, and the values are atomics.
    /// This hybrid owner-thread discipline is not expressible to the
    /// analysis, hence the one documented opt-out.
    CounterCell* find_counter(const char* name) SAG_NO_THREAD_SAFETY_ANALYSIS {
        for (CounterCell& cell : counters) {
            if (cell.name == name) return &cell;
        }
        return nullptr;
    }
    GaugeCell* find_gauge(const char* name) SAG_NO_THREAD_SAFETY_ANALYSIS {
        for (GaugeCell& cell : gauges) {
            if (cell.name == name) return &cell;
        }
        return nullptr;
    }
};

Recorder::Recorder() : id_(next_recorder_id()) {}

Recorder::~Recorder() { uninstall(); }

void Recorder::install() {
    detail::g_current.store(this, std::memory_order_release);
}

void Recorder::uninstall() {
    Recorder* self = this;
    detail::g_current.compare_exchange_strong(self, nullptr,
                                              std::memory_order_acq_rel);
}

Recorder::ThreadBuffer& Recorder::local() {
    // Cache keyed by (recorder address, recorder id): the id defeats
    // stale hits when a destroyed recorder's address is reused.
    struct Tls {
        const Recorder* owner = nullptr;
        std::uint64_t id = 0;
        ThreadBuffer* buffer = nullptr;
    };
    static thread_local Tls tls;
    if (tls.owner != this || tls.id != id_) {
        const exec::MutexLock lock(mutex_);
        buffers_.push_back(std::make_unique<ThreadBuffer>());
        tls = {this, id_, buffers_.back().get()};
    }
    return *tls.buffer;
}

void Recorder::add_count(const char* name, std::uint64_t delta) {
    ThreadBuffer& buf = local();
    // Pointer-compare scan: names are literals, the per-thread cell list
    // is short, and only this thread appends — no lock on the hit path.
    if (ThreadBuffer::CounterCell* cell = buf.find_counter(name)) {
        cell->value.fetch_add(delta, std::memory_order_relaxed);
        return;
    }
    const exec::MutexLock lock(buf.m);
    buf.counters.emplace_back(name, delta);
}

void Recorder::set_gauge(const char* name, double value) {
    ThreadBuffer& buf = local();
    if (ThreadBuffer::GaugeCell* cell = buf.find_gauge(name)) {
        cell->value.store(value, std::memory_order_relaxed);
        return;
    }
    const exec::MutexLock lock(buf.m);
    buf.gauges.emplace_back(name, value);
}

void Recorder::begin_span(const char* name) {
    ThreadBuffer& buf = local();
    const exec::MutexLock lock(buf.m);
    buf.open.push_back({name, Clock::now(), {}});
}

void Recorder::end_span() {
    ThreadBuffer& buf = local();
    const exec::MutexLock lock(buf.m);
    if (buf.open.empty()) return;  // unmatched end: drop defensively
    ThreadBuffer::OpenSpan span = std::move(buf.open.back());
    buf.open.pop_back();
    TraceNode node{span.name,
                   std::chrono::duration<double>(Clock::now() - span.start).count(),
                   1,
                   std::move(span.children)};
    std::vector<TraceNode>& siblings =
        buf.open.empty() ? buf.roots : buf.open.back().children;
    merge_node(siblings, node);
}

RunReport Recorder::snapshot() {
    RunReport report;
    const exec::MutexLock lock(mutex_);
    for (const std::unique_ptr<ThreadBuffer>& buf : buffers_) {
        const exec::MutexLock buf_lock(buf->m);
        for (const ThreadBuffer::CounterCell& cell : buf->counters) {
            report.counters[cell.name] +=
                cell.value.load(std::memory_order_relaxed);
        }
        for (const ThreadBuffer::GaugeCell& cell : buf->gauges) {
            report.gauges[cell.name] = cell.value.load(std::memory_order_relaxed);
        }
        for (const TraceNode& root : buf->roots) merge_node(report.trace, root);
    }
    return report;
}

}  // namespace sag::obs
