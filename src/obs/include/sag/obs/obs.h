#pragma once

// sag::obs — zero-dependency solver observability: named monotonic
// counters, value gauges, and RAII phase spans that assemble into a
// nested trace tree. The metrics contract (every name, unit, and the
// paper phase it maps to) is documented in docs/OBSERVABILITY.md; CI
// greps that the doc and the source agree.
//
// Cost model (the "no-sink" contract):
//   * With no Recorder installed, every SAG_OBS_* macro is one relaxed
//     atomic load and a predictable branch — cheap enough for the
//     per-delta hot paths of core::SnrField (bench_micro's
//     snr_field_delta kernels quantify it at <2%).
//   * With a Recorder installed, counters are a pointer-compare scan
//     over a small per-thread cell list plus one relaxed fetch_add;
//     spans additionally take the thread buffer's (uncontended) mutex
//     and two steady_clock reads. Spans are meant for phases, not for
//     per-subscriber inner loops.
//   * Compiling with -DSAG_OBS_ENABLED=0 (CMake: -DSAG_OBS=OFF) turns
//     every macro into a no-op with zero codegen at the call sites.
//
// Thread model: each thread records into its own buffer (registered
// with the Recorder on first use); Recorder::snapshot() merges all
// buffers — counters by sum, trace roots by name — so work done on
// exec::ThreadPool workers lands in the same report as the main thread.
// Locking goes through the annotated exec::Mutex so Clang Thread Safety
// Analysis checks the discipline at compile time (the one deliberate
// exemption — the owner-thread lock-free counter-cell scan — is marked
// SAG_NO_THREAD_SAFETY_ANALYSIS in obs.cpp with its justification).

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sag/exec/mutex.h"
#include "sag/exec/thread_annotations.h"

#ifndef SAG_OBS_ENABLED
#define SAG_OBS_ENABLED 1
#endif

namespace sag::obs {

/// One node of the (merged) phase trace. Spans with the same name under
/// the same parent aggregate into a single node: `seconds` is the total
/// wall time and `count` the number of instances (e.g. one
/// `samc.sliding` node summarizing all zones).
struct TraceNode {
    std::string name;
    double seconds = 0.0;
    std::uint64_t count = 0;
    std::vector<TraceNode> children;
};

/// A flushed run: merged counters, gauges, and trace roots. Serialized
/// to JSON by io::run_report_to_json (schema in docs/OBSERVABILITY.md).
struct RunReport {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::vector<TraceNode> trace;
};

class Recorder;

namespace detail {
/// The process-wide sink. Null (the default) means every macro is a
/// single load-and-branch. Exposed only so Recorder::current() inlines.
extern std::atomic<Recorder*> g_current;
}  // namespace detail

/// The observability sink: owns per-thread buffers and merges them into
/// a RunReport on snapshot(). Install one around the work you want
/// traced; the Recorder must outlive every Span opened while it is
/// installed. Counter/gauge/span names must be string literals (or
/// otherwise outlive the Recorder) — per-thread cells key on the
/// pointer and snapshot() merges by string value.
class Recorder {
public:
    Recorder();
    ~Recorder();
    Recorder(const Recorder&) = delete;
    Recorder& operator=(const Recorder&) = delete;

    /// Make this the process-wide sink (replacing any previous one).
    void install();
    /// Remove this recorder as the sink (no-op when not installed).
    void uninstall();

    /// The installed sink, or nullptr. One relaxed-acquire load.
    static Recorder* current() {
        return detail::g_current.load(std::memory_order_acquire);
    }

    /// Add `delta` to the named monotonic counter (calling thread's cell).
    void add_count(const char* name, std::uint64_t delta);
    /// Set the named gauge (last write wins; merge order is thread
    /// registration order, main thread typically first).
    void set_gauge(const char* name, double value);

    /// Span protocol (use the Span RAII class, not these directly).
    void begin_span(const char* name);
    void end_span();

    /// Merge every thread's buffer into one report. Open (unfinished)
    /// spans are not included; call after the traced work completes.
    /// Safe to call while other threads are still recording counters.
    RunReport snapshot();

private:
    struct ThreadBuffer;
    ThreadBuffer& local();

    exec::Mutex mutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_  // registration order
        SAG_GUARDED_BY(mutex_);
    std::uint64_t id_;  // process-unique, defeats address-reuse aliasing
};

/// RAII phase timer: opens a span on the installed recorder (if any) at
/// construction, closes it at destruction. Captures the recorder once,
/// so installing/uninstalling mid-span is safe.
class Span {
public:
    explicit Span(const char* name) : rec_(Recorder::current()) {
        if (rec_) rec_->begin_span(name);
    }
    ~Span() {
        if (rec_) rec_->end_span();
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    Recorder* rec_;
};

/// Convenience: a Recorder installed for the scope's lifetime.
class ScopedRecorder {
public:
    ScopedRecorder() { recorder_.install(); }
    ~ScopedRecorder() { recorder_.uninstall(); }
    ScopedRecorder(const ScopedRecorder&) = delete;
    ScopedRecorder& operator=(const ScopedRecorder&) = delete;

    Recorder& recorder() { return recorder_; }
    RunReport snapshot() { return recorder_.snapshot(); }

private:
    Recorder recorder_;
};

/// True when a sink is installed (the runtime on/off switch).
inline bool enabled() { return Recorder::current() != nullptr; }

}  // namespace sag::obs

#define SAG_OBS_CONCAT_INNER(a, b) a##b
#define SAG_OBS_CONCAT(a, b) SAG_OBS_CONCAT_INNER(a, b)

#if SAG_OBS_ENABLED

/// Time the enclosing scope as a named phase span.
#define SAG_OBS_SPAN(name) \
    ::sag::obs::Span SAG_OBS_CONCAT(sag_obs_span_, __LINE__)(name)
/// Add `delta` to a named monotonic counter (literal name required).
#define SAG_OBS_COUNT_ADD(name, delta)                                        \
    do {                                                                      \
        if (::sag::obs::Recorder* sag_obs_rec = ::sag::obs::Recorder::current()) \
            sag_obs_rec->add_count(name, static_cast<std::uint64_t>(delta));  \
    } while (0)
/// Increment a named monotonic counter by one.
#define SAG_OBS_COUNT(name) SAG_OBS_COUNT_ADD(name, 1)
/// Set a named gauge to `value` (double).
#define SAG_OBS_GAUGE(name, value)                                            \
    do {                                                                      \
        if (::sag::obs::Recorder* sag_obs_rec = ::sag::obs::Recorder::current()) \
            sag_obs_rec->set_gauge(name, static_cast<double>(value));         \
    } while (0)

#else  // !SAG_OBS_ENABLED

#define SAG_OBS_SPAN(name) ((void)0)
#define SAG_OBS_COUNT_ADD(name, delta) ((void)0)
#define SAG_OBS_COUNT(name) ((void)0)
#define SAG_OBS_GAUGE(name, value) ((void)0)

#endif  // SAG_OBS_ENABLED
