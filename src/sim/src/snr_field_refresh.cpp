#include "sag/sim/snr_field_refresh.h"

#include <algorithm>

#include "sag/obs/obs.h"

namespace sag::sim {

void refresh_snr_field(core::SnrField& field, exec::ThreadPool& pool) {
    SAG_OBS_SPAN("sim.refresh_snr_field");
    const std::size_t count = field.tracked_count();
    if (count == 0) return;
    // A few chunks per worker amortizes queue overhead while still
    // balancing uneven progress across cores.
    const std::size_t chunks =
        std::min(count, std::max<std::size_t>(1, pool.thread_count() * 4));
    const std::size_t per_chunk = (count + chunks - 1) / chunks;
    // No locks here by design: each chunk writes only its own
    // subscribers' slots inside the field, so the whole fan-out stays on
    // the annotated, TSan-covered exec::ThreadPool with nothing guarded.
    exec::parallel_for_index(pool, chunks, [&](std::size_t c) {
        // Clamp both ends: ceil-division can leave trailing chunks fully
        // past `count`, which must contribute an empty [begin, end).
        const std::size_t begin = std::min(count, c * per_chunk);
        const std::size_t end = std::min(count, begin + per_chunk);
        // Per-chunk (worker-thread) count: merged across thread buffers
        // at snapshot, so the report sees the full recompute total.
        SAG_OBS_COUNT_ADD("snr_field.parallel_recomputes", end - begin);
        for (std::size_t k = begin; k < end; ++k) {
            field.recompute_subscriber(sag::ids::SsId{k});
        }
    });
}

}  // namespace sag::sim
