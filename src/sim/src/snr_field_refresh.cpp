#include "sag/sim/snr_field_refresh.h"

#include <algorithm>

namespace sag::sim {

void refresh_snr_field(core::SnrField& field, ThreadPool& pool) {
    const std::size_t count = field.tracked_count();
    if (count == 0) return;
    // A few chunks per worker amortizes queue overhead while still
    // balancing uneven progress across cores.
    const std::size_t chunks =
        std::min(count, std::max<std::size_t>(1, pool.thread_count() * 4));
    const std::size_t per_chunk = (count + chunks - 1) / chunks;
    parallel_for_index(pool, chunks, [&](std::size_t c) {
        const std::size_t begin = c * per_chunk;
        const std::size_t end = std::min(count, begin + per_chunk);
        for (std::size_t k = begin; k < end; ++k) field.recompute_subscriber(k);
    });
}

}  // namespace sag::sim
