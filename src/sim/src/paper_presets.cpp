#include "sag/sim/paper_presets.h"

namespace sag::sim::presets {

GeneratorConfig evaluation_base() {
    GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 30;
    cfg.base_station_count = 4;
    cfg.min_distance_request = 30.0;
    cfg.max_distance_request = 40.0;
    cfg.snr_threshold_db = units::Decibel{-15.0};
    cfg.bs_layout = BsLayout::Uniform;
    return cfg;
}

GeneratorConfig field500(std::size_t users) {
    GeneratorConfig cfg = evaluation_base();
    cfg.subscriber_count = users;
    return cfg;
}

GeneratorConfig field800(std::size_t users) {
    GeneratorConfig cfg = evaluation_base();
    cfg.field_side = 800.0;
    cfg.subscriber_count = users;
    return cfg;
}

GeneratorConfig field800_relaxed(std::size_t users) {
    GeneratorConfig cfg = field800(users);
    cfg.snr_threshold_db = units::Decibel{-40.0};
    return cfg;
}

GeneratorConfig field300(std::size_t users) {
    GeneratorConfig cfg = evaluation_base();
    cfg.field_side = 300.0;
    cfg.subscriber_count = users;
    return cfg;
}

GeneratorConfig snr_sweep_point(units::Decibel snr_threshold) {
    GeneratorConfig cfg = evaluation_base();
    cfg.snr_threshold_db = snr_threshold;
    return cfg;
}

GeneratorConfig topology_showcase() {
    GeneratorConfig cfg = evaluation_base();
    cfg.field_side = 600.0;
    cfg.bs_layout = BsLayout::Corners;
    return cfg;
}

}  // namespace sag::sim::presets
