#include "sag/sim/paper_presets.h"

#include <cmath>

namespace sag::sim::presets {

GeneratorConfig evaluation_base() {
    GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 30;
    cfg.base_station_count = 4;
    cfg.min_distance_request = 30.0;
    cfg.max_distance_request = 40.0;
    cfg.snr_threshold_db = units::Decibel{-15.0};
    cfg.bs_layout = BsLayout::Uniform;
    return cfg;
}

GeneratorConfig field500(std::size_t users) {
    GeneratorConfig cfg = evaluation_base();
    cfg.subscriber_count = users;
    return cfg;
}

GeneratorConfig field800(std::size_t users) {
    GeneratorConfig cfg = evaluation_base();
    cfg.field_side = 800.0;
    cfg.subscriber_count = users;
    return cfg;
}

GeneratorConfig field800_relaxed(std::size_t users) {
    GeneratorConfig cfg = field800(users);
    cfg.snr_threshold_db = units::Decibel{-40.0};
    return cfg;
}

GeneratorConfig field300(std::size_t users) {
    GeneratorConfig cfg = evaluation_base();
    cfg.field_side = 300.0;
    cfg.subscriber_count = users;
    return cfg;
}

GeneratorConfig snr_sweep_point(units::Decibel snr_threshold) {
    GeneratorConfig cfg = evaluation_base();
    cfg.snr_threshold_db = snr_threshold;
    return cfg;
}

GeneratorConfig topology_showcase() {
    GeneratorConfig cfg = evaluation_base();
    cfg.field_side = 600.0;
    cfg.bs_layout = BsLayout::Corners;
    return cfg;
}

GeneratorConfig log_distance_shadowed(std::size_t users, units::Decibel sigma,
                                      std::uint64_t shadowing_seed) {
    GeneratorConfig cfg = evaluation_base();
    cfg.subscriber_count = users;
    auto model = std::make_shared<wireless::LogDistanceModel>();
    // PL(d0) = -10 log10 G reproduces the two-ray median channel exactly,
    // so this family differs from the paper baseline only by the fading.
    model->path_loss_at_ref =
        units::Decibel{-10.0 * std::log10(cfg.radio.combined_gain())};
    model->exponent = cfg.radio.alpha;
    model->ref_distance = cfg.radio.reference_distance;
    model->shadowing_sigma = sigma;
    model->shadowing_seed = shadowing_seed;
    cfg.propagation = std::move(model);
    return cfg;
}

GeneratorConfig lora_field(std::size_t users) {
    GeneratorConfig cfg = evaluation_base();
    cfg.subscriber_count = users;
    // Long LoRa access links: low-rate subscribers a couple hundred
    // meters out, the regime the SF9 budget is built for.
    cfg.min_distance_request = 150.0;
    cfg.max_distance_request = 250.0;

    auto model = std::make_shared<wireless::LoRaLinkBudgetModel>();
    // Defaults (SF9, 125 kHz, 868 MHz, n = 3.5) are what we want.
    const wireless::LoRaLinkBudgetModel& lora = *model;

    // Real-world power constants (watts): 20 dBm caps, 125 kHz thermal
    // noise + 6 dB NF floor (~-117 dBm), ambient/inter-zone levels scaled
    // to the field's path losses.
    cfg.radio.max_power = units::Watt{0.1};
    cfg.radio.noise_floor = units::from_dbm(
        units::DecibelMilliwatt{-174.0 + 10.0 * std::log10(lora.bandwidth_hz)} +
        lora.noise_figure);
    cfg.radio.bandwidth_hz = lora.bandwidth_hz;
    cfg.radio.ignorable_noise = units::Watt{1.6e-13};
    cfg.radio.snr_ambient_noise = units::Watt{1e-12};
    cfg.propagation = std::move(model);

    // Heterogeneous hardware: full-power router-class relays serve
    // noisier client-class subscriber receivers.
    cfg.profiles.push_back(wireless::router_profile());
    wireless::RadioProfile client;
    client.name = "client";
    client.noise_figure = units::Decibel{6.0};
    client.duty_cycle = 0.1;
    cfg.profiles.push_back(client);
    cfg.relay_profile = ids::ProfileId{0};
    cfg.subscriber_profile = ids::ProfileId{1};
    return cfg;
}

}  // namespace sag::sim::presets
