#include "sag/sim/scenario_gen.h"

#include <random>
#include <stdexcept>

namespace sag::sim {

core::Scenario generate_scenario(const GeneratorConfig& config, std::uint64_t seed) {
    if (config.field_side <= 0.0) throw std::invalid_argument("field_side must be positive");
    if (config.min_distance_request <= 0.0 ||
        config.max_distance_request < config.min_distance_request)
        throw std::invalid_argument("bad distance-request range");
    if (config.base_station_count == 0)
        throw std::invalid_argument("need at least one base station");

    core::Scenario scenario;
    scenario.field = geom::Rect::centered_square(config.field_side);
    scenario.radio = config.radio;
    scenario.snr_threshold_db = config.snr_threshold_db;
    scenario.propagation = config.propagation;
    scenario.profiles = config.profiles;
    scenario.relay_profile = config.relay_profile;

    std::mt19937_64 rng(seed);
    const double half = config.field_side / 2.0;
    std::uniform_real_distribution<double> coord(-half, half);
    std::uniform_real_distribution<double> dist_req(config.min_distance_request,
                                                    config.max_distance_request);

    scenario.subscribers.reserve(config.subscriber_count);
    for (std::size_t i = 0; i < config.subscriber_count; ++i) {
        // Draw in a fixed order so subscriber i is identical across runs
        // regardless of how later fields evolve.
        const double x = coord(rng), y = coord(rng), d = dist_req(rng);
        core::Subscriber sub;
        sub.pos = {x, y};
        sub.distance_request = d;
        sub.profile = config.subscriber_profile;
        scenario.subscribers.push_back(sub);
    }

    scenario.base_stations.reserve(config.base_station_count);
    switch (config.bs_layout) {
        case BsLayout::Uniform:
            for (std::size_t b = 0; b < config.base_station_count; ++b) {
                const double x = coord(rng), y = coord(rng);
                scenario.base_stations.push_back({{x, y}});
            }
            break;
        case BsLayout::Corners: {
            const double inset = 0.8 * half;
            const geom::Vec2 corners[] = {
                {-inset, -inset}, {inset, -inset}, {-inset, inset}, {inset, inset}};
            for (std::size_t b = 0; b < config.base_station_count; ++b) {
                scenario.base_stations.push_back({corners[b % 4]});
            }
            break;
        }
        case BsLayout::Center:
            for (std::size_t b = 0; b < config.base_station_count; ++b) {
                // Stack extras on a small ring so they stay distinct.
                const double angle =
                    2.0 * 3.14159265358979323846 * static_cast<double>(b) /
                    static_cast<double>(config.base_station_count);
                const double r = b == 0 ? 0.0 : 0.05 * config.field_side;
                scenario.base_stations.push_back(
                    {{r * std::cos(angle), r * std::sin(angle)}});
            }
            break;
    }

    scenario.validate();
    return scenario;
}

}  // namespace sag::sim
