#include "sag/sim/table.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sag::sim {

std::string format_cell(double value, int precision) {
    if (std::isnan(value)) return "n/a";
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size())
        throw std::invalid_argument("row width does not match header count");
    rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
    std::vector<std::string> cells;
    cells.reserve(values.size());
    for (const double v : values) cells.push_back(format_cell(v, precision));
    add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    const auto print_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
        }
        os << '\n';
    };
    print_row(headers_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) print_row(row);
}

void Table::write_csv(std::ostream& os) const {
    const auto csv_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c > 0) os << ',';
            os << row[c];
        }
        os << '\n';
    };
    csv_row(headers_);
    for (const auto& row : rows_) csv_row(row);
}

}  // namespace sag::sim
