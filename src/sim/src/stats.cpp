#include "sag/sim/stats.h"

#include <cmath>

namespace sag::sim {

void RunningStat::add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
    return count_ >= 2 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
    RunningStat s;
    for (const double x : xs) s.add(x);
    return s.count() > 0 ? s.mean() : 0.0;
}

double stddev(std::span<const double> xs) {
    RunningStat s;
    for (const double x : xs) s.add(x);
    return s.stddev();
}

}  // namespace sag::sim
