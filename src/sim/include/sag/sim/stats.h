#pragma once

#include <cstddef>
#include <span>

namespace sag::sim {

/// Streaming mean/variance accumulator (Welford), used to average the 10
/// test runs behind every plotted point (paper §IV).
class RunningStat {
public:
    void add(double x);
    std::size_t count() const { return count_; }
    double mean() const { return mean_; }
    double variance() const;  ///< sample variance; 0 when count < 2
    double stddev() const;

private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
};

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);

}  // namespace sag::sim
