#pragma once

#include "sag/core/snr_field.h"
#include "sag/exec/thread_pool.h"

namespace sag::sim {

/// Parallel from-scratch rebuild of a field's cached interference totals:
/// the tracked subscribers are split into contiguous chunks, one pool task
/// each (core::SnrField::recompute_subscriber is safe for distinct
/// subscribers). Equivalent to core::SnrField::refresh(); worth it when
/// tracked_count x rs_count is large — city-scale audits, not the paper's
/// 70-subscriber fields.
void refresh_snr_field(core::SnrField& field, exec::ThreadPool& pool);

}  // namespace sag::sim
