#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sag::sim {

/// Column-aligned text table with optional CSV export. Every benchmark
/// binary prints one of these per paper table/figure so EXPERIMENTS.md can
/// quote rows verbatim.
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Adds a row of already formatted cells (must match header count).
    void add_row(std::vector<std::string> cells);
    /// Convenience: formats doubles with `precision` digits after the point;
    /// NaN renders as "n/a" (the paper's infeasible marker).
    void add_numeric_row(const std::vector<double>& values, int precision = 2);

    void print(std::ostream& os) const;
    void write_csv(std::ostream& os) const;

    std::size_t row_count() const { return rows_.size(); }

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like add_numeric_row does (NaN -> "n/a").
std::string format_cell(double value, int precision = 2);

}  // namespace sag::sim
