#pragma once

#include "sag/sim/scenario_gen.h"

namespace sag::sim {

/// Canned generator configurations matching the paper's evaluation
/// settings (§IV-A), so users and tests can name an experiment instead of
/// re-typing its parameters. Field sides are 300/500/800, SNR −15 dB
/// unless the figure says otherwise, distance requests U[30, 40], 4 BSs.
namespace presets {

/// Base settings shared by all §IV experiments.
GeneratorConfig evaluation_base();

/// Fig. 3(a) / Fig. 4: 500x500 at -15 dB with `users` subscribers.
GeneratorConfig field500(std::size_t users);

/// Fig. 3(b) / Fig. 5: 800x800 at -15 dB.
GeneratorConfig field800(std::size_t users);

/// Fig. 3(c): 800x800 at the relaxed -40 dB threshold.
GeneratorConfig field800_relaxed(std::size_t users);

/// Fig. 7(a): 300x300 at -15 dB.
GeneratorConfig field300(std::size_t users);

/// Fig. 3(d)/(e): 500x500, 30 users, custom SNR threshold.
GeneratorConfig snr_sweep_point(units::Decibel snr_threshold);

/// Fig. 6: 600x600 (plot axes +-300), 30 users, 4 corner BSs.
GeneratorConfig topology_showcase();

/// Log-distance channel calibrated to the two-ray median (PL(d0) =
/// -10 log10 G, same exponent) plus `sigma` of seeded lognormal
/// shadowing: the paper environment with fading, for robustness studies.
GeneratorConfig log_distance_shadowed(std::size_t users, units::Decibel sigma,
                                      std::uint64_t shadowing_seed);

/// LoRa link-budget family: 500x500 in real meters, SF9/125 kHz at
/// 868 MHz, 20 dBm (0.1 W) caps, thermal-noise-scale power constants, and
/// router-class relays serving client-class (6 dB noise-figure)
/// subscribers with 150-250 m distance requests. The non-two-ray
/// end-to-end scenario family.
GeneratorConfig lora_field(std::size_t users);

}  // namespace presets

}  // namespace sag::sim
