#pragma once

#include <chrono>

namespace sag::sim {

/// Wall-clock stopwatch for the running-time experiments (Figs. 4b/5b).
class Stopwatch {
public:
    Stopwatch() : start_(clock::now()) {}
    void reset() { start_ = clock::now(); }
    /// Seconds since construction or the last reset().
    double seconds() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }
    double milliseconds() const { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace sag::sim
