#pragma once

#include <cstdint>

#include "sag/core/scenario.h"

namespace sag::sim {

/// How base stations are laid out in generated scenarios.
enum class BsLayout {
    Uniform,  ///< uniform random in the field (paper §IV-A default)
    Corners,  ///< at the field corners, inset 10% (matches Fig. 6's plots)
    Center,   ///< single/central placement
};

/// Deterministic scenario generator reproducing the paper's simulation
/// environment (§IV-A): square field, uniformly distributed SSs and BSs,
/// distance requests uniform in [30, 40], common SNR threshold.
struct GeneratorConfig {
    double field_side = 500.0;
    std::size_t subscriber_count = 30;
    std::size_t base_station_count = 4;
    double min_distance_request = 30.0;
    double max_distance_request = 40.0;
    units::Decibel snr_threshold_db{-15.0};
    BsLayout bs_layout = BsLayout::Uniform;
    wireless::RadioParams radio{};
    /// Propagation model of the generated scenarios; null keeps the
    /// paper's two-ray default.
    std::shared_ptr<const wireless::PropagationModel> propagation;
    /// Radio classes copied into every generated scenario.
    std::vector<wireless::RadioProfile> profiles;
    /// Class of the placed relay stations (invalid = default).
    ids::ProfileId relay_profile;
    /// Class assigned to every generated subscriber (invalid = default).
    ids::ProfileId subscriber_profile;
};

/// Generates a scenario; the same (config, seed) pair always yields the
/// same instance, so every experiment in the repo is replayable.
core::Scenario generate_scenario(const GeneratorConfig& config, std::uint64_t seed);

}  // namespace sag::sim
