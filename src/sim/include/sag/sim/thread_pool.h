#pragma once

// The pool moved down to sag::exec so the solver layers (opt, core) can
// parallelize without depending on sim. This shim keeps the historical
// sag::sim spelling working for the experiment harness and tests.
#include "sag/exec/thread_pool.h"

namespace sag::sim {

using exec::ThreadPool;
using exec::default_thread_count;
using exec::parallel_for_index;
using exec::resolve_thread_count;

}  // namespace sag::sim
