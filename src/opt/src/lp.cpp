#include "sag/opt/lp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace sag::opt {

namespace {

constexpr double kTol = 1e-9;

/// Full-tableau simplex state. Column layout: structural vars, then one
/// slack/surplus per inequality row, then artificials. The last column of
/// each row is the RHS; `obj` is the reduced-cost row (same width + value).
struct Tableau {
    std::size_t rows = 0;
    std::size_t cols = 0;                 // number of variable columns
    std::vector<std::vector<double>> a;   // rows x (cols + 1)
    std::vector<double> obj;              // cols + 1 (last = -objective value)
    std::vector<std::size_t> basis;       // basic variable of each row

    void pivot(std::size_t pr, std::size_t pc) {
        const double pivot_val = a[pr][pc];
        for (double& v : a[pr]) v /= pivot_val;
        for (std::size_t r = 0; r < rows; ++r) {
            if (r == pr) continue;
            const double f = a[r][pc];
            if (std::abs(f) < kTol) continue;
            for (std::size_t c = 0; c <= cols; ++c) a[r][c] -= f * a[pr][c];
        }
        const double f = obj[pc];
        if (std::abs(f) > kTol) {
            for (std::size_t c = 0; c <= cols; ++c) obj[c] -= f * a[pr][c];
        }
        basis[pr] = pc;
    }
};

enum class PhaseOutcome { Optimal, Unbounded, IterationLimit };

/// Runs simplex until no negative reduced cost remains. `allowed(c)` masks
/// columns that may enter (used to freeze artificials in phase 2).
template <typename ColumnFilter>
PhaseOutcome run_simplex(Tableau& t, int& iterations_left, ColumnFilter allowed) {
    int degenerate_streak = 0;
    while (iterations_left-- > 0) {
        // Entering column: Dantzig (most negative reduced cost); Bland
        // (lowest index with negative cost) after a degenerate streak.
        std::size_t pc = t.cols;
        if (degenerate_streak < 40) {
            double best = -kTol;
            for (std::size_t c = 0; c < t.cols; ++c) {
                if (allowed(c) && t.obj[c] < best) {
                    best = t.obj[c];
                    pc = c;
                }
            }
        } else {
            for (std::size_t c = 0; c < t.cols; ++c) {
                if (allowed(c) && t.obj[c] < -kTol) {
                    pc = c;
                    break;
                }
            }
        }
        if (pc == t.cols) return PhaseOutcome::Optimal;

        // Leaving row: min ratio test, ties broken by smallest basis index
        // (part of the Bland safeguard).
        std::size_t pr = t.rows;
        double best_ratio = std::numeric_limits<double>::infinity();
        for (std::size_t r = 0; r < t.rows; ++r) {
            if (t.a[r][pc] > kTol) {
                const double ratio = t.a[r][t.cols] / t.a[r][pc];
                if (ratio < best_ratio - kTol ||
                    (ratio < best_ratio + kTol && (pr == t.rows || t.basis[r] < t.basis[pr]))) {
                    best_ratio = ratio;
                    pr = r;
                }
            }
        }
        if (pr == t.rows) return PhaseOutcome::Unbounded;
        degenerate_streak = best_ratio < kTol ? degenerate_streak + 1 : 0;
        t.pivot(pr, pc);
    }
    return PhaseOutcome::IterationLimit;
}

}  // namespace

void LinearProgram::add_constraint(std::vector<double> coeffs, Relation rel, double rhs) {
    constraints.push_back({std::move(coeffs), rel, rhs});
}

LpResult solve_lp(const LinearProgram& lp, int max_iterations) {
    const std::size_t n = lp.variable_count();
    if (!lp.upper_bounds.empty() && lp.upper_bounds.size() != n)
        throw std::invalid_argument("upper_bounds size mismatch");

    // Materialize upper bounds as x_i <= ub rows so the core stays simple.
    std::vector<LinearProgram::Constraint> rows = lp.constraints;
    for (std::size_t i = 0; i < lp.upper_bounds.size(); ++i) {
        if (std::isfinite(lp.upper_bounds[i])) {
            std::vector<double> coeffs(n, 0.0);
            coeffs[i] = 1.0;
            rows.push_back({std::move(coeffs), LinearProgram::Relation::LessEq,
                            lp.upper_bounds[i]});
        }
    }
    const std::size_t m = rows.size();

    // Column counts: structural + one slack/surplus per inequality + one
    // artificial per >=/= row (and per <= row with negative rhs after
    // normalization, handled below by sign flip first).
    std::size_t slack_count = 0, art_count = 0;
    for (auto& c : rows) {
        c.coeffs.resize(n, 0.0);
        if (c.rhs < 0.0) {  // normalize rhs >= 0
            for (double& v : c.coeffs) v = -v;
            c.rhs = -c.rhs;
            if (c.rel == LinearProgram::Relation::LessEq)
                c.rel = LinearProgram::Relation::GreaterEq;
            else if (c.rel == LinearProgram::Relation::GreaterEq)
                c.rel = LinearProgram::Relation::LessEq;
        }
        if (c.rel != LinearProgram::Relation::Equal) ++slack_count;
        if (c.rel != LinearProgram::Relation::LessEq) ++art_count;
    }

    Tableau t;
    t.rows = m;
    t.cols = n + slack_count + art_count;
    t.a.assign(m, std::vector<double>(t.cols + 1, 0.0));
    t.basis.assign(m, 0);

    const std::size_t slack_base = n;
    const std::size_t art_base = n + slack_count;
    std::size_t next_slack = 0, next_art = 0;
    std::vector<std::size_t> artificial_cols;

    for (std::size_t r = 0; r < m; ++r) {
        const auto& c = rows[r];
        for (std::size_t j = 0; j < n; ++j) t.a[r][j] = c.coeffs[j];
        t.a[r][t.cols] = c.rhs;
        switch (c.rel) {
            case LinearProgram::Relation::LessEq:
                t.a[r][slack_base + next_slack] = 1.0;
                t.basis[r] = slack_base + next_slack++;
                break;
            case LinearProgram::Relation::GreaterEq:
                t.a[r][slack_base + next_slack] = -1.0;
                ++next_slack;
                t.a[r][art_base + next_art] = 1.0;
                t.basis[r] = art_base + next_art;
                artificial_cols.push_back(art_base + next_art++);
                break;
            case LinearProgram::Relation::Equal:
                t.a[r][art_base + next_art] = 1.0;
                t.basis[r] = art_base + next_art;
                artificial_cols.push_back(art_base + next_art++);
                break;
        }
    }

    LpResult result;
    int iterations_left = max_iterations;

    // Phase 1: minimize the sum of artificials.
    if (art_count > 0) {
        t.obj.assign(t.cols + 1, 0.0);
        for (const std::size_t c : artificial_cols) t.obj[c] = 1.0;
        // Price out the artificial basis.
        for (std::size_t r = 0; r < m; ++r) {
            if (t.basis[r] >= art_base) {
                for (std::size_t c = 0; c <= t.cols; ++c) t.obj[c] -= t.a[r][c];
            }
        }
        const PhaseOutcome out =
            run_simplex(t, iterations_left, [](std::size_t) { return true; });
        if (out == PhaseOutcome::IterationLimit) {
            result.status = LpResult::Status::IterationLimit;
            return result;
        }
        if (-t.obj[t.cols] > 1e-7) {
            result.status = LpResult::Status::Infeasible;
            return result;
        }
        // Drive any artificial still in the basis (at value 0) out of it.
        for (std::size_t r = 0; r < m; ++r) {
            if (t.basis[r] >= art_base) {
                for (std::size_t c = 0; c < art_base; ++c) {
                    if (std::abs(t.a[r][c]) > kTol) {
                        t.pivot(r, c);
                        break;
                    }
                }
            }
        }
    }

    // Phase 2: the real objective, artificials barred from re-entering.
    t.obj.assign(t.cols + 1, 0.0);
    for (std::size_t j = 0; j < n; ++j) t.obj[j] = lp.objective[j];
    for (std::size_t r = 0; r < m; ++r) {
        const double f = t.basis[r] < t.cols ? t.obj[t.basis[r]] : 0.0;
        if (std::abs(f) > kTol) {
            for (std::size_t c = 0; c <= t.cols; ++c) t.obj[c] -= f * t.a[r][c];
        }
    }
    const PhaseOutcome out = run_simplex(
        t, iterations_left, [&](std::size_t c) { return c < art_base; });
    if (out == PhaseOutcome::IterationLimit) {
        result.status = LpResult::Status::IterationLimit;
        return result;
    }
    if (out == PhaseOutcome::Unbounded) {
        result.status = LpResult::Status::Unbounded;
        return result;
    }

    result.status = LpResult::Status::Optimal;
    result.x.assign(n, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
        if (t.basis[r] < n) result.x[t.basis[r]] = t.a[r][t.cols];
    }
    result.objective = 0.0;
    for (std::size_t j = 0; j < n; ++j) result.objective += lp.objective[j] * result.x[j];
    return result;
}

}  // namespace sag::opt
