#include "sag/opt/milp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <stdexcept>

#include "sag/exec/deadline.h"

namespace sag::opt {

namespace {

/// Branching state: per-variable lower/upper bounds imposed so far
/// (only for binaries: 0/1 fixings).
struct Node {
    std::vector<std::pair<std::size_t, int>> fixings;  // (var, 0 or 1)
};

/// Applies fixings to a copy of the base LP: x_i = v as an Equal row.
LinearProgram with_fixings(const LinearProgram& base,
                           const std::vector<std::pair<std::size_t, int>>& fixings) {
    LinearProgram lp = base;
    for (const auto& [var, value] : fixings) {
        std::vector<double> row(base.variable_count(), 0.0);
        row[var] = 1.0;
        lp.add_constraint(std::move(row), LinearProgram::Relation::Equal,
                          static_cast<double>(value));
    }
    return lp;
}

}  // namespace

MilpResult solve_milp(const MilpProblem& problem, const MilpOptions& options) {
    const std::size_t n = problem.lp.variable_count();
    if (problem.binary.size() != n) {
        throw std::invalid_argument("binary mask size mismatch");
    }
    // Binaries need an upper bound of 1 in the relaxation.
    MilpProblem p = problem;
    if (p.lp.upper_bounds.empty()) {
        p.lp.upper_bounds.assign(n, std::numeric_limits<double>::infinity());
    }
    for (std::size_t i = 0; i < n; ++i) {
        if (p.binary[i]) p.lp.upper_bounds[i] = std::min(p.lp.upper_bounds[i], 1.0);
    }

    MilpResult result;
    double incumbent = std::numeric_limits<double>::infinity();
    std::vector<double> incumbent_x;

    // Wall-clock deadline (exec::Deadline), mirroring set_cover's
    // handling. Each node pays a full LP solve, so the clock is polled
    // every node rather than every 1024th.
    const exec::Deadline deadline =
        exec::Deadline::after_seconds(options.time_budget_seconds);

    std::vector<Node> stack{Node{}};
    while (!stack.empty()) {
        if (++result.nodes > options.node_limit || deadline.expired()) {
            result.status = MilpResult::Status::NodeLimit;
            result.budget_exhausted = true;
            result.objective = incumbent;
            result.x = incumbent_x;
            return result;
        }
        const Node node = std::move(stack.back());
        stack.pop_back();

        const LpResult relaxed = solve_lp(with_fixings(p.lp, node.fixings));
        if (relaxed.status != LpResult::Status::Optimal) continue;  // prune
        if (relaxed.objective >= incumbent - options.bound_gap - 1e-9) continue;

        // Most-fractional binary.
        std::size_t branch_var = n;
        double worst_frac = options.integrality_tol;
        for (std::size_t i = 0; i < n; ++i) {
            if (!p.binary[i]) continue;
            const double frac = std::abs(relaxed.x[i] - std::round(relaxed.x[i]));
            if (frac > worst_frac) {
                worst_frac = frac;
                branch_var = i;
            }
        }
        if (branch_var == n) {
            // Integral: new incumbent.
            incumbent = relaxed.objective;
            incumbent_x = relaxed.x;
            for (std::size_t i = 0; i < n; ++i) {
                if (p.binary[i]) incumbent_x[i] = std::round(incumbent_x[i]);
            }
            continue;
        }
        // Depth-first: explore the branch suggested by the relaxation
        // first (round to nearest), the other side after.
        const int near = relaxed.x[branch_var] >= 0.5 ? 1 : 0;
        Node far_node = node;
        far_node.fixings.emplace_back(branch_var, 1 - near);
        Node near_node = std::move(node);
        near_node.fixings.emplace_back(branch_var, near);
        stack.push_back(std::move(far_node));
        stack.push_back(std::move(near_node));  // popped first
    }

    if (incumbent_x.empty()) {
        result.status = MilpResult::Status::Infeasible;
    } else {
        result.status = MilpResult::Status::Optimal;
        result.objective = incumbent;
        result.x = std::move(incumbent_x);
    }
    return result;
}

}  // namespace sag::opt
