#include "sag/opt/set_cover.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sag/exec/deadline.h"
#include "sag/exec/thread_pool.h"
#include "sag/obs/obs.h"

namespace sag::opt {

std::vector<std::vector<std::size_t>> SetCoverInstance::covering_sets() const {
    std::vector<std::vector<std::size_t>> cov(element_count);
    for (std::size_t s = 0; s < sets.size(); ++s) {
        for (const std::size_t e : sets[s]) cov[e].push_back(s);
    }
    return cov;
}

bool SetCoverInstance::coverable() const {
    std::vector<bool> hit(element_count, false);
    for (const auto& s : sets) {
        for (const std::size_t e : s) hit[e] = true;
    }
    return std::all_of(hit.begin(), hit.end(), [](bool b) { return b; });
}

std::optional<std::vector<std::size_t>> greedy_set_cover(const SetCoverInstance& inst) {
    std::vector<bool> covered(inst.element_count, false);
    std::size_t uncovered = inst.element_count;
    std::vector<std::size_t> chosen;
    while (uncovered > 0) {
        std::size_t best_set = inst.sets.size();
        std::size_t best_gain = 0;
        for (std::size_t s = 0; s < inst.sets.size(); ++s) {
            std::size_t gain = 0;
            for (const std::size_t e : inst.sets[s]) {
                if (!covered[e]) ++gain;
            }
            if (gain > best_gain) {
                best_gain = gain;
                best_set = s;
            }
        }
        if (best_set == inst.sets.size()) return std::nullopt;  // uncoverable
        chosen.push_back(best_set);
        for (const std::size_t e : inst.sets[best_set]) {
            if (!covered[e]) {
                covered[e] = true;
                --uncovered;
            }
        }
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

std::optional<std::vector<std::size_t>> greedy_set_multicover(
    const SetCoverInstance& inst, std::span<const std::size_t> demand) {
    if (demand.size() != inst.element_count) {
        throw std::invalid_argument("demand size mismatch");
    }
    std::vector<std::size_t> remaining(demand.begin(), demand.end());
    std::size_t total_remaining = 0;
    for (const std::size_t d : remaining) total_remaining += d;

    std::vector<bool> used(inst.sets.size(), false);
    std::vector<std::size_t> chosen;
    while (total_remaining > 0) {
        std::size_t best_set = inst.sets.size();
        std::size_t best_gain = 0;
        for (std::size_t s = 0; s < inst.sets.size(); ++s) {
            if (used[s]) continue;  // a set can serve each element once
            std::size_t gain = 0;
            for (const std::size_t e : inst.sets[s]) {
                if (remaining[e] > 0) ++gain;
            }
            if (gain > best_gain) {
                best_gain = gain;
                best_set = s;
            }
        }
        if (best_set == inst.sets.size()) return std::nullopt;  // demand unmet
        used[best_set] = true;
        chosen.push_back(best_set);
        for (const std::size_t e : inst.sets[best_set]) {
            if (remaining[e] > 0) {
                --remaining[e];
                --total_remaining;
            }
        }
    }
    std::sort(chosen.begin(), chosen.end());
    return chosen;
}

std::size_t disjoint_elements_lower_bound(const SetCoverInstance& inst) {
    const auto covering = inst.covering_sets();
    std::vector<bool> set_used(inst.sets.size(), false);
    std::size_t bound = 0;
    // Greedily take elements with the fewest covering sets first; an element
    // whose covering sets are all untouched forces one more set.
    std::vector<std::size_t> order(inst.element_count);
    for (std::size_t e = 0; e < inst.element_count; ++e) order[e] = e;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return covering[a].size() < covering[b].size();
    });
    for (const std::size_t e : order) {
        if (covering[e].empty()) continue;
        bool fresh = std::none_of(covering[e].begin(), covering[e].end(),
                                  [&](std::size_t s) { return set_used[s]; });
        if (fresh) {
            ++bound;
            for (const std::size_t s : covering[e]) set_used[s] = true;
        }
    }
    return bound;
}

namespace {

/// DFS state shared across the iterative-deepening search.
struct Search {
    const SetCoverInstance& inst;
    const std::vector<std::vector<std::size_t>>& covering;
    const CoverOracle& oracle;
    const SetCoverBnBOptions& options;

    std::size_t target_size = 0;
    std::size_t nodes = 0;
    bool budget_exhausted = false;
    /// Shared wall-clock budget (exec::Deadline): unlimited when the
    /// options carry no time budget; polled every 1024 nodes.
    exec::Deadline deadline;

    std::vector<std::size_t> chosen;
    std::vector<bool> in_chosen;
    std::vector<int> cover_count;  // per element
    std::size_t uncovered = 0;

    std::vector<std::size_t> found;  // first feasible cover of target size

    bool spend_node() {
        if (++nodes > options.node_budget) {
            budget_exhausted = true;
            return false;
        }
        if (nodes % 1024 == 0 && deadline.expired()) {
            budget_exhausted = true;
            return false;
        }
        return true;
    }

    void take(std::size_t s) {
        chosen.push_back(s);
        in_chosen[s] = true;
        for (const std::size_t e : inst.sets[s]) {
            if (cover_count[e]++ == 0) --uncovered;
        }
    }
    void untake(std::size_t s) {
        chosen.pop_back();
        in_chosen[s] = false;
        for (const std::size_t e : inst.sets[s]) {
            if (--cover_count[e] == 0) ++uncovered;
        }
    }

    bool check_leaf() {
        std::vector<std::size_t> sorted = chosen;
        std::sort(sorted.begin(), sorted.end());
        if (!oracle || oracle(sorted)) {
            found = std::move(sorted);
            return true;
        }
        return false;
    }

    /// Pads a complete cover with extra sets (indices > `min_pad`) up to
    /// the target size, oracle-checking each completed padding.
    bool pad(std::size_t min_pad) {
        if (!spend_node()) return false;
        if (chosen.size() == target_size) return check_leaf();
        for (std::size_t s = min_pad; s < inst.sets.size(); ++s) {
            if (in_chosen[s]) continue;
            take(s);
            if (pad(s + 1)) return true;
            untake(s);
            if (budget_exhausted) return false;
        }
        return false;
    }

    bool dfs() {
        if (!spend_node()) return false;
        if (uncovered == 0) {
            if (chosen.size() == target_size) return check_leaf();
            return options.allow_padding ? pad(0) : false;
        }
        if (chosen.size() >= target_size) return false;

        // Branch on the uncovered element with the fewest usable candidates.
        std::size_t pivot = inst.element_count;
        std::size_t pivot_options = std::numeric_limits<std::size_t>::max();
        for (std::size_t e = 0; e < inst.element_count; ++e) {
            if (cover_count[e] > 0) continue;
            std::size_t n_opts = 0;
            for (const std::size_t s : covering[e]) {
                if (!in_chosen[s]) ++n_opts;
            }
            if (n_opts < pivot_options) {
                pivot_options = n_opts;
                pivot = e;
            }
        }
        if (pivot == inst.element_count || pivot_options == 0) return false;

        // Prefer candidates that cover more still-uncovered elements.
        std::vector<std::pair<std::size_t, std::size_t>> branches;  // (-gain, set)
        for (const std::size_t s : covering[pivot]) {
            if (in_chosen[s]) continue;
            std::size_t gain = 0;
            for (const std::size_t e : inst.sets[s]) {
                if (cover_count[e] == 0) ++gain;
            }
            branches.emplace_back(gain, s);
        }
        std::sort(branches.begin(), branches.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        for (const auto& [gain, s] : branches) {
            (void)gain;
            take(s);
            if (dfs()) return true;
            untake(s);
            if (budget_exhausted) return false;
        }
        return false;
    }
};

}  // namespace

SetCoverBnBResult solve_set_cover_bnb(const SetCoverInstance& inst,
                                      const CoverOracle& oracle,
                                      const SetCoverBnBOptions& options) {
    SAG_OBS_SPAN("opt.set_cover.bnb");
    SetCoverBnBResult result;
    if (!inst.coverable()) return result;
    if (inst.element_count == 0) {
        result.feasible = true;
        result.proven_optimal = true;
        return result;
    }

    const auto covering = inst.covering_sets();
    const std::size_t lb = std::max<std::size_t>(1, disjoint_elements_lower_bound(inst));
    const std::size_t ub = std::min(options.max_size, inst.sets.size());

    // Anytime fallback: remember an oracle-feasible greedy cover if one
    // exists, in case the budget runs out before the exact search finishes.
    std::optional<std::vector<std::size_t>> fallback;
    if (auto greedy = greedy_set_cover(inst)) {
        if (!oracle || oracle(*greedy)) fallback = std::move(*greedy);
    }

    Search search{inst,
                  covering,
                  oracle,
                  options,
                  /*target_size=*/0,
                  /*nodes=*/0,
                  /*budget_exhausted=*/false,
                  exec::Deadline::after_seconds(options.time_budget_seconds),
                  /*chosen=*/{},
                  std::vector<bool>(inst.sets.size(), false),
                  std::vector<int>(inst.element_count, 0),
                  /*uncovered=*/inst.element_count,
                  /*found=*/{}};

    for (std::size_t k = lb; k <= ub; ++k) {
        if (fallback && fallback->size() <= k) {
            // The greedy cover is already as small as anything this level
            // could produce; it is optimal.
            result.chosen = *fallback;
            result.feasible = true;
            result.proven_optimal = true;
            result.nodes_explored = search.nodes;
            return result;
        }
        search.target_size = k;
        if (search.dfs()) {
            result.chosen = search.found;
            result.feasible = true;
            result.proven_optimal = true;
            result.nodes_explored = search.nodes;
            return result;
        }
        if (search.budget_exhausted) break;
    }

    result.nodes_explored = search.nodes;
    if (fallback) {
        result.chosen = *fallback;
        result.feasible = true;
        result.proven_optimal = false;
    }
    // When the budget was not exhausted and no cover of any size passed the
    // oracle, the instance is genuinely infeasible (proven).
    if (!search.budget_exhausted && !result.feasible) result.proven_optimal = true;
    return result;
}

namespace {

/// The root branch list exactly as Search::dfs computes it on an empty
/// chosen set: pivot = element with the fewest covering candidates,
/// branches = its candidates ordered by covered-element gain descending
/// (same comparator, same input sequence, so ties resolve identically).
std::vector<std::size_t> root_branches(
    const SetCoverInstance& inst,
    const std::vector<std::vector<std::size_t>>& covering) {
    std::size_t pivot = inst.element_count;
    std::size_t pivot_options = std::numeric_limits<std::size_t>::max();
    for (std::size_t e = 0; e < inst.element_count; ++e) {
        if (covering[e].size() < pivot_options) {
            pivot_options = covering[e].size();
            pivot = e;
        }
    }
    if (pivot == inst.element_count || pivot_options == 0) return {};
    std::vector<std::pair<std::size_t, std::size_t>> branches;  // (gain, set)
    for (const std::size_t s : covering[pivot]) {
        branches.emplace_back(inst.sets[s].size(), s);
    }
    std::sort(branches.begin(), branches.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    std::vector<std::size_t> order;
    order.reserve(branches.size());
    for (const auto& [gain, s] : branches) {
        (void)gain;
        order.push_back(s);
    }
    return order;
}

struct BranchOutcome {
    bool found = false;
    bool exhausted = false;
    std::vector<std::size_t> cover;
    std::size_t nodes = 0;
};

}  // namespace

SetCoverBnBResult solve_set_cover_bnb_parallel(
    const SetCoverInstance& inst, const CoverOracleFactory& oracle_factory,
    const SetCoverBnBOptions& options) {
    SAG_OBS_SPAN("opt.set_cover.bnb_parallel");
    SetCoverBnBResult result;
    if (!inst.coverable()) return result;
    if (inst.element_count == 0) {
        result.feasible = true;
        result.proven_optimal = true;
        return result;
    }

    const auto covering = inst.covering_sets();
    const std::size_t lb = std::max<std::size_t>(1, disjoint_elements_lower_bound(inst));
    const std::size_t ub = std::min(options.max_size, inst.sets.size());

    // Anytime fallback, as in the serial solver (its own oracle instance).
    std::optional<std::vector<std::size_t>> fallback;
    {
        const CoverOracle oracle = oracle_factory ? oracle_factory() : CoverOracle{};
        if (auto greedy = greedy_set_cover(inst)) {
            if (!oracle || oracle(*greedy)) fallback = std::move(*greedy);
        }
    }

    const std::vector<std::size_t> branches = root_branches(inst, covering);
    if (branches.empty()) return result;  // defensive; coverable() rules it out

    // One absolute expiry instant shared by every branch of every level
    // (copying a Deadline copies the instant), so the parallel search's
    // cutoff semantics match the serial solver's.
    const exec::Deadline deadline =
        exec::Deadline::after_seconds(options.time_budget_seconds);

    exec::ThreadPool pool(exec::resolve_thread_count(options.threads));
    bool exhausted_any = false;  // across finished levels: taints optimality
    std::size_t total_nodes = 0;

    for (std::size_t k = lb; k <= ub; ++k) {
        if (fallback && fallback->size() <= k) {
            result.chosen = *fallback;
            result.feasible = true;
            result.proven_optimal = !exhausted_any;
            result.nodes_explored = total_nodes;
            return result;
        }

        SAG_OBS_COUNT_ADD("opt.set_cover.bnb.branches", branches.size());
        // Lock-free by construction: every worker owns outcomes[b] and a
        // private Search/oracle; the only synchronization is the pool's
        // annotated wait_idle barrier inside parallel_for_index, so the
        // clang thread-safety build has nothing unguarded to flag here.
        std::vector<BranchOutcome> outcomes(branches.size());
        exec::parallel_for_index(pool, branches.size(), [&](std::size_t b) {
            const CoverOracle oracle =
                oracle_factory ? oracle_factory() : CoverOracle{};
            Search search{inst,
                          covering,
                          oracle,
                          options,
                          /*target_size=*/k,
                          /*nodes=*/0,
                          /*budget_exhausted=*/false,
                          deadline,
                          /*chosen=*/{},
                          std::vector<bool>(inst.sets.size(), false),
                          std::vector<int>(inst.element_count, 0),
                          /*uncovered=*/inst.element_count,
                          /*found=*/{}};
            search.spend_node();  // the root node the serial DFS charges
            search.take(branches[b]);
            BranchOutcome& out = outcomes[b];
            out.found = search.dfs();
            out.exhausted = search.budget_exhausted;
            out.nodes = search.nodes;
            if (out.found) out.cover = std::move(search.found);
        });

        bool level_exhausted = false;
        const BranchOutcome* winner = nullptr;
        for (const BranchOutcome& out : outcomes) {
            total_nodes += out.nodes;
            if (out.exhausted) level_exhausted = true;
            if (out.found && winner == nullptr) winner = &out;
        }
        if (winner != nullptr) {
            // Lowest-ordered success: the same branch the serial DFS would
            // have succeeded in first, so the merge is scheduling-free.
            result.chosen = winner->cover;
            result.feasible = true;
            result.proven_optimal = !exhausted_any;
            result.nodes_explored = total_nodes;
            return result;
        }
        if (level_exhausted) {
            exhausted_any = true;
            break;  // anytime: fall back rather than deepen past a cutoff
        }
    }

    result.nodes_explored = total_nodes;
    if (fallback) {
        result.chosen = *fallback;
        result.feasible = true;
        result.proven_optimal = false;
    }
    if (!exhausted_any && !result.feasible) result.proven_optimal = true;
    return result;
}

}  // namespace sag::opt
