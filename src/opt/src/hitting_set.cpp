#include "sag/opt/hitting_set.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sag/exec/thread_pool.h"
#include "sag/obs/obs.h"
#include "sag/opt/set_cover.h"

namespace sag::opt {

namespace {

/// Disks hit by each candidate point.
std::vector<std::vector<std::size_t>> hit_sets(std::span<const geom::Circle> disks,
                                               std::span<const geom::Vec2> candidates) {
    std::vector<std::vector<std::size_t>> sets(candidates.size());
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        for (std::size_t d = 0; d < disks.size(); ++d) {
            // Slight inward tolerance: boundary intersection points must
            // count as hitting both generating disks.
            if (disks[d].contains(candidates[c], 1e-6)) sets[c].push_back(d);
        }
    }
    return sets;
}

bool hits_all(std::span<const geom::Circle> disks, const std::vector<std::size_t>& chosen,
              const std::vector<std::vector<std::size_t>>& sets, std::size_t skip_a,
              std::size_t skip_b, std::size_t extra) {
    std::vector<bool> hit(disks.size(), false);
    for (const std::size_t c : chosen) {
        if (c == skip_a || c == skip_b) continue;
        for (const std::size_t d : sets[c]) hit[d] = true;
    }
    if (extra != SIZE_MAX) {
        for (const std::size_t d : sets[extra]) hit[d] = true;
    }
    return std::all_of(hit.begin(), hit.end(), [](bool b) { return b; });
}

}  // namespace

std::vector<geom::Vec2> disk_hitting_candidates(std::span<const geom::Circle> disks) {
    std::vector<geom::Vec2> candidates;
    candidates.reserve(disks.size() * 3);
    for (const geom::Circle& d : disks) candidates.push_back(d.center);
    for (std::size_t i = 0; i < disks.size(); ++i) {
        for (std::size_t j = i + 1; j < disks.size(); ++j) {
            for (const geom::Vec2& p : geom::circle_intersections(disks[i], disks[j])) {
                candidates.push_back(p);
            }
        }
    }
    // Deduplicate (intersections of near-identical circles repeat).
    std::sort(candidates.begin(), candidates.end(),
              [](const geom::Vec2& a, const geom::Vec2& b) {
                  return a.x != b.x ? a.x < b.x : a.y < b.y;
              });
    candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                 [](const geom::Vec2& a, const geom::Vec2& b) {
                                     return geom::distance_sq(a, b) < 1e-12;
                                 }),
                     candidates.end());
    return candidates;
}

std::vector<geom::Vec2> geometric_hitting_set(std::span<const geom::Circle> disks,
                                              const HittingSetOptions& options) {
    SAG_OBS_SPAN("opt.hitting_set");
    if (disks.empty()) return {};
    const std::vector<geom::Vec2> candidates = disk_hitting_candidates(disks);
    SAG_OBS_COUNT_ADD("opt.hitting_set.candidates", candidates.size());
    const auto sets = hit_sets(disks, candidates);

    SetCoverInstance inst{disks.size(), sets};
    auto greedy = greedy_set_cover(inst);
    // Always succeeds: each disk's center is a candidate hitting it.
    std::vector<std::size_t> chosen = std::move(*greedy);

    // Local search: (1,0) prune, (2,1) and optionally (3,2) swaps.
    for (int pass = 0; pass < options.max_passes; ++pass) {
        bool improved = false;

        // (1,0): drop redundant points.
        for (std::size_t i = 0; i < chosen.size();) {
            if (hits_all(disks, chosen, sets, chosen[i], SIZE_MAX, SIZE_MAX)) {
                chosen.erase(chosen.begin() + static_cast<std::ptrdiff_t>(i));
                improved = true;
                SAG_OBS_COUNT("opt.hitting_set.swaps");
            } else {
                ++i;
            }
        }

        // (2,1): replace two chosen points with one candidate.
        if (options.max_swap >= 2) {
            for (std::size_t i = 0; i < chosen.size() && !improved; ++i) {
                for (std::size_t j = i + 1; j < chosen.size() && !improved; ++j) {
                    for (std::size_t c = 0; c < candidates.size(); ++c) {
                        if (hits_all(disks, chosen, sets, chosen[i], chosen[j], c)) {
                            const std::size_t keep = c;
                            chosen.erase(chosen.begin() + static_cast<std::ptrdiff_t>(j));
                            chosen.erase(chosen.begin() + static_cast<std::ptrdiff_t>(i));
                            chosen.push_back(keep);
                            improved = true;
                            SAG_OBS_COUNT("opt.hitting_set.swaps");
                            break;
                        }
                    }
                }
            }
        }

        // (3,2): replace three chosen points with two candidates.
        if (options.max_swap >= 3 && !improved &&
            chosen.size() * candidates.size() <= options.swap3_cost_limit) {
            for (std::size_t i = 0; i < chosen.size() && !improved; ++i) {
                for (std::size_t j = i + 1; j < chosen.size() && !improved; ++j) {
                    for (std::size_t k = j + 1; k < chosen.size() && !improved; ++k) {
                        // Disks left unhit when i, j, k are removed.
                        std::vector<bool> hit(disks.size(), false);
                        for (const std::size_t c : chosen) {
                            if (c == chosen[i] || c == chosen[j] || c == chosen[k]) continue;
                            for (const std::size_t d : sets[c]) hit[d] = true;
                        }
                        std::vector<std::size_t> missing;
                        for (std::size_t d = 0; d < disks.size(); ++d) {
                            if (!hit[d]) missing.push_back(d);
                        }
                        // Find two candidates jointly hitting `missing`.
                        for (std::size_t a = 0; a < candidates.size() && !improved; ++a) {
                            std::vector<bool> hit_a(disks.size(), false);
                            for (const std::size_t d : sets[a]) hit_a[d] = true;
                            std::vector<std::size_t> rest;
                            for (const std::size_t d : missing) {
                                if (!hit_a[d]) rest.push_back(d);
                            }
                            if (rest.empty()) continue;  // (2,1) would have found it
                            for (std::size_t b = a + 1; b < candidates.size(); ++b) {
                                std::vector<bool> hit_b(disks.size(), false);
                                for (const std::size_t d : sets[b]) hit_b[d] = true;
                                if (std::all_of(rest.begin(), rest.end(),
                                                [&](std::size_t d) { return hit_b[d]; })) {
                                    std::vector<std::size_t> next;
                                    for (const std::size_t c : chosen) {
                                        if (c != chosen[i] && c != chosen[j] && c != chosen[k])
                                            next.push_back(c);
                                    }
                                    next.push_back(a);
                                    next.push_back(b);
                                    chosen = std::move(next);
                                    improved = true;
                                    SAG_OBS_COUNT("opt.hitting_set.swaps");
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }

        if (!improved) break;
    }

    std::vector<geom::Vec2> points;
    points.reserve(chosen.size());
    for (const std::size_t c : chosen) points.push_back(candidates[c]);
    return points;
}

std::vector<std::vector<geom::Vec2>> geometric_hitting_sets(
    std::span<const std::vector<geom::Circle>> instances,
    const HittingSetOptions& options, std::size_t threads) {
    SAG_OBS_SPAN("opt.hitting_set.batch");
    std::vector<std::vector<geom::Vec2>> out(instances.size());
    if (threads == 1 || instances.size() <= 1) {
        for (std::size_t z = 0; z < instances.size(); ++z) {
            out[z] = geometric_hitting_set(instances[z], options);
        }
        return out;
    }
    SAG_OBS_COUNT_ADD("opt.hitting_set.parallel_zones", instances.size());
    exec::ThreadPool pool(exec::resolve_thread_count(threads));
    // Each zone writes only its own slot; worker-thread obs events merge
    // at snapshot via the recorder's per-thread buffers. All locking
    // lives behind exec::ThreadPool / obs::Recorder (annotated
    // exec::Mutex — the check_static §6 confinement lint keeps it so).
    exec::parallel_for_index(pool, instances.size(), [&](std::size_t z) {
        out[z] = geometric_hitting_set(instances[z], options);
    });
    return out;
}

}  // namespace sag::opt
