#include "sag/opt/power_control.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sag::opt {

PowerControlResult fixed_point_power_control(std::span<const double> floors,
                                             std::span<const double> caps,
                                             const RequiredPowerFn& required,
                                             const PowerControlOptions& options) {
    const std::size_t n = floors.size();
    if (caps.size() != n) throw std::invalid_argument("floors/caps size mismatch");

    PowerControlResult result;
    result.powers.assign(floors.begin(), floors.end());
    for (std::size_t i = 0; i < n; ++i) {
        result.powers[i] = std::min(result.powers[i], caps[i]);
    }

    bool capped = false;
    for (; result.iterations < options.max_iterations; ++result.iterations) {
        double max_change = 0.0;
        capped = false;
        for (std::size_t i = 0; i < n; ++i) {
            double want = std::max(floors[i], required(i, result.powers));
            if (want > caps[i]) {
                // Requirements a hair above the cap (floating-point noise
                // from geometry sitting exactly on a coverage boundary) are
                // clamped silently; a material excess marks infeasibility.
                if (want > caps[i] + 1e-9 * std::max(1.0, std::abs(caps[i]))) {
                    capped = true;
                }
                want = caps[i];
            }
            max_change = std::max(max_change, std::abs(want - result.powers[i]));
            result.powers[i] = want;  // Gauss–Seidel update: converges faster
        }
        if (max_change < options.tolerance) {
            result.converged = true;
            ++result.iterations;
            break;
        }
    }
    // At a fixed point, a clamped entry means its true requirement exceeds
    // the cap: infeasible.
    result.feasible = result.converged && !capped;
    return result;
}

}  // namespace sag::opt
