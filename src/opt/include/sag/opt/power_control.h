#pragma once

#include <functional>
#include <span>
#include <vector>

namespace sag::opt {

/// Per-transmitter minimum power needed to satisfy transmitter `i`'s own
/// constraints given everybody's current powers. For SAG this evaluates
/// "coverage power Pc and SNR power Psnr" of §III-A2: the interference
/// terms make it depend on the other entries of `powers`.
/// Must be a *standard interference function* in Yates' sense (positive,
/// monotone, scalable) for the convergence guarantee to apply — all SNR
/// constraints of the form (3.9) are.
using RequiredPowerFn =
    std::function<double(std::size_t i, std::span<const double> powers)>;

struct PowerControlOptions {
    int max_iterations = 10'000;
    double tolerance = 1e-10;  ///< max per-entry change declaring a fixed point
};

struct PowerControlResult {
    std::vector<double> powers;
    bool converged = false;   ///< reached a fixed point within max_iterations
    bool feasible = false;    ///< fixed point respects every cap
    int iterations = 0;
};

/// Yates (1995) fixed-point power control:
///   P_i <- max(floor_i, required(i, P)), clamped to caps.
/// Starting from the floors and iterating a standard interference function
/// converges monotonically to the *minimal* feasible power vector — i.e.
/// the exact optimum of the paper's LPQC (3.6)-(3.9) — or detects
/// infeasibility when the fixed point exceeds a cap.
PowerControlResult fixed_point_power_control(std::span<const double> floors,
                                             std::span<const double> caps,
                                             const RequiredPowerFn& required,
                                             const PowerControlOptions& options = {});

}  // namespace sag::opt
