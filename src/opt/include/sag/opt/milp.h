#pragma once

#include <cstddef>
#include <vector>

#include "sag/opt/lp.h"

namespace sag::opt {

/// A mixed 0-1 integer linear program: the LinearProgram plus a mask of
/// variables constrained to {0, 1}. Solved by LP-relaxation branch &
/// bound (depth-first, most-fractional branching, incumbent pruning).
///
/// This is the second leg of the Gurobi substitution: the paper's ILPQC
/// (3.1)-(3.5) linearizes exactly into this form (big-M on the SNR rows),
/// giving an independent exact solver to cross-validate the specialized
/// set-cover search against (see core/ilpqc_milp.h). Intended for small
/// instances; the LP relaxation of big-M formulations is weak.
struct MilpProblem {
    LinearProgram lp;
    /// binary[i] == true -> variable i must be 0 or 1.
    std::vector<bool> binary;
};

struct MilpOptions {
    std::size_t node_limit = 200'000;
    double integrality_tol = 1e-6;
    /// Prune nodes whose LP bound is within this of the incumbent
    /// (objective granularity; 1 - eps is right for pure cardinality
    /// objectives, 0 for general ones).
    double bound_gap = 0.0;
    /// Wall-clock budget in seconds; 0 disables. Checked once per node
    /// (every node pays an LP solve, so per-node polling is cheap
    /// relative to the work it bounds). Mirrors
    /// SetCoverBnBOptions::time_budget_seconds: on expiry the search
    /// stops and reports the incumbent found so far.
    double time_budget_seconds = 0.0;
};

struct MilpResult {
    /// NodeLimit covers both budget kinds (node count and wall clock);
    /// `budget_exhausted` distinguishes a timed-out search from a
    /// completed one, matching SetCoverResult's reporting.
    enum class Status { Optimal, Infeasible, NodeLimit };
    Status status = Status::Infeasible;
    double objective = 0.0;
    std::vector<double> x;
    std::size_t nodes = 0;
    /// True when the node limit or the wall-clock budget stopped the
    /// search before it proved optimality/infeasibility.
    bool budget_exhausted = false;

    bool optimal() const { return status == Status::Optimal; }
};

MilpResult solve_milp(const MilpProblem& problem, const MilpOptions& options = {});

}  // namespace sag::opt
