#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace sag::opt {

/// A set-cover instance: `sets[i]` lists the element indices candidate i
/// covers; elements are 0..element_count-1.
struct SetCoverInstance {
    std::size_t element_count = 0;
    std::vector<std::vector<std::size_t>> sets;

    /// Inverse index: for each element, the candidates covering it.
    std::vector<std::vector<std::size_t>> covering_sets() const;
    /// True when every element is covered by at least one candidate.
    bool coverable() const;
};

/// Classic greedy (ln n)-approximation; returns chosen set indices or an
/// empty optional when some element is uncoverable.
std::optional<std::vector<std::size_t>> greedy_set_cover(const SetCoverInstance& inst);

/// Greedy set *multicover*: element e must be covered by at least
/// `demand[e]` distinct sets (each set counts once per element). Returns
/// nullopt when some demand is unsatisfiable. Supports the dual-relay
/// coverage extension (every subscriber covered by two RSs, after the
/// 802.16j dual-relay MMR architecture the paper's related work cites).
std::optional<std::vector<std::size_t>> greedy_set_multicover(
    const SetCoverInstance& inst, std::span<const std::size_t> demand);

/// Extra acceptance test applied to complete covers. The SAG ILPQC uses
/// this to impose the quadratic SNR constraint (3.5): a cover is a valid
/// relay placement only if every subscriber's SNR clears the threshold
/// under the chosen candidate set. Must be side-effect free.
using CoverOracle = std::function<bool(std::span<const std::size_t>)>;

/// Builds a fresh, independently stateful CoverOracle. The parallel
/// branch-and-bound gives every root branch its own oracle instance, so a
/// stateful oracle (e.g. the incremental SnrFeasibilityOracle) never sees
/// interleaved queries from two subtrees. Must be safe to invoke
/// concurrently; each returned oracle is used by one thread at a time.
using CoverOracleFactory = std::function<CoverOracle()>;

struct SetCoverBnBOptions {
    /// Search-node budget; when exhausted the solver returns the best
    /// oracle-feasible cover found so far (anytime behaviour mirroring a
    /// MIP time limit). Serial: one budget across all depths. Parallel:
    /// each root branch of each deepening level gets this budget for its
    /// subtree (documented semantics — results stay
    /// scheduling-independent because every subtree's cutoff is its own).
    std::size_t node_budget = 4'000'000;
    /// Wall-clock limit in seconds (checked every 1024 nodes); 0 or
    /// negative disables it. Infeasibility proofs with expensive oracles
    /// are the main consumer — this is the direct analogue of a MIP time
    /// limit.
    double time_budget_seconds = 0.0;
    /// Hard cap on solution size; defaults to the number of candidates.
    std::size_t max_size = SIZE_MAX;
    /// When true, the search may pad an already-complete cover with extra
    /// sets. With an interference oracle a larger placement is occasionally
    /// feasible when no minimal one is, because it shortens access links.
    bool allow_padding = true;
    /// Worker threads for solve_set_cover_bnb_parallel: 1 = explore root
    /// branches on the calling thread, 0 = the exec default
    /// (SAG_THREADS env / hardware concurrency). Ignored by the serial
    /// solve_set_cover_bnb.
    std::size_t threads = 1;
};

struct SetCoverBnBResult {
    std::vector<std::size_t> chosen;  ///< empty when infeasible
    bool feasible = false;
    bool proven_optimal = false;      ///< false when the node budget ran out
    std::size_t nodes_explored = 0;
};

/// Exact (budget-permitting) minimum set cover subject to a cover oracle,
/// via iterative-deepening DFS: try target sizes k = LB, LB+1, ... and
/// enumerate covers of size exactly k, branching on the uncovered element
/// with the fewest remaining candidates. This reproduces what the paper
/// obtains from Gurobi on the ILPQC (§III-A1), including its practical
/// memory/time ceiling.
SetCoverBnBResult solve_set_cover_bnb(const SetCoverInstance& inst,
                                      const CoverOracle& oracle,
                                      const SetCoverBnBOptions& options = {});

/// Parallel variant of solve_set_cover_bnb with deterministic merging:
/// each iterative-deepening level splits at the root pivot's branches
/// (the exact branch order the serial DFS would try) and explores every
/// branch's subtree concurrently, each with its own oracle from
/// `oracle_factory` and its own node budget. The merged winner is the
/// lowest-ordered successful branch, so the chosen cover is independent
/// of thread scheduling — and identical to the serial solver's whenever
/// the budget is ample (tested). `proven_optimal` additionally requires
/// that no earlier deepening level exhausted a branch budget (a smaller
/// cover can only hide behind an exhausted smaller level).
SetCoverBnBResult solve_set_cover_bnb_parallel(
    const SetCoverInstance& inst, const CoverOracleFactory& oracle_factory,
    const SetCoverBnBOptions& options = {});

/// Lower bound on the optimal cover size: greedily extracts elements whose
/// candidate sets are pairwise disjoint (each needs a distinct set).
std::size_t disjoint_elements_lower_bound(const SetCoverInstance& inst);

}  // namespace sag::opt
