#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sag/geometry/circle.h"

namespace sag::opt {

/// Options for the geometric hitting-set solver.
struct HittingSetOptions {
    /// Largest local-search swap: replace `t` chosen points by `t-1`
    /// candidates. Mustafa & Ray's PTAS [SCG'09] uses unbounded swaps;
    /// swaps of size <= 3 already recover their quality at the paper's
    /// instance sizes (see bench_ablation_hitting_set).
    int max_swap = 2;
    /// Upper bound on local-search improvement passes.
    int max_passes = 64;
    /// Skip 3->2 swaps when chosen-count * candidate-count exceeds this
    /// (cost guard; the ablation bench sweeps it).
    std::size_t swap3_cost_limit = 4'000'000;
};

/// Candidate hitting points for a disk family: every disk center plus all
/// pairwise boundary intersection points (deduplicated). Any disk family
/// with a non-empty hitting set admits one drawn from these candidates.
std::vector<geom::Vec2> disk_hitting_candidates(std::span<const geom::Circle> disks);

/// Minimum hitting set for closed disks (paper §III-A1 step "Minimum
/// Hitting Set"): returns points such that every disk contains at least
/// one. Greedy set cover over disk_hitting_candidates() followed by
/// bounded local search. Empty input -> empty result; a disk family is
/// always hittable (each disk contains its center).
std::vector<geom::Vec2> geometric_hitting_set(std::span<const geom::Circle> disks,
                                              const HittingSetOptions& options = {});

/// Batch form: out[z] = geometric_hitting_set(instances[z], options) for
/// every zone z. With `threads != 1` the zones fan out across a
/// sag::exec thread pool (0 = exec default, i.e. SAG_THREADS env /
/// hardware concurrency); each zone is solved independently into its
/// own indexed output slot, so results are deterministic and identical
/// to the serial loop regardless of scheduling. This is the SAMC
/// per-zone parallelism seam (Algorithm 1 treats zones independently).
std::vector<std::vector<geom::Vec2>> geometric_hitting_sets(
    std::span<const std::vector<geom::Circle>> instances,
    const HittingSetOptions& options = {}, std::size_t threads = 1);

}  // namespace sag::opt
