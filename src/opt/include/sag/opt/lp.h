#pragma once

#include <vector>

namespace sag::opt {

/// A small dense linear program:
///   minimize    c . x
///   subject to  each Constraint (coeffs . x REL rhs)
///               0 <= x_i <= upper_bounds[i] (infinity when absent)
///
/// This is the stand-in for Gurobi in the paper's LPQC power-allocation
/// step: with a fixed coverage topology the quadratic SNR constraints
/// become linear in the transmit powers, so an exact LP solve recovers the
/// paper's "optimal" curve. Solved with a two-phase full-tableau primal
/// simplex (Dantzig rule with a Bland fallback against cycling). Problem
/// sizes in this library are tens of variables, so dense is appropriate.
struct LinearProgram {
    enum class Relation { LessEq, GreaterEq, Equal };

    struct Constraint {
        std::vector<double> coeffs;  ///< one per variable; missing tail = 0
        Relation rel = Relation::LessEq;
        double rhs = 0.0;
    };

    std::vector<double> objective;        ///< c, one per variable
    std::vector<Constraint> constraints;
    std::vector<double> upper_bounds;     ///< optional; empty = all unbounded

    std::size_t variable_count() const { return objective.size(); }

    /// Convenience builders.
    void add_constraint(std::vector<double> coeffs, Relation rel, double rhs);
};

struct LpResult {
    enum class Status { Optimal, Infeasible, Unbounded, IterationLimit };
    Status status = Status::Infeasible;
    double objective = 0.0;
    std::vector<double> x;

    bool optimal() const { return status == Status::Optimal; }
};

/// Solves the LP; `max_iterations` bounds total simplex pivots.
LpResult solve_lp(const LinearProgram& lp, int max_iterations = 20000);

}  // namespace sag::opt
