#include "sag/exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace sag::exec {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) {
                if (stopping_) return;
                continue;
            }
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) all_done_.notify_all();
        }
    }
}

std::size_t default_thread_count() {
    if (const char* env = std::getenv("SAG_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t resolve_thread_count(std::size_t requested) {
    return requested == 0 ? default_thread_count() : requested;
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&fn, i] { fn(i); });
    }
    pool.wait_idle();
}

}  // namespace sag::exec
