#include "sag/exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace sag::exec {

ThreadPool::ThreadPool(std::size_t threads) {
    if (threads == 0) threads = default_thread_count();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const MutexLock lock(mutex_);
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        const MutexLock lock(mutex_);
        queue_.push(std::move(task));
        ++in_flight_;
    }
    task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
    MutexLock lock(mutex_);
    while (in_flight_ != 0) all_done_.wait(lock);
}

void ThreadPool::worker_loop() {
    while (true) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            // Explicit predicate loop (not a wait-with-lambda): the
            // guarded reads stay in this lock-held scope, where the
            // thread-safety analysis can see the capability.
            while (!stopping_ && queue_.empty()) task_ready_.wait(lock);
            if (queue_.empty()) return;  // stopping, queue drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
        {
            const MutexLock lock(mutex_);
            --in_flight_;
            if (in_flight_ == 0) all_done_.notify_all();
        }
    }
}

std::size_t default_thread_count() {
    if (const char* env = std::getenv("SAG_THREADS")) {
        char* end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0) {
            return static_cast<std::size_t>(parsed);
        }
    }
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

std::size_t resolve_thread_count(std::size_t requested) {
    return requested == 0 ? default_thread_count() : requested;
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn) {
    for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&fn, i] { fn(i); });
    }
    pool.wait_idle();
}

}  // namespace sag::exec
