#pragma once

#include <condition_variable>
#include <mutex>

#include "sag/exec/thread_annotations.h"

namespace sag::exec {

/// The repository's one mutex type: a std::mutex annotated as a Clang
/// TSA capability, so members declared SAG_GUARDED_BY(mu) cannot be
/// touched without holding it (compile error under clang, see
/// docs/STATIC_ANALYSIS.md §8). All locking in src/ flows through this
/// wrapper — tools/check_static.sh §6 rejects raw std::mutex/
/// std::thread/std::condition_variable outside src/exec/.
class SAG_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SAG_ACQUIRE() { m_.lock(); }
    void unlock() SAG_RELEASE() { m_.unlock(); }
    bool try_lock() SAG_TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
    friend class CondVar;
    friend class MutexLock;
    std::mutex m_;
};

/// RAII scoped lock over exec::Mutex (the std::lock_guard/unique_lock
/// replacement). SAG_SCOPED_CAPABILITY tells the analysis the capability
/// is held from construction to destruction.
class SAG_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) SAG_ACQUIRE(mu) : lock_(mu.m_) {}
    ~MutexLock() SAG_RELEASE() {}

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with exec::Mutex. wait() atomically
/// releases and reacquires the lock; from the analysis's point of view
/// the capability is held across the call (the Clang-documented
/// convention for condition variables), so guard re-checks stay in the
/// caller as explicit `while (!pred) cv.wait(lock);` loops — which is
/// exactly the shape that keeps the predicate reads inside the analyzed,
/// lock-held scope (a predicate lambda would be analyzed as an unlocked
/// function body).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// Blocks until notified; `lock` must hold the associated Mutex.
    void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace sag::exec
