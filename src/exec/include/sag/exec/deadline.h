#pragma once

// exec::Deadline — the repo's single "out of wall-clock budget" concept.
//
// Every time-budgeted search in the tree (opt::solve_milp,
// opt::solve_set_cover_bnb, the ILPQC wrappers, the serve::Session event
// stages) used to hand-roll the same three lines of steady_clock
// arithmetic; auditing "what happens when the budget expires" meant
// reading each copy. A Deadline is that concept once: armed from a
// seconds budget (<= 0 keeps the repo-wide "0 disables" convention and
// yields an unlimited deadline), polled with expired(), and — for the
// serve layer's fault-injection harness — expirable *deterministically*
// via expired_now(), which never reads the clock and therefore replays
// byte-identically across runs and thread counts.
//
// Copying a Deadline copies the absolute expiry instant, so one deadline
// threaded through nested stages gives every stage the same cutoff (the
// degradation-ladder contract of docs/SERVING.md).

#include <chrono>
#include <limits>

namespace sag::exec {

class Deadline {
public:
    using Clock = std::chrono::steady_clock;

    /// Unlimited: expired() is always false.
    Deadline() = default;

    /// Expires `seconds` from now; <= 0 (and NaN) means unlimited,
    /// mirroring the `time_budget_seconds = 0 disables` convention of
    /// the solver option structs.
    static Deadline after_seconds(double seconds) {
        Deadline d;
        if (seconds > 0.0) {
            d.armed_ = true;
            d.at_ = Clock::now() +
                    std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(seconds));
        }
        return d;
    }

    /// Already expired, without ever touching the clock: the
    /// deterministic "injected solver timeout" used to drive degradation
    /// paths in tests and the churn soak harness.
    static Deadline expired_now() {
        Deadline d;
        d.armed_ = true;
        d.forced_ = true;
        return d;
    }

    bool unlimited() const { return !armed_; }

    /// One clock read per call (none when unlimited or force-expired).
    bool expired() const {
        if (!armed_) return false;
        return forced_ || Clock::now() > at_;
    }

    /// Seconds until expiry: +inf when unlimited, 0 when already past.
    double remaining_seconds() const {
        if (!armed_) return std::numeric_limits<double>::infinity();
        if (forced_) return 0.0;
        const auto left = at_ - Clock::now();
        return left > Clock::duration::zero()
                   ? std::chrono::duration<double>(left).count()
                   : 0.0;
    }

private:
    Clock::time_point at_{};
    bool armed_ = false;
    bool forced_ = false;
};

}  // namespace sag::exec
