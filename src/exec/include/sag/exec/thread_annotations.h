#pragma once

// Clang Thread Safety Analysis attribute macros (SAG_ prefix), after the
// scheme in the Clang TSA documentation. On Clang, `-Wthread-safety
// -Wthread-safety-beta` (enabled unconditionally by the top-level
// CMakeLists) turns an unguarded access to a SAG_GUARDED_BY member, or a
// call to a SAG_REQUIRES function without its mutex, into a compile
// diagnostic; the `thread-safety` CI job promotes those to errors with
// -Werror. On GCC (the dev container's only compiler) every macro
// expands to nothing, so the annotations are free documentation there.
//
// The annotated capability types live in sag/exec/mutex.h
// (exec::Mutex / exec::MutexLock / exec::CondVar); the domain lint in
// tools/check_static.sh §6 keeps raw std::mutex/std::thread out of the
// rest of src/, so all locking flows through the analyzed wrappers.
// Contract and usage examples: docs/STATIC_ANALYSIS.md §8.

#if defined(__clang__) && (!defined(SWIG))
#define SAG_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SAG_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Marks a class as a capability (lockable). The string name is used in
/// diagnostics ("mutex 'mu_' is not held ...").
#define SAG_CAPABILITY(x) SAG_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability at construction and
/// releases it at destruction (exec::MutexLock).
#define SAG_SCOPED_CAPABILITY SAG_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding the named capability.
#define SAG_GUARDED_BY(x) SAG_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the named capability.
#define SAG_PT_GUARDED_BY(x) SAG_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability (exclusively) to call this function.
#define SAG_REQUIRES(...) \
    SAG_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard).
#define SAG_EXCLUDES(...) SAG_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it past return.
#define SAG_ACQUIRE(...) \
    SAG_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define SAG_RELEASE(...) \
    SAG_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define SAG_TRY_ACQUIRE(...) \
    SAG_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Returns a reference to the named capability (capability accessors).
#define SAG_RETURN_CAPABILITY(x) SAG_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must
/// carry a comment justifying why the discipline is not expressible
/// (e.g. sag::obs's owner-thread lock-free counter scan).
#define SAG_NO_THREAD_SAFETY_ANALYSIS \
    SAG_THREAD_ANNOTATION(no_thread_safety_analysis)
