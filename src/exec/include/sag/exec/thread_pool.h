#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "sag/exec/mutex.h"
#include "sag/exec/thread_annotations.h"

namespace sag::exec {

/// A minimal fixed-size worker pool. Used by parallel_for_index to spread
/// independent work items across cores; callers stay deterministic
/// because work items are indexed and outputs land in pre-sized slots
/// (no order-dependent accumulation).
///
/// Lives in the dependency-bottom sag_exec library so that both the
/// solver layers (opt, core) and the experiment harness (sim) can share
/// one pool abstraction without an upward dependency.
///
/// Locking discipline is a compile-time property: every shared member is
/// SAG_GUARDED_BY(mutex_), so an unguarded access fails the clang
/// `thread-safety` CI build instead of waiting for a TSan interleaving
/// (docs/STATIC_ANALYSIS.md §8).
class ThreadPool {
public:
    /// `threads` == 0 picks default_thread_count().
    explicit ThreadPool(std::size_t threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t thread_count() const { return workers_.size(); }

    /// Enqueues a task; tasks must not throw (std::terminate otherwise).
    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> workers_;  // written only in ctor/dtor
    Mutex mutex_;
    CondVar task_ready_;
    CondVar all_done_;
    std::queue<std::function<void()>> queue_ SAG_GUARDED_BY(mutex_);
    std::size_t in_flight_ SAG_GUARDED_BY(mutex_) = 0;
    bool stopping_ SAG_GUARDED_BY(mutex_) = false;
};

/// Pool width used when a caller passes `threads == 0`: the SAG_THREADS
/// environment variable when set to a positive integer, else
/// hardware_concurrency (minimum 1). One knob caps every parallel stage
/// in the repo — solver fan-outs and the experiment harness alike.
std::size_t default_thread_count();

/// Resolves a per-call thread-count option: 0 -> default_thread_count(),
/// anything else is taken literally (callers use 1 for "force serial").
std::size_t resolve_thread_count(std::size_t requested);

/// Runs fn(i) for i in [0, count) on `pool`, blocking until all complete.
/// fn must only write to its own index's output slot.
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& fn);

}  // namespace sag::exec
