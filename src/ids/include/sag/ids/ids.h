#pragma once

// sag::ids — zero-overhead strong identifier types for the entities the
// SAG pipeline indexes: subscribers (SsId), relay stations (RsId), base
// stations (BsId), candidate positions (CandId), and zones (ZoneId).
//
// Why: PR 3 (sag::units) made it a compile error to add a Watt to a
// Decibel, but the solvers still juggled five different entity-index
// spaces as interchangeable `std::size_t`. Handing an RS index to a
// per-subscriber buffer — the exact bug class that silently corrupts
// SAMC's zone→candidate→RS maps or the ILPQC oracle's prefix-diff
// bookkeeping — produced a plausible-looking wrong answer instead of a
// diagnostic. Each wrapper here holds exactly one std::uint32_t (same
// size, trivially copyable, constexpr throughout, so it compiles to the
// bare integer) and refuses to mix with other ID types or to convert
// implicitly from/to raw integers.
//
// Conventions (docs/STATIC_ANALYSIS.md, "Typed entity IDs"):
//   * IDs are *positional*: SsId{3} is row 3 of the scenario's subscriber
//     array. Zone-local solvers reuse SsId for tracked-local slots (the
//     entity kind is what the type guards, not the index space); APIs
//     that mix local and global spaces say so in their contract.
//   * Bulk numeric buffers (std::vector<double> of watts, gain matrices)
//     stay raw; an ID crosses into them explicitly via `id.index()`.
//   * Per-entity containers use IdVec/IdSpan, whose operator[] only
//     accepts the matching ID type.
//   * `invalid()` (the all-ones sentinel) marks "no entity"; default
//     construction yields it so forgotten initialization is loud in
//     debug bounds checks rather than silently row 0.
//
// tests/ids_compile_fail.cpp proves the forbidden conversions stay
// compile errors; tests/ids_test.cpp covers semantics.

#include <cassert>
#include <compare>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <limits>
#include <ostream>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace sag::ids {

/// Strong typedef around std::uint32_t; Tag makes distinct, incompatible
/// instantiations. 2^32-1 entities is comfortably beyond city scale while
/// keeping IdVec keys half the width of a size_t index.
template <class Tag>
class EntityId {
public:
    using underlying = std::uint32_t;

    /// Default-constructed == invalid(): an uninitialized ID never aliases
    /// entity 0.
    constexpr EntityId() = default;

    /// Explicit by design: a raw integer must say which entity space it
    /// means. Debug builds reject values that do not fit.
    template <std::integral I>
    explicit constexpr EntityId(I v) : v_(static_cast<underlying>(v)) {
        assert(std::in_range<underlying>(v) && "entity index out of uint32 range");
    }

    /// The raw 32-bit value (also the sentinel for invalid()). Outside
    /// src/ids every call site needs a `// SAG_RAW_OK: <why>` comment
    /// (sag_lint raw-escape); prefer index() for raw-buffer subscripts.
    constexpr underlying value() const { return v_; }
    /// The explicit crossing into raw buffers: `powers[id.index()]`.
    constexpr std::size_t index() const { return static_cast<std::size_t>(v_); }

    static constexpr EntityId invalid() {
        EntityId id;
        id.v_ = kInvalid;
        return id;
    }
    constexpr bool valid() const { return v_ != kInvalid; }

    friend constexpr auto operator<=>(EntityId, EntityId) = default;

    /// Iteration support (IdRange); arithmetic beyond ++/-- is deliberately
    /// absent — offsets go through value()/index() where the reader can see
    /// the index math.
    constexpr EntityId& operator++() {
        ++v_;
        return *this;
    }
    constexpr EntityId operator++(int) {
        EntityId old = *this;
        ++v_;
        return old;
    }
    constexpr EntityId& operator--() {
        --v_;
        return *this;
    }

    friend std::ostream& operator<<(std::ostream& os, EntityId id) {
        return id.valid() ? os << id.v_ : os << "invalid";
    }

private:
    static constexpr underlying kInvalid = std::numeric_limits<underlying>::max();
    underlying v_ = kInvalid;
};

using SsId = EntityId<struct SsTag>;      ///< subscriber station s_j
using RsId = EntityId<struct RsTag>;      ///< relay station (coverage or zone-local)
using BsId = EntityId<struct BsTag>;      ///< macro base station bs_b
using CandId = EntityId<struct CandTag>;  ///< ILPQC candidate position
using ZoneId = EntityId<struct ZoneTag>;  ///< Zone Partition component
using ProfileId = EntityId<struct ProfileTag>;  ///< RadioProfile index (radio class)

/// Half-open ID interval [begin, end) for range-for loops:
/// `for (const SsId j : scenario.ss_ids())`.
template <class Id>
class IdRange {
public:
    class iterator {
    public:
        using value_type = Id;
        using difference_type = std::ptrdiff_t;
        constexpr iterator() = default;
        explicit constexpr iterator(Id id) : id_(id) {}
        constexpr Id operator*() const { return id_; }
        constexpr iterator& operator++() {
            ++id_;
            return *this;
        }
        constexpr iterator operator++(int) {
            iterator old = *this;
            ++id_;
            return old;
        }
        friend constexpr bool operator==(iterator, iterator) = default;

    private:
        Id id_{0};
    };

    constexpr IdRange(Id begin, Id end) : begin_(begin), end_(end) {}
    explicit constexpr IdRange(std::size_t count) : begin_(Id{0}), end_(Id{count}) {}

    constexpr iterator begin() const { return iterator{begin_}; }
    constexpr iterator end() const { return iterator{end_}; }
    constexpr std::size_t size() const { return end_.index() - begin_.index(); }
    constexpr bool empty() const { return begin_ == end_; }

private:
    Id begin_;
    Id end_;
};

/// The first `count` IDs of a space: `first_ids<RsId>(plan.rs_count())`.
template <class Id>
constexpr IdRange<Id> first_ids(std::size_t count) {
    return IdRange<Id>{count};
}

/// Materialized 0..count-1, for building typed index lists.
template <class Id>
std::vector<Id> all_ids(std::size_t count) {
    std::vector<Id> out;
    out.reserve(count);
    for (const Id id : first_ids<Id>(count)) out.push_back(id);
    return out;
}

template <class Id, class T>
class IdSpan;

/// std::vector whose operator[] only accepts the matching ID type.
/// Debug builds bounds-check every access (including the invalid()
/// sentinel); release access compiles to the bare vector indexing.
template <class Id, class T>
class IdVec {
public:
    using value_type = T;
    using iterator = typename std::vector<T>::iterator;
    using const_iterator = typename std::vector<T>::const_iterator;

    IdVec() = default;
    explicit IdVec(std::size_t count) : v_(count) {}
    IdVec(std::size_t count, const T& fill) : v_(count, fill) {}
    IdVec(std::initializer_list<T> init) : v_(init) {}
    /// Adopting a raw vector is explicit: the caller asserts its order
    /// really is this ID space.
    explicit IdVec(std::vector<T> raw) : v_(std::move(raw)) {}

    T& operator[](Id id) {
        assert(id.index() < v_.size() && "IdVec index out of range");
        return v_[id.index()];
    }
    const T& operator[](Id id) const {
        assert(id.index() < v_.size() && "IdVec index out of range");
        return v_[id.index()];
    }

    std::size_t size() const { return v_.size(); }
    bool empty() const { return v_.empty(); }
    void clear() { v_.clear(); }
    void reserve(std::size_t n) { v_.reserve(n); }
    void resize(std::size_t n) { v_.resize(n); }
    void resize(std::size_t n, const T& fill) { v_.resize(n, fill); }
    void assign(std::size_t n, const T& fill) { v_.assign(n, fill); }

    /// Appends and returns the new element's ID.
    Id push_back(const T& value) {
        v_.push_back(value);
        return Id{v_.size() - 1};
    }
    Id push_back(T&& value) {
        v_.push_back(std::move(value));
        return Id{v_.size() - 1};
    }

    T& front() { return v_.front(); }
    const T& front() const { return v_.front(); }
    T& back() { return v_.back(); }
    const T& back() const { return v_.back(); }

    iterator begin() { return v_.begin(); }
    iterator end() { return v_.end(); }
    const_iterator begin() const { return v_.begin(); }
    const_iterator end() const { return v_.end(); }

    /// IDs 0..size()-1, for indexed loops.
    IdRange<Id> ids() const { return IdRange<Id>{v_.size()}; }

    /// Explicit raw escape (serialization, bulk math); the ID discipline
    /// ends at this call, so outside src/ids the call site must carry a
    /// `// SAG_RAW_OK: <why>` comment (sag_lint's raw-escape rule
    /// enforces it). For plain iteration use begin()/end() or ids().
    const std::vector<T>& raw() const { return v_; }
    std::vector<T>& raw() { return v_; }

    friend bool operator==(const IdVec&, const IdVec&) = default;

private:
    std::vector<T> v_;
};

/// Non-owning view with the same typed indexing discipline as IdVec.
/// Converts implicitly from IdVec (mirroring vector -> span); adopting a
/// raw span/vector is explicit.
template <class Id, class T>
class IdSpan {
public:
    constexpr IdSpan() = default;
    // NOLINTNEXTLINE(google-explicit-constructor): IdVec -> IdSpan mirrors
    // the implicit std::vector -> std::span conversion.
    IdSpan(const IdVec<Id, std::remove_const_t<T>>& vec)
        requires std::is_const_v<T>
        : s_(vec.raw()) {}
    // NOLINTNEXTLINE(google-explicit-constructor)
    IdSpan(IdVec<Id, T>& vec)
        requires(!std::is_const_v<T>)
        : s_(vec.raw()) {}
    explicit constexpr IdSpan(std::span<T> raw) : s_(raw) {}

    constexpr T& operator[](Id id) const {
        assert(id.index() < s_.size() && "IdSpan index out of range");
        return s_[id.index()];
    }

    constexpr std::size_t size() const { return s_.size(); }
    constexpr bool empty() const { return s_.empty(); }
    constexpr IdRange<Id> ids() const { return IdRange<Id>{s_.size()}; }

    constexpr auto begin() const { return s_.begin(); }
    constexpr auto end() const { return s_.end(); }

    /// Explicit raw escape, mirroring IdVec::raw().
    constexpr std::span<T> raw() const { return s_; }

private:
    std::span<T> s_;
};

// --- Zero-overhead guarantees (the acceptance contract) ------------------

namespace detail {
template <class T>
inline constexpr bool kZeroOverheadId = sizeof(T) == sizeof(std::uint32_t) &&
                                        alignof(T) == alignof(std::uint32_t) &&
                                        std::is_trivially_copyable_v<T> &&
                                        std::is_standard_layout_v<T> &&
                                        std::is_nothrow_default_constructible_v<T>;
}  // namespace detail

static_assert(detail::kZeroOverheadId<SsId>);
static_assert(detail::kZeroOverheadId<RsId>);
static_assert(detail::kZeroOverheadId<BsId>);
static_assert(detail::kZeroOverheadId<CandId>);
static_assert(detail::kZeroOverheadId<ZoneId>);
static_assert(detail::kZeroOverheadId<ProfileId>);

}  // namespace sag::ids

/// Hashable, so IDs drop into unordered_map/set keyed maps.
template <class Tag>
struct std::hash<sag::ids::EntityId<Tag>> {
    std::size_t operator()(sag::ids::EntityId<Tag> id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value());
    }
};
