#pragma once

#include <cstddef>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace sag::io {

/// Error thrown by Json::parse on malformed input; carries the byte
/// offset of the failure.
class JsonParseError : public std::runtime_error {
public:
    JsonParseError(const std::string& what, std::size_t offset)
        : std::runtime_error(what + " at offset " + std::to_string(offset)),
          offset_(offset) {}
    std::size_t offset() const { return offset_; }

private:
    std::size_t offset_;
};

/// A small dependency-free JSON value: null, bool, number (double),
/// string, array, object. Supports parsing (strict, UTF-8 passthrough)
/// and serialization with optional pretty-printing. Object keys keep
/// sorted order (std::map) so serialization is deterministic — important
/// for golden-file tests and reproducible experiment manifests.
class Json {
public:
    using Array = std::vector<Json>;
    using Object = std::map<std::string, Json>;

    Json() : value_(nullptr) {}
    Json(std::nullptr_t) : value_(nullptr) {}
    Json(bool b) : value_(b) {}
    Json(double d) : value_(d) {}
    Json(int i) : value_(static_cast<double>(i)) {}
    Json(std::size_t n) : value_(static_cast<double>(n)) {}
    Json(const char* s) : value_(std::string(s)) {}
    Json(std::string s) : value_(std::move(s)) {}
    Json(Array a) : value_(std::move(a)) {}
    Json(Object o) : value_(std::move(o)) {}

    bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
    bool is_bool() const { return std::holds_alternative<bool>(value_); }
    bool is_number() const { return std::holds_alternative<double>(value_); }
    bool is_string() const { return std::holds_alternative<std::string>(value_); }
    bool is_array() const { return std::holds_alternative<Array>(value_); }
    bool is_object() const { return std::holds_alternative<Object>(value_); }

    /// Typed accessors; throw std::runtime_error on type mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;
    Array& as_array();
    Object& as_object();

    /// Object field access; `at` throws when missing, `get` returns a
    /// fallback, `contains` probes.
    const Json& at(const std::string& key) const;
    bool contains(const std::string& key) const;
    double get_number(const std::string& key, double fallback) const;

    /// Array element access with bounds checking.
    const Json& at(std::size_t index) const;
    std::size_t size() const;

    /// Object field assignment (creates the object if this is null).
    Json& operator[](const std::string& key);

    bool operator==(const Json& other) const = default;

    /// Serialize; indent < 0 -> compact single line, otherwise
    /// pretty-print with that many spaces per level.
    std::string dump(int indent = -1) const;

    /// Strict parser; throws JsonParseError. Rejects trailing content.
    static Json parse(std::string_view text);

private:
    std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

}  // namespace sag::io
