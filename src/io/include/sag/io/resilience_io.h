#pragma once

#include "sag/io/json.h"
#include "sag/resilience/damage.h"
#include "sag/resilience/failure.h"
#include "sag/resilience/repair.h"

namespace sag::io {

/// Survivability report -> JSON (schema in docs/RESILIENCE.md,
/// "format": 1). One-way, deterministic: object keys are sorted and all
/// ID lists are ascending, so a fixed (scenario, failures, repair) run
/// serializes byte-identically.
Json failure_set_to_json(const resilience::FailureSet& failures);
Json damage_report_to_json(const resilience::DamageReport& damage);
Json repair_outcome_to_json(const resilience::RepairOutcome& outcome);

/// The full failure -> damage -> repair record the `sag_cli resilience`
/// subcommand and bench_resilience both emit.
Json survivability_to_json(const resilience::FailureSet& failures,
                           const resilience::DamageReport& damage,
                           const resilience::RepairOutcome& outcome);

}  // namespace sag::io
