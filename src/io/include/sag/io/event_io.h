#pragma once

// JSONL churn-event streams (docs/SERVING.md, "Event schema"). One
// event per line, schema-strict: every line must be a JSON object with
// exactly the fields of its kind — unknown kinds, missing or extra
// fields, out-of-range ids, and non-finite coordinates are rejected
// with an EventFormatError naming the 1-based line. Serialization is
// byte-deterministic (sorted keys, fixed number formatting), so
// parse(serialize(events)) == events and a replayed stream is
// byte-identical to its source.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "sag/io/json.h"
#include "sag/serve/event.h"

namespace sag::io {

/// Thrown by events_from_jsonl; carries the 1-based line number of the
/// offending event so stream producers can find it.
class EventFormatError : public std::runtime_error {
public:
    EventFormatError(std::size_t line, const std::string& what)
        : std::runtime_error("line " + std::to_string(line) + ": " + what),
          line_(line) {}
    std::size_t line() const { return line_; }

private:
    std::size_t line_;
};

/// Parse a JSONL event stream. Empty lines are skipped; everything else
/// must be a schema-exact event object.
std::vector<serve::Event> events_from_jsonl(std::string_view text);

/// Serialize one event / a whole stream (one compact line per event,
/// each terminated by '\n'). Deterministic: a fixed event value always
/// produces the same bytes.
Json event_to_json(const serve::Event& event);
std::string events_to_jsonl(const std::vector<serve::Event>& events);

/// Per-event outcome record for churn reports (docs/SERVING.md,
/// "Report format"). Latencies are deliberately excluded: this is the
/// byte-comparable replay fingerprint of a serve run.
Json event_outcome_to_json(const serve::EventOutcome& outcome);

}  // namespace sag::io
