#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "sag/core/deployment.h"
#include "sag/core/sag.h"
#include "sag/core/scenario.h"
#include "sag/io/json.h"

namespace sag::io {

/// Thrown by scenario_from_json on well-formed JSON carrying a
/// non-physical scenario (non-finite coordinates, negative powers,
/// duplicate station positions, ...). Carries the JSON path of the
/// offending field (e.g. "subscribers[3].pos") so CLI users see *where*
/// the input is broken, not just a bare exception text.
class ScenarioFormatError : public std::runtime_error {
public:
    ScenarioFormatError(const std::string& path, const std::string& what)
        : std::runtime_error(path + ": " + what), path_(path) {}
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

/// Scenario <-> JSON. The format is versioned ("format": 1) and
/// round-trips every field, including all radio constants, so experiment
/// inputs can be archived and replayed exactly.
Json scenario_to_json(const core::Scenario& scenario);
core::Scenario scenario_from_json(const Json& json);

/// Deployment (both tiers + powers) -> JSON report. One-way: reports are
/// for archiving/plotting, not for feeding back into solvers.
Json sag_result_to_json(const core::SagResult& result);

/// Node/edge CSV of a deployment (kind,x,y,power,parent_x,parent_y), the
/// format the Fig. 6 plots consume. Subscribers are included with kind
/// "SS" and no parent.
void write_deployment_csv(std::ostream& os, const core::Scenario& scenario,
                          const core::CoveragePlan& coverage,
                          const core::ConnectivityPlan& connectivity);

/// File helpers; throw std::runtime_error on I/O failure.
void save_scenario(const std::string& path, const core::Scenario& scenario);
core::Scenario load_scenario(const std::string& path);
std::string read_text_file(const std::string& path);
void write_text_file(const std::string& path, const std::string& content);

}  // namespace sag::io
