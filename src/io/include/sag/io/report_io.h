#pragma once

#include <string>

#include "sag/io/json.h"
#include "sag/obs/obs.h"

namespace sag::io {

/// Serialize an obs::RunReport to the stable JSON schema documented in
/// docs/OBSERVABILITY.md:
///   { "format": 1,
///     "counters": { "<name>": <uint>, ... },
///     "gauges":   { "<name>": <double>, ... },
///     "trace":    [ { "name": ..., "seconds": ..., "count": ...,
///                     "children": [...] }, ... ] }
/// Counter/gauge keys are sorted (Json objects are std::map) and trace
/// children keep recording order, so output is deterministic for a
/// deterministic run.
Json run_report_to_json(const obs::RunReport& report);

/// run_report_to_json + pretty-print + write to `path`.
/// Throws std::runtime_error when the file cannot be written.
void write_run_report(const obs::RunReport& report, const std::string& path);

}  // namespace sag::io
