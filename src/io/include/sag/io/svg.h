#pragma once

#include <string>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"

namespace sag::io {

/// Rendering options for deployment SVGs.
struct SvgOptions {
    double canvas_px = 720.0;      ///< width/height of the square canvas
    bool draw_feasible_circles = true;  ///< dashed subscriber coverage circles
    bool draw_tree_edges = true;        ///< relay-tree links
    bool draw_access_links = true;      ///< subscriber -> serving RS links
    std::string title;             ///< optional caption rendered at the top
};

/// Renders a deployment as a standalone SVG document — the direct visual
/// analogue of the paper's Fig. 6 scatter plots: subscribers as hollow
/// circles, base stations as filled squares, coverage RSs as filled
/// circles, connectivity RSs as diamonds, tree edges as lines.
std::string render_deployment_svg(const core::Scenario& scenario,
                                  const core::CoveragePlan& coverage,
                                  const core::ConnectivityPlan& connectivity,
                                  const SvgOptions& options = {});

/// Scenario-only render (no deployment yet): subscribers, circles, BSs.
std::string render_scenario_svg(const core::Scenario& scenario,
                                const SvgOptions& options = {});

}  // namespace sag::io
