#include "sag/io/resilience_io.h"

namespace sag::io {

namespace {

template <typename Id>
Json id_array(const std::vector<Id>& ids) {
    Json::Array arr;
    arr.reserve(ids.size());
    for (const Id id : ids) arr.emplace_back(static_cast<std::size_t>(id.index()));
    return Json(std::move(arr));
}

Json index_array(const std::vector<std::size_t>& idx) {
    Json::Array arr;
    arr.reserve(idx.size());
    for (const std::size_t i : idx) arr.emplace_back(i);
    return Json(std::move(arr));
}

}  // namespace

Json failure_set_to_json(const resilience::FailureSet& failures) {
    Json j;
    j["coverage_down"] = id_array(failures.coverage_down);
    j["connectivity_down"] = index_array(failures.connectivity_down);
    Json::Array degraded;
    degraded.reserve(failures.degraded.size());
    for (const resilience::Degradation& d : failures.degraded) {
        Json entry;
        entry["rs"] = static_cast<std::size_t>(d.rs.index());
        entry["factor"] = d.factor;
        degraded.emplace_back(std::move(entry));
    }
    j["degraded"] = Json(std::move(degraded));
    return j;
}

Json damage_report_to_json(const resilience::DamageReport& damage) {
    Json j;
    j["orphaned"] = id_array(damage.orphaned);
    j["cut_off"] = id_array(damage.cut_off);
    j["dead_coverage_rs"] = damage.dead_coverage_rs;
    j["dead_connectivity_rs"] = damage.dead_connectivity_rs;
    j["intact"] = damage.intact();
    return j;
}

Json repair_outcome_to_json(const resilience::RepairOutcome& outcome) {
    Json j;
    j["covered"] = id_array(outcome.covered);
    j["unrecoverable"] = id_array(outcome.unrecoverable);
    j["reassigned"] = outcome.reassigned;
    j["new_relays"] = outcome.new_relays;
    j["rounds"] = outcome.rounds;
    j["power_before"] = outcome.power_before;
    j["power_after"] = outcome.power_after;
    j["power_overhead"] = outcome.power_overhead();
    j["coverage_rs"] = outcome.repaired.coverage_rs_count();
    j["connectivity_rs"] = outcome.repaired.connectivity_rs_count();
    j["feasible"] = outcome.repaired.feasible;
    return j;
}

Json survivability_to_json(const resilience::FailureSet& failures,
                           const resilience::DamageReport& damage,
                           const resilience::RepairOutcome& outcome) {
    Json j;
    j["format"] = 1;
    j["failures"] = failure_set_to_json(failures);
    j["damage"] = damage_report_to_json(damage);
    j["repair"] = repair_outcome_to_json(outcome);
    return j;
}

}  // namespace sag::io
