#include "sag/io/report_io.h"

#include "sag/io/scenario_io.h"

namespace sag::io {

namespace {

Json trace_node_to_json(const obs::TraceNode& node) {
    Json::Array children;
    children.reserve(node.children.size());
    for (const obs::TraceNode& c : node.children) {
        children.push_back(trace_node_to_json(c));
    }
    Json::Object obj;
    obj["name"] = node.name;
    obj["seconds"] = node.seconds;
    obj["count"] = node.count;
    obj["children"] = std::move(children);
    return Json(std::move(obj));
}

}  // namespace

Json run_report_to_json(const obs::RunReport& report) {
    Json::Object counters;
    for (const auto& [name, value] : report.counters) {
        counters[name] = static_cast<double>(value);
    }
    Json::Object gauges;
    for (const auto& [name, value] : report.gauges) gauges[name] = value;
    Json::Array trace;
    trace.reserve(report.trace.size());
    for (const obs::TraceNode& root : report.trace) {
        trace.push_back(trace_node_to_json(root));
    }

    Json::Object out;
    out["format"] = 1;
    out["counters"] = Json(std::move(counters));
    out["gauges"] = Json(std::move(gauges));
    out["trace"] = Json(std::move(trace));
    return Json(std::move(out));
}

void write_run_report(const obs::RunReport& report, const std::string& path) {
    write_text_file(path, run_report_to_json(report).dump(2) + "\n");
}

}  // namespace sag::io
