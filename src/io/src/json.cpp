#include "sag/io/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace sag::io {

namespace {

/// Recursive-descent JSON parser over a string_view with offset tracking.
class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Json parse_document() {
        skip_ws();
        Json value = parse_value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing content after JSON value");
        return value;
    }

private:
    std::string_view text_;
    std::size_t pos_ = 0;

    [[noreturn]] void fail(const std::string& what) const {
        throw JsonParseError(what, pos_);
    }

    char peek() const {
        if (pos_ >= text_.size()) throw JsonParseError("unexpected end of input", pos_);
        return text_[pos_];
    }
    char take() {
        const char c = peek();
        ++pos_;
        return c;
    }
    void expect(char c) {
        if (take() != c) {
            --pos_;
            fail(std::string("expected '") + c + "'");
        }
    }
    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
                text_[pos_] == '\r')) {
            ++pos_;
        }
    }
    bool consume_keyword(std::string_view kw) {
        if (text_.substr(pos_, kw.size()) == kw) {
            pos_ += kw.size();
            return true;
        }
        return false;
    }

    Json parse_value() {
        skip_ws();
        const char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (consume_keyword("true")) return Json(true);
                fail("invalid literal");
            case 'f':
                if (consume_keyword("false")) return Json(false);
                fail("invalid literal");
            case 'n':
                if (consume_keyword("null")) return Json(nullptr);
                fail("invalid literal");
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        Json::Object obj;
        skip_ws();
        if (peek() == '}') {
            take();
            return Json(std::move(obj));
        }
        while (true) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            obj[std::move(key)] = parse_value();
            skip_ws();
            const char sep = take();
            if (sep == '}') break;
            if (sep != ',') {
                --pos_;
                fail("expected ',' or '}' in object");
            }
        }
        return Json(std::move(obj));
    }

    Json parse_array() {
        expect('[');
        Json::Array arr;
        skip_ws();
        if (peek() == ']') {
            take();
            return Json(std::move(arr));
        }
        while (true) {
            arr.push_back(parse_value());
            skip_ws();
            const char sep = take();
            if (sep == ']') break;
            if (sep != ',') {
                --pos_;
                fail("expected ',' or ']' in array");
            }
        }
        return Json(std::move(arr));
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        while (true) {
            const char c = take();
            if (c == '"') break;
            if (c == '\\') {
                const char esc = take();
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': {
                        unsigned code = 0;
                        for (int i = 0; i < 4; ++i) {
                            const char h = take();
                            code <<= 4;
                            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                            else {
                                --pos_;
                                fail("invalid \\u escape");
                            }
                        }
                        // Encode the code point as UTF-8 (BMP only; no
                        // surrogate-pair recombination — enough for config files).
                        if (code < 0x80) {
                            out.push_back(static_cast<char>(code));
                        } else if (code < 0x800) {
                            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        } else {
                            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
                            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
                        }
                        break;
                    }
                    default:
                        --pos_;
                        fail("invalid escape sequence");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                --pos_;
                fail("unescaped control character in string");
            } else {
                out.push_back(c);
            }
        }
        return out;
    }

    Json parse_number() {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            ++pos_;
        }
        double value = 0.0;
        const auto first = text_.data() + start;
        const auto last = text_.data() + pos_;
        const auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec != std::errc{} || ptr != last || start == pos_) {
            pos_ = start;
            fail("invalid number");
        }
        return Json(value);
    }
};

void dump_string(const std::string& s, std::string& out) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void dump_number(double d, std::string& out) {
    if (std::isfinite(d) && d == std::floor(d) && std::abs(d) < 1e15) {
        // Integral values print without a fractional tail.
        out += std::to_string(static_cast<long long>(d));
        return;
    }
    std::ostringstream os;
    os.precision(17);
    os << d;
    out += os.str();
}

void dump_value(const Json& v, std::string& out, int indent, int depth);

void newline_indent(std::string& out, int indent, int depth) {
    if (indent >= 0) {
        out.push_back('\n');
        out.append(static_cast<std::size_t>(indent * depth), ' ');
    }
}

void dump_value(const Json& v, std::string& out, int indent, int depth) {
    if (v.is_null()) {
        out += "null";
    } else if (v.is_bool()) {
        out += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
        dump_number(v.as_number(), out);
    } else if (v.is_string()) {
        dump_string(v.as_string(), out);
    } else if (v.is_array()) {
        const auto& arr = v.as_array();
        if (arr.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < arr.size(); ++i) {
            if (i > 0) out.push_back(',');
            newline_indent(out, indent, depth + 1);
            dump_value(arr[i], out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out.push_back(']');
    } else {
        const auto& obj = v.as_object();
        if (obj.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        bool first = true;
        for (const auto& [key, value] : obj) {
            if (!first) out.push_back(',');
            first = false;
            newline_indent(out, indent, depth + 1);
            dump_string(key, out);
            out.push_back(':');
            if (indent >= 0) out.push_back(' ');
            dump_value(value, out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out.push_back('}');
    }
}

}  // namespace

bool Json::as_bool() const {
    if (!is_bool()) throw std::runtime_error("JSON value is not a bool");
    return std::get<bool>(value_);
}
double Json::as_number() const {
    if (!is_number()) throw std::runtime_error("JSON value is not a number");
    return std::get<double>(value_);
}
const std::string& Json::as_string() const {
    if (!is_string()) throw std::runtime_error("JSON value is not a string");
    return std::get<std::string>(value_);
}
const Json::Array& Json::as_array() const {
    if (!is_array()) throw std::runtime_error("JSON value is not an array");
    return std::get<Array>(value_);
}
const Json::Object& Json::as_object() const {
    if (!is_object()) throw std::runtime_error("JSON value is not an object");
    return std::get<Object>(value_);
}
Json::Array& Json::as_array() {
    if (!is_array()) throw std::runtime_error("JSON value is not an array");
    return std::get<Array>(value_);
}
Json::Object& Json::as_object() {
    if (!is_object()) throw std::runtime_error("JSON value is not an object");
    return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
    const auto& obj = as_object();
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing JSON key: " + key);
    return it->second;
}

bool Json::contains(const std::string& key) const {
    return is_object() && as_object().count(key) > 0;
}

double Json::get_number(const std::string& key, double fallback) const {
    return contains(key) ? at(key).as_number() : fallback;
}

const Json& Json::at(std::size_t index) const {
    const auto& arr = as_array();
    if (index >= arr.size()) throw std::runtime_error("JSON array index out of range");
    return arr[index];
}

std::size_t Json::size() const {
    if (is_array()) return as_array().size();
    if (is_object()) return as_object().size();
    throw std::runtime_error("JSON value has no size");
}

Json& Json::operator[](const std::string& key) {
    if (is_null()) value_ = Object{};
    return as_object()[key];
}

std::string Json::dump(int indent) const {
    std::string out;
    dump_value(*this, out, indent, 0);
    return out;
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace sag::io
