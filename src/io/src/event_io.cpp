#include "sag/io/event_io.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <utility>

namespace sag::io {

namespace {

using serve::Event;
using serve::EventKind;

const char* kind_name(EventKind kind) {
    switch (kind) {
        case EventKind::SsJoin: return "ss_join";
        case EventKind::SsLeave: return "ss_leave";
        case EventKind::SsMove: return "ss_move";
        case EventKind::SsRate: return "ss_rate";
        case EventKind::RsFail: return "rs_fail";
        case EventKind::RsDegrade: return "rs_degrade";
        case EventKind::RsRecover: return "rs_recover";
    }
    return "unknown";
}

/// Fields each kind requires, beyond "kind" itself. Schema-strict: the
/// line must carry exactly these, no more.
std::vector<std::string> kind_fields(EventKind kind) {
    switch (kind) {
        case EventKind::SsJoin: return {"d", "key", "x", "y"};
        case EventKind::SsLeave: return {"key"};
        case EventKind::SsMove: return {"key", "x", "y"};
        case EventKind::SsRate: return {"d", "key"};
        case EventKind::RsFail: return {"rs"};
        case EventKind::RsDegrade: return {"factor", "rs"};
        case EventKind::RsRecover: return {"rs"};
    }
    return {};
}

double require_number(const Json& obj, const std::string& field,
                      std::size_t line) {
    const Json& v = obj.at(field);
    if (!v.is_number()) {
        throw EventFormatError(line, "field '" + field + "' must be a number");
    }
    return v.as_number();
}

/// Ids (subscriber keys, RS slots) must be exact non-negative integers
/// within double's exact-integer range; anything else is out of range.
std::uint64_t require_id(const Json& obj, const std::string& field,
                         std::size_t line) {
    const double d = require_number(obj, field, line);
    if (!(std::isfinite(d) && d >= 0.0 && d == std::floor(d) &&
          d <= 9007199254740992.0 /* 2^53 */)) {
        throw EventFormatError(line, "out-of-range id in '" + field + "'");
    }
    return static_cast<std::uint64_t>(d);
}

double require_coord(const Json& obj, const std::string& field,
                     std::size_t line) {
    const double d = require_number(obj, field, line);
    if (!std::isfinite(d)) {
        throw EventFormatError(line, "non-finite coordinate '" + field + "'");
    }
    return d;
}

Event event_from_json(const Json& json, std::size_t line) {
    if (!json.is_object()) {
        throw EventFormatError(line, "event must be a JSON object");
    }
    if (!json.contains("kind")) {
        throw EventFormatError(line, "missing field 'kind'");
    }
    if (!json.at("kind").is_string()) {
        throw EventFormatError(line, "field 'kind' must be a string");
    }
    const std::string& kind_str = json.at("kind").as_string();
    static const std::map<std::string, EventKind> kKinds = {
        {"ss_join", EventKind::SsJoin},   {"ss_leave", EventKind::SsLeave},
        {"ss_move", EventKind::SsMove},   {"ss_rate", EventKind::SsRate},
        {"rs_fail", EventKind::RsFail},   {"rs_degrade", EventKind::RsDegrade},
        {"rs_recover", EventKind::RsRecover},
    };
    const auto it = kKinds.find(kind_str);
    if (it == kKinds.end()) {
        throw EventFormatError(line, "unknown event kind '" + kind_str + "'");
    }

    Event e;
    e.kind = it->second;
    // Schema-strict field check: exactly {"kind"} + the kind's fields.
    const std::vector<std::string> required = kind_fields(e.kind);
    for (const std::string& field : required) {
        if (!json.contains(field)) {
            throw EventFormatError(line, "missing field '" + field + "'");
        }
    }
    if (json.as_object().size() != required.size() + 1) {
        for (const auto& [field, value] : json.as_object()) {
            if (field == "kind") continue;
            if (std::find(required.begin(), required.end(), field) ==
                required.end()) {
                throw EventFormatError(line, "unexpected field '" + field + "'");
            }
        }
    }

    switch (e.kind) {
        case EventKind::SsJoin:
            e.key = require_id(json, "key", line);
            e.pos = {require_coord(json, "x", line),
                     require_coord(json, "y", line)};
            e.distance_request = require_number(json, "d", line);
            break;
        case EventKind::SsLeave:
            e.key = require_id(json, "key", line);
            break;
        case EventKind::SsMove:
            e.key = require_id(json, "key", line);
            e.pos = {require_coord(json, "x", line),
                     require_coord(json, "y", line)};
            break;
        case EventKind::SsRate:
            e.key = require_id(json, "key", line);
            e.distance_request = require_number(json, "d", line);
            break;
        case EventKind::RsFail:
        case EventKind::RsRecover:
            e.rs = ids::RsId{require_id(json, "rs", line)};
            break;
        case EventKind::RsDegrade:
            e.rs = ids::RsId{require_id(json, "rs", line)};
            e.factor = require_number(json, "factor", line);
            break;
    }
    if (e.kind == EventKind::SsJoin || e.kind == EventKind::SsRate) {
        if (!(std::isfinite(e.distance_request) && e.distance_request > 0.0)) {
            throw EventFormatError(line, "non-positive distance request 'd'");
        }
    }
    if (e.kind == EventKind::RsDegrade) {
        if (!(std::isfinite(e.factor) && e.factor > 0.0 && e.factor <= 1.0)) {
            throw EventFormatError(line, "degradation factor outside (0, 1]");
        }
    }
    return e;
}

}  // namespace

std::vector<serve::Event> events_from_jsonl(std::string_view text) {
    std::vector<Event> events;
    std::size_t line_no = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = std::min(text.find('\n', start), text.size());
        const std::string_view linetext = text.substr(start, end - start);
        ++line_no;
        start = end + 1;
        if (linetext.empty()) continue;
        Json parsed;
        try {
            parsed = Json::parse(linetext);
        } catch (const JsonParseError& e) {
            throw EventFormatError(line_no, std::string("malformed JSON: ") +
                                                e.what());
        }
        events.push_back(event_from_json(parsed, line_no));
    }
    return events;
}

Json event_to_json(const serve::Event& event) {
    Json json;
    json["kind"] = kind_name(event.kind);
    switch (event.kind) {
        case EventKind::SsJoin:
            json["key"] = static_cast<double>(event.key);
            json["x"] = event.pos.x;
            json["y"] = event.pos.y;
            json["d"] = event.distance_request;
            break;
        case EventKind::SsLeave:
            json["key"] = static_cast<double>(event.key);
            break;
        case EventKind::SsMove:
            json["key"] = static_cast<double>(event.key);
            json["x"] = event.pos.x;
            json["y"] = event.pos.y;
            break;
        case EventKind::SsRate:
            json["key"] = static_cast<double>(event.key);
            json["d"] = event.distance_request;
            break;
        case EventKind::RsFail:
        case EventKind::RsRecover:
            // SAG_RAW_OK: serializing the RS slot as a JSON number.
            json["rs"] = static_cast<double>(event.rs.value());
            break;
        case EventKind::RsDegrade:
            // SAG_RAW_OK: serializing the RS slot as a JSON number.
            json["rs"] = static_cast<double>(event.rs.value());
            json["factor"] = event.factor;
            break;
    }
    return json;
}

std::string events_to_jsonl(const std::vector<serve::Event>& events) {
    std::string out;
    for (const serve::Event& event : events) {
        out += event_to_json(event).dump();
        out.push_back('\n');
    }
    return out;
}

Json event_outcome_to_json(const serve::EventOutcome& outcome) {
    Json json;
    json["event"] = outcome.event_index;
    json["level"] = serve::to_string(outcome.level);
    json["verified"] = outcome.verified;
    json["degraded"] = outcome.degraded;
    json["unserved"] = outcome.unserved;
    json["rs_count"] = outcome.rs_count;
    json["total_power"] = outcome.total_power;
    json["rehomed"] = outcome.rehomed;
    json["patched"] = outcome.patched;
    json["shed"] = outcome.shed;
    if (outcome.resolve_triggered) json["resolve_triggered"] = true;
    if (outcome.resolve_adopted) json["resolve_adopted"] = true;
    if (!outcome.reject_reason.empty()) json["reject"] = outcome.reject_reason;
    return json;
}

}  // namespace sag::io
