#include "sag/io/scenario_io.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

namespace sag::io {

namespace {

Json vec2_to_json(const geom::Vec2& v) {
    return Json(Json::Array{Json(v.x), Json(v.y)});
}

geom::Vec2 vec2_from_json(const Json& j) {
    if (j.size() != 2) throw std::runtime_error("point must be [x, y]");
    return {j.at(std::size_t{0}).as_number(), j.at(std::size_t{1}).as_number()};
}

// --- Input hardening: well-formed JSON can still carry a non-physical
// scenario (the strict parser rejects NaN literals, but 1e999 parses to
// Inf, and RadioParams::validate's comparisons are all false on NaN).
// Every check below throws ScenarioFormatError with the JSON path.

double require_finite(double v, const std::string& path) {
    if (!std::isfinite(v)) throw ScenarioFormatError(path, "non-finite number");
    return v;
}

geom::Vec2 finite_vec2(const Json& j, const std::string& path) {
    const geom::Vec2 v = vec2_from_json(j);
    require_finite(v.x, path + "[0]");
    require_finite(v.y, path + "[1]");
    return v;
}

double require_non_negative(double v, const std::string& path) {
    require_finite(v, path);
    if (v < 0.0) throw ScenarioFormatError(path, "must be non-negative");
    return v;
}

void reject_duplicate_positions(const std::vector<geom::Vec2>& positions,
                                const std::string& what) {
    for (std::size_t a = 0; a < positions.size(); ++a) {
        for (std::size_t b = a + 1; b < positions.size(); ++b) {
            if (positions[a] == positions[b]) {
                throw ScenarioFormatError(
                    what + "[" + std::to_string(b) + "]",
                    "duplicate position (same as " + what + "[" +
                        std::to_string(a) + "])");
            }
        }
    }
}

/// Satellite hardening: a typo'd key ("radioparams", "snr_treshold_db")
/// used to be silently ignored, making the file lie about what was loaded.
/// Every object the reader consumes is now checked against its schema.
void reject_unknown_keys(const Json& obj, const std::string& path,
                         std::initializer_list<const char*> allowed) {
    for (const auto& [key, value] : obj.as_object()) {
        bool known = false;
        for (const char* a : allowed) {
            if (key == a) {
                known = true;
                break;
            }
        }
        if (!known) {
            throw ScenarioFormatError(path.empty() ? key : path + "." + key,
                                      "unknown key");
        }
    }
}

Json propagation_to_json(const wireless::PropagationModel& model) {
    Json::Object p;
    p["model"] = Json(std::string(model.kind()));
    if (const auto* ld = dynamic_cast<const wireless::LogDistanceModel*>(&model)) {
        p["path_loss_at_ref_db"] = Json(ld->path_loss_at_ref.db());
        p["exponent"] = Json(ld->exponent);
        p["ref_distance"] = Json(ld->ref_distance.meters());
        p["shadowing_sigma_db"] = Json(ld->shadowing_sigma.db());
        // Seeds round-trip exactly through the JSON double up to 2^53.
        p["shadowing_seed"] = Json(static_cast<double>(ld->shadowing_seed));
    } else if (const auto* lora =
                   dynamic_cast<const wireless::LoRaLinkBudgetModel*>(&model)) {
        p["spreading_factor"] = Json(lora->spreading_factor);
        p["bandwidth_hz"] = Json(lora->bandwidth_hz);
        p["noise_figure_db"] = Json(lora->noise_figure.db());
        p["path_exponent"] = Json(lora->path_exponent);
        p["ref_distance"] = Json(lora->ref_distance.meters());
        p["frequency_hz"] = Json(lora->frequency_hz);
    }
    return Json(std::move(p));
}

std::shared_ptr<const wireless::PropagationModel> propagation_from_json(
    const Json& j) {
    const std::string kind = j.at("model").as_string();
    if (kind == "two_ray") {
        reject_unknown_keys(j, "propagation", {"model"});
        return std::make_shared<wireless::TwoRayModel>();
    }
    if (kind == "log_distance") {
        reject_unknown_keys(j, "propagation",
                            {"model", "path_loss_at_ref_db", "exponent",
                             "ref_distance", "shadowing_sigma_db",
                             "shadowing_seed"});
        auto m = std::make_shared<wireless::LogDistanceModel>();
        m->path_loss_at_ref = units::Decibel{require_finite(
            j.get_number("path_loss_at_ref_db", m->path_loss_at_ref.db()),
            "propagation.path_loss_at_ref_db")};
        m->exponent = require_finite(j.get_number("exponent", m->exponent),
                                     "propagation.exponent");
        m->ref_distance = units::Meters{
            require_finite(j.get_number("ref_distance", m->ref_distance.meters()),
                           "propagation.ref_distance")};
        m->shadowing_sigma = units::Decibel{require_non_negative(
            j.get_number("shadowing_sigma_db", m->shadowing_sigma.db()),
            "propagation.shadowing_sigma_db")};
        m->shadowing_seed = static_cast<std::uint64_t>(require_non_negative(
            j.get_number("shadowing_seed",
                         static_cast<double>(m->shadowing_seed)),
            "propagation.shadowing_seed"));
        return m;
    }
    if (kind == "lora") {
        reject_unknown_keys(j, "propagation",
                            {"model", "spreading_factor", "bandwidth_hz",
                             "noise_figure_db", "path_exponent", "ref_distance",
                             "frequency_hz"});
        auto m = std::make_shared<wireless::LoRaLinkBudgetModel>();
        m->spreading_factor = static_cast<int>(require_finite(
            j.get_number("spreading_factor", m->spreading_factor),
            "propagation.spreading_factor"));
        m->bandwidth_hz = require_finite(
            j.get_number("bandwidth_hz", m->bandwidth_hz),
            "propagation.bandwidth_hz");
        m->noise_figure = units::Decibel{require_non_negative(
            j.get_number("noise_figure_db", m->noise_figure.db()),
            "propagation.noise_figure_db")};
        m->path_exponent = require_finite(
            j.get_number("path_exponent", m->path_exponent),
            "propagation.path_exponent");
        m->ref_distance = units::Meters{
            require_finite(j.get_number("ref_distance", m->ref_distance.meters()),
                           "propagation.ref_distance")};
        m->frequency_hz = require_finite(
            j.get_number("frequency_hz", m->frequency_hz),
            "propagation.frequency_hz");
        return m;
    }
    throw ScenarioFormatError("propagation.model",
                              "unknown propagation model '" + kind + "'");
}

Json profile_to_json(const wireless::RadioProfile& p) {
    Json::Object o;
    o["name"] = Json(p.name);
    if (p.max_power) o["max_power"] = Json(p.max_power->watts());
    o["noise_figure_db"] = Json(p.noise_figure.db());
    o["duty_cycle"] = Json(p.duty_cycle);
    return Json(std::move(o));
}

wireless::RadioProfile profile_from_json(const Json& j, const std::string& path) {
    reject_unknown_keys(j, path,
                        {"name", "max_power", "noise_figure_db", "duty_cycle"});
    wireless::RadioProfile p;
    if (j.contains("name")) p.name = j.at("name").as_string();
    if (j.contains("max_power")) {
        p.max_power = units::Watt{require_non_negative(
            j.at("max_power").as_number(), path + ".max_power")};
    }
    p.noise_figure = units::Decibel{require_non_negative(
        j.get_number("noise_figure_db", 0.0), path + ".noise_figure_db")};
    p.duty_cycle =
        require_finite(j.get_number("duty_cycle", 1.0), path + ".duty_cycle");
    return p;
}

const char* kind_name(core::NodeKind kind) {
    switch (kind) {
        case core::NodeKind::BaseStation: return "BS";
        case core::NodeKind::CoverageRs: return "RS_cover";
        case core::NodeKind::ConnectivityRs: return "RS_connect";
    }
    return "?";
}

}  // namespace

Json scenario_to_json(const core::Scenario& s) {
    // Format versioning: plain two-ray scenarios without profiles keep
    // emitting the original format 1 byte-for-byte (archived goldens and
    // external tooling keep working); the propagation/profiles extensions
    // bump the file to format 2.
    bool has_subscriber_profiles = false;
    for (const auto& sub : s.subscribers) {
        if (sub.profile.valid()) has_subscriber_profiles = true;
    }
    const bool extended = s.propagation != nullptr || !s.profiles.empty() ||
                          s.relay_profile.valid() || has_subscriber_profiles;

    Json j;
    j["format"] = Json(extended ? 2 : 1);
    j["field"] = Json(Json::Object{{"min", vec2_to_json(s.field.min)},
                                   {"max", vec2_to_json(s.field.max)}});
    j["snr_threshold_db"] = Json(s.snr_threshold_db.db());

    // Serialized as raw numbers in the canonical units of each field
    // (meters, watts, dB) — the format predates sag::units and must not
    // change shape under it.
    Json::Object radio;
    radio["tx_gain"] = Json(s.radio.tx_gain);
    radio["rx_gain"] = Json(s.radio.rx_gain);
    radio["tx_height"] = Json(s.radio.tx_height.meters());
    radio["rx_height"] = Json(s.radio.rx_height.meters());
    radio["alpha"] = Json(s.radio.alpha);
    radio["max_power"] = Json(s.radio.max_power.watts());
    radio["noise_floor"] = Json(s.radio.noise_floor.watts());
    radio["bandwidth_hz"] = Json(s.radio.bandwidth_hz);
    radio["reference_distance"] = Json(s.radio.reference_distance.meters());
    radio["ignorable_noise"] = Json(s.radio.ignorable_noise.watts());
    radio["snr_ambient_noise"] = Json(s.radio.snr_ambient_noise.watts());
    j["radio"] = Json(std::move(radio));

    if (extended) {
        if (s.propagation) j["propagation"] = propagation_to_json(*s.propagation);
        if (!s.profiles.empty()) {
            Json::Array profiles;
            for (const auto& p : s.profiles) profiles.push_back(profile_to_json(p));
            j["profiles"] = Json(std::move(profiles));
        }
        if (s.relay_profile.valid()) {
            j["relay_profile"] = Json(s.relay_profile.index());
        }
    }

    Json::Array subs;
    for (const auto& sub : s.subscribers) {
        Json::Object o{{"pos", vec2_to_json(sub.pos)},
                       {"distance_request", Json(sub.distance_request)}};
        if (sub.profile.valid()) o["profile"] = Json(sub.profile.index());
        subs.push_back(Json(std::move(o)));
    }
    j["subscribers"] = Json(std::move(subs));

    Json::Array bss;
    for (const auto& bs : s.base_stations) bss.push_back(vec2_to_json(bs.pos));
    j["base_stations"] = Json(std::move(bss));
    return j;
}

core::Scenario scenario_from_json(const Json& j) {
    const int format = static_cast<int>(j.get_number("format", 0));
    if (format != 1 && format != 2) {
        throw std::runtime_error("unsupported scenario format version");
    }
    if (format == 1) {
        // The legacy schema: format-2 blocks in a format-1 file are typos,
        // not extensions.
        reject_unknown_keys(j, "",
                            {"format", "field", "snr_threshold_db", "radio",
                             "subscribers", "base_stations"});
    } else {
        reject_unknown_keys(j, "",
                            {"format", "field", "snr_threshold_db", "radio",
                             "subscribers", "base_stations", "propagation",
                             "profiles", "relay_profile"});
    }
    core::Scenario s;
    reject_unknown_keys(j.at("field"), "field", {"min", "max"});
    const Json& field = j.at("field");
    s.field = {finite_vec2(field.at("min"), "field.min"),
               finite_vec2(field.at("max"), "field.max")};
    s.snr_threshold_db = units::Decibel{
        require_finite(j.at("snr_threshold_db").as_number(), "snr_threshold_db")};

    const Json& radio = j.at("radio");
    reject_unknown_keys(radio, "radio",
                        {"tx_gain", "rx_gain", "tx_height", "rx_height",
                         "alpha", "max_power", "noise_floor", "bandwidth_hz",
                         "reference_distance", "ignorable_noise",
                         "snr_ambient_noise"});
    s.radio.tx_gain = radio.get_number("tx_gain", s.radio.tx_gain);
    s.radio.rx_gain = radio.get_number("rx_gain", s.radio.rx_gain);
    s.radio.tx_height =
        units::Meters{radio.get_number("tx_height", s.radio.tx_height.meters())};
    s.radio.rx_height =
        units::Meters{radio.get_number("rx_height", s.radio.rx_height.meters())};
    s.radio.alpha = radio.get_number("alpha", s.radio.alpha);
    s.radio.max_power = units::Watt{require_non_negative(
        radio.get_number("max_power", s.radio.max_power.watts()),
        "radio.max_power")};
    s.radio.noise_floor = units::Watt{require_non_negative(
        radio.get_number("noise_floor", s.radio.noise_floor.watts()),
        "radio.noise_floor")};
    s.radio.bandwidth_hz = radio.get_number("bandwidth_hz", s.radio.bandwidth_hz);
    s.radio.reference_distance = units::Meters{
        radio.get_number("reference_distance", s.radio.reference_distance.meters())};
    s.radio.ignorable_noise = units::Watt{require_non_negative(
        radio.get_number("ignorable_noise", s.radio.ignorable_noise.watts()),
        "radio.ignorable_noise")};
    s.radio.snr_ambient_noise = units::Watt{require_non_negative(
        radio.get_number("snr_ambient_noise", s.radio.snr_ambient_noise.watts()),
        "radio.snr_ambient_noise")};
    // The remaining radio constants pass through RadioParams::validate
    // below, which rejects every non-positive value; NaN sneaks past its
    // comparisons, so pin finiteness here.
    require_finite(s.radio.tx_gain, "radio.tx_gain");
    require_finite(s.radio.rx_gain, "radio.rx_gain");
    require_finite(s.radio.tx_height.meters(), "radio.tx_height");
    require_finite(s.radio.rx_height.meters(), "radio.rx_height");
    require_finite(s.radio.alpha, "radio.alpha");
    require_finite(s.radio.bandwidth_hz, "radio.bandwidth_hz");
    require_finite(s.radio.reference_distance.meters(),
                   "radio.reference_distance");

    if (j.contains("propagation")) {
        s.propagation = propagation_from_json(j.at("propagation"));
    }
    if (j.contains("profiles")) {
        std::size_t pi = 0;
        for (const Json& prof : j.at("profiles").as_array()) {
            s.profiles.push_back(profile_from_json(
                prof, "profiles[" + std::to_string(pi++) + "]"));
        }
    }
    if (j.contains("relay_profile")) {
        s.relay_profile = ids::ProfileId{static_cast<std::size_t>(
            require_non_negative(j.at("relay_profile").as_number(),
                                 "relay_profile"))};
    }

    std::size_t index = 0;
    for (const Json& sub : j.at("subscribers").as_array()) {
        const std::string path = "subscribers[" + std::to_string(index++) + "]";
        reject_unknown_keys(sub, path, {"pos", "distance_request", "profile"});
        core::Subscriber parsed;
        parsed.pos = finite_vec2(sub.at("pos"), path + ".pos");
        parsed.distance_request = require_non_negative(
            sub.at("distance_request").as_number(), path + ".distance_request");
        if (sub.contains("profile")) {
            parsed.profile = ids::ProfileId{static_cast<std::size_t>(
                require_non_negative(sub.at("profile").as_number(),
                                     path + ".profile"))};
        }
        s.subscribers.push_back(parsed);
    }
    index = 0;
    for (const Json& bs : j.at("base_stations").as_array()) {
        s.base_stations.push_back(
            {finite_vec2(bs, "base_stations[" + std::to_string(index++) + "]")});
    }

    std::vector<geom::Vec2> positions;
    positions.reserve(s.subscribers.size());
    for (const auto& sub : s.subscribers) positions.push_back(sub.pos);
    reject_duplicate_positions(positions, "subscribers");
    positions.clear();
    for (const auto& bs : s.base_stations) positions.push_back(bs.pos);
    reject_duplicate_positions(positions, "base_stations");

    s.validate();
    return s;
}

Json sag_result_to_json(const core::SagResult& result) {
    Json j;
    j["feasible"] = Json(result.feasible);
    j["coverage_rs_count"] = Json(result.coverage_rs_count());
    j["connectivity_rs_count"] = Json(result.connectivity_rs_count());
    j["lower_tier_power"] = Json(result.lower_tier_power());
    j["upper_tier_power"] = Json(result.upper_tier_power());
    j["total_power"] = Json(result.total_power());

    Json::Array coverage;
    for (std::size_t i = 0; i < result.coverage.rs_count(); ++i) {
        coverage.push_back(Json(Json::Object{
            {"pos", vec2_to_json(result.coverage.rs_positions[i])},
            {"power", Json(i < result.lower_power.powers.size()
                               ? result.lower_power.powers[i]
                               : 0.0)}}));
    }
    j["coverage_rs"] = Json(std::move(coverage));

    Json::Array assignment;
    // IDs serialize as their raw index — the on-disk format stays integers.
    for (const sag::ids::RsId a : result.coverage.assignment) {
        assignment.push_back(Json(a.index()));
    }
    j["assignment"] = Json(std::move(assignment));

    Json::Array nodes;
    const auto& plan = result.connectivity;
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        nodes.push_back(Json(Json::Object{{"kind", Json(kind_name(plan.kinds[v]))},
                                          {"pos", vec2_to_json(plan.positions[v])},
                                          {"parent", Json(plan.parent[v])},
                                          {"power", Json(plan.powers[v])}}));
    }
    j["relay_tree"] = Json(std::move(nodes));
    return j;
}

void write_deployment_csv(std::ostream& os, const core::Scenario& scenario,
                          const core::CoveragePlan& coverage,
                          const core::ConnectivityPlan& connectivity) {
    (void)coverage;
    os << "kind,x,y,power,parent_x,parent_y\n";
    for (const auto& sub : scenario.subscribers) {
        os << "SS," << sub.pos.x << ',' << sub.pos.y << ",,,\n";
    }
    for (std::size_t v = 0; v < connectivity.node_count(); ++v) {
        os << kind_name(connectivity.kinds[v]) << ',' << connectivity.positions[v].x
           << ',' << connectivity.positions[v].y << ',' << connectivity.powers[v];
        if (connectivity.parent[v] != v) {
            const auto& p = connectivity.positions[connectivity.parent[v]];
            os << ',' << p.x << ',' << p.y << '\n';
        } else {
            os << ",,\n";
        }
    }
}

std::string read_text_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void write_text_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open " + path + " for writing");
    out << content;
    if (!out) throw std::runtime_error("failed writing " + path);
}

void save_scenario(const std::string& path, const core::Scenario& scenario) {
    write_text_file(path, scenario_to_json(scenario).dump(2) + "\n");
}

core::Scenario load_scenario(const std::string& path) {
    return scenario_from_json(Json::parse(read_text_file(path)));
}

}  // namespace sag::io
