#include "sag/io/scenario_io.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

namespace sag::io {

namespace {

Json vec2_to_json(const geom::Vec2& v) {
    return Json(Json::Array{Json(v.x), Json(v.y)});
}

geom::Vec2 vec2_from_json(const Json& j) {
    if (j.size() != 2) throw std::runtime_error("point must be [x, y]");
    return {j.at(std::size_t{0}).as_number(), j.at(std::size_t{1}).as_number()};
}

// --- Input hardening: well-formed JSON can still carry a non-physical
// scenario (the strict parser rejects NaN literals, but 1e999 parses to
// Inf, and RadioParams::validate's comparisons are all false on NaN).
// Every check below throws ScenarioFormatError with the JSON path.

double require_finite(double v, const std::string& path) {
    if (!std::isfinite(v)) throw ScenarioFormatError(path, "non-finite number");
    return v;
}

geom::Vec2 finite_vec2(const Json& j, const std::string& path) {
    const geom::Vec2 v = vec2_from_json(j);
    require_finite(v.x, path + "[0]");
    require_finite(v.y, path + "[1]");
    return v;
}

double require_non_negative(double v, const std::string& path) {
    require_finite(v, path);
    if (v < 0.0) throw ScenarioFormatError(path, "must be non-negative");
    return v;
}

void reject_duplicate_positions(const std::vector<geom::Vec2>& positions,
                                const std::string& what) {
    for (std::size_t a = 0; a < positions.size(); ++a) {
        for (std::size_t b = a + 1; b < positions.size(); ++b) {
            if (positions[a] == positions[b]) {
                throw ScenarioFormatError(
                    what + "[" + std::to_string(b) + "]",
                    "duplicate position (same as " + what + "[" +
                        std::to_string(a) + "])");
            }
        }
    }
}

const char* kind_name(core::NodeKind kind) {
    switch (kind) {
        case core::NodeKind::BaseStation: return "BS";
        case core::NodeKind::CoverageRs: return "RS_cover";
        case core::NodeKind::ConnectivityRs: return "RS_connect";
    }
    return "?";
}

}  // namespace

Json scenario_to_json(const core::Scenario& s) {
    Json j;
    j["format"] = Json(1);
    j["field"] = Json(Json::Object{{"min", vec2_to_json(s.field.min)},
                                   {"max", vec2_to_json(s.field.max)}});
    j["snr_threshold_db"] = Json(s.snr_threshold_db.db());

    // Serialized as raw numbers in the canonical units of each field
    // (meters, watts, dB) — the format predates sag::units and must not
    // change shape under it.
    Json::Object radio;
    radio["tx_gain"] = Json(s.radio.tx_gain);
    radio["rx_gain"] = Json(s.radio.rx_gain);
    radio["tx_height"] = Json(s.radio.tx_height.meters());
    radio["rx_height"] = Json(s.radio.rx_height.meters());
    radio["alpha"] = Json(s.radio.alpha);
    radio["max_power"] = Json(s.radio.max_power.watts());
    radio["noise_floor"] = Json(s.radio.noise_floor.watts());
    radio["bandwidth_hz"] = Json(s.radio.bandwidth_hz);
    radio["reference_distance"] = Json(s.radio.reference_distance.meters());
    radio["ignorable_noise"] = Json(s.radio.ignorable_noise.watts());
    radio["snr_ambient_noise"] = Json(s.radio.snr_ambient_noise.watts());
    j["radio"] = Json(std::move(radio));

    Json::Array subs;
    for (const auto& sub : s.subscribers) {
        subs.push_back(Json(Json::Object{
            {"pos", vec2_to_json(sub.pos)},
            {"distance_request", Json(sub.distance_request)}}));
    }
    j["subscribers"] = Json(std::move(subs));

    Json::Array bss;
    for (const auto& bs : s.base_stations) bss.push_back(vec2_to_json(bs.pos));
    j["base_stations"] = Json(std::move(bss));
    return j;
}

core::Scenario scenario_from_json(const Json& j) {
    if (static_cast<int>(j.get_number("format", 0)) != 1) {
        throw std::runtime_error("unsupported scenario format version");
    }
    core::Scenario s;
    const Json& field = j.at("field");
    s.field = {finite_vec2(field.at("min"), "field.min"),
               finite_vec2(field.at("max"), "field.max")};
    s.snr_threshold_db = units::Decibel{
        require_finite(j.at("snr_threshold_db").as_number(), "snr_threshold_db")};

    const Json& radio = j.at("radio");
    s.radio.tx_gain = radio.get_number("tx_gain", s.radio.tx_gain);
    s.radio.rx_gain = radio.get_number("rx_gain", s.radio.rx_gain);
    s.radio.tx_height =
        units::Meters{radio.get_number("tx_height", s.radio.tx_height.meters())};
    s.radio.rx_height =
        units::Meters{radio.get_number("rx_height", s.radio.rx_height.meters())};
    s.radio.alpha = radio.get_number("alpha", s.radio.alpha);
    s.radio.max_power = units::Watt{require_non_negative(
        radio.get_number("max_power", s.radio.max_power.watts()),
        "radio.max_power")};
    s.radio.noise_floor = units::Watt{require_non_negative(
        radio.get_number("noise_floor", s.radio.noise_floor.watts()),
        "radio.noise_floor")};
    s.radio.bandwidth_hz = radio.get_number("bandwidth_hz", s.radio.bandwidth_hz);
    s.radio.reference_distance = units::Meters{
        radio.get_number("reference_distance", s.radio.reference_distance.meters())};
    s.radio.ignorable_noise = units::Watt{require_non_negative(
        radio.get_number("ignorable_noise", s.radio.ignorable_noise.watts()),
        "radio.ignorable_noise")};
    s.radio.snr_ambient_noise = units::Watt{require_non_negative(
        radio.get_number("snr_ambient_noise", s.radio.snr_ambient_noise.watts()),
        "radio.snr_ambient_noise")};
    // The remaining radio constants pass through RadioParams::validate
    // below, which rejects every non-positive value; NaN sneaks past its
    // comparisons, so pin finiteness here.
    require_finite(s.radio.tx_gain, "radio.tx_gain");
    require_finite(s.radio.rx_gain, "radio.rx_gain");
    require_finite(s.radio.tx_height.meters(), "radio.tx_height");
    require_finite(s.radio.rx_height.meters(), "radio.rx_height");
    require_finite(s.radio.alpha, "radio.alpha");
    require_finite(s.radio.bandwidth_hz, "radio.bandwidth_hz");
    require_finite(s.radio.reference_distance.meters(),
                   "radio.reference_distance");

    std::size_t index = 0;
    for (const Json& sub : j.at("subscribers").as_array()) {
        const std::string path = "subscribers[" + std::to_string(index++) + "]";
        s.subscribers.push_back(
            {finite_vec2(sub.at("pos"), path + ".pos"),
             require_non_negative(sub.at("distance_request").as_number(),
                                  path + ".distance_request")});
    }
    index = 0;
    for (const Json& bs : j.at("base_stations").as_array()) {
        s.base_stations.push_back(
            {finite_vec2(bs, "base_stations[" + std::to_string(index++) + "]")});
    }

    std::vector<geom::Vec2> positions;
    positions.reserve(s.subscribers.size());
    for (const auto& sub : s.subscribers) positions.push_back(sub.pos);
    reject_duplicate_positions(positions, "subscribers");
    positions.clear();
    for (const auto& bs : s.base_stations) positions.push_back(bs.pos);
    reject_duplicate_positions(positions, "base_stations");

    s.validate();
    return s;
}

Json sag_result_to_json(const core::SagResult& result) {
    Json j;
    j["feasible"] = Json(result.feasible);
    j["coverage_rs_count"] = Json(result.coverage_rs_count());
    j["connectivity_rs_count"] = Json(result.connectivity_rs_count());
    j["lower_tier_power"] = Json(result.lower_tier_power());
    j["upper_tier_power"] = Json(result.upper_tier_power());
    j["total_power"] = Json(result.total_power());

    Json::Array coverage;
    for (std::size_t i = 0; i < result.coverage.rs_count(); ++i) {
        coverage.push_back(Json(Json::Object{
            {"pos", vec2_to_json(result.coverage.rs_positions[i])},
            {"power", Json(i < result.lower_power.powers.size()
                               ? result.lower_power.powers[i]
                               : 0.0)}}));
    }
    j["coverage_rs"] = Json(std::move(coverage));

    Json::Array assignment;
    // IDs serialize as their raw index — the on-disk format stays integers.
    for (const sag::ids::RsId a : result.coverage.assignment) {
        assignment.push_back(Json(a.index()));
    }
    j["assignment"] = Json(std::move(assignment));

    Json::Array nodes;
    const auto& plan = result.connectivity;
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        nodes.push_back(Json(Json::Object{{"kind", Json(kind_name(plan.kinds[v]))},
                                          {"pos", vec2_to_json(plan.positions[v])},
                                          {"parent", Json(plan.parent[v])},
                                          {"power", Json(plan.powers[v])}}));
    }
    j["relay_tree"] = Json(std::move(nodes));
    return j;
}

void write_deployment_csv(std::ostream& os, const core::Scenario& scenario,
                          const core::CoveragePlan& coverage,
                          const core::ConnectivityPlan& connectivity) {
    (void)coverage;
    os << "kind,x,y,power,parent_x,parent_y\n";
    for (const auto& sub : scenario.subscribers) {
        os << "SS," << sub.pos.x << ',' << sub.pos.y << ",,,\n";
    }
    for (std::size_t v = 0; v < connectivity.node_count(); ++v) {
        os << kind_name(connectivity.kinds[v]) << ',' << connectivity.positions[v].x
           << ',' << connectivity.positions[v].y << ',' << connectivity.powers[v];
        if (connectivity.parent[v] != v) {
            const auto& p = connectivity.positions[connectivity.parent[v]];
            os << ',' << p.x << ',' << p.y << '\n';
        } else {
            os << ",,\n";
        }
    }
}

std::string read_text_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void write_text_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot open " + path + " for writing");
    out << content;
    if (!out) throw std::runtime_error("failed writing " + path);
}

void save_scenario(const std::string& path, const core::Scenario& scenario) {
    write_text_file(path, scenario_to_json(scenario).dump(2) + "\n");
}

core::Scenario load_scenario(const std::string& path) {
    return scenario_from_json(Json::parse(read_text_file(path)));
}

}  // namespace sag::io
