#include "sag/io/svg.h"

#include <cmath>
#include <sstream>

namespace sag::io {

namespace {

/// Palette (colorblind-friendly): subscribers gray, BSs dark, coverage RSs
/// blue, connectivity RSs orange.
constexpr const char* kSubscriber = "#7f7f7f";
constexpr const char* kBaseStation = "#1a1a1a";
constexpr const char* kCoverageRs = "#2166ac";
constexpr const char* kConnectivityRs = "#e08214";
constexpr const char* kTreeEdge = "#b0b0b0";
constexpr const char* kAccessLink = "#cfe0ef";

class Canvas {
public:
    Canvas(const geom::Rect& world, double canvas_px)
        : world_(world), px_(canvas_px) {
        const double margin = 0.06 * canvas_px;
        scale_ = (canvas_px - 2 * margin) /
                 std::max(world.width(), world.height());
        offset_ = margin;
    }

    double x(double wx) const { return offset_ + (wx - world_.min.x) * scale_; }
    /// SVG y grows downward; world y grows upward.
    double y(double wy) const { return px_ - offset_ - (wy - world_.min.y) * scale_; }
    double len(double w) const { return w * scale_; }
    double size() const { return px_; }

private:
    geom::Rect world_;
    double px_;
    double scale_;
    double offset_;
};

void line(std::ostringstream& os, const Canvas& c, const geom::Vec2& a,
          const geom::Vec2& b, const char* stroke, double width,
          const char* dash = nullptr) {
    os << "<line x1='" << c.x(a.x) << "' y1='" << c.y(a.y) << "' x2='" << c.x(b.x)
       << "' y2='" << c.y(b.y) << "' stroke='" << stroke << "' stroke-width='"
       << width << '\'';
    if (dash) os << " stroke-dasharray='" << dash << '\'';
    os << "/>\n";
}

void circle(std::ostringstream& os, const Canvas& c, const geom::Vec2& p, double r_px,
            const char* fill, const char* stroke = nullptr,
            const char* dash = nullptr) {
    os << "<circle cx='" << c.x(p.x) << "' cy='" << c.y(p.y) << "' r='" << r_px
       << "' fill='" << fill << '\'';
    if (stroke) os << " stroke='" << stroke << "' stroke-width='1'";
    if (dash) os << " stroke-dasharray='" << dash << '\'';
    os << "/>\n";
}

void world_circle(std::ostringstream& os, const Canvas& c, const geom::Circle& wc,
                  const char* stroke, const char* dash) {
    os << "<circle cx='" << c.x(wc.center.x) << "' cy='" << c.y(wc.center.y)
       << "' r='" << c.len(wc.radius) << "' fill='none' stroke='" << stroke
       << "' stroke-width='0.8' stroke-dasharray='" << dash << "'/>\n";
}

void square(std::ostringstream& os, const Canvas& c, const geom::Vec2& p,
            double half_px, const char* fill) {
    os << "<rect x='" << c.x(p.x) - half_px << "' y='" << c.y(p.y) - half_px
       << "' width='" << 2 * half_px << "' height='" << 2 * half_px << "' fill='"
       << fill << "'/>\n";
}

void diamond(std::ostringstream& os, const Canvas& c, const geom::Vec2& p,
             double half_px, const char* fill) {
    const double cx = c.x(p.x), cy = c.y(p.y);
    os << "<polygon points='" << cx << ',' << cy - half_px << ' ' << cx + half_px
       << ',' << cy << ' ' << cx << ',' << cy + half_px << ' ' << cx - half_px << ','
       << cy << "' fill='" << fill << "'/>\n";
}

std::ostringstream document_open(const core::Scenario& scenario, const Canvas& c,
                                 const SvgOptions& options) {
    std::ostringstream os;
    os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << c.size()
       << "' height='" << c.size() << "' viewBox='0 0 " << c.size() << ' ' << c.size()
       << "'>\n";
    os << "<rect width='100%' height='100%' fill='white'/>\n";
    if (!options.title.empty()) {
        os << "<text x='" << c.size() / 2
           << "' y='18' text-anchor='middle' font-family='sans-serif' "
              "font-size='14'>"
           << options.title << "</text>\n";
    }
    // Field boundary.
    os << "<rect x='" << c.x(scenario.field.min.x) << "' y='"
       << c.y(scenario.field.max.y) << "' width='" << c.len(scenario.field.width())
       << "' height='" << c.len(scenario.field.height())
       << "' fill='none' stroke='#d0d0d0' stroke-width='1'/>\n";
    return os;
}

void draw_scenario_layer(std::ostringstream& os, const Canvas& c,
                         const core::Scenario& scenario, const SvgOptions& options) {
    if (options.draw_feasible_circles) {
        for (const sag::ids::SsId j : scenario.ss_ids()) {
            world_circle(os, c, scenario.feasible_circle(j), kSubscriber, "3,3");
        }
    }
    for (const auto& sub : scenario.subscribers) {
        circle(os, c, sub.pos, 3.5, "white", kSubscriber);
    }
    for (const auto& bs : scenario.base_stations) {
        square(os, c, bs.pos, 5.0, kBaseStation);
    }
}

}  // namespace

std::string render_scenario_svg(const core::Scenario& scenario,
                                const SvgOptions& options) {
    const Canvas c(scenario.field, options.canvas_px);
    std::ostringstream os = document_open(scenario, c, options);
    draw_scenario_layer(os, c, scenario, options);
    os << "</svg>\n";
    return os.str();
}

std::string render_deployment_svg(const core::Scenario& scenario,
                                  const core::CoveragePlan& coverage,
                                  const core::ConnectivityPlan& connectivity,
                                  const SvgOptions& options) {
    const Canvas c(scenario.field, options.canvas_px);
    std::ostringstream os = document_open(scenario, c, options);

    // Edges first so markers draw on top.
    if (options.draw_tree_edges) {
        for (std::size_t v = 0; v < connectivity.node_count(); ++v) {
            if (connectivity.parent[v] != v) {
                line(os, c, connectivity.positions[v],
                     connectivity.positions[connectivity.parent[v]], kTreeEdge, 1.2);
            }
        }
    }
    if (options.draw_access_links) {
        for (const sag::ids::SsId j : scenario.ss_ids()) {
            if (j.index() < coverage.assignment.size() &&
                coverage.assignment[j].valid() &&
                coverage.assignment[j].index() < coverage.rs_count()) {
                line(os, c, scenario.subscriber(j).pos,
                     coverage.rs_position(coverage.assignment[j]), kAccessLink, 1.0,
                     "2,2");
            }
        }
    }

    draw_scenario_layer(os, c, scenario, options);

    for (std::size_t v = 0; v < connectivity.node_count(); ++v) {
        switch (connectivity.kinds[v]) {
            case core::NodeKind::BaseStation:
                break;  // drawn by the scenario layer
            case core::NodeKind::CoverageRs:
                circle(os, c, connectivity.positions[v], 4.0, kCoverageRs);
                break;
            case core::NodeKind::ConnectivityRs:
                diamond(os, c, connectivity.positions[v], 4.0, kConnectivityRs);
                break;
        }
    }

    // Legend.
    const double lx = 14.0;
    double ly = c.size() - 64.0;
    const auto legend_row = [&](const char* label, const char* color,
                                const char* shape) {
        if (std::string(shape) == "circle") {
            os << "<circle cx='" << lx << "' cy='" << ly << "' r='4' fill='" << color
               << "'/>";
        } else if (std::string(shape) == "square") {
            os << "<rect x='" << lx - 4 << "' y='" << ly - 4
               << "' width='8' height='8' fill='" << color << "'/>";
        } else {
            os << "<polygon points='" << lx << ',' << ly - 4 << ' ' << lx + 4 << ','
               << ly << ' ' << lx << ',' << ly + 4 << ' ' << lx - 4 << ',' << ly
               << "' fill='" << color << "'/>";
        }
        os << "<text x='" << lx + 10 << "' y='" << ly + 4
           << "' font-family='sans-serif' font-size='11'>" << label << "</text>\n";
        ly += 16.0;
    };
    legend_row("subscriber", kSubscriber, "circle");
    legend_row("base station", kBaseStation, "square");
    legend_row("coverage RS", kCoverageRs, "circle");
    legend_row("connectivity RS", kConnectivityRs, "diamond");

    os << "</svg>\n";
    return os.str();
}

}  // namespace sag::io
