#pragma once

// sag::units — zero-overhead strong types for the physical quantities the
// SAG pipeline juggles: linear power (Watt, Milliwatt), logarithmic power
// (DecibelMilliwatt), logarithmic ratios (Decibel), linear SNR ratios
// (SnrRatio), and distances (Meters).
//
// Why: the paper mixes dB thresholds (β = -15 dB), linear "power units"
// (P_max = 50), and distance requests (30-40 length units) in the same
// formulas, and a single silently-mixed operand turns a Fig. 4 curve into
// a plausible-looking lie. Each wrapper here holds exactly one double —
// same size, same alignment, trivially copyable, so it compiles to the
// bare scalar — but the type system only admits the physically meaningful
// operations:
//
//   * Watt + Watt, Watt - Watt, Watt * scalar      (powers add linearly)
//   * Watt / Watt -> SnrRatio                      (power ratio)
//   * SnrRatio * Watt -> Watt                      (β * interference)
//   * Decibel + Decibel                            (gains compose in dB)
//   * DecibelMilliwatt ± Decibel -> DecibelMilliwatt
//   * DecibelMilliwatt - DecibelMilliwatt -> Decibel
//   * Meters ± Meters, Meters / Meters -> scalar
//
// and every dB <-> linear crossing is an explicit, named conversion
// (`to_db`, `to_ratio`, `to_dbm`, `to_watts`, ...). `Watt + Decibel` is a
// compile error (tests/units_compile_fail.cpp proves it stays one).
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full contract):
//   * Bulk storage (std::vector<double>, std::span<const double>) stays
//     raw double and is documented as watts / linear ratios; the strong
//     types guard the scalar boundaries where mixups actually happen.
//   * Decibel is a *relative* quantity (a ratio in log space);
//     DecibelMilliwatt is *absolute* power referenced to 1 mW. They do
//     not interconvert without saying what they are relative to.
//   * `.value()` is the generic escape hatch back to double. Outside
//     src/units every `.value()` call site must carry a
//     `// SAG_RAW_OK: <why>` justification — sag_lint's raw-escape rule
//     enforces it. The named accessors (`watts()`, `ratio()`, `db()`,
//     ...) are the preferred crossing: they say what the double means.

#include <cmath>
#include <compare>
#include <cstddef>
#include <span>
#include <type_traits>

namespace sag::units {

class Watt;
class Milliwatt;
class Decibel;
class DecibelMilliwatt;

/// Dimensionless linear power ratio (SNR, path gain applied to a power,
/// a dB value brought back to linear). β thresholds live here once
/// converted from dB.
class SnrRatio {
public:
    constexpr SnrRatio() = default;
    explicit constexpr SnrRatio(double ratio) : v_(ratio) {}

    constexpr double ratio() const { return v_; }
    constexpr double value() const { return v_; }

    /// 10 * log10(ratio), the dB view of this ratio.
    Decibel to_db() const;

    friend constexpr auto operator<=>(SnrRatio, SnrRatio) = default;

    friend constexpr SnrRatio operator*(SnrRatio a, SnrRatio b) {
        return SnrRatio{a.v_ * b.v_};
    }
    friend constexpr SnrRatio operator/(SnrRatio a, SnrRatio b) {
        return SnrRatio{a.v_ / b.v_};
    }
    friend constexpr SnrRatio operator*(SnrRatio r, double s) { return SnrRatio{r.v_ * s}; }
    friend constexpr SnrRatio operator*(double s, SnrRatio r) { return SnrRatio{s * r.v_}; }
    friend constexpr SnrRatio operator/(SnrRatio r, double s) { return SnrRatio{r.v_ / s}; }

private:
    double v_ = 0.0;
};

/// Linear transmit/receive power in watts (the paper's abstract "power
/// unit"; the two-ray model is scale-free so the unit name is a label
/// for the linear domain, not an SI claim).
class Watt {
public:
    constexpr Watt() = default;
    explicit constexpr Watt(double watts) : v_(watts) {}

    constexpr double watts() const { return v_; }
    constexpr double value() const { return v_; }

    constexpr Milliwatt to_milliwatts() const;
    /// 10 * log10(watts / 1 mW): absolute power on the dBm scale.
    DecibelMilliwatt to_dbm() const;

    friend constexpr auto operator<=>(Watt, Watt) = default;

    friend constexpr Watt operator+(Watt a, Watt b) { return Watt{a.v_ + b.v_}; }
    friend constexpr Watt operator-(Watt a, Watt b) { return Watt{a.v_ - b.v_}; }
    constexpr Watt operator-() const { return Watt{-v_}; }
    constexpr Watt& operator+=(Watt o) {
        v_ += o.v_;
        return *this;
    }
    constexpr Watt& operator-=(Watt o) {
        v_ -= o.v_;
        return *this;
    }
    friend constexpr Watt operator*(Watt w, double s) { return Watt{w.v_ * s}; }
    friend constexpr Watt operator*(double s, Watt w) { return Watt{s * w.v_}; }
    friend constexpr Watt operator/(Watt w, double s) { return Watt{w.v_ / s}; }
    /// Ratio of two powers: the only way Watt leaves the linear-power
    /// dimension, and it lands in SnrRatio, not bare double.
    friend constexpr SnrRatio operator/(Watt a, Watt b) { return SnrRatio{a.v_ / b.v_}; }
    /// Scale a power by a linear ratio (β * interference, gain * power).
    friend constexpr Watt operator*(SnrRatio r, Watt w) { return Watt{r.ratio() * w.v_}; }
    friend constexpr Watt operator*(Watt w, SnrRatio r) { return Watt{w.v_ * r.ratio()}; }
    friend constexpr Watt operator/(Watt w, SnrRatio r) { return Watt{w.v_ / r.ratio()}; }

private:
    double v_ = 0.0;
};

/// Linear power in milliwatts (the dBm reference scale).
class Milliwatt {
public:
    constexpr Milliwatt() = default;
    explicit constexpr Milliwatt(double milliwatts) : v_(milliwatts) {}

    constexpr double milliwatts() const { return v_; }
    constexpr double value() const { return v_; }

    constexpr Watt to_watts() const { return Watt{v_ * 1e-3}; }
    DecibelMilliwatt to_dbm() const;

    friend constexpr auto operator<=>(Milliwatt, Milliwatt) = default;

    friend constexpr Milliwatt operator+(Milliwatt a, Milliwatt b) {
        return Milliwatt{a.v_ + b.v_};
    }
    friend constexpr Milliwatt operator-(Milliwatt a, Milliwatt b) {
        return Milliwatt{a.v_ - b.v_};
    }
    friend constexpr Milliwatt operator*(Milliwatt m, double s) {
        return Milliwatt{m.v_ * s};
    }
    friend constexpr Milliwatt operator*(double s, Milliwatt m) {
        return Milliwatt{s * m.v_};
    }
    friend constexpr Milliwatt operator/(Milliwatt m, double s) {
        return Milliwatt{m.v_ / s};
    }
    friend constexpr SnrRatio operator/(Milliwatt a, Milliwatt b) {
        return SnrRatio{a.v_ / b.v_};
    }

private:
    double v_ = 0.0;
};

/// Relative quantity in decibels: an SNR threshold, a gain, a margin.
/// Adding Decibels composes gains (multiplication in linear space).
class Decibel {
public:
    constexpr Decibel() = default;
    explicit constexpr Decibel(double db) : v_(db) {}

    constexpr double db() const { return v_; }
    constexpr double value() const { return v_; }

    /// 10^(db / 10): the linear ratio this dB value denotes.
    SnrRatio to_ratio() const { return SnrRatio{std::pow(10.0, v_ / 10.0)}; }

    friend constexpr auto operator<=>(Decibel, Decibel) = default;

    friend constexpr Decibel operator+(Decibel a, Decibel b) {
        return Decibel{a.v_ + b.v_};
    }
    friend constexpr Decibel operator-(Decibel a, Decibel b) {
        return Decibel{a.v_ - b.v_};
    }
    constexpr Decibel operator-() const { return Decibel{-v_}; }
    friend constexpr Decibel operator*(Decibel d, double s) { return Decibel{d.v_ * s}; }
    friend constexpr Decibel operator*(double s, Decibel d) { return Decibel{s * d.v_}; }
    friend constexpr Decibel operator/(Decibel d, double s) { return Decibel{d.v_ / s}; }

private:
    double v_ = 0.0;
};

/// Absolute power on the logarithmic scale, referenced to 1 mW.
/// Offsetting by a Decibel stays absolute; differencing two absolute
/// levels yields the relative Decibel between them.
class DecibelMilliwatt {
public:
    constexpr DecibelMilliwatt() = default;
    explicit constexpr DecibelMilliwatt(double dbm) : v_(dbm) {}

    constexpr double dbm() const { return v_; }
    constexpr double value() const { return v_; }

    Milliwatt to_milliwatts() const { return Milliwatt{std::pow(10.0, v_ / 10.0)}; }
    Watt to_watts() const { return to_milliwatts().to_watts(); }

    friend constexpr auto operator<=>(DecibelMilliwatt, DecibelMilliwatt) = default;

    friend constexpr DecibelMilliwatt operator+(DecibelMilliwatt p, Decibel g) {
        return DecibelMilliwatt{p.v_ + g.db()};
    }
    friend constexpr DecibelMilliwatt operator+(Decibel g, DecibelMilliwatt p) {
        return DecibelMilliwatt{g.db() + p.v_};
    }
    friend constexpr DecibelMilliwatt operator-(DecibelMilliwatt p, Decibel g) {
        return DecibelMilliwatt{p.v_ - g.db()};
    }
    friend constexpr Decibel operator-(DecibelMilliwatt a, DecibelMilliwatt b) {
        return Decibel{a.v_ - b.v_};
    }

private:
    double v_ = 0.0;
};

/// Distance in the paper's length units (meters for concreteness).
class Meters {
public:
    constexpr Meters() = default;
    explicit constexpr Meters(double meters) : v_(meters) {}

    constexpr double meters() const { return v_; }
    constexpr double value() const { return v_; }

    friend constexpr auto operator<=>(Meters, Meters) = default;

    friend constexpr Meters operator+(Meters a, Meters b) { return Meters{a.v_ + b.v_}; }
    friend constexpr Meters operator-(Meters a, Meters b) { return Meters{a.v_ - b.v_}; }
    friend constexpr Meters operator*(Meters m, double s) { return Meters{m.v_ * s}; }
    friend constexpr Meters operator*(double s, Meters m) { return Meters{s * m.v_}; }
    friend constexpr Meters operator/(Meters m, double s) { return Meters{m.v_ / s}; }
    friend constexpr double operator/(Meters a, Meters b) { return a.v_ / b.v_; }

private:
    double v_ = 0.0;
};

constexpr Milliwatt Watt::to_milliwatts() const { return Milliwatt{v_ * 1e3}; }

inline Decibel SnrRatio::to_db() const { return Decibel{10.0 * std::log10(v_)}; }

inline DecibelMilliwatt Watt::to_dbm() const {
    return DecibelMilliwatt{10.0 * std::log10(v_ * 1e3)};
}

inline DecibelMilliwatt Milliwatt::to_dbm() const {
    return DecibelMilliwatt{10.0 * std::log10(v_)};
}

// --- Named free-function conversions (the explicit crossing points) ------

/// Linear ratio -> dB. to_db(from_db(x)) == x within 1e-12 (tested).
inline Decibel to_db(SnrRatio r) { return r.to_db(); }
/// dB -> linear ratio.
inline SnrRatio from_db(Decibel d) { return d.to_ratio(); }
/// Linear watts -> absolute dBm.
inline DecibelMilliwatt to_dbm(Watt w) { return w.to_dbm(); }
/// Absolute dBm -> linear watts.
inline Watt from_dbm(DecibelMilliwatt p) { return p.to_watts(); }

// --- User-defined literals ----------------------------------------------

inline namespace literals {
constexpr Watt operator""_W(long double v) { return Watt{static_cast<double>(v)}; }
constexpr Watt operator""_W(unsigned long long v) {
    return Watt{static_cast<double>(v)};
}
constexpr Milliwatt operator""_mW(long double v) {
    return Milliwatt{static_cast<double>(v)};
}
constexpr Milliwatt operator""_mW(unsigned long long v) {
    return Milliwatt{static_cast<double>(v)};
}
constexpr Decibel operator""_dB(long double v) { return Decibel{static_cast<double>(v)}; }
constexpr Decibel operator""_dB(unsigned long long v) {
    return Decibel{static_cast<double>(v)};
}
constexpr DecibelMilliwatt operator""_dBm(long double v) {
    return DecibelMilliwatt{static_cast<double>(v)};
}
constexpr DecibelMilliwatt operator""_dBm(unsigned long long v) {
    return DecibelMilliwatt{static_cast<double>(v)};
}
constexpr Meters operator""_m(long double v) { return Meters{static_cast<double>(v)}; }
constexpr Meters operator""_m(unsigned long long v) {
    return Meters{static_cast<double>(v)};
}
}  // namespace literals

// --- Zero-overhead guarantees (the acceptance contract) ------------------

namespace detail {
template <class T>
inline constexpr bool kZeroOverhead = sizeof(T) == sizeof(double) &&
                                      alignof(T) == alignof(double) &&
                                      std::is_trivially_copyable_v<T> &&
                                      std::is_standard_layout_v<T> &&
                                      std::is_nothrow_default_constructible_v<T>;
}  // namespace detail

static_assert(detail::kZeroOverhead<Watt>);
static_assert(detail::kZeroOverhead<Milliwatt>);
static_assert(detail::kZeroOverhead<Decibel>);
static_assert(detail::kZeroOverhead<DecibelMilliwatt>);
static_assert(detail::kZeroOverhead<Meters>);
static_assert(detail::kZeroOverhead<SnrRatio>);

// --- Typed views over bulk double buffers --------------------------------

/// Read-only unit-typed view of a structure-of-arrays double buffer.
///
/// Bulk storage stays `std::vector<double>` / `std::span<const double>` by
/// convention (see the header comment), but the *boundaries* that hand
/// such a buffer to a kernel can still say what the doubles mean:
/// `UnitSpan<Meters>` for a coordinate column, `UnitSpan<Watt>` for a
/// power column. Element access returns the strong type; `raw()` is the
/// explicit escape back to the double buffer for vector kernels. The view
/// is exactly a `std::span<const double>` in memory — no overhead on the
/// hot path (static_asserted below).
template <class Unit>
class UnitSpan {
    static_assert(detail::kZeroOverhead<Unit>,
                  "UnitSpan requires a zero-overhead unit wrapper");

public:
    constexpr UnitSpan() = default;
    explicit constexpr UnitSpan(std::span<const double> raw) : raw_(raw) {}

    constexpr std::size_t size() const { return raw_.size(); }
    constexpr bool empty() const { return raw_.empty(); }
    constexpr Unit operator[](std::size_t i) const { return Unit{raw_[i]}; }

    /// The explicit crossing back into the bulk-buffer convention.
    constexpr std::span<const double> raw() const { return raw_; }
    constexpr const double* data() const { return raw_.data(); }

private:
    std::span<const double> raw_;
};

using MetersSpan = UnitSpan<Meters>;
using WattSpan = UnitSpan<Watt>;

static_assert(sizeof(MetersSpan) == sizeof(std::span<const double>));
static_assert(sizeof(WattSpan) == sizeof(std::span<const double>));

}  // namespace sag::units
