#include "sag/serve/session.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <utility>

#include "sag/core/candidates.h"
#include "sag/core/feasibility.h"
#include "sag/core/power.h"
#include "sag/core/ucra.h"
#include "sag/geometry/vec2.h"
#include "sag/obs/obs.h"
#include "sag/opt/power_control.h"

namespace sag::serve {

namespace {

/// Per-link path gains plan-RS x covered-SS for the fixed-point stage
/// (kernel resolved once), mirroring resilience::repair's matrix.
std::vector<std::vector<double>> gain_matrix(const core::Scenario& covered,
                                             const std::vector<geom::Vec2>& rs_pos) {
    const wireless::GainKernel kernel = covered.gain_kernel();
    std::vector<std::vector<double>> g(
        rs_pos.size(), std::vector<double>(covered.subscriber_count()));
    for (std::size_t i = 0; i < rs_pos.size(); ++i) {
        for (std::size_t k = 0; k < covered.subscriber_count(); ++k) {
            const geom::Vec2& ss = covered.subscribers[k].pos;
            g[i][k] = kernel.gain(rs_pos[i], ss, geom::distance(rs_pos[i], ss));
        }
    }
    return g;
}

}  // namespace

Session::Session(core::Scenario scenario, const core::SagResult& deployment,
                 const ServeOptions& options)
    : scenario_(std::move(scenario)),
      options_(options),
      field_(scenario_, std::span<const geom::Vec2>{},
             std::span<const double>{}) {
    init_from_deployment(deployment);
}

Session::Session(core::Scenario scenario, const ServeOptions& options)
    : Session(scenario, core::solve_sag(scenario, options.solve), options) {}

Session::~Session() {
    // A background re-solve captures `this`; drain it before teardown.
    if (pool_) pool_->wait_idle();
}

void Session::init_from_deployment(const core::SagResult& deployment) {
    const double p_max = scenario_.rs_max_power().watts();
    rs_pos_ = deployment.coverage.rs_positions;
    rs_cap_.assign(rs_pos_.size(), p_max);
    rs_dead_.assign(rs_pos_.size(), false);
    failures_ = {};
    field_ = core::SnrField(scenario_, rs_pos_, rs_cap_);

    server_.assign(scenario_.subscriber_count(), kUnserved);
    slot_key_.resize(scenario_.subscriber_count());
    for (std::size_t k = 0; k < slot_key_.size(); ++k) slot_key_[k] = k;
    next_key_ = slot_key_.size();
    for (ids::SsId j : scenario_.ss_ids()) {
        const ids::RsId rs = deployment.coverage.assignment[j];
        if (rs != ids::RsId::invalid() && rs.index() < rs_pos_.size()) {
            server_[j.index()] = rs.index();
        }
    }
    assigned_this_event_.assign(server_.size(), false);

    alloc_.assign(rs_pos_.size(), 0.0);
    const std::size_t n =
        std::min(alloc_.size(), deployment.lower_power.powers.size());
    for (std::size_t i = 0; i < n; ++i) {
        alloc_[i] = deployment.lower_power.powers[i];
    }
    conn_ = deployment.connectivity;
    // The deployment's backhaul was built over its full coverage plan.
    conn_active_.resize(rs_pos_.size());
    std::iota(conn_active_.begin(), conn_active_.end(), std::size_t{0});
    backhaul_dirty_ = false;
    // Trust the pipeline's own verification verdict for the seed plan;
    // every subsequent event re-verifies independently.
    verified_ = deployment.feasible;

    baseline_rs_ = active_rs_count();
    baseline_power_ = total_power();
    resolve_backoff_ = std::max<std::size_t>(1, options_.resolve_backoff_start);
    next_resolve_allowed_ = 0;
    if (options_.threads >= 2) pool_ = std::make_unique<exec::ThreadPool>(1);
}

std::size_t Session::find_slot(std::uint64_t key) const {
    for (std::size_t k = 0; k < slot_key_.size(); ++k) {
        if (slot_key_[k] == key) return k;
    }
    return kUnserved;
}

std::string Session::validate(const Event& e) const {
    const auto finite_pos = [&] {
        return std::isfinite(e.pos.x) && std::isfinite(e.pos.y);
    };
    const auto valid_rate = [&] {
        return std::isfinite(e.distance_request) && e.distance_request > 0.0;
    };
    switch (e.kind) {
        case EventKind::SsJoin:
            if (!finite_pos()) return "non-finite position";
            if (!valid_rate()) return "non-positive distance request";
            if (find_slot(e.key) != kUnserved) return "duplicate subscriber key";
            return {};
        case EventKind::SsLeave:
            if (find_slot(e.key) == kUnserved) return "unknown subscriber key";
            return {};
        case EventKind::SsMove:
            if (find_slot(e.key) == kUnserved) return "unknown subscriber key";
            if (!finite_pos()) return "non-finite position";
            return {};
        case EventKind::SsRate:
            if (find_slot(e.key) == kUnserved) return "unknown subscriber key";
            if (!valid_rate()) return "non-positive distance request";
            return {};
        case EventKind::RsFail:
        case EventKind::RsDegrade:
        case EventKind::RsRecover: {
            if (e.rs == ids::RsId::invalid() || e.rs.index() >= rs_pos_.size()) {
                return "RS slot out of range";
            }
            const bool dead = rs_dead_[e.rs.index()];
            if (e.kind == EventKind::RsFail && dead) return "RS already failed";
            if (e.kind == EventKind::RsRecover && !dead) return "RS is not failed";
            if (e.kind == EventKind::RsDegrade) {
                if (dead) return "cannot degrade a failed RS";
                if (!(std::isfinite(e.factor) && e.factor > 0.0 &&
                      e.factor <= 1.0)) {
                    return "degradation factor outside (0, 1]";
                }
            }
            return {};
        }
    }
    return "unknown event kind";
}

void Session::apply_mutation(const Event& e) {
    const double p_max = scenario_.rs_max_power().watts();
    switch (e.kind) {
        case EventKind::SsJoin: {
            scenario_.subscribers.emplace_back(e.pos, e.distance_request);
            server_.push_back(kUnserved);
            slot_key_.push_back(e.key);
            next_key_ = std::max(next_key_, e.key + 1);
            field_.add_subscriber(ids::SsId{scenario_.subscriber_count() - 1});
            backhaul_dirty_ = true;
            break;
        }
        case EventKind::SsLeave: {
            // Swap-remove keeps the slot <-> SsId <-> field-slot identity
            // dense: the last subscriber moves into the vacated slot.
            const std::size_t k = find_slot(e.key);
            const std::size_t last = slot_key_.size() - 1;
            if (k != last) {
                scenario_.subscribers[k] = scenario_.subscribers[last];
                server_[k] = server_[last];
                slot_key_[k] = slot_key_[last];
            }
            scenario_.subscribers.pop_back();
            server_.pop_back();
            slot_key_.pop_back();
            field_.remove_subscriber(ids::SsId{last});
            if (k != last) field_.update_subscriber(ids::SsId{k});
            backhaul_dirty_ = true;
            break;
        }
        case EventKind::SsMove: {
            const std::size_t k = find_slot(e.key);
            scenario_.subscribers[k].pos = e.pos;
            field_.update_subscriber(ids::SsId{k});
            break;
        }
        case EventKind::SsRate: {
            const std::size_t k = find_slot(e.key);
            scenario_.subscribers[k].distance_request = e.distance_request;
            field_.update_subscriber(ids::SsId{k});
            backhaul_dirty_ = true;  // hop bounds derive from rate requests
            break;
        }
        case EventKind::RsFail: {
            const std::size_t i = e.rs.index();
            rs_dead_[i] = true;
            rs_cap_[i] = 0.0;
            alloc_[i] = 0.0;
            field_.set_power(ids::RsId{i}, units::Watt{0.0});
            failures_.coverage_down.push_back(ids::RsId{i});
            std::sort(failures_.coverage_down.begin(),
                      failures_.coverage_down.end());
            break;
        }
        case EventKind::RsDegrade: {
            const std::size_t i = e.rs.index();
            rs_cap_[i] = std::min(rs_cap_[i], e.factor * p_max);
            alloc_[i] = std::min(alloc_[i], rs_cap_[i]);
            field_.set_power(ids::RsId{i}, units::Watt{rs_cap_[i]});
            bool found = false;
            for (resilience::Degradation& d : failures_.degraded) {
                if (d.rs == e.rs) {
                    d.factor = std::min(d.factor, e.factor);
                    found = true;
                }
            }
            if (!found) {
                failures_.degraded.push_back({e.rs, e.factor});
                std::sort(failures_.degraded.begin(), failures_.degraded.end(),
                          [](const resilience::Degradation& a,
                             const resilience::Degradation& b) {
                              return a.rs < b.rs;
                          });
            }
            break;
        }
        case EventKind::RsRecover: {
            // Recovery means replaced hardware: full cap, degradation
            // history cleared.
            const std::size_t i = e.rs.index();
            rs_dead_[i] = false;
            rs_cap_[i] = p_max;
            field_.set_power(ids::RsId{i}, units::Watt{p_max});
            std::erase(failures_.coverage_down, e.rs);
            std::erase_if(failures_.degraded,
                          [&](const resilience::Degradation& d) {
                              return d.rs == e.rs;
                          });
            break;
        }
    }
}

bool Session::can_serve(std::size_t rs, std::size_t slot) const {
    // The three verify_coverage checks at placement-phase optimism
    // (everyone at their cap), against the probe field's cached totals —
    // the same contract as resilience::repair's can_serve.
    if (rs_dead_[rs]) return false;
    const core::Subscriber& s = scenario_.subscribers[slot];
    const double dist = geom::distance(rs_pos_[rs], s.pos);
    if (dist > s.distance_request + 1e-6) return false;
    const ids::SsId j{slot};
    const units::Watt rx =
        scenario_.received_power(units::Watt{rs_cap_[rs]}, rs_pos_[rs], s.pos);
    if (rx < scenario_.min_rx_power(j) * (1.0 - 1e-9)) return false;
    return field_.snr_of(j, ids::RsId{rs}) >=
           scenario_.snr_threshold_linear() * (1.0 - 1e-9);
}

Session::ActiveView Session::build_view() const {
    ActiveView v;
    std::vector<std::size_t> load(rs_pos_.size(), 0);
    for (std::size_t k = 0; k < server_.size(); ++k) {
        if (server_[k] != kUnserved) ++load[server_[k]];
    }
    std::vector<std::size_t> pool_to_plan(rs_pos_.size(), kUnserved);
    for (std::size_t r = 0; r < rs_pos_.size(); ++r) {
        assert(!(rs_dead_[r] && load[r] > 0) &&
               "dead RS with load: the candidate scan must clear it");
        if (rs_dead_[r] || load[r] == 0) continue;
        pool_to_plan[r] = v.plan.rs_positions.size();
        v.active.push_back(r);
        v.plan.rs_positions.push_back(rs_pos_[r]);
        v.caps.push_back(rs_cap_[r]);
    }
    v.covered_scenario = scenario_;
    v.covered_scenario.subscribers.clear();
    for (std::size_t k = 0; k < server_.size(); ++k) {
        if (server_[k] == kUnserved) continue;
        v.covered_slots.push_back(k);
        v.covered_scenario.subscribers.push_back(scenario_.subscribers[k]);
    }
    v.plan.assignment.resize(v.covered_slots.size());
    for (std::size_t c = 0; c < v.covered_slots.size(); ++c) {
        v.plan.assignment[ids::SsId{c}] =
            ids::RsId{pool_to_plan[server_[v.covered_slots[c]]]};
    }
    v.plan.feasible = true;
    return v;
}

void Session::rehome(const std::vector<std::size_t>& candidates,
                     EventOutcome& out) {
    if (candidates.empty()) return;
    SAG_OBS_SPAN("serve.rehome");
    std::vector<std::size_t> order(rs_pos_.size());
    for (const std::size_t k : candidates) {
        const geom::Vec2& sp = scenario_.subscribers[k].pos;
        std::iota(order.begin(), order.end(), std::size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double da = geom::distance_sq(rs_pos_[a], sp);
                      const double db = geom::distance_sq(rs_pos_[b], sp);
                      return da != db ? da < db : a < b;
                  });
        for (const std::size_t rs : order) {
            if (!can_serve(rs, k)) continue;
            server_[k] = rs;
            assigned_this_event_[k] = true;
            ++out.rehomed;
            break;
        }
    }
    SAG_OBS_COUNT_ADD("serve.rehomed_ss", out.rehomed);
}

void Session::patch(EventOutcome& out) {
    SAG_OBS_SPAN("serve.patch");
    std::vector<std::size_t> unreached;
    for (std::size_t k = 0; k < server_.size(); ++k) {
        if (server_[k] == kUnserved) unreached.push_back(k);
    }
    if (unreached.empty()) return;

    core::Scenario orphan_view = scenario_;
    orphan_view.subscribers.clear();
    for (const std::size_t k : unreached) {
        orphan_view.subscribers.push_back(scenario_.subscribers[k]);
    }
    std::vector<geom::Vec2> cands = core::prune_useless_candidates(
        orphan_view, core::iac_candidates(orphan_view));
    // A candidate can coincide with an alive pool RS (the plan drew from
    // the same IAC pool); co-located transmitters are degenerate, drop
    // them. Dead slots are vacated sites and stay available.
    std::erase_if(cands, [&](const geom::Vec2& c) {
        for (std::size_t r = 0; r < rs_pos_.size(); ++r) {
            if (!rs_dead_[r] && rs_pos_[r] == c) return true;
        }
        return false;
    });

    const double p_max = scenario_.rs_max_power().watts();
    const auto trial_can_serve = [&](const geom::Vec2& site, ids::RsId trial,
                                     std::size_t slot) {
        const core::Subscriber& s = scenario_.subscribers[slot];
        if (geom::distance(site, s.pos) > s.distance_request + 1e-6) return false;
        const ids::SsId j{slot};
        const units::Watt rx =
            scenario_.received_power(units::Watt{p_max}, site, s.pos);
        if (rx < scenario_.min_rx_power(j) * (1.0 - 1e-9)) return false;
        return field_.snr_of(j, trial) >=
               scenario_.snr_threshold_linear() * (1.0 - 1e-9);
    };

    while (!unreached.empty() &&
           out.patched < options_.max_new_relays_per_event && !cands.empty()) {
        // Greedy max coverage: the candidate whose P_max relay would
        // serve the most still-unreached SSs, probed via a rolled-back
        // add_rs delta so the field never sees uncommitted interference.
        std::size_t best_cand = cands.size();
        std::size_t best_count = 0;
        for (std::size_t c = 0; c < cands.size(); ++c) {
            core::SnrField::Transaction probe(field_);
            const ids::RsId trial = field_.add_rs(cands[c], units::Watt{p_max});
            std::size_t count = 0;
            for (const std::size_t k : unreached) {
                if (trial_can_serve(cands[c], trial, k)) ++count;
            }
            if (count > best_count) {
                best_count = count;
                best_cand = c;
            }
        }
        if (best_count == 0) break;  // nobody reachable: stop patching

        const geom::Vec2 site = cands[best_cand];
        cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(best_cand));
        field_.add_rs(site, units::Watt{p_max});
        rs_pos_.push_back(site);
        rs_cap_.push_back(p_max);
        rs_dead_.push_back(false);
        alloc_.push_back(0.0);
        const std::size_t added = rs_pos_.size() - 1;
        ++out.patched;
        std::vector<std::size_t> still;
        for (const std::size_t k : unreached) {
            if (can_serve(added, k)) {
                server_[k] = added;
                assigned_this_event_[k] = true;
            } else {
                still.push_back(k);
            }
        }
        unreached = std::move(still);
    }
    SAG_OBS_COUNT_ADD("serve.patched_relays", out.patched);
}

void Session::reallocate_power(EventOutcome& out) {
    SAG_OBS_SPAN("serve.power");
    const int max_rounds = std::max(1, options_.max_power_rounds);
    for (int round = 0; round < max_rounds; ++round) {
        const ActiveView v = build_view();
        std::fill(alloc_.begin(), alloc_.end(), 0.0);
        if (v.plan.rs_count() == 0) return;

        std::vector<double> floors(v.plan.rs_count(), 0.0);
        for (ids::RsId i : v.plan.rs_ids()) {
            floors[i.index()] = std::min(
                core::coverage_power_floor(v.covered_scenario, v.plan, i)
                    .watts(),
                v.caps[i.index()]);
        }
        const auto g = gain_matrix(v.covered_scenario, v.plan.rs_positions);
        const units::SnrRatio beta = v.covered_scenario.snr_threshold();
        const auto result = opt::fixed_point_power_control(
            floors, v.caps,
            [&](std::size_t i, std::span<const double> powers) {
                units::Watt need{0.0};
                const std::size_t subs = v.covered_scenario.subscriber_count();
                for (std::size_t k = 0; k < subs; ++k) {
                    if (v.plan.assignment[ids::SsId{k}] != ids::RsId{i}) continue;
                    units::Watt interference =
                        v.covered_scenario.radio.snr_ambient_noise;
                    for (std::size_t m = 0; m < v.plan.rs_count(); ++m) {
                        if (m != i) {
                            interference += units::Watt{powers[m] * g[m][k]};
                        }
                    }
                    need = std::max(need, beta * interference / g[i][k]);
                }
                return need.watts();
            });
        for (std::size_t r = 0; r < v.active.size(); ++r) {
            alloc_[v.active[r]] = result.powers[r];
        }

        const core::CoverageReport report = core::verify_coverage(
            v.covered_scenario, v.plan, result.powers);
        if (report.feasible) return;

        // Shed the failing SSs assigned this event; if only stable SSs
        // fail (a new assignment's interference squeezed them), shed
        // every this-event assignment instead — yesterday's verified
        // plan is the feasible fallback.
        std::vector<std::size_t> shed;
        for (std::size_t c = 0; c < v.covered_slots.size(); ++c) {
            const auto& check = report.subscribers[ids::SsId{c}];
            const std::size_t slot = v.covered_slots[c];
            if ((!check.distance_ok || !check.rate_ok || !check.snr_ok) &&
                assigned_this_event_[slot]) {
                shed.push_back(slot);
            }
        }
        if (shed.empty()) {
            for (std::size_t k = 0; k < server_.size(); ++k) {
                if (assigned_this_event_[k] && server_[k] != kUnserved) {
                    shed.push_back(k);
                }
            }
        }
        if (shed.empty()) return;  // stable SSs only: flagged via verify
        for (const std::size_t k : shed) server_[k] = kUnserved;
        out.shed += shed.size();
        SAG_OBS_COUNT_ADD("serve.shed_ss", shed.size());
    }
}

void Session::rebuild_backhaul() {
    SAG_OBS_SPAN("serve.backhaul");
    const ActiveView v = build_view();
    if (v.plan.rs_count() == 0) {
        conn_ = core::ConnectivityPlan{};
        conn_.feasible = true;
    } else {
        conn_ = core::solve_mbmc(v.covered_scenario, v.plan);
        core::allocate_power_ucpo(v.covered_scenario, v.plan, conn_);
    }
    conn_active_ = v.active;
    backhaul_dirty_ = false;
}

void Session::run_verify() {
    const ActiveView v = build_view();
    if (v.plan.rs_count() == 0) {
        verified_ = v.covered_slots.empty();
        return;
    }
    std::vector<double> powers(v.active.size());
    for (std::size_t r = 0; r < v.active.size(); ++r) {
        powers[r] = alloc_[v.active[r]];
    }
    const bool cov_ok =
        core::verify_coverage(v.covered_scenario, v.plan, powers).feasible;
    bool topo_ok = false;
    if (!backhaul_dirty_ && conn_active_ == v.active) {
        topo_ok =
            core::verify_topology(v.covered_scenario, v.plan, conn_).feasible;
    }
    verified_ = cov_ok && topo_ok;
}

void Session::adopt_or_fail_resolve(EventOutcome& out) {
    std::unique_ptr<core::SagResult> solved;
    if (pool_) pool_->wait_idle();
    {
        exec::MutexLock lock(mutex_);
        solved = std::move(pending_);
    }
    resolve_pending_ = false;
    const bool ok = !resolve_injected_fail_ && solved && solved->feasible;
    resolve_injected_fail_ = false;
    if (!ok) {
        // Retry with doubling event-count backoff: the next trigger can
        // fire once the backoff window has passed.
        SAG_OBS_COUNT("serve.resolves.failed");
        next_resolve_allowed_ = event_index_ + resolve_backoff_;
        resolve_backoff_ =
            std::min(resolve_backoff_ * 2,
                     std::max<std::size_t>(1, options_.resolve_backoff_max));
        return;
    }
    adopt_plan(*solved, out);
    out.resolve_adopted = true;
    SAG_OBS_COUNT("serve.resolves.adopted");
    resolve_backoff_ = std::max<std::size_t>(1, options_.resolve_backoff_start);
}

void Session::adopt_plan(const core::SagResult& solved, EventOutcome& out) {
    SAG_OBS_SPAN("serve.adopt");
    const double p_max = scenario_.rs_max_power().watts();
    // Atomic swap to the re-solved deployment. Outstanding failures
    // refer to decommissioned hardware and are cleared (a full re-solve
    // is a re-deployment of the lower tier).
    rs_pos_ = solved.coverage.rs_positions;
    rs_cap_.assign(rs_pos_.size(), p_max);
    rs_dead_.assign(rs_pos_.size(), false);
    failures_ = {};
    alloc_.assign(rs_pos_.size(), 0.0);
    field_ = core::SnrField(scenario_, rs_pos_, rs_cap_);

    // The solved assignment maps the trigger-time snapshot's SsIds; the
    // SS set may have churned since, so every current SS is re-homed
    // onto the new pool and the powers re-escalated from scratch.
    server_.assign(server_.size(), kUnserved);
    assigned_this_event_.assign(server_.size(), true);
    std::vector<std::size_t> all(server_.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    rehome(all, out);
    reallocate_power(out);
    rebuild_backhaul();
    run_verify();
    baseline_rs_ = active_rs_count();
    baseline_power_ = total_power();
}

void Session::maybe_trigger_resolve(EventOutcome& out) {
    if (resolve_pending_ || event_index_ < next_resolve_allowed_) return;
    const std::size_t active = active_rs_count();
    const double power = total_power();
    const bool drift_rs = active > baseline_rs_ + options_.drift_excess_rs;
    const bool drift_power =
        baseline_power_ > 0.0 &&
        power > baseline_power_ * options_.drift_power_ratio;
    const bool flagged = unserved_count() > 0;
    if (!(drift_rs || drift_power || flagged)) return;

    SAG_OBS_COUNT("serve.resolves.triggered");
    out.resolve_triggered = true;
    resolve_pending_ = true;
    adopt_at_ = event_index_ + std::max<std::size_t>(1, options_.resolve_horizon);
    resolve_injected_fail_ = options_.faults.resolve_times_out(event_index_);
    if (resolve_injected_fail_) {
        SAG_OBS_COUNT("serve.resolves.injected_timeout");
        return;  // the "solver timed out" path: nothing to compute
    }
    if (pool_) {
        // The snapshot rides a shared_ptr because ThreadPool::submit
        // requires a copyable closure.
        auto snap = std::make_shared<core::Scenario>(scenario_);
        pool_->submit([this, snap] {
            auto result = std::make_unique<core::SagResult>(
                core::solve_sag(*snap, options_.solve));
            exec::MutexLock lock(mutex_);
            pending_ = std::move(result);
        });
    } else {
        // Inline mode: solve now, adopt at the same horizon — identical
        // outcome stream, just paid for on the event thread.
        auto result = std::make_unique<core::SagResult>(
            core::solve_sag(scenario_, options_.solve));
        exec::MutexLock lock(mutex_);
        pending_ = std::move(result);
    }
}

EventOutcome Session::apply(const Event& event) {
    SAG_OBS_SPAN("serve.event");
    SAG_OBS_COUNT("serve.events");
    EventOutcome out;
    out.event_index = event_index_;

    // A pending re-solve lands at its horizon before the event is
    // processed, whatever the event turns out to be.
    if (resolve_pending_ && event_index_ >= adopt_at_) {
        adopt_or_fail_resolve(out);
    }

    const std::string reason = validate(event);
    if (!reason.empty()) {
        out.level = RepairLevel::Rejected;
        out.reject_reason = reason;
        SAG_OBS_COUNT("serve.rejected");
        out.verified = verified_;
        out.unserved = unserved_count();
        out.degraded = out.unserved > 0 || !verified_;
        out.rs_count = active_rs_count();
        out.total_power = total_power();
        ++event_index_;
        return out;
    }

    apply_mutation(event);
    assigned_this_event_.assign(server_.size(), false);

    StageGate gate{exec::Deadline::after_seconds(options_.event_budget_seconds),
                   options_.faults.stage_timeout_mask(out.event_index)};
    if (gate.forced_mask != 0) SAG_OBS_COUNT("serve.injected_timeouts");

    // Repair candidates: every flagged SS plus every served SS whose
    // server can no longer possibly serve it (dead, out of reach, or
    // below rate/SNR even at the caps).
    std::vector<std::size_t> candidates;
    for (std::size_t k = 0; k < server_.size(); ++k) {
        if (server_[k] == kUnserved) {
            candidates.push_back(k);
            continue;
        }
        if (rs_dead_[server_[k]] || !can_serve(server_[k], k)) {
            server_[k] = kUnserved;
            candidates.push_back(k);
        }
    }

    // The degradation ladder. Each rung is strictly cheaper than the
    // one above; the bottom rung (shed to flagged-unserved) is O(1) per
    // SS and can always run.
    out.level = RepairLevel::Full;
    if (gate.expired(RepairStage::Rehome)) {
        out.shed += candidates.size();
        out.level = RepairLevel::Degraded;
    } else {
        rehome(candidates, out);
        if (unserved_count() > 0 && options_.max_new_relays_per_event > 0) {
            if (gate.expired(RepairStage::Patch)) {
                out.level = RepairLevel::RehomeOnly;
            } else {
                patch(out);
            }
        }
        if (out.level == RepairLevel::Full) {
            if (gate.expired(RepairStage::Power)) {
                out.level = RepairLevel::RehomeOnly;
            } else {
                reallocate_power(out);
            }
        }
    }
    switch (out.level) {
        case RepairLevel::Full:
            SAG_OBS_COUNT("serve.level.full");
            break;
        case RepairLevel::RehomeOnly:
            SAG_OBS_COUNT("serve.level.rehome_only");
            break;
        case RepairLevel::Degraded:
            SAG_OBS_COUNT("serve.level.degraded");
            break;
        case RepairLevel::Rejected:
            break;
    }

    // Backhaul: rebuild when the active RS set or the rate structure
    // changed; a gated-off rebuild leaves the plan explicitly degraded
    // (stale backhaul), never silently wrong.
    if (backhaul_dirty_ || build_view().active != conn_active_) {
        if (gate.expired(RepairStage::Backhaul)) {
            backhaul_dirty_ = true;
        } else {
            rebuild_backhaul();
        }
    }

    run_verify();
    out.verified = verified_;
    out.unserved = unserved_count();
    out.degraded = out.unserved > 0 || !verified_;
    out.rs_count = active_rs_count();
    out.total_power = total_power();
    SAG_OBS_GAUGE("serve.unserved", out.unserved);

    maybe_trigger_resolve(out);
    ++event_index_;
    return out;
}

std::size_t Session::unserved_count() const {
    std::size_t n = 0;
    for (const std::size_t s : server_) n += s == kUnserved ? 1 : 0;
    return n;
}

std::size_t Session::active_rs_count() const {
    std::vector<bool> loaded(rs_pos_.size(), false);
    for (const std::size_t s : server_) {
        if (s != kUnserved) loaded[s] = true;
    }
    std::size_t n = 0;
    for (std::size_t r = 0; r < rs_pos_.size(); ++r) {
        n += (loaded[r] && !rs_dead_[r]) ? 1 : 0;
    }
    return n;
}

double Session::total_power() const {
    // Dead and unloaded slots hold alloc 0, so the sum is P_L exactly.
    double lower = 0.0;
    for (const double w : alloc_) lower += w;
    return lower + conn_.upper_tier_power();
}

std::vector<std::uint64_t> Session::unserved_keys() const {
    std::vector<std::uint64_t> keys;
    for (std::size_t k = 0; k < server_.size(); ++k) {
        if (server_[k] == kUnserved) keys.push_back(slot_key_[k]);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
}

Session::Snapshot Session::snapshot() const {
    ActiveView v = build_view();
    Snapshot snap;
    snap.covered_scenario = std::move(v.covered_scenario);
    snap.covered_keys.reserve(v.covered_slots.size());
    for (const std::size_t k : v.covered_slots) {
        snap.covered_keys.push_back(slot_key_[k]);
    }
    snap.plan = std::move(v.plan);
    snap.powers.resize(v.active.size());
    for (std::size_t r = 0; r < v.active.size(); ++r) {
        snap.powers[r] = alloc_[v.active[r]];
    }
    snap.connectivity = conn_;
    snap.verified = verified_;
    snap.degraded = unserved_count() > 0 || !verified_;
    return snap;
}

}  // namespace sag::serve
