#include "sag/serve/fault.h"

#include <cmath>
#include <limits>
#include <random>

namespace sag::serve {

namespace {

/// One uniform draw in [0, 1) that depends only on (seed, stream, i):
/// a freshly seeded engine per decision, so decisions are independent
/// of evaluation order (the property that keeps threads=N replays
/// byte-identical to threads=1).
double unit_draw(std::uint64_t seed, std::uint64_t stream, std::uint64_t i) {
    std::mt19937_64 rng(seed ^ ((stream + 1) * 0x9e3779b97f4a7c15ULL) ^
                        ((i + 1) * 0xbf58476d1ce4e5b9ULL));
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
}

constexpr std::uint64_t kStreamStage = 0;     // + stage index (4 streams)
constexpr std::uint64_t kStreamResolve = 8;
constexpr std::uint64_t kStreamCorrupt = 9;
constexpr std::uint64_t kStreamCorruptMode = 10;

}  // namespace

const char* to_string(RepairLevel level) {
    switch (level) {
        case RepairLevel::Full: return "full";
        case RepairLevel::RehomeOnly: return "rehome_only";
        case RepairLevel::Degraded: return "degraded";
        case RepairLevel::Rejected: return "rejected";
    }
    return "unknown";
}

unsigned FaultPlan::stage_timeout_mask(std::size_t event_index) const {
    if (options_.stage_timeout_probability <= 0.0) return 0;
    unsigned mask = 0;
    for (unsigned stage = 0; stage < 4; ++stage) {
        if (unit_draw(options_.seed, kStreamStage + stage, event_index) <
            options_.stage_timeout_probability) {
            mask |= 1u << stage;
        }
    }
    return mask;
}

bool FaultPlan::resolve_times_out(std::size_t trigger_event) const {
    return options_.resolve_timeout_probability > 0.0 &&
           unit_draw(options_.seed, kStreamResolve, trigger_event) <
               options_.resolve_timeout_probability;
}

bool FaultPlan::corrupts(std::size_t event_index) const {
    return options_.corrupt_probability > 0.0 &&
           unit_draw(options_.seed, kStreamCorrupt, event_index) <
               options_.corrupt_probability;
}

std::vector<Event> FaultPlan::corrupt(std::vector<Event> events) const {
    if (options_.corrupt_probability <= 0.0) return events;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (!corrupts(i)) continue;
        Event& e = events[i];
        const double mode = unit_draw(options_.seed, kStreamCorruptMode, i);
        if (mode < 0.25) {
            // Unknown subscriber key (out of any plausible range).
            e.kind = EventKind::SsLeave;
            e.key = std::numeric_limits<std::uint64_t>::max() - i;
        } else if (mode < 0.5) {
            // Out-of-range RS slot.
            e.kind = EventKind::RsFail;
            e.rs = ids::RsId{1u << 20};
        } else if (mode < 0.75) {
            // Non-finite coordinates.
            e.kind = EventKind::SsMove;
            e.pos = {std::numeric_limits<double>::quiet_NaN(), 0.0};
        } else {
            // Nonsensical rate re-negotiation.
            e.kind = EventKind::SsRate;
            e.distance_request = -1.0;
        }
    }
    return events;
}

}  // namespace sag::serve
