#pragma once

// Deterministic fault injection for the serve layer. The degradation
// ladder only counts as robustness if its lower rungs are *exercised*,
// so the soak harness corrupts its own inputs: a FaultPlan decides,
// purely from (seed, event index), which events carry an injected stage
// timeout (the gate reports expired without any clock read — see
// exec::Deadline::expired_now) and which background re-solves "time
// out" and must retry with backoff. Because every decision is a hash of
// the seed and the index — never a clock or a shared RNG stream — a
// faulted run replays byte-identically across runs and thread counts.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sag/serve/event.h"

namespace sag::serve {

struct FaultOptions {
    /// Per-event, per-stage probability of an injected stage timeout.
    double stage_timeout_probability = 0.0;
    /// Probability that a triggered background re-solve times out
    /// (forcing the retry-with-backoff path).
    double resolve_timeout_probability = 0.0;
    /// Per-event probability of stream corruption in corrupt().
    double corrupt_probability = 0.0;
    std::uint64_t seed = 1;
};

/// A pure function of (options, event index): no state, no clock.
class FaultPlan {
public:
    /// No faults (the default for production sessions).
    FaultPlan() = default;
    explicit FaultPlan(const FaultOptions& options) : options_(options) {}

    bool enabled() const {
        return options_.stage_timeout_probability > 0.0 ||
               options_.resolve_timeout_probability > 0.0 ||
               options_.corrupt_probability > 0.0;
    }

    /// Bitmask over RepairStage: bit s set means stage s's gate reports
    /// expired for this event (deterministically, without a clock read).
    unsigned stage_timeout_mask(std::size_t event_index) const;

    /// True when the re-solve triggered at this event index is injected
    /// to fail (as if the solver ran out of budget).
    bool resolve_times_out(std::size_t trigger_event) const;

    /// True when corrupt() will mangle the event at this stream index.
    /// Exposed so stream generators can keep their population model
    /// honest: a corrupted event is rejected by the Session, so e.g. a
    /// mangled ss_leave must not be counted as a departure — otherwise
    /// the leaked subscribers grow the population (and the per-event
    /// cost) without bound over a long soak.
    bool corrupts(std::size_t event_index) const;

    /// Seeded stream corruption: ~corrupt_probability of the events are
    /// mangled into invalid ones (unknown keys, out-of-range RS slots,
    /// non-finite coordinates, zero rates) that the Session must reject
    /// with a typed outcome. Deterministic per (options.seed, index).
    std::vector<Event> corrupt(std::vector<Event> events) const;

private:
    FaultOptions options_;
};

}  // namespace sag::serve
