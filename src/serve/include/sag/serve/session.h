#pragma once

// serve::Session — the online churn-serving engine (ROADMAP item 2).
//
// A Session owns a solved deployment plus its hot core::SnrField and
// keeps the plan valid as the world changes: each apply(event) runs a
// bounded-scope incremental repair assembled from the resilience
// stages — re-home violated SSs onto surviving RSs, patch new relays
// from the IAC candidate pool, re-escalate powers with the Yates fixed
// point, re-steinerize the backhaul — with every stage checked against
// a shared exec::Deadline (the StageGate). When a stage's gate is
// expired the handler drops one rung down the degradation ladder
//
//     full repair -> re-home-only -> accept-degraded-with-flagged-SSs
//
// and *never* crashes or returns a silently wrong plan: after every
// event the served view either passes verify_coverage + verify_topology
// or the outcome carries degraded=true with the unserved SSs flagged.
//
// Plan-quality drift (excess active RSs / excess total power versus the
// last full solve, or any flagged SS) triggers a *background* full
// re-solve on an exec::ThreadPool. The solve runs over a snapshot taken
// at the trigger event and is adopted atomically at a fixed event
// horizon — the same horizon whether the solve ran inline (threads <=
// 1) or on a worker — so a threads=N run replays byte-identical to
// threads=1. A failed or injected-timeout solve retries with doubling
// event-count backoff.
//
// Determinism: with the default unlimited event budget the Session
// reads no clocks and draws no unseeded randomness; the degradation
// paths are exercised via FaultPlan's injected stage timeouts
// (exec::Deadline::expired_now — forced expiry without a clock read).
// Schema, ladder, drift budget, and report format: docs/SERVING.md.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sag/core/sag.h"
#include "sag/core/scenario.h"
#include "sag/core/snr_field.h"
#include "sag/exec/deadline.h"
#include "sag/exec/mutex.h"
#include "sag/exec/thread_annotations.h"
#include "sag/exec/thread_pool.h"
#include "sag/geometry/vec2.h"
#include "sag/ids/ids.h"
#include "sag/resilience/failure.h"
#include "sag/serve/event.h"
#include "sag/serve/fault.h"

namespace sag::serve {

/// Per-stage deadline check of one event handler: the shared wall-clock
/// deadline (unlimited by default, for determinism) plus the event's
/// injected-timeout mask from the FaultPlan. A stage runs iff its gate
/// has not expired when the handler reaches it.
struct StageGate {
    exec::Deadline deadline;
    unsigned forced_mask = 0;  ///< bit per RepairStage: injected expiry

    bool expired(RepairStage stage) const {
        return ((forced_mask >> static_cast<unsigned>(stage)) & 1u) != 0 ||
               deadline.expired();
    }
};

struct ServeOptions {
    /// Wall-clock budget per event handler; 0 (the default) is
    /// unlimited, which is also the byte-deterministic mode. With a
    /// real budget the ladder additionally reacts to actual elapsed
    /// time, at the cost of replay determinism.
    double event_budget_seconds = 0.0;
    /// Stage-2 budget of relays patched in per event.
    std::size_t max_new_relays_per_event = 2;
    /// Power/verify shed-retry rounds per event (resilience-style).
    int max_power_rounds = 3;
    /// Drift budget: background re-solve triggers when the active RS
    /// count exceeds the last full solve's by more than this...
    std::size_t drift_excess_rs = 4;
    /// ...or total power exceeds the last full solve's by this factor,
    /// or any SS is flagged unserved.
    double drift_power_ratio = 1.5;
    /// Events between a re-solve trigger and its atomic adoption (the
    /// fixed horizon that keeps threaded runs byte-identical).
    std::size_t resolve_horizon = 32;
    /// Initial / maximum retry backoff after a failed re-solve, in
    /// events; the backoff doubles per failure up to the maximum.
    std::size_t resolve_backoff_start = 16;
    std::size_t resolve_backoff_max = 1024;
    /// >= 2 runs re-solves on a background exec::ThreadPool worker;
    /// 0 or 1 solves inline at the trigger event (same adoption
    /// horizon, so the outcome stream is identical).
    std::size_t threads = 1;
    /// Options for full (re-)solves.
    core::SamcOptions solve{};
    /// Deterministic fault injection (none by default).
    FaultPlan faults{};
};

class Session {
public:
    /// Serve an already-solved deployment of `scenario`.
    Session(core::Scenario scenario, const core::SagResult& deployment,
            const ServeOptions& options = {});
    /// Convenience: runs the initial full solve internally.
    explicit Session(core::Scenario scenario, const ServeOptions& options = {});
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /// Ingest one event: validate, mutate, repair down the ladder,
    /// verify, and account drift. Never throws on bad events — they
    /// return a Rejected outcome with the state untouched.
    EventOutcome apply(const Event& event);

    /// Events ingested so far (== the next event's index).
    std::size_t event_count() const { return event_index_; }
    std::size_t live_subscriber_count() const { return slot_key_.size(); }
    /// Total pool slots (alive + dead + patched): the valid range for
    /// Rs* event addressing.
    std::size_t pool_rs_count() const { return rs_pos_.size(); }
    std::size_t unserved_count() const;
    /// Alive coverage RSs serving at least one SS.
    std::size_t active_rs_count() const;
    /// P_L + P_H of the current plan, watts.
    double total_power() const;
    /// Outstanding RS failures/degradations against the current pool
    /// (resilience::FailureSet semantics; cleared by re-solve adoption).
    const resilience::FailureSet& outstanding_failures() const {
        return failures_;
    }
    /// Session keys of the currently unserved (flagged) SSs, ascending.
    std::vector<std::uint64_t> unserved_keys() const;
    /// True when a triggered re-solve has not yet been adopted/failed.
    bool resolve_pending() const { return resolve_pending_; }
    /// The live scenario (subscribers mutate with churn). This is what a
    /// from-scratch oracle solve would be handed right now.
    const core::Scenario& scenario() const { return scenario_; }

    /// Compacted, independently verifiable view of the current plan:
    /// the scenario restricted to the served SSs plus the active-RS
    /// coverage plan, powers, and backhaul (the RepairOutcome pattern).
    struct Snapshot {
        core::Scenario covered_scenario;
        std::vector<std::uint64_t> covered_keys;  ///< per covered SS
        core::CoveragePlan plan;
        std::vector<double> powers;  ///< per active RS, linear watts
        core::ConnectivityPlan connectivity;
        bool verified = false;
        bool degraded = false;
    };
    Snapshot snapshot() const;

private:
    static constexpr std::size_t kUnserved = static_cast<std::size_t>(-1);

    /// Compacted served view plus the active-pool-slot map behind it.
    struct ActiveView {
        core::Scenario covered_scenario;
        std::vector<std::size_t> covered_slots;  ///< session SS slots
        core::CoveragePlan plan;
        std::vector<double> caps;        ///< per active RS
        std::vector<std::size_t> active;  ///< plan RS -> pool slot
    };

    void init_from_deployment(const core::SagResult& deployment);
    std::size_t find_slot(std::uint64_t key) const;
    std::string validate(const Event& event) const;
    void apply_mutation(const Event& event);
    bool can_serve(std::size_t pool_rs, std::size_t slot) const;
    ActiveView build_view() const;
    void rehome(const std::vector<std::size_t>& candidates, EventOutcome& out);
    void patch(EventOutcome& out);
    void reallocate_power(EventOutcome& out);
    void rebuild_backhaul();
    void run_verify();
    void adopt_or_fail_resolve(EventOutcome& out);
    void maybe_trigger_resolve(EventOutcome& out);
    void adopt_plan(const core::SagResult& solved, EventOutcome& out);

    core::Scenario scenario_;  ///< live: subscribers mutate with churn
    ServeOptions options_;

    // RS pool, slot-stable: dead RSs keep their slot at zero power so
    // event RsIds and the SsId->server map survive failures.
    std::vector<geom::Vec2> rs_pos_;
    std::vector<double> rs_cap_;   ///< current cap, watts (0 when dead)
    std::vector<bool> rs_dead_;
    resilience::FailureSet failures_;
    core::SnrField field_;  ///< pool at caps (dead at 0): the probe field

    // Per-SS-slot state; slot k <-> scenario_.subscribers[k] <-> the
    // field's tracked slot k (identity maintained by swap-remove).
    std::vector<std::size_t> server_;      ///< pool slot or kUnserved
    std::vector<std::uint64_t> slot_key_;  ///< slot -> session key
    std::uint64_t next_key_ = 0;

    std::vector<double> alloc_;  ///< per pool RS: allocated watts
    core::ConnectivityPlan conn_;
    std::vector<std::size_t> conn_active_;  ///< active set conn_ was built over
    bool backhaul_dirty_ = false;
    bool verified_ = false;

    std::size_t event_index_ = 0;
    std::vector<bool> assigned_this_event_;  ///< per slot, reset per event

    // Drift baseline: the last adopted full solve.
    std::size_t baseline_rs_ = 0;
    double baseline_power_ = 0.0;

    // Background re-solve. The pool (when threads >= 2) runs exactly
    // one solve at a time; the result lands in pending_ under mutex_
    // and is consumed at the adoption horizon on the event thread.
    std::unique_ptr<exec::ThreadPool> pool_;
    exec::Mutex mutex_;
    std::unique_ptr<core::SagResult> pending_ SAG_GUARDED_BY(mutex_);
    bool resolve_pending_ = false;
    bool resolve_injected_fail_ = false;
    std::size_t adopt_at_ = 0;
    std::size_t resolve_backoff_ = 0;
    std::size_t next_resolve_allowed_ = 0;
};

}  // namespace sag::serve
