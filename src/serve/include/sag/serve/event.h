#pragma once

// sag::serve event model — the typed churn stream a serve::Session
// ingests. One Event is one world change: a subscriber joins, leaves,
// moves or re-negotiates its rate, or a deployed relay fails, degrades
// or recovers (the RS kinds reuse resilience::FailureSet semantics: a
// dead RS keeps its pool slot at zero power, so RsId addressing stays
// stable across failures).
//
// Subscribers are addressed by a session-stable `key`, not by SsId: the
// dense SsId space compacts on every leave, so an external stream needs
// an identity that survives churn. Keys are assigned by the stream
// producer (initial subscribers are keyed 0..n-1; joins carry fresh
// keys), and the Session validates them — an unknown or duplicate key
// is a Rejected outcome, never a crash.
//
// The JSONL wire format (one event per line) lives in io/event_io.h;
// the schema is documented in docs/SERVING.md.

#include <cstddef>
#include <cstdint>
#include <string>

#include "sag/geometry/vec2.h"
#include "sag/ids/ids.h"

namespace sag::serve {

enum class EventKind {
    SsJoin,     ///< new subscriber: key, pos, distance_request
    SsLeave,    ///< subscriber departs: key
    SsMove,     ///< subscriber relocates: key, pos
    SsRate,     ///< rate re-negotiation: key, distance_request
    RsFail,     ///< coverage RS dies: rs (pool slot)
    RsDegrade,  ///< RS power cap drops to factor * P_max: rs, factor
    RsRecover,  ///< dead RS returns at full cap: rs
};

/// One churn event. Only the fields of the event's kind are meaningful;
/// the rest keep their defaults (and serialize/parse as absent).
struct Event {
    EventKind kind = EventKind::SsJoin;
    std::uint64_t key = 0;        ///< subscriber session key (Ss* kinds)
    geom::Vec2 pos{};             ///< SsJoin / SsMove
    double distance_request = 0.0;  ///< d_i in meters (SsJoin / SsRate)
    ids::RsId rs = ids::RsId::invalid();  ///< pool slot (Rs* kinds)
    double factor = 1.0;          ///< RsDegrade cap fraction, in (0, 1]

    friend bool operator==(const Event&, const Event&) = default;
};

/// Repair stages of one event, in ladder order. Each stage is checked
/// against the event's StageGate before it runs; an expired gate drops
/// the handler to the next rung of the degradation ladder instead of
/// blocking or crashing (docs/SERVING.md, "Degradation ladder").
enum class RepairStage : unsigned {
    Rehome = 0,   ///< re-home violated SSs onto surviving RSs
    Patch = 1,    ///< draw new relays from the IAC candidate pool
    Power = 2,    ///< Yates fixed-point power re-escalation + verify
    Backhaul = 3, ///< MBMC re-steinerize + UCPO upper-tier powers
};

/// Where on the degradation ladder the event handler landed.
enum class RepairLevel {
    Full,        ///< every stage ran within its gate
    RehomeOnly,  ///< patch and/or power re-escalation were gated off
    Degraded,    ///< even re-homing was gated off: violated SSs shed
    Rejected,    ///< event failed validation; state unchanged
};

const char* to_string(RepairLevel level);

/// Per-event answer: what the ladder did and what the plan looks like
/// now. `verified` is the independent verifiers' verdict over the
/// served view; `degraded` is the explicit "this plan is not fully
/// healthy" flag (unserved SSs flagged, failed verification, or a stale
/// backhaul) — the never-silently-wrong contract is exactly
/// `verified || degraded` after every event.
struct EventOutcome {
    std::size_t event_index = 0;
    RepairLevel level = RepairLevel::Full;
    bool verified = false;
    bool degraded = false;
    std::size_t unserved = 0;     ///< SSs currently flagged unserved
    std::size_t rs_count = 0;     ///< active (alive, loaded) coverage RSs
    double total_power = 0.0;     ///< P_L + P_H of the current plan, watts
    std::size_t rehomed = 0;      ///< SSs re-homed by this event
    std::size_t patched = 0;      ///< relays patched in by this event
    std::size_t shed = 0;         ///< SSs shed to unserved by this event
    bool resolve_triggered = false;  ///< drift budget fired this event
    bool resolve_adopted = false;    ///< a background full solve swapped in
    std::string reject_reason;    ///< non-empty iff level == Rejected

    friend bool operator==(const EventOutcome&, const EventOutcome&) = default;
};

}  // namespace sag::serve
