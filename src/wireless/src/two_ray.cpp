#include "sag/wireless/two_ray.h"

#include <algorithm>
#include <cmath>

namespace sag::wireless {

double path_gain(const RadioParams& params, double dist) {
    const double d = std::max(dist, params.reference_distance);
    return params.combined_gain() * std::pow(d, -params.alpha);
}

double received_power(const RadioParams& params, double tx_power, double dist) {
    return tx_power * path_gain(params, dist);
}

double tx_power_for(const RadioParams& params, double target_rx_power, double dist) {
    return target_rx_power / path_gain(params, dist);
}

double range_for(const RadioParams& params, double tx_power, double target_rx_power) {
    return std::pow(tx_power * params.combined_gain() / target_rx_power,
                    1.0 / params.alpha);
}

double ignorable_noise_distance(const RadioParams& params) {
    return range_for(params, params.max_power, params.ignorable_noise);
}

}  // namespace sag::wireless
