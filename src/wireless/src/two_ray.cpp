#include "sag/wireless/two_ray.h"

#include <algorithm>
#include <cmath>

namespace sag::wireless {

double path_gain(const RadioParams& params, units::Meters dist) {
    const double d = std::max(dist.meters(), params.reference_distance.meters());
    return params.combined_gain() * std::pow(d, -params.alpha);
}

units::Watt received_power(const RadioParams& params, units::Watt tx_power,
                           units::Meters dist) {
    return tx_power * path_gain(params, dist);
}

units::Watt tx_power_for(const RadioParams& params, units::Watt target_rx_power,
                         units::Meters dist) {
    return target_rx_power / path_gain(params, dist);
}

units::Meters range_for(const RadioParams& params, units::Watt tx_power,
                        units::Watt target_rx_power) {
    const units::SnrRatio headroom =
        tx_power * params.combined_gain() / target_rx_power;
    return units::Meters{std::pow(headroom.ratio(), 1.0 / params.alpha)};
}

units::Meters ignorable_noise_distance(const RadioParams& params) {
    return range_for(params, params.max_power, params.ignorable_noise);
}

}  // namespace sag::wireless
