#include "sag/wireless/propagation.h"

#include <cstring>
#include <stdexcept>
#include <string>

namespace sag::wireless {

namespace {

/// SplitMix64 finalizer: the standard 64-bit avalanche mix. Used to turn
/// (seed, endpoint coordinates) into i.i.d.-looking uniform bits without
/// any stored state, so the fade of a link is a pure function.
std::uint64_t mix64(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t hash_point(const geom::Vec2& p) {
    std::uint64_t hx, hy;
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::memcpy(&hx, &p.x, sizeof hx);
    std::memcpy(&hy, &p.y, sizeof hy);
    return mix64(hx) ^ mix64(mix64(hy));
}

}  // namespace

double GainKernel::shadow_factor(const geom::Vec2& tx, const geom::Vec2& rx) const {
    // Symmetric endpoint hash: XOR commutes, so tx<->rx swap gives the
    // same fade (channel reciprocity). Two uniform doubles in (0, 1] via
    // the top 53 bits, then one Box-Muller deviate.
    const std::uint64_t h = mix64(seed ^ (hash_point(tx) ^ hash_point(rx)));
    const std::uint64_t h2 = mix64(h);
    const double u1 = static_cast<double>((h >> 11) + 1) * 0x1.0p-53;
    const double u2 = static_cast<double>((h2 >> 11) + 1) * 0x1.0p-53;
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.141592653589793238462643383279502884 * u2);
    return std::pow(10.0, sigma_db * z / 10.0);
}

// --- LogDistanceModel ---

GainKernel LogDistanceModel::kernel(const RadioParams& params) const {
    (void)params;
    GainKernel k;
    // PL(d) = PL(d0) + 10 n log10(d/d0)  =>  gain(d) = 10^(-PL0/10) * (d/d0)^-n
    //       = [10^(-PL0/10) * d0^n] * d^-n
    k.scale = std::pow(10.0, -path_loss_at_ref.db() / 10.0) *
              std::pow(ref_distance.meters(), exponent);
    k.alpha = exponent;
    k.clamp_m = ref_distance.meters();
    k.sigma_db = shadowing_sigma.db();
    k.seed = shadowing_seed;
    return k;
}

void LogDistanceModel::validate(const RadioParams& params) const {
    (void)params;
    if (exponent < 1.0 || exponent > 6.0)
        throw std::invalid_argument("log_distance: exponent out of range [1, 6]");
    if (ref_distance <= units::Meters{0.0})
        throw std::invalid_argument("log_distance: ref_distance must be positive");
    if (shadowing_sigma < units::Decibel{0.0})
        throw std::invalid_argument("log_distance: shadowing_sigma must be non-negative");
}

// --- LoRaLinkBudgetModel ---

units::Decibel LoRaLinkBudgetModel::snr_limit(int sf) {
    // Demodulator SNR floor per spreading factor (Semtech SX127x datasheet;
    // the same table as loraGetSnrLimit in SNIPPETS.md §2).
    switch (sf) {
        case 7: return units::Decibel{-7.5};
        case 8: return units::Decibel{-10.0};
        case 9: return units::Decibel{-12.6};
        case 10: return units::Decibel{-15.0};
        case 11: return units::Decibel{-17.5};
        case 12: return units::Decibel{-20.0};
        default:
            throw std::invalid_argument("lora: spreading_factor must be in [7, 12]");
    }
}

units::Decibel LoRaLinkBudgetModel::reference_path_loss() const {
    // FSPL(d0) = 20 log10(4 pi d0 f / c)
    constexpr double kC = 299792458.0;
    constexpr double kPi = 3.141592653589793238462643383279502884;
    return units::Decibel{
        20.0 * std::log10(4.0 * kPi * ref_distance.meters() * frequency_hz / kC)};
}

units::DecibelMilliwatt LoRaLinkBudgetModel::sensitivity_dbm(
    units::Decibel extra_noise_figure) const {
    // S = -174 + 10 log10(BW) + NF + SNR_limit, all in dBm / dB.
    return units::DecibelMilliwatt{-174.0 + 10.0 * std::log10(bandwidth_hz)} +
           noise_figure + extra_noise_figure + snr_limit(spreading_factor);
}

GainKernel LoRaLinkBudgetModel::kernel(const RadioParams& params) const {
    (void)params;
    GainKernel k;
    k.scale = std::pow(10.0, -reference_path_loss().db() / 10.0) *
              std::pow(ref_distance.meters(), path_exponent);
    k.alpha = path_exponent;
    k.clamp_m = ref_distance.meters();
    return k;
}

std::optional<units::Watt> LoRaLinkBudgetModel::rx_sensitivity(
    const RadioParams& params, const RadioProfile& profile) const {
    (void)params;
    return units::from_dbm(sensitivity_dbm(profile.noise_figure));
}

void LoRaLinkBudgetModel::validate(const RadioParams& params) const {
    (void)params;
    snr_limit(spreading_factor);  // throws on SF outside [7, 12]
    if (bandwidth_hz <= 0.0)
        throw std::invalid_argument("lora: bandwidth_hz must be positive");
    if (path_exponent < 1.0 || path_exponent > 6.0)
        throw std::invalid_argument("lora: path_exponent out of range [1, 6]");
    if (ref_distance <= units::Meters{0.0})
        throw std::invalid_argument("lora: ref_distance must be positive");
    if (frequency_hz <= 0.0)
        throw std::invalid_argument("lora: frequency_hz must be positive");
    if (noise_figure < units::Decibel{0.0})
        throw std::invalid_argument("lora: noise_figure must be non-negative");
}

// --- Factory / default ---

const PropagationModel& two_ray_model() {
    static const TwoRayModel model;
    return model;
}

std::shared_ptr<const PropagationModel> make_model(std::string_view kind) {
    if (kind == "two_ray") return std::make_shared<TwoRayModel>();
    if (kind == "log_distance") return std::make_shared<LogDistanceModel>();
    if (kind == "lora") return std::make_shared<LoRaLinkBudgetModel>();
    throw std::invalid_argument("unknown propagation model kind: " +
                                std::string(kind));
}

// --- Free helpers ---

units::Watt received_power(const PropagationModel& model, const RadioParams& params,
                           units::Watt tx_power, units::Meters dist) {
    return units::Watt{tx_power.watts() * model.median_gain(params, dist)};
}

units::Watt received_power(const PropagationModel& model, const RadioParams& params,
                           units::Watt tx_power, const geom::Vec2& tx,
                           const geom::Vec2& rx) {
    const units::Meters dist{geom::distance(tx, rx)};
    return units::Watt{tx_power.watts() * model.link_gain(params, tx, rx, dist)};
}

units::Watt tx_power_for(const PropagationModel& model, const RadioParams& params,
                         units::Watt target_rx_power, units::Meters dist) {
    return units::Watt{target_rx_power.watts() / model.median_gain(params, dist)};
}

units::Watt tx_power_for(const PropagationModel& model, const RadioParams& params,
                         units::Watt target_rx_power, const geom::Vec2& tx,
                         const geom::Vec2& rx) {
    const units::Meters dist{geom::distance(tx, rx)};
    return units::Watt{target_rx_power.watts() /
                       model.link_gain(params, tx, rx, dist)};
}

units::Meters range_for(const PropagationModel& model, const RadioParams& params,
                        units::Watt tx_power, units::Watt target_rx_power) {
    return model.range_for(params, tx_power, target_rx_power);
}

units::Meters ignorable_noise_distance(const PropagationModel& model,
                                       const RadioParams& params,
                                       units::Watt max_power) {
    return model.range_for(params, max_power, params.ignorable_noise);
}

}  // namespace sag::wireless
