#include "sag/wireless/kernel_eval.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>

namespace sag::wireless {

namespace detail {

#ifndef SAG_SIMD_DISABLED
// Implemented in kernel_eval_avx2.cpp (compiled with -mavx2); only ever
// called after the runtime cpuid check passes. Each handles the largest
// multiple-of-4 prefix and returns how many elements it consumed; the
// dispatcher finishes the tail on the exact scalar path, so a given
// buffer index always takes the same instructions call after call.
std::size_t accumulate_rx_avx2(const GainKernel& kernel, const geom::Vec2& pos,
                               units::Watt signed_power, const double* xs,
                               const double* ys, double* totals, double* comps,
                               std::size_t n);
std::size_t batch_gain_avx2(const GainKernel& kernel, const geom::Vec2& pos,
                            const double* xs, const double* ys, double* gains,
                            std::size_t n);
std::size_t rx_total_avx2(const GainKernel& kernel, const geom::Vec2& rx,
                          const double* rs_x, const double* rs_y,
                          const double* rs_power, std::size_t n, double& total,
                          double& comp);
std::size_t batch_snr_avx2(const GainKernel& kernel, const double* rs_x,
                           const double* rs_y, const double* rs_power,
                           const std::uint32_t* serving, const double* sub_x,
                           const double* sub_y, const double* totals,
                           const double* comps, units::Watt ambient,
                           double* out_snr, std::size_t n);
bool cpu_has_avx2();
#endif

PowPlan plan_pow(const GainKernel& kernel) {
    PowPlan plan;
    if (kernel.sigma_db != 0.0) return plan;
    if (!(kernel.clamp_m >= 0.0)) return plan;
    if (!std::isfinite(kernel.alpha) || !std::isfinite(kernel.scale)) return plan;
    const double q = kernel.alpha * 2.0;
    const double rounded = std::nearbyint(q);
    if (q != rounded || rounded < 1.0 || rounded > 16.0) return plan;
    const int qi = static_cast<int>(rounded);
    plan.a = qi / 4;
    plan.b = qi % 4;
    plan.valid = true;
    return plan;
}

namespace {

SimdMode resolve_mode() {
#ifdef SAG_SIMD_DISABLED
    return SimdMode::Scalar;
#else
    const char* env = std::getenv("SAG_SIMD");
    const std::string_view requested = env == nullptr ? "auto" : env;
    if (requested == "scalar") return SimdMode::Scalar;
    const bool supported = cpu_has_avx2();
    if (requested == "avx2") {
        // An explicit request on an unsupported CPU degrades to scalar
        // rather than crashing on an illegal instruction.
        return supported ? SimdMode::Avx2 : SimdMode::Scalar;
    }
    return supported ? SimdMode::Avx2 : SimdMode::Scalar;  // "auto"
#endif
}

/// The one historical per-link evaluation: hypot distance, pow power law.
/// Every scalar loop below (and every vector tail) goes through this so
/// "byte-identical to the pre-SoA SnrField" stays a single-point fact.
inline double scalar_gain(const GainKernel& kernel, const geom::Vec2& tx,
                          const geom::Vec2& rx) {
    return kernel.gain(tx, rx, geom::distance(tx, rx));
}

/// Branchy Neumaier step, exactly SnrField::accumulate's arithmetic.
inline void neumaier(double& total, double& comp, double term) {
    const double sum = total + term;
    if (std::abs(total) >= std::abs(term)) {
        comp += (total - sum) + term;
    } else {
        comp += (term - sum) + total;
    }
    total = sum;
}

void accumulate_rx_scalar(const GainKernel& kernel, const geom::Vec2& pos,
                          units::Watt signed_power, const double* xs,
                          const double* ys, double* totals, double* comps,
                          std::size_t begin, std::size_t end) {
    const double p = signed_power.watts();
    for (std::size_t k = begin; k < end; ++k) {
        const double term = p * scalar_gain(kernel, pos, {xs[k], ys[k]});
        neumaier(totals[k], comps[k], term);
    }
}

void batch_gain_scalar(const GainKernel& kernel, const geom::Vec2& pos,
                       const double* xs, const double* ys, double* gains,
                       std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
        gains[k] = scalar_gain(kernel, pos, {xs[k], ys[k]});
    }
}

void rx_total_scalar(const GainKernel& kernel, const geom::Vec2& rx,
                     const double* rs_x, const double* rs_y,
                     const double* rs_power, std::size_t begin, std::size_t end,
                     double& total, double& comp) {
    for (std::size_t i = begin; i < end; ++i) {
        const double term =
            rs_power[i] * scalar_gain(kernel, {rs_x[i], rs_y[i]}, rx);
        neumaier(total, comp, term);
    }
}

void batch_snr_scalar(const GainKernel& kernel, const double* rs_x,
                      const double* rs_y, const double* rs_power,
                      const std::uint32_t* serving, const double* sub_x,
                      const double* sub_y, const double* totals,
                      const double* comps, units::Watt ambient,
                      double* out_snr, std::size_t begin, std::size_t end) {
    const double ambient_w = ambient.watts();
    for (std::size_t k = begin; k < end; ++k) {
        const std::uint32_t s = serving[k];
        const geom::Vec2 sub{sub_x[k], sub_y[k]};
        const double signal =
            rs_power[s] * scalar_gain(kernel, {rs_x[s], rs_y[s]}, sub);
        if (signal <= 0.0) {
            out_snr[k] = 0.0;  // a silent server delivers no SNR
            continue;
        }
        const double interference =
            (totals[k] + comps[k]) - signal + ambient_w;
        out_snr[k] = interference > 0.0
                         ? signal / interference
                         : std::numeric_limits<double>::infinity();
    }
}

/// True when this call should take the vector path.
inline bool use_avx2(const GainKernel& kernel) {
#ifdef SAG_SIMD_DISABLED
    (void)kernel;
    return false;
#else
    return active_simd_mode() == SimdMode::Avx2 && plan_pow(kernel).valid;
#endif
}

}  // namespace

}  // namespace detail

SimdMode active_simd_mode() {
    static const SimdMode mode = detail::resolve_mode();
    return mode;
}

std::string_view simd_mode_name(SimdMode mode) {
    return mode == SimdMode::Avx2 ? "avx2" : "scalar";
}

std::size_t simd_lanes() {
    return active_simd_mode() == SimdMode::Avx2 ? 4 : 1;
}

bool kernel_simd_eligible(const GainKernel& kernel) {
    return detail::plan_pow(kernel).valid;
}

void accumulate_rx(const GainKernel& kernel, const geom::Vec2& pos,
                   units::Watt signed_power, units::MetersSpan xs,
                   units::MetersSpan ys, std::span<double> totals,
                   std::span<double> comps) {
    const std::size_t n = xs.size();
    assert(ys.size() == n && totals.size() == n && comps.size() == n);
    std::size_t done = 0;
#ifndef SAG_SIMD_DISABLED
    if (detail::use_avx2(kernel)) {
        done = detail::accumulate_rx_avx2(kernel, pos, signed_power,
                                          xs.data(), ys.data(), totals.data(),
                                          comps.data(), n);
    }
#endif
    detail::accumulate_rx_scalar(kernel, pos, signed_power, xs.data(),
                                 ys.data(), totals.data(), comps.data(), done,
                                 n);
}

void batch_gain(const GainKernel& kernel, const geom::Vec2& pos,
                units::MetersSpan xs, units::MetersSpan ys,
                std::span<double> gains) {
    const std::size_t n = xs.size();
    assert(ys.size() == n && gains.size() == n);
    std::size_t done = 0;
#ifndef SAG_SIMD_DISABLED
    if (detail::use_avx2(kernel)) {
        done = detail::batch_gain_avx2(kernel, pos, xs.data(), ys.data(),
                                       gains.data(), n);
    }
#endif
    detail::batch_gain_scalar(kernel, pos, xs.data(), ys.data(), gains.data(),
                              done, n);
}

void rx_total(const GainKernel& kernel, const geom::Vec2& rx,
              units::MetersSpan rs_x, units::MetersSpan rs_y,
              units::WattSpan rs_power, double& total, double& comp) {
    const std::size_t n = rs_x.size();
    assert(rs_y.size() == n && rs_power.size() == n);
    total = 0.0;
    comp = 0.0;
    std::size_t done = 0;
#ifndef SAG_SIMD_DISABLED
    if (detail::use_avx2(kernel)) {
        done = detail::rx_total_avx2(kernel, rx, rs_x.data(), rs_y.data(),
                                     rs_power.data(), n, total, comp);
    }
#endif
    detail::rx_total_scalar(kernel, rx, rs_x.data(), rs_y.data(),
                            rs_power.data(), done, n, total, comp);
}

void batch_snr(const GainKernel& kernel, units::MetersSpan rs_x,
               units::MetersSpan rs_y, units::WattSpan rs_power,
               std::span<const std::uint32_t> serving, units::MetersSpan sub_x,
               units::MetersSpan sub_y, std::span<const double> totals,
               std::span<const double> comps, units::Watt ambient,
               std::span<double> out_snr) {
    const std::size_t n = sub_x.size();
    assert(sub_y.size() == n && serving.size() == n && totals.size() == n &&
           comps.size() == n && out_snr.size() == n);
    std::size_t done = 0;
#ifndef SAG_SIMD_DISABLED
    if (detail::use_avx2(kernel)) {
        done = detail::batch_snr_avx2(kernel, rs_x.data(), rs_y.data(),
                                      rs_power.data(), serving.data(),
                                      sub_x.data(), sub_y.data(), totals.data(),
                                      comps.data(), ambient,
                                      out_snr.data(), n);
    }
#endif
    detail::batch_snr_scalar(kernel, rs_x.data(), rs_y.data(), rs_power.data(),
                             serving.data(), sub_x.data(), sub_y.data(),
                             totals.data(), comps.data(), ambient,
                             out_snr.data(), done, n);
}

}  // namespace sag::wireless
