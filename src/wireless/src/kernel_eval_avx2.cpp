// AVX2 lanes of the batch kernel evaluators. This TU is compiled with
// -mavx2 (CMake option SAG_SIMD) and must only be *entered* after the
// runtime cpuid check in kernel_eval.cpp passes — except cpu_has_avx2(),
// which is the check itself.
//
// Numerical contract (docs/PERFORMANCE.md): distances are sqrt(dx²+dy²)
// instead of std::hypot, and d^-alpha is an exact-half-integer
// sqrt/multiply chain on d² instead of std::pow, so each term agrees
// with the scalar path to a few ulps (tested bound: 1e-12 relative).
// The Neumaier compensation itself is branch-for-branch the scalar
// algorithm, evaluated per lane with compare+blend.

#include <immintrin.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "sag/wireless/kernel_eval.h"

namespace sag::wireless::detail {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

namespace {

/// (d²)^(q/4) for q = plan.a*4 + plan.b: integer-power ladder on d² plus
/// at most two square roots for the fractional part.
inline __m256d pow_chain(__m256d d2, const PowPlan& plan) {
    __m256d acc = _mm256_set1_pd(1.0);
    __m256d base = d2;
    for (int e = plan.a; e > 0; e >>= 1) {
        if (e & 1) acc = _mm256_mul_pd(acc, base);
        if (e > 1) base = _mm256_mul_pd(base, base);
    }
    if (plan.b != 0) {
        const __m256d s1 = _mm256_sqrt_pd(d2);  // d
        if (plan.b == 2) {
            acc = _mm256_mul_pd(acc, s1);
        } else {
            const __m256d s2 = _mm256_sqrt_pd(s1);  // d^(1/2)
            acc = _mm256_mul_pd(
                acc, plan.b == 1 ? s2 : _mm256_mul_pd(s1, s2));
        }
    }
    return acc;
}

/// gain = scale / (max(d², clamp²))^(q/4) for 4 links at once.
inline __m256d gain4(__m256d dx, __m256d dy, __m256d clamp2, __m256d scale,
                     const PowPlan& plan) {
    __m256d d2 = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
    d2 = _mm256_max_pd(d2, clamp2);
    return _mm256_div_pd(scale, pow_chain(d2, plan));
}

/// One Neumaier step on 4 independent (total, comp) pairs in memory —
/// per lane exactly the scalar branches (abs-compare selects which
/// operand donates the residual). The abs mask lives inside the function
/// (not as a TU-level static) so no AVX instruction can run at load time
/// on a CPU the runtime dispatch would have rejected.
inline void neumaier4(__m256d term, double* totals, double* comps) {
    const __m256d kAbsMask =
        _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
    const __m256d total = _mm256_loadu_pd(totals);
    const __m256d comp = _mm256_loadu_pd(comps);
    const __m256d sum = _mm256_add_pd(total, term);
    const __m256d big_total =
        _mm256_add_pd(_mm256_sub_pd(total, sum), term);  // |total| >= |term|
    const __m256d big_term =
        _mm256_add_pd(_mm256_sub_pd(term, sum), total);  // |total| <  |term|
    const __m256d take_total =
        _mm256_cmp_pd(_mm256_and_pd(total, kAbsMask),
                      _mm256_and_pd(term, kAbsMask), _CMP_GE_OQ);
    const __m256d resid = _mm256_blendv_pd(big_term, big_total, take_total);
    _mm256_storeu_pd(totals, sum);
    _mm256_storeu_pd(comps, _mm256_add_pd(comp, resid));
}

}  // namespace

std::size_t accumulate_rx_avx2(const GainKernel& kernel, const geom::Vec2& pos,
                               units::Watt signed_power, const double* xs,
                               const double* ys, double* totals, double* comps,
                               std::size_t n) {
    const PowPlan plan = plan_pow(kernel);
    const __m256d px = _mm256_set1_pd(pos.x);
    const __m256d py = _mm256_set1_pd(pos.y);
    const __m256d clamp2 = _mm256_set1_pd(kernel.clamp_m * kernel.clamp_m);
    const __m256d scale = _mm256_set1_pd(kernel.scale);
    const __m256d power = _mm256_set1_pd(signed_power.watts());
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256d dx = _mm256_sub_pd(px, _mm256_loadu_pd(xs + k));
        const __m256d dy = _mm256_sub_pd(py, _mm256_loadu_pd(ys + k));
        const __m256d g = gain4(dx, dy, clamp2, scale, plan);
        neumaier4(_mm256_mul_pd(power, g), totals + k, comps + k);
    }
    return k;
}

std::size_t batch_gain_avx2(const GainKernel& kernel, const geom::Vec2& pos,
                            const double* xs, const double* ys, double* gains,
                            std::size_t n) {
    const PowPlan plan = plan_pow(kernel);
    const __m256d px = _mm256_set1_pd(pos.x);
    const __m256d py = _mm256_set1_pd(pos.y);
    const __m256d clamp2 = _mm256_set1_pd(kernel.clamp_m * kernel.clamp_m);
    const __m256d scale = _mm256_set1_pd(kernel.scale);
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m256d dx = _mm256_sub_pd(px, _mm256_loadu_pd(xs + k));
        const __m256d dy = _mm256_sub_pd(py, _mm256_loadu_pd(ys + k));
        _mm256_storeu_pd(gains + k, gain4(dx, dy, clamp2, scale, plan));
    }
    return k;
}

std::size_t rx_total_avx2(const GainKernel& kernel, const geom::Vec2& rx,
                          const double* rs_x, const double* rs_y,
                          const double* rs_power, std::size_t n, double& total,
                          double& comp) {
    const PowPlan plan = plan_pow(kernel);
    const __m256d px = _mm256_set1_pd(rx.x);
    const __m256d py = _mm256_set1_pd(rx.y);
    const __m256d clamp2 = _mm256_set1_pd(kernel.clamp_m * kernel.clamp_m);
    const __m256d scale = _mm256_set1_pd(kernel.scale);
    // Four independent lane accumulators, folded deterministically
    // (lane 0 -> 3, totals then residuals) at the end; the fold order is
    // fixed, so the same inputs always produce the same double.
    alignas(32) double lane_total[4] = {0.0, 0.0, 0.0, 0.0};
    alignas(32) double lane_comp[4] = {0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d dx = _mm256_sub_pd(px, _mm256_loadu_pd(rs_x + i));
        const __m256d dy = _mm256_sub_pd(py, _mm256_loadu_pd(rs_y + i));
        const __m256d g = gain4(dx, dy, clamp2, scale, plan);
        const __m256d term = _mm256_mul_pd(_mm256_loadu_pd(rs_power + i), g);
        neumaier4(term, lane_total, lane_comp);
    }
    for (int lane = 0; lane < 4; ++lane) {
        const double sum = total + lane_total[lane];
        if (std::abs(total) >= std::abs(lane_total[lane])) {
            comp += (total - sum) + lane_total[lane];
        } else {
            comp += (lane_total[lane] - sum) + total;
        }
        total = sum;
        comp += lane_comp[lane];
    }
    return i;
}

std::size_t batch_snr_avx2(const GainKernel& kernel, const double* rs_x,
                           const double* rs_y, const double* rs_power,
                           const std::uint32_t* serving, const double* sub_x,
                           const double* sub_y, const double* totals,
                           const double* comps, units::Watt ambient_noise,
                           double* out_snr, std::size_t n) {
    const PowPlan plan = plan_pow(kernel);
    const __m256d clamp2 = _mm256_set1_pd(kernel.clamp_m * kernel.clamp_m);
    const __m256d scale = _mm256_set1_pd(kernel.scale);
    const __m256d ambient = _mm256_set1_pd(ambient_noise.watts());
    const __m256d zero = _mm256_setzero_pd();
    const __m256d inf = _mm256_set1_pd(std::numeric_limits<double>::infinity());
    std::size_t k = 0;
    for (; k + 4 <= n; k += 4) {
        const __m128i idx = _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(serving + k));
        const __m256d sx = _mm256_i32gather_pd(rs_x, idx, 8);
        const __m256d sy = _mm256_i32gather_pd(rs_y, idx, 8);
        const __m256d sp = _mm256_i32gather_pd(rs_power, idx, 8);
        const __m256d dx = _mm256_sub_pd(sx, _mm256_loadu_pd(sub_x + k));
        const __m256d dy = _mm256_sub_pd(sy, _mm256_loadu_pd(sub_y + k));
        const __m256d signal =
            _mm256_mul_pd(sp, gain4(dx, dy, clamp2, scale, plan));
        const __m256d rx_sum = _mm256_add_pd(_mm256_loadu_pd(totals + k),
                                             _mm256_loadu_pd(comps + k));
        const __m256d interference =
            _mm256_add_pd(_mm256_sub_pd(rx_sum, signal), ambient);
        __m256d snr = _mm256_div_pd(signal, interference);
        // Edge semantics of SnrField::snr_of, in the same priority order:
        // non-positive interference -> +inf, then non-positive signal -> 0.
        snr = _mm256_blendv_pd(inf, snr,
                               _mm256_cmp_pd(interference, zero, _CMP_GT_OQ));
        snr = _mm256_blendv_pd(zero, snr,
                               _mm256_cmp_pd(signal, zero, _CMP_GT_OQ));
        _mm256_storeu_pd(out_snr + k, snr);
    }
    return k;
}

}  // namespace sag::wireless::detail
