#include "sag/wireless/link.h"

#include <cmath>
#include <limits>

#include "sag/wireless/two_ray.h"

namespace sag::wireless {

double shannon_capacity(const RadioParams& params, units::Watt rx_power) {
    const units::SnrRatio snr = rx_power / params.noise_floor;
    return params.bandwidth_hz * std::log2(1.0 + snr.ratio());
}

units::Watt min_rx_power_for_rate(const RadioParams& params, double rate_bps) {
    return params.noise_floor * (std::exp2(rate_bps / params.bandwidth_hz) - 1.0);
}

double rate_over_distance(const RadioParams& params, units::Watt tx_power,
                          units::Meters dist) {
    return shannon_capacity(params, received_power(params, tx_power, dist));
}

units::Watt total_received_power(const RadioParams& params,
                                 std::span<const Transmitter> transmitters,
                                 const geom::Vec2& rx) {
    units::Watt total{0.0};
    for (const Transmitter& t : transmitters) {
        total += received_power(params, t.power,
                                units::Meters{geom::distance(t.pos, rx)});
    }
    return total;
}

units::SnrRatio interference_snr(const RadioParams& params,
                                 std::span<const Transmitter> transmitters,
                                 std::size_t serving, const geom::Vec2& rx,
                                 units::Watt extra_noise) {
    const Transmitter& s = transmitters[serving];
    const units::Watt signal = received_power(
        params, s.power, units::Meters{geom::distance(s.pos, rx)});
    const units::Watt interference =
        total_received_power(params, transmitters, rx) - signal + extra_noise;
    if (interference <= units::Watt{0.0}) {
        return units::SnrRatio{std::numeric_limits<double>::infinity()};
    }
    return signal / interference;
}

}  // namespace sag::wireless
