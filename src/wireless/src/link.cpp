#include "sag/wireless/link.h"

#include <cmath>
#include <limits>

#include "sag/wireless/two_ray.h"

namespace sag::wireless {

double shannon_capacity(const RadioParams& params, double rx_power) {
    return params.bandwidth_hz * std::log2(1.0 + rx_power / params.noise_floor);
}

double min_rx_power_for_rate(const RadioParams& params, double rate_bps) {
    return params.noise_floor * (std::exp2(rate_bps / params.bandwidth_hz) - 1.0);
}

double rate_over_distance(const RadioParams& params, double tx_power, double dist) {
    return shannon_capacity(params, received_power(params, tx_power, dist));
}

double total_received_power(const RadioParams& params,
                            std::span<const Transmitter> transmitters,
                            const geom::Vec2& rx) {
    double total = 0.0;
    for (const Transmitter& t : transmitters) {
        total += received_power(params, t.power, geom::distance(t.pos, rx));
    }
    return total;
}

double interference_snr(const RadioParams& params,
                        std::span<const Transmitter> transmitters,
                        std::size_t serving, const geom::Vec2& rx,
                        double extra_noise) {
    const Transmitter& s = transmitters[serving];
    const double signal = received_power(params, s.power, geom::distance(s.pos, rx));
    const double interference =
        total_received_power(params, transmitters, rx) - signal + extra_noise;
    if (interference <= 0.0) return std::numeric_limits<double>::infinity();
    return signal / interference;
}

}  // namespace sag::wireless
