#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "sag/geometry/vec2.h"
#include "sag/units/units.h"
#include "sag/wireless/propagation.h"

namespace sag::wireless {

/// Batch GainKernel evaluation over structure-of-arrays buffers: the
/// Release-mode hot path behind SnrField deltas, SNR reads, and gain
/// matrices.
///
/// Two implementations sit behind one runtime dispatch:
///
///   * scalar — byte-identical to the historical per-link loops
///     (std::hypot distance, std::pow power law, branchy Neumaier).
///     Always available; also handles the <4-element tail of every
///     vector call, so each buffer index sees a stable code path.
///   * avx2 — 4-lane double vectors. Distances come from sqrt(dx²+dy²),
///     the power law from a sqrt/multiply chain (see
///     `kernel_simd_eligible`), the compensation from a blend-select
///     Neumaier that mirrors the scalar branches per lane. Agrees with
///     scalar to a few ulps per term (documented contract: 1e-12
///     relative, tested in simd_equivalence_test).
///
/// Dispatch is resolved once per process from the `SAG_SIMD` environment
/// variable ("auto" default, "scalar", "avx2") intersected with compile
/// support (CMake option SAG_SIMD) and cpuid. Kernels with shadowing or a
/// non-half-integer alpha always take the scalar path regardless of mode.
enum class SimdMode {
    Scalar,  ///< reference loops only
    Avx2,    ///< 4-lane AVX2 vectors with scalar tail
};

/// The process-wide resolved mode (SAG_SIMD env ∩ build ∩ cpuid),
/// computed once on first use.
SimdMode active_simd_mode();

/// "scalar" / "avx2" — diagnostic name for a mode.
std::string_view simd_mode_name(SimdMode mode);

/// Doubles processed per vector operation under the active mode: 4 for
/// AVX2, 1 for scalar. Exported as the `snr_field.simd_lanes` gauge.
std::size_t simd_lanes();

/// True when `kernel` qualifies for the vector path: no shadowing
/// (sigma_db == 0 — faded links are per-link hashes, inherently scalar),
/// a non-negative clamp, and alpha a half-integer in [0.5, 8] so d^-alpha
/// reduces to an exact sqrt/multiply chain on d². Everything the paper
/// and the bundled models use (alpha ∈ [1, 6]) qualifies.
bool kernel_simd_eligible(const GainKernel& kernel);

/// Neumaier-accumulates `signed_power * gain(pos -> (xs[k], ys[k]))`
/// into (totals[k], comps[k]) for every k. The SnrField delta kernel:
/// sign is baked into the power (+p to add an RS contribution, -p to
/// retract it; negation is exact, so retraction subtracts the same
/// double). All four spans must have equal length.
void accumulate_rx(const GainKernel& kernel, const geom::Vec2& pos,
                   units::Watt signed_power, units::MetersSpan xs,
                   units::MetersSpan ys, std::span<double> totals,
                   std::span<double> comps);

/// gains[k] = kernel.gain(pos -> (xs[k], ys[k])): one transmitter against
/// a subscriber column (gain-matrix rows, serving-signal columns).
void batch_gain(const GainKernel& kernel, const geom::Vec2& pos,
                units::MetersSpan xs, units::MetersSpan ys,
                std::span<double> gains);

/// Neumaier-compensated total received power at `rx` from the RS SoA
/// columns (the from-scratch rebuild of one subscriber's total). Scalar
/// path is byte-identical to the historical recompute loop.
void rx_total(const GainKernel& kernel, const geom::Vec2& rx,
              units::MetersSpan rs_x, units::MetersSpan rs_y,
              units::WattSpan rs_power, double& total, double& comp);

/// Definition-2 SNR for a whole subscriber column at once:
///   signal_k = rs_power[serving[k]] * gain(rs[serving[k]] -> sub_k)
///   out[k]   = signal_k / (totals[k] + comps[k] - signal_k + ambient)
/// with the same edge semantics as SnrField::snr_of (zero signal -> 0,
/// zero denominator with positive signal -> +inf). `serving` holds raw RS
/// indices (the IdSpan boundary is the caller's); the AVX2 path gathers
/// RS columns through them with _mm256_i32gather_pd.
void batch_snr(const GainKernel& kernel, units::MetersSpan rs_x,
               units::MetersSpan rs_y, units::WattSpan rs_power,
               std::span<const std::uint32_t> serving, units::MetersSpan sub_x,
               units::MetersSpan sub_y, std::span<const double> totals,
               std::span<const double> comps, units::Watt ambient,
               std::span<double> out_snr);

namespace detail {

/// Decomposition of an eligible alpha for the vector power chain:
/// d^alpha = (d²)^(q/4) with q = 2*alpha an integer, i.e.
/// (d²)^a * (d²)^(b/4), a = q/4, b = q%4 — at most two square roots and
/// a short multiply ladder. `valid` is false for ineligible kernels.
struct PowPlan {
    int a = 0;
    int b = 0;
    bool valid = false;
};
PowPlan plan_pow(const GainKernel& kernel);

}  // namespace detail

}  // namespace sag::wireless
