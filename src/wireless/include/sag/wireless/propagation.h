#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "sag/geometry/vec2.h"
#include "sag/units/units.h"
#include "sag/wireless/radio_params.h"
#include "sag/wireless/radio_profile.h"

namespace sag::wireless {

/// Model-resolved path-gain kernel: the flat, branch-predictable form of a
/// PropagationModel's channel, resolved once (one virtual call) and then
/// evaluated in hot loops (SnrField deltas, gain matrices) with zero
/// dispatch. Every large-scale model in this library is a clamped power
/// law `scale * d^-alpha`, optionally multiplied by a deterministic
/// seeded lognormal shadowing term keyed on the link endpoints:
///
///   * two-ray (paper Eq. 2.1): scale = G, alpha = α, no shadowing
///   * log-distance: scale = 10^(-PL(d0)/10) * d0^n, alpha = n,
///     sigma_db-lognormal shadowing
///   * LoRa link budget: free-space-referenced log-distance
///
/// Shadowing is a pure function of (seed, endpoints): the same link under
/// the same seed always fades identically, which is what keeps SnrField's
/// incremental subtract-what-you-added arithmetic exact and scenario
/// replays deterministic. The fade is symmetric (tx<->rx swap yields the
/// same factor), matching the reciprocity of a physical channel.
struct GainKernel {
    double scale = 1.0;      ///< linear gain coefficient of scale * d^-alpha
    double alpha = 2.0;      ///< attenuation exponent
    double clamp_m = 1.0;    ///< distances below this are clamped (d -> 0 divergence)
    double sigma_db = 0.0;   ///< lognormal shadowing std-dev in dB; 0 disables
    std::uint64_t seed = 0;  ///< shadowing realization seed

    /// Linear path gain of the link tx -> rx. `dist_m` must be the
    /// Euclidean distance between the endpoints (callers usually have it
    /// cached; passing it avoids a redundant sqrt).
    double gain(const geom::Vec2& tx, const geom::Vec2& rx, double dist_m) const {
        const double d = dist_m < clamp_m ? clamp_m : dist_m;
        const double g = scale * std::pow(d, -alpha);
        if (sigma_db == 0.0) return g;
        return g * shadow_factor(tx, rx);
    }

    /// Median (shadowing-free) gain at a bare distance: what range/budget
    /// inversions use, since they have no concrete link endpoints.
    double median_gain(double dist_m) const {
        const double d = dist_m < clamp_m ? clamp_m : dist_m;
        return scale * std::pow(d, -alpha);
    }

    /// The lognormal fade factor 10^(X/10), X ~ N(0, sigma_db^2), as a
    /// deterministic symmetric function of the endpoints and the seed.
    double shadow_factor(const geom::Vec2& tx, const geom::Vec2& rx) const;
};

/// Pluggable large-scale propagation model. A model IS its kernel: the
/// virtual surface resolves parameters into a GainKernel (plus optional
/// receiver-sensitivity metadata), and every public gain/range/power query
/// is derived non-virtually from that kernel. This is what guarantees the
/// tentpole invariant — verifiers, solvers, and the incremental SnrField
/// can never disagree about the channel, because there is exactly one
/// gain function per (model, params) pair and all of them evaluate it.
class PropagationModel {
public:
    virtual ~PropagationModel() = default;

    /// Stable identifier used by scenario JSON ("two_ray", "log_distance",
    /// "lora") and diagnostics.
    virtual std::string_view kind() const = 0;

    /// Resolve the hot-loop kernel for these radio constants.
    virtual GainKernel kernel(const RadioParams& params) const = 0;

    /// Receiver sensitivity floor (minimum detectable rx power) for a
    /// station of `profile`'s class, when the model defines one. The LoRa
    /// link-budget model derives it from SF/BW/NF; the geometric models
    /// return nullopt (the paper's rate constraint is distance-derived).
    virtual std::optional<units::Watt> rx_sensitivity(
        const RadioParams& params, const RadioProfile& profile) const {
        (void)params;
        (void)profile;
        return std::nullopt;
    }

    /// Throws std::invalid_argument when the model's own parameters are
    /// non-physical or inconsistent with `params`.
    virtual void validate(const RadioParams& params) const { (void)params; }

    virtual std::shared_ptr<const PropagationModel> clone() const = 0;

    // --- Kernel-derived queries (non-virtual by design; see class doc) ---

    /// Median linear path gain at distance `dist` (shadowing excluded).
    double median_gain(const RadioParams& params, units::Meters dist) const {
        return kernel(params).median_gain(dist.meters());
    }

    /// Per-link linear gain, including this link's deterministic fade.
    double link_gain(const RadioParams& params, const geom::Vec2& tx,
                     const geom::Vec2& rx, units::Meters dist) const {
        return kernel(params).gain(tx, rx, dist.meters());
    }

    /// Largest distance at which `tx_power` still delivers `target_rx`
    /// under the median gain (the coverage-range / big-M inversion).
    units::Meters range_for(const RadioParams& params, units::Watt tx_power,
                            units::Watt target_rx) const {
        const GainKernel k = kernel(params);
        return units::Meters{std::pow(
            tx_power.watts() * k.scale / target_rx.watts(), 1.0 / k.alpha)};
    }
};

/// Paper Eq. 2.1: Pr = Pt * G * d^-alpha with G = Gt*Gr*ht^2*hr^2, the
/// default model and the one every pre-existing scenario means. Produces
/// bit-for-bit the doubles of wireless::path_gain/received_power.
class TwoRayModel final : public PropagationModel {
public:
    std::string_view kind() const override { return "two_ray"; }
    GainKernel kernel(const RadioParams& params) const override {
        GainKernel k;
        k.scale = params.combined_gain();
        k.alpha = params.alpha;
        k.clamp_m = params.reference_distance.meters();
        return k;
    }
    std::shared_ptr<const PropagationModel> clone() const override {
        return std::make_shared<TwoRayModel>(*this);
    }
};

/// Log-distance path loss with optional seeded lognormal shadowing:
/// PL(d) = PL(d0) + 10 n log10(d / d0) + X_sigma. PL(d0) may be negative:
/// the repo's power scale is abstract, so the reference loss is whatever
/// calibrates the model to the field's length units.
class LogDistanceModel final : public PropagationModel {
public:
    units::Decibel path_loss_at_ref{40.0};  ///< PL(d0) in dB
    double exponent = 3.0;                  ///< n
    units::Meters ref_distance{1.0};        ///< d0; also the clamp distance
    units::Decibel shadowing_sigma{0.0};    ///< sigma of X; 0 = pure log-distance
    std::uint64_t shadowing_seed = 0;

    std::string_view kind() const override { return "log_distance"; }
    GainKernel kernel(const RadioParams& params) const override;
    void validate(const RadioParams& params) const override;
    std::shared_ptr<const PropagationModel> clone() const override {
        return std::make_shared<LogDistanceModel>(*this);
    }
};

/// LoRa-style link budget: free-space-referenced log-distance path loss
/// plus an SF/BW-derived receiver sensitivity,
///   S_dBm = -174 + 10 log10(BW) + NF + SNR_limit(SF),
/// the standard LoRa budget (and exactly the loraGetSnrLimit computation
/// of the esp32_loradv firmware this model is calibrated against). The
/// sensitivity is what a scenario generator inverts into per-subscriber
/// distance requests; the SNR_limit table is the demodulator's floor per
/// spreading factor.
class LoRaLinkBudgetModel final : public PropagationModel {
public:
    int spreading_factor = 9;
    double bandwidth_hz = 125e3;
    units::Decibel noise_figure{6.0};  ///< budget NF; profile NF adds on top
    double path_exponent = 3.5;        ///< n beyond the free-space reference
    units::Meters ref_distance{1.0};   ///< d0 of the free-space reference
    double frequency_hz = 868e6;       ///< carrier, sets PL(d0) via FSPL

    std::string_view kind() const override { return "lora"; }
    GainKernel kernel(const RadioParams& params) const override;
    std::optional<units::Watt> rx_sensitivity(
        const RadioParams& params, const RadioProfile& profile) const override;
    void validate(const RadioParams& params) const override;
    std::shared_ptr<const PropagationModel> clone() const override {
        return std::make_shared<LoRaLinkBudgetModel>(*this);
    }

    /// Demodulation SNR floor per spreading factor (dB), SF in [7, 12].
    static units::Decibel snr_limit(int sf);
    /// Free-space path loss at ref_distance for this carrier (dB).
    units::Decibel reference_path_loss() const;
    /// The full budget sensitivity in dBm for a given extra receiver NF.
    units::DecibelMilliwatt sensitivity_dbm(units::Decibel extra_noise_figure) const;
};

/// The process-wide default model (two-ray): what a Scenario without an
/// explicit propagation block means.
const PropagationModel& two_ray_model();

/// Factory by kind string (default-constructed parameters); throws
/// std::invalid_argument on an unknown kind.
std::shared_ptr<const PropagationModel> make_model(std::string_view kind);

// --- Model-parametric link helpers (mirror two_ray.h's free functions) ---

/// Median received power at a bare distance.
units::Watt received_power(const PropagationModel& model, const RadioParams& params,
                           units::Watt tx_power, units::Meters dist);

/// Received power over the concrete link tx -> rx (shadowing included).
units::Watt received_power(const PropagationModel& model, const RadioParams& params,
                           units::Watt tx_power, const geom::Vec2& tx,
                           const geom::Vec2& rx);

/// Minimum transmit power delivering `target_rx_power` at distance `dist`
/// under the median gain. Inverse of the median received_power.
units::Watt tx_power_for(const PropagationModel& model, const RadioParams& params,
                         units::Watt target_rx_power, units::Meters dist);

/// Minimum transmit power delivering `target_rx_power` over the concrete
/// link tx -> rx. Exact inverse of the link received_power: feeding the
/// result back reproduces `target_rx_power` to rounding (tested to 1e-12).
units::Watt tx_power_for(const PropagationModel& model, const RadioParams& params,
                         units::Watt target_rx_power, const geom::Vec2& tx,
                         const geom::Vec2& rx);

/// Largest distance at which `tx_power` still delivers `target_rx_power`
/// (median gain).
units::Meters range_for(const PropagationModel& model, const RadioParams& params,
                        units::Watt tx_power, units::Watt target_rx_power);

/// d_max of Algorithm 2 under this model: where a `max_power` signal drops
/// below the ignorable-noise level N_max.
units::Meters ignorable_noise_distance(const PropagationModel& model,
                                       const RadioParams& params,
                                       units::Watt max_power);

}  // namespace sag::wireless
