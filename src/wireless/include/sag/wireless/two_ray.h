#pragma once

#include "sag/geometry/vec2.h"
#include "sag/wireless/radio_params.h"

namespace sag::wireless {

/// Two-ray ground path-loss model (paper Eq. 2.1):
/// Pr = Pt * G * d^-alpha, with d clamped to params.reference_distance.
double received_power(const RadioParams& params, double tx_power, double dist);

/// Path gain G * d^-alpha alone (received power per unit transmit power).
double path_gain(const RadioParams& params, double dist);

/// Minimum transmit power such that the receiver at distance `dist` sees at
/// least `target_rx_power`. Inverse of received_power in Pt.
double tx_power_for(const RadioParams& params, double target_rx_power, double dist);

/// Largest distance at which a transmitter at `tx_power` still delivers
/// `target_rx_power`: d = (Pt * G / Pr)^(1/alpha).
double range_for(const RadioParams& params, double tx_power, double target_rx_power);

/// d_max of Algorithm 2: the distance beyond which a max-power transmitter's
/// signal drops below the ignorable-noise level N_max.
double ignorable_noise_distance(const RadioParams& params);

}  // namespace sag::wireless
