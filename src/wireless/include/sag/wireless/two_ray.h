#pragma once

#include "sag/units/units.h"
#include "sag/wireless/radio_params.h"

namespace sag::wireless {

/// Two-ray ground path-loss model (paper Eq. 2.1):
/// Pr = Pt * G * d^-alpha, with d clamped to params.reference_distance.
units::Watt received_power(const RadioParams& params, units::Watt tx_power,
                           units::Meters dist);

/// Path gain G * d^-alpha alone (received power per unit transmit power,
/// a dimensionless linear attenuation in this scale-free model).
double path_gain(const RadioParams& params, units::Meters dist);

/// Minimum transmit power such that the receiver at distance `dist` sees at
/// least `target_rx_power`. Inverse of received_power in Pt.
units::Watt tx_power_for(const RadioParams& params, units::Watt target_rx_power,
                         units::Meters dist);

/// Largest distance at which a transmitter at `tx_power` still delivers
/// `target_rx_power`: d = (Pt * G / Pr)^(1/alpha).
units::Meters range_for(const RadioParams& params, units::Watt tx_power,
                        units::Watt target_rx_power);

/// d_max of Algorithm 2: the distance beyond which a max-power transmitter's
/// signal drops below the ignorable-noise level N_max.
units::Meters ignorable_noise_distance(const RadioParams& params);

}  // namespace sag::wireless
