#pragma once

#include <span>
#include <vector>

#include "sag/geometry/vec2.h"
#include "sag/wireless/radio_params.h"

namespace sag::wireless {

/// A radiating station: position and current transmission power.
struct Transmitter {
    geom::Vec2 pos;
    double power = 0.0;
};

/// Shannon link capacity C = B * log2(1 + Pr / N0), in bps.
double shannon_capacity(const RadioParams& params, double rx_power);

/// Minimum received power that sustains `rate_bps`:
/// Pr = N0 * (2^(rate/B) - 1). Inverse of shannon_capacity.
double min_rx_power_for_rate(const RadioParams& params, double rate_bps);

/// Data rate sustained over distance `dist` at transmit power `tx_power`.
double rate_over_distance(const RadioParams& params, double tx_power, double dist);

/// Interference-limited SNR at receiver `rx` served by transmitter
/// `serving` (paper Definition 2): p_serving / (sum of all received powers
/// - p_serving + extra_noise). Returns +infinity when the denominator is
/// zero (single active transmitter, no extra noise).
double interference_snr(const RadioParams& params,
                        std::span<const Transmitter> transmitters,
                        std::size_t serving, const geom::Vec2& rx,
                        double extra_noise = 0.0);

/// Total power received at `rx` from every transmitter in the set.
double total_received_power(const RadioParams& params,
                            std::span<const Transmitter> transmitters,
                            const geom::Vec2& rx);

}  // namespace sag::wireless
