#pragma once

#include <span>
#include <vector>

#include "sag/geometry/vec2.h"
#include "sag/units/units.h"
#include "sag/wireless/radio_params.h"

namespace sag::wireless {

/// A radiating station: position and current transmission power.
struct Transmitter {
    geom::Vec2 pos;
    units::Watt power{0.0};
};

/// Shannon link capacity C = B * log2(1 + Pr / N0), in bps.
double shannon_capacity(const RadioParams& params, units::Watt rx_power);

/// Minimum received power that sustains `rate_bps`:
/// Pr = N0 * (2^(rate/B) - 1). Inverse of shannon_capacity.
units::Watt min_rx_power_for_rate(const RadioParams& params, double rate_bps);

/// Data rate sustained over distance `dist` at transmit power `tx_power`.
double rate_over_distance(const RadioParams& params, units::Watt tx_power,
                          units::Meters dist);

/// Interference-limited SNR at receiver `rx` served by transmitter
/// `serving` (paper Definition 2): p_serving / (sum of all received powers
/// - p_serving + extra_noise). Returns +infinity when the denominator is
/// zero (single active transmitter, no extra noise). `extra_noise` is a
/// linear power added to the denominator — the same quantity (and unit)
/// as RadioParams::snr_ambient_noise; the zero default selects the pure
/// Definition-2 interference-limited model.
units::SnrRatio interference_snr(const RadioParams& params,
                                 std::span<const Transmitter> transmitters,
                                 std::size_t serving, const geom::Vec2& rx,
                                 units::Watt extra_noise = units::Watt{0.0});

/// Total power received at `rx` from every transmitter in the set.
units::Watt total_received_power(const RadioParams& params,
                                 std::span<const Transmitter> transmitters,
                                 const geom::Vec2& rx);

}  // namespace sag::wireless
