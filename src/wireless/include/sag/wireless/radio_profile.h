#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "sag/units/units.h"
#include "sag/wireless/radio_params.h"

namespace sag::wireless {

/// Per-station radio class: the hardware heterogeneity layer on top of the
/// scenario-wide RadioParams. A profile overrides the fields that differ
/// between equipment classes (meshtastic-style router vs. client nodes,
/// or the mixed BS/relay deployments of arXiv:1408.6605) while everything
/// else — propagation constants, bandwidth, noise environment — stays
/// shared in RadioParams.
///
/// Resolution contract: a field left at its default ("inherit") resolves
/// to the RadioParams value through the same doubles, so a scenario whose
/// profiles are all-default behaves bit-for-bit like one with no profiles.
struct RadioProfile {
    std::string name = "default";

    /// Transmit power cap of this class. nullopt inherits
    /// RadioParams::max_power (the homogeneous paper model).
    std::optional<units::Watt> max_power;

    /// Receiver noise figure. Raises the station's required received
    /// power by this many dB: a noisier front end needs a proportionally
    /// stronger signal for the same effective rate. 0 dB inherits the
    /// ideal-receiver paper model.
    units::Decibel noise_figure{0.0};

    /// Fraction of time this class may transmit (LoRa/ISM duty limits,
    /// meshtastic router-vs-client airtime budgets). Carried through
    /// scenario IO for downstream schedulers; the placement solvers treat
    /// it as metadata.
    double duty_cycle = 1.0;

    /// P_max of a station in this class.
    units::Watt resolve_max_power(const RadioParams& params) const {
        return max_power ? *max_power : params.max_power;
    }

    /// Linear factor the noise figure applies to a required rx power.
    units::SnrRatio noise_figure_factor() const {
        return units::from_db(noise_figure);
    }

    /// Throws std::invalid_argument on a non-physical profile.
    void validate(const RadioParams& params) const {
        if (max_power && *max_power <= units::Watt{0.0})
            throw std::invalid_argument("profile '" + name +
                                        "': max_power override must be positive");
        if (max_power && *max_power > params.max_power)
            throw std::invalid_argument(
                "profile '" + name +
                "': max_power override exceeds RadioParams::max_power");
        if (noise_figure < units::Decibel{0.0})
            throw std::invalid_argument("profile '" + name +
                                        "': noise_figure must be non-negative");
        if (duty_cycle <= 0.0 || duty_cycle > 1.0)
            throw std::invalid_argument("profile '" + name +
                                        "': duty_cycle must be in (0, 1]");
    }
};

/// Router-class profile: full transmit power, always-on duty — the
/// backbone node class (meshtastic ROUTER/REPEATER).
inline RadioProfile router_profile() {
    RadioProfile p;
    p.name = "router";
    return p;
}

/// Client-class profile: power backed off `backoff` dB from P_max, a
/// consumer-grade (noisier) receiver front end, 10% airtime.
inline RadioProfile client_profile(const RadioParams& params,
                                   units::Decibel backoff = units::Decibel{6.0},
                                   units::Decibel noise_figure = units::Decibel{6.0}) {
    RadioProfile p;
    p.name = "client";
    p.max_power = params.max_power / units::from_db(backoff).ratio();
    p.noise_figure = noise_figure;
    p.duty_cycle = 0.1;
    return p;
}

}  // namespace sag::wireless
