#pragma once

#include <stdexcept>

namespace sag::wireless {

/// Physical-layer constants of the two-ray ground model and the relay
/// hardware, shared by every algorithm in the library (paper §II, Eq. 2.1).
///
/// Power is expressed in the paper's abstract "power units"; the defaults
/// are chosen so that an RS transmitting at max_power covers the paper's
/// subscriber distance requests (30-40 length units) and the power plots
/// land at magnitudes comparable to Figs. 4-5 and 7.
struct RadioParams {
    double tx_gain = 1.0;        ///< G_t, transmitter antenna gain
    double rx_gain = 1.0;        ///< G_r, receiver antenna gain
    double tx_height = 1.5;      ///< h_t, transmitter tower height
    double rx_height = 1.5;      ///< h_r, receiver tower height
    double alpha = 3.0;          ///< attenuation factor, paper range [2, 4]
    double max_power = 50.0;     ///< P_max, maximum RS transmission power
    double noise_floor = 1e-7;   ///< N_0, thermal noise at the receiver
    double bandwidth_hz = 1e6;   ///< B, channel bandwidth for Shannon capacity
    /// Distances below this are clamped before applying d^-alpha: the
    /// two-ray model diverges as d -> 0 and the paper's Algorithm 4 may
    /// place an RS exactly on an SS ("move p to the same location as q").
    double reference_distance = 1.0;
    /// N_max of Algorithm 2 (Zone Partition): the largest received power
    /// that may be ignored as inter-zone noise.
    double ignorable_noise = 7.5e-5;
    /// Ambient (thermal) noise added to the interference in every
    /// subscriber SNR denominator: SNR = p_serving / (interference + this).
    /// Paper §II defines SNR_r = P_r / N_0 alongside the interference-only
    /// Definition 2; the default is calibrated so the Fig. 3d feasibility
    /// onset lands where the paper reports it (IAC, whose candidates sit
    /// exactly on the feasible-circle boundary, turns infeasible near
    /// -12 dB; GAC and SAMC survive longer). Set to 0 for the pure
    /// Definition-2 interference-limited model.
    double snr_ambient_noise = 0.065;

    /// Combined constant G = Gt * Gr * ht^2 * hr^2 of Eq. 2.1.
    constexpr double combined_gain() const {
        return tx_gain * rx_gain * tx_height * tx_height * rx_height * rx_height;
    }

    /// Throws std::invalid_argument when any constant is non-physical.
    void validate() const {
        if (alpha < 1.0 || alpha > 6.0) throw std::invalid_argument("alpha out of range");
        if (max_power <= 0.0) throw std::invalid_argument("max_power must be positive");
        if (noise_floor <= 0.0) throw std::invalid_argument("noise_floor must be positive");
        if (bandwidth_hz <= 0.0) throw std::invalid_argument("bandwidth must be positive");
        if (reference_distance <= 0.0)
            throw std::invalid_argument("reference_distance must be positive");
        if (tx_gain <= 0.0 || rx_gain <= 0.0 || tx_height <= 0.0 || rx_height <= 0.0)
            throw std::invalid_argument("gains/heights must be positive");
        if (snr_ambient_noise < 0.0)
            throw std::invalid_argument("snr_ambient_noise must be non-negative");
    }
};

}  // namespace sag::wireless
