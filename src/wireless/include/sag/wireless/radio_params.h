#pragma once

#include <stdexcept>

#include "sag/units/units.h"

namespace sag::wireless {

/// Physical-layer constants of the two-ray ground model and the relay
/// hardware, shared by every algorithm in the library (paper §II, Eq. 2.1).
///
/// Power is expressed in the paper's abstract "power units" carried by
/// units::Watt (the linear-power domain); the defaults are chosen so that
/// an RS transmitting at max_power covers the paper's subscriber distance
/// requests (30-40 length units) and the power plots land at magnitudes
/// comparable to Figs. 4-5 and 7. Every power-typed field is a strong
/// type: assigning a dB value or a distance into one is a compile error.
struct RadioParams {
    double tx_gain = 1.0;               ///< G_t, transmitter antenna gain
    double rx_gain = 1.0;               ///< G_r, receiver antenna gain
    units::Meters tx_height{1.5};       ///< h_t, transmitter tower height
    units::Meters rx_height{1.5};       ///< h_r, receiver tower height
    double alpha = 3.0;                 ///< attenuation factor, paper range [2, 4]
    units::Watt max_power{50.0};        ///< P_max, maximum RS transmission power
    units::Watt noise_floor{1e-7};      ///< N_0, thermal noise at the receiver
    double bandwidth_hz = 1e6;          ///< B, channel bandwidth for Shannon capacity
    /// Distances below this are clamped before applying d^-alpha: the
    /// two-ray model diverges as d -> 0 and the paper's Algorithm 4 may
    /// place an RS exactly on an SS ("move p to the same location as q").
    units::Meters reference_distance{1.0};
    /// N_max of Algorithm 2 (Zone Partition): the largest received power
    /// that may be ignored as inter-zone noise.
    units::Watt ignorable_noise{7.5e-5};
    /// Ambient (thermal) noise added to the interference in every
    /// subscriber SNR denominator: SNR = p_serving / (interference + this).
    /// Paper §II defines SNR_r = P_r / N_0 alongside the interference-only
    /// Definition 2; the default is calibrated so the Fig. 3d feasibility
    /// onset lands where the paper reports it (IAC, whose candidates sit
    /// exactly on the feasible-circle boundary, turns infeasible near
    /// -12 dB; GAC and SAMC survive longer). Set to 0 for the pure
    /// Definition-2 interference-limited model.
    units::Watt snr_ambient_noise{0.065};

    /// Combined constant G = Gt * Gr * ht^2 * hr^2 of Eq. 2.1. Returned
    /// as a bare double: the heights' m^4 dimension is folded into the
    /// model constant that multiplies d^-alpha (the two-ray closed form),
    /// so G has no standalone physical unit worth naming.
    constexpr double combined_gain() const {
        const double ht = tx_height.meters();
        const double hr = rx_height.meters();
        return tx_gain * rx_gain * ht * ht * hr * hr;
    }

    /// Throws std::invalid_argument when any constant is non-physical or
    /// the noise terms are mutually inconsistent.
    void validate() const {
        if (alpha < 1.0 || alpha > 6.0) throw std::invalid_argument("alpha out of range");
        if (max_power <= units::Watt{0.0})
            throw std::invalid_argument("max_power must be positive");
        if (noise_floor <= units::Watt{0.0})
            throw std::invalid_argument("noise_floor must be positive");
        if (bandwidth_hz <= 0.0) throw std::invalid_argument("bandwidth must be positive");
        if (reference_distance <= units::Meters{0.0})
            throw std::invalid_argument("reference_distance must be positive");
        if (tx_gain <= 0.0 || rx_gain <= 0.0 || tx_height <= units::Meters{0.0} ||
            rx_height <= units::Meters{0.0})
            throw std::invalid_argument("gains/heights must be positive");
        if (snr_ambient_noise < units::Watt{0.0})
            throw std::invalid_argument("snr_ambient_noise must be non-negative");
        // The ambient SNR-denominator term models thermal noise plus
        // inter-zone leakage, so when enabled it cannot undercut the
        // thermal floor N_0 it subsumes...
        if (snr_ambient_noise > units::Watt{0.0} && snr_ambient_noise < noise_floor)
            throw std::invalid_argument(
                "snr_ambient_noise, when positive, must be at least noise_floor");
        // ...and it is bounded above by P_max: an ambient term at or above
        // the maximum transmit power would deny SNR >= 1 (0 dB) even to a
        // subscriber co-located with its max-power server.
        if (snr_ambient_noise >= max_power)
            throw std::invalid_argument("snr_ambient_noise must be below max_power");
    }
};

}  // namespace sag::wireless
