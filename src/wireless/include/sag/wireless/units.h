#pragma once

#include <cmath>

namespace sag::wireless {

/// Decibel <-> linear power-ratio conversions.
/// The paper quotes SNR thresholds in dB (e.g. -15 dB); all internal
/// computation uses linear ratios.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }
inline double linear_to_db(double ratio) { return 10.0 * std::log10(ratio); }

}  // namespace sag::wireless
