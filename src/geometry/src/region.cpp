#include "sag/geometry/region.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sag::geom {

namespace {

/// max_i (|p - c_i| - r_i): negative inside the common region.
double worst_violation(std::span<const Circle> disks, const Vec2& p) {
    double worst = -std::numeric_limits<double>::infinity();
    for (const Circle& c : disks) {
        worst = std::max(worst, distance(c.center, p) - c.radius);
    }
    return worst;
}

}  // namespace

DiskIntersectionWitness deepest_point_of_disks(std::span<const Circle> disks,
                                               int iterations) {
    if (disks.empty()) return {{0.0, 0.0}, 0.0};

    // Start from the centroid of the centers.
    Vec2 p{};
    for (const Circle& c : disks) p += c.center;
    p = p / static_cast<double>(disks.size());

    double max_radius = 0.0;
    for (const Circle& c : disks) max_radius = std::max(max_radius, c.radius);

    Vec2 best = p;
    double best_v = worst_violation(disks, p);

    // Subgradient descent on the convex f(p) = max_i(|p-c_i| - r_i); the
    // subgradient at p is the unit vector away from the center of the
    // currently-worst disk. Diminishing step sizes give convergence.
    double step = std::max(max_radius, 1.0);
    for (int it = 1; it <= iterations; ++it) {
        // Find the worst disk at p.
        double worst = -std::numeric_limits<double>::infinity();
        const Circle* arg = &disks[0];
        for (const Circle& c : disks) {
            const double v = distance(c.center, p) - c.radius;
            if (v > worst) {
                worst = v;
                arg = &c;
            }
        }
        if (worst < best_v) {
            best_v = worst;
            best = p;
        }
        const Vec2 g = (p - arg->center).normalized();
        p -= g * (step / static_cast<double>(it));
    }
    return {best, best_v};
}

std::optional<Vec2> common_point_of_disks(std::span<const Circle> disks,
                                          double eps) {
    if (disks.empty()) return Vec2{0.0, 0.0};

    const auto in_all = [&](const Vec2& p) {
        return worst_violation(disks, p) <= eps;
    };

    // Fast exact path: centers and pairwise boundary intersections.
    for (const Circle& c : disks) {
        if (in_all(c.center)) return c.center;
    }
    for (std::size_t i = 0; i < disks.size(); ++i) {
        for (std::size_t j = i + 1; j < disks.size(); ++j) {
            for (const Vec2& p : circle_intersections(disks[i], disks[j])) {
                if (in_all(p)) return p;
            }
            // A lens of two disks whose deepest point is not a center:
            // the chord midpoint between the two intersection points.
            const auto pts = circle_intersections(disks[i], disks[j]);
            if (pts.size() == 2) {
                const Vec2 mid = lerp(pts[0], pts[1], 0.5);
                if (in_all(mid)) return mid;
            }
        }
    }

    // Robust fallback for near-tangent configurations.
    const DiskIntersectionWitness w = deepest_point_of_disks(disks);
    if (w.violation <= eps) return w.point;
    return std::nullopt;
}

}  // namespace sag::geom
