// SpatialGridT became a header-only template when it grew a typed-ID
// index parameter (see spatial_grid.h); this TU intentionally keeps the
// translation unit in the build so the header is compiled standalone.
#include "sag/geometry/spatial_grid.h"

namespace sag::geom {

// Anchor the default instantiation so its code is shared rather than
// re-emitted in every consumer.
template class SpatialGridT<std::size_t>;

}  // namespace sag::geom
