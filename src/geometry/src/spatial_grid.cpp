#include "sag/geometry/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sag/geometry/circle.h"

namespace sag::geom {

SpatialGrid::SpatialGrid(std::vector<Vec2> points, double cell_size)
    : points_(std::move(points)), cell_size_(cell_size) {
    if (cell_size_ <= 0.0) throw std::invalid_argument("cell_size must be positive");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        cells_[key(cell_coord(points_[i].x), cell_coord(points_[i].y))].push_back(i);
    }
}

std::int64_t SpatialGrid::cell_coord(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell_size_));
}

SpatialGrid::CellKey SpatialGrid::key(std::int64_t cx, std::int64_t cy) const {
    // Interleave-free packing; fields are far below 2^31 cells across.
    return (cx << 32) ^ (cy & 0xffffffff);
}

std::vector<std::size_t> SpatialGrid::query_radius(const Vec2& center,
                                                   double radius) const {
    std::vector<std::size_t> out;
    if (radius < 0.0) return out;
    const std::int64_t cx0 = cell_coord(center.x - radius);
    const std::int64_t cx1 = cell_coord(center.x + radius);
    const std::int64_t cy0 = cell_coord(center.y - radius);
    const std::int64_t cy1 = cell_coord(center.y + radius);
    const double r_sq = radius * radius;
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
        for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
            const auto it = cells_.find(key(cx, cy));
            if (it == cells_.end()) continue;
            for (const std::size_t i : it->second) {
                if (distance_sq(points_[i], center) <= r_sq + kEps) {
                    out.push_back(i);
                }
            }
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<std::pair<std::size_t, std::size_t>> SpatialGrid::all_pairs_within(
    double radius) const {
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    if (radius < 0.0) return pairs;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        for (const std::size_t j : query_radius(points_[i], radius)) {
            if (j > i) pairs.emplace_back(i, j);
        }
    }
    std::sort(pairs.begin(), pairs.end());
    return pairs;
}

}  // namespace sag::geom
