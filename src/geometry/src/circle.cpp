#include "sag/geometry/circle.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace sag::geom {

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
    return os << '(' << v.x << ", " << v.y << ')';
}

bool Circle::on_boundary(const Vec2& p, double eps) const {
    return std::abs(distance(center, p) - radius) <= eps;
}

Vec2 Circle::point_at_angle(double theta) const {
    return center + Vec2{std::cos(theta), std::sin(theta)} * radius;
}

std::vector<Vec2> circle_intersections(const Circle& a, const Circle& b) {
    const double d = distance(a.center, b.center);
    if (d <= kEps) return {};  // concentric (possibly coincident): none or infinite
    // No intersection when too far apart or one strictly inside the other.
    if (d > a.radius + b.radius + kEps) return {};
    if (d < std::abs(a.radius - b.radius) - kEps) return {};

    // Distance from a.center to the chord's foot along the center line.
    const double x = (d * d + a.radius * a.radius - b.radius * b.radius) / (2.0 * d);
    const double h_sq = a.radius * a.radius - x * x;
    const Vec2 dir = (b.center - a.center) / d;
    const Vec2 foot = a.center + dir * x;
    if (h_sq <= kEps) return {foot};  // tangent (internally or externally)

    const double h = std::sqrt(h_sq);
    const Vec2 perp{-dir.y, dir.x};
    return {foot + perp * h, foot - perp * h};
}

bool disks_overlap(const Circle& a, const Circle& b, double eps) {
    return distance(a.center, b.center) <= a.radius + b.radius + eps;
}

Rect bounding_box(const std::vector<Vec2>& points) {
    if (points.empty()) return {};
    Rect box{points.front(), points.front()};
    for (const Vec2& p : points) {
        box.min.x = std::min(box.min.x, p.x);
        box.min.y = std::min(box.min.y, p.y);
        box.max.x = std::max(box.max.x, p.x);
        box.max.y = std::max(box.max.y, p.y);
    }
    return box;
}

}  // namespace sag::geom
