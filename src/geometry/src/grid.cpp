#include "sag/geometry/grid.h"

#include <cmath>
#include <stdexcept>

namespace sag::geom {

namespace {

std::size_t cells_along(double extent, double cell_size) {
    return static_cast<std::size_t>(std::ceil(extent / cell_size - kEps));
}

}  // namespace

std::size_t grid_center_count(const Rect& field, double cell_size) {
    if (cell_size <= 0.0) throw std::invalid_argument("grid cell_size must be positive");
    return cells_along(field.width(), cell_size) * cells_along(field.height(), cell_size);
}

std::vector<Vec2> grid_centers(const Rect& field, double cell_size) {
    if (cell_size <= 0.0) throw std::invalid_argument("grid cell_size must be positive");
    const std::size_t nx = cells_along(field.width(), cell_size);
    const std::size_t ny = cells_along(field.height(), cell_size);
    std::vector<Vec2> centers;
    centers.reserve(nx * ny);
    for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
            Vec2 p{field.min.x + (static_cast<double>(ix) + 0.5) * cell_size,
                   field.min.y + (static_cast<double>(iy) + 0.5) * cell_size};
            // Clamp centers of overhanging cells back inside the field.
            p.x = std::min(p.x, field.max.x);
            p.y = std::min(p.y, field.max.y);
            centers.push_back(p);
        }
    }
    return centers;
}

}  // namespace sag::geom
