#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sag/geometry/circle.h"
#include "sag/geometry/vec2.h"

namespace sag::geom {

/// A uniform hash-grid over points for neighbor queries. Turns the
/// all-pairs O(n^2) scans in Zone Partition and IAC candidate generation
/// into O(n * neighbors) — irrelevant at the paper's 70 subscribers,
/// decisive for city-scale instances (examples/city_scale.cpp).
///
/// `Index` is the identifier the grid reports hits as: the default
/// `std::size_t` for anonymous point sets, or a sag::ids strong ID
/// (SpatialGridT<SsId> over subscribers, SpatialGridT<RsId> over relay
/// positions) so a query over one entity space cannot leak raw indices
/// into another. Any type constructible from std::size_t via
/// static_cast with <, ==, and pair-sorting semantics works; the grid
/// itself stays ID-library-agnostic.
///
/// Cell size should be on the order of the query radius; queries fall
/// back to correct (if slower) behaviour for any positive cell size.
template <class Index = std::size_t>
class SpatialGridT {
public:
    /// Indexes `points` (kept by copy) with square cells of `cell_size`.
    SpatialGridT(std::vector<Vec2> points, double cell_size)
        : points_(std::move(points)), cell_size_(cell_size) {
        if (cell_size_ <= 0.0)
            throw std::invalid_argument("cell_size must be positive");
        for (std::size_t i = 0; i < points_.size(); ++i) {
            cells_[key(cell_coord(points_[i].x), cell_coord(points_[i].y))]
                .push_back(i);
        }
    }

    std::size_t size() const { return points_.size(); }
    const Vec2& point(Index i) const { return points_[to_raw(i)]; }

    /// All points within `radius` of `center` (inclusive), in ascending
    /// index order.
    std::vector<Index> query_radius(const Vec2& center, double radius) const {
        std::vector<Index> out;
        if (radius < 0.0) return out;
        const std::int64_t cx0 = cell_coord(center.x - radius);
        const std::int64_t cx1 = cell_coord(center.x + radius);
        const std::int64_t cy0 = cell_coord(center.y - radius);
        const std::int64_t cy1 = cell_coord(center.y + radius);
        const double r_sq = radius * radius;
        for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
            for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
                const auto it = cells_.find(key(cx, cy));
                if (it == cells_.end()) continue;
                for (const std::size_t i : it->second) {
                    if (distance_sq(points_[i], center) <= r_sq + kEps) {
                        out.push_back(static_cast<Index>(i));
                    }
                }
            }
        }
        std::sort(out.begin(), out.end());
        return out;
    }

    /// All index pairs (i < j) within `radius` of each other, each pair
    /// reported once, lexicographically sorted. Exact — no false
    /// positives or negatives.
    std::vector<std::pair<Index, Index>> all_pairs_within(double radius) const {
        std::vector<std::pair<Index, Index>> pairs;
        if (radius < 0.0) return pairs;
        for (std::size_t i = 0; i < points_.size(); ++i) {
            const Index self = static_cast<Index>(i);
            for (const Index j : query_radius(points_[i], radius)) {
                if (self < j) pairs.emplace_back(self, j);
            }
        }
        std::sort(pairs.begin(), pairs.end());
        return pairs;
    }

private:
    using CellKey = std::int64_t;

    static std::size_t to_raw(Index i) {
        if constexpr (std::is_integral_v<Index>) {
            return static_cast<std::size_t>(i);
        } else {
            return i.index();
        }
    }

    CellKey key(std::int64_t cx, std::int64_t cy) const {
        // Interleave-free packing; fields are far below 2^31 cells across.
        return (cx << 32) ^ (cy & 0xffffffff);
    }
    std::int64_t cell_coord(double v) const {
        return static_cast<std::int64_t>(std::floor(v / cell_size_));
    }

    std::vector<Vec2> points_;
    double cell_size_;
    std::unordered_map<CellKey, std::vector<std::size_t>> cells_;
};

/// The anonymous-index grid (pre-typed-ID API, still right for point sets
/// that are not entities — e.g. scratch geometry in tests).
using SpatialGrid = SpatialGridT<>;

}  // namespace sag::geom
