#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sag/geometry/vec2.h"

namespace sag::geom {

/// A uniform hash-grid over points for neighbor queries. Turns the
/// all-pairs O(n^2) scans in Zone Partition and IAC candidate generation
/// into O(n * neighbors) — irrelevant at the paper's 70 subscribers,
/// decisive for city-scale instances (examples/city_scale.cpp).
///
/// Cell size should be on the order of the query radius; queries fall
/// back to correct (if slower) behaviour for any positive cell size.
class SpatialGrid {
public:
    /// Indexes `points` (kept by copy) with square cells of `cell_size`.
    SpatialGrid(std::vector<Vec2> points, double cell_size);

    std::size_t size() const { return points_.size(); }
    const Vec2& point(std::size_t i) const { return points_[i]; }

    /// Indices of all points within `radius` of `center` (inclusive),
    /// in ascending index order.
    std::vector<std::size_t> query_radius(const Vec2& center, double radius) const;

    /// All index pairs (i < j) within `radius` of each other, each pair
    /// reported once, lexicographically sorted. Exact — no false
    /// positives or negatives.
    std::vector<std::pair<std::size_t, std::size_t>> all_pairs_within(
        double radius) const;

private:
    using CellKey = std::int64_t;
    CellKey key(std::int64_t cx, std::int64_t cy) const;
    std::int64_t cell_coord(double v) const;

    std::vector<Vec2> points_;
    double cell_size_;
    std::unordered_map<CellKey, std::vector<std::size_t>> cells_;
};

}  // namespace sag::geom
