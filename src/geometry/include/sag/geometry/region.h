#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sag/geometry/circle.h"

namespace sag::geom {

/// Result of a disk-intersection query: a witness point and the worst
/// (largest) signed violation max_i (|p - c_i| - r_i) at that point.
/// violation <= 0 means `point` lies in every closed disk.
struct DiskIntersectionWitness {
    Vec2 point;
    double violation = 0.0;
};

/// Finds a point in the common intersection of the closed disks, if any.
///
/// This implements the "all the circles in W have common area" test of the
/// paper's Algorithm 5 (Update RS Topology). Strategy:
///  1. exact candidate enumeration — disk centers and all pairwise boundary
///     intersection points; if the intersection region is non-empty its
///     closure contains one of these candidates (or a single disk's center
///     when n == 1, or any point of a lens when n == 2);
///  2. a convex-minimization fallback: f(p) = max_i(|p - c_i| - r_i) is
///     convex, so subgradient descent locates the Chebyshev-deepest point.
///     This rescues near-tangent configurations that candidate enumeration
///     misses through floating-point cancellation.
///
/// Returns std::nullopt when the disks provably have no common point.
std::optional<Vec2> common_point_of_disks(std::span<const Circle> disks,
                                          double eps = 1e-7);

/// The Chebyshev-deepest point of the disk family: argmin of the convex
/// function f(p) = max_i (|p - c_i| - r_i), found by subgradient descent.
/// Useful both as the fallback for common_point_of_disks and to pick a
/// numerically robust relocation target well inside the common region.
DiskIntersectionWitness deepest_point_of_disks(std::span<const Circle> disks,
                                               int iterations = 400);

}  // namespace sag::geom
