#pragma once

#include <cmath>
#include <iosfwd>

namespace sag::geom {

/// A 2-D point / vector with value semantics. All planar positions in the
/// library (subscriber stations, base stations, relay candidates) use Vec2.
struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    constexpr Vec2() = default;
    constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

    constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
    constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
    constexpr Vec2& operator+=(const Vec2& o) { x += o.x; y += o.y; return *this; }
    constexpr Vec2& operator-=(const Vec2& o) { x -= o.x; y -= o.y; return *this; }
    constexpr Vec2& operator*=(double s) { x *= s; y *= s; return *this; }
    constexpr bool operator==(const Vec2& o) const = default;

    constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
    /// Z-component of the 3-D cross product; >0 when `o` is counterclockwise of *this.
    constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
    constexpr double norm_sq() const { return x * x + y * y; }
    double norm() const { return std::hypot(x, y); }

    /// Unit vector in the same direction; returns {1,0} for the zero vector.
    Vec2 normalized() const {
        const double n = norm();
        return n > 0.0 ? Vec2{x / n, y / n} : Vec2{1.0, 0.0};
    }
    /// Counterclockwise rotation by `radians`.
    Vec2 rotated(double radians) const {
        const double c = std::cos(radians), s = std::sin(radians);
        return {x * c - y * s, x * s + y * c};
    }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }
inline constexpr double distance_sq(const Vec2& a, const Vec2& b) { return (a - b).norm_sq(); }

/// Linear interpolation: t=0 -> a, t=1 -> b.
inline constexpr Vec2 lerp(const Vec2& a, const Vec2& b, double t) {
    return a + (b - a) * t;
}

std::ostream& operator<<(std::ostream& os, const Vec2& v);

}  // namespace sag::geom
