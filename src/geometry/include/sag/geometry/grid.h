#pragma once

#include <vector>

#include "sag/geometry/circle.h"

namespace sag::geom {

/// Centers of the square cells of side `cell_size` tiling `field`,
/// row-major from the minimum corner. This is the paper's GAC candidate
/// construction (Fig. 2b): every grid center is a candidate RS position.
/// Cells sticking out past the field edge are kept (their centers are
/// clamped inside), so the whole field is covered.
std::vector<Vec2> grid_centers(const Rect& field, double cell_size);

/// Number of grid centers grid_centers() would return, without
/// materializing them — used to budget ILP candidate counts.
std::size_t grid_center_count(const Rect& field, double cell_size);

}  // namespace sag::geom
