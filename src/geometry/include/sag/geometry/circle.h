#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "sag/geometry/vec2.h"

namespace sag::geom {

/// Geometric tolerance used throughout the library for containment and
/// tangency decisions. Coordinates in this codebase are O(1e3), so 1e-9
/// absolute slack is far below any physically meaningful distance.
inline constexpr double kEps = 1e-9;

/// A circle (and, where stated, the closed disk it bounds).
/// Subscriber "feasible coverage circles" (paper Table I, symbol c_i) are
/// Circles centered at the SS with radius equal to its distance request d_i.
struct Circle {
    Vec2 center;
    double radius = 0.0;

    constexpr Circle() = default;
    constexpr Circle(Vec2 c, double r) : center(c), radius(r) {}
    constexpr bool operator==(const Circle& o) const = default;

    /// True when `p` lies in the closed disk (with `eps` slack outward).
    bool contains(const Vec2& p, double eps = kEps) const {
        return distance_sq(center, p) <= (radius + eps) * (radius + eps);
    }
    /// True when `p` lies on the boundary circle within `eps`.
    bool on_boundary(const Vec2& p, double eps = 1e-6) const;
    /// Point on the boundary at angle `theta` (radians, CCW from +x).
    Vec2 point_at_angle(double theta) const;
};

/// Intersection points of two circles' boundaries.
/// Returns 0 points when the circles are disjoint or one strictly contains
/// the other, 1 point when (nearly) tangent, 2 otherwise. Coincident
/// circles return 0 points (infinite intersection is not representable).
std::vector<Vec2> circle_intersections(const Circle& a, const Circle& b);

/// True when the closed disks of `a` and `b` share at least one point.
bool disks_overlap(const Circle& a, const Circle& b, double eps = kEps);

/// Axis-aligned rectangle [min.x, max.x] x [min.y, max.y].
struct Rect {
    Vec2 min;
    Vec2 max;

    constexpr double width() const { return max.x - min.x; }
    constexpr double height() const { return max.y - min.y; }
    constexpr Vec2 center() const { return {(min.x + max.x) / 2, (min.y + max.y) / 2}; }
    bool contains(const Vec2& p, double eps = kEps) const {
        return p.x >= min.x - eps && p.x <= max.x + eps &&
               p.y >= min.y - eps && p.y <= max.y + eps;
    }
    /// Square field of side `side` centered at the origin, matching the
    /// paper's plots which use axes [-side/2, side/2].
    static constexpr Rect centered_square(double side) {
        return {{-side / 2, -side / 2}, {side / 2, side / 2}};
    }
};

/// Smallest axis-aligned rectangle containing all `points`
/// (empty input -> degenerate rect at the origin).
Rect bounding_box(const std::vector<Vec2>& points);

}  // namespace sag::geom
