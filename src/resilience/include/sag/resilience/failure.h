#pragma once

// sag::resilience — relay-failure resilience for deployed SAG networks.
//
// The paper's output is a static deployment plan; a green network running
// at minimized power has no slack when a relay station dies. This module
// models *runtime* RS failures (the solvers' outputs are corrupted by the
// physical world, not by bugs — contrast tests/failure_injection_test.cpp,
// which corrupts solver outputs to exercise the verifiers), assesses the
// damage, and drives a staged self-healing repair (damage.h, repair.h).
//
// Failure domain: the transmitters the pipeline *placed* — coverage RSs
// (addressed by their RsId into CoveragePlan) and connectivity RSs
// (addressed by their node index into ConnectivityPlan). Base stations
// and subscribers are infrastructure/demand and do not fail here.
//
// Every injection is seeded and deterministic: the same (deployment,
// model, seed) triple always yields the same FailureSet, so every
// degradation curve in results/ is replayable.

#include <cstdint>
#include <optional>
#include <vector>

#include "sag/core/sag.h"
#include "sag/core/scenario.h"
#include "sag/geometry/vec2.h"
#include "sag/ids/ids.h"
#include "sag/units/units.h"

namespace sag::resilience {

/// Partial power degradation of a surviving coverage RS: its transmit
/// power is capped at `factor * P_max` (hardware fault, thermal
/// throttling, battery droop) instead of dying outright.
struct Degradation {
    ids::RsId rs = ids::RsId::invalid();
    double factor = 1.0;  ///< surviving power cap as a fraction of P_max, in (0, 1]
};

/// A concrete set of runtime failures against one deployed SagResult.
struct FailureSet {
    /// Failed coverage RSs (IDs into CoveragePlan::rs_positions).
    std::vector<ids::RsId> coverage_down;
    /// Failed connectivity RSs (node indices into ConnectivityPlan;
    /// only NodeKind::ConnectivityRs nodes appear here).
    std::vector<std::size_t> connectivity_down;
    /// Surviving coverage RSs running at reduced power.
    std::vector<Degradation> degraded;

    bool empty() const {
        return coverage_down.empty() && connectivity_down.empty() && degraded.empty();
    }
    std::size_t failure_count() const {
        return coverage_down.size() + connectivity_down.size();
    }
};

/// Independent random knockout: every deployed RS fails i.i.d. with
/// `probability` (the classic reliability model; DARP-style survivability
/// analyses sweep exactly this knob).
struct IndependentFailureModel {
    double probability = 0.1;
    bool include_connectivity = true;  ///< also knock out connectivity RSs
};

/// Spatially correlated disc outage: every deployed RS inside the disc
/// fails together (storm cell, localized power loss, jamming). When
/// `center` is unset a center is drawn uniformly in the field per seed.
struct DiscOutageModel {
    units::Meters radius{100.0};
    std::optional<geom::Vec2> center;
    bool include_connectivity = true;
};

/// Partial power degradation: each coverage RS is degraded i.i.d. with
/// `probability` to a `factor * P_max` cap. Models brown-outs rather than
/// hard failures; no RS leaves the deployment.
struct PowerDegradationModel {
    double probability = 0.1;
    double factor = 0.5;
};

/// Seeded injections. Deterministic for a fixed (deployment, model, seed).
FailureSet inject_independent(const core::SagResult& deployment,
                              const IndependentFailureModel& model,
                              std::uint64_t seed);
FailureSet inject_disc_outage(const core::Scenario& scenario,
                              const core::SagResult& deployment,
                              const DiscOutageModel& model, std::uint64_t seed);
FailureSet inject_power_degradation(const core::SagResult& deployment,
                                    const PowerDegradationModel& model,
                                    std::uint64_t seed);

/// The lower-tier power vector after the failures: failed coverage RSs at
/// zero, degraded RSs clamped to factor * P_max, everything else at its
/// allocated power. Positions/IDs are unchanged (a dead RS keeps its slot
/// so SsId->RsId assignments stay stable); feed this to verify_coverage
/// for an independent end-to-end audit of the damaged network.
std::vector<double> damaged_powers(const core::Scenario& scenario,
                                   const core::SagResult& deployment,
                                   const FailureSet& failures);

}  // namespace sag::resilience
