#pragma once

// Staged self-healing repair: turn a damaged deployment back into a
// verified-feasible (possibly smaller) network.
//
// Stages, in order:
//   1. reassign — orphaned SSs are re-homed onto surviving RSs via
//      incremental SNR probes against a core::SnrField held at the
//      post-failure power caps;
//   2. patch — orphans no surviving RS can reach are served by new
//      relays drawn greedily from the unused IAC candidate pool
//      (bounded by RepairOptions::max_new_relays);
//   3. re-escalate power — the Yates fixed point (opt::
//      fixed_point_power_control) recomputes the minimal lower-tier
//      vector under per-RS caps: P_max for healthy and patched RSs,
//      factor * P_max for degraded survivors;
//   4. re-steinerize — MBMC rebuilds the whole upper tier over the
//      surviving + patched coverage RSs, then UCPO re-optimizes the
//      connectivity powers.
//
// Subscribers that still cannot be served are reported in
// `unrecoverable` — never asserted on. Everything the engine keeps is
// re-verified: RepairOutcome::repaired is a SagResult over
// `covered_scenario`, so verify_coverage / verify_topology run on it
// directly.

#include <limits>
#include <vector>

#include "sag/core/sag.h"
#include "sag/core/scenario.h"
#include "sag/ids/ids.h"
#include "sag/resilience/damage.h"
#include "sag/resilience/failure.h"

namespace sag::resilience {

struct RepairOptions {
    /// Power/verify rounds: a failed verification drops the offending
    /// newly-added SSs and retries, so each round strictly shrinks the
    /// instance toward the guaranteed-feasible surviving core.
    int max_rounds = 4;
    /// Stage-2 budget of patched-in relays; 0 disables patching.
    std::size_t max_new_relays = 8;
};

/// Result of one repair run. `repaired` and its verification live in the
/// SsId space of `covered_scenario`; `covered[k]` maps its subscriber k
/// back to the original scenario's SsId.
struct RepairOutcome {
    /// The original scenario restricted to the subscribers the repaired
    /// network serves (ascending original-SsId order).
    core::Scenario covered_scenario;
    /// Original SsIds of covered_scenario's subscribers, ascending.
    std::vector<ids::SsId> covered;
    /// The repaired two-tier network over covered_scenario.
    core::SagResult repaired;
    /// Original SsIds the engine could not restore, ascending.
    std::vector<ids::SsId> unrecoverable;

    std::size_t reassigned = 0;   ///< orphans re-homed onto surviving RSs
    std::size_t new_relays = 0;   ///< stage-2 relays patched in
    int rounds = 0;               ///< power/verify rounds executed
    double power_before = 0.0;    ///< P_total of the intact deployment
    double power_after = 0.0;     ///< P_total of the repaired network

    bool full_recovery() const { return unrecoverable.empty(); }
    /// Repaired-over-intact total power (the bench's overhead curve);
    /// 0/0 reports 1 (an empty network repaired to an empty network).
    double power_overhead() const {
        return power_before > 0.0 ? power_after / power_before
                                  : (power_after > 0.0 ? std::numeric_limits<
                                                             double>::infinity()
                                                       : 1.0);
    }
};

/// Runs the staged repair. Deterministic: no randomness, all stages are
/// greedy over sorted orders.
RepairOutcome repair(const core::Scenario& scenario,
                     const core::SagResult& deployment,
                     const FailureSet& failures, const RepairOptions& options = {});

}  // namespace sag::resilience
