#pragma once

// Damage assessment: what a FailureSet actually costs the network.
//
// Given the deployed SagResult and a failure set, computes (1) the
// orphaned subscribers — SSs whose access link is no longer feasible
// (dead server, or rate/SNR broken by the post-failure power vector) —
// and (2) the cut-off coverage RSs — survivors whose multi-hop path to
// every BS crosses a dead connectivity RS. The SNR side rides the
// incremental core::SnrField: the intact field is built once and the
// failures are applied as O(tracked) set_power deltas, not a scratch
// recomputation per what-if.

#include <vector>

#include "sag/core/sag.h"
#include "sag/core/scenario.h"
#include "sag/core/snr_field.h"
#include "sag/ids/ids.h"
#include "sag/resilience/failure.h"

namespace sag::resilience {

/// What the failures broke. Both lists are sorted ascending.
struct DamageReport {
    /// Subscribers that lost feasible coverage: dead serving RS, or a
    /// surviving server that no longer clears the distance / data-rate /
    /// SNR checks under the post-failure powers.
    std::vector<ids::SsId> orphaned;
    /// Surviving coverage RSs whose every path to a BS is severed (a
    /// dead connectivity RS, or a dead coverage RS they relayed through,
    /// sits on the root path). Their SSs still hear them — the backhaul
    /// is what needs repair.
    std::vector<ids::RsId> cut_off;
    std::size_t dead_coverage_rs = 0;
    std::size_t dead_connectivity_rs = 0;

    bool coverage_intact() const { return orphaned.empty(); }
    bool connectivity_intact() const { return cut_off.empty(); }
    bool intact() const { return coverage_intact() && connectivity_intact(); }
};

/// The lower-tier interference field after the failures: built from the
/// intact deployment, then mutated with one set_power delta per failed
/// or degraded RS. Dead RSs stay in the field at zero power so RsId
/// addressing (and the SsId->RsId assignment) stays stable; repair
/// continues mutating this same field.
core::SnrField damaged_field(const core::Scenario& scenario,
                             const core::SagResult& deployment,
                             const FailureSet& failures);

/// Assess against a field already holding the post-failure powers (the
/// damaged_field output, possibly further mutated by earlier repairs).
DamageReport assess_damage(const core::Scenario& scenario,
                           const core::SagResult& deployment,
                           const FailureSet& failures,
                           const core::SnrField& field);

/// Convenience: builds the damaged field internally.
DamageReport assess_damage(const core::Scenario& scenario,
                           const core::SagResult& deployment,
                           const FailureSet& failures);

}  // namespace sag::resilience
