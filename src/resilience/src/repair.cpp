#include "sag/resilience/repair.h"

#include <algorithm>
#include <numeric>

#include "sag/core/candidates.h"
#include "sag/core/feasibility.h"
#include "sag/core/power.h"
#include "sag/core/snr_field.h"
#include "sag/core/ucra.h"
#include "sag/obs/obs.h"
#include "sag/opt/power_control.h"

namespace sag::resilience {

namespace {

/// Working RS pool: surviving coverage RSs (compacted) plus any patched
/// relays, each with its post-failure power cap (P_max, or factor *
/// P_max for degraded survivors).
struct RsPool {
    std::vector<geom::Vec2> positions;
    std::vector<double> caps;  ///< linear watts
};

/// Per-original-SS repair state. `server` indexes RsPool; an invalid
/// value means the SS is (still) unserved.
struct SsState {
    std::size_t server = kUnserved;
    bool newly_added = false;  ///< coverage created by this repair run
    static constexpr std::size_t kUnserved = static_cast<std::size_t>(-1);
};

/// Can RS `rs` of the pool serve subscriber j at its cap? Distance,
/// data-rate (at the cap), and SNR against the field's current totals —
/// the same three checks verify_coverage applies, at placement-phase
/// optimism (everyone at their cap).
bool can_serve(const core::Scenario& scenario, const core::SnrField& field,
               const RsPool& pool, std::size_t rs, ids::SsId j) {
    const core::Subscriber& s = scenario.subscriber(j);
    const double dist = geom::distance(pool.positions[rs], s.pos);
    if (dist > s.distance_request + 1e-6) return false;
    const units::Watt rx = scenario.received_power(
        units::Watt{pool.caps[rs]}, pool.positions[rs], s.pos);
    if (rx < scenario.min_rx_power(j) * (1.0 - 1e-9)) return false;
    const double beta = scenario.snr_threshold_linear();
    return field.snr_of(j, ids::RsId{rs}) >= beta * (1.0 - 1e-9);
}

/// Per-link path gains pool-RS x covered-SS for the fixed-point stage,
/// under the scenario's propagation model (kernel resolved once).
std::vector<std::vector<double>> gain_matrix(const core::Scenario& scenario,
                                             const std::vector<geom::Vec2>& rs_pos,
                                             const std::vector<ids::SsId>& subs) {
    const wireless::GainKernel kernel = scenario.gain_kernel();
    std::vector<std::vector<double>> g(rs_pos.size(),
                                       std::vector<double>(subs.size()));
    for (std::size_t i = 0; i < rs_pos.size(); ++i) {
        for (std::size_t k = 0; k < subs.size(); ++k) {
            const geom::Vec2& ss = scenario.subscriber(subs[k]).pos;
            g[i][k] = kernel.gain(rs_pos[i], ss, geom::distance(rs_pos[i], ss));
        }
    }
    return g;
}

}  // namespace

RepairOutcome repair(const core::Scenario& scenario,
                     const core::SagResult& deployment,
                     const FailureSet& failures, const RepairOptions& options) {
    SAG_OBS_SPAN("resilience.repair");
    RepairOutcome out;
    out.power_before = deployment.total_power();

    const DamageReport damage = assess_damage(scenario, deployment, failures);
    const double p_max = scenario.rs_max_power().watts();

    // --- Build the surviving pool: compact out the dead coverage RSs and
    // record each survivor's cap.
    std::vector<bool> dead(deployment.coverage.rs_count(), false);
    for (ids::RsId rs : failures.coverage_down) dead[rs.index()] = true;
    std::vector<double> cap_of(deployment.coverage.rs_count(), p_max);
    for (const Degradation& d : failures.degraded)
        cap_of[d.rs.index()] = std::min(cap_of[d.rs.index()], d.factor * p_max);

    RsPool pool;
    std::vector<std::size_t> old_to_pool(deployment.coverage.rs_count(),
                                         SsState::kUnserved);
    for (ids::RsId rs : deployment.coverage.rs_ids()) {
        if (dead[rs.index()]) continue;
        old_to_pool[rs.index()] = pool.positions.size();
        pool.positions.push_back(deployment.coverage.rs_position(rs));
        pool.caps.push_back(cap_of[rs.index()]);
    }

    // --- Initial SS state: survivors keep their (remapped) server;
    // orphans start unserved.
    std::vector<bool> orphaned(scenario.subscriber_count(), false);
    for (ids::SsId j : damage.orphaned) orphaned[j.index()] = true;
    std::vector<SsState> state(scenario.subscriber_count());
    for (ids::SsId j : scenario.ss_ids()) {
        if (orphaned[j.index()]) continue;
        const ids::RsId old_rs = deployment.coverage.assignment[j];
        state[j.index()].server = old_to_pool[old_rs.index()];
    }

    // Probe field: the surviving pool at its caps (placement-phase
    // optimism, exactly like LCRA's at-max-power assumption).
    core::SnrField field(scenario, pool.positions, pool.caps);

    // --- Stage 1: reassign orphans onto surviving RSs, nearest-first,
    // accepting the first RS that clears all three checks. O(1) SNR
    // reads off the field's cached totals; no mutation yet.
    std::vector<ids::SsId> unreached;
    {
        SAG_OBS_SPAN("resilience.repair.reassign");
        std::vector<std::size_t> order(pool.positions.size());
        for (ids::SsId j : damage.orphaned) {
            const geom::Vec2& sp = scenario.subscriber(j).pos;
            std::iota(order.begin(), order.end(), std::size_t{0});
            std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
                return geom::distance_sq(pool.positions[a], sp) <
                       geom::distance_sq(pool.positions[b], sp);
            });
            bool placed = false;
            for (std::size_t rs : order) {
                if (!can_serve(scenario, field, pool, rs, j)) continue;
                state[j.index()] = {rs, true};
                ++out.reassigned;
                placed = true;
                break;
            }
            if (!placed) unreached.push_back(j);
        }
        SAG_OBS_COUNT_ADD("resilience.reassigned_ss", out.reassigned);
    }

    // --- Stage 2: patch new relays for the unreached orphans from the
    // IAC candidate pool of exactly those subscribers. Greedy max
    // coverage; every accepted relay is committed into the field (at
    // P_max) so later SNR probes see its interference.
    if (!unreached.empty() && options.max_new_relays > 0) {
        SAG_OBS_SPAN("resilience.repair.patch");
        core::Scenario orphan_view = scenario;
        orphan_view.subscribers.clear();
        for (ids::SsId j : unreached)
            orphan_view.subscribers.push_back(scenario.subscriber(j));
        std::vector<geom::Vec2> cands = core::prune_useless_candidates(
            orphan_view, core::iac_candidates(orphan_view));
        // The original plan drew from the same IAC pool, so a candidate
        // can coincide with a surviving (possibly degraded) RS site.
        // Drop those: co-located transmitters have identical path gains
        // to every SS, and a plan must keep its positions unique.
        std::erase_if(cands, [&](const geom::Vec2& c) {
            return std::any_of(pool.positions.begin(), pool.positions.end(),
                               [&](const geom::Vec2& p) { return p == c; });
        });

        while (!unreached.empty() && out.new_relays < options.max_new_relays &&
               !cands.empty()) {
            // Pick the candidate whose P_max relay would serve the most
            // still-unreached orphans, probing each via a rolled-back
            // add_rs delta.
            std::size_t best_cand = cands.size();
            std::size_t best_count = 0;
            for (std::size_t c = 0; c < cands.size(); ++c) {
                core::SnrField::Transaction probe(field);
                const ids::RsId trial = field.add_rs(cands[c], units::Watt{p_max});
                RsPool trial_pool = pool;
                trial_pool.positions.push_back(cands[c]);
                trial_pool.caps.push_back(p_max);
                std::size_t count = 0;
                for (ids::SsId j : unreached) {
                    if (can_serve(scenario, field, trial_pool, trial.index(), j))
                        ++count;
                }
                if (count > best_count) {
                    best_count = count;
                    best_cand = c;
                }
            }
            if (best_count == 0) break;  // nobody reachable: stop patching

            const geom::Vec2 site = cands[best_cand];
            cands.erase(cands.begin() + static_cast<std::ptrdiff_t>(best_cand));
            const ids::RsId added = field.add_rs(site, units::Watt{p_max});
            pool.positions.push_back(site);
            pool.caps.push_back(p_max);
            ++out.new_relays;
            std::vector<ids::SsId> still;
            for (ids::SsId j : unreached) {
                if (can_serve(scenario, field, pool, added.index(), j)) {
                    state[j.index()] = {added.index(), true};
                } else {
                    still.push_back(j);
                }
            }
            unreached = std::move(still);
        }
        SAG_OBS_COUNT_ADD("resilience.new_relays", out.new_relays);
    }
    for (ids::SsId j : unreached) out.unrecoverable.push_back(j);

    // The first pool.positions entries that came from the survivors are
    // always kept; patched relays and zero-load survivors are pruned per
    // round when nobody ends up served by them.
    const auto build_plans = [&]() {
        // Covered subscribers, ascending original SsId.
        out.covered.clear();
        for (ids::SsId j : scenario.ss_ids())
            if (state[j.index()].server != SsState::kUnserved)
                out.covered.push_back(j);

        out.covered_scenario = scenario;
        out.covered_scenario.subscribers.clear();
        for (ids::SsId j : out.covered)
            out.covered_scenario.subscribers.push_back(scenario.subscriber(j));

        // Active pool RSs = those serving at least one covered SS.
        std::vector<std::size_t> load(pool.positions.size(), 0);
        for (ids::SsId j : out.covered) ++load[state[j.index()].server];
        std::vector<std::size_t> pool_to_plan(pool.positions.size(),
                                              SsState::kUnserved);
        core::CoveragePlan plan;
        std::vector<double> caps;
        for (std::size_t r = 0; r < pool.positions.size(); ++r) {
            if (load[r] == 0) continue;
            pool_to_plan[r] = plan.rs_positions.size();
            plan.rs_positions.push_back(pool.positions[r]);
            caps.push_back(pool.caps[r]);
        }
        plan.assignment.resize(out.covered.size());
        for (std::size_t k = 0; k < out.covered.size(); ++k) {
            plan.assignment[ids::SsId{k}] =
                ids::RsId{pool_to_plan[state[out.covered[k].index()].server]};
        }
        plan.feasible = true;
        return std::pair{std::move(plan), std::move(caps)};
    };

    // --- Stage 3: power re-escalation rounds. The surviving core (the
    // originally covered SSs at the damaged powers) is a feasible witness
    // below the caps, so the Yates fixed point is guaranteed to land
    // once every newly-added SS that breaks it has been shed.
    core::CoveragePlan plan;
    core::PowerAllocation lower;
    core::CoverageReport cov_report;
    {
        SAG_OBS_SPAN("resilience.repair.power");
        const int max_rounds = std::max(1, options.max_rounds);
        for (out.rounds = 1; out.rounds <= max_rounds; ++out.rounds) {
            auto [round_plan, caps] = build_plans();
            plan = std::move(round_plan);

            std::vector<double> floors(plan.rs_count(), 0.0);
            for (ids::RsId i : plan.rs_ids()) {
                floors[i.index()] = std::min(
                    core::coverage_power_floor(out.covered_scenario, plan, i)
                        .watts(),
                    caps[i.index()]);
            }
            const auto g = gain_matrix(out.covered_scenario, plan.rs_positions,
                                       out.covered);
            const units::SnrRatio beta = out.covered_scenario.snr_threshold();
            const auto result = opt::fixed_point_power_control(
                floors, caps,
                [&](std::size_t i, std::span<const double> powers) {
                    units::Watt need{0.0};
                    for (std::size_t k = 0; k < out.covered.size(); ++k) {
                        if (plan.assignment[ids::SsId{k}] != ids::RsId{i}) continue;
                        units::Watt interference =
                            out.covered_scenario.radio.snr_ambient_noise;
                        for (std::size_t m = 0; m < plan.rs_count(); ++m) {
                            if (m != i)
                                interference += units::Watt{powers[m] * g[m][k]};
                        }
                        need = std::max(need, beta * interference / g[i][k]);
                    }
                    return need.watts();
                });

            lower.powers = result.powers;
            lower.total = std::accumulate(lower.powers.begin(),
                                          lower.powers.end(), 0.0);
            lower.iterations = result.iterations;
            cov_report =
                core::verify_coverage(out.covered_scenario, plan, lower.powers);
            lower.feasible = cov_report.feasible;
            if (cov_report.feasible) break;

            // Shed the newly-added SSs that failed verification; if only
            // original survivors are violated (a patched relay's
            // interference squeezed them), shed every newly-added SS
            // instead — the surviving core is the feasible fallback.
            std::vector<ids::SsId> shed;
            for (std::size_t k = 0; k < out.covered.size(); ++k) {
                const auto& check = cov_report.subscribers[ids::SsId{k}];
                const ids::SsId orig = out.covered[k];
                if (!check.distance_ok || !check.rate_ok || !check.snr_ok) {
                    if (state[orig.index()].newly_added) shed.push_back(orig);
                }
            }
            if (shed.empty()) {
                for (ids::SsId j : scenario.ss_ids())
                    if (state[j.index()].newly_added &&
                        state[j.index()].server != SsState::kUnserved)
                        shed.push_back(j);
            }
            if (shed.empty()) break;  // survivors-only and still failing: give up
            for (ids::SsId j : shed) {
                state[j.index()].server = SsState::kUnserved;
                out.unrecoverable.push_back(j);
            }
        }
        out.rounds = std::min(out.rounds, max_rounds);
        SAG_OBS_COUNT_ADD("resilience.repair_rounds",
                          static_cast<std::size_t>(out.rounds));
    }

    // --- Stage 4: re-steinerize the backhaul over what survived + was
    // patched, then re-optimize the connectivity powers.
    core::ConnectivityPlan conn;
    {
        SAG_OBS_SPAN("resilience.repair.backhaul");
        conn = core::solve_mbmc(out.covered_scenario, plan);
        core::allocate_power_ucpo(out.covered_scenario, plan, conn);
    }

    std::sort(out.unrecoverable.begin(), out.unrecoverable.end());
    SAG_OBS_COUNT_ADD("resilience.unrecoverable_ss", out.unrecoverable.size());

    out.repaired.coverage = std::move(plan);
    out.repaired.lower_power = std::move(lower);
    out.repaired.connectivity = std::move(conn);
    const auto topo = core::verify_topology(
        out.covered_scenario, out.repaired.coverage, out.repaired.connectivity);
    out.repaired.feasible = cov_report.feasible && topo.feasible;
    out.power_after = out.repaired.total_power();
    return out;
}

}  // namespace sag::resilience
