#include "sag/resilience/failure.h"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace sag::resilience {

namespace {

void validate_probability(double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0))
        throw std::invalid_argument(std::string(what) + " must be in [0, 1]");
}

}  // namespace

FailureSet inject_independent(const core::SagResult& deployment,
                              const IndependentFailureModel& model,
                              std::uint64_t seed) {
    validate_probability(model.probability, "IndependentFailureModel::probability");
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    FailureSet out;
    // Draw order is part of the determinism contract: coverage RSs by
    // ascending RsId first, then connectivity nodes by ascending index —
    // the same order every other injector uses.
    for (ids::RsId rs : deployment.coverage.rs_ids())
        if (coin(rng) < model.probability) out.coverage_down.push_back(rs);
    if (model.include_connectivity) {
        const auto& conn = deployment.connectivity;
        for (std::size_t node = 0; node < conn.node_count(); ++node) {
            if (conn.kinds[node] != core::NodeKind::ConnectivityRs) continue;
            if (coin(rng) < model.probability) out.connectivity_down.push_back(node);
        }
    }
    return out;
}

FailureSet inject_disc_outage(const core::Scenario& scenario,
                              const core::SagResult& deployment,
                              const DiscOutageModel& model, std::uint64_t seed) {
    if (model.radius < units::Meters{0.0})
        throw std::invalid_argument("DiscOutageModel::radius must be non-negative");
    geom::Vec2 center;
    if (model.center) {
        center = *model.center;
    } else {
        std::mt19937_64 rng(seed);
        std::uniform_real_distribution<double> ux(scenario.field.min.x,
                                                  scenario.field.max.x);
        std::uniform_real_distribution<double> uy(scenario.field.min.y,
                                                  scenario.field.max.y);
        center = {ux(rng), uy(rng)};
    }
    const double r = model.radius.meters();
    FailureSet out;
    for (ids::RsId rs : deployment.coverage.rs_ids())
        if (geom::distance(deployment.coverage.rs_position(rs), center) <= r)
            out.coverage_down.push_back(rs);
    if (model.include_connectivity) {
        const auto& conn = deployment.connectivity;
        for (std::size_t node = 0; node < conn.node_count(); ++node) {
            if (conn.kinds[node] != core::NodeKind::ConnectivityRs) continue;
            if (geom::distance(conn.positions[node], center) <= r)
                out.connectivity_down.push_back(node);
        }
    }
    return out;
}

FailureSet inject_power_degradation(const core::SagResult& deployment,
                                    const PowerDegradationModel& model,
                                    std::uint64_t seed) {
    validate_probability(model.probability, "PowerDegradationModel::probability");
    if (!(model.factor > 0.0 && model.factor <= 1.0))
        throw std::invalid_argument("PowerDegradationModel::factor must be in (0, 1]");
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    FailureSet out;
    for (ids::RsId rs : deployment.coverage.rs_ids())
        if (coin(rng) < model.probability)
            out.degraded.push_back({rs, model.factor});
    return out;
}

std::vector<double> damaged_powers(const core::Scenario& scenario,
                                   const core::SagResult& deployment,
                                   const FailureSet& failures) {
    std::vector<double> powers = deployment.lower_power.powers;
    const double p_max = scenario.rs_max_power().watts();
    for (const Degradation& d : failures.degraded) {
        if (d.rs.index() >= powers.size())
            throw std::out_of_range("degraded RS id outside deployment");
        powers[d.rs.index()] = std::min(powers[d.rs.index()], d.factor * p_max);
    }
    // Dead overrides degraded: a knocked-out RS radiates nothing even if
    // the same id also appears in the degradation list.
    for (ids::RsId rs : failures.coverage_down) {
        if (rs.index() >= powers.size())
            throw std::out_of_range("failed RS id outside deployment");
        powers[rs.index()] = 0.0;
    }
    return powers;
}

}  // namespace sag::resilience
