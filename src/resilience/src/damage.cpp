#include "sag/resilience/damage.h"

#include <algorithm>

#include "sag/obs/obs.h"

namespace sag::resilience {

namespace {

/// Per-node liveness over the ConnectivityPlan layout (BSs, then
/// coverage RSs in RsId order, then connectivity RSs). BSs never fail.
std::vector<bool> alive_mask(const core::Scenario& scenario,
                             const core::SagResult& deployment,
                             const FailureSet& failures) {
    const auto& conn = deployment.connectivity;
    const std::size_t bs_count = scenario.base_station_count();
    std::vector<bool> alive(conn.node_count(), true);
    for (ids::RsId rs : failures.coverage_down) {
        const std::size_t node = bs_count + rs.index();
        if (node < alive.size()) alive[node] = false;
    }
    for (std::size_t node : failures.connectivity_down)
        if (node < alive.size()) alive[node] = false;
    return alive;
}

bool is_dead(const FailureSet& failures, ids::RsId rs) {
    return std::find(failures.coverage_down.begin(), failures.coverage_down.end(),
                     rs) != failures.coverage_down.end();
}

}  // namespace

core::SnrField damaged_field(const core::Scenario& scenario,
                             const core::SagResult& deployment,
                             const FailureSet& failures) {
    core::SnrField field(scenario, deployment.coverage.rs_positions,
                         deployment.lower_power.powers);
    const std::vector<double> powers = damaged_powers(scenario, deployment, failures);
    for (ids::RsId rs : field.rs_ids()) {
        if (powers[rs.index()] != deployment.lower_power.powers[rs.index()])
            field.set_power(rs, units::Watt{powers[rs.index()]});
    }
    return field;
}

DamageReport assess_damage(const core::Scenario& scenario,
                           const core::SagResult& deployment,
                           const FailureSet& failures,
                           const core::SnrField& field) {
    SAG_OBS_SPAN("resilience.assess");
    DamageReport report;
    report.dead_coverage_rs = failures.coverage_down.size();
    report.dead_connectivity_rs = failures.connectivity_down.size();

    // Lower tier: replay the verifier's per-subscriber checks against the
    // post-failure field (same tolerances as verify_coverage). A dead
    // server fails the rate check at zero power, but test it explicitly
    // so the report is meaningful even for SSs with zero rate demand.
    const double beta = scenario.snr_threshold_linear();
    const auto& plan = deployment.coverage;
    for (const ids::SsId j : scenario.ss_ids()) {
        const ids::RsId serving = plan.assignment[j];
        if (!serving.valid() || serving.index() >= plan.rs_count()) {
            report.orphaned.push_back(j);
            continue;
        }
        const core::Subscriber& s = scenario.subscriber(j);
        const double power = field.rs_power(serving).watts();
        const double dist = geom::distance(plan.rs_position(serving), s.pos);
        bool ok = is_dead(failures, serving) == false;
        ok = ok && dist <= s.distance_request + 1e-6;
        if (ok) {
            const units::Watt rx = scenario.received_power(
                units::Watt{power}, plan.rs_position(serving), s.pos);
            ok = rx >= scenario.min_rx_power(j) * (1.0 - 1e-9);
        }
        ok = ok && field.snr_of(j, serving) >= beta * (1.0 - 1e-9);
        if (!ok) report.orphaned.push_back(j);
    }

    // Upper tier: parent-chain walk with the dead nodes masked out. A
    // surviving coverage RS is cut off when its root path stalls, cycles,
    // crosses a dead node, or the plan is structurally unusable.
    const auto& conn = deployment.connectivity;
    const std::size_t bs_count = scenario.base_station_count();
    const std::size_t n = conn.node_count();
    const bool usable = n >= bs_count + plan.rs_count() &&
                        conn.parent.size() == n && conn.kinds.size() == n;
    const std::vector<bool> alive =
        usable ? alive_mask(scenario, deployment, failures) : std::vector<bool>{};
    for (ids::RsId rs : plan.rs_ids()) {
        if (is_dead(failures, rs)) continue;  // dead, not cut off
        if (!usable) {
            report.cut_off.push_back(rs);
            continue;
        }
        std::size_t cur = bs_count + rs.index();
        std::size_t steps = 0;
        bool rooted = true;
        while (true) {
            if (conn.parent[cur] >= n || !alive[cur] || steps > n) {
                rooted = false;
                break;
            }
            if (conn.parent[cur] == cur) break;
            cur = conn.parent[cur];
            ++steps;
        }
        if (!rooted || conn.kinds[cur] != core::NodeKind::BaseStation)
            report.cut_off.push_back(rs);
    }

    SAG_OBS_COUNT_ADD("resilience.failed_rs", failures.failure_count());
    SAG_OBS_COUNT_ADD("resilience.orphaned_ss", report.orphaned.size());
    SAG_OBS_COUNT_ADD("resilience.cut_off_rs", report.cut_off.size());
    return report;
}

DamageReport assess_damage(const core::Scenario& scenario,
                           const core::SagResult& deployment,
                           const FailureSet& failures) {
    return assess_damage(scenario, deployment, failures,
                         damaged_field(scenario, deployment, failures));
}

}  // namespace sag::resilience
