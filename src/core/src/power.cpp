#include "sag/core/power.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "sag/core/snr.h"
#include "sag/core/snr_field.h"
#include "sag/obs/obs.h"
#include "sag/opt/lp.h"
#include "sag/opt/power_control.h"
#include "sag/wireless/kernel_eval.h"

namespace sag::core {

namespace {

/// Per-link path gains g[rs][sub] under the scenario's propagation model
/// (kernel resolved once; shadowing models fade each link
/// deterministically). A bulk double matrix: IDs cross into it via
/// .index(). Each row is one batch_gain sweep of the subscriber SoA
/// columns (SIMD-dispatched; see docs/PERFORMANCE.md).
std::vector<std::vector<double>> gain_matrix(const Scenario& scenario,
                                             const CoveragePlan& plan) {
    const wireless::GainKernel kernel = scenario.gain_kernel();
    const std::size_t n = scenario.subscriber_count();
    std::vector<double> ss_x, ss_y;
    ss_x.reserve(n);
    ss_y.reserve(n);
    for (const ids::SsId j : scenario.ss_ids()) {
        ss_x.push_back(scenario.subscriber(j).pos.x);
        ss_y.push_back(scenario.subscriber(j).pos.y);
    }
    std::vector<std::vector<double>> g(plan.rs_count(), std::vector<double>(n));
    for (const ids::RsId i : plan.rs_ids()) {
        wireless::batch_gain(kernel, plan.rs_position(i),
                             units::MetersSpan{ss_x}, units::MetersSpan{ss_y},
                             g[i.index()]);
    }
    return g;
}

units::Watt snr_floor_from_gains(const Scenario& scenario, const CoveragePlan& plan,
                                 const std::vector<std::vector<double>>& g,
                                 ids::RsId rs, std::span<const double> powers) {
    const units::SnrRatio beta = scenario.snr_threshold();
    units::Watt need{0.0};
    for (const ids::SsId j : scenario.ss_ids()) {
        if (plan.assignment[j] != rs) continue;
        units::Watt interference = scenario.radio.snr_ambient_noise;
        for (std::size_t k = 0; k < plan.rs_count(); ++k) {
            if (k != rs.index()) {
                interference += units::Watt{powers[k] * g[k][j.index()]};
            }
        }
        need = std::max(need, beta * interference / g[rs.index()][j.index()]);
    }
    return need;
}

bool allocation_feasible(const Scenario& scenario, const CoveragePlan& plan,
                         std::span<const double> powers) {
    const auto snrs =
        coverage_snrs(scenario, plan.rs_positions, powers, plan.assignment);
    const double beta = scenario.snr_threshold_linear();
    for (const ids::SsId j : scenario.ss_ids()) {
        const ids::RsId i = plan.assignment[j];
        const units::Watt rx = scenario.received_power(
            units::Watt{powers[i.index()]}, plan.rs_position(i),
            scenario.subscriber(j).pos);
        if (rx < scenario.min_rx_power(j) * (1.0 - 1e-9)) return false;
        if (snrs[j.index()] < beta * (1.0 - 1e-9)) return false;
    }
    return true;
}

}  // namespace

units::Watt coverage_power_floor(const Scenario& scenario, const CoveragePlan& plan,
                                 ids::RsId rs) {
    units::Watt floor{0.0};
    for (const ids::SsId j : scenario.ss_ids()) {
        if (plan.assignment[j] != rs) continue;
        floor = std::max(floor,
                         scenario.tx_power_for(scenario.min_rx_power(j),
                                               plan.rs_position(rs),
                                               scenario.subscriber(j).pos));
    }
    return floor;
}

units::Watt snr_power_floor(const Scenario& scenario, const CoveragePlan& plan,
                            ids::RsId rs, std::span<const double> powers) {
    const auto g = gain_matrix(scenario, plan);
    return snr_floor_from_gains(scenario, plan, g, rs, powers);
}

PowerAllocation allocate_power_pro(const Scenario& scenario, const CoveragePlan& plan,
                                   const ProOptions& options) {
    SAG_OBS_SPAN("pro.allocate");
    PowerAllocation out;
    const std::size_t n = plan.rs_count();
    const units::Watt pmax = scenario.rs_max_power();
    const wireless::GainKernel kernel = scenario.gain_kernel();
    const double beta = scenario.snr_threshold_linear();

    ids::IdVec<ids::RsId, units::Watt> p_min(n, units::Watt{0.0});
    for (const ids::RsId i : plan.rs_ids()) {
        p_min[i] = coverage_power_floor(scenario, plan, i);
    }

    // Per-RS served lists: each probe only needs to re-check the SNR of
    // the RS's own subscribers, read in O(1) off the field's cached totals.
    ids::IdVec<ids::RsId, std::vector<ids::SsId>> served(n);
    for (const ids::SsId j : scenario.ss_ids()) {
        served[plan.assignment[j]].push_back(j);
    }

    // Algorithm 6 state: the field's powers are the working vector p1
    // (Step 9 re-syncs them to the committed Ptmp each round), committed[i]
    // marks removal from K. Each tentative drop is a rolled-back power
    // delta instead of an O(|served| x RS) interference rebuild. The field
    // spans all subscribers, so tracked-local SsIds coincide with global.
    const std::vector<double> start(n, pmax.watts());
    SnrField field(scenario, plan.rs_positions, start);
    ids::IdVec<ids::RsId, units::Watt> p_tmp(n, pmax);
    std::vector<bool> committed(n, false);
    std::size_t remaining = n;

    const auto served_snr_ok = [&](ids::RsId i) {
        for (const ids::SsId j : served[i]) {
            const double snr = field.snr_of(j, i);
            // Mirror the historic check: an interference-free subscriber
            // passes vacuously (snr_of reports infinity there).
            if (snr < beta * (1.0 - 1e-12)) return false;
        }
        return true;
    };

    // Smallest power letting every subscriber of RS i clear beta against
    // the field's current interference (the paper's P_snr).
    const auto snr_floor = [&](ids::RsId i) {
        units::Watt need{0.0};
        for (const ids::SsId j : served[i]) {
            const geom::Vec2& rs = plan.rs_position(i);
            const geom::Vec2& ss = scenario.subscriber(j).pos;
            const double g = kernel.gain(rs, ss, geom::distance(rs, ss));
            const units::Watt own{field.rs_power(i).watts() * g};
            const units::Watt interference =
                units::Watt{field.total_rx(j)} - own + scenario.radio.snr_ambient_noise;
            need = std::max(need, scenario.snr_threshold() * interference / g);
        }
        return need;
    };

    while (remaining > 0) {
        ++out.iterations;
        const std::size_t before = remaining;

        // Steps 5-8: tentatively drop each uncommitted RS to its coverage
        // power, keeping the others at this round's values; commit into
        // Ptmp when its own subscribers' SNR survives.
        for (const ids::RsId i : field.rs_ids()) {
            if (committed[i.index()]) continue;
            SAG_OBS_COUNT("pro.drop_probes");
            SnrField::Transaction probe(field);
            field.set_power(i, p_min[i]);
            if (served_snr_ok(i)) {
                committed[i.index()] = true;
                --remaining;
                p_tmp[i] = p_min[i];
                SAG_OBS_COUNT("pro.drops_committed");
            }
            // probe rolls back: later drops in the round still see the
            // round-start powers, exactly as Algorithm 6 prescribes.
        }
        for (const ids::RsId i : field.rs_ids()) field.set_power(i, p_tmp[i]);  // Step 9

        if (remaining == before && remaining > 0) {
            // Steps 10-13: no RS could reach its coverage power; pay the
            // smallest SNR premium Psnr - Pc instead.
            ids::RsId arg = ids::RsId::invalid();
            units::Watt best_delta{std::numeric_limits<double>::infinity()};
            units::Watt best_power = pmax;
            for (const ids::RsId i : field.rs_ids()) {
                if (committed[i.index()]) continue;
                const units::Watt p_snr = std::max(p_min[i], snr_floor(i));
                const units::Watt delta = p_snr - p_min[i];
                if (delta < best_delta) {
                    best_delta = delta;
                    best_power = p_snr;
                    arg = i;
                }
                if (options.selection == ProOptions::Selection::FirstIndex &&
                    arg.valid()) {
                    break;  // ablation mode: take the first stuck RS
                }
            }
            p_tmp[arg] = std::min(best_power, pmax);
            field.set_power(arg, p_tmp[arg]);
            committed[arg.index()] = true;
            --remaining;
            SAG_OBS_COUNT("pro.premium_payments");
        }
    }
    SAG_OBS_COUNT_ADD("pro.rounds", out.iterations);

    out.powers.reserve(n);
    for (const units::Watt p : p_tmp) out.powers.push_back(p.watts());
    out.total = std::accumulate(out.powers.begin(), out.powers.end(), 0.0);
    out.feasible = allocation_feasible(scenario, plan, out.powers);
    return out;
}

PowerAllocation allocate_power_optimal(const Scenario& scenario,
                                       const CoveragePlan& plan) {
    PowerAllocation out;
    const std::size_t n = plan.rs_count();
    const auto g = gain_matrix(scenario, plan);

    std::vector<double> floors(n), caps(n, scenario.rs_max_power().watts());
    for (const ids::RsId i : plan.rs_ids()) {
        floors[i.index()] = coverage_power_floor(scenario, plan, i).watts();
    }

    // The power-control iterator is entity-agnostic; its raw index comes
    // back as an RsId at this boundary.
    const auto result = opt::fixed_point_power_control(
        floors, caps,
        [&](std::size_t i, std::span<const double> powers) {
            return snr_floor_from_gains(scenario, plan, g, ids::RsId{i}, powers)
                .watts();
        });

    out.powers = result.powers;
    out.total = std::accumulate(out.powers.begin(), out.powers.end(), 0.0);
    out.iterations = result.iterations;
    out.feasible = result.feasible && allocation_feasible(scenario, plan, out.powers);
    return out;
}

PowerAllocation allocate_power_optimal_lp(const Scenario& scenario,
                                          const CoveragePlan& plan) {
    PowerAllocation out;
    const std::size_t n = plan.rs_count();
    const auto g = gain_matrix(scenario, plan);

    opt::LinearProgram lp;
    lp.objective.assign(n, 1.0);
    lp.upper_bounds.assign(n, scenario.rs_max_power().watts());
    const double beta = scenario.snr_threshold_linear();
    for (const ids::SsId j : scenario.ss_ids()) {
        const ids::RsId i = plan.assignment[j];
        // (3.8) data rate: Pi * g_ij >= P^j_ss
        std::vector<double> rate(n, 0.0);
        rate[i.index()] = g[i.index()][j.index()];
        lp.add_constraint(std::move(rate), opt::LinearProgram::Relation::GreaterEq,
                          scenario.min_rx_power(j).watts());
        // (3.9) SNR, linearized with the ambient-noise term:
        // Pi*g_ij - beta * sum_{k != i} Pk*g_kj >= beta * N_amb
        std::vector<double> snr(n, 0.0);
        for (std::size_t k = 0; k < n; ++k) snr[k] = -beta * g[k][j.index()];
        snr[i.index()] = g[i.index()][j.index()];
        lp.add_constraint(std::move(snr), opt::LinearProgram::Relation::GreaterEq,
                          beta * scenario.radio.snr_ambient_noise.watts());
    }

    const auto result = opt::solve_lp(lp);
    if (result.optimal()) {
        out.powers = result.x;
        out.total = result.objective;
        out.feasible = true;
    } else {
        out.powers.assign(n, scenario.rs_max_power().watts());
        out.total = static_cast<double>(n) * scenario.rs_max_power().watts();
    }
    return out;
}

PowerAllocation allocate_power_baseline(const Scenario& scenario,
                                        const CoveragePlan& plan) {
    PowerAllocation out;
    out.powers.assign(plan.rs_count(), scenario.rs_max_power().watts());
    out.total =
        static_cast<double>(plan.rs_count()) * scenario.rs_max_power().watts();
    out.feasible = allocation_feasible(scenario, plan, out.powers);
    out.iterations = 0;
    return out;
}

}  // namespace sag::core
