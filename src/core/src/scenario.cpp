#include "sag/core/scenario.h"

#include <algorithm>
#include <limits>
#include <stdexcept>


namespace sag::core {

units::SnrRatio Scenario::snr_threshold() const {
    return units::from_db(snr_threshold_db);
}

geom::Circle Scenario::feasible_circle(ids::SsId j) const {
    const Subscriber& s = subscribers.at(j.index());
    return {s.pos, s.distance_request};
}

std::vector<geom::Circle> Scenario::feasible_circles() const {
    std::vector<geom::Circle> circles;
    circles.reserve(subscribers.size());
    for (const ids::SsId j : ss_ids()) circles.push_back(feasible_circle(j));
    return circles;
}

const wireless::RadioProfile& Scenario::profile(ids::ProfileId id) const {
    static const wireless::RadioProfile kDefault;
    if (!id.valid() || id.index() >= profiles.size()) return kDefault;
    return profiles[id.index()];
}

units::Watt Scenario::min_rx_power(ids::SsId j) const {
    units::Watt p = received_power(
        radio.max_power, units::Meters{subscribers.at(j.index()).distance_request});
    const wireless::RadioProfile& prof = subscriber_profile(j);
    // A noisier receiver front end needs proportionally more power for the
    // same effective rate; 0 dB (the default) leaves the paper value
    // bit-for-bit untouched.
    if (prof.noise_figure.db() != 0.0) p = p * prof.noise_figure_factor();
    // Link-budget models additionally impose an absolute sensitivity floor.
    if (const auto floor = model().rx_sensitivity(radio, prof); floor && *floor > p)
        p = *floor;
    return p;
}

double Scenario::min_distance_request() const {
    double d = std::numeric_limits<double>::infinity();
    for (const Subscriber& s : subscribers) d = std::min(d, s.distance_request);
    return d;
}

void Scenario::validate() const {
    radio.validate();
    model().validate(radio);
    for (const wireless::RadioProfile& p : profiles) p.validate(radio);
    if (relay_profile.valid() && relay_profile.index() >= profiles.size())
        throw std::invalid_argument("relay_profile references no profile");
    if (base_stations.empty())
        throw std::invalid_argument("scenario needs at least one base station");
    if (field.width() <= 0.0 || field.height() <= 0.0)
        throw std::invalid_argument("field must have positive area");
    for (const Subscriber& s : subscribers) {
        if (s.distance_request <= 0.0)
            throw std::invalid_argument("distance request must be positive");
        if (!field.contains(s.pos, 1e-6))
            throw std::invalid_argument("subscriber outside the field");
        if (s.profile.valid() && s.profile.index() >= profiles.size())
            throw std::invalid_argument("subscriber references no profile");
    }
    for (const BaseStation& b : base_stations) {
        if (!field.contains(b.pos, 1e-6))
            throw std::invalid_argument("base station outside the field");
    }
}

}  // namespace sag::core
