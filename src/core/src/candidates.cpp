#include "sag/core/candidates.h"

#include <algorithm>

#include "sag/geometry/grid.h"
#include "sag/geometry/spatial_grid.h"

namespace sag::core {

std::vector<geom::Vec2> iac_candidates(const Scenario& scenario) {
    const auto circles = scenario.feasible_circles();
    std::vector<geom::Vec2> candidates;
    std::vector<bool> isolated(circles.size(), true);

    // Only circle pairs with overlapping disks can intersect: prefilter
    // pairs through the spatial index (radius = twice the largest circle).
    double r_top = 0.0;
    std::vector<geom::Vec2> centers;
    centers.reserve(circles.size());
    for (const geom::Circle& c : circles) {
        r_top = std::max(r_top, c.radius);
        centers.push_back(c.center);
    }
    // Circles are subscriber-ordered, so the pair query comes back typed.
    const geom::SpatialGridT<ids::SsId> index(std::move(centers),
                                              std::max(2.0 * r_top, 1.0));
    for (const auto& [i, j] : index.all_pairs_within(2.0 * r_top)) {
        const auto pts =
            geom::circle_intersections(circles[i.index()], circles[j.index()]);
        if (!pts.empty()) isolated[i.index()] = isolated[j.index()] = false;
        candidates.insert(candidates.end(), pts.begin(), pts.end());
    }
    for (std::size_t i = 0; i < circles.size(); ++i) {
        if (isolated[i]) candidates.push_back(circles[i].center);
    }
    return candidates;
}

std::vector<geom::Vec2> gac_candidates(const Scenario& scenario, double grid_size) {
    return geom::grid_centers(scenario.field, grid_size);
}

std::vector<geom::Vec2> prune_useless_candidates(const Scenario& scenario,
                                                 std::vector<geom::Vec2> candidates) {
    const auto circles = scenario.feasible_circles();
    std::erase_if(candidates, [&](const geom::Vec2& p) {
        return std::none_of(circles.begin(), circles.end(),
                            [&](const geom::Circle& c) { return c.contains(p, 1e-6); });
    });
    return candidates;
}

}  // namespace sag::core
