#include "sag/core/zone_partition.h"

#include <algorithm>

#include "sag/geometry/spatial_grid.h"
#include "sag/graph/graph.h"

namespace sag::core {

double zone_partition_dmax(const Scenario& scenario) {
    return wireless::ignorable_noise_distance(scenario.model(), scenario.radio,
                                              scenario.rs_max_power())
        .meters();
}

ids::IdVec<ids::ZoneId, std::vector<ids::SsId>> zone_partition(
    const Scenario& scenario) {
    const double dmax = zone_partition_dmax(scenario);
    const std::size_t n = scenario.subscriber_count();

    // Candidate pairs via the spatial index: d_eff <= dmax implies
    // dist(s_i, s_j) <= dmax + max(d_i, d_j) <= dmax + d_top, so a single
    // radius query over-approximates and the exact check filters.
    double d_top = 0.0;
    std::vector<geom::Vec2> positions;
    positions.reserve(n);
    for (const Subscriber& s : scenario.subscribers) {
        d_top = std::max(d_top, s.distance_request);
        positions.push_back(s.pos);
    }
    const double pair_radius = dmax + d_top;
    const geom::SpatialGridT<ids::SsId> index(std::move(positions),
                                              std::max(pair_radius, 1.0));

    // The union-find layer is entity-agnostic: SsIds cross into it as raw
    // vertex indices and the components come back out retyped.
    graph::Graph g(n);
    for (const auto& [i, j] : index.all_pairs_within(pair_radius)) {
        const Subscriber& si = scenario.subscriber(i);
        const Subscriber& sj = scenario.subscriber(j);
        const double dist = geom::distance(si.pos, sj.pos);
        // d_eff: worst-case gap between a station serving one SS and the
        // other SS (an RS may stand d_i inside s_i's circle).
        const double d_eff =
            std::min(dist - si.distance_request, dist - sj.distance_request);
        if (d_eff <= dmax) g.add_edge(i.index(), j.index());
    }

    ids::IdVec<ids::ZoneId, std::vector<ids::SsId>> zones;
    for (std::vector<std::size_t>& comp : g.connected_components()) {
        std::vector<ids::SsId> members;
        members.reserve(comp.size());
        for (const std::size_t v : comp) members.push_back(ids::SsId{v});
        zones.push_back(std::move(members));
    }
    return zones;
}

}  // namespace sag::core
