#include "sag/core/throughput.h"

#include <algorithm>
#include <limits>

#include "sag/wireless/link.h"

namespace sag::core {

double ThroughputReport::rate_headroom() const {
    if (max_utilization <= 0.0) return std::numeric_limits<double>::infinity();
    return 1.0 / max_utilization;
}

ThroughputReport analyze_throughput(const Scenario& scenario,
                                    const CoveragePlan& coverage,
                                    const ConnectivityPlan& plan,
                                    std::span<const double> coverage_powers) {
    ThroughputReport report;
    const std::size_t n = plan.node_count();
    const std::size_t bs_count = scenario.base_stations.size();

    // Own offered rate per node: coverage RSs source their subscribers'
    // Shannon-equivalent rates; everything else only forwards.
    std::vector<double> load(n, 0.0);
    for (const ids::SsId j : scenario.ss_ids()) {
        const double rate =
            wireless::shannon_capacity(scenario.radio, scenario.min_rx_power(j));
        load[bs_count + coverage.assignment[j].index()] += rate;
        report.total_offered_bps += rate;
    }

    // Accumulate subtree loads bottom-up: order nodes by depth descending.
    std::vector<std::size_t> depth(n, 0);
    for (std::size_t v = 0; v < n; ++v) {
        std::size_t cur = v, d = 0;
        while (plan.parent[cur] != cur && d <= n) {
            cur = plan.parent[cur];
            ++d;
        }
        depth[v] = d;
    }
    std::vector<std::size_t> order(n);
    for (std::size_t v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return depth[a] > depth[b]; });
    for (const std::size_t v : order) {
        if (plan.parent[v] != v) load[plan.parent[v]] += load[v];
    }

    // One link per non-root node.
    for (std::size_t v = 0; v < n; ++v) {
        if (plan.parent[v] == v) continue;
        LinkLoad link;
        link.child = v;
        link.parent = plan.parent[v];
        link.length = geom::distance(plan.positions[v], plan.positions[link.parent]);
        link.offered_bps = load[v];

        double tx_power = plan.powers[v];
        if (plan.kinds[v] == NodeKind::CoverageRs) {
            const std::size_t cov_index = v - bs_count;
            tx_power = cov_index < coverage_powers.size()
                           ? coverage_powers[cov_index]
                           : scenario.rs_max_power().watts();
        }
        link.capacity_bps = wireless::shannon_capacity(
            scenario.radio,
            scenario.received_power(units::Watt{tx_power}, plan.positions[v],
                                    plan.positions[link.parent]));
        link.utilization = link.capacity_bps > 0.0
                               ? link.offered_bps / link.capacity_bps
                               : (link.offered_bps > 0.0
                                      ? std::numeric_limits<double>::infinity()
                                      : 0.0);
        report.links.push_back(link);
    }

    for (std::size_t i = 0; i < report.links.size(); ++i) {
        if (report.links[i].utilization > report.max_utilization) {
            report.max_utilization = report.links[i].utilization;
            report.bottleneck_link = i;
        }
        if (report.links[i].utilization > 1.0 + 1e-9) ++report.overloaded_links;
    }
    report.sustainable = report.overloaded_links == 0;
    return report;
}

}  // namespace sag::core
