#include "sag/core/snr.h"

#include <limits>
#include <numeric>
#include <ranges>

#include "sag/core/snr_field.h"
#include "sag/geometry/spatial_grid.h"
#include "sag/wireless/link.h"
#include "sag/wireless/two_ray.h"

namespace sag::core {

namespace {

std::vector<std::size_t> all_indices(std::size_t n) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    return idx;
}

/// Below this RS count a linear scan beats building a hash grid.
constexpr std::size_t kGridLookupThreshold = 32;

/// Nearest in-range RS for one subscriber among `candidates` (ascending
/// index order, strict < keeps the lowest index on ties — identical
/// semantics to the linear scan).
template <typename Indices>
std::size_t nearest_in_range(const Subscriber& s,
                             std::span<const geom::Vec2> rs_positions,
                             const Indices& candidates) {
    std::size_t best = rs_positions.size();
    double best_dist = std::numeric_limits<double>::infinity();
    for (const std::size_t i : candidates) {
        const double d = geom::distance(rs_positions[i], s.pos);
        if (d <= s.distance_request + geom::kEps && d < best_dist) {
            best = i;
            best_dist = d;
        }
    }
    return best;
}

}  // namespace

std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  std::span<const std::size_t> subs,
                                  std::span<const std::size_t> assignment) {
    const SnrField field(scenario, rs_positions, powers, subs);
    std::vector<double> snrs(subs.size(), 0.0);
    for (std::size_t k = 0; k < subs.size(); ++k) {
        snrs[k] = field.snr_of(k, assignment[k]);
    }
    return snrs;
}

std::optional<std::vector<std::size_t>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
    std::span<const std::size_t> subs) {
    std::vector<std::size_t> assignment(subs.size());

    if (rs_positions.size() >= kGridLookupThreshold) {
        double max_reach = 0.0;
        for (const std::size_t j : subs) {
            max_reach = std::max(max_reach, scenario.subscribers[j].distance_request);
        }
        if (max_reach > 0.0) {
            const geom::SpatialGrid grid(
                {rs_positions.begin(), rs_positions.end()}, max_reach);
            for (std::size_t k = 0; k < subs.size(); ++k) {
                const Subscriber& s = scenario.subscribers[subs[k]];
                const std::size_t best = nearest_in_range(
                    s, rs_positions,
                    grid.query_radius(s.pos, s.distance_request + geom::kEps));
                if (best == rs_positions.size()) return std::nullopt;
                assignment[k] = best;
            }
            return assignment;
        }
    }

    const auto every_rs = std::views::iota(std::size_t{0}, rs_positions.size());
    for (std::size_t k = 0; k < subs.size(); ++k) {
        const Subscriber& s = scenario.subscribers[subs[k]];
        const std::size_t best = nearest_in_range(s, rs_positions, every_rs);
        if (best == rs_positions.size()) return std::nullopt;
        assignment[k] = best;
    }
    return assignment;
}

std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  std::span<const std::size_t> assignment) {
    const auto subs = all_indices(scenario.subscriber_count());
    return coverage_snrs(scenario, rs_positions, powers, subs, assignment);
}

std::optional<std::vector<std::size_t>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions) {
    const auto subs = all_indices(scenario.subscriber_count());
    return nearest_assignment(scenario, rs_positions, subs);
}

bool snr_feasible_at_max_power(const Scenario& scenario,
                               std::span<const geom::Vec2> rs_positions,
                               std::span<const std::size_t> subs) {
    const auto assignment = nearest_assignment(scenario, rs_positions, subs);
    if (!assignment) return false;
    const SnrField field = SnrField::at_max_power(scenario, rs_positions, subs);
    return field.all_meet_threshold(*assignment, 0.0);
}

}  // namespace sag::core
