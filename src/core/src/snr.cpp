#include "sag/core/snr.h"

#include <limits>
#include <numeric>

#include "sag/wireless/link.h"
#include "sag/wireless/two_ray.h"

namespace sag::core {

namespace {

std::vector<std::size_t> all_indices(std::size_t n) {
    std::vector<std::size_t> idx(n);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    return idx;
}

}  // namespace

std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  std::span<const std::size_t> subs,
                                  std::span<const std::size_t> assignment) {
    std::vector<double> snrs(subs.size(), 0.0);
    for (std::size_t k = 0; k < subs.size(); ++k) {
        const geom::Vec2& rx = scenario.subscribers[subs[k]].pos;
        double total = 0.0;
        for (std::size_t i = 0; i < rs_positions.size(); ++i) {
            total += wireless::received_power(scenario.radio, powers[i],
                                              geom::distance(rs_positions[i], rx));
        }
        const std::size_t serving = assignment[k];
        const double signal =
            wireless::received_power(scenario.radio, powers[serving],
                                     geom::distance(rs_positions[serving], rx));
        const double interference =
            total - signal + scenario.radio.snr_ambient_noise;
        snrs[k] = interference > 0.0 ? signal / interference
                                     : std::numeric_limits<double>::infinity();
    }
    return snrs;
}

std::optional<std::vector<std::size_t>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
    std::span<const std::size_t> subs) {
    std::vector<std::size_t> assignment(subs.size());
    for (std::size_t k = 0; k < subs.size(); ++k) {
        const Subscriber& s = scenario.subscribers[subs[k]];
        std::size_t best = rs_positions.size();
        double best_dist = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < rs_positions.size(); ++i) {
            const double d = geom::distance(rs_positions[i], s.pos);
            if (d <= s.distance_request + geom::kEps && d < best_dist) {
                best = i;
                best_dist = d;
            }
        }
        if (best == rs_positions.size()) return std::nullopt;
        assignment[k] = best;
    }
    return assignment;
}

std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  std::span<const std::size_t> assignment) {
    const auto subs = all_indices(scenario.subscriber_count());
    return coverage_snrs(scenario, rs_positions, powers, subs, assignment);
}

std::optional<std::vector<std::size_t>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions) {
    const auto subs = all_indices(scenario.subscriber_count());
    return nearest_assignment(scenario, rs_positions, subs);
}

bool snr_feasible_at_max_power(const Scenario& scenario,
                               std::span<const geom::Vec2> rs_positions,
                               std::span<const std::size_t> subs) {
    const auto assignment = nearest_assignment(scenario, rs_positions, subs);
    if (!assignment) return false;
    const std::vector<double> powers(rs_positions.size(), scenario.radio.max_power);
    const auto snrs = coverage_snrs(scenario, rs_positions, powers, subs, *assignment);
    const double beta = scenario.snr_threshold_linear();
    for (const double snr : snrs) {
        if (snr < beta) return false;
    }
    return true;
}

}  // namespace sag::core
