#include "sag/core/snr.h"

#include <limits>

#include "sag/core/snr_field.h"
#include "sag/geometry/spatial_grid.h"
#include "sag/wireless/link.h"

namespace sag::core {

namespace {

/// Below this RS count a linear scan beats building a hash grid.
constexpr std::size_t kGridLookupThreshold = 32;

/// Nearest in-range RS for one subscriber among `candidates` (ascending
/// ID order, strict < keeps the lowest ID on ties — identical semantics
/// to the linear scan). invalid() signals no RS in range.
template <typename Candidates>
ids::RsId nearest_in_range(const Subscriber& s,
                           std::span<const geom::Vec2> rs_positions,
                           const Candidates& candidates) {
    ids::RsId best = ids::RsId::invalid();
    double best_dist = std::numeric_limits<double>::infinity();
    for (const ids::RsId i : candidates) {
        const double d = geom::distance(rs_positions[i.index()], s.pos);
        if (d <= s.distance_request + geom::kEps && d < best_dist) {
            best = i;
            best_dist = d;
        }
    }
    return best;
}

}  // namespace

std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  std::span<const ids::SsId> subs,
                                  ids::IdSpan<ids::SsId, const ids::RsId> assignment) {
    const SnrField field(scenario, rs_positions, powers, subs);
    std::vector<double> snrs(subs.size(), 0.0);
    for (const ids::SsId k : field.tracked_ids()) {
        snrs[k.index()] = field.snr_of(k, assignment[k]);
    }
    return snrs;
}

std::optional<ids::IdVec<ids::SsId, ids::RsId>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
    std::span<const ids::SsId> subs) {
    ids::IdVec<ids::SsId, ids::RsId> assignment(subs.size());

    if (rs_positions.size() >= kGridLookupThreshold) {
        double max_reach = 0.0;
        for (const ids::SsId j : subs) {
            max_reach =
                std::max(max_reach, scenario.subscriber(j).distance_request);
        }
        if (max_reach > 0.0) {
            const geom::SpatialGridT<ids::RsId> grid(
                {rs_positions.begin(), rs_positions.end()}, max_reach);
            for (std::size_t k = 0; k < subs.size(); ++k) {
                const Subscriber& s = scenario.subscriber(subs[k]);
                const ids::RsId best = nearest_in_range(
                    s, rs_positions,
                    grid.query_radius(s.pos, s.distance_request + geom::kEps));
                if (!best.valid()) return std::nullopt;
                assignment[ids::SsId{k}] = best;
            }
            return assignment;
        }
    }

    const auto every_rs = ids::first_ids<ids::RsId>(rs_positions.size());
    for (std::size_t k = 0; k < subs.size(); ++k) {
        const Subscriber& s = scenario.subscriber(subs[k]);
        const ids::RsId best = nearest_in_range(s, rs_positions, every_rs);
        if (!best.valid()) return std::nullopt;
        assignment[ids::SsId{k}] = best;
    }
    return assignment;
}

std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  ids::IdSpan<ids::SsId, const ids::RsId> assignment) {
    const auto subs = ids::all_ids<ids::SsId>(scenario.subscriber_count());
    return coverage_snrs(scenario, rs_positions, powers, subs, assignment);
}

std::optional<ids::IdVec<ids::SsId, ids::RsId>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions) {
    const auto subs = ids::all_ids<ids::SsId>(scenario.subscriber_count());
    return nearest_assignment(scenario, rs_positions, subs);
}

bool snr_feasible_at_max_power(const Scenario& scenario,
                               std::span<const geom::Vec2> rs_positions,
                               std::span<const ids::SsId> subs) {
    const auto assignment = nearest_assignment(scenario, rs_positions, subs);
    if (!assignment) return false;
    const SnrField field = SnrField::at_max_power(scenario, rs_positions, subs);
    return field.all_meet_threshold(*assignment, 0.0);
}

}  // namespace sag::core
