#include "sag/core/feasibility.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "sag/core/snr_field.h"
#include "sag/units/units.h"
#include "sag/wireless/link.h"

namespace sag::core {

CoverageReport verify_coverage(const Scenario& scenario, const CoveragePlan& plan,
                               std::span<const double> powers) {
    CoverageReport report;
    report.subscribers.resize(scenario.subscriber_count());
    // Structural sanity before touching any index: mismatched sizes or
    // out-of-range serving indices mark the whole plan infeasible rather
    // than faulting.
    const bool malformed =
        plan.assignment.size() != scenario.subscriber_count() ||
        powers.size() != plan.rs_count() ||
        std::any_of(plan.assignment.begin(), plan.assignment.end(),
                    [&](ids::RsId a) {
                        return !a.valid() || a.index() >= plan.rs_count();
                    });
    if (malformed) {
        report.feasible = false;
        report.violations = scenario.subscriber_count();
        return report;
    }

    // Batch audit off one interference field: the totals are computed once
    // and every subscriber's SNR is an O(1) read.
    const SnrField field(scenario, plan.rs_positions, powers);
    const double beta = scenario.snr_threshold_linear();

    for (const ids::SsId j : scenario.ss_ids()) {
        const Subscriber& s = scenario.subscriber(j);
        SubscriberCheck& check = report.subscribers[j];
        check.serving_rs = plan.assignment[j];
        const geom::Vec2& rs = plan.rs_position(check.serving_rs);
        check.access_distance = geom::distance(rs, s.pos);
        check.distance_ok = check.access_distance <= s.distance_request + 1e-6;
        const units::Watt rx = scenario.received_power(
            units::Watt{powers[check.serving_rs.index()]}, rs, s.pos);
        check.rate_ok = rx >= scenario.min_rx_power(j) * (1.0 - 1e-9);
        const double snr = field.snr_of(j, check.serving_rs);
        check.snr_ok = snr >= beta * (1.0 - 1e-9);
        check.snr_db = std::isfinite(snr)
                           ? units::to_db(units::SnrRatio{snr}).db()
                           : std::numeric_limits<double>::infinity();
        if (!check.distance_ok || !check.rate_ok || !check.snr_ok) ++report.violations;
    }
    report.feasible = report.violations == 0;
    return report;
}

CoverageReport verify_coverage_max_power(const Scenario& scenario,
                                         const CoveragePlan& plan) {
    const std::vector<double> powers(plan.rs_count(),
                                     scenario.rs_max_power().watts());
    return verify_coverage(scenario, plan, powers);
}

ConnectivityReport verify_connectivity(const Scenario& scenario,
                                       const CoveragePlan& coverage,
                                       const ConnectivityPlan& plan) {
    ConnectivityReport report;
    std::ostringstream detail;
    const std::size_t n = plan.node_count();
    const std::size_t bs_count = scenario.base_stations.size();
    const std::size_t cov_count = coverage.rs_count();

    report.all_rooted = true;
    report.hops_ok = true;

    // Structural sanity: consistent array sizes, in-range parents, the
    // node-layout convention (base stations first, then coverage RSs).
    bool malformed = n < bs_count + cov_count || plan.kinds.size() != n ||
                     plan.parent.size() != n || plan.powers.size() != n;
    if (!malformed) {
        for (std::size_t v = 0; v < n; ++v) {
            if (plan.parent[v] >= n) malformed = true;
        }
        for (std::size_t b = 0; b < bs_count; ++b) {
            if (plan.kinds[b] != NodeKind::BaseStation) malformed = true;
        }
        for (std::size_t c = 0; c < cov_count; ++c) {
            if (plan.kinds[bs_count + c] != NodeKind::CoverageRs) malformed = true;
        }
    }
    if (malformed) {
        report.all_rooted = false;
        report.hops_ok = false;
        report.violations = 1;
        report.feasible = false;
        detail << "plan is structurally malformed";
        report.detail = detail.str();
        return report;
    }

    // Every non-BS node must reach a BaseStation root without cycles.
    for (std::size_t v = 0; v < n; ++v) {
        std::size_t cur = v;
        std::size_t steps = 0;
        while (plan.parent[cur] != cur && steps <= n) {
            cur = plan.parent[cur];
            ++steps;
        }
        if (steps > n || plan.kinds[cur] != NodeKind::BaseStation) {
            report.all_rooted = false;
            ++report.violations;
            detail << "node " << v << " is not rooted at a base station; ";
        }
    }

    // Allowed hop length of node v: the minimum distance request over the
    // coverage RSs in v's subtree (the paper's "feasible distance equals
    // the minimum feasible distance of all its children"). Compute by
    // propagating each coverage RS's requirement up its root path.
    std::vector<double> allowed(n, std::numeric_limits<double>::infinity());
    for (std::size_t c = 0; c < cov_count; ++c) {
        const std::size_t node = bs_count + c;
        double req = std::numeric_limits<double>::infinity();
        for (const ids::SsId j : coverage.served_by(ids::RsId{c})) {
            req = std::min(req, scenario.subscriber(j).distance_request);
        }
        std::size_t cur = node;
        std::size_t steps = 0;
        while (steps <= n) {
            allowed[cur] = std::min(allowed[cur], req);
            if (plan.parent[cur] == cur) break;
            cur = plan.parent[cur];
            ++steps;
        }
    }
    for (std::size_t v = 0; v < n; ++v) {
        if (plan.parent[v] == v) continue;
        const double hop = geom::distance(plan.positions[v], plan.positions[plan.parent[v]]);
        if (hop > allowed[v] + 1e-6) {
            report.hops_ok = false;
            ++report.violations;
            detail << "hop " << v << "->" << plan.parent[v] << " length " << hop
                   << " exceeds " << allowed[v] << "; ";
        }
    }

    report.feasible = report.all_rooted && report.hops_ok;
    report.detail = detail.str();
    return report;
}

}  // namespace sag::core
