#include "sag/core/snr_field.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>

#include "sag/core/snr.h"
#include "sag/obs/obs.h"
#include "sag/wireless/kernel_eval.h"

namespace sag::core {

SnrField::SnrField(const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
                   std::span<const double> powers, std::span<const ids::SsId> subs)
    : scenario_(&scenario),
      kernel_(scenario.gain_kernel()),
      rs_pos_(rs_positions.begin(), rs_positions.end()),
      rs_power_(powers.begin(), powers.end()),
      sub_ids_(std::vector<ids::SsId>(subs.begin(), subs.end())) {
    assert(rs_pos_.size() == rs_power_.size());
    rs_x_.reserve(rs_pos_.size());
    rs_y_.reserve(rs_pos_.size());
    for (const geom::Vec2& p : rs_pos_) {
        rs_x_.push_back(p.x);
        rs_y_.push_back(p.y);
    }
    sub_x_.reserve(sub_ids_.size());
    sub_y_.reserve(sub_ids_.size());
    sub_reach_.reserve(sub_ids_.size());
    for (const ids::SsId j : sub_ids_) {
        sub_x_.push_back(scenario.subscriber(j).pos.x);
        sub_y_.push_back(scenario.subscriber(j).pos.y);
        sub_reach_.push_back(scenario.subscriber(j).distance_request);
    }
    total_.assign(sub_ids_.size(), 0.0);
    comp_.assign(sub_ids_.size(), 0.0);
    SAG_OBS_GAUGE("snr_field.simd_lanes", wireless::simd_lanes());
    refresh();
}

SnrField::SnrField(const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
                   std::span<const double> powers)
    : SnrField(scenario, rs_positions, powers,
               ids::all_ids<ids::SsId>(scenario.subscriber_count())) {}

SnrField SnrField::at_max_power(const Scenario& scenario,
                                std::span<const geom::Vec2> rs_positions) {
    const std::vector<double> powers(rs_positions.size(),
                                     scenario.rs_max_power().watts());
    return SnrField(scenario, rs_positions, powers);
}

SnrField SnrField::at_max_power(const Scenario& scenario,
                                std::span<const geom::Vec2> rs_positions,
                                std::span<const ids::SsId> subs) {
    const std::vector<double> powers(rs_positions.size(),
                                     scenario.rs_max_power().watts());
    return SnrField(scenario, rs_positions, powers, subs);
}

void SnrField::apply_rs_contribution(const geom::Vec2& pos, units::Watt power,
                                     double sign) {
    // Neumaier accumulation of sign * power * gain at every tracked
    // subscriber, one batch sweep over the SoA columns. The sign rides on
    // the power (exact negation), so a retraction subtracts exactly the
    // doubles the insertion added — the cancellation invariant the
    // Transaction rollback and remove_rs depend on.
    wireless::accumulate_rx(kernel_, pos, power * sign, sub_xs(), sub_ys(),
                            total_, comp_);
}

void SnrField::move_rs(ids::RsId i, const geom::Vec2& to) {
    assert(i.index() < rs_pos_.size());
    if (rs_pos_[i.index()] == to) return;
    journal({UndoRecord::Kind::Move, i, rs_pos_[i.index()], units::Watt{0.0}});
    apply_rs_contribution(rs_pos_[i.index()], rs_power(i), -1.0);
    rs_pos_[i.index()] = to;
    rs_x_[i.index()] = to.x;
    rs_y_[i.index()] = to.y;
    apply_rs_contribution(rs_pos_[i.index()], rs_power(i), +1.0);
    after_mutation();
}

void SnrField::set_power(ids::RsId i, units::Watt power) {
    assert(i.index() < rs_power_.size());
    if (rs_power_[i.index()] == power.watts()) return;
    journal({UndoRecord::Kind::Power, i, {}, rs_power(i)});
    // Subtract the old term and add the new one per subscriber (rather
    // than adding a fused difference) so both are the exact doubles a
    // from-scratch evaluation would produce. Two batch sweeps: the gain
    // for a given subscriber is the same double in both, so the per-slot
    // operation sequence matches the historical fused loop exactly.
    const units::Watt old_power = rs_power(i);
    apply_rs_contribution(rs_pos_[i.index()], old_power, -1.0);
    apply_rs_contribution(rs_pos_[i.index()], power, +1.0);
    rs_power_[i.index()] = power.watts();
    after_mutation();
}

ids::RsId SnrField::add_rs(const geom::Vec2& pos, units::Watt power) {
    const ids::RsId i{rs_pos_.size()};
    journal({UndoRecord::Kind::Add, i, {}, units::Watt{0.0}});
    rs_pos_.push_back(pos);
    rs_x_.push_back(pos.x);
    rs_y_.push_back(pos.y);
    rs_power_.push_back(power.watts());
    apply_rs_contribution(pos, power, +1.0);
    after_mutation();
    return i;
}

void SnrField::remove_rs(ids::RsId i) {
    assert(i.index() < rs_pos_.size());
    journal({UndoRecord::Kind::Remove, i, rs_pos_[i.index()], rs_power(i)});
    apply_rs_contribution(rs_pos_[i.index()], rs_power(i), -1.0);
    const auto at = static_cast<std::ptrdiff_t>(i.index());
    rs_pos_.erase(rs_pos_.begin() + at);
    rs_x_.erase(rs_x_.begin() + at);
    rs_y_.erase(rs_y_.begin() + at);
    rs_power_.erase(rs_power_.begin() + at);
    after_mutation();
}

void SnrField::insert_rs(ids::RsId i, const geom::Vec2& pos, units::Watt power) {
    assert(i.index() <= rs_pos_.size());
    const auto at = static_cast<std::ptrdiff_t>(i.index());
    rs_pos_.insert(rs_pos_.begin() + at, pos);
    rs_x_.insert(rs_x_.begin() + at, pos.x);
    rs_y_.insert(rs_y_.begin() + at, pos.y);
    rs_power_.insert(rs_power_.begin() + at, power.watts());
    apply_rs_contribution(pos, power, +1.0);
    after_mutation();
}

ids::SsId SnrField::add_subscriber(ids::SsId global) {
    assert(tx_depth_ == 0 && "subscriber deltas are not journaled");
    assert(global.index() < scenario_->subscriber_count());
    const ids::SsId k = sub_ids_.push_back(global);
    sub_x_.push_back(scenario_->subscriber(global).pos.x);
    sub_y_.push_back(scenario_->subscriber(global).pos.y);
    sub_reach_.push_back(scenario_->subscriber(global).distance_request);
    total_.push_back(0.0);
    comp_.push_back(0.0);
    recompute_subscriber(k);
    after_mutation();
    return k;
}

void SnrField::remove_subscriber(ids::SsId k) {
    assert(tx_depth_ == 0 && "subscriber deltas are not journaled");
    assert(k.index() < sub_ids_.size());
    const auto at = static_cast<std::ptrdiff_t>(k.index());
    // SAG_RAW_OK: erasing the tracked-local slot from the id column.
    sub_ids_.raw().erase(sub_ids_.raw().begin() + at);
    sub_x_.erase(sub_x_.begin() + at);
    sub_y_.erase(sub_y_.begin() + at);
    sub_reach_.erase(sub_reach_.begin() + at);
    total_.erase(total_.begin() + at);
    comp_.erase(comp_.begin() + at);
    after_mutation();
}

void SnrField::update_subscriber(ids::SsId k) {
    assert(tx_depth_ == 0 && "subscriber deltas are not journaled");
    assert(k.index() < sub_ids_.size());
    const ids::SsId global = sub_ids_[k];
    sub_x_[k.index()] = scenario_->subscriber(global).pos.x;
    sub_y_[k.index()] = scenario_->subscriber(global).pos.y;
    sub_reach_[k.index()] = scenario_->subscriber(global).distance_request;
    recompute_subscriber(k);
    after_mutation();
}

double SnrField::snr_of(ids::SsId k, ids::RsId serving) const {
    assert(k.index() < sub_x_.size() && serving.index() < rs_pos_.size());
    const geom::Vec2 sub = sub_pos(k.index());
    const units::Watt signal{
        rs_power(serving).watts() *
        kernel_.gain(rs_pos_[serving.index()], sub,
                     geom::distance(rs_pos_[serving.index()], sub))};
    if (signal <= units::Watt{0.0}) return 0.0;  // a silent server delivers no SNR
    const units::Watt interference =
        units::Watt{total_rx(k)} - signal + scenario_->radio.snr_ambient_noise;
    return interference > units::Watt{0.0}
               ? (signal / interference).ratio()
               : std::numeric_limits<double>::infinity();
}

bool SnrField::meets_threshold(ids::SsId k, ids::RsId serving,
                               double rel_slack) const {
    return snr_of(k, serving) >=
           scenario_->snr_threshold_linear() * (1.0 - rel_slack);
}

std::vector<ids::SsId> SnrField::violated(
    ids::IdSpan<ids::SsId, const ids::RsId> serving) const {
    assert(serving.size() == sub_x_.size());
    const double beta = scenario_->snr_threshold_linear();
    std::vector<ids::SsId> bad;
    for (const ids::SsId k : tracked_ids()) {
        const ids::RsId rs = serving[k];
        const double d =
            geom::distance(rs_pos_[rs.index()], sub_pos(k.index()));
        if (d > sub_reach_[k.index()] + 1e-6 ||
            snr_of(k, rs) < beta * (1.0 - 1e-12)) {
            bad.push_back(k);
        }
    }
    return bad;
}

bool SnrField::all_meet_threshold(ids::IdSpan<ids::SsId, const ids::RsId> serving,
                                  double rel_slack) const {
    assert(serving.size() == sub_x_.size());
    for (const ids::SsId k : tracked_ids()) {
        if (!meets_threshold(k, serving[k], rel_slack)) return false;
    }
    return true;
}

void SnrField::snrs(ids::IdSpan<ids::SsId, const ids::RsId> serving,
                    std::span<double> out) const {
    assert(serving.size() == sub_x_.size() && out.size() == sub_x_.size());
    // The batch kernel gathers RS columns through raw 32-bit indices;
    // this is the IdSpan -> bulk-buffer boundary.
    std::vector<std::uint32_t> raw(serving.size());
    for (const ids::SsId k : tracked_ids()) {
        assert(serving[k].index() < rs_pos_.size());
        // SAG_RAW_OK: building the kernel's u32 gather column from RsIds.
        raw[k.index()] = serving[k].value();
    }
    wireless::batch_snr(kernel_, rs_xs(), rs_ys(),
                        units::WattSpan{rs_power_}, raw, sub_xs(), sub_ys(),
                        total_, comp_, scenario_->radio.snr_ambient_noise,
                        out);
}

void SnrField::recompute_subscriber(ids::SsId kk) {
    const std::size_t k = kk.index();
    wireless::rx_total(kernel_, sub_pos(k), rs_xs(), rs_ys(),
                       units::WattSpan{rs_power_}, total_[k], comp_[k]);
}

void SnrField::refresh() {
    for (const ids::SsId k : tracked_ids()) recompute_subscriber(k);
}

double SnrField::verify_against_scratch() const {
    double worst = 0.0;
    for (std::size_t k = 0; k < sub_x_.size(); ++k) {
        double scratch = 0.0;
        for (std::size_t i = 0; i < rs_pos_.size(); ++i) {
            scratch += rs_power_[i] *
                       kernel_.gain(rs_pos_[i], sub_pos(k),
                                    geom::distance(rs_pos_[i], sub_pos(k)));
        }
        const double incr = total_[k] + comp_[k];
        const double scale =
            std::max({std::abs(scratch), std::abs(incr), 1e-300});
        worst = std::max(worst, std::abs(incr - scratch) / scale);
    }
    return worst;
}

void SnrField::journal(UndoRecord rec) {
    if (tx_depth_ > 0 && !journaling_paused_) journal_.push_back(rec);
}

void SnrField::rollback_to(std::size_t mark) {
    journaling_paused_ = true;
    while (journal_.size() > mark) {
        const UndoRecord rec = journal_.back();
        journal_.pop_back();
        switch (rec.kind) {
            case UndoRecord::Kind::Move:
                move_rs(rec.index, rec.pos);
                break;
            case UndoRecord::Kind::Power:
                set_power(rec.index, rec.power);
                break;
            case UndoRecord::Kind::Add:
                remove_rs(rec.index);
                break;
            case UndoRecord::Kind::Remove:
                insert_rs(rec.index, rec.pos, rec.power);
                break;
        }
    }
    journaling_paused_ = false;
}

void SnrField::after_mutation() {
    // journaling_paused_ is only true while rollback_to replays undo
    // records, so it cleanly splits applied from reverted deltas.
    if (journaling_paused_) {
        SAG_OBS_COUNT("snr_field.deltas.reverted");
    } else {
        SAG_OBS_COUNT("snr_field.deltas.applied");
    }
    ++mutations_;
    if (check_interval_ != 0 && mutations_ % check_interval_ == 0) {
        SAG_OBS_COUNT("snr_field.scratch_checks");
        assert(verify_against_scratch() <= 1e-9 &&
               "SnrField incremental state diverged from scratch recompute");
    }
}

SnrField::Transaction::Transaction(SnrField& field)
    : field_(field), mark_(field.journal_.size()) {
    ++field_.tx_depth_;
}

SnrField::Transaction::~Transaction() {
    if (!committed_) field_.rollback_to(mark_);
    --field_.tx_depth_;
    if (field_.tx_depth_ == 0) field_.journal_.clear();
}

SnrFeasibilityOracle::SnrFeasibilityOracle(const Scenario& scenario,
                                           std::span<const geom::Vec2> candidates)
    : scenario_(&scenario),
      candidates_(candidates.begin(), candidates.end()),
      field_(scenario, {}, {}) {}

bool SnrFeasibilityOracle::feasible(std::span<const ids::CandId> chosen) {
    SAG_OBS_COUNT("ilpqc.oracle.calls");
    // The branch-and-bound descends with stack discipline, so consecutive
    // queries share a long prefix: pop back to it, push the rest.
    std::size_t prefix = 0;
    while (prefix < current_.size() && prefix < chosen.size() &&
           current_[prefix] == chosen[prefix]) {
        ++prefix;
    }
    SAG_OBS_COUNT_ADD("ilpqc.oracle.rs_removed", current_.size() - prefix);
    SAG_OBS_COUNT_ADD("ilpqc.oracle.rs_added", chosen.size() - prefix);
    while (current_.size() > prefix) {
        field_.remove_rs(ids::RsId{current_.size() - 1});
        current_.pop_back();
    }
    for (std::size_t c = prefix; c < chosen.size(); ++c) {
        field_.add_rs(candidates_[chosen[c].index()], scenario_->rs_max_power());
        current_.push_back(chosen[c]);
    }

    const auto assignment = nearest_assignment(*scenario_, field_.rs_positions());
    if (!assignment) return false;
    return field_.all_meet_threshold(*assignment, 0.0);
}

}  // namespace sag::core
