#include "sag/core/sag.h"

#include "sag/core/ucra.h"

namespace sag::core {

SagResult green_pipeline(const Scenario& scenario, CoveragePlan coverage) {
    SagResult result;
    result.coverage = std::move(coverage);
    if (!result.coverage.feasible) return result;

    result.lower_power = allocate_power_pro(scenario, result.coverage);
    result.connectivity = solve_mbmc(scenario, result.coverage);
    allocate_power_ucpo(scenario, result.coverage, result.connectivity);
    result.feasible = result.lower_power.feasible && result.connectivity.feasible;
    return result;
}

SagResult solve_sag(const Scenario& scenario, const SamcOptions& options) {
    return green_pipeline(scenario, solve_samc(scenario, options).plan);
}

SagResult solve_darp_baseline(const Scenario& scenario, CoveragePlan coverage,
                              std::size_t bs_index) {
    SagResult result;
    result.coverage = std::move(coverage);
    if (!result.coverage.feasible) return result;

    result.lower_power = allocate_power_baseline(scenario, result.coverage);
    result.connectivity = solve_must(scenario, result.coverage, bs_index);
    allocate_power_max(scenario, result.connectivity);
    // DARP predates the SNR constraint; its max-power lower tier may
    // violate beta — the comparison in Fig. 7 is about power, so we keep
    // the plan but surface coverage feasibility honestly.
    result.feasible = result.connectivity.feasible;
    return result;
}

}  // namespace sag::core
