#include "sag/core/sag.h"

#include "sag/core/ucra.h"
#include "sag/obs/obs.h"

namespace sag::core {

SagResult green_pipeline(const Scenario& scenario, CoveragePlan coverage) {
    SAG_OBS_SPAN("sag.pipeline");
    SagResult result;
    result.coverage = std::move(coverage);
    if (!result.coverage.feasible) return result;

    {
        SAG_OBS_SPAN("sag.pro");
        result.lower_power = allocate_power_pro(scenario, result.coverage);
    }
    {
        SAG_OBS_SPAN("sag.mbmc");
        result.connectivity = solve_mbmc(scenario, result.coverage);
    }
    {
        SAG_OBS_SPAN("sag.ucpo");
        allocate_power_ucpo(scenario, result.coverage, result.connectivity);
    }
    result.feasible = result.lower_power.feasible && result.connectivity.feasible;
    SAG_OBS_GAUGE("sag.total_power", result.total_power());
    return result;
}

SagResult solve_sag(const Scenario& scenario, const SamcOptions& options) {
    SAG_OBS_SPAN("sag.solve");
    CoveragePlan plan;
    {
        SAG_OBS_SPAN("sag.coverage");
        plan = solve_samc(scenario, options).plan;
    }
    return green_pipeline(scenario, std::move(plan));
}

SagResult solve_darp_baseline(const Scenario& scenario, CoveragePlan coverage,
                              ids::BsId bs) {
    SAG_OBS_SPAN("sag.darp");
    SagResult result;
    result.coverage = std::move(coverage);
    if (!result.coverage.feasible) return result;

    result.lower_power = allocate_power_baseline(scenario, result.coverage);
    result.connectivity = solve_must(scenario, result.coverage, bs);
    allocate_power_max(scenario, result.connectivity);
    // DARP predates the SNR constraint; its max-power lower tier may
    // violate beta — the comparison in Fig. 7 is about power, so we keep
    // the plan but surface coverage feasibility honestly.
    result.feasible = result.connectivity.feasible;
    return result;
}

}  // namespace sag::core
