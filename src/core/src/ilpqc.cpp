#include "sag/core/ilpqc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "sag/core/snr.h"
#include "sag/core/snr_field.h"
#include "sag/ids/ids.h"
#include "sag/obs/obs.h"
#include "sag/opt/set_cover.h"

namespace sag::core {

namespace {

/// Longest access link that can still clear the SNR threshold when the
/// only disturbance is the ambient noise (interference from other RSs can
/// only shorten it). Serving beyond this radius is provably infeasible,
/// so links longer than min(d_j, this) are dropped from the ILP up front —
/// a sound tightening that also detects infeasible thresholds instantly
/// (the Fig. 3d regime).
double noise_only_service_radius(const Scenario& scenario) {
    const units::Watt floor =
        scenario.snr_threshold() * scenario.radio.snr_ambient_noise;
    if (floor <= units::Watt{0.0}) return std::numeric_limits<double>::infinity();
    return scenario.range_for(scenario.rs_max_power(), floor).meters();
}

}  // namespace

CoveragePlan solve_ilpqc_coverage(const Scenario& scenario,
                                  std::span<const geom::Vec2> candidates,
                                  const IlpqcOptions& options) {
    SAG_OBS_SPAN("ilpqc.solve");
    CoveragePlan plan;
    const std::size_t n = scenario.subscriber_count();
    if (n == 0) {
        plan.feasible = true;
        plan.proven_optimal = true;
        return plan;
    }

    // Constraint (3.4): candidate i may serve subscriber j only when
    // d_ij <= d_j, further tightened by the noise-only SNR radius (3.5).
    // The set-cover instance is the generic opt-layer boundary: entity IDs
    // cross into it as raw element/set indices.
    const double snr_radius = noise_only_service_radius(scenario);
    opt::SetCoverInstance inst;
    inst.element_count = n;
    inst.sets.resize(candidates.size());
    for (const ids::CandId i : ids::first_ids<ids::CandId>(candidates.size())) {
        for (const ids::SsId j : scenario.ss_ids()) {
            const Subscriber& s = scenario.subscriber(j);
            const double limit = std::min(s.distance_request, snr_radius);
            if (geom::distance(candidates[i.index()], s.pos) <=
                limit + geom::kEps) {
                inst.sets[i.index()].push_back(j.index());
            }
        }
    }

    // Constraint (3.5) as the leaf oracle: with the chosen set at max
    // power, every subscriber's best in-range server must clear beta.
    // The incremental oracle diffs each query against the previous one,
    // so the branch-and-bound's stack-disciplined descent pays one
    // add/remove delta per changed candidate instead of rebuilding the
    // interference sums from scratch at every node. Retyping the opt
    // layer's raw chosen set is O(depth) per query — noise next to the
    // field deltas.
    opt::SetCoverBnBOptions bnb;
    bnb.node_budget = options.node_budget;
    bnb.time_budget_seconds = options.time_budget_seconds;
    bnb.allow_padding = options.allow_padding;
    bnb.threads = options.threads;
    // A placement larger than one RS per subscriber (plus a little padding
    // slack) is never useful; capping the search keeps infeasibility
    // proofs from enumerating absurd cover sizes.
    bnb.max_size = n + 4;

    opt::SetCoverBnBResult result;
    if (options.threads == 1) {
        SnrFeasibilityOracle snr_oracle(scenario, candidates);
        std::vector<ids::CandId> chosen_ids;
        const opt::CoverOracle oracle = [&](std::span<const std::size_t> chosen) {
            chosen_ids.clear();
            chosen_ids.reserve(chosen.size());
            for (const std::size_t c : chosen) chosen_ids.push_back(ids::CandId{c});
            return snr_oracle.feasible(chosen_ids);
        };
        result = opt::solve_set_cover_bnb(inst, oracle, bnb);
    } else {
        // Parallel search: every root branch builds its own incremental
        // oracle (the SnrFeasibilityOracle diffs against *its* previous
        // query, so sharing one across subtrees would corrupt the diff).
        // The factory itself captures only const state, so the fan-out
        // (exec::ThreadPool inside solve_set_cover_bnb_parallel) shares
        // nothing mutable across workers — by construction, and checked
        // by the clang thread-safety build plus the §6 confinement lint.
        const opt::CoverOracleFactory factory = [&scenario, candidates]() {
            auto snr_oracle =
                std::make_shared<SnrFeasibilityOracle>(scenario, candidates);
            auto chosen_ids = std::make_shared<std::vector<ids::CandId>>();
            return opt::CoverOracle(
                [snr_oracle, chosen_ids](std::span<const std::size_t> chosen) {
                    chosen_ids->clear();
                    chosen_ids->reserve(chosen.size());
                    for (const std::size_t c : chosen) {
                        chosen_ids->push_back(ids::CandId{c});
                    }
                    return snr_oracle->feasible(*chosen_ids);
                });
        };
        result = opt::solve_set_cover_bnb_parallel(inst, factory, bnb);
    }

    plan.search_nodes = result.nodes_explored;
    SAG_OBS_COUNT_ADD("ilpqc.bnb.nodes", result.nodes_explored);
    plan.proven_optimal = result.proven_optimal;
    if (!result.feasible) return plan;

    for (const std::size_t i : result.chosen) plan.rs_positions.push_back(candidates[i]);
    auto assignment = nearest_assignment(scenario, plan.rs_positions);
    if (!assignment) return plan;  // should not happen for a valid cover
    plan.assignment = std::move(*assignment);
    plan.feasible = true;
    return plan;
}

}  // namespace sag::core
