#include "sag/core/ilpqc_milp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sag/core/snr_field.h"
#include "sag/obs/obs.h"
#include "sag/wireless/two_ray.h"

namespace sag::core {

namespace {

using Rel = opt::LinearProgram::Relation;

/// Variable layout: T_i for i in [0, m), then one T_ij per in-range link
/// in a flat list.
struct Layout {
    std::size_t m = 0;                                   // candidates
    std::vector<std::pair<std::size_t, std::size_t>> links;  // (i, j)
    std::vector<std::vector<std::size_t>> links_of_sub;  // j -> link ids
    std::vector<std::vector<std::size_t>> links_of_cand; // i -> link ids

    std::size_t var_count() const { return m + links.size(); }
    std::size_t link_var(std::size_t link) const { return m + link; }
};

Layout make_layout(const Scenario& scenario, std::span<const geom::Vec2> candidates) {
    Layout layout;
    layout.m = candidates.size();
    layout.links_of_sub.resize(scenario.subscriber_count());
    layout.links_of_cand.resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        for (std::size_t j = 0; j < scenario.subscriber_count(); ++j) {
            const Subscriber& s = scenario.subscribers[j];
            // (3.4): assignment variables exist only for in-range pairs.
            if (geom::distance(candidates[i], s.pos) <=
                s.distance_request + geom::kEps) {
                layout.links_of_sub[j].push_back(layout.links.size());
                layout.links_of_cand[i].push_back(layout.links.size());
                layout.links.emplace_back(i, j);
            }
        }
    }
    return layout;
}

}  // namespace

opt::MilpProblem build_ilpqc_milp(const Scenario& scenario,
                                  std::span<const geom::Vec2> candidates) {
    const Layout layout = make_layout(scenario, candidates);
    const std::size_t nv = layout.var_count();
    const double beta = scenario.snr_threshold_linear();

    opt::MilpProblem problem;
    problem.lp.objective.assign(nv, 0.0);
    for (std::size_t i = 0; i < layout.m; ++i) problem.lp.objective[i] = 1.0;  // (3.1)
    problem.binary.assign(nv, true);

    // (3.3): every subscriber has exactly one access link.
    for (std::size_t j = 0; j < scenario.subscriber_count(); ++j) {
        std::vector<double> row(nv, 0.0);
        for (const std::size_t l : layout.links_of_sub[j]) {
            row[layout.link_var(l)] = 1.0;
        }
        problem.lp.add_constraint(std::move(row), Rel::Equal, 1.0);
    }

    // (3.2): T_ij <= T_i (a link needs its RS placed), and
    // T_i <= sum_j T_ij (a placed RS covers at least one subscriber).
    for (std::size_t l = 0; l < layout.links.size(); ++l) {
        std::vector<double> row(nv, 0.0);
        row[layout.link_var(l)] = 1.0;
        row[layout.links[l].first] = -1.0;
        problem.lp.add_constraint(std::move(row), Rel::LessEq, 0.0);
    }
    for (std::size_t i = 0; i < layout.m; ++i) {
        std::vector<double> row(nv, 0.0);
        row[i] = 1.0;
        for (const std::size_t l : layout.links_of_cand[i]) {
            row[layout.link_var(l)] = -1.0;
        }
        problem.lp.add_constraint(std::move(row), Rel::LessEq, 0.0);
    }

    // (3.5), linearized with big-M per link:
    //   beta * (sum_{k != i} g_kj T_k + N) - g_ij <= M (1 - T_ij)
    // where g_kj is the max-power received gain of candidate k at sub j.
    std::vector<std::vector<double>> g(layout.m,
                                       std::vector<double>(scenario.subscriber_count()));
    for (std::size_t k = 0; k < layout.m; ++k) {
        for (std::size_t j = 0; j < scenario.subscriber_count(); ++j) {
            g[k][j] = wireless::received_power(
                          scenario.radio, scenario.radio.max_power,
                          units::Meters{geom::distance(
                              candidates[k], scenario.subscribers[j].pos)})
                          .watts();
        }
    }
    // Worst-case interference per link (every candidate transmitting) from
    // a one-shot field: O(m n) totals once, O(1) per link, instead of the
    // former O(links x m) re-summation.
    const SnrField cand_field = SnrField::at_max_power(scenario, candidates);
    for (std::size_t l = 0; l < layout.links.size(); ++l) {
        const auto [i, j] = layout.links[l];
        const double worst_interference = cand_field.total_rx(j) - g[i][j] +
                                          scenario.radio.snr_ambient_noise.watts();
        const double big_m = beta * worst_interference;  // tight M
        std::vector<double> row(nv, 0.0);
        for (std::size_t k = 0; k < layout.m; ++k) {
            if (k != i) row[k] = beta * g[k][j];
        }
        row[layout.link_var(l)] = big_m;
        problem.lp.add_constraint(
            std::move(row), Rel::LessEq,
            big_m + g[i][j] - beta * scenario.radio.snr_ambient_noise.watts());
    }

    return problem;
}

CoveragePlan solve_ilpqc_milp(const Scenario& scenario,
                              std::span<const geom::Vec2> candidates,
                              const opt::MilpOptions& options) {
    SAG_OBS_SPAN("ilpqc.milp.solve");
    CoveragePlan plan;
    if (scenario.subscriber_count() == 0) {
        plan.feasible = true;
        plan.proven_optimal = true;
        return plan;
    }
    const Layout layout = make_layout(scenario, candidates);
    const auto problem = build_ilpqc_milp(scenario, candidates);

    opt::MilpOptions opts = options;
    opts.bound_gap = 1.0 - 1e-6;  // pure cardinality objective
    const auto result = opt::solve_milp(problem, opts);
    plan.search_nodes = result.nodes;
    SAG_OBS_COUNT_ADD("ilpqc.milp.nodes", result.nodes);
    if (!result.optimal()) return plan;
    plan.proven_optimal = true;

    // Recover positions (compacted to chosen candidates) and assignment.
    std::vector<std::size_t> chosen_index(candidates.size(), SIZE_MAX);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (result.x[i] > 0.5) {
            chosen_index[i] = plan.rs_positions.size();
            plan.rs_positions.push_back(candidates[i]);
        }
    }
    plan.assignment.assign(scenario.subscriber_count(), SIZE_MAX);
    for (std::size_t l = 0; l < layout.links.size(); ++l) {
        if (result.x[layout.m + l] > 0.5) {
            const auto [i, j] = layout.links[l];
            plan.assignment[j] = chosen_index[i];
        }
    }
    plan.feasible = std::none_of(plan.assignment.begin(), plan.assignment.end(),
                                 [](std::size_t a) { return a == SIZE_MAX; });
    return plan;
}

}  // namespace sag::core
