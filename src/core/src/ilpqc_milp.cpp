#include "sag/core/ilpqc_milp.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "sag/core/snr_field.h"
#include "sag/ids/ids.h"
#include "sag/obs/obs.h"

namespace sag::core {

namespace {

using Rel = opt::LinearProgram::Relation;

/// Variable layout: T_i for i in [0, m), then one T_ij per in-range link
/// in a flat list. LP variable and link indices are generic solver
/// indices (size_t); the entities behind each link are typed.
struct Layout {
    std::size_t m = 0;                              // candidates
    std::vector<std::pair<ids::CandId, ids::SsId>> links;  // (i, j)
    ids::IdVec<ids::SsId, std::vector<std::size_t>> links_of_sub;
    ids::IdVec<ids::CandId, std::vector<std::size_t>> links_of_cand;

    std::size_t var_count() const { return m + links.size(); }
    std::size_t link_var(std::size_t link) const { return m + link; }
};

Layout make_layout(const Scenario& scenario, std::span<const geom::Vec2> candidates) {
    Layout layout;
    layout.m = candidates.size();
    layout.links_of_sub.resize(scenario.subscriber_count());
    layout.links_of_cand.resize(candidates.size());
    for (const ids::CandId i : ids::first_ids<ids::CandId>(candidates.size())) {
        for (const ids::SsId j : scenario.ss_ids()) {
            const Subscriber& s = scenario.subscriber(j);
            // (3.4): assignment variables exist only for in-range pairs.
            if (geom::distance(candidates[i.index()], s.pos) <=
                s.distance_request + geom::kEps) {
                layout.links_of_sub[j].push_back(layout.links.size());
                layout.links_of_cand[i].push_back(layout.links.size());
                layout.links.emplace_back(i, j);
            }
        }
    }
    return layout;
}

}  // namespace

opt::MilpProblem build_ilpqc_milp(const Scenario& scenario,
                                  std::span<const geom::Vec2> candidates) {
    const Layout layout = make_layout(scenario, candidates);
    const std::size_t nv = layout.var_count();
    const double beta = scenario.snr_threshold_linear();

    opt::MilpProblem problem;
    problem.lp.objective.assign(nv, 0.0);
    for (std::size_t i = 0; i < layout.m; ++i) problem.lp.objective[i] = 1.0;  // (3.1)
    problem.binary.assign(nv, true);

    // (3.3): every subscriber has exactly one access link.
    for (const ids::SsId j : scenario.ss_ids()) {
        std::vector<double> row(nv, 0.0);
        for (const std::size_t l : layout.links_of_sub[j]) {
            row[layout.link_var(l)] = 1.0;
        }
        problem.lp.add_constraint(std::move(row), Rel::Equal, 1.0);
    }

    // (3.2): T_ij <= T_i (a link needs its RS placed), and
    // T_i <= sum_j T_ij (a placed RS covers at least one subscriber).
    for (std::size_t l = 0; l < layout.links.size(); ++l) {
        std::vector<double> row(nv, 0.0);
        row[layout.link_var(l)] = 1.0;
        row[layout.links[l].first.index()] = -1.0;
        problem.lp.add_constraint(std::move(row), Rel::LessEq, 0.0);
    }
    for (const ids::CandId i : layout.links_of_cand.ids()) {
        std::vector<double> row(nv, 0.0);
        row[i.index()] = 1.0;
        for (const std::size_t l : layout.links_of_cand[i]) {
            row[layout.link_var(l)] = -1.0;
        }
        problem.lp.add_constraint(std::move(row), Rel::LessEq, 0.0);
    }

    // (3.5), linearized with big-M per link:
    //   beta * (sum_{k != i} g_kj T_k + N) - g_ij <= M (1 - T_ij)
    // where g_kj is the max-power received gain of candidate k at sub j.
    // g is a bulk gain matrix: raw doubles, indexed via .index().
    std::vector<std::vector<double>> g(layout.m,
                                       std::vector<double>(scenario.subscriber_count()));
    for (std::size_t k = 0; k < layout.m; ++k) {
        for (const ids::SsId j : scenario.ss_ids()) {
            g[k][j.index()] = scenario
                                  .received_power(scenario.rs_max_power(),
                                                  candidates[k],
                                                  scenario.subscriber(j).pos)
                                  .watts();
        }
    }
    // Worst-case interference per link (every candidate transmitting) from
    // a one-shot field: O(m n) totals once, O(1) per link, instead of the
    // former O(links x m) re-summation.
    const SnrField cand_field = SnrField::at_max_power(scenario, candidates);
    for (std::size_t l = 0; l < layout.links.size(); ++l) {
        const auto [i, j] = layout.links[l];
        const double worst_interference =
            cand_field.total_rx(j) - g[i.index()][j.index()] +
            scenario.radio.snr_ambient_noise.watts();
        const double big_m = beta * worst_interference;  // tight M
        std::vector<double> row(nv, 0.0);
        for (std::size_t k = 0; k < layout.m; ++k) {
            if (k != i.index()) row[k] = beta * g[k][j.index()];
        }
        row[layout.link_var(l)] = big_m;
        problem.lp.add_constraint(
            std::move(row), Rel::LessEq,
            big_m + g[i.index()][j.index()] -
                beta * scenario.radio.snr_ambient_noise.watts());
    }

    return problem;
}

CoveragePlan solve_ilpqc_milp(const Scenario& scenario,
                              std::span<const geom::Vec2> candidates,
                              const opt::MilpOptions& options) {
    SAG_OBS_SPAN("ilpqc.milp.solve");
    CoveragePlan plan;
    if (scenario.subscriber_count() == 0) {
        plan.feasible = true;
        plan.proven_optimal = true;
        return plan;
    }
    const Layout layout = make_layout(scenario, candidates);
    const auto problem = build_ilpqc_milp(scenario, candidates);

    opt::MilpOptions opts = options;
    opts.bound_gap = 1.0 - 1e-6;  // pure cardinality objective
    const auto result = opt::solve_milp(problem, opts);
    plan.search_nodes = result.nodes;
    SAG_OBS_COUNT_ADD("ilpqc.milp.nodes", result.nodes);
    if (!result.optimal()) return plan;
    plan.proven_optimal = true;

    // Recover positions (compacted to chosen candidates) and assignment.
    // chosen_index maps candidate -> plan-local RS, invalid() when unplaced.
    ids::IdVec<ids::CandId, ids::RsId> chosen_index(candidates.size(),
                                                    ids::RsId::invalid());
    for (const ids::CandId i : chosen_index.ids()) {
        if (result.x[i.index()] > 0.5) {
            chosen_index[i] = ids::RsId{plan.rs_positions.size()};
            plan.rs_positions.push_back(candidates[i.index()]);
        }
    }
    plan.assignment.assign(scenario.subscriber_count(), ids::RsId::invalid());
    for (std::size_t l = 0; l < layout.links.size(); ++l) {
        if (result.x[layout.m + l] > 0.5) {
            const auto [i, j] = layout.links[l];
            plan.assignment[j] = chosen_index[i];
        }
    }
    plan.feasible = std::none_of(plan.assignment.begin(), plan.assignment.end(),
                                 [](ids::RsId a) { return !a.valid(); });
    return plan;
}

}  // namespace sag::core
