#include "sag/core/dual_coverage.h"

#include <algorithm>
#include <limits>

#include "sag/core/snr.h"
#include "sag/core/snr_field.h"
#include "sag/obs/obs.h"
#include "sag/opt/set_cover.h"

namespace sag::core {

namespace {

/// Primary/secondary link selection for a fixed RS set: nearest and
/// second-nearest in-range RSs per subscriber. Returns false when some
/// subscriber lacks two in-range RSs.
bool assign_links(const Scenario& scenario, std::span<const geom::Vec2> rs,
                  ids::IdVec<ids::SsId, ids::RsId>& primary,
                  ids::IdVec<ids::SsId, ids::RsId>& secondary) {
    const std::size_t n = scenario.subscriber_count();
    primary.assign(n, ids::RsId::invalid());
    secondary.assign(n, ids::RsId::invalid());
    for (const ids::SsId j : scenario.ss_ids()) {
        const Subscriber& s = scenario.subscriber(j);
        double best = std::numeric_limits<double>::infinity();
        double second = std::numeric_limits<double>::infinity();
        for (const ids::RsId i : ids::first_ids<ids::RsId>(rs.size())) {
            const double d = geom::distance(rs[i.index()], s.pos);
            if (d > s.distance_request + geom::kEps) continue;
            if (d < best) {
                second = best;
                secondary[j] = primary[j];
                best = d;
                primary[j] = i;
            } else if (d < second) {
                second = d;
                secondary[j] = i;
            }
        }
        if (!primary[j].valid() || !secondary[j].valid()) return false;
    }
    return true;
}

/// Full feasibility for the field's current RS set: dual in-range links
/// plus the primary SNR constraint at max power, read off the cached
/// interference totals.
bool field_feasible(const Scenario& scenario, const SnrField& field) {
    ids::IdVec<ids::SsId, ids::RsId> primary, secondary;
    if (!assign_links(scenario, field.rs_positions(), primary, secondary)) {
        return false;
    }
    return field.all_meet_threshold(primary, 1e-12);
}

}  // namespace

DualCoveragePlan solve_dual_coverage(const Scenario& scenario,
                                     std::span<const geom::Vec2> candidates) {
    SAG_OBS_SPAN("dual_coverage.solve");
    DualCoveragePlan plan;
    const std::size_t n = scenario.subscriber_count();
    if (n == 0) {
        plan.feasible = true;
        return plan;
    }

    // Demand-2 multicover over the in-range link structure (entity IDs
    // cross into the generic set-cover instance as raw indices).
    opt::SetCoverInstance inst;
    inst.element_count = n;
    inst.sets.resize(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        for (const ids::SsId j : scenario.ss_ids()) {
            const Subscriber& s = scenario.subscriber(j);
            if (geom::distance(candidates[i], s.pos) <=
                s.distance_request + geom::kEps) {
                inst.sets[i].push_back(j.index());
            }
        }
    }
    const std::vector<std::size_t> demand(n, 2);
    const auto chosen = opt::greedy_set_multicover(inst, demand);
    if (!chosen) return plan;

    std::vector<geom::Vec2> rs;
    rs.reserve(chosen->size());
    for (const std::size_t i : *chosen) rs.push_back(candidates[i]);
    SnrField field = SnrField::at_max_power(scenario, rs);
    if (!field_feasible(scenario, field)) return plan;

    // Redundancy prune: drop RSs whose removal keeps everything feasible.
    // (Removing an RS also removes its interference, so pruning can only
    // help the SNR side.) Each trial removal is a rolled-back delta on the
    // field instead of a full copy-and-rebuild of the candidate set.
    for (ids::RsId i{0}; i.index() < field.rs_count();) {
        SAG_OBS_COUNT("dual_coverage.prune_trials");
        SnrField::Transaction trial(field);
        field.remove_rs(i);
        if (field.rs_count() >= 2 && field_feasible(scenario, field)) {
            trial.commit();
        } else {
            ++i;
        }
    }

    const auto pruned = field.rs_positions();
    plan.rs_positions.assign(pruned.begin(), pruned.end());
    plan.feasible =
        assign_links(scenario, plan.rs_positions, plan.primary, plan.secondary);
    return plan;
}

bool verify_dual_coverage(const Scenario& scenario, const DualCoveragePlan& plan) {
    if (!plan.feasible) return false;
    const std::size_t n = scenario.subscriber_count();
    if (plan.primary.size() != n || plan.secondary.size() != n) return false;
    for (const ids::SsId j : scenario.ss_ids()) {
        const Subscriber& s = scenario.subscriber(j);
        const ids::RsId p = plan.primary[j];
        const ids::RsId q = plan.secondary[j];
        if (p == q) return false;
        if (!p.valid() || !q.valid() || p.index() >= plan.rs_count() ||
            q.index() >= plan.rs_count())
            return false;
        const double dp = geom::distance(plan.rs_positions[p.index()], s.pos);
        const double ds = geom::distance(plan.rs_positions[q.index()], s.pos);
        if (dp > s.distance_request + 1e-6 || ds > s.distance_request + 1e-6)
            return false;
        if (dp > ds + 1e-6) return false;  // primary must be the nearer one
    }
    const SnrField field = SnrField::at_max_power(scenario, plan.rs_positions);
    return field.all_meet_threshold(plan.primary, 1e-9);
}

}  // namespace sag::core
