#include "sag/core/deployment.h"

#include <algorithm>

namespace sag::core {

std::vector<ids::SsId> CoveragePlan::served_by(ids::RsId rs) const {
    std::vector<ids::SsId> subs;
    for (const ids::SsId j : assignment.ids()) {
        if (assignment[j] == rs) subs.push_back(j);
    }
    return subs;
}

std::size_t ConnectivityPlan::count(NodeKind kind) const {
    return static_cast<std::size_t>(
        std::count(kinds.begin(), kinds.end(), kind));
}

double ConnectivityPlan::upper_tier_power() const {
    double total = 0.0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
        if (kinds[i] == NodeKind::ConnectivityRs) total += powers[i];
    }
    return total;
}

}  // namespace sag::core
