#include "sag/core/samc.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>

#include "sag/core/snr.h"
#include "sag/core/snr_field.h"
#include "sag/core/zone_partition.h"
#include "sag/obs/obs.h"
#include "sag/geometry/region.h"

namespace sag::core {
namespace samc_detail {

ZoneAssignment coverage_link_escape(const Scenario& scenario,
                                    std::span<const ids::SsId> subs,
                                    std::span<const geom::Vec2> points) {
    SAG_OBS_SPAN("samc.link_escape");
    ZoneAssignment out;
    out.points.assign(points.begin(), points.end());
    out.serving.assign(subs.size(), ids::RsId::invalid());

    // Bipartite edges: point p -- zone subscriber k when p lies in k's
    // feasible circle.
    ids::IdVec<ids::RsId, std::vector<ids::SsId>> covers(points.size());
    for (const ids::RsId p : ids::first_ids<ids::RsId>(points.size())) {
        for (std::size_t k = 0; k < subs.size(); ++k) {
            const Subscriber& s = scenario.subscriber(subs[k]);
            if (geom::distance(points[p.index()], s.pos) <=
                s.distance_request + 1e-6) {
                covers[p].push_back(ids::SsId{k});
            }
        }
    }

    // Algorithm 3 Steps 3-5: repeatedly let the unmarked point with the
    // most surviving edges claim its subscribers, deleting the claimed
    // subscribers' other edges.
    std::vector<bool> point_marked(points.size(), false);
    while (true) {
        ids::RsId best_p = ids::RsId::invalid();
        std::size_t best_deg = 0;
        for (const ids::RsId p : covers.ids()) {
            if (point_marked[p.index()]) continue;
            std::size_t deg = 0;
            for (const ids::SsId k : covers[p]) {
                if (!out.serving[k].valid()) ++deg;
            }
            if (deg > best_deg) {
                best_deg = deg;
                best_p = p;
            }
        }
        if (!best_p.valid()) break;
        point_marked[best_p.index()] = true;
        for (const ids::SsId k : covers[best_p]) {
            if (!out.serving[k].valid()) out.serving[k] = best_p;
        }
    }
    return out;
}

namespace {

/// Zone-local evaluation state: a delta-updatable max-power interference
/// field over the zone's subscribers plus the explicit serving map.
/// Candidate relocations are probed through SnrField transactions, so a
/// probe costs one delta per moved RS instead of a full O(subs x RS)
/// interference rebuild (and no per-probe powers/positions allocations).
struct ZoneState {
    const Scenario& scenario;
    std::span<const ids::SsId> subs;
    SnrField field;
    ids::IdVec<ids::SsId, ids::RsId> serving;

    const geom::Vec2& point(ids::RsId p) const { return field.rs_position(p); }
    std::size_t point_count() const { return field.rs_count(); }

    /// Zone-local SsIds of subscribers violating distance or SNR under the
    /// field's current positions.
    std::vector<ids::SsId> violated() const { return field.violated(serving); }
};

/// One relocation proposal from Algorithm 5 Step 2.
struct Proposal {
    ids::RsId point;
    geom::Vec2 target;
};

/// Interference at zone subscriber `k` from every point except `skip`, all
/// at max power, plus the ambient noise of the SNR denominator. O(1) off
/// the field's cached total.
double interference_at(const ZoneState& st, ids::SsId k, ids::RsId skip) {
    const geom::Vec2& rx = st.scenario.subscriber(st.subs[k.index()]).pos;
    const double skipped =
        st.scenario.received_power(st.scenario.rs_max_power(), st.point(skip), rx)
            .watts();
    return st.field.total_rx(k) - skipped +
           st.scenario.radio.snr_ambient_noise.watts();
}

/// Algorithm 5 Step 2 for one RS: the region where it (a) still covers all
/// its satisfied subscribers, (b) brings each violated subscriber it
/// serves inside both coverage range and the SNR "virtual circle".
std::optional<geom::Vec2> relocation_target(const ZoneState& st, ids::RsId p,
                                            const std::vector<bool>& is_violated) {
    const double beta = st.scenario.snr_threshold_linear();
    std::vector<geom::Circle> region;
    for (const ids::SsId k : st.serving.ids()) {
        if (st.serving[k] != p) continue;
        const Subscriber& s = st.scenario.subscriber(st.subs[k.index()]);
        double radius = s.distance_request;
        if (is_violated[k.index()]) {
            const double interference = interference_at(st, k, p);
            if (interference > 0.0) {
                // SNR >= beta  <=>  gain(d) >= beta*I/Pmax: the model's
                // range inversion is the SNR "virtual circle" radius.
                const double r_snr =
                    st.scenario
                        .range_for(st.scenario.rs_max_power(),
                                   units::Watt{beta * interference})
                        .meters();
                radius = std::min(radius, r_snr);
            }
        }
        if (radius <= 0.0) return std::nullopt;
        region.push_back({s.pos, radius});
    }
    if (region.empty()) return std::nullopt;
    // Prefer the deepest interior point: numerical margin for the SNR
    // recheck and fewer knife-edge placements.
    const auto deep = geom::deepest_point_of_disks(region);
    if (deep.violation <= 1e-9) return deep.point;
    return geom::common_point_of_disks(region);
}

/// Visits subsets of {0..n-1} of size `t` (lexicographic), invoking `fn`
/// until it returns true or the cap is exhausted. Returns whether `fn`
/// succeeded. Positions within the proposal list, not entity IDs.
bool for_each_combination(std::size_t n, std::size_t t, std::size_t& budget,
                          const std::function<bool(std::span<const std::size_t>)>& fn) {
    std::vector<std::size_t> idx(t);
    for (std::size_t i = 0; i < t; ++i) idx[i] = i;
    while (true) {
        if (budget == 0) return false;
        --budget;
        if (fn(idx)) return true;
        // next combination
        std::size_t i = t;
        while (i > 0) {
            --i;
            if (idx[i] != i + n - t) {
                ++idx[i];
                for (std::size_t j = i + 1; j < t; ++j) idx[j] = idx[j - 1] + 1;
                break;
            }
            if (i == 0) return false;
        }
        if (t == 0) return false;
    }
}

}  // namespace

SlideResult sliding_movement(const Scenario& scenario,
                             std::span<const ids::SsId> subs,
                             const ZoneAssignment& assignment,
                             const SamcOptions& options) {
    SAG_OBS_SPAN("samc.sliding");
    SlideResult result;

    // Algorithm 4 Step 2: one-on-one RSs slide onto their subscriber and
    // become fixed members of H (applied before the field is built).
    std::vector<geom::Vec2> points = assignment.points;
    ids::IdVec<ids::RsId, std::size_t> served_count(points.size(), 0);
    for (const ids::RsId p : assignment.serving) {
        if (p.valid()) ++served_count[p];
    }
    std::vector<bool> fixed(points.size(), false);
    for (const ids::SsId k : assignment.serving.ids()) {
        const ids::RsId p = assignment.serving[k];
        if (served_count[p] == 1) {
            points[p.index()] = scenario.subscriber(subs[k.index()]).pos;
            fixed[p.index()] = true;
        }
    }

    ZoneState st{scenario, subs, SnrField::at_max_power(scenario, points, subs),
                 assignment.serving};

    // Optional repair: serve each violated subscriber from its nearest
    // in-range RS. Only the switched subscriber's SNR changes, so the
    // move never regresses other subscribers.
    const auto reassign_violated = [&](const std::vector<ids::SsId>& bad) {
        bool changed = false;
        for (const ids::SsId k : bad) {
            const Subscriber& sub = scenario.subscriber(subs[k.index()]);
            ids::RsId best = st.serving[k];
            double best_dist = geom::distance(st.point(best), sub.pos);
            for (const ids::RsId p : st.field.rs_ids()) {
                const double d = geom::distance(st.point(p), sub.pos);
                if (d <= sub.distance_request + 1e-6 && d < best_dist - 1e-9) {
                    best = p;
                    best_dist = d;
                }
            }
            if (best != st.serving[k]) {
                st.serving[k] = best;  // serving swaps leave the field intact
                changed = true;
                SAG_OBS_COUNT("samc.sliding.reassignments");
            }
        }
        return changed;
    };

    auto violated = st.violated();
    if (options.allow_reassignment && !violated.empty() &&
        reassign_violated(violated)) {
        violated = st.violated();
    }

    // Algorithms 4 Steps 3-5 + 5: relocate multi-cover RSs until clean or
    // stuck. Each committed round must strictly shrink the violated set.
    for (result.rounds = 0;
         !violated.empty() && result.rounds < options.max_improvement_rounds;
         ++result.rounds) {
        std::vector<bool> is_violated(subs.size(), false);
        for (const ids::SsId k : violated) is_violated[k.index()] = true;

        // R_u: unfixed RSs serving a violated subscriber.
        std::vector<ids::RsId> updatable_rs;
        for (const ids::SsId k : violated) {
            const ids::RsId p = st.serving[k];
            if (!fixed[p.index()] &&
                std::find(updatable_rs.begin(), updatable_rs.end(), p) ==
                    updatable_rs.end()) {
                updatable_rs.push_back(p);
            }
        }

        std::vector<Proposal> proposals;
        for (const ids::RsId p : updatable_rs) {
            if (const auto target = relocation_target(st, p, is_violated)) {
                proposals.push_back({p, *target});
            }
        }
        SAG_OBS_COUNT_ADD("samc.sliding.proposals", proposals.size());
        if (proposals.empty()) break;  // nothing updatable -> stuck

        // Algorithm 5 Step 3: try relocation combinations, largest first
        // (moving every updatable RS at once is the natural first try).
        // Each probe is a transaction: move the combination's RSs, read the
        // violated set off the incrementally updated field, roll back.
        std::size_t budget = options.max_update_combinations;
        std::size_t best_violations = violated.size();
        std::optional<std::vector<geom::Vec2>> best_points;
        bool solved = false;
        for (std::size_t t = proposals.size(); t >= 1 && !solved && budget > 0; --t) {
            solved = for_each_combination(
                proposals.size(), t, budget,
                [&](std::span<const std::size_t> combo) {
                    SAG_OBS_COUNT("samc.sliding.probes");
                    SnrField::Transaction tx(st.field);
                    for (const std::size_t c : combo) {
                        st.field.move_rs(proposals[c].point, proposals[c].target);
                    }
                    const auto bad = st.violated();
                    if (bad.size() < best_violations) {
                        best_violations = bad.size();
                        const auto probed = st.field.rs_positions();
                        best_points.emplace(probed.begin(), probed.end());
                    }
                    return bad.empty();
                });
        }
        if (solved || best_points) {
            // Commit the winning combination (move_rs no-ops on unchanged
            // points, so this re-applies exactly the probed deltas).
            for (const ids::RsId p : st.field.rs_ids()) {
                st.field.move_rs(p, (*best_points)[p.index()]);
            }
            violated = st.violated();
            if (options.allow_reassignment && !violated.empty() &&
                reassign_violated(violated)) {
                violated = st.violated();
            }
            if (solved) break;
        } else if (options.allow_reassignment && reassign_violated(violated)) {
            violated = st.violated();  // repair without relocation
        } else {
            break;  // no combination shrinks the violated set -> infeasible
        }
    }

    SAG_OBS_COUNT_ADD("samc.sliding.rounds", result.rounds);
    result.feasible = st.violated().empty();
    const auto final_points = st.field.rs_positions();
    result.points.assign(final_points.begin(), final_points.end());
    result.serving = std::move(st.serving);
    return result;
}

}  // namespace samc_detail

SamcResult solve_samc(const Scenario& scenario, const SamcOptions& options) {
    SAG_OBS_SPAN("samc.solve");
    SamcResult result;
    {
        SAG_OBS_SPAN("samc.zone_partition");
        result.zones = zone_partition(scenario);
    }
    SAG_OBS_COUNT_ADD("samc.zones", result.zones.size());
    result.plan.assignment.assign(scenario.subscriber_count(), ids::RsId{0});
    result.plan.feasible = true;

    // Stage 1+2: build every zone's disk family, then solve all hitting
    // sets in one batch — the zone fan-out seam (options.threads). The
    // repair stages below depend on each zone's own points only, but stay
    // serial: their SnrField probes dominate only on pathological zones.
    // The fan-out itself is confined to exec::ThreadPool inside
    // geometric_hitting_sets (zone slots, no shared mutable state), so
    // the thread-safety/TSan gauntlets cover this path transitively.
    std::vector<std::vector<geom::Circle>> zone_disks;
    zone_disks.reserve(result.zones.size());
    for (const auto& zone : result.zones) {
        std::vector<geom::Circle> disks;
        disks.reserve(zone.size());
        for (const ids::SsId j : zone) disks.push_back(scenario.feasible_circle(j));
        zone_disks.push_back(std::move(disks));
    }
    const auto zone_points =
        opt::geometric_hitting_sets(zone_disks, options.hitting_set, options.threads);

    for (const ids::ZoneId z : result.zones.ids()) {
        SAG_OBS_SPAN("samc.zone");
        const auto& zone = result.zones[z];
        const auto& points = zone_points[z.index()];
        const auto assignment =
            samc_detail::coverage_link_escape(scenario, zone, points);
        const auto slide =
            samc_detail::sliding_movement(scenario, zone, assignment, options);
        if (!slide.feasible) {
            result.plan.feasible = false;  // Algorithm 1 Step 5: infeasible zone
        }

        const std::size_t offset = result.plan.rs_positions.size();
        result.plan.rs_positions.insert(result.plan.rs_positions.end(),
                                        slide.points.begin(), slide.points.end());
        // Zone-local serving slots lift into the global plan: the global
        // RsId is the zone's base offset plus the zone-local slot.
        for (std::size_t k = 0; k < zone.size(); ++k) {
            result.plan.assignment[zone[k]] =
                ids::RsId{offset + slide.serving[ids::SsId{k}].index()};
        }
    }
    return result;
}

}  // namespace sag::core
