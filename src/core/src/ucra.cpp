#include "sag/core/ucra.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

#include "sag/graph/mst.h"
#include "sag/graph/steiner.h"
#include "sag/graph/tree.h"
#include "sag/obs/obs.h"
#include "sag/wireless/link.h"

namespace sag::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Shared MBMC/MUST construction over a restricted set of usable BSs.
ConnectivityPlan build_connectivity(const Scenario& scenario,
                                    const CoveragePlan& coverage,
                                    std::span<const ids::BsId> usable_bs) {
    const std::size_t bs_count = scenario.base_stations.size();
    const std::size_t cov_count = coverage.rs_count();
    const double dmin = coverage.rs_count() > 0 && !scenario.subscribers.empty()
                            ? scenario.min_distance_request()
                            : 1.0;

    ConnectivityPlan plan;
    // Node layout: base stations, then coverage RSs, then connectivity RSs.
    for (const BaseStation& b : scenario.base_stations) {
        plan.positions.push_back(b.pos);
        plan.kinds.push_back(NodeKind::BaseStation);
    }
    for (const geom::Vec2& p : coverage.rs_positions) {
        plan.positions.push_back(p);
        plan.kinds.push_back(NodeKind::CoverageRs);
    }
    plan.parent.resize(bs_count + cov_count);
    for (std::size_t b = 0; b < bs_count; ++b) plan.parent[b] = b;
    plan.powers.assign(bs_count + cov_count, 0.0);
    if (cov_count == 0) {
        plan.feasible = true;
        return plan;
    }
    if (usable_bs.empty()) {
        // No usable BS root: nothing can be rooted. Return an explicit
        // infeasible plan (each coverage RS its own parent) instead of
        // letting the MST run rootless — with nb == 0 the nearest-BS edge
        // write below would alias a coverage-RS slot and the Prim pass
        // would end in a logic_error deep inside the solver.
        for (std::size_t i = 0; i < cov_count; ++i) {
            plan.parent[bs_count + i] = bs_count + i;
        }
        plan.feasible = false;
        return plan;
    }

    // MST vertices: 0 = virtual super-root, 1..B' = usable BSs, then the
    // coverage RSs. The super-root ties the BS roots together with
    // zero-weight edges so one Prim run yields the multi-rooted forest.
    const std::size_t nb = usable_bs.size();
    const std::size_t nv = 1 + nb + cov_count;
    std::vector<std::vector<double>> w(nv, std::vector<double>(nv, kInf));
    const auto hop_weight = [&](double dist) {
        // Paper weight w1 = ceil(len/dmin) - 1 (relays needed on the edge);
        // the epsilon*dist term only breaks ties toward shorter edges.
        return std::ceil(dist / dmin - 1e-9) - 1.0 + 1e-6 * dist / dmin;
    };
    for (std::size_t b = 0; b < nb; ++b) w[0][1 + b] = w[1 + b][0] = 0.0;
    for (std::size_t i = 0; i < cov_count; ++i) {
        const geom::Vec2& pi = coverage.rs_positions[i];
        // Complete graph among coverage RSs.
        for (std::size_t j = i + 1; j < cov_count; ++j) {
            const double d = geom::distance(pi, coverage.rs_positions[j]);
            w[1 + nb + i][1 + nb + j] = w[1 + nb + j][1 + nb + i] = hop_weight(d);
        }
        // Algorithm 7 Step 3: each RS links only to its *nearest* usable BS.
        std::size_t best_b = 0;
        double best_d = kInf;
        for (std::size_t b = 0; b < nb; ++b) {
            const double d =
                geom::distance(pi, scenario.base_station(usable_bs[b]).pos);
            if (d < best_d) {
                best_d = d;
                best_b = b;
            }
        }
        w[1 + nb + i][1 + best_b] = w[1 + best_b][1 + nb + i] = hop_weight(best_d);
    }

    const auto mst_parent = graph::prim_mst_dense(w, 0);
    // Translate MST vertices to plan node indices.
    const auto to_plan = [&](std::size_t v) -> std::size_t {
        if (v == 0) throw std::logic_error("super-root has no plan node");
        if (v <= nb) return usable_bs[v - 1].index();
        return bs_count + (v - 1 - nb);
    };
    std::vector<std::size_t> cov_tree_parent(cov_count);  // plan node index
    for (std::size_t i = 0; i < cov_count; ++i) {
        const std::size_t v = 1 + nb + i;
        if (mst_parent[v] == v || mst_parent[v] == 0) {
            // Unreachable should not happen: every RS has a BS edge.
            throw std::logic_error("coverage RS not connected to any base station");
        }
        cov_tree_parent[i] = to_plan(mst_parent[v]);
    }

    // Feasible distance of each coverage RS: min distance request over the
    // subscribers it serves; then the subtree minimum governs each edge
    // (a connectivity RS's feasible distance is the minimum over its
    // children, applied transitively).
    std::vector<double> own_req(cov_count, kInf);
    for (const ids::SsId j : scenario.ss_ids()) {
        const ids::RsId i = coverage.assignment[j];
        own_req[i.index()] =
            std::min(own_req[i.index()], scenario.subscriber(j).distance_request);
    }
    for (double& r : own_req) {
        if (!std::isfinite(r)) r = dmin;  // RS serving nobody: be conservative
    }
    // Subtree mins via the coverage-RS tree (parents may be BSs = roots).
    std::vector<std::size_t> tree_parent_local(cov_count);
    for (std::size_t i = 0; i < cov_count; ++i) {
        const std::size_t p = cov_tree_parent[i];
        tree_parent_local[i] = p >= bs_count ? p - bs_count : i;  // root if BS parent
    }
    graph::RootedTree cov_tree(tree_parent_local);
    std::vector<double> subtree_req = own_req;
    const auto& topo = cov_tree.topological_order();
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const std::size_t v = *it;
        if (!cov_tree.is_root(v)) {
            subtree_req[cov_tree.parent(v)] =
                std::min(subtree_req[cov_tree.parent(v)], subtree_req[v]);
        }
    }

    // Steinerize every edge: chain of connectivity RSs from the coverage
    // RS up toward its tree parent.
    for (std::size_t i = 0; i < cov_count; ++i) {
        const std::size_t child_node = bs_count + i;
        const std::size_t parent_node = cov_tree_parent[i];
        const auto chain =
            graph::steinerize_segment(plan.positions[child_node],
                                      plan.positions[parent_node], subtree_req[i]);
        SAG_OBS_COUNT_ADD("ucra.relays_placed", chain.size());
        std::size_t prev = parent_node;  // build from the parent end down
        for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
            plan.positions.push_back(*it);
            plan.kinds.push_back(NodeKind::ConnectivityRs);
            plan.powers.push_back(0.0);
            plan.parent.push_back(prev);
            prev = plan.positions.size() - 1;
        }
        plan.parent[child_node] = prev;
    }

    plan.feasible = true;
    allocate_power_max(scenario, plan);  // placement-phase assumption
    return plan;
}

}  // namespace

ConnectivityPlan solve_mbmc(const Scenario& scenario, const CoveragePlan& coverage) {
    SAG_OBS_SPAN("ucra.mbmc");
    const auto all_bs = ids::all_ids<ids::BsId>(scenario.base_station_count());
    return build_connectivity(scenario, coverage, all_bs);
}

ConnectivityPlan solve_must(const Scenario& scenario, const CoveragePlan& coverage,
                            ids::BsId bs) {
    SAG_OBS_SPAN("ucra.must");
    if (!bs.valid() || bs.index() >= scenario.base_station_count())
        throw std::out_of_range("bs out of range");
    const ids::BsId one[] = {bs};
    return build_connectivity(scenario, coverage, one);
}

void allocate_power_ucpo(const Scenario& scenario, const CoveragePlan& coverage,
                         ConnectivityPlan& plan) {
    SAG_OBS_SPAN("ucra.ucpo");
    const std::size_t bs_count = scenario.base_stations.size();
    const std::size_t cov_count = coverage.rs_count();
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        if (plan.kinds[v] == NodeKind::ConnectivityRs) plan.powers[v] = 0.0;
    }

    for (std::size_t i = 0; i < cov_count; ++i) {
        // P^i_rs: strictest received-power requirement among i's subscribers.
        units::Watt p_rs{0.0};
        for (const ids::SsId j : scenario.ss_ids()) {
            if (coverage.assignment[j] == ids::RsId{i}) {
                p_rs = std::max(p_rs, scenario.min_rx_power(j));
            }
        }
        // Walk the steinerized chain above coverage RS i up to its tree
        // parent (first non-connectivity node).
        std::vector<std::size_t> chain;
        std::size_t cur = plan.parent[bs_count + i];
        while (plan.kinds[cur] == NodeKind::ConnectivityRs) {
            chain.push_back(cur);
            cur = plan.parent[cur];
        }
        if (chain.empty()) continue;  // single-hop edge: no connectivity RS
        SAG_OBS_COUNT("ucra.ucpo.chains");
        const double edge_len =
            geom::distance(plan.positions[bs_count + i], plan.positions[cur]);
        const std::size_t sections = chain.size() + 1;  // N_i segments
        const units::Meters seg{edge_len / static_cast<double>(sections)};
        const units::Watt p_need = scenario.tx_power_for(p_rs, seg);
        if (p_need > scenario.rs_max_power()) SAG_OBS_COUNT("ucra.ucpo.clamped");
        const units::Watt p = std::min(p_need, scenario.rs_max_power());
        for (const std::size_t v : chain) plan.powers[v] = p.watts();
    }
}

void allocate_power_ucpo_aggregated(const Scenario& scenario,
                                    const CoveragePlan& coverage,
                                    ConnectivityPlan& plan) {
    SAG_OBS_SPAN("ucra.ucpo_aggregated");
    const std::size_t bs_count = scenario.base_stations.size();
    const std::size_t cov_count = coverage.rs_count();
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        if (plan.kinds[v] == NodeKind::ConnectivityRs) plan.powers[v] = 0.0;
    }

    // Each coverage RS's own aggregate data rate: the sum of the Shannon
    // rates its subscribers' required received powers correspond to.
    std::vector<double> own_rate(cov_count, 0.0);
    for (const ids::SsId j : scenario.ss_ids()) {
        own_rate[coverage.assignment[j].index()] +=
            wireless::shannon_capacity(scenario.radio, scenario.min_rx_power(j));
    }

    // Recover the coverage-RS tree from the plan: the parent of coverage
    // RS i is the first non-connectivity ancestor above its chain.
    std::vector<std::size_t> cov_parent(cov_count, cov_count);  // local index
    for (std::size_t i = 0; i < cov_count; ++i) {
        std::size_t cur = plan.parent[bs_count + i];
        while (cur < plan.node_count() && plan.kinds[cur] == NodeKind::ConnectivityRs) {
            cur = plan.parent[cur];
        }
        if (cur >= bs_count && cur < bs_count + cov_count) {
            cov_parent[i] = cur - bs_count;
        }
    }
    // Subtree rates, accumulated leaf-to-root. Iterate until stable (the
    // tree depth bounds the passes; cov_count passes is a safe cap).
    std::vector<double> subtree_rate = own_rate;
    std::vector<std::size_t> order(cov_count);
    for (std::size_t i = 0; i < cov_count; ++i) order[i] = i;
    // Depth-sort so children accumulate before parents.
    const auto depth_of = [&](std::size_t i) {
        std::size_t d = 0, cur = i;
        while (cov_parent[cur] != cov_count && d <= cov_count) {
            cur = cov_parent[cur];
            ++d;
        }
        return d;
    };
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return depth_of(a) > depth_of(b); });
    for (const std::size_t i : order) {
        if (cov_parent[i] != cov_count) subtree_rate[cov_parent[i]] += subtree_rate[i];
    }

    for (std::size_t i = 0; i < cov_count; ++i) {
        std::vector<std::size_t> chain;
        std::size_t cur = plan.parent[bs_count + i];
        while (plan.kinds[cur] == NodeKind::ConnectivityRs) {
            chain.push_back(cur);
            cur = plan.parent[cur];
        }
        if (chain.empty()) continue;
        const double edge_len =
            geom::distance(plan.positions[bs_count + i], plan.positions[cur]);
        const units::Meters seg{edge_len / static_cast<double>(chain.size() + 1)};
        const units::Watt p_req =
            wireless::min_rx_power_for_rate(scenario.radio, subtree_rate[i]);
        const units::Watt p =
            std::min(scenario.tx_power_for(p_req, seg), scenario.rs_max_power());
        for (const std::size_t v : chain) plan.powers[v] = p.watts();
    }
}

void allocate_power_max(const Scenario& scenario, ConnectivityPlan& plan) {
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        if (plan.kinds[v] == NodeKind::ConnectivityRs) {
            plan.powers[v] = scenario.rs_max_power().watts();
        }
    }
}

}  // namespace sag::core
