#pragma once

#include <span>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"

namespace sag::core {

/// Controls for the ILPQC branch-and-bound (the Gurobi stand-in).
struct IlpqcOptions {
    /// Search-node budget; exceeded -> best anytime solution, not proven
    /// optimal (mirrors the paper's Gurobi time/memory ceiling).
    std::size_t node_budget = 2'000'000;
    /// Wall-clock limit in seconds (0 disables). Mainly caps the cost of
    /// infeasibility proofs on SNR-tight instances.
    double time_budget_seconds = 0.0;
    /// Allow solutions that place more RSs than a minimal cover when the
    /// extra RS is what makes the SNR constraint satisfiable.
    bool allow_padding = true;
    /// Worker threads for the branch-and-bound: 1 = the serial solver,
    /// 0 = exec default (SAG_THREADS env / hardware concurrency), else
    /// that many. Any value != 1 routes through the deterministic
    /// parallel solver (opt::solve_set_cover_bnb_parallel) with one
    /// incremental SNR oracle per root branch; with an ample node budget
    /// the chosen cover matches the serial solver's exactly. Note the
    /// node budget then applies per root branch, not globally.
    std::size_t threads = 1;
};

/// Solves the paper's ILPQC (3.1)-(3.5): minimum number of candidate
/// positions such that every subscriber has an in-range access link and
/// clears the SNR threshold with all chosen RSs at max power. `candidates`
/// come from iac_candidates() or gac_candidates(). Returns an infeasible
/// plan (feasible == false) when no choice of candidates works — the
/// paper's "IAC/GAC returns infeasible model" outcome in Fig. 3d.
CoveragePlan solve_ilpqc_coverage(const Scenario& scenario,
                                  std::span<const geom::Vec2> candidates,
                                  const IlpqcOptions& options = {});

}  // namespace sag::core
