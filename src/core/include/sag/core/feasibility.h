#pragma once

#include <span>
#include <string>
#include <vector>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"
#include "sag/ids/ids.h"

namespace sag::core {

/// Per-subscriber verdicts from the coverage verifier.
struct SubscriberCheck {
    ids::RsId serving_rs = ids::RsId::invalid();
    double access_distance = 0.0;
    bool distance_ok = false;   ///< d(s_j, rs) <= d_j
    bool rate_ok = false;       ///< received power >= P^j_ss
    bool snr_ok = false;        ///< SNR >= beta
    double snr_db = 0.0;
};

struct CoverageReport {
    bool feasible = false;
    ids::IdVec<ids::SsId, SubscriberCheck> subscribers;
    std::size_t violations = 0;
};

/// Independent end-to-end check of a lower-tier solution: distance, data
/// rate and SNR for every subscriber, given explicit RS powers. Used by
/// tests and by the benchmark harness to reject silently-broken plans.
CoverageReport verify_coverage(const Scenario& scenario, const CoveragePlan& plan,
                               std::span<const double> powers);

/// Same, with every RS at max power (the LCRA placement assumption).
CoverageReport verify_coverage_max_power(const Scenario& scenario,
                                         const CoveragePlan& plan);

struct ConnectivityReport {
    bool feasible = false;
    /// Every non-root reaches a BaseStation root.
    bool all_rooted = false;
    /// Each hop (node -> parent) is no longer than the node's allowed hop
    /// length (min distance request over the coverage RSs beneath it).
    bool hops_ok = false;
    std::size_t violations = 0;
    std::string detail;
};

/// Structural check of an upper-tier solution against its coverage plan.
ConnectivityReport verify_connectivity(const Scenario& scenario,
                                       const CoveragePlan& coverage,
                                       const ConnectivityPlan& plan);

/// Alias of verify_connectivity under the paper-facing "topology" name —
/// the resilience layer's repair invariant is stated as "verify_coverage +
/// verify_topology pass on the surviving network".
inline ConnectivityReport verify_topology(const Scenario& scenario,
                                          const CoveragePlan& coverage,
                                          const ConnectivityPlan& plan) {
    return verify_connectivity(scenario, coverage, plan);
}

}  // namespace sag::core
