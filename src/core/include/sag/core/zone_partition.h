#pragma once

#include <vector>

#include "sag/core/scenario.h"
#include "sag/ids/ids.h"

namespace sag::core {

/// d_max of Algorithm 2: distance beyond which a max-power RS's signal
/// drops under the ignorable-noise level N_max, i.e. the solution of
/// P_max * G * d^-alpha = N_max.
double zone_partition_dmax(const Scenario& scenario);

/// Zone Partition (paper Algorithm 2): groups subscribers into zones such
/// that stations in different zones cannot meaningfully interfere. Two
/// subscribers join the same zone when
///   d_eff = min(dist(s_i, s_j) - d_i, dist(s_i, s_j) - d_j) <= d_max,
/// and zones are the connected components of that graph. Returns the
/// ZoneId-indexed subscriber groups (each non-empty; singletons allowed).
ids::IdVec<ids::ZoneId, std::vector<ids::SsId>> zone_partition(
    const Scenario& scenario);

}  // namespace sag::core
