#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sag/core/scenario.h"
#include "sag/ids/ids.h"

namespace sag::core {

/// Interference-limited SNR (linear) seen by each subscriber in `subs`
/// (scenario-global SsIds) when served per `assignment` (per tracked
/// subscriber: the serving RsId into rs_positions) and every RS transmits
/// its entry of `powers`. Interference is the total received power from
/// all *other* RSs in rs_positions (paper Definition 2); base stations do
/// not radiate on the access band in this model. A zero serving signal
/// (e.g. the serving RS powered down) reports SNR 0, never infinity, even
/// when the interference is also zero. Implemented as a one-shot
/// core::SnrField (snr_field.h); solvers that probe many nearby
/// configurations should hold a field and apply deltas instead of calling
/// this per candidate.
std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  std::span<const ids::SsId> subs,
                                  ids::IdSpan<ids::SsId, const ids::RsId> assignment);

/// SNR-optimal feasible assignment: each subscriber in `subs` picks the
/// nearest RS within its distance request (nearest maximizes the received
/// signal and hence, with the interference fixed by the RS set, the SNR).
/// The result is indexed tracked-locally (slot k serves subs[k]). Returns
/// nullopt when some subscriber has no RS in range.
std::optional<ids::IdVec<ids::SsId, ids::RsId>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
    std::span<const ids::SsId> subs);

/// All-subscriber overloads (subs = 0..n-1).
std::vector<double> coverage_snrs(const Scenario& scenario,
                                  std::span<const geom::Vec2> rs_positions,
                                  std::span<const double> powers,
                                  ids::IdSpan<ids::SsId, const ids::RsId> assignment);
std::optional<ids::IdVec<ids::SsId, ids::RsId>> nearest_assignment(
    const Scenario& scenario, std::span<const geom::Vec2> rs_positions);

/// True when every subscriber in `subs` clears the scenario's SNR
/// threshold with all RSs at max power under the nearest assignment.
/// This is the ILPQC oracle and SAMC's recheck primitive.
bool snr_feasible_at_max_power(const Scenario& scenario,
                               std::span<const geom::Vec2> rs_positions,
                               std::span<const ids::SsId> subs);

}  // namespace sag::core
