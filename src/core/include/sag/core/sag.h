#pragma once

#include <vector>

#include "sag/core/deployment.h"
#include "sag/core/power.h"
#include "sag/core/samc.h"
#include "sag/core/scenario.h"
#include "sag/ids/ids.h"

namespace sag::core {

/// Output of the end-to-end pipelines (SAG and the DARP baseline):
/// both tiers plus the power split the paper reports.
struct SagResult {
    CoveragePlan coverage;
    PowerAllocation lower_power;     ///< P_L over coverage RSs
    ConnectivityPlan connectivity;   ///< includes P_H in its powers
    bool feasible = false;

    double lower_tier_power() const { return lower_power.total; }
    double upper_tier_power() const { return connectivity.upper_tier_power(); }
    /// P_total = P_L + P_H (paper Algorithm 9 Step 6).
    double total_power() const { return lower_tier_power() + upper_tier_power(); }
    std::size_t coverage_rs_count() const { return coverage.rs_count(); }
    std::size_t connectivity_rs_count() const {
        return connectivity.connectivity_rs_count();
    }
};

/// SNR-aware Green relay design (paper Algorithm 9): SAMC coverage ->
/// PRO lower-tier power -> MBMC connectivity -> UCPO upper-tier power.
SagResult solve_sag(const Scenario& scenario, const SamcOptions& options = {});

/// Runs the green pipeline on an externally produced coverage plan (e.g.
/// the ILPQC/IAC/GAC optimum) instead of SAMC.
SagResult green_pipeline(const Scenario& scenario, CoveragePlan coverage);

/// The DARP deployment of [1] used as the paper's comparator (§IV-D):
/// same coverage plan, but every RS transmits at P_max and the upper tier
/// is MUST to the single base station `bs`.
SagResult solve_darp_baseline(const Scenario& scenario, CoveragePlan coverage,
                              ids::BsId bs = ids::BsId{0});

}  // namespace sag::core
