#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"

namespace sag::core {

/// Per-link load/capacity record of the relay-tree flow analysis.
struct LinkLoad {
    std::size_t child = 0;        ///< node transmitting upward
    std::size_t parent = 0;       ///< its parent in the relay tree
    double length = 0.0;          ///< hop length
    double offered_bps = 0.0;     ///< aggregate subscriber rate crossing the hop
    double capacity_bps = 0.0;    ///< Shannon capacity at the transmit power
    double utilization = 0.0;     ///< offered / capacity (inf when capacity 0)
};

/// Result of routing every subscriber's data rate up the relay tree and
/// comparing each hop's offered load against the Shannon capacity that
/// the hop's transmit power sustains over its length.
struct ThroughputReport {
    std::vector<LinkLoad> links;       ///< one per non-root tree node
    double max_utilization = 0.0;      ///< bottleneck utilization
    std::size_t bottleneck_link = 0;   ///< index into links of the bottleneck
    std::size_t overloaded_links = 0;  ///< links with utilization > 1
    double total_offered_bps = 0.0;    ///< sum of subscriber rates
    bool sustainable = false;          ///< every hop has capacity >= load

    /// Largest uniform scale factor on all subscriber rates that the tree
    /// still sustains (1 / max_utilization; infinity when idle).
    double rate_headroom() const;
};

/// Flow analysis of an upper-tier deployment. Each subscriber offers the
/// Shannon rate corresponding to its required received power P^j_ss
/// (paper §II's rate/distance equivalence); loads aggregate bottom-up
/// through coverage RSs and steinerized chains. Hop capacities use the
/// transmitting node's power from `plan.powers`; coverage-RS uplink hops
/// assume the transmit power in `coverage_powers` when non-empty, else
/// P_max.
///
/// Model finding this analysis surfaces: the rate/distance equivalence
/// means one subscriber's rate exactly saturates a hop of its feasible
/// distance at P_max, so trunks that aggregate several flows are over
/// capacity under *any* power allocation (Shannon is logarithmic in
/// power) — they need shorter hops. The paper's UCPO (Algorithm 8)
/// under-powers such trunks; allocate_power_ucpo_aggregated shrinks the
/// overload as far as the P_max ceiling allows.
ThroughputReport analyze_throughput(const Scenario& scenario,
                                    const CoveragePlan& coverage,
                                    const ConnectivityPlan& plan,
                                    std::span<const double> coverage_powers = {});

}  // namespace sag::core
