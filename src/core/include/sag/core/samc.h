#pragma once

#include <span>
#include <vector>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"
#include "sag/ids/ids.h"
#include "sag/opt/hitting_set.h"

namespace sag::core {

/// Tuning knobs for SAMC (paper Algorithm 1 and subroutines 2-5).
struct SamcOptions {
    /// Hitting-set quality (local-search swap size etc.).
    opt::HittingSetOptions hitting_set{};
    /// Cap on relocation combinations tried per Update-RS-Topology round
    /// (Algorithm 5 Step 3 enumerates subsets of updatable RSs).
    std::size_t max_update_combinations = 4096;
    /// Cap on improvement rounds; each committed round strictly shrinks
    /// the violated-subscriber set, so rounds <= |subscribers| anyway.
    int max_improvement_rounds = 64;
    /// Extra repair move beyond the paper's Algorithms 4-5: re-serve a
    /// violated subscriber from its nearest in-range RS. Switching the
    /// serving RS changes only that subscriber's SNR (interference is the
    /// total received power minus the serving signal), so the move is
    /// always safe and measurably extends SAMC's feasibility range at
    /// tight thresholds. Off reproduces the paper's algorithm verbatim.
    bool allow_reassignment = true;
    /// Worker threads for the per-zone hitting-set batch (zones are
    /// independent, so the fan-out is deterministic): 1 = serial on the
    /// calling thread, 0 = exec default (SAG_THREADS env / hardware
    /// concurrency). The per-zone repair loop stays serial either way.
    std::size_t threads = 1;
};

/// SAMC output: the coverage plan plus the zones it was solved over
/// (ZoneId-indexed groups of scenario-global SsIds).
struct SamcResult {
    CoveragePlan plan;
    ids::IdVec<ids::ZoneId, std::vector<ids::SsId>> zones;
};

/// SNR-Aware Minimum Coverage (paper Algorithm 1): Zone Partition ->
/// per-zone geometric minimum hitting set -> Coverage Link Escape ->
/// RS Sliding Movement / Update RS Topology. Never adds or removes RSs
/// while repairing SNR, so the RS count equals the hitting set's; if any
/// zone cannot be repaired the plan comes back infeasible (empty zone
/// result, paper Algorithm 1 Step 5).
SamcResult solve_samc(const Scenario& scenario, const SamcOptions& options = {});

/// Internals exposed for unit testing and for the ablation benches.
/// ID spaces here are zone-local: SsId is a slot into `subs`, RsId a slot
/// into the zone's point set — the types guard the entity kind across the
/// SS<->RS pairing, which is exactly where the old size_t code could swap
/// the two without a diagnostic.
namespace samc_detail {

/// The bipartite SS<->RS-point pairing produced by Coverage Link Escape.
struct ZoneAssignment {
    std::vector<geom::Vec2> points;  ///< RS positions for this zone
    /// Per zone-subscriber: the serving point, RsId::invalid() while
    /// unclaimed (never in a returned assignment — the hitting set covers
    /// every subscriber).
    ids::IdVec<ids::SsId, ids::RsId> serving;
};

/// Coverage Link Escape (Algorithm 3): pair every subscriber with exactly
/// one hitting-set point, greedily letting the highest-degree point claim
/// its subscribers first; this maximizes later one-on-one coverage.
/// `subs` are scenario-global SsIds, `points` the hitting set.
ZoneAssignment coverage_link_escape(const Scenario& scenario,
                                    std::span<const ids::SsId> subs,
                                    std::span<const geom::Vec2> points);

struct SlideResult {
    std::vector<geom::Vec2> points;
    ids::IdVec<ids::SsId, ids::RsId> serving;
    bool feasible = false;
    int rounds = 0;  ///< committed Update-RS-Topology rounds
};

/// RS Sliding Movement + Update RS Topology (Algorithms 4 & 5): moves
/// one-on-one RSs onto their subscriber, then relocates multi-cover RSs
/// within the common region of their subscribers' feasible/virtual circles
/// until every zone subscriber clears the SNR threshold, or reports
/// infeasible when no relocation combination keeps shrinking the violated
/// set.
SlideResult sliding_movement(const Scenario& scenario,
                             std::span<const ids::SsId> subs,
                             const ZoneAssignment& assignment,
                             const SamcOptions& options);

}  // namespace samc_detail

}  // namespace sag::core
