#pragma once

#include <cstddef>
#include <vector>

#include "sag/geometry/circle.h"
#include "sag/geometry/vec2.h"
#include "sag/ids/ids.h"
#include "sag/units/units.h"
#include "sag/wireless/radio_params.h"

namespace sag::core {

/// A subscriber station (paper symbol s_i): a fixed, high-demand user such
/// as a store or gas station. Its data-rate request b_i has already been
/// converted into the equivalent distance request d_i (paper §II-A): an RS
/// transmitting at P_max covers it iff the access link is at most d_i long.
struct Subscriber {
    geom::Vec2 pos;
    double distance_request = 0.0;  ///< d_i, the feasible coverage distance
};

/// A macro base station (paper symbol bs_i). BSs sink all relayed traffic.
struct BaseStation {
    geom::Vec2 pos;
};

/// A full SAG problem instance: the field, the stations, the radio
/// constants, and the common SNR threshold β (the paper assumes all SSs
/// share one threshold, §II-A).
struct Scenario {
    geom::Rect field;
    std::vector<Subscriber> subscribers;
    std::vector<BaseStation> base_stations;
    wireless::RadioParams radio;
    units::Decibel snr_threshold_db{-15.0};

    std::size_t subscriber_count() const { return subscribers.size(); }
    std::size_t base_station_count() const { return base_stations.size(); }

    /// Typed accessors: entity identities cross API boundaries as strong
    /// IDs (sag::ids); the raw vectors above stay public as the bulk
    /// storage they index.
    const Subscriber& subscriber(ids::SsId j) const { return subscribers[j.index()]; }
    const BaseStation& base_station(ids::BsId b) const {
        return base_stations[b.index()];
    }
    ids::IdRange<ids::SsId> ss_ids() const {
        return ids::first_ids<ids::SsId>(subscribers.size());
    }
    ids::IdRange<ids::BsId> bs_ids() const {
        return ids::first_ids<ids::BsId>(base_stations.size());
    }

    /// β as a typed linear power ratio.
    units::SnrRatio snr_threshold() const;

    /// β as a bare linear ratio — convenience for the solvers' dense
    /// inner-loop arithmetic over double buffers.
    double snr_threshold_linear() const { return snr_threshold().ratio(); }

    /// Feasible coverage circle c_j of subscriber j: center s_j, radius d_j.
    geom::Circle feasible_circle(ids::SsId j) const;
    std::vector<geom::Circle> feasible_circles() const;

    /// Minimum received power P^j_ss that satisfies subscriber j's data
    /// rate: the power received at exactly distance d_j from a max-power
    /// transmitter (this is what makes distance & rate requests equivalent).
    units::Watt min_rx_power(ids::SsId j) const;

    /// Smallest distance request over all subscribers (d_min of MBMC).
    double min_distance_request() const;

    /// Throws std::invalid_argument on non-physical instances (no
    /// subscribers is allowed; no base stations is not).
    void validate() const;
};

}  // namespace sag::core
