#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "sag/geometry/circle.h"
#include "sag/geometry/vec2.h"
#include "sag/ids/ids.h"
#include "sag/units/units.h"
#include "sag/wireless/propagation.h"
#include "sag/wireless/radio_params.h"
#include "sag/wireless/radio_profile.h"

namespace sag::core {

/// A subscriber station (paper symbol s_i): a fixed, high-demand user such
/// as a store or gas station. Its data-rate request b_i has already been
/// converted into the equivalent distance request d_i (paper §II-A): an RS
/// transmitting at P_max covers it iff the access link is at most d_i long.
struct Subscriber {
    geom::Vec2 pos;
    double distance_request = 0.0;  ///< d_i, the feasible coverage distance
    /// Radio class of this station's receiver, indexing
    /// Scenario::profiles. Invalid (the default) means the default
    /// profile: the paper's homogeneous hardware.
    ids::ProfileId profile;

    Subscriber() = default;
    Subscriber(geom::Vec2 pos_, double distance_request_,
               ids::ProfileId profile_ = ids::ProfileId::invalid())
        : pos(pos_), distance_request(distance_request_), profile(profile_) {}
};

/// A macro base station (paper symbol bs_i). BSs sink all relayed traffic.
struct BaseStation {
    geom::Vec2 pos;
};

/// A full SAG problem instance: the field, the stations, the radio
/// constants, and the common SNR threshold β (the paper assumes all SSs
/// share one threshold, §II-A).
struct Scenario {
    geom::Rect field;
    std::vector<Subscriber> subscribers;
    std::vector<BaseStation> base_stations;
    wireless::RadioParams radio;
    units::Decibel snr_threshold_db{-15.0};

    /// Large-scale propagation model of the scenario. Null (the default)
    /// means the paper's two-ray model; every physics query below routes
    /// through model(), so solvers, verifiers, and the SnrField always
    /// agree on the channel.
    std::shared_ptr<const wireless::PropagationModel> propagation;

    /// Radio classes deployed in this scenario (router/client/...).
    /// Indexed by ids::ProfileId; stations referencing no profile (invalid
    /// id) resolve to the all-inherit default profile.
    std::vector<wireless::RadioProfile> profiles;

    /// Radio class of every relay station placed by the solvers. Invalid
    /// (the default) means the default profile, i.e. RS transmit caps come
    /// straight from RadioParams::max_power as in the paper.
    ids::ProfileId relay_profile;

    std::size_t subscriber_count() const { return subscribers.size(); }
    std::size_t base_station_count() const { return base_stations.size(); }

    /// Typed accessors: entity identities cross API boundaries as strong
    /// IDs (sag::ids); the raw vectors above stay public as the bulk
    /// storage they index.
    const Subscriber& subscriber(ids::SsId j) const { return subscribers[j.index()]; }
    const BaseStation& base_station(ids::BsId b) const {
        return base_stations[b.index()];
    }
    ids::IdRange<ids::SsId> ss_ids() const {
        return ids::first_ids<ids::SsId>(subscribers.size());
    }
    ids::IdRange<ids::BsId> bs_ids() const {
        return ids::first_ids<ids::BsId>(base_stations.size());
    }

    /// β as a typed linear power ratio.
    units::SnrRatio snr_threshold() const;

    /// β as a bare linear ratio — convenience for the solvers' dense
    /// inner-loop arithmetic over double buffers.
    double snr_threshold_linear() const { return snr_threshold().ratio(); }

    /// Feasible coverage circle c_j of subscriber j: center s_j, radius d_j.
    geom::Circle feasible_circle(ids::SsId j) const;
    std::vector<geom::Circle> feasible_circles() const;

    /// Minimum received power P^j_ss that satisfies subscriber j's data
    /// rate: the power received at exactly distance d_j from a max-power
    /// transmitter (this is what makes distance & rate requests
    /// equivalent), raised by the subscriber's receiver noise figure and
    /// floored at the model's receive sensitivity when it defines one
    /// (the LoRa link budget).
    units::Watt min_rx_power(ids::SsId j) const;

    // --- Model-parametric physics (the single channel authority) ---

    /// The scenario's propagation model; two-ray when none was set.
    const wireless::PropagationModel& model() const {
        return propagation ? *propagation : wireless::two_ray_model();
    }

    /// The hot-loop gain kernel for this scenario's radio constants.
    /// Resolve once per loop nest; never re-derive the channel by hand.
    wireless::GainKernel gain_kernel() const { return model().kernel(radio); }

    /// Profile lookup with the invalid-id -> default-profile convention.
    const wireless::RadioProfile& profile(ids::ProfileId id) const;
    const wireless::RadioProfile& subscriber_profile(ids::SsId j) const {
        return profile(subscribers[j.index()].profile);
    }

    /// P_max of a relay station (relay_profile may cap it below
    /// RadioParams::max_power).
    units::Watt rs_max_power() const {
        return profile(relay_profile).resolve_max_power(radio);
    }

    /// Median received power at a bare distance (no link endpoints).
    units::Watt received_power(units::Watt tx_power, units::Meters dist) const {
        return wireless::received_power(model(), radio, tx_power, dist);
    }

    /// Received power over a concrete link (includes the link's
    /// deterministic shadowing fade, when the model has one).
    units::Watt received_power(units::Watt tx_power, const geom::Vec2& from,
                               const geom::Vec2& to) const {
        return wireless::received_power(model(), radio, tx_power, from, to);
    }

    /// Median minimum transmit power for a target rx power at a distance.
    units::Watt tx_power_for(units::Watt target_rx_power, units::Meters dist) const {
        return wireless::tx_power_for(model(), radio, target_rx_power, dist);
    }

    /// Per-link minimum transmit power (exact inverse of the link
    /// received_power above).
    units::Watt tx_power_for(units::Watt target_rx_power, const geom::Vec2& from,
                             const geom::Vec2& to) const {
        return wireless::tx_power_for(model(), radio, target_rx_power, from, to);
    }

    /// Largest distance at which tx_power still delivers target_rx_power.
    units::Meters range_for(units::Watt tx_power, units::Watt target_rx_power) const {
        return wireless::range_for(model(), radio, tx_power, target_rx_power);
    }

    /// Smallest distance request over all subscribers (d_min of MBMC).
    double min_distance_request() const;

    /// Throws std::invalid_argument on non-physical instances (no
    /// subscribers is allowed; no base stations is not).
    void validate() const;
};

}  // namespace sag::core
