#pragma once

#include <span>
#include <vector>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"
#include "sag/ids/ids.h"
#include "sag/units/units.h"

namespace sag::core {

/// A lower-tier transmit-power assignment for the coverage RSs of a plan.
struct PowerAllocation {
    std::vector<double> powers;  ///< one per coverage RS, linear watts
    bool feasible = false;
    double total = 0.0;          ///< P_L, sum of the powers (watts)
    int iterations = 0;          ///< solver-specific effort counter
};

/// Coverage power P_c for RS `rs` (paper §III-A2): the minimum transmit
/// power delivering every served subscriber's required received power
/// P^j_ss over its access link — interference-free data-rate floor.
units::Watt coverage_power_floor(const Scenario& scenario, const CoveragePlan& plan,
                                 ids::RsId rs);

/// SNR power P_snr for RS `rs` given everyone else's current powers (in
/// watts, one per RS): the minimum transmit power that lifts each served
/// subscriber's SNR to beta.
units::Watt snr_power_floor(const Scenario& scenario, const CoveragePlan& plan,
                            ids::RsId rs, std::span<const double> powers);

/// Tuning for PRO; the paper's Algorithm 6 Step 11 picks the stuck RS
/// with the smallest P_snr - P_c premium. FirstIndex replaces that rule
/// with "lowest index first" — the ablation bench quantifies how much the
/// min-premium rule actually buys.
struct ProOptions {
    enum class Selection { MinDelta, FirstIndex };
    Selection selection = Selection::MinDelta;
};

/// PRO — Power Reduction Optimization (paper Algorithm 6, a (1+phi)-
/// approximation): iteratively drop RSs to their coverage power when their
/// subscribers' SNR survives; when stuck, pay the smallest P_snr - P_c gap.
PowerAllocation allocate_power_pro(const Scenario& scenario, const CoveragePlan& plan,
                                   const ProOptions& options = {});

/// Optimal LPQC power allocation (paper (3.6)-(3.9)): with the topology
/// fixed the SNR constraints are linear in the powers, and iterating the
/// standard interference function from the coverage floors converges to
/// the minimal feasible vector (Yates' framework). Exact optimum — the
/// "optimal" curve of Figs. 4a/5a.
PowerAllocation allocate_power_optimal(const Scenario& scenario,
                                       const CoveragePlan& plan);

/// Same optimum computed by the dense-simplex LP solver instead of the
/// fixed point — used to cross-check allocate_power_optimal in tests.
PowerAllocation allocate_power_optimal_lp(const Scenario& scenario,
                                          const CoveragePlan& plan);

/// Baseline: every coverage RS at P_max (the paper's "baseline" curve).
PowerAllocation allocate_power_baseline(const Scenario& scenario,
                                        const CoveragePlan& plan);

}  // namespace sag::core
