#pragma once

#include <cstddef>
#include <vector>

#include "sag/geometry/vec2.h"
#include "sag/ids/ids.h"

namespace sag::core {

/// Lower-tier (LCRA) output: where the coverage RSs stand and which RS
/// serves each subscriber. Produced by the ILPQC solvers (IAC/GAC) and by
/// SAMC; consumed by PRO/LPQC power allocation and by the upper tier.
struct CoveragePlan {
    std::vector<geom::Vec2> rs_positions;
    /// Per subscriber (SsId-indexed): the serving RS (constraint (3.3):
    /// exactly one access link per SS). The typed container makes
    /// `assignment[rs_id]` — the classic swapped-index corruption — a
    /// compile error.
    ids::IdVec<ids::SsId, ids::RsId> assignment;
    bool feasible = false;
    /// True when the producing solver proved minimality (ILPQC within its
    /// node budget); heuristics leave it false.
    bool proven_optimal = false;
    /// Search effort (ILPQC nodes, or 0 for heuristics).
    std::size_t search_nodes = 0;

    std::size_t rs_count() const { return rs_positions.size(); }
    const geom::Vec2& rs_position(ids::RsId i) const {
        return rs_positions[i.index()];
    }
    ids::IdRange<ids::RsId> rs_ids() const {
        return ids::first_ids<ids::RsId>(rs_positions.size());
    }
    /// Subscribers served by RS `rs` (inverse of `assignment`).
    std::vector<ids::SsId> served_by(ids::RsId rs) const;
};

/// Node classes of the upper-tier relay tree.
enum class NodeKind { BaseStation, CoverageRs, ConnectivityRs };

/// Upper-tier (UCRA) output: a forest over base stations (roots), coverage
/// RSs, and steinerized connectivity RSs, plus per-node transmit powers for
/// the connectivity RSs. Index layout: 0..B-1 base stations, B..B+C-1
/// coverage RSs (same order as CoveragePlan::rs_positions), then
/// connectivity RSs.
struct ConnectivityPlan {
    std::vector<geom::Vec2> positions;
    std::vector<NodeKind> kinds;
    /// parent[i] == i marks a root (every base station is a root).
    std::vector<std::size_t> parent;
    /// Transmit power per node; meaningful for ConnectivityRs nodes (the
    /// paper's P_H sums only those), zero elsewhere.
    std::vector<double> powers;
    bool feasible = false;

    std::size_t node_count() const { return positions.size(); }
    std::size_t count(NodeKind kind) const;
    std::size_t connectivity_rs_count() const { return count(NodeKind::ConnectivityRs); }
    /// P_H: total transmit power of the placed connectivity RSs.
    double upper_tier_power() const;
};

}  // namespace sag::core
