#pragma once

#include <cstddef>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"
#include "sag/ids/ids.h"

namespace sag::core {

/// MBMC — Multiple Base station Minimum Connectivity (paper Algorithm 7):
/// builds the weighted graph over coverage RSs plus each RS's nearest BS
/// (edge weight ceil(len/d_min) - 1), extracts an MST rooted at the base
/// stations, and steinerizes every tree edge so each hop respects the
/// subtree's minimum feasible distance. Inherits MUST's 8*d_max/d_min
/// approximation ratio. Connectivity RS powers are initialized to P_max
/// (the placement assumption); call allocate_power_ucpo to optimize them.
ConnectivityPlan solve_mbmc(const Scenario& scenario, const CoveragePlan& coverage);

/// MUST baseline (DARP [1]): identical construction restricted to the
/// single base station `bs` — every coverage RS must reach that BS.
ConnectivityPlan solve_must(const Scenario& scenario, const CoveragePlan& coverage,
                            ids::BsId bs);

/// UCPO — Upper-tier Connectivity Power Optimization (paper Algorithm 8):
/// gives every connectivity RS on the edge below coverage RS r_i the power
/// that delivers r_i's strictest subscriber-received-power requirement
/// over that edge's (equal) section length. Overwrites plan.powers.
void allocate_power_ucpo(const Scenario& scenario, const CoveragePlan& coverage,
                         ConnectivityPlan& plan);

/// Baseline power: every connectivity RS at P_max.
void allocate_power_max(const Scenario& scenario, ConnectivityPlan& plan);

/// Extension: traffic-aggregation-aware UCPO. Algorithm 8 powers each
/// relay chain for its own coverage RS's strictest subscriber only; on a
/// real relay tree an edge carries the *aggregate* data rate of the whole
/// subtree beneath it. This variant converts each subtree's summed rate
/// back into a required received power (Shannon inverse) and powers the
/// chain for that, clamped at P_max. Always >= the paper's UCPO power;
/// the ablation bench quantifies the undercount.
void allocate_power_ucpo_aggregated(const Scenario& scenario,
                                    const CoveragePlan& coverage,
                                    ConnectivityPlan& plan);

}  // namespace sag::core
