#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "sag/core/scenario.h"
#include "sag/ids/ids.h"
#include "sag/units/units.h"

namespace sag::core {

/// Stateful, delta-updatable interference field: the incremental SNR
/// evaluation engine behind every SNR-constrained step of the pipeline.
///
/// The field caches, per tracked subscriber, the *total* received power
/// from the current RS set. Definition 2's interference for a subscriber
/// served by RS i is then `total - signal_i + N_amb`, so one cached sum
/// answers SNR queries for any serving choice in O(1). Mutations
/// (`move_rs`, `set_power`, `add_rs`, `remove_rs`) update the cache in
/// O(tracked subscribers) — one path-loss evaluation per subscriber —
/// instead of the O(subscribers x RSs) full rebuild of `coverage_snrs`.
///
/// Exactness: each per-subscriber total is kept as a Neumaier-compensated
/// (sum, comp) pair. Every delta adds/subtracts the *same doubles* a
/// from-scratch evaluation would sum, and the compensation captures each
/// addition's rounding residual exactly, so an incrementally maintained
/// field and a freshly built one agree to the last few ulps no matter how
/// many deltas were applied. A debug-only full-recompute assert
/// (`set_check_interval`) makes that equivalence checkable on every path.
///
/// Layout and speed: subscriber and RS state live in structure-of-arrays
/// double columns (x, y, reach, power), and every O(tracked) loop runs
/// through the wireless::kernel_eval batch evaluators — 4-lane AVX2 when
/// the runtime `SAG_SIMD` dispatch and the kernel's shape allow it,
/// otherwise a scalar path byte-identical to the historical per-link
/// loop. A given buffer index always takes the same instructions, so the
/// add/subtract-the-same-double invariant holds in every mode; vector
/// and scalar totals agree to the docs/PERFORMANCE.md contract (1e-12
/// per term). The active vector width is exported once per field as the
/// `snr_field.simd_lanes` gauge.
///
/// ID spaces: RSs are addressed by RsId (position within this field's RS
/// array — `remove_rs` shifts later IDs down by one, exactly like the
/// vector it wraps). Zone-local solvers construct the field over a
/// subscriber subset; SsId values passed to/returned from per-subscriber
/// queries are then *tracked-local* (slot within that subset), and
/// `tracked_subscriber` maps a local SsId to the scenario-global one. The
/// strong types guard the entity kind — handing an RsId to a subscriber
/// query is a compile error; local-vs-global SsId remains a documented
/// contract per method.
class SnrField {
public:
    /// Field over a subset of subscribers (`subs` holds scenario-global
    /// subscriber IDs; kept by copy). `rs_positions` and `powers` must be
    /// the same length; `powers` entries are linear watts (the
    /// bulk-buffer boundary of the sag::units conventions).
    SnrField(const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
             std::span<const double> powers, std::span<const ids::SsId> subs);

    /// Field over every subscriber of the scenario.
    SnrField(const Scenario& scenario, std::span<const geom::Vec2> rs_positions,
             std::span<const double> powers);

    /// Every RS at `scenario.radio.max_power` (the placement-phase query).
    static SnrField at_max_power(const Scenario& scenario,
                                 std::span<const geom::Vec2> rs_positions);
    static SnrField at_max_power(const Scenario& scenario,
                                 std::span<const geom::Vec2> rs_positions,
                                 std::span<const ids::SsId> subs);

    const Scenario& scenario() const { return *scenario_; }

    std::size_t rs_count() const { return rs_pos_.size(); }
    ids::IdRange<ids::RsId> rs_ids() const {
        return ids::first_ids<ids::RsId>(rs_pos_.size());
    }
    const geom::Vec2& rs_position(ids::RsId i) const { return rs_pos_[i.index()]; }
    units::Watt rs_power(ids::RsId i) const {
        return units::Watt{rs_power_[i.index()]};
    }
    std::span<const geom::Vec2> rs_positions() const { return rs_pos_; }
    /// Raw per-RS transmit powers in watts (bulk-buffer boundary).
    std::span<const double> rs_powers() const { return rs_power_; }

    std::size_t tracked_count() const { return sub_ids_.size(); }
    ids::IdRange<ids::SsId> tracked_ids() const {
        return ids::first_ids<ids::SsId>(sub_ids_.size());
    }
    /// Scenario-global subscriber ID of tracked-local slot k.
    ids::SsId tracked_subscriber(ids::SsId k) const { return sub_ids_[k]; }

    // --- Deltas: each O(tracked_count), journaled when a Transaction is open.

    /// Relocate RS i.
    void move_rs(ids::RsId i, const geom::Vec2& to);
    /// Change RS i's transmit power.
    void set_power(ids::RsId i, units::Watt power);
    /// Append an RS; returns its ID (== old rs_count()).
    ids::RsId add_rs(const geom::Vec2& pos, units::Watt power);
    /// Erase RS i; RSs after i shift down by one ID.
    void remove_rs(ids::RsId i);

    // --- Subscriber-set deltas: O(rs_count) each (one rx_total rebuild of
    // the touched slot). NOT journaled — the Transaction journal records
    // RS deltas only, so these assert that no transaction is open. The
    // serve::Session churn path (SS join/leave/move/rate change) is the
    // intended caller.

    /// Track scenario-global subscriber `global` in a new slot; returns
    /// its tracked-local ID (== old tracked_count()).
    ids::SsId add_subscriber(ids::SsId global);
    /// Stop tracking slot k; slots after k shift down by one ID.
    void remove_subscriber(ids::SsId k);
    /// Re-read slot k's position and distance request from the scenario
    /// (the subscriber moved or changed its request) and rebuild its
    /// total from scratch.
    void update_subscriber(ids::SsId k);

    // --- Reads: O(1) after the cached totals.

    /// Total received power at tracked subscriber k from the whole RS set.
    double total_rx(ids::SsId k) const {
        return total_[k.index()] + comp_[k.index()];
    }

    /// Definition-2 SNR of tracked subscriber k when served by RS
    /// `serving`: signal / (total - signal + N_amb). Zero signal reports
    /// 0 (never infinity); zero denominator with positive signal reports
    /// infinity.
    double snr_of(ids::SsId k, ids::RsId serving) const;

    /// True when snr_of(k, serving) clears beta with relative slack.
    bool meets_threshold(ids::SsId k, ids::RsId serving,
                         double rel_slack = 1e-12) const;

    /// Tracked-local IDs of subscribers failing either their distance
    /// request against `serving[k]` or the SNR threshold. `serving` maps
    /// tracked-local subscriber -> RS, one entry per tracked subscriber.
    std::vector<ids::SsId> violated(
        ids::IdSpan<ids::SsId, const ids::RsId> serving) const;

    /// True when every tracked subscriber clears beta under `serving`
    /// (distance not checked).
    bool all_meet_threshold(ids::IdSpan<ids::SsId, const ids::RsId> serving,
                            double rel_slack = 1e-12) const;

    /// Bulk snr_of: out[k] = snr_of(k, serving[k]) for every tracked
    /// subscriber, through the batch (SIMD-dispatched) kernel — the read
    /// side of the Fig. 3-7 sweep loops. Agrees with per-element snr_of
    /// to 1e-9 relative (docs/PERFORMANCE.md: the interference
    /// subtraction amplifies the per-term bound by the SNR magnitude);
    /// byte-identical under the scalar mode. `out` must have
    /// tracked_count() entries.
    void snrs(ids::IdSpan<ids::SsId, const ids::RsId> serving,
              std::span<double> out) const;

    // --- Maintenance.

    /// Exact from-scratch rebuild of tracked slot k's total. Safe to call
    /// concurrently for distinct k (used by sim::refresh_snr_field).
    void recompute_subscriber(ids::SsId k);
    /// From-scratch rebuild of every tracked total (serial).
    void refresh();

    /// Debug equivalence: every `interval` mutations, recompute the field
    /// from scratch and abort (assert) on >1e-9 relative divergence.
    /// 0 disables. Defaults: 64 in debug builds, 0 with NDEBUG.
    void set_check_interval(std::size_t interval) { check_interval_ = interval; }
    /// Immediate scratch comparison; returns the worst relative error seen.
    double verify_against_scratch() const;

    /// RAII guard for speculative probes: mutations made while a
    /// Transaction is open are rolled back (in reverse order) when it is
    /// destroyed, unless `commit()` was called. Transactions nest; an
    /// inner commit leaves its deltas to the outer transaction's fate.
    class Transaction {
    public:
        explicit Transaction(SnrField& field);
        ~Transaction();
        Transaction(const Transaction&) = delete;
        Transaction& operator=(const Transaction&) = delete;
        void commit() { committed_ = true; }

    private:
        SnrField& field_;
        std::size_t mark_;
        bool committed_ = false;
    };

private:
    struct UndoRecord {
        enum class Kind { Move, Power, Add, Remove } kind;
        ids::RsId index;
        geom::Vec2 pos;          // Move: old position; Remove: erased position
        units::Watt power{0.0};  // Power: old power;   Remove: erased power
    };

    /// Subtract/add RS (pos, power)'s contribution at every tracked sub
    /// (one batch accumulate_rx sweep over the subscriber columns).
    void apply_rs_contribution(const geom::Vec2& pos, units::Watt power, double sign);
    void insert_rs(ids::RsId i, const geom::Vec2& pos, units::Watt power);
    void journal(UndoRecord rec);
    void rollback_to(std::size_t mark);
    void after_mutation();

    geom::Vec2 sub_pos(std::size_t k) const { return {sub_x_[k], sub_y_[k]}; }
    units::MetersSpan sub_xs() const { return units::MetersSpan{sub_x_}; }
    units::MetersSpan sub_ys() const { return units::MetersSpan{sub_y_}; }
    units::MetersSpan rs_xs() const { return units::MetersSpan{rs_x_}; }
    units::MetersSpan rs_ys() const { return units::MetersSpan{rs_y_}; }

    const Scenario* scenario_;
    /// The scenario's propagation kernel, resolved once at construction:
    /// the one virtual call this class ever makes. Every delta and every
    /// scratch recompute evaluates this same kernel, which is both the
    /// model-consistency invariant and the hot-loop devirtualization.
    wireless::GainKernel kernel_;
    /// RS state: the Vec2 vector is the API master (rs_positions() hands
    /// out a span of it); the x/y columns mirror it for the gather-indexed
    /// batch reads and are updated by every mutation in lockstep.
    std::vector<geom::Vec2> rs_pos_;
    std::vector<double> rs_x_, rs_y_;
    std::vector<double> rs_power_;
    ids::IdVec<ids::SsId, ids::SsId> sub_ids_;  // tracked-local -> global SsId
    std::vector<double> sub_x_, sub_y_;  // subscriber positions, SoA columns
    std::vector<double> sub_reach_;      // cached distance requests
    std::vector<double> total_;          // compensated sums...
    std::vector<double> comp_;           // ...and their residuals
    std::vector<UndoRecord> journal_;
    std::size_t tx_depth_ = 0;
    bool journaling_paused_ = false;
    std::size_t mutations_ = 0;
#ifdef NDEBUG
    std::size_t check_interval_ = 0;
#else
    std::size_t check_interval_ = 64;
#endif
};

/// Incremental ILPQC feasibility oracle: keeps a persistent SnrField over
/// the candidate set chosen so far and diffs each query against the
/// previous one, so the branch-and-bound's stack-disciplined descent pays
/// only for the RSs that actually changed (add/remove deltas) instead of
/// rebuilding the interference sums per leaf.
class SnrFeasibilityOracle {
public:
    SnrFeasibilityOracle(const Scenario& scenario,
                         std::span<const geom::Vec2> candidates);

    /// True when the candidate subset `chosen` (IDs into the candidate
    /// array, in search order) admits a nearest assignment that clears the
    /// SNR threshold at max power. Equivalent to
    /// `snr_feasible_at_max_power` over the materialized positions.
    bool feasible(std::span<const ids::CandId> chosen);

private:
    const Scenario* scenario_;
    std::vector<geom::Vec2> candidates_;
    std::vector<ids::CandId> current_;  // chosen prefix mirrored in field_
    SnrField field_;
};

}  // namespace sag::core
