#pragma once

#include <span>
#include <vector>

#include "sag/core/scenario.h"
#include "sag/ids/ids.h"

namespace sag::core {

/// Extension: dual-relay coverage after the 802.16j dual-relay MMR
/// architecture (paper references [8], [9]) — every subscriber must be in
/// range of TWO distinct coverage RSs, so service survives a single RS
/// failure or supports make-before-break handoff. The primary access link
/// still has to clear the SNR threshold with every placed RS radiating at
/// max power.
struct DualCoveragePlan {
    std::vector<geom::Vec2> rs_positions;
    /// Per subscriber: the serving (nearest in-range) RS.
    ids::IdVec<ids::SsId, ids::RsId> primary;
    /// Per subscriber: the backup (second-nearest in-range) RS.
    ids::IdVec<ids::SsId, ids::RsId> secondary;
    bool feasible = false;

    std::size_t rs_count() const { return rs_positions.size(); }
};

/// Greedy multicover (demand 2 per subscriber) over `candidates`, followed
/// by a redundancy prune that keeps dual coverage and the primary-SNR
/// constraint intact. Candidates typically come from iac_candidates() or
/// gac_candidates(); note IAC intersections alone often cannot dual-cover
/// isolated subscribers — GAC grids are the natural feed.
DualCoveragePlan solve_dual_coverage(const Scenario& scenario,
                                     std::span<const geom::Vec2> candidates);

/// Independent check: both links in range and distinct, primary SNR above
/// threshold at max power.
bool verify_dual_coverage(const Scenario& scenario, const DualCoveragePlan& plan);

}  // namespace sag::core
