#pragma once

#include <vector>

#include "sag/core/scenario.h"

namespace sag::core {

/// IAC — Intersections As Candidates (paper Fig. 2a): all intersection
/// points between any two subscribers' feasible circles. Centers of
/// subscribers whose circle intersects no other are appended so isolated
/// subscribers stay coverable (the paper's construction is silent on them;
/// without this IAC would be trivially infeasible on sparse instances).
std::vector<geom::Vec2> iac_candidates(const Scenario& scenario);

/// GAC — Grids As Candidates (paper Fig. 2b): centers of the square cells
/// of side `grid_size` tiling the field. Smaller grids give better
/// solutions but grow the ILP (paper Fig. 3e sweeps this knob).
std::vector<geom::Vec2> gac_candidates(const Scenario& scenario, double grid_size);

/// Candidates filtered to those covering at least one subscriber (an RS
/// covering nobody can never appear in a minimal solution); positions
/// useless to every subscriber only pad the search space.
std::vector<geom::Vec2> prune_useless_candidates(const Scenario& scenario,
                                                 std::vector<geom::Vec2> candidates);

}  // namespace sag::core
