#pragma once

#include <span>

#include "sag/core/deployment.h"
#include "sag/core/scenario.h"
#include "sag/opt/milp.h"

namespace sag::core {

/// The paper's ILPQC (3.1)-(3.5) transcribed *literally* as a 0-1 MILP:
/// placement variables T_i, assignment variables T_ij (only for in-range
/// pairs, which encodes (3.4)), coverage coupling T_ij <= T_i and
/// T_i <= sum_j T_ij (3.2), unique assignment sum_i T_ij = 1 (3.3), and
/// the quadratic SNR constraint (3.5) linearized exactly with big-M (the
/// denominator is linear in T once the serving indicator is fixed):
///   g_ij + M(1 - T_ij) >= beta * (sum_{k != i} g_kj T_k + N_amb).
///
/// This is deliberately the *slow, general* route — the independent
/// cross-check for the specialized set-cover branch & bound in
/// solve_ilpqc_coverage. Use on small instances only (the big-M LP
/// relaxation is weak); tests assert both solvers agree on RS counts.
opt::MilpProblem build_ilpqc_milp(const Scenario& scenario,
                                  std::span<const geom::Vec2> candidates);

/// Solves the MILP and converts the T variables back into a CoveragePlan
/// (assignment from the T_ij values). Infeasible or node-limited runs
/// return plan.feasible == false.
CoveragePlan solve_ilpqc_milp(const Scenario& scenario,
                              std::span<const geom::Vec2> candidates,
                              const opt::MilpOptions& options = {});

}  // namespace sag::core
