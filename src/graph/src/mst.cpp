#include "sag/graph/mst.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "sag/graph/union_find.h"

namespace sag::graph {

std::vector<Edge> kruskal_mst(const Graph& g) {
    std::vector<std::size_t> order(g.edge_count());
    std::iota(order.begin(), order.end(), std::size_t{0});
    const auto edges = g.edges();
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return edges[a].weight < edges[b].weight;
    });

    UnionFind uf(g.vertex_count());
    std::vector<Edge> tree;
    tree.reserve(g.vertex_count() > 0 ? g.vertex_count() - 1 : 0);
    for (const std::size_t e : order) {
        if (uf.unite(edges[e].u, edges[e].v)) tree.push_back(edges[e]);
    }
    return tree;
}

std::vector<std::size_t> prim_mst_dense(const std::vector<std::vector<double>>& weights,
                                        std::size_t root) {
    const std::size_t n = weights.size();
    if (root >= n) throw std::out_of_range("prim root out of range");
    for (const auto& row : weights) {
        if (row.size() != n) throw std::invalid_argument("weight matrix must be square");
    }

    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<std::size_t> parent(n);
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    std::vector<double> best(n, kInf);
    std::vector<bool> in_tree(n, false);
    best[root] = 0.0;

    for (std::size_t it = 0; it < n; ++it) {
        std::size_t u = n;
        double u_cost = kInf;
        for (std::size_t v = 0; v < n; ++v) {
            if (!in_tree[v] && best[v] < u_cost) {
                u = v;
                u_cost = best[v];
            }
        }
        if (u == n) break;  // remaining vertices unreachable
        in_tree[u] = true;
        for (std::size_t v = 0; v < n; ++v) {
            if (!in_tree[v] && weights[u][v] < best[v]) {
                best[v] = weights[u][v];
                parent[v] = u;
            }
        }
    }
    return parent;
}

double total_weight(const std::vector<Edge>& edges) {
    double sum = 0.0;
    for (const Edge& e : edges) sum += e.weight;
    return sum;
}

}  // namespace sag::graph
