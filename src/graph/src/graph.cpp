#include "sag/graph/graph.h"

#include <queue>
#include <stdexcept>

namespace sag::graph {

Graph::Graph(std::size_t vertex_count) : adj_(vertex_count) {}

void Graph::add_edge(std::size_t u, std::size_t v, double weight) {
    if (u == v) throw std::invalid_argument("self-loops are not supported");
    if (u >= adj_.size() || v >= adj_.size())
        throw std::out_of_range("edge endpoint out of range");
    const std::size_t idx = edges_.size();
    edges_.push_back({u, v, weight});
    adj_[u].push_back(idx);
    adj_[v].push_back(idx);
}

std::size_t Graph::other_end(std::size_t e, std::size_t v) const {
    const Edge& edge = edges_[e];
    return edge.u == v ? edge.v : edge.u;
}

std::vector<std::vector<std::size_t>> Graph::connected_components() const {
    std::vector<std::vector<std::size_t>> components;
    std::vector<bool> seen(adj_.size(), false);
    for (std::size_t start = 0; start < adj_.size(); ++start) {
        if (seen[start]) continue;
        std::vector<std::size_t> comp;
        std::queue<std::size_t> q;
        q.push(start);
        seen[start] = true;
        while (!q.empty()) {
            const std::size_t v = q.front();
            q.pop();
            comp.push_back(v);
            for (const std::size_t e : adj_[v]) {
                const std::size_t w = other_end(e, v);
                if (!seen[w]) {
                    seen[w] = true;
                    q.push(w);
                }
            }
        }
        components.push_back(std::move(comp));
    }
    return components;
}

}  // namespace sag::graph
