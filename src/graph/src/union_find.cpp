#include "sag/graph/union_find.h"

#include <numeric>

namespace sag::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), sets_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]];  // path halving
        x = parent_[x];
    }
    return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a), rb = find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --sets_;
    return true;
}

std::size_t UnionFind::set_size(std::size_t x) { return size_[find(x)]; }

}  // namespace sag::graph
