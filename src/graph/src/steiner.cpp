#include "sag/graph/steiner.h"

#include <cmath>
#include <stdexcept>

namespace sag::graph {

std::size_t steiner_section_count(const geom::Vec2& a, const geom::Vec2& b,
                                  double max_hop) {
    if (max_hop <= 0.0) throw std::invalid_argument("max_hop must be positive");
    const double len = geom::distance(a, b);
    // ceil with tolerance so a segment of exactly k hops is not split k+1 ways.
    const double sections = std::ceil(len / max_hop - 1e-9);
    return static_cast<std::size_t>(std::max(sections, 1.0));
}

std::vector<geom::Vec2> steinerize_segment(const geom::Vec2& a, const geom::Vec2& b,
                                           double max_hop) {
    const std::size_t sections = steiner_section_count(a, b, max_hop);
    std::vector<geom::Vec2> points;
    points.reserve(sections - 1);
    for (std::size_t k = 1; k < sections; ++k) {
        points.push_back(geom::lerp(a, b, static_cast<double>(k) /
                                              static_cast<double>(sections)));
    }
    return points;
}

}  // namespace sag::graph
