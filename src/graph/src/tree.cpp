#include "sag/graph/tree.h"

#include <stdexcept>

namespace sag::graph {

RootedTree::RootedTree(std::vector<std::size_t> parent)
    : parent_(std::move(parent)), children_(parent_.size()) {
    const std::size_t n = parent_.size();
    for (std::size_t v = 0; v < n; ++v) {
        if (parent_[v] >= n) throw std::out_of_range("parent index out of range");
        if (parent_[v] != v) children_[parent_[v]].push_back(v);
    }
    // Topological order by repeated child expansion from the roots; if some
    // vertex is never reached the parent array contained a cycle.
    topo_.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
        if (parent_[v] == v) topo_.push_back(v);
    }
    for (std::size_t i = 0; i < topo_.size(); ++i) {
        for (const std::size_t c : children_[topo_[i]]) topo_.push_back(c);
    }
    if (topo_.size() != n) throw std::invalid_argument("parent array contains a cycle");
}

std::vector<std::size_t> RootedTree::path_to_root(std::size_t v) const {
    std::vector<std::size_t> path{v};
    while (!is_root(v)) {
        v = parent_[v];
        path.push_back(v);
    }
    return path;
}

std::size_t RootedTree::depth(std::size_t v) const {
    std::size_t d = 0;
    while (!is_root(v)) {
        v = parent_[v];
        ++d;
    }
    return d;
}

std::vector<std::size_t> RootedTree::subtree(std::size_t v) const {
    std::vector<std::size_t> out{v};
    for (std::size_t i = 0; i < out.size(); ++i) {
        for (const std::size_t c : children_[out[i]]) out.push_back(c);
    }
    return out;
}

}  // namespace sag::graph
