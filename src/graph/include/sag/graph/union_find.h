#pragma once

#include <cstddef>
#include <vector>

namespace sag::graph {

/// Disjoint-set forest with union by rank and path compression.
/// Used by Kruskal's MST and by Zone Partition's connected components.
class UnionFind {
public:
    explicit UnionFind(std::size_t n);

    /// Representative of the set containing `x` (with path compression).
    std::size_t find(std::size_t x);
    /// Merges the sets of `a` and `b`; returns false when already joined.
    bool unite(std::size_t a, std::size_t b);
    bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
    /// Number of disjoint sets remaining.
    std::size_t set_count() const { return sets_; }
    /// Size of the set containing `x`.
    std::size_t set_size(std::size_t x);
    std::size_t size() const { return parent_.size(); }

private:
    std::vector<std::size_t> parent_;
    std::vector<std::size_t> rank_;
    std::vector<std::size_t> size_;
    std::size_t sets_;
};

}  // namespace sag::graph
