#pragma once

#include <vector>

#include "sag/geometry/vec2.h"

namespace sag::graph {

/// Steinerization (Lin & Xue '99, used by MBMC Step 7): subdivide segment
/// a->b into ceil(|ab| / max_hop) equal sections, returning the
/// ceil(|ab|/max_hop) - 1 interior points where relay stations are placed.
/// Returns an empty vector when the segment is already one feasible hop.
std::vector<geom::Vec2> steinerize_segment(const geom::Vec2& a, const geom::Vec2& b,
                                           double max_hop);

/// Number of sections ceil(|ab| / max_hop) the segment splits into
/// (minimum 1); the paper's weight w2 + 1.
std::size_t steiner_section_count(const geom::Vec2& a, const geom::Vec2& b,
                                  double max_hop);

}  // namespace sag::graph
