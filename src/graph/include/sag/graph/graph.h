#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sag::graph {

/// Weighted undirected edge between vertex indices.
struct Edge {
    std::size_t u = 0;
    std::size_t v = 0;
    double weight = 0.0;

    bool operator==(const Edge& o) const = default;
};

/// Simple undirected weighted graph over vertices 0..n-1, stored as both an
/// edge list and an adjacency list. Vertices are indices into whatever
/// external entity array the caller maintains (SSs, RSs, BSs).
class Graph {
public:
    explicit Graph(std::size_t vertex_count = 0);

    std::size_t vertex_count() const { return adj_.size(); }
    std::size_t edge_count() const { return edges_.size(); }

    /// Adds an undirected edge; self-loops are rejected (throws).
    void add_edge(std::size_t u, std::size_t v, double weight = 1.0);

    std::span<const Edge> edges() const { return edges_; }
    /// Indices into edges() of the edges incident to `v`.
    std::span<const std::size_t> incident_edges(std::size_t v) const { return adj_[v]; }
    /// The endpoint of edge `e` that is not `v`.
    std::size_t other_end(std::size_t e, std::size_t v) const;

    /// Connected components as vertex-index lists (BFS).
    std::vector<std::vector<std::size_t>> connected_components() const;

private:
    std::vector<Edge> edges_;
    std::vector<std::vector<std::size_t>> adj_;
};

}  // namespace sag::graph
