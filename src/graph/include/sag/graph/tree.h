#pragma once

#include <cstddef>
#include <vector>

#include "sag/graph/graph.h"

namespace sag::graph {

/// A rooted tree (or forest) expressed as a parent array:
/// parent[v] == v marks a root. Built from MST output; MBMC roots the
/// upper-tier relay tree at the base stations.
class RootedTree {
public:
    /// Wraps an existing parent array (parent[root] == root). Throws when a
    /// cycle is detected.
    explicit RootedTree(std::vector<std::size_t> parent);

    std::size_t size() const { return parent_.size(); }
    std::size_t parent(std::size_t v) const { return parent_[v]; }
    bool is_root(std::size_t v) const { return parent_[v] == v; }
    const std::vector<std::size_t>& children(std::size_t v) const { return children_[v]; }

    /// Vertices ordered so every parent precedes its children.
    const std::vector<std::size_t>& topological_order() const { return topo_; }

    /// Path from `v` up to (and including) its root.
    std::vector<std::size_t> path_to_root(std::size_t v) const;

    /// Depth of `v` (root has depth 0).
    std::size_t depth(std::size_t v) const;

    /// All vertices in the subtree rooted at `v` (including `v`).
    std::vector<std::size_t> subtree(std::size_t v) const;

private:
    std::vector<std::size_t> parent_;
    std::vector<std::vector<std::size_t>> children_;
    std::vector<std::size_t> topo_;
};

}  // namespace sag::graph
