#pragma once

#include <vector>

#include "sag/graph/graph.h"

namespace sag::graph {

/// Kruskal's algorithm. Returns the selected edges; when the graph is
/// disconnected the result is a minimum spanning forest.
std::vector<Edge> kruskal_mst(const Graph& g);

/// Prim's algorithm over a dense graph given as a full weight matrix
/// (weights[i][j], symmetric; use +infinity for "no edge"). O(n^2), which
/// beats Kruskal on the complete geometric graphs MBMC builds.
/// Returns the parent index of each vertex in the tree rooted at `root`
/// (parent[root] == root). Unreachable vertices keep parent == themselves.
std::vector<std::size_t> prim_mst_dense(const std::vector<std::vector<double>>& weights,
                                        std::size_t root);

/// Total weight of an edge set.
double total_weight(const std::vector<Edge>& edges);

}  // namespace sag::graph
