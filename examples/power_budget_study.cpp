// Power budget study: how much transmit power does "green" relay design
// actually save, and how does the saving respond to the SNR threshold and
// the subscriber density? Sweeps both knobs and prints the PRO/UCPO
// savings against the all-Pmax deployment, plus the PRO-vs-optimal gap
// that Theorem 1 bounds.
//
// Demonstrates: the power-allocation API (PRO, LPQC optimum, baseline,
// UCPO) used directly on a fixed coverage plan.
#include <cstdio>

#include "sag/core/power.h"
#include "sag/core/samc.h"
#include "sag/core/ucra.h"
#include "sag/sim/scenario_gen.h"
#include "sag/sim/stats.h"

namespace {

using namespace sag;

struct Row {
    double saving_pct = 0.0;   // SAG total vs all-Pmax
    double pro_gap_pct = 0.0;  // (PRO - optimal) / optimal
    int feasible = 0;
};

Row study_point(units::Decibel snr_threshold, std::size_t users, int seeds) {
    sim::RunningStat saving, gap;
    int feasible = 0;
    for (int seed = 0; seed < seeds; ++seed) {
        sim::GeneratorConfig cfg;
        cfg.field_side = 600.0;
        cfg.subscriber_count = users;
        cfg.base_station_count = 3;
        cfg.snr_threshold_db = snr_threshold;
        const auto s = sim::generate_scenario(cfg, 42 + seed);

        const auto cov = core::solve_samc(s).plan;
        if (!cov.feasible) continue;
        const auto pro = core::allocate_power_pro(s, cov);
        const auto opt = core::allocate_power_optimal(s, cov);
        if (!pro.feasible || !opt.feasible) continue;

        auto tree = core::solve_mbmc(s, cov);
        core::allocate_power_ucpo(s, cov, tree);
        const double green = pro.total + tree.upper_tier_power();
        core::allocate_power_max(s, tree);
        const double max_power =
            core::allocate_power_baseline(s, cov).total + tree.upper_tier_power();

        ++feasible;
        saving.add(100.0 * (1.0 - green / max_power));
        if (opt.total > 1e-9) gap.add(100.0 * (pro.total - opt.total) / opt.total);
    }
    return {saving.mean(), gap.mean(), feasible};
}

}  // namespace

int main() {
    constexpr int kSeeds = 5;
    std::printf("Green relay power study (600x600 field, 3 BSs, %d seeds/point)\n\n",
                kSeeds);

    std::printf("%-10s %-8s %-14s %-14s %s\n", "SNR(dB)", "users", "saving vs max",
                "PRO gap vs opt", "feasible");
    std::printf("------------------------------------------------------------\n");
    for (const double snr : {-25.0, -20.0, -15.0, -12.5}) {
        for (const std::size_t users : {15ul, 30ul, 45ul}) {
            const Row r = study_point(units::Decibel{snr}, users, kSeeds);
            if (r.feasible == 0) {
                std::printf("%-10.1f %-8zu %-14s %-14s %d/%d\n", snr, users, "n/a",
                            "n/a", r.feasible, kSeeds);
            } else {
                std::printf("%-10.1f %-8zu %13.1f%% %13.2f%% %d/%d\n", snr, users,
                            r.saving_pct, r.pro_gap_pct, r.feasible, kSeeds);
            }
        }
    }
    std::printf(
        "\nReading the table: green allocation saves the bulk of the power\n"
        "budget; the saving shrinks as the SNR threshold tightens (RSs must\n"
        "keep more margin) and the PRO-vs-optimal gap stays small, as the\n"
        "(1+phi) analysis predicts.\n");
    return 0;
}
