// City scale: 300 subscribers over a 4 km x 4 km map. The paper notes
// (§IV-A) that a large field decomposes into independent sub-zones; this
// example shows Zone Partition + SAMC handling an instance ~4-10x beyond
// anything in the paper's evaluation, in well under a second, and the
// whole pipeline still verifying end-to-end.
#include <algorithm>
#include <cstdio>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/core/zone_partition.h"
#include "sag/sim/scenario_gen.h"
#include "sag/sim/stopwatch.h"

int main() {
    using namespace sag;

    sim::GeneratorConfig cfg;
    cfg.field_side = 4000.0;
    cfg.subscriber_count = 300;
    cfg.base_station_count = 9;
    cfg.snr_threshold_db = units::Decibel{-15.0};
    const core::Scenario city = sim::generate_scenario(cfg, 20'26);

    sim::Stopwatch sw;
    const auto zones = core::zone_partition(city);
    const double t_zones = sw.milliseconds();

    std::size_t largest = 0;
    for (const auto& z : zones) largest = std::max(largest, z.size());
    std::printf("City: %zu subscribers, %zu BSs on %.0fx%.0f\n",
                city.subscriber_count(), city.base_stations.size(),
                city.field.width(), city.field.height());
    std::printf("Zone partition: %zu zones (largest %zu subscribers) in %.1f ms\n",
                zones.size(), largest, t_zones);

    sw.reset();
    const core::SagResult plan = core::solve_sag(city);
    const double t_solve = sw.milliseconds();
    if (!plan.feasible) {
        std::printf("no feasible deployment\n");
        return 1;
    }

    std::printf("Full SAG pipeline: %.1f ms\n", t_solve);
    std::printf("  coverage RSs     : %zu\n", plan.coverage_rs_count());
    std::printf("  connectivity RSs : %zu\n", plan.connectivity_rs_count());
    std::printf("  total power      : %.1f (vs %.1f at P_max everywhere)\n",
                plan.total_power(),
                static_cast<double>(plan.coverage_rs_count() +
                                    plan.connectivity_rs_count()) *
                    city.radio.max_power.watts());

    sw.reset();
    const auto cov_ok =
        core::verify_coverage(city, plan.coverage, plan.lower_power.powers);
    const auto conn_ok =
        core::verify_connectivity(city, plan.coverage, plan.connectivity);
    std::printf("Verification (%.1f ms): coverage %s, connectivity %s\n",
                sw.milliseconds(), cov_ok.feasible ? "OK" : "FAILED",
                conn_ok.feasible ? "OK" : "FAILED");
    return cov_ok.feasible && conn_ok.feasible ? 0 : 1;
}
