// Quickstart: build a small scenario, run the full SAG pipeline, and print
// the deployment — the 60-second tour of the public API.
#include <cstdio>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/sim/scenario_gen.h"
#include "sag/units/units.h"

int main() {
    // 1. Describe the world: a 500x500 field, 20 subscriber stations with
    //    distance requests in [30, 40], 4 base stations, SNR threshold -15 dB.
    sag::sim::GeneratorConfig config;
    config.field_side = 500.0;
    config.subscriber_count = 20;
    config.base_station_count = 4;
    config.snr_threshold_db = sag::units::Decibel{-15.0};
    const sag::core::Scenario scenario = sag::sim::generate_scenario(config, /*seed=*/7);

    // 2. Run the whole paper pipeline: SAMC coverage, PRO power reduction,
    //    MBMC connectivity, UCPO upper-tier power.
    const sag::core::SagResult result = sag::core::solve_sag(scenario);

    std::printf("SAG deployment for %zu subscribers, %zu base stations\n",
                scenario.subscriber_count(), scenario.base_stations.size());
    std::printf("  coverage RSs placed     : %zu\n", result.coverage_rs_count());
    std::printf("  connectivity RSs placed : %zu\n", result.connectivity_rs_count());
    std::printf("  lower-tier power P_L    : %.2f\n", result.lower_tier_power());
    std::printf("  upper-tier power P_H    : %.2f\n", result.upper_tier_power());
    std::printf("  total power P_total     : %.2f  (baseline at P_max: %.2f)\n",
                result.total_power(),
                static_cast<double>(result.coverage_rs_count() +
                                    result.connectivity_rs_count()) *
                    scenario.radio.max_power.watts());

    // 3. Verify the deployment independently of the solvers.
    const auto coverage_report = sag::core::verify_coverage(
        scenario, result.coverage, result.lower_power.powers);
    const auto connectivity_report =
        sag::core::verify_connectivity(scenario, result.coverage, result.connectivity);
    std::printf("  coverage verified       : %s (%zu violations)\n",
                coverage_report.feasible ? "yes" : "NO", coverage_report.violations);
    std::printf("  connectivity verified   : %s\n",
                connectivity_report.feasible ? "yes" : "NO");

    // 4. Inspect one subscriber's link budget.
    if (!coverage_report.subscribers.empty()) {
        const auto& check = coverage_report.subscribers.front();
        std::printf("  subscriber 0: served by RS %zu at %.1f m, SNR %.2f dB\n",
                    check.serving_rs.index(), check.access_distance, check.snr_db);
    }
    return coverage_report.feasible && connectivity_report.feasible ? 0 : 1;
}
