// Topology export: run the pipeline on a generated scenario and archive
// everything — the scenario as replayable JSON, the deployment report as
// JSON, and the relay tree as a plot-ready CSV (the same format the
// Fig. 6 benchmark writes).
//
// Demonstrates: the sag::io serialization layer and scenario round-trips.
#include <cstdio>
#include <fstream>

#include "sag/core/sag.h"
#include "sag/io/scenario_io.h"
#include "sag/sim/scenario_gen.h"

int main() {
    using namespace sag;

    sim::GeneratorConfig cfg;
    cfg.field_side = 600.0;
    cfg.subscriber_count = 25;
    cfg.base_station_count = 4;
    cfg.bs_layout = sim::BsLayout::Corners;
    cfg.snr_threshold_db = units::Decibel{-15.0};
    const core::Scenario scenario = sim::generate_scenario(cfg, 77);

    // 1. Archive the input; load_scenario(path) replays it bit-exactly.
    io::save_scenario("topology_scenario.json", scenario);
    const core::Scenario replayed = io::load_scenario("topology_scenario.json");
    std::printf("scenario archived: %zu subscribers round-tripped %s\n",
                replayed.subscriber_count(),
                replayed.subscribers[0].pos == scenario.subscribers[0].pos
                    ? "exactly"
                    : "INEXACTLY");

    // 2. Solve and archive the result.
    const core::SagResult result = core::solve_sag(scenario);
    if (!result.feasible) {
        std::printf("no feasible deployment\n");
        return 1;
    }
    io::write_text_file("topology_result.json",
                        io::sag_result_to_json(result).dump(2) + "\n");

    std::ofstream csv("topology_tree.csv");
    io::write_deployment_csv(csv, scenario, result.coverage, result.connectivity);

    std::printf("deployment: %zu coverage + %zu connectivity RSs, "
                "total power %.1f\n",
                result.coverage_rs_count(), result.connectivity_rs_count(),
                result.total_power());
    std::printf("wrote topology_scenario.json, topology_result.json, "
                "topology_tree.csv\n");
    std::printf("plot with e.g.:\n"
                "  python3 -c \"import pandas as pd, matplotlib.pyplot as p;"
                " d=pd.read_csv('topology_tree.csv');"
                " ...\"\n");
    return 0;
}
