// Campus traffic offload: the paper's motivating scenario (§I-II) —
// fixed high-demand subscribers (stores, food courts, gas stations)
// clustered around a few hot spots, offloaded from two macro base
// stations through a two-tier relay network.
//
// Demonstrates: hand-building a Scenario (no generator), per-cluster
// structure in Zone Partition, the SAG pipeline, and reading the
// per-subscriber verification report.
#include <cstdio>
#include <random>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/core/zone_partition.h"
#include "sag/units/units.h"
#include "sag/ids/ids.h"

namespace {

using namespace sag;

/// Three retail clusters on a 1.2 km x 1.2 km map, far enough apart that
/// Zone Partition should isolate them.
core::Scenario build_campus() {
    core::Scenario s;
    s.field = geom::Rect::centered_square(1200.0);
    s.snr_threshold_db = units::Decibel{-15.0};

    std::mt19937_64 rng(2024);
    std::uniform_real_distribution<double> jitter(-60.0, 60.0);
    std::uniform_real_distribution<double> demand(30.0, 40.0);

    const geom::Vec2 malls[] = {{-420.0, -380.0}, {430.0, -300.0}, {0.0, 420.0}};
    const std::size_t stores_per_mall[] = {12, 9, 14};
    for (std::size_t m = 0; m < 3; ++m) {
        for (std::size_t k = 0; k < stores_per_mall[m]; ++k) {
            s.subscribers.push_back(
                {malls[m] + geom::Vec2{jitter(rng), jitter(rng)}, demand(rng)});
        }
    }
    s.base_stations = {{{-500.0, 500.0}}, {{500.0, 500.0}}};
    s.validate();
    return s;
}

}  // namespace

int main() {
    const core::Scenario campus = build_campus();
    std::printf("Campus offload: %zu stores in 3 clusters, %zu macro BSs\n",
                campus.subscriber_count(), campus.base_stations.size());

    // Zone Partition isolates the clusters, so each solves independently.
    const auto zones = core::zone_partition(campus);
    std::printf("Zone partition (d_max = %.0f m) found %zu zones:",
                core::zone_partition_dmax(campus), zones.size());
    for (const auto& z : zones) std::printf(" %zu-store", z.size());
    std::printf("\n\n");

    const core::SagResult plan = core::solve_sag(campus);
    if (!plan.feasible) {
        std::printf("no feasible deployment found\n");
        return 1;
    }

    std::printf("Deployment:\n");
    std::printf("  coverage RSs     : %zu\n", plan.coverage_rs_count());
    std::printf("  connectivity RSs : %zu\n", plan.connectivity_rs_count());
    std::printf("  P_L / P_H / total: %.1f / %.1f / %.1f power units\n",
                plan.lower_tier_power(), plan.upper_tier_power(),
                plan.total_power());
    const double all_max =
        static_cast<double>(plan.coverage_rs_count() + plan.connectivity_rs_count()) *
        campus.radio.max_power.watts();
    std::printf("  vs all-at-Pmax   : %.1f (green saves %.0f%%)\n\n", all_max,
                100.0 * (1.0 - plan.total_power() / all_max));

    // Worst link in the deployment, from the independent verifier.
    const auto report =
        core::verify_coverage(campus, plan.coverage, plan.lower_power.powers);
    double worst_snr = 1e18;
    sag::ids::SsId worst{0};
    for (const sag::ids::SsId j : report.subscribers.ids()) {
        if (report.subscribers[j].snr_db < worst_snr) {
            worst_snr = report.subscribers[j].snr_db;
            worst = j;
        }
    }
    std::printf("All %zu access links verified: %s\n", report.subscribers.size(),
                report.feasible ? "OK" : "VIOLATIONS");
    std::printf("Tightest link: store %zu, %.1f m from its RS, SNR %.1f dB "
                "(threshold %.1f dB)\n",
                worst.index(), report.subscribers[worst].access_distance,
                worst_snr,
                campus.snr_threshold_db.db());
    return report.feasible ? 0 : 1;
}
