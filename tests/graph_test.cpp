#include <algorithm>
#include <numeric>
#include <random>

#include <gtest/gtest.h>

#include "sag/graph/graph.h"
#include "sag/graph/mst.h"
#include "sag/graph/steiner.h"
#include "sag/graph/tree.h"
#include "sag/graph/union_find.h"

namespace sag::graph {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
    UnionFind uf(5);
    EXPECT_EQ(uf.set_count(), 5u);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(uf.set_size(i), 1u);
    EXPECT_FALSE(uf.connected(0, 1));
}

TEST(UnionFindTest, UniteMergesAndCounts) {
    UnionFind uf(6);
    EXPECT_TRUE(uf.unite(0, 1));
    EXPECT_TRUE(uf.unite(2, 3));
    EXPECT_TRUE(uf.unite(0, 2));
    EXPECT_FALSE(uf.unite(1, 3));  // already joined
    EXPECT_EQ(uf.set_count(), 3u);
    EXPECT_EQ(uf.set_size(3), 4u);
    EXPECT_TRUE(uf.connected(1, 2));
    EXPECT_FALSE(uf.connected(0, 5));
}

TEST(UnionFindTest, TransitivityProperty) {
    std::mt19937_64 rng(42);
    UnionFind uf(64);
    std::uniform_int_distribution<std::size_t> pick(0, 63);
    for (int i = 0; i < 100; ++i) uf.unite(pick(rng), pick(rng));
    // connected() must agree with find() equality everywhere.
    for (std::size_t a = 0; a < 64; a += 7) {
        for (std::size_t b = 0; b < 64; b += 5) {
            EXPECT_EQ(uf.connected(a, b), uf.find(a) == uf.find(b));
        }
    }
    std::size_t sum = 0;
    std::vector<bool> seen(64, false);
    for (std::size_t v = 0; v < 64; ++v) {
        const std::size_t r = uf.find(v);
        if (!seen[r]) {
            seen[r] = true;
            sum += uf.set_size(r);
        }
    }
    EXPECT_EQ(sum, 64u);
}

TEST(GraphTest, AddEdgeAndAdjacency) {
    Graph g(4);
    g.add_edge(0, 1, 2.5);
    g.add_edge(1, 2, 1.0);
    EXPECT_EQ(g.edge_count(), 2u);
    EXPECT_EQ(g.incident_edges(1).size(), 2u);
    EXPECT_EQ(g.other_end(0, 0), 1u);
    EXPECT_EQ(g.other_end(0, 1), 0u);
}

TEST(GraphTest, RejectsInvalidEdges) {
    Graph g(3);
    EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
    EXPECT_THROW(g.add_edge(0, 3), std::out_of_range);
}

TEST(GraphTest, ConnectedComponents) {
    Graph g(6);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(4, 5);
    auto comps = g.connected_components();
    ASSERT_EQ(comps.size(), 3u);  // {0,1,2}, {3}, {4,5}
    std::size_t total = 0;
    for (const auto& c : comps) total += c.size();
    EXPECT_EQ(total, 6u);
}

TEST(KruskalTest, KnownMst) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(1, 2, 2.0);
    g.add_edge(2, 3, 3.0);
    g.add_edge(0, 3, 10.0);
    g.add_edge(0, 2, 2.5);
    const auto mst = kruskal_mst(g);
    EXPECT_EQ(mst.size(), 3u);
    EXPECT_DOUBLE_EQ(total_weight(mst), 6.0);
}

TEST(KruskalTest, DisconnectedGraphYieldsForest) {
    Graph g(4);
    g.add_edge(0, 1, 1.0);
    g.add_edge(2, 3, 2.0);
    const auto forest = kruskal_mst(g);
    EXPECT_EQ(forest.size(), 2u);
}

TEST(PrimDenseTest, MatchesKruskalOnRandomGraphs) {
    std::mt19937_64 rng(7);
    std::uniform_real_distribution<double> weight(0.1, 100.0);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 9);
        std::vector<std::vector<double>> w(n, std::vector<double>(n));
        Graph g(n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i + 1; j < n; ++j) {
                const double x = weight(rng);
                w[i][j] = w[j][i] = x;
                g.add_edge(i, j, x);
            }
        }
        const auto parent = prim_mst_dense(w, 0);
        double prim_total = 0.0;
        for (std::size_t v = 1; v < n; ++v) prim_total += w[v][parent[v]];
        EXPECT_NEAR(prim_total, total_weight(kruskal_mst(g)), 1e-9)
            << "trial " << trial;
    }
}

TEST(PrimDenseTest, UnreachableVertexStaysRootless) {
    constexpr double inf = std::numeric_limits<double>::infinity();
    std::vector<std::vector<double>> w{{inf, 1.0, inf},
                                       {1.0, inf, inf},
                                       {inf, inf, inf}};
    const auto parent = prim_mst_dense(w, 0);
    EXPECT_EQ(parent[1], 0u);
    EXPECT_EQ(parent[2], 2u);  // disconnected: parent == self
}

TEST(PrimDenseTest, RejectsBadInput) {
    std::vector<std::vector<double>> w{{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_THROW((void)prim_mst_dense(w, 5), std::out_of_range);
    std::vector<std::vector<double>> ragged{{0.0, 1.0}, {1.0}};
    EXPECT_THROW((void)prim_mst_dense(ragged, 0), std::invalid_argument);
}

TEST(RootedTreeTest, StructureAccessors) {
    //      0
    //     / \.
    //    1   2
    //    |
    //    3
    RootedTree t({0, 0, 0, 1});
    EXPECT_TRUE(t.is_root(0));
    EXPECT_FALSE(t.is_root(3));
    EXPECT_EQ(t.children(0).size(), 2u);
    EXPECT_EQ(t.depth(3), 2u);
    EXPECT_EQ(t.path_to_root(3), (std::vector<std::size_t>{3, 1, 0}));
    EXPECT_EQ(t.subtree(1), (std::vector<std::size_t>{1, 3}));
    EXPECT_EQ(t.subtree(0).size(), 4u);
}

TEST(RootedTreeTest, TopologicalOrderParentsFirst) {
    RootedTree t({0, 0, 1, 2, 0});
    const auto& topo = t.topological_order();
    ASSERT_EQ(topo.size(), 5u);
    std::vector<std::size_t> position(5);
    for (std::size_t i = 0; i < topo.size(); ++i) position[topo[i]] = i;
    for (std::size_t v = 0; v < 5; ++v) {
        if (!t.is_root(v)) {
            EXPECT_LT(position[t.parent(v)], position[v]);
        }
    }
}

TEST(RootedTreeTest, ForestWithMultipleRoots) {
    RootedTree t({0, 1, 0, 1});  // roots 0 and 1
    EXPECT_TRUE(t.is_root(0));
    EXPECT_TRUE(t.is_root(1));
    EXPECT_EQ(t.topological_order().size(), 4u);
}

TEST(RootedTreeTest, DetectsCycle) {
    EXPECT_THROW(RootedTree({1, 0}), std::invalid_argument);        // 2-cycle
    EXPECT_THROW(RootedTree({1, 2, 0}), std::invalid_argument);     // 3-cycle
    EXPECT_THROW(RootedTree({0, 2, 1}), std::invalid_argument);     // partial
}

TEST(RootedTreeTest, RejectsOutOfRangeParent) {
    EXPECT_THROW(RootedTree({0, 5}), std::out_of_range);
}

TEST(SteinerTest, ShortSegmentNeedsNoRelays) {
    EXPECT_TRUE(steinerize_segment({0, 0}, {5, 0}, 10.0).empty());
    EXPECT_EQ(steiner_section_count({0, 0}, {5, 0}, 10.0), 1u);
}

TEST(SteinerTest, ExactMultipleDoesNotOverSplit) {
    // Length 30 with hop 10 -> exactly 3 sections, 2 interior points.
    const auto pts = steinerize_segment({0, 0}, {30, 0}, 10.0);
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_NEAR(pts[0].x, 10.0, 1e-9);
    EXPECT_NEAR(pts[1].x, 20.0, 1e-9);
}

TEST(SteinerTest, SectionsAreEqualAndWithinHop) {
    const geom::Vec2 a{3.0, -7.0}, b{81.0, 44.0};
    const double hop = 13.0;
    const auto pts = steinerize_segment(a, b, hop);
    EXPECT_EQ(pts.size() + 1, steiner_section_count(a, b, hop));
    geom::Vec2 prev = a;
    double first = -1.0;
    for (const auto& p : pts) {
        const double seg = geom::distance(prev, p);
        EXPECT_LE(seg, hop + 1e-9);
        if (first < 0.0) first = seg;
        EXPECT_NEAR(seg, first, 1e-9);  // equal sections
        prev = p;
    }
    EXPECT_LE(geom::distance(prev, b), hop + 1e-9);
}

TEST(SteinerTest, RejectsNonPositiveHop) {
    EXPECT_THROW((void)steinerize_segment({0, 0}, {1, 0}, 0.0), std::invalid_argument);
}

/// Property: for random segments, steinerization uses the minimum number
/// of relays: ceil(len/hop) - 1.
class SteinerProperty : public ::testing::TestWithParam<double> {};

TEST_P(SteinerProperty, RelayCountIsMinimum) {
    std::mt19937_64 rng(17);
    std::uniform_real_distribution<double> coord(-400.0, 400.0);
    const double hop = GetParam();
    for (int trial = 0; trial < 100; ++trial) {
        const geom::Vec2 a{coord(rng), coord(rng)}, b{coord(rng), coord(rng)};
        const auto pts = steinerize_segment(a, b, hop);
        const double len = geom::distance(a, b);
        const auto expect =
            static_cast<std::size_t>(std::max(std::ceil(len / hop - 1e-9), 1.0)) - 1;
        EXPECT_EQ(pts.size(), expect) << "len=" << len << " hop=" << hop;
    }
}

INSTANTIATE_TEST_SUITE_P(HopLengths, SteinerProperty,
                         ::testing::Values(10.0, 30.0, 40.0, 75.0, 200.0));

}  // namespace
}  // namespace sag::graph
