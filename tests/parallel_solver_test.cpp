// Determinism contract of the parallel solver paths (docs/PERFORMANCE.md):
// fanning work out over sag::exec::ThreadPool must produce bit-identical
// results to the serial code path, independent of thread count and
// scheduling. The suite name matches the TSan CI shard (Parallel*), so
// every assertion here also runs under ThreadSanitizer.
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "sag/core/candidates.h"
#include "sag/core/feasibility.h"
#include "sag/core/ilpqc.h"
#include "sag/core/samc.h"
#include "sag/geometry/circle.h"
#include "sag/opt/hitting_set.h"
#include "sag/opt/set_cover.h"
#include "sag/sim/scenario_gen.h"

namespace sag {
namespace {

/// Random coverable set-cover instance (padded with singletons when the
/// random sets miss an element, so coverable() always holds).
opt::SetCoverInstance random_instance(std::mt19937& rng, std::size_t elements,
                                      std::size_t sets) {
    opt::SetCoverInstance inst;
    inst.element_count = elements;
    std::uniform_int_distribution<std::size_t> size_dist(1, 4);
    std::uniform_int_distribution<std::size_t> elem_dist(0, elements - 1);
    for (std::size_t s = 0; s < sets; ++s) {
        std::vector<bool> in(elements, false);
        std::vector<std::size_t> set;
        const std::size_t want = size_dist(rng);
        while (set.size() < want) {
            const std::size_t e = elem_dist(rng);
            if (!in[e]) {
                in[e] = true;
                set.push_back(e);
            }
        }
        inst.sets.push_back(std::move(set));
    }
    std::vector<bool> hit(elements, false);
    for (const auto& s : inst.sets) {
        for (const std::size_t e : s) hit[e] = true;
    }
    for (std::size_t e = 0; e < elements; ++e) {
        if (!hit[e]) inst.sets.push_back({e});
    }
    return inst;
}

void expect_same_result(const opt::SetCoverBnBResult& a,
                        const opt::SetCoverBnBResult& b) {
    EXPECT_EQ(a.feasible, b.feasible);
    EXPECT_EQ(a.proven_optimal, b.proven_optimal);
    EXPECT_EQ(a.chosen, b.chosen);
}

TEST(ParallelSolver, BnbMatchesSerialOnRandomInstances) {
    for (int seed = 1; seed <= 12; ++seed) {
        std::mt19937 rng(static_cast<unsigned>(seed));
        const auto inst = random_instance(rng, 10, 16);
        const auto serial = opt::solve_set_cover_bnb(inst, nullptr);
        opt::SetCoverBnBOptions par;
        par.threads = 4;
        const auto parallel =
            opt::solve_set_cover_bnb_parallel(inst, nullptr, par);
        expect_same_result(serial, parallel);
        ASSERT_TRUE(parallel.feasible) << "seed " << seed;
    }
}

TEST(ParallelSolver, BnbThreadsOneMatchesThreadsMany) {
    for (int seed = 1; seed <= 8; ++seed) {
        std::mt19937 rng(static_cast<unsigned>(seed) * 77u);
        const auto inst = random_instance(rng, 12, 18);
        opt::SetCoverBnBOptions one;
        one.threads = 1;
        opt::SetCoverBnBOptions many;
        many.threads = 4;
        const auto a = opt::solve_set_cover_bnb_parallel(inst, nullptr, one);
        const auto b = opt::solve_set_cover_bnb_parallel(inst, nullptr, many);
        expect_same_result(a, b);
        EXPECT_EQ(a.nodes_explored, b.nodes_explored);
    }
}

TEST(ParallelSolver, BnbStatefulOracleFactoryMatchesSerial) {
    // The oracle keeps per-instance mutable state (a memo cache), the
    // exact shape the factory contract exists for: each root branch gets
    // its own cache, and results must still match the serial solver's
    // single shared-cache oracle because the accept/reject rule is a pure
    // function of the (sorted) cover.
    const auto accepts = [](std::span<const std::size_t> chosen) {
        std::size_t sum = 0;
        for (const std::size_t s : chosen) sum += s;
        return sum % 3 != 0;
    };
    for (int seed = 1; seed <= 10; ++seed) {
        std::mt19937 rng(static_cast<unsigned>(seed) * 131u);
        const auto inst = random_instance(rng, 9, 14);

        std::map<std::vector<std::size_t>, bool> serial_memo;
        const opt::CoverOracle serial_oracle =
            [&](std::span<const std::size_t> chosen) {
                std::vector<std::size_t> key(chosen.begin(), chosen.end());
                const auto it = serial_memo.find(key);
                if (it != serial_memo.end()) return it->second;
                return serial_memo[key] = accepts(chosen);
            };
        const auto serial = opt::solve_set_cover_bnb(inst, serial_oracle);

        const opt::CoverOracleFactory factory = [&accepts]() {
            auto memo =
                std::make_shared<std::map<std::vector<std::size_t>, bool>>();
            return opt::CoverOracle([memo, &accepts](
                                        std::span<const std::size_t> chosen) {
                std::vector<std::size_t> key(chosen.begin(), chosen.end());
                const auto it = memo->find(key);
                if (it != memo->end()) return it->second;
                return (*memo)[key] = accepts(chosen);
            });
        };
        opt::SetCoverBnBOptions par;
        par.threads = 4;
        const auto parallel =
            opt::solve_set_cover_bnb_parallel(inst, factory, par);
        expect_same_result(serial, parallel);
    }
}

TEST(ParallelSolver, BnbInfeasibilityIsProvenInParallel) {
    std::mt19937 rng(7);
    const auto inst = random_instance(rng, 6, 8);
    const opt::CoverOracleFactory reject_all = []() {
        return opt::CoverOracle(
            [](std::span<const std::size_t>) { return false; });
    };
    opt::SetCoverBnBOptions par;
    par.threads = 4;
    const auto result = opt::solve_set_cover_bnb_parallel(inst, reject_all, par);
    EXPECT_FALSE(result.feasible);
    EXPECT_TRUE(result.proven_optimal);  // exhaustive search, proven
}

TEST(ParallelSolver, BnbBudgetExhaustionFallsBackToGreedy) {
    std::mt19937 rng(11);
    const auto inst = random_instance(rng, 14, 24);
    opt::SetCoverBnBOptions par;
    par.threads = 4;
    par.node_budget = 1;  // every branch exhausts immediately
    const auto result = opt::solve_set_cover_bnb_parallel(inst, nullptr, par);
    ASSERT_TRUE(result.feasible);  // anytime greedy fallback
    EXPECT_FALSE(result.proven_optimal);
}

TEST(ParallelSolver, HittingSetsBatchMatchesSerial) {
    std::mt19937 rng(3);
    std::uniform_real_distribution<double> coord(-120.0, 120.0);
    std::uniform_real_distribution<double> radius(15.0, 45.0);
    std::uniform_int_distribution<std::size_t> count(3, 10);
    std::vector<std::vector<geom::Circle>> zones;
    for (int z = 0; z < 8; ++z) {
        std::vector<geom::Circle> disks;
        const std::size_t n = count(rng);
        for (std::size_t d = 0; d < n; ++d) {
            disks.push_back({{coord(rng), coord(rng)}, radius(rng)});
        }
        zones.push_back(std::move(disks));
    }
    const auto serial = opt::geometric_hitting_sets(zones, {}, 1);
    const auto parallel = opt::geometric_hitting_sets(zones, {}, 4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t z = 0; z < zones.size(); ++z) {
        ASSERT_EQ(serial[z].size(), parallel[z].size()) << "zone " << z;
        for (std::size_t p = 0; p < serial[z].size(); ++p) {
            EXPECT_EQ(serial[z][p].x, parallel[z][p].x);
            EXPECT_EQ(serial[z][p].y, parallel[z][p].y);
        }
    }
}

void expect_same_plan(const core::CoveragePlan& a, const core::CoveragePlan& b) {
    EXPECT_EQ(a.feasible, b.feasible);
    ASSERT_EQ(a.rs_positions.size(), b.rs_positions.size());
    for (std::size_t i = 0; i < a.rs_positions.size(); ++i) {
        EXPECT_EQ(a.rs_positions[i].x, b.rs_positions[i].x);
        EXPECT_EQ(a.rs_positions[i].y, b.rs_positions[i].y);
    }
    ASSERT_EQ(a.assignment.size(), b.assignment.size());
    for (const ids::SsId j : a.assignment.ids()) {
        EXPECT_EQ(a.assignment[j], b.assignment[j]);
    }
}

TEST(ParallelSolver, SamcZoneFanOutIsDeterministic) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 24;
    for (int seed : {2, 9, 17}) {
        const core::Scenario s = sim::generate_scenario(cfg, seed);
        core::SamcOptions serial_opts;
        core::SamcOptions par_opts;
        par_opts.threads = 4;
        const auto a = core::solve_samc(s, serial_opts);
        const auto b = core::solve_samc(s, par_opts);
        EXPECT_EQ(a.zones.size(), b.zones.size());
        expect_same_plan(a.plan, b.plan);
    }
}

TEST(ParallelSolver, IlpqcParallelBnbMatchesSerial) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 400.0;
    cfg.subscriber_count = 12;
    for (int seed : {21, 34}) {
        const core::Scenario s = sim::generate_scenario(cfg, seed);
        const auto cands = core::iac_candidates(s);
        core::IlpqcOptions par_opts;
        par_opts.threads = 4;
        const auto serial = core::solve_ilpqc_coverage(s, cands);
        const auto parallel = core::solve_ilpqc_coverage(s, cands, par_opts);
        EXPECT_EQ(serial.proven_optimal, parallel.proven_optimal);
        expect_same_plan(serial, parallel);
        if (parallel.feasible) {
            EXPECT_TRUE(core::verify_coverage_max_power(s, parallel).feasible);
        }
    }
}

}  // namespace
}  // namespace sag
