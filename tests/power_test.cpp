#include <numeric>

#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/power.h"
#include "sag/ids/ids.h"
#include "sag/core/samc.h"
#include "sag/sim/scenario_gen.h"
#include "sag/wireless/two_ray.h"

namespace sag::core {
namespace {

using ids::RsId;
using ids::SsId;

Scenario base_scenario() {
    Scenario s;
    s.field = geom::Rect::centered_square(500.0);
    s.base_stations = {{{0.0, 0.0}}};
    s.snr_threshold_db = units::Decibel{-15.0};
    // Hand-computed floor tests use the pure interference-limited model;
    // generator-based tests keep the default ambient noise.
    s.radio.snr_ambient_noise = units::Watt{0.0};
    return s;
}

CoveragePlan plan_of(std::vector<geom::Vec2> rs,
                     std::initializer_list<RsId> assign) {
    CoveragePlan p;
    p.rs_positions = std::move(rs);
    p.assignment = ids::IdVec<SsId, RsId>(assign);
    p.feasible = true;
    return p;
}

TEST(CoveragePowerFloorTest, MatchesHandComputation) {
    Scenario s = base_scenario();
    s.subscribers = {{{30.0, 0.0}, 35.0}};
    const auto plan = plan_of({{0.0, 0.0}}, {RsId{0}});
    // Required received power defined at 35 m; access link is 30 m, so the
    // floor is Pmax * (30/35)^alpha.
    const units::Watt expect =
        s.radio.max_power * std::pow(30.0 / 35.0, s.radio.alpha);
    EXPECT_NEAR(coverage_power_floor(s, plan, RsId{0}).watts(), expect.watts(), 1e-9);
}

TEST(CoveragePowerFloorTest, TakesMaxOverServedSubscribers) {
    Scenario s = base_scenario();
    s.subscribers = {{{30.0, 0.0}, 35.0}, {{-10.0, 0.0}, 35.0}};
    const auto plan = plan_of({{0.0, 0.0}}, {RsId{0}, RsId{0}});
    // The 30 m subscriber dominates the 10 m one.
    const units::Watt expect =
        s.radio.max_power * std::pow(30.0 / 35.0, s.radio.alpha);
    EXPECT_NEAR(coverage_power_floor(s, plan, RsId{0}).watts(), expect.watts(), 1e-9);
}

TEST(CoveragePowerFloorTest, UnusedRsHasZeroFloor) {
    Scenario s = base_scenario();
    s.subscribers = {{{30.0, 0.0}, 35.0}};
    const auto plan = plan_of({{0.0, 0.0}, {200.0, 0.0}}, {RsId{0}});
    EXPECT_DOUBLE_EQ(coverage_power_floor(s, plan, RsId{1}).watts(), 0.0);
}

TEST(SnrPowerFloorTest, ZeroWithoutInterferers) {
    Scenario s = base_scenario();
    s.subscribers = {{{30.0, 0.0}, 35.0}};
    const auto plan = plan_of({{0.0, 0.0}}, {RsId{0}});
    const double powers[] = {50.0};
    EXPECT_DOUBLE_EQ(snr_power_floor(s, plan, RsId{0}, powers).watts(), 0.0);
}

TEST(SnrPowerFloorTest, ScalesWithInterferencePower) {
    Scenario s = base_scenario();
    s.subscribers = {{{-50.0, 0.0}, 35.0}, {{50.0, 0.0}, 35.0}};
    const auto plan = plan_of({{-50.0, 0.0}, {50.0, 0.0}}, {RsId{0}, RsId{1}});
    const double strong[] = {50.0, 50.0};
    const double weak[] = {50.0, 5.0};
    // RS0's requirement is driven by RS1's interference at sub 0;
    // reducing RS1's power by 10x reduces the floor by 10x.
    EXPECT_NEAR(snr_power_floor(s, plan, RsId{0}, strong).watts(),
                10.0 * snr_power_floor(s, plan, RsId{0}, weak).watts(), 1e-9);
}

TEST(ProTest, SettlesAtCoverageFloorsWhenNoConflict) {
    Scenario s = base_scenario();
    s.subscribers = {{{-150.0, 0.0}, 35.0}, {{150.0, 0.0}, 35.0}};
    const auto plan = plan_of({{-150.0, 0.0}, {150.0, 0.0}}, {RsId{0}, RsId{1}});
    const auto pro = allocate_power_pro(s, plan);
    ASSERT_TRUE(pro.feasible);
    // RSs sit on their subscribers: tiny coverage floor, SNR trivial.
    EXPECT_NEAR(pro.powers[0], coverage_power_floor(s, plan, RsId{0}).watts(), 1e-9);
    EXPECT_NEAR(pro.powers[1], coverage_power_floor(s, plan, RsId{1}).watts(), 1e-9);
}

TEST(ProTest, NeverBelowOptimalNorAboveBaseline) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 20;
    const Scenario s = sim::generate_scenario(cfg, 13);
    const auto plan = solve_samc(s).plan;
    ASSERT_TRUE(plan.feasible);
    const auto pro = allocate_power_pro(s, plan);
    const auto opt = allocate_power_optimal(s, plan);
    const auto base = allocate_power_baseline(s, plan);
    ASSERT_TRUE(pro.feasible);
    ASSERT_TRUE(opt.feasible);
    EXPECT_GE(pro.total, opt.total - 1e-6);   // PRO >= optimum
    EXPECT_LE(pro.total, base.total + 1e-6);  // PRO <= all-Pmax baseline
}

TEST(ProTest, ResultSatisfiesVerifier) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 800.0;
    cfg.subscriber_count = 30;
    const Scenario s = sim::generate_scenario(cfg, 29);
    const auto plan = solve_samc(s).plan;
    ASSERT_TRUE(plan.feasible);
    const auto pro = allocate_power_pro(s, plan);
    ASSERT_TRUE(pro.feasible);
    EXPECT_TRUE(verify_coverage(s, plan, pro.powers).feasible);
}

TEST(OptimalPowerTest, FixedPointMatchesLpSolver) {
    for (const int seed : {3, 11, 19, 27}) {
        sim::GeneratorConfig cfg;
        cfg.field_side = 500.0;
        cfg.subscriber_count = 15;
        const Scenario s = sim::generate_scenario(cfg, seed);
        const auto plan = solve_samc(s).plan;
        ASSERT_TRUE(plan.feasible);
        const auto fp = allocate_power_optimal(s, plan);
        const auto lp = allocate_power_optimal_lp(s, plan);
        ASSERT_TRUE(fp.feasible) << "seed " << seed;
        ASSERT_TRUE(lp.feasible) << "seed " << seed;
        EXPECT_NEAR(fp.total, lp.total, 1e-4 * std::max(1.0, lp.total))
            << "seed " << seed;
    }
}

TEST(OptimalPowerTest, OptimalIsComponentWiseMinimal) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 18;
    const Scenario s = sim::generate_scenario(cfg, 41);
    const auto plan = solve_samc(s).plan;
    ASSERT_TRUE(plan.feasible);
    const auto opt = allocate_power_optimal(s, plan);
    ASSERT_TRUE(opt.feasible);
    // Shaving 1% off any single RS breaks some constraint of its own.
    for (std::size_t i = 0; i < plan.rs_count(); ++i) {
        if (opt.powers[i] < 1e-12) continue;
        auto shaved = opt.powers;
        shaved[i] *= 0.99;
        const double floor_i =
            coverage_power_floor(s, plan, RsId{i}).watts();
        const double snr_i = snr_power_floor(s, plan, RsId{i}, shaved).watts();
        EXPECT_LT(shaved[i], std::max(floor_i, snr_i) + 1e-9) << "rs " << i;
    }
}

TEST(BaselinePowerTest, AllAtMaxPower) {
    Scenario s = base_scenario();
    s.subscribers = {{{-50.0, 0.0}, 35.0}, {{50.0, 0.0}, 35.0}};
    const auto plan = plan_of({{-50.0, 0.0}, {50.0, 0.0}}, {RsId{0}, RsId{1}});
    const auto base = allocate_power_baseline(s, plan);
    EXPECT_TRUE(base.feasible);
    EXPECT_DOUBLE_EQ(base.total, 100.0);
    for (const double p : base.powers) EXPECT_DOUBLE_EQ(p, 50.0);
}

/// Property: the (1+phi) bound of Theorem 1 — PRO never exceeds the
/// optimum by more than the sum of (Psnr - Pc) gaps, and in practice sits
/// within a modest factor. We assert PRO <= 1.5 * OPT across seeds (far
/// looser than observed, tight enough to catch regressions).
class ProApproximationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ProApproximationProperty, WithinApproximationBand) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 22;
    const Scenario s = sim::generate_scenario(cfg, GetParam());
    const auto plan = solve_samc(s).plan;
    if (!plan.feasible) GTEST_SKIP();
    const auto pro = allocate_power_pro(s, plan);
    const auto opt = allocate_power_optimal(s, plan);
    ASSERT_TRUE(pro.feasible);
    ASSERT_TRUE(opt.feasible);
    EXPECT_LE(pro.total, 1.5 * opt.total + 1e-9);
    EXPECT_GE(pro.total, opt.total - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProApproximationProperty,
                         ::testing::Values(2, 4, 6, 8, 10, 12));

}  // namespace
}  // namespace sag::core
