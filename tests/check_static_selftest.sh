#!/usr/bin/env bash
# Self-test for the tools/check_static.sh domain lints, registered as the
# `check_static_selftest` ctest case.
#
# A lint that never fires is indistinguishable from a lint that works, so
# this harness proves each grep lint both accepts and rejects: it copies
# the script (and allowlists) into a temp tree, seeds exactly one
# violation per lint (§2 bare-double power param, §3 raw size_t entity
# index, §4 bare-double gain param, §5a ambient entropy, §5b unordered
# container in a solver path, §6 raw std::mutex outside src/exec), and
# asserts the script fails with that lint's message — then asserts it
# passes on the clean temp tree AND on the real repository. The clang-tidy
# pass never runs here (the temp build dir doesn't exist), so the
# self-test exercises the grep lints identically on every toolchain.
set -u
cd "$(dirname "$0")/.."
repo_root=$(pwd)

fail=0
err() { echo "check_static_selftest: $*" >&2; fail=1; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Minimal clean tree: the script cds to its own parent, so tools/ must
# hold the script and the allowlists with their repo-relative names.
mkdir -p "$tmp/tools" "$tmp/src/core/include/sag/core" "$tmp/src/core/src" \
         "$tmp/src/opt/src" "$tmp/src/sim/src" "$tmp/src/exec/src"
cp tools/check_static.sh "$tmp/tools/"
cp tools/check_static_allowlist.txt tools/check_determinism_allowlist.txt \
   tools/check_concurrency_allowlist.txt "$tmp/tools/"
cat > "$tmp/src/core/src/clean.cpp" <<'EOF'
// A benign file: typed parameters, seeded randomness, ordered containers.
#include <cstddef>
namespace sag::core {
int clean_helper(int subscriber_count) { return subscriber_count + 1; }
}  // namespace sag::core
EOF

run_script() {  # runs the copied script in the temp tree, captures output
    out=$( cd "$tmp" && bash tools/check_static.sh no-such-build-dir 2>&1 )
    status=$?
}

# --- positive control: the clean temp tree passes --------------------------
run_script
if [ "$status" -ne 0 ]; then
    err "clean temp tree should pass, got exit $status:"; echo "$out" >&2
fi

# --- one seeded violation per lint, each must fail with its message --------
# expect_reject <case-name> <violation-file> <message-fragment> <<'EOF' ... EOF
expect_reject() {
    local name=$1 file=$2 fragment=$3
    mkdir -p "$tmp/$(dirname "$file")"
    cat > "$tmp/$file"
    run_script
    if [ "$status" -eq 0 ]; then
        err "$name: seeded violation in $file was NOT caught"
    elif ! echo "$out" | grep -qF "$fragment"; then
        err "$name: failed, but without the expected message '$fragment':"
        echo "$out" >&2
    fi
    rm -f "$tmp/$file"
}

expect_reject "units-lint" "src/core/src/bad_units.cpp" \
    "bare-double power/SNR parameter" <<'EOF'
namespace sag::core {
double scale(double tx_power, double factor) { return tx_power * factor; }
}  // namespace sag::core
EOF

expect_reject "entity-index-lint" "src/core/include/sag/core/bad_ids.h" \
    "raw size_t entity-index parameter" <<'EOF'
#pragma once
#include <cstddef>
namespace sag::core {
void move_relay(std::size_t rs_idx);
}  // namespace sag::core
EOF

expect_reject "gain-lint" "src/opt/src/bad_gain.cpp" \
    "bare-double path-gain parameter" <<'EOF'
namespace sag::opt {
double attenuate(double path_gain) { return path_gain * 0.5; }
}  // namespace sag::opt
EOF

expect_reject "determinism-lint-entropy" "src/sim/src/bad_entropy.cpp" \
    "nondeterminism source" <<'EOF'
#include <random>
namespace sag::sim {
unsigned roll() {
    std::random_device rd;
    std::mt19937 gen;
    return gen() ^ rd();
}
}  // namespace sag::sim
EOF

expect_reject "determinism-lint-unordered" "src/opt/src/bad_unordered.cpp" \
    "unordered container(s) in solver result-construction paths" <<'EOF'
#include <unordered_map>
#include <vector>
namespace sag::opt {
std::vector<int> chosen_order(const std::unordered_map<int, int>& scores) {
    std::vector<int> out;
    for (const auto& [k, v] : scores) out.push_back(k);
    return out;
}
}  // namespace sag::opt
EOF

expect_reject "concurrency-confinement-lint" "src/sim/src/bad_thread.cpp" \
    "raw threading primitive(s) outside src/exec/" <<'EOF'
#include <mutex>
namespace sag::sim {
std::mutex g_lock;
void touch() { const std::lock_guard<std::mutex> lock(g_lock); }
}  // namespace sag::sim
EOF

# The confinement lint must NOT fire on src/exec/ itself.
cat > "$tmp/src/exec/src/pool_ok.cpp" <<'EOF'
#include <mutex>
#include <thread>
namespace sag::exec {
std::mutex g_ok;
}  // namespace sag::exec
EOF
run_script
if [ "$status" -ne 0 ]; then
    err "src/exec/ exemption broken — raw primitives there must pass:"
    echo "$out" >&2
fi
rm -f "$tmp/src/exec/src/pool_ok.cpp"

# --- allowlist mechanics: an allowlisted violation passes ------------------
cat > "$tmp/src/sim/src/allowlisted.cpp" <<'EOF'
#include <mutex>
namespace sag::sim { std::mutex g_special; }
EOF
# Whole-file exemption: path prefix matches every hit in the file.
echo "src/sim/src/allowlisted.cpp" >> "$tmp/tools/check_concurrency_allowlist.txt"
run_script
if [ "$status" -ne 0 ]; then
    err "allowlisted confinement hit should pass, got exit $status:"
    echo "$out" >&2
fi
rm -f "$tmp/src/sim/src/allowlisted.cpp"

# --- the real tree passes (lint-only mode) ---------------------------------
real_out=$(bash "$repo_root/tools/check_static.sh" no-such-build-dir 2>&1)
if [ $? -ne 0 ]; then
    err "the real repository tree fails the lints:"; echo "$real_out" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "check_static_selftest: FAILED" >&2
    exit 1
fi
echo "check_static_selftest: OK (6 lints reject seeded violations, clean trees pass, allowlist honored)"
