#!/usr/bin/env bash
# Self-test for the tools/check_static.sh static gate, registered as the
# `check_static_selftest` ctest case.
#
# A lint that never fires is indistinguishable from a lint that works, so
# this harness proves each rule both accepts and rejects: it copies the
# script, the sag_lint engine, and the allowlists into a temp tree with
# its own mini layering manifest, seeds exactly one violation per rule,
# and asserts the gate fails with that rule's message — then asserts it
# passes on the clean temp tree AND on the real repository. Covered:
#
#   * units-param / ids-param / gain-param — plain violations, plus the
#     evasions the grep lints could not see: a typedef'd/using-aliased
#     type name, and (as accepts) signatures quoted in comments/strings;
#   * raw-escape — an unjustified .raw() fails, a `// SAG_RAW_OK:` one
#     passes;
#   * layering — an undeclared include edge fails, a declared-but-unused
#     manifest edge (dead edge) fails, and deleting a module from the
#     REAL tools/layering.json makes the real tree fail (every manifest
#     entry is load-bearing);
#   * dead-suppression — an allowlist entry that matches nothing fails,
#     and so does an entry without a `rule-id:` prefix;
#   * det-entropy / det-unordered / conc-raw — the grep lints, their
#     src/exec exemption, and rule-named allowlist mechanics;
#   * degradation policy — a missing compilation database passes locally
#     but hard-fails under CI=true.
#
# The clang-tidy pass never runs here (the temp build dir doesn't
# exist), and CI is stripped from the environment for the temp-tree runs
# so the strict-mode policy is exercised only by its dedicated case.
set -u
cd "$(dirname "$0")/.."
repo_root=$(pwd)

fail=0
err() { echo "check_static_selftest: $*" >&2; fail=1; }

have_python3=0
command -v python3 >/dev/null 2>&1 && have_python3=1

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# Minimal clean tree: the script cds to its own parent, so tools/ must
# hold the script, the sag_lint engine, the layering manifest, and the
# allowlists with their repo-relative names.
mkdir -p "$tmp/tools" "$tmp/src/core/include/sag/core" "$tmp/src/core/src" \
         "$tmp/src/opt/src" "$tmp/src/sim/src" "$tmp/src/exec/src"
cp tools/check_static.sh "$tmp/tools/"
cp -r tools/sag_lint "$tmp/tools/"
cp tools/check_static_allowlist.txt tools/check_determinism_allowlist.txt \
   tools/check_concurrency_allowlist.txt "$tmp/tools/"
# The temp tree gets its own manifest (the real one's modules don't
# exist here, and its edges would all be dead). No deps: every declared
# cross-module include in a seeded file is an illegal edge.
cat > "$tmp/tools/layering.json" <<'EOF'
{
  "modules": {
    "core": { "deps": [] },
    "opt": { "deps": [] },
    "sim": { "deps": [] },
    "exec": { "deps": [] }
  },
  "apex": ["tools"]
}
EOF
cat > "$tmp/src/core/src/clean.cpp" <<'EOF'
// A benign file: typed parameters, seeded randomness, ordered containers.
#include <cstddef>
namespace sag::core {
int clean_helper(int subscriber_count) { return subscriber_count + 1; }
}  // namespace sag::core
EOF

# CI is stripped so GitHub Actions' CI=true doesn't flip every temp-tree
# run into strict mode (which would fail on the nonexistent build dir);
# the strict policy has its own case below.
run_script() {  # runs the copied script in the temp tree, captures output
    out=$( cd "$tmp" && env -u CI bash tools/check_static.sh no-such-build-dir 2>&1 )
    status=$?
}

# --- positive control: the clean temp tree passes --------------------------
run_script
if [ "$status" -ne 0 ]; then
    err "clean temp tree should pass, got exit $status:"; echo "$out" >&2
fi

# --- one seeded violation per rule, each must fail with its message --------
# expect_reject <case-name> <violation-file> <message-fragment> <<'EOF' ... EOF
expect_reject() {
    local name=$1 file=$2 fragment=$3
    mkdir -p "$tmp/$(dirname "$file")"
    cat > "$tmp/$file"
    run_script
    if [ "$status" -eq 0 ]; then
        err "$name: seeded violation in $file was NOT caught"
    elif ! echo "$out" | grep -qF "$fragment"; then
        err "$name: failed, but without the expected message '$fragment':"
        echo "$out" >&2
    fi
    rm -f "$tmp/$file"
}

# expect_accept <case-name> <file> <<'EOF' ... EOF — the gate must stay green.
expect_accept() {
    local name=$1 file=$2
    mkdir -p "$tmp/$(dirname "$file")"
    cat > "$tmp/$file"
    run_script
    if [ "$status" -ne 0 ]; then
        err "$name: benign file $file was rejected:"; echo "$out" >&2
    fi
    rm -f "$tmp/$file"
}

expect_reject "units-lint" "src/core/src/bad_units.cpp" \
    "bare-double power/SNR parameter" <<'EOF'
namespace sag::core {
double scale(double tx_power, double factor) { return tx_power * factor; }
}  // namespace sag::core
EOF

expect_reject "entity-index-lint" "src/core/include/sag/core/bad_ids.h" \
    "raw size_t entity-index parameter" <<'EOF'
#pragma once
#include <cstddef>
namespace sag::core {
void move_relay(std::size_t rs_idx);
}  // namespace sag::core
EOF

expect_reject "gain-lint" "src/opt/src/bad_gain.cpp" \
    "bare-double path-gain parameter" <<'EOF'
namespace sag::opt {
double attenuate(double path_gain) { return path_gain * 0.5; }
}  // namespace sag::opt
EOF

expect_reject "determinism-lint-entropy" "src/sim/src/bad_entropy.cpp" \
    "nondeterminism source" <<'EOF'
#include <random>
namespace sag::sim {
unsigned roll() {
    std::random_device rd;
    std::mt19937 gen;
    return gen() ^ rd();
}
}  // namespace sag::sim
EOF

expect_reject "determinism-lint-unordered" "src/opt/src/bad_unordered.cpp" \
    "unordered container(s) in solver result-construction paths" <<'EOF'
#include <unordered_map>
#include <vector>
namespace sag::opt {
std::vector<int> chosen_order(const std::unordered_map<int, int>& scores) {
    std::vector<int> out;
    for (const auto& [k, v] : scores) out.push_back(k);
    return out;
}
}  // namespace sag::opt
EOF

expect_reject "concurrency-confinement-lint" "src/sim/src/bad_thread.cpp" \
    "raw threading primitive(s) outside src/exec/" <<'EOF'
#include <mutex>
namespace sag::sim {
std::mutex g_lock;
void touch() { const std::lock_guard<std::mutex> lock(g_lock); }
}  // namespace sag::sim
EOF

# The confinement lint must NOT fire on src/exec/ itself.
expect_accept "exec-exemption" "src/exec/src/pool_ok.cpp" <<'EOF'
#include <mutex>
#include <thread>
namespace sag::exec {
std::mutex g_ok;
}  // namespace sag::exec
EOF

# --- sag_lint-only rules (need python3; CI always has it) ------------------
if [ "$have_python3" -eq 1 ]; then
    # A typedef cannot rename `double` past the units rule: the token
    # engine resolves project-wide aliases before matching. The old grep
    # lint was blind to exactly this.
    expect_reject "units-lint-typedef" "src/core/src/bad_alias.cpp" \
        "bare-double power/SNR parameter" <<'EOF'
namespace sag::core {
using level_t = double;
double scale(level_t rx_power) { return rx_power * 2.0; }
}  // namespace sag::core
EOF

    # Same for an aliased size_t entity index in a solver header.
    expect_reject "entity-index-lint-alias" \
        "src/core/include/sag/core/bad_ids_alias.h" \
        "raw size_t entity-index parameter" <<'EOF'
#pragma once
#include <cstddef>
namespace sag::core {
typedef std::size_t slot_t;
void move_relay(slot_t rs_idx);
}  // namespace sag::core
EOF

    # A signature quoted in a comment or a string is not a violation:
    # the token engine strips both before matching (the classic grep
    # false positive, inverted into an accept case).
    expect_accept "comment-string-immunity" "src/core/src/quoted.cpp" <<'EOF'
// Documented anti-pattern: double scale(double tx_power, double snr);
namespace sag::core {
const char* usage() { return "usage: scale(double tx_power)"; }
}  // namespace sag::core
EOF

    # An unjustified strong-type escape hatch fails ...
    expect_reject "raw-escape-lint" "src/core/src/bad_raw.cpp" \
        "unjustified strong-type escape hatch" <<'EOF'
namespace sag::core {
template <typename V>
double first(const V& powers) { return powers.raw()[0]; }
}  // namespace sag::core
EOF

    # ... and the same call with a SAG_RAW_OK justification passes.
    expect_accept "raw-escape-justified" "src/core/src/ok_raw.cpp" <<'EOF'
namespace sag::core {
template <typename V>
double first(const V& powers) {
    // SAG_RAW_OK: serialization boundary, bulk column handed to io.
    return powers.raw()[0];
}
}  // namespace sag::core
EOF

    # An include edge the manifest does not declare is illegal.
    expect_reject "layering-illegal-edge" "src/opt/src/bad_edge.cpp" \
        "illegal include edge" <<'EOF'
#include "sag/core/clean.h"
namespace sag::opt {}
EOF

    # A commented-out include is NOT an edge.
    expect_accept "layering-comment-immunity" "src/opt/src/ok_edge.cpp" <<'EOF'
// #include "sag/core/clean.h"
namespace sag::opt {}
EOF

    # A declared edge no include exercises is dead: the manifest can
    # never drift looser than the code.
    sed 's/"core": { "deps": \[\] }/"core": { "deps": ["opt"] }/' \
        "$tmp/tools/layering.json" > "$tmp/tools/layering.json.tmp"
    mv "$tmp/tools/layering.json.tmp" "$tmp/tools/layering.json"
    run_script
    if [ "$status" -eq 0 ]; then
        err "layering-dead-edge: unused manifest edge core->opt NOT caught"
    elif ! echo "$out" | grep -qF "dead layering edge"; then
        err "layering-dead-edge: failed without 'dead layering edge':"
        echo "$out" >&2
    fi
    sed 's/"core": { "deps": \["opt"\] }/"core": { "deps": [] }/' \
        "$tmp/tools/layering.json" > "$tmp/tools/layering.json.tmp"
    mv "$tmp/tools/layering.json.tmp" "$tmp/tools/layering.json"

    # An allowlist entry that matches nothing is dead and fails the gate.
    echo "units-param: src/core/src/no_such_file.cpp" \
        >> "$tmp/tools/check_static_allowlist.txt"
    run_script
    if [ "$status" -eq 0 ]; then
        err "dead-suppression: stale allowlist entry NOT caught"
    elif ! echo "$out" | grep -qF "dead allowlist entry"; then
        err "dead-suppression: failed without 'dead allowlist entry':"
        echo "$out" >&2
    fi
    cp tools/check_static_allowlist.txt "$tmp/tools/"

    # An entry that names no rule is a format error.
    echo "src/core/src/whatever.cpp" >> "$tmp/tools/check_static_allowlist.txt"
    run_script
    if [ "$status" -eq 0 ]; then
        err "suppression-format: rule-less allowlist entry NOT caught"
    elif ! echo "$out" | grep -qF "must name the rule"; then
        err "suppression-format: failed without 'must name the rule':"
        echo "$out" >&2
    fi
    cp tools/check_static_allowlist.txt "$tmp/tools/"
else
    echo "check_static_selftest: python3 not found; sag_lint-only cases" \
         "skipped (grep fallback covered above)" >&2
fi

# --- allowlist mechanics: an allowlisted violation passes ------------------
cat > "$tmp/src/sim/src/allowlisted.cpp" <<'EOF'
#include <mutex>
namespace sag::sim { std::mutex g_special; }
EOF
# Whole-file exemption: the rule-named path fragment matches every hit
# in the file.
echo "conc-raw: src/sim/src/allowlisted.cpp" \
    >> "$tmp/tools/check_concurrency_allowlist.txt"
run_script
if [ "$status" -ne 0 ]; then
    err "allowlisted confinement hit should pass, got exit $status:"
    echo "$out" >&2
fi
rm -f "$tmp/src/sim/src/allowlisted.cpp"
cp tools/check_concurrency_allowlist.txt "$tmp/tools/"

# A dead entry in a grep-lint allowlist (the file it excused is gone)
# fails even without python3 — the shell validates those itself.
echo "conc-raw: src/sim/src/long_gone.cpp" \
    >> "$tmp/tools/check_concurrency_allowlist.txt"
run_script
if [ "$status" -eq 0 ]; then
    err "grep-lint dead allowlist entry NOT caught"
elif ! echo "$out" | grep -qF "dead allowlist entry"; then
    err "grep-lint dead entry failed without 'dead allowlist entry':"
    echo "$out" >&2
fi
cp tools/check_concurrency_allowlist.txt "$tmp/tools/"

# --- degradation policy: missing compile DB is fatal under CI --------------
out=$( cd "$tmp" && env CI=true bash tools/check_static.sh no-such-build-dir 2>&1 )
if [ $? -eq 0 ]; then
    err "CI=true with no compilation database must fail (silent degradation):"
    echo "$out" >&2
fi
out=$( cd "$tmp" && env -u CI bash tools/check_static.sh --strict no-such-build-dir 2>&1 )
if [ $? -eq 0 ]; then
    err "--strict with no compilation database must fail:"
    echo "$out" >&2
fi

# --- the real layering manifest is load-bearing ----------------------------
# Deleting any module from tools/layering.json must fail the real tree:
# its files become undeclared and every include of it an unknown module.
if [ "$have_python3" -eq 1 ]; then
    sed '/"wireless": {/d' tools/layering.json > "$tmp/mutated_layering.json"
    mut_out=$(python3 tools/sag_lint --build-dir no-such-build-dir \
                  --layering "$tmp/mutated_layering.json" 2>&1)
    if [ $? -eq 0 ]; then
        err "real tree passed with module 'wireless' deleted from the manifest:"
        echo "$mut_out" >&2
    fi
    # And so must deleting a single dep edge (core -> wireless).
    sed 's/"graph", "ids", "obs", "opt", "units", "wireless"/"graph", "ids", "obs", "opt", "units"/' \
        tools/layering.json > "$tmp/mutated_layering.json"
    mut_out=$(python3 tools/sag_lint --build-dir no-such-build-dir \
                  --layering "$tmp/mutated_layering.json" 2>&1)
    if [ $? -eq 0 ]; then
        err "real tree passed with edge core->wireless deleted from the manifest:"
        echo "$mut_out" >&2
    fi
fi

# --- the real tree passes (lint-only mode) ---------------------------------
real_out=$(env -u CI bash "$repo_root/tools/check_static.sh" no-such-build-dir 2>&1)
if [ $? -ne 0 ]; then
    err "the real repository tree fails the lints:"; echo "$real_out" >&2
fi

if [ "$fail" -ne 0 ]; then
    echo "check_static_selftest: FAILED" >&2
    exit 1
fi
echo "check_static_selftest: OK (param/raw-escape/layering/determinism/" \
     "concurrency rules reject seeded violations, dead suppressions and" \
     "dead manifest edges fail, clean trees pass)"
