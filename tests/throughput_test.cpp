#include <gtest/gtest.h>

#include "sag/core/samc.h"
#include "sag/core/throughput.h"
#include "sag/core/ucra.h"
#include "sag/ids/ids.h"
#include "sag/sim/scenario_gen.h"
#include "sag/wireless/link.h"
#include "sag/wireless/two_ray.h"

namespace sag::core {
namespace {

using ids::RsId;
using ids::SsId;

Scenario linear_scenario() {
    Scenario s;
    s.field = geom::Rect::centered_square(500.0);
    s.subscribers = {{{200.0, 0.0}, 40.0}};
    s.base_stations = {{{-200.0, 0.0}}};
    return s;
}

CoveragePlan plan_of(std::vector<geom::Vec2> rs,
                     std::initializer_list<RsId> assign) {
    CoveragePlan p;
    p.rs_positions = std::move(rs);
    p.assignment = ids::IdVec<SsId, RsId>(assign);
    p.feasible = true;
    return p;
}

TEST(ThroughputTest, SingleChainLoadsEqualSubscriberRate) {
    const Scenario s = linear_scenario();
    const auto cov = plan_of({{200.0, 0.0}}, {RsId{0}});
    auto plan = solve_mbmc(s, cov);
    allocate_power_max(s, plan);
    const auto report = analyze_throughput(s, cov, plan);
    const double rate = wireless::shannon_capacity(s.radio, s.min_rx_power(SsId{0}));
    EXPECT_NEAR(report.total_offered_bps, rate, 1e-6);
    ASSERT_FALSE(report.links.empty());
    for (const auto& link : report.links) {
        EXPECT_NEAR(link.offered_bps, rate, 1e-6);  // one flow everywhere
        EXPECT_GT(link.capacity_bps, 0.0);
    }
}

TEST(ThroughputTest, MaxPowerChainIsSustainable) {
    // Every hop is at most the subscriber's distance request, so capacity
    // at P_max is at least the subscriber's own rate requirement.
    const Scenario s = linear_scenario();
    const auto cov = plan_of({{200.0, 0.0}}, {RsId{0}});
    auto plan = solve_mbmc(s, cov);
    allocate_power_max(s, plan);
    const auto report = analyze_throughput(s, cov, plan);
    EXPECT_TRUE(report.sustainable);
    EXPECT_LE(report.max_utilization, 1.0 + 1e-9);
    EXPECT_EQ(report.overloaded_links, 0u);
}

TEST(ThroughputTest, SharedTrunkAggregatesFlows) {
    // Two coverage RSs in a line: the trunk carries both rates.
    Scenario s = linear_scenario();
    s.field = geom::Rect::centered_square(900.0);
    s.subscribers = {{{50.0, 0.0}, 40.0}, {{350.0, 0.0}, 40.0}};
    s.base_stations = {{{-250.0, 0.0}}};
    const auto cov = plan_of({{50.0, 0.0}, {350.0, 0.0}}, {RsId{0}, RsId{1}});
    auto plan = solve_mbmc(s, cov);
    allocate_power_max(s, plan);
    const auto report = analyze_throughput(s, cov, plan);
    const double r0 = wireless::shannon_capacity(s.radio, s.min_rx_power(SsId{0}));
    const double r1 = wireless::shannon_capacity(s.radio, s.min_rx_power(SsId{1}));
    // The near coverage RS's uplink must carry r0 + r1.
    const std::size_t near_node = s.base_stations.size() + 0;
    bool found = false;
    for (const auto& link : report.links) {
        if (link.child == near_node) {
            EXPECT_NEAR(link.offered_bps, r0 + r1, 1e-6);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ThroughputTest, PaperUcpoOverloadsSharedTrunksAndAggregationHelps) {
    // UCPO (Algorithm 8) sizes each chain for its own RS's strictest
    // subscriber; a shared trunk carrying two subscribers' traffic must
    // then run above capacity. The aggregation-aware variant raises the
    // chain power and cuts the overload — but cannot eliminate it: in
    // this model a subscriber's rate *saturates* a max-length hop at
    // P_max by construction (the rate<->distance equivalence), so a
    // trunk carrying two such flows needs shorter hops, not just more
    // power. The analysis exposes exactly that.
    Scenario s = linear_scenario();
    s.field = geom::Rect::centered_square(900.0);
    s.subscribers = {{{50.0, 0.0}, 40.0}, {{350.0, 0.0}, 40.0}};
    s.base_stations = {{{-250.0, 0.0}}};
    const auto cov = plan_of({{50.0, 0.0}, {350.0, 0.0}}, {RsId{0}, RsId{1}});

    auto paper = solve_mbmc(s, cov);
    allocate_power_ucpo(s, cov, paper);
    const auto paper_report = analyze_throughput(s, cov, paper);
    EXPECT_GT(paper_report.max_utilization, 1.0);
    EXPECT_FALSE(paper_report.sustainable);

    auto aggregated = solve_mbmc(s, cov);
    allocate_power_ucpo_aggregated(s, cov, aggregated);
    const auto agg_report = analyze_throughput(s, cov, aggregated);
    EXPECT_LT(agg_report.max_utilization, paper_report.max_utilization);
    EXPECT_GT(agg_report.rate_headroom(), paper_report.rate_headroom());
}

TEST(ThroughputTest, HeadroomIsInverseUtilization) {
    const Scenario s = linear_scenario();
    const auto cov = plan_of({{200.0, 0.0}}, {RsId{0}});
    auto plan = solve_mbmc(s, cov);
    allocate_power_max(s, plan);
    const auto report = analyze_throughput(s, cov, plan);
    ASSERT_GT(report.max_utilization, 0.0);
    EXPECT_NEAR(report.rate_headroom(), 1.0 / report.max_utilization, 1e-12);
}

TEST(ThroughputTest, EmptyDeploymentIdle) {
    Scenario s = linear_scenario();
    s.subscribers.clear();
    const CoveragePlan cov{{}, {}, true, false, 0};
    const auto plan = solve_mbmc(s, cov);
    const auto report = analyze_throughput(s, cov, plan);
    EXPECT_TRUE(report.sustainable);
    EXPECT_DOUBLE_EQ(report.total_offered_bps, 0.0);
    EXPECT_TRUE(std::isinf(report.rate_headroom()));
}

TEST(ThroughputTest, CoveragePowersParameterUsedForUplinks) {
    const Scenario s = linear_scenario();
    const auto cov = plan_of({{200.0, 0.0}}, {RsId{0}});
    auto plan = solve_mbmc(s, cov);
    allocate_power_max(s, plan);
    // Starve the coverage RS's uplink: utilization must rise vs P_max.
    const double starved[] = {0.05};
    const auto weak = analyze_throughput(s, cov, plan, starved);
    const auto strong = analyze_throughput(s, cov, plan);
    EXPECT_GT(weak.max_utilization, strong.max_utilization);
}

/// Integration sweep: on random instances the aggregation-aware UCPO
/// never has a worse bottleneck than the paper's (more power per chain ->
/// more capacity), and all reports are internally consistent.
class ThroughputProperty : public ::testing::TestWithParam<int> {};

TEST_P(ThroughputProperty, AggregationNeverWorsensBottleneck) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 800.0;
    cfg.subscriber_count = 25;
    cfg.base_station_count = 4;
    const auto s = sim::generate_scenario(cfg, GetParam());
    const auto cov = solve_samc(s).plan;
    ASSERT_TRUE(cov.feasible);

    auto paper = solve_mbmc(s, cov);
    auto aggregated = paper;
    allocate_power_ucpo(s, cov, paper);
    allocate_power_ucpo_aggregated(s, cov, aggregated);
    const auto paper_report = analyze_throughput(s, cov, paper);
    const auto agg_report = analyze_throughput(s, cov, aggregated);
    EXPECT_LE(agg_report.max_utilization, paper_report.max_utilization + 1e-9);

    // Internal consistency: per-link utilization = offered/capacity, the
    // bottleneck index points at the max, offered totals add up.
    for (const auto& report : {paper_report, agg_report}) {
        double max_util = 0.0;
        for (const auto& link : report.links) {
            EXPECT_NEAR(link.utilization, link.offered_bps / link.capacity_bps,
                        1e-9 * std::max(1.0, link.utilization));
            max_util = std::max(max_util, link.utilization);
        }
        EXPECT_NEAR(report.max_utilization, max_util, 1e-9);
        if (!report.links.empty()) {
            EXPECT_NEAR(report.links[report.bottleneck_link].utilization,
                        report.max_utilization, 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThroughputProperty, ::testing::Values(4, 8, 12, 16));

}  // namespace
}  // namespace sag::core
