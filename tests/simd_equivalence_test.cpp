// Golden equivalence of the batch kernel evaluators against the
// historical scalar loops (docs/PERFORMANCE.md contract):
//
//   * ineligible kernels (shadowing, general alpha) must be
//     *byte-identical* to the reference loop through the public API —
//     they are the same code path;
//   * eligible kernels under the AVX2 mode must agree to 1e-12 relative
//     per term (sqrt/multiply pow chain vs std::pow, sqrt(dx²+dy²) vs
//     std::hypot).
//
// The randomized sweeps draw kernels across every half-integer alpha the
// vector chain supports plus hostile geometry (points inside the clamp
// radius, coincident points, huge coordinates).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "sag/geometry/vec2.h"
#include "sag/units/units.h"
#include "sag/wireless/kernel_eval.h"
#include "sag/wireless/propagation.h"

namespace sag {
namespace {

using geom::Vec2;
using units::MetersSpan;
using units::WattSpan;

/// The pre-SoA SnrField arithmetic, verbatim: the golden reference.
double reference_gain(const wireless::GainKernel& k, const Vec2& tx,
                      const Vec2& rx) {
    return k.gain(tx, rx, geom::distance(tx, rx));
}

void reference_neumaier(double& total, double& comp, double term) {
    const double sum = total + term;
    if (std::abs(total) >= std::abs(term)) {
        comp += (total - sum) + term;
    } else {
        comp += (term - sum) + total;
    }
    total = sum;
}

struct Soa {
    std::vector<double> x, y;
    MetersSpan xs() const { return MetersSpan{x}; }
    MetersSpan ys() const { return MetersSpan{y}; }
};

Soa random_points(std::mt19937_64& rng, std::size_t n, double extent) {
    std::uniform_real_distribution<double> coord(-extent, extent);
    Soa soa;
    for (std::size_t i = 0; i < n; ++i) {
        soa.x.push_back(coord(rng));
        soa.y.push_back(coord(rng));
    }
    return soa;
}

wireless::GainKernel random_eligible_kernel(std::mt19937_64& rng) {
    std::uniform_int_distribution<int> half_alpha(1, 16);  // alpha = q/2
    std::uniform_real_distribution<double> scale(1e-3, 1e3);
    std::uniform_real_distribution<double> clamp(0.0, 4.0);
    wireless::GainKernel k;
    k.scale = scale(rng);
    k.alpha = half_alpha(rng) / 2.0;
    k.clamp_m = clamp(rng);
    return k;
}

double rel_err(double a, double b) {
    if (a == b) return 0.0;  // covers ±inf and exact zeros
    return std::abs(a - b) / std::max({std::abs(a), std::abs(b), 1e-300});
}

TEST(SimdEquivalence, EligibilityTable) {
    wireless::GainKernel k;
    for (int q = 1; q <= 16; ++q) {
        k.alpha = q / 2.0;
        EXPECT_TRUE(wireless::kernel_simd_eligible(k)) << "alpha=" << k.alpha;
    }
    k.alpha = 2.3;
    EXPECT_FALSE(wireless::kernel_simd_eligible(k));
    k.alpha = 8.5;  // q = 17: past the chain's ladder
    EXPECT_FALSE(wireless::kernel_simd_eligible(k));
    k.alpha = 2.0;
    k.sigma_db = 4.0;  // shadowed links hash per endpoint: scalar only
    EXPECT_FALSE(wireless::kernel_simd_eligible(k));
    k.sigma_db = 0.0;
    k.clamp_m = -1.0;
    EXPECT_FALSE(wireless::kernel_simd_eligible(k));
}

TEST(SimdEquivalence, ModeIsResolvedAndNamed) {
    const wireless::SimdMode mode = wireless::active_simd_mode();
    EXPECT_TRUE(mode == wireless::SimdMode::Scalar ||
                mode == wireless::SimdMode::Avx2);
    EXPECT_EQ(wireless::simd_lanes(),
              mode == wireless::SimdMode::Avx2 ? 4u : 1u);
    EXPECT_FALSE(wireless::simd_mode_name(mode).empty());
}

TEST(SimdEquivalence, BatchGainMatchesReferenceWithin1e12) {
    std::mt19937_64 rng(20260808);
    for (int round = 0; round < 40; ++round) {
        const wireless::GainKernel k = random_eligible_kernel(rng);
        // Sizes straddle the 4-lane boundary to exercise the scalar tail.
        const std::size_t n = 1 + static_cast<std::size_t>(rng() % 37);
        const Soa subs = random_points(rng, n, 200.0);
        const Vec2 pos{static_cast<double>(rng() % 100),
                       static_cast<double>(rng() % 100)};
        std::vector<double> gains(n);
        wireless::batch_gain(k, pos, subs.xs(), subs.ys(), gains);
        for (std::size_t i = 0; i < n; ++i) {
            const double ref = reference_gain(k, pos, {subs.x[i], subs.y[i]});
            EXPECT_LE(rel_err(gains[i], ref), 1e-12)
                << "alpha=" << k.alpha << " i=" << i;
        }
    }
}

TEST(SimdEquivalence, BatchGainHostileGeometry) {
    wireless::GainKernel k;
    k.scale = 2.5;
    k.alpha = 3.5;
    k.clamp_m = 1.0;
    // Coincident with the transmitter, inside the clamp radius, exactly
    // on it, and far away — the clamp max() must agree with the scalar
    // branch everywhere.
    const Soa subs{{10.0, 10.3, 11.0, 9000.0}, {10.0, 10.0, 10.0, -400.0}};
    std::vector<double> gains(4);
    wireless::batch_gain(k, {10.0, 10.0}, subs.xs(), subs.ys(), gains);
    for (std::size_t i = 0; i < 4; ++i) {
        const double ref = reference_gain(k, {10.0, 10.0},
                                          {subs.x[i], subs.y[i]});
        EXPECT_LE(rel_err(gains[i], ref), 1e-12) << "i=" << i;
    }
}

TEST(SimdEquivalence, IneligibleKernelIsByteIdentical) {
    // sigma_db != 0 pins the public API to the scalar path, which must be
    // the reference loop double-for-double (not merely close).
    std::mt19937_64 rng(7);
    wireless::GainKernel k;
    k.scale = 3.0;
    k.alpha = 2.7;  // general alpha: also ineligible on its own
    k.sigma_db = 6.0;
    k.seed = 99;
    const std::size_t n = 23;
    const Soa subs = random_points(rng, n, 50.0);
    const Vec2 pos{1.0, -2.0};
    std::vector<double> gains(n);
    wireless::batch_gain(k, pos, subs.xs(), subs.ys(), gains);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(gains[i], reference_gain(k, pos, {subs.x[i], subs.y[i]}));
    }

    std::vector<double> total(n, 0.0), comp(n, 0.0);
    std::vector<double> ref_total(n, 0.0), ref_comp(n, 0.0);
    wireless::accumulate_rx(k, pos, units::Watt{7.25}, subs.xs(), subs.ys(),
                            total, comp);
    wireless::accumulate_rx(k, pos, units::Watt{-7.25}, subs.xs(), subs.ys(),
                            total, comp);
    for (std::size_t i = 0; i < n; ++i) {
        const double term = 7.25 * reference_gain(k, pos, {subs.x[i], subs.y[i]});
        reference_neumaier(ref_total[i], ref_comp[i], term);
        reference_neumaier(ref_total[i], ref_comp[i], -term);
        EXPECT_EQ(total[i], ref_total[i]);
        EXPECT_EQ(comp[i], ref_comp[i]);
    }
}

TEST(SimdEquivalence, AccumulateRxMatchesReferenceWithin1e12) {
    std::mt19937_64 rng(42);
    for (int round = 0; round < 25; ++round) {
        const wireless::GainKernel k = random_eligible_kernel(rng);
        const std::size_t n = 1 + static_cast<std::size_t>(rng() % 29);
        const Soa subs = random_points(rng, n, 300.0);
        std::vector<double> total(n, 0.0), comp(n, 0.0);
        std::vector<double> ref_total(n, 0.0), ref_comp(n, 0.0);
        std::uniform_real_distribution<double> watt(0.1, 60.0);
        // A mutation history: several RSs added, one retracted.
        std::vector<std::pair<Vec2, double>> history;
        for (int mut = 0; mut < 6; ++mut) {
            history.emplace_back(Vec2{watt(rng), watt(rng)}, watt(rng));
        }
        history.emplace_back(history[2].first, -history[2].second);
        for (const auto& [pos, p] : history) {
            wireless::accumulate_rx(k, pos, units::Watt{p}, subs.xs(),
                                    subs.ys(), total, comp);
            for (std::size_t i = 0; i < n; ++i) {
                const double term =
                    p * reference_gain(k, pos, {subs.x[i], subs.y[i]});
                reference_neumaier(ref_total[i], ref_comp[i], term);
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_LE(rel_err(total[i] + comp[i], ref_total[i] + ref_comp[i]),
                      1e-12);
        }
    }
}

TEST(SimdEquivalence, RxTotalMatchesReferenceWithin1e12) {
    std::mt19937_64 rng(1234);
    for (int round = 0; round < 25; ++round) {
        const wireless::GainKernel k = random_eligible_kernel(rng);
        const std::size_t rs_count = 1 + static_cast<std::size_t>(rng() % 21);
        const Soa rs = random_points(rng, rs_count, 150.0);
        std::uniform_real_distribution<double> watt(0.0, 50.0);
        std::vector<double> power(rs_count);
        for (double& p : power) p = watt(rng);
        const Vec2 rx{3.0, 4.0};
        double total = 0.0, comp = 0.0;
        wireless::rx_total(k, rx, rs.xs(), rs.ys(), WattSpan{power}, total,
                           comp);
        double ref_total = 0.0, ref_comp = 0.0;
        for (std::size_t i = 0; i < rs_count; ++i) {
            reference_neumaier(
                ref_total, ref_comp,
                power[i] * reference_gain(k, {rs.x[i], rs.y[i]}, rx));
        }
        EXPECT_LE(rel_err(total + comp, ref_total + ref_comp), 1e-12);
    }
}

TEST(SimdEquivalence, BatchSnrMatchesReferenceWithin1e12) {
    std::mt19937_64 rng(555);
    for (int round = 0; round < 25; ++round) {
        const wireless::GainKernel k = random_eligible_kernel(rng);
        const std::size_t rs_count = 1 + static_cast<std::size_t>(rng() % 9);
        const std::size_t n = 1 + static_cast<std::size_t>(rng() % 33);
        const Soa rs = random_points(rng, rs_count, 120.0);
        const Soa subs = random_points(rng, n, 120.0);
        std::uniform_real_distribution<double> watt(0.5, 50.0);
        std::vector<double> power(rs_count);
        for (double& p : power) p = watt(rng);
        std::vector<std::uint32_t> serving(n);
        for (std::uint32_t& s : serving) {
            s = static_cast<std::uint32_t>(rng() % rs_count);
        }
        // Build the totals through the same accumulate path the field uses.
        std::vector<double> total(n, 0.0), comp(n, 0.0);
        for (std::size_t i = 0; i < rs_count; ++i) {
            wireless::accumulate_rx(k, {rs.x[i], rs.y[i]},
                                    units::Watt{power[i]}, subs.xs(),
                                    subs.ys(), total, comp);
        }
        const double ambient = 1e-6;
        std::vector<double> snr(n);
        wireless::batch_snr(k, rs.xs(), rs.ys(), WattSpan{power}, serving,
                            subs.xs(), subs.ys(), total, comp,
                            units::Watt{ambient}, snr);
        for (std::size_t j = 0; j < n; ++j) {
            const std::uint32_t s = serving[j];
            const double signal =
                power[s] * reference_gain(k, {rs.x[s], rs.y[s]},
                                          {subs.x[j], subs.y[j]});
            const double interference = (total[j] + comp[j]) - signal + ambient;
            const double ref =
                signal <= 0.0
                    ? 0.0
                    : (interference > 0.0
                           ? signal / interference
                           : std::numeric_limits<double>::infinity());
            // The interference subtraction (total - signal) amplifies the
            // per-term ulp difference by roughly the SNR magnitude, so
            // the SNR read carries its own documented bound: 1e-9
            // relative (PERFORMANCE.md), vs 1e-12 for raw terms.
            EXPECT_LE(rel_err(snr[j], ref), 1e-9) << "j=" << j;
        }
    }
}

TEST(SimdEquivalence, BatchSnrEdgeSemantics) {
    wireless::GainKernel k;
    k.scale = 1.0;
    k.alpha = 2.0;
    k.clamp_m = 1.0;
    const Soa rs{{0.0, 50.0}, {0.0, 0.0}};
    const std::vector<double> power{0.0, 30.0};  // RS 0 is silent
    const Soa subs{{5.0, 6.0, 7.0, 8.0, 9.0}, {0.0, 0.0, 0.0, 0.0, 0.0}};
    const std::vector<std::uint32_t> serving{0, 1, 0, 1, 1};
    // Hugely negative cached totals force interference < 0 in every
    // arithmetic path for the positive-signal subscribers.
    std::vector<double> total(5, -1e300), comp(5, 0.0);
    std::vector<double> snr(5);
    wireless::batch_snr(k, rs.xs(), rs.ys(), WattSpan{power}, serving,
                        subs.xs(), subs.ys(), total, comp, units::Watt{0.0},
                        snr);
    EXPECT_EQ(snr[0], 0.0);  // zero signal wins over zero denominator
    EXPECT_TRUE(std::isinf(snr[1]));
    EXPECT_EQ(snr[2], 0.0);
    EXPECT_TRUE(std::isinf(snr[3]));
    EXPECT_TRUE(std::isinf(snr[4]));
}

}  // namespace
}  // namespace sag
