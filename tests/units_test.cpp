#include <cmath>
#include <type_traits>

#include <gtest/gtest.h>

#include "sag/units/units.h"

namespace sag::units {
namespace {

using namespace sag::units::literals;

// --- Zero-overhead contract (ISSUE acceptance criterion) -----------------

template <class T>
constexpr bool zero_overhead() {
    return sizeof(T) == sizeof(double) && alignof(T) == alignof(double) &&
           std::is_trivially_copyable_v<T> && std::is_standard_layout_v<T>;
}

static_assert(zero_overhead<Watt>());
static_assert(zero_overhead<Milliwatt>());
static_assert(zero_overhead<Decibel>());
static_assert(zero_overhead<DecibelMilliwatt>());
static_assert(zero_overhead<Meters>());
static_assert(zero_overhead<SnrRatio>());

// Conversions must never be implicit in either direction.
static_assert(!std::is_convertible_v<double, Watt>);
static_assert(!std::is_convertible_v<Watt, double>);
static_assert(!std::is_convertible_v<Watt, Milliwatt>);
static_assert(!std::is_convertible_v<Decibel, DecibelMilliwatt>);
static_assert(!std::is_convertible_v<Decibel, SnrRatio>);
static_assert(!std::is_convertible_v<Meters, double>);

TEST(UnitsLayoutTest, SameSizeAsDouble) {
    EXPECT_EQ(sizeof(Watt), sizeof(double));
    EXPECT_EQ(sizeof(Decibel), sizeof(double));
    EXPECT_EQ(sizeof(Meters), sizeof(double));
    EXPECT_EQ(sizeof(SnrRatio), sizeof(double));
}

// --- dB <-> linear round trips (<= 1e-12 criterion) ----------------------

TEST(UnitsConversionTest, DbRoundTripWithinTolerance) {
    for (double db = -80.0; db <= 80.0; db += 0.37) {
        const double back = to_db(from_db(Decibel{db})).db();
        EXPECT_NEAR(back, db, 1e-12) << "at " << db << " dB";
    }
}

TEST(UnitsConversionTest, RatioRoundTripWithinRelativeTolerance) {
    for (double r = 1e-8; r <= 1e8; r *= 3.7) {
        const double back = from_db(to_db(SnrRatio{r})).ratio();
        EXPECT_NEAR(back, r, 1e-12 * r) << "at ratio " << r;
    }
}

TEST(UnitsConversionTest, DbmRoundTrip) {
    for (double dbm = -60.0; dbm <= 60.0; dbm += 1.3) {
        const double back = to_dbm(from_dbm(DecibelMilliwatt{dbm})).dbm();
        EXPECT_NEAR(back, dbm, 1e-12) << "at " << dbm << " dBm";
    }
}

TEST(UnitsConversionTest, KnownAnchorPoints) {
    EXPECT_DOUBLE_EQ(from_db(Decibel{0.0}).ratio(), 1.0);
    EXPECT_DOUBLE_EQ(from_db(Decibel{10.0}).ratio(), 10.0);
    EXPECT_DOUBLE_EQ(from_db(Decibel{-10.0}).ratio(), 0.1);
    EXPECT_DOUBLE_EQ(to_db(SnrRatio{100.0}).db(), 20.0);
    EXPECT_DOUBLE_EQ(to_dbm(Watt{1.0}).dbm(), 30.0);   // 1 W == 30 dBm
    EXPECT_DOUBLE_EQ(to_dbm(Watt{1e-3}).dbm(), 0.0);   // 1 mW == 0 dBm
    EXPECT_DOUBLE_EQ(from_dbm(DecibelMilliwatt{30.0}).watts(), 1.0);
}

TEST(UnitsConversionTest, WattMilliwattScale) {
    EXPECT_DOUBLE_EQ(Watt{2.5}.to_milliwatts().milliwatts(), 2500.0);
    EXPECT_DOUBLE_EQ(Milliwatt{2500.0}.to_watts().watts(), 2.5);
}

// --- Operator coverage ---------------------------------------------------

TEST(UnitsOperatorTest, WattLinearArithmetic) {
    Watt a{3.0}, b{1.5};
    EXPECT_EQ(a + b, Watt{4.5});
    EXPECT_EQ(a - b, Watt{1.5});
    EXPECT_EQ(-b, Watt{-1.5});
    EXPECT_EQ(a * 2.0, Watt{6.0});
    EXPECT_EQ(2.0 * a, Watt{6.0});
    EXPECT_EQ(a / 2.0, Watt{1.5});
    a += b;
    EXPECT_EQ(a, Watt{4.5});
    a -= b;
    EXPECT_EQ(a, Watt{3.0});
}

TEST(UnitsOperatorTest, WattRatioInteraction) {
    // Power ratio lands in SnrRatio, not bare double...
    const SnrRatio snr = Watt{10.0} / Watt{2.0};
    EXPECT_DOUBLE_EQ(snr.ratio(), 5.0);
    // ...and a ratio scales power back into the linear-power dimension:
    // exactly the beta * interference shape of Definition 2.
    EXPECT_EQ(snr * Watt{3.0}, Watt{15.0});
    EXPECT_EQ(Watt{3.0} * snr, Watt{15.0});
    EXPECT_EQ(Watt{15.0} / snr, Watt{3.0});
}

TEST(UnitsOperatorTest, SnrRatioArithmetic) {
    EXPECT_DOUBLE_EQ((SnrRatio{4.0} * SnrRatio{0.5}).ratio(), 2.0);
    EXPECT_DOUBLE_EQ((SnrRatio{4.0} / SnrRatio{0.5}).ratio(), 8.0);
    EXPECT_DOUBLE_EQ((SnrRatio{4.0} * 2.0).ratio(), 8.0);
    EXPECT_DOUBLE_EQ((2.0 * SnrRatio{4.0}).ratio(), 8.0);
    EXPECT_DOUBLE_EQ((SnrRatio{4.0} / 2.0).ratio(), 2.0);
}

TEST(UnitsOperatorTest, DecibelComposition) {
    // Gains compose additively in dB == multiplicatively in linear space.
    const Decibel sum = Decibel{3.0} + Decibel{7.0};
    EXPECT_DOUBLE_EQ(sum.db(), 10.0);
    EXPECT_NEAR(from_db(sum).ratio(),
                from_db(Decibel{3.0}).ratio() * from_db(Decibel{7.0}).ratio(),
                1e-12);
    EXPECT_EQ(Decibel{3.0} - Decibel{7.0}, Decibel{-4.0});
    EXPECT_EQ(-Decibel{3.0}, Decibel{-3.0});
    EXPECT_EQ(Decibel{3.0} * 2.0, Decibel{6.0});
    EXPECT_EQ(Decibel{6.0} / 2.0, Decibel{3.0});
}

TEST(UnitsOperatorTest, DbmIsAbsoluteDbIsRelative) {
    // Offsetting an absolute level by a gain stays absolute.
    EXPECT_EQ(DecibelMilliwatt{10.0} + Decibel{3.0}, DecibelMilliwatt{13.0});
    EXPECT_EQ(Decibel{3.0} + DecibelMilliwatt{10.0}, DecibelMilliwatt{13.0});
    EXPECT_EQ(DecibelMilliwatt{10.0} - Decibel{3.0}, DecibelMilliwatt{7.0});
    // Differencing two absolute levels yields the relative dB between them.
    EXPECT_EQ(DecibelMilliwatt{13.0} - DecibelMilliwatt{10.0}, Decibel{3.0});
}

TEST(UnitsOperatorTest, MetersArithmetic) {
    EXPECT_EQ(Meters{30.0} + Meters{10.0}, Meters{40.0});
    EXPECT_EQ(Meters{30.0} - Meters{10.0}, Meters{20.0});
    EXPECT_EQ(Meters{30.0} * 2.0, Meters{60.0});
    EXPECT_EQ(2.0 * Meters{30.0}, Meters{60.0});
    EXPECT_EQ(Meters{30.0} / 2.0, Meters{15.0});
    EXPECT_DOUBLE_EQ(Meters{30.0} / Meters{40.0}, 0.75);  // dimensionless
}

TEST(UnitsOperatorTest, ComparisonsWithinAType) {
    EXPECT_LT(Watt{1.0}, Watt{2.0});
    EXPECT_GE(Decibel{-15.0}, Decibel{-40.0});
    EXPECT_EQ(Meters{40.0}, Meters{40.0});
    EXPECT_GT(SnrRatio{1.0}, SnrRatio{0.5});
}

TEST(UnitsLiteralTest, LiteralsConstructTheRightTypes) {
    EXPECT_EQ(50.0_W, Watt{50.0});
    EXPECT_EQ(50_W, Watt{50.0});
    EXPECT_EQ(3.0_mW, Milliwatt{3.0});
    EXPECT_EQ(-15.0_dB, Decibel{-15.0});
    EXPECT_EQ(30.0_dBm, DecibelMilliwatt{30.0});
    EXPECT_EQ(40.0_m, Meters{40.0});
}

TEST(UnitsConstexprTest, ArithmeticIsConstexpr) {
    constexpr Watt total = Watt{1.0} + Watt{2.0} * 3.0;
    static_assert(total.watts() == 7.0);
    constexpr double frac = Meters{30.0} / Meters{40.0};
    static_assert(frac == 0.75);
}

}  // namespace
}  // namespace sag::units
