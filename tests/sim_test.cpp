#include <cmath>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "sag/sim/stats.h"
#include "sag/sim/stopwatch.h"
#include "sag/sim/table.h"

namespace sag::sim {
namespace {

TEST(RunningStatTest, MeanAndVariance) {
    RunningStat s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_NEAR(s.mean(), 5.0, 1e-12);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(RunningStatTest, DegenerateCases) {
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    s.add(3.5);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatsTest, SpanHelpers) {
    const double xs[] = {1.0, 2.0, 3.0};
    EXPECT_NEAR(mean(xs), 2.0, 1e-12);
    EXPECT_NEAR(stddev(xs), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(mean(std::span<const double>{}), 0.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
    Stopwatch sw;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    const double t = sw.seconds();
    EXPECT_GE(t, 0.015);
    EXPECT_LT(t, 5.0);
    sw.reset();
    EXPECT_LT(sw.seconds(), 0.015);
    EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1e3, 1.0);
}

TEST(TableTest, PrintAlignsColumns) {
    Table t({"users", "RSs"});
    t.add_row({"15", "9"});
    t.add_numeric_row({20.0, 11.5}, 1);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("users"), std::string::npos);
    EXPECT_NE(out.find("20.0"), std::string::npos);
    EXPECT_NE(out.find("11.5"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvOutput) {
    Table t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.write_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RejectsWrongWidth) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, NanRendersAsNa) {
    EXPECT_EQ(format_cell(std::nan(""), 2), "n/a");
    EXPECT_EQ(format_cell(3.14159, 2), "3.14");
    Table t({"x"});
    t.add_numeric_row({std::nan("")});
    std::ostringstream os;
    t.write_csv(os);
    EXPECT_EQ(os.str(), "x\nn/a\n");
}

}  // namespace
}  // namespace sag::sim
