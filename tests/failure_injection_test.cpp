// Failure injection: corrupt solver outputs in every structural way we
// could think of and confirm the independent verifiers flag them instead
// of crashing or silently passing. The verifiers are the last line of
// defense for every benchmark number in EXPERIMENTS.md, so they must be
// unconditionally robust.
#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/core/ucra.h"
#include "sag/ids/ids.h"
#include "sag/sim/scenario_gen.h"

namespace sag::core {
namespace {

struct Fixture {
    Scenario scenario;
    SagResult result;

    Fixture() {
        sim::GeneratorConfig cfg;
        cfg.field_side = 500.0;
        cfg.subscriber_count = 12;
        cfg.base_station_count = 2;
        scenario = sim::generate_scenario(cfg, 55);
        result = solve_sag(scenario);
    }
};

TEST(FailureInjectionCoverage, PristinePlanPasses) {
    const Fixture f;
    ASSERT_TRUE(f.result.feasible);
    EXPECT_TRUE(verify_coverage(f.scenario, f.result.coverage,
                                f.result.lower_power.powers)
                    .feasible);
}

TEST(FailureInjectionCoverage, OutOfRangeAssignmentFlagged) {
    const Fixture f;
    auto plan = f.result.coverage;
    plan.assignment[ids::SsId{3}] = ids::RsId{plan.rs_count() + 7};  // dangling index
    const auto report =
        verify_coverage(f.scenario, plan, f.result.lower_power.powers);
    EXPECT_FALSE(report.feasible);
}

TEST(FailureInjectionCoverage, TruncatedPowerVectorFlagged) {
    const Fixture f;
    auto powers = f.result.lower_power.powers;
    powers.pop_back();
    EXPECT_FALSE(verify_coverage(f.scenario, f.result.coverage, powers).feasible);
}

TEST(FailureInjectionCoverage, ZeroedPowerFailsRate) {
    const Fixture f;
    auto powers = f.result.lower_power.powers;
    powers[f.result.coverage.assignment[ids::SsId{0}].index()] = 0.0;
    const auto report = verify_coverage(f.scenario, f.result.coverage, powers);
    EXPECT_FALSE(report.feasible);
    EXPECT_FALSE(report.subscribers[ids::SsId{0}].rate_ok);
}

TEST(FailureInjectionCoverage, TeleportedRsFailsDistance) {
    const Fixture f;
    auto plan = f.result.coverage;
    plan.rs_positions[plan.assignment[ids::SsId{0}].index()] = {10'000.0, 10'000.0};
    const auto report =
        verify_coverage(f.scenario, plan, f.result.lower_power.powers);
    EXPECT_FALSE(report.feasible);
    EXPECT_FALSE(report.subscribers[ids::SsId{0}].distance_ok);
}

TEST(FailureInjectionConnectivity, PristineTreePasses) {
    const Fixture f;
    EXPECT_TRUE(
        verify_connectivity(f.scenario, f.result.coverage, f.result.connectivity)
            .feasible);
}

TEST(FailureInjectionConnectivity, ParentCycleFlaggedNotHung) {
    const Fixture f;
    auto plan = f.result.connectivity;
    // Find two connectivity RSs and make them each other's parent.
    std::vector<std::size_t> conn;
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        if (plan.kinds[v] == NodeKind::ConnectivityRs) conn.push_back(v);
    }
    if (conn.size() < 2) GTEST_SKIP() << "tree too small to corrupt";
    plan.parent[conn[0]] = conn[1];
    plan.parent[conn[1]] = conn[0];
    const auto report = verify_connectivity(f.scenario, f.result.coverage, plan);
    EXPECT_FALSE(report.feasible);
    EXPECT_FALSE(report.all_rooted);
}

TEST(FailureInjectionConnectivity, OutOfRangeParentFlagged) {
    const Fixture f;
    auto plan = f.result.connectivity;
    plan.parent.back() = plan.node_count() + 5;
    const auto report = verify_connectivity(f.scenario, f.result.coverage, plan);
    EXPECT_FALSE(report.feasible);
    EXPECT_NE(report.detail.find("malformed"), std::string::npos);
}

TEST(FailureInjectionConnectivity, SizeMismatchFlagged) {
    const Fixture f;
    auto plan = f.result.connectivity;
    plan.powers.pop_back();
    EXPECT_FALSE(
        verify_connectivity(f.scenario, f.result.coverage, plan).feasible);
    plan = f.result.connectivity;
    plan.kinds.pop_back();
    EXPECT_FALSE(
        verify_connectivity(f.scenario, f.result.coverage, plan).feasible);
}

TEST(FailureInjectionConnectivity, WrongLayoutConventionFlagged) {
    const Fixture f;
    auto plan = f.result.connectivity;
    // Swap a BS slot with a coverage slot: layout convention broken.
    std::swap(plan.kinds[0], plan.kinds[f.scenario.base_stations.size()]);
    EXPECT_FALSE(
        verify_connectivity(f.scenario, f.result.coverage, plan).feasible);
}

TEST(FailureInjectionConnectivity, StretchedHopFlagged) {
    const Fixture f;
    auto plan = f.result.connectivity;
    // Teleport one connectivity RS far away: its own hop (and its
    // child's) become too long.
    for (std::size_t v = 0; v < plan.node_count(); ++v) {
        if (plan.kinds[v] == NodeKind::ConnectivityRs) {
            plan.positions[v] = {9'000.0, 9'000.0};
            break;
        }
    }
    const auto report = verify_connectivity(f.scenario, f.result.coverage, plan);
    EXPECT_FALSE(report.feasible);
    EXPECT_FALSE(report.hops_ok);
}

TEST(FailureInjectionConnectivity, DetachedCoverageRsFlagged) {
    const Fixture f;
    auto plan = f.result.connectivity;
    const std::size_t cov_node = f.scenario.base_stations.size();
    plan.parent[cov_node] = cov_node;  // now roots at a non-BS
    const auto report = verify_connectivity(f.scenario, f.result.coverage, plan);
    EXPECT_FALSE(report.feasible);
    EXPECT_FALSE(report.all_rooted);
}

}  // namespace
}  // namespace sag::core
