// sag::resilience — failure injection, damage assessment and the staged
// self-healing repair engine. The load-bearing properties here are the
// repair invariants: everything the engine keeps must re-verify through
// the same independent verifiers the benchmarks trust, no transmit power
// may ever exceed its (possibly degraded) cap, and repair must never
// shrink the set of subscribers the damaged network could still serve.
#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/io/resilience_io.h"
#include "sag/resilience/damage.h"
#include "sag/resilience/failure.h"
#include "sag/resilience/repair.h"
#include "sag/sim/scenario_gen.h"

namespace sag::resilience {
namespace {

core::Scenario make_scenario(int seed, std::size_t subscribers = 20) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = subscribers;
    cfg.base_station_count = 4;
    return sim::generate_scenario(cfg, seed);
}

struct Deployed {
    core::Scenario scenario;
    core::SagResult result;
};

Deployed deploy(int seed, std::size_t subscribers = 20) {
    Deployed d;
    d.scenario = make_scenario(seed, subscribers);
    d.result = core::solve_sag(d.scenario);
    return d;
}

// --- Failure models -------------------------------------------------------

TEST(FailureModelTest, IndependentIsSeedDeterministic) {
    const Deployed d = deploy(3);
    ASSERT_TRUE(d.result.feasible);
    IndependentFailureModel model;
    model.probability = 0.3;
    const FailureSet a = inject_independent(d.result, model, 42);
    const FailureSet b = inject_independent(d.result, model, 42);
    EXPECT_EQ(a.coverage_down, b.coverage_down);
    EXPECT_EQ(a.connectivity_down, b.connectivity_down);
}

TEST(FailureModelTest, ProbabilityZeroAndOneAreExact) {
    const Deployed d = deploy(3);
    ASSERT_TRUE(d.result.feasible);
    IndependentFailureModel none;
    none.probability = 0.0;
    EXPECT_TRUE(inject_independent(d.result, none, 1).empty());
    IndependentFailureModel all;
    all.probability = 1.0;
    const FailureSet f = inject_independent(d.result, all, 1);
    EXPECT_EQ(f.coverage_down.size(), d.result.coverage_rs_count());
    EXPECT_EQ(f.connectivity_down.size(), d.result.connectivity_rs_count());
}

TEST(FailureModelTest, IndependentRejectsBadProbability) {
    const Deployed d = deploy(3);
    IndependentFailureModel model;
    model.probability = 1.5;
    EXPECT_THROW((void)inject_independent(d.result, model, 1),
                 std::invalid_argument);
}

TEST(FailureModelTest, DiscOutageKillsExactlyTheDisc) {
    const Deployed d = deploy(5);
    ASSERT_TRUE(d.result.feasible);
    DiscOutageModel model;
    model.radius = units::Meters{150.0};
    model.center = geom::Vec2{0.0, 0.0};
    const FailureSet f = inject_disc_outage(d.scenario, d.result, model, 7);
    std::set<std::size_t> dead;
    for (const ids::RsId r : f.coverage_down) dead.insert(r.index());
    for (std::size_t i = 0; i < d.result.coverage.rs_count(); ++i) {
        const bool inside =
            (d.result.coverage.rs_positions[i] - *model.center).norm() <=
            model.radius.meters();
        EXPECT_EQ(dead.count(i) == 1, inside) << "coverage RS " << i;
    }
}

TEST(FailureModelTest, DegradationStaysWithinBounds) {
    const Deployed d = deploy(5);
    ASSERT_TRUE(d.result.feasible);
    PowerDegradationModel model;
    model.probability = 0.5;
    model.factor = 0.6;
    const FailureSet f = inject_power_degradation(d.result, model, 11);
    for (const Degradation& g : f.degraded) {
        EXPECT_LT(g.rs.index(), d.result.coverage.rs_count());
        EXPECT_DOUBLE_EQ(g.factor, 0.6);
    }
    EXPECT_TRUE(f.coverage_down.empty());
    EXPECT_TRUE(f.connectivity_down.empty());
}

TEST(FailureModelTest, DamagedPowersZeroDeadAndClampDegraded) {
    const Deployed d = deploy(9);
    ASSERT_TRUE(d.result.feasible);
    ASSERT_GE(d.result.coverage.rs_count(), 2u);
    FailureSet f;
    f.coverage_down = {ids::RsId{0}};
    f.degraded = {{ids::RsId{1}, 0.25}};
    const std::vector<double> p = damaged_powers(d.scenario, d.result, f);
    ASSERT_EQ(p.size(), d.result.lower_power.powers.size());
    EXPECT_DOUBLE_EQ(p[0], 0.0);
    EXPECT_LE(p[1], 0.25 * d.scenario.radio.max_power.watts() + 1e-12);
    for (std::size_t i = 2; i < p.size(); ++i) {
        EXPECT_DOUBLE_EQ(p[i], d.result.lower_power.powers[i]);
    }
}

// --- Damage assessment ----------------------------------------------------

TEST(DamageTest, EmptyFailureSetIsIntact) {
    const Deployed d = deploy(13);
    ASSERT_TRUE(d.result.feasible);
    const DamageReport report = assess_damage(d.scenario, d.result, FailureSet{});
    EXPECT_TRUE(report.intact());
    EXPECT_EQ(report.dead_coverage_rs, 0u);
    EXPECT_EQ(report.dead_connectivity_rs, 0u);
}

TEST(DamageTest, DeadServerOrphansItsSubscribers) {
    const Deployed d = deploy(13);
    ASSERT_TRUE(d.result.feasible);
    FailureSet f;
    f.coverage_down = {ids::RsId{0}};
    const DamageReport report = assess_damage(d.scenario, d.result, f);
    for (const ids::SsId k : d.scenario.ss_ids()) {
        if (d.result.coverage.assignment[k] == ids::RsId{0}) {
            EXPECT_TRUE(std::binary_search(report.orphaned.begin(),
                                           report.orphaned.end(), k))
                << "SS " << k.index() << " served by the dead RS must be orphaned";
        }
    }
}

TEST(DamageTest, AgreesWithVerifyCoverageOnDamagedPowers) {
    // The report's orphan set must be exactly the SS violations the
    // independent verifier finds under the post-failure power vector.
    const Deployed d = deploy(17, 25);
    ASSERT_TRUE(d.result.feasible);
    const FailureSet f =
        inject_independent(d.result, IndependentFailureModel{0.25, false}, 99);
    const DamageReport report = assess_damage(d.scenario, d.result, f);
    const auto verdict = core::verify_coverage(
        d.scenario, d.result.coverage, damaged_powers(d.scenario, d.result, f));
    EXPECT_EQ(report.coverage_intact(), verdict.feasible);
}

// --- Repair invariants ----------------------------------------------------

TEST(RepairTest, NoOpOnEmptyFailureSet) {
    const Deployed d = deploy(21);
    ASSERT_TRUE(d.result.feasible);
    const RepairOutcome out = repair(d.scenario, d.result, FailureSet{});
    EXPECT_TRUE(out.full_recovery());
    EXPECT_EQ(out.covered.size(), d.scenario.subscriber_count());
    EXPECT_TRUE(out.repaired.feasible);
    EXPECT_EQ(out.new_relays, 0u);
}

TEST(RepairTest, RepairedNetworkPassesBothVerifiers) {
    const Deployed d = deploy(23, 25);
    ASSERT_TRUE(d.result.feasible);
    const FailureSet f =
        inject_independent(d.result, IndependentFailureModel{0.2, true}, 5);
    const RepairOutcome out = repair(d.scenario, d.result, f);
    ASSERT_TRUE(out.repaired.feasible);
    EXPECT_TRUE(core::verify_coverage(out.covered_scenario, out.repaired.coverage,
                                      out.repaired.lower_power.powers)
                    .feasible);
    EXPECT_TRUE(core::verify_topology(out.covered_scenario, out.repaired.coverage,
                                      out.repaired.connectivity)
                    .feasible);
}

TEST(RepairTest, PowersNeverExceedPmax) {
    const Deployed d = deploy(23, 25);
    ASSERT_TRUE(d.result.feasible);
    const double pmax = d.scenario.radio.max_power.watts();
    const FailureSet f =
        inject_independent(d.result, IndependentFailureModel{0.2, true}, 5);
    const RepairOutcome out = repair(d.scenario, d.result, f);
    ASSERT_TRUE(out.repaired.feasible);
    for (const double p : out.repaired.lower_power.powers) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, pmax + 1e-9);
    }
    for (const double p : out.repaired.connectivity.powers) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, pmax + 1e-9);
    }
}

TEST(RepairTest, DegradedSurvivorsRespectTheirReducedCap) {
    const Deployed d = deploy(29, 25);
    ASSERT_TRUE(d.result.feasible);
    PowerDegradationModel model;
    model.probability = 0.5;
    model.factor = 0.4;
    const FailureSet f = inject_power_degradation(d.result, model, 3);
    const RepairOutcome out = repair(d.scenario, d.result, f);
    ASSERT_TRUE(out.repaired.feasible);
    // Repaired RS indices are compacted, so match degraded survivors by
    // position (positions are unique within a plan).
    const double cap = model.factor * d.scenario.radio.max_power.watts();
    for (const Degradation& g : f.degraded) {
        const geom::Vec2 pos = d.result.coverage.rs_positions[g.rs.index()];
        for (std::size_t i = 0; i < out.repaired.coverage.rs_count(); ++i) {
            if (out.repaired.coverage.rs_positions[i] == pos) {
                EXPECT_LE(out.repaired.lower_power.powers[i], cap + 1e-9)
                    << "degraded survivor at repaired slot " << i;
            }
        }
    }
}

TEST(RepairTest, CoveredAndUnrecoverablePartitionTheSubscribers) {
    const Deployed d = deploy(31, 25);
    ASSERT_TRUE(d.result.feasible);
    const FailureSet f =
        inject_independent(d.result, IndependentFailureModel{0.3, true}, 77);
    const RepairOutcome out = repair(d.scenario, d.result, f);
    std::set<std::size_t> seen;
    for (const ids::SsId k : out.covered) seen.insert(k.index());
    for (const ids::SsId k : out.unrecoverable) {
        EXPECT_TRUE(seen.insert(k.index()).second)
            << "SS " << k.index() << " both covered and unrecoverable";
    }
    EXPECT_EQ(seen.size(), d.scenario.subscriber_count());
    EXPECT_EQ(out.covered.size(), out.covered_scenario.subscriber_count());
}

/// Property, 20 seeds: repair must never reduce the covered set below
/// what the damaged network could still serve — every subscriber that was
/// NOT orphaned by the failures stays covered after repair.
class RepairMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(RepairMonotoneProperty, NeverDropsASurvivingSubscriber) {
    const Deployed d = deploy(100 + GetParam(), 22);
    ASSERT_TRUE(d.result.feasible);
    const FailureSet f = inject_independent(
        d.result, IndependentFailureModel{0.15, true}, 500 + GetParam());
    const DamageReport damage = assess_damage(d.scenario, d.result, f);
    const RepairOutcome out = repair(d.scenario, d.result, f);
    ASSERT_TRUE(out.repaired.feasible);
    for (const ids::SsId k : d.scenario.ss_ids()) {
        const bool orphaned = std::binary_search(damage.orphaned.begin(),
                                                 damage.orphaned.end(), k);
        if (orphaned) continue;
        EXPECT_TRUE(std::binary_search(out.covered.begin(), out.covered.end(), k))
            << "seed " << GetParam() << ": surviving SS " << k.index()
            << " was dropped by repair";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairMonotoneProperty,
                         ::testing::Range(0, 20));

/// Acceptance (ISSUE.md): a 20-seed batch at 10% independent failures
/// restores verified coverage for at least 90% of the initially covered
/// subscribers, without exceeding P_max anywhere.
TEST(RepairTest, TenPercentFailureBatchRestoresNinetyPercent) {
    std::size_t initially_covered = 0;
    std::size_t restored = 0;
    for (int seed = 0; seed < 20; ++seed) {
        const Deployed d = deploy(200 + seed, 20);
        ASSERT_TRUE(d.result.feasible) << "seed " << seed;
        const double pmax = d.scenario.radio.max_power.watts();
        const FailureSet f = inject_independent(
            d.result, IndependentFailureModel{0.1, true}, 900 + seed);
        const RepairOutcome out = repair(d.scenario, d.result, f);
        ASSERT_TRUE(out.repaired.feasible) << "seed " << seed;
        ASSERT_TRUE(core::verify_coverage(out.covered_scenario,
                                          out.repaired.coverage,
                                          out.repaired.lower_power.powers)
                        .feasible)
            << "seed " << seed;
        ASSERT_TRUE(core::verify_topology(out.covered_scenario,
                                          out.repaired.coverage,
                                          out.repaired.connectivity)
                        .feasible)
            << "seed " << seed;
        for (const double p : out.repaired.lower_power.powers) {
            ASSERT_LE(p, pmax + 1e-9) << "seed " << seed;
        }
        for (const double p : out.repaired.connectivity.powers) {
            ASSERT_LE(p, pmax + 1e-9) << "seed " << seed;
        }
        initially_covered += d.scenario.subscriber_count();
        restored += out.covered.size();
    }
    ASSERT_GT(initially_covered, 0u);
    const double fraction =
        static_cast<double>(restored) / static_cast<double>(initially_covered);
    EXPECT_GE(fraction, 0.9) << restored << "/" << initially_covered;
}

// --- Report serialization -------------------------------------------------

TEST(ResilienceIoTest, SurvivabilityJsonIsDeterministic) {
    const Deployed d = deploy(41, 18);
    ASSERT_TRUE(d.result.feasible);
    const FailureSet f =
        inject_independent(d.result, IndependentFailureModel{0.2, true}, 8);
    const DamageReport damage = assess_damage(d.scenario, d.result, f);
    const RepairOutcome out = repair(d.scenario, d.result, f);
    const std::string a = io::survivability_to_json(f, damage, out).dump(2);
    const std::string b = io::survivability_to_json(f, damage, out).dump(2);
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"format\""), std::string::npos);
    // Round-trips through the strict parser.
    EXPECT_NO_THROW((void)io::Json::parse(a));
}

}  // namespace
}  // namespace sag::resilience
