#include <gtest/gtest.h>

#include "sag/core/candidates.h"
#include "sag/core/feasibility.h"
#include "sag/core/ilpqc.h"
#include "sag/sim/scenario_gen.h"

namespace sag::core {
namespace {

TEST(IlpqcTest, EmptyScenarioTriviallyFeasible) {
    Scenario s;
    s.field = geom::Rect::centered_square(100.0);
    s.base_stations = {{{0.0, 0.0}}};
    const auto plan = solve_ilpqc_coverage(s, {});
    EXPECT_TRUE(plan.feasible);
    EXPECT_EQ(plan.rs_count(), 0u);
}

TEST(IlpqcTest, SingleSubscriberSingleRs) {
    Scenario s;
    s.field = geom::Rect::centered_square(200.0);
    s.subscribers = {{{10.0, 10.0}, 35.0}};
    s.base_stations = {{{0.0, 0.0}}};
    const auto cands = iac_candidates(s);  // isolated -> its center
    const auto plan = solve_ilpqc_coverage(s, cands);
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.rs_count(), 1u);
    EXPECT_TRUE(verify_coverage_max_power(s, plan).feasible);
}

TEST(IlpqcTest, TwoFarSubscribersNeedTwoRss) {
    Scenario s;
    s.field = geom::Rect::centered_square(600.0);
    s.subscribers = {{{-200.0, 0.0}, 35.0}, {{200.0, 0.0}, 35.0}};
    s.base_stations = {{{0.0, 0.0}}};
    const auto plan = solve_ilpqc_coverage(s, iac_candidates(s));
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.rs_count(), 2u);
    EXPECT_TRUE(plan.proven_optimal);
}

TEST(IlpqcTest, TwoOverlappingSubscribersShareOneRs) {
    Scenario s;
    s.field = geom::Rect::centered_square(600.0);
    s.subscribers = {{{-20.0, 0.0}, 35.0}, {{20.0, 0.0}, 35.0}};
    s.base_stations = {{{0.0, 0.0}}};
    const auto plan = solve_ilpqc_coverage(s, iac_candidates(s));
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.rs_count(), 1u);
    EXPECT_TRUE(verify_coverage_max_power(s, plan).feasible);
}

TEST(IlpqcTest, ImpossibleSnrReportsInfeasible) {
    // Two subscribers that cannot share one RS (circles disjoint) and a
    // threshold so strict that two simultaneously radiating RSs always
    // break it: ILPQC must return infeasible, like IAC in Fig. 3d.
    Scenario s;
    s.field = geom::Rect::centered_square(300.0);
    s.subscribers = {{{-45.0, 0.0}, 35.0}, {{45.0, 0.0}, 35.0}};
    s.base_stations = {{{0.0, 0.0}}};
    s.snr_threshold_db = units::Decibel{60.0};  // absurd on purpose
    const auto plan = solve_ilpqc_coverage(s, iac_candidates(s));
    EXPECT_FALSE(plan.feasible);
}

TEST(IlpqcTest, GacCandidatesAlsoWork) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 400.0;
    cfg.subscriber_count = 12;
    const Scenario s = sim::generate_scenario(cfg, 21);
    const auto cands = prune_useless_candidates(s, gac_candidates(s, 15.0));
    const auto plan = solve_ilpqc_coverage(s, cands);
    ASSERT_TRUE(plan.feasible);
    EXPECT_TRUE(verify_coverage_max_power(s, plan).feasible);
}

TEST(IlpqcTest, FinerGridNeverWorse) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 300.0;
    cfg.subscriber_count = 10;
    const Scenario s = sim::generate_scenario(cfg, 33);
    const auto coarse =
        solve_ilpqc_coverage(s, prune_useless_candidates(s, gac_candidates(s, 40.0)));
    const auto fine =
        solve_ilpqc_coverage(s, prune_useless_candidates(s, gac_candidates(s, 14.0)));
    ASSERT_TRUE(coarse.feasible);
    ASSERT_TRUE(fine.feasible);
    EXPECT_LE(fine.rs_count(), coarse.rs_count());
}

TEST(IlpqcTest, NodeBudgetGivesAnytimeAnswer) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 20;
    const Scenario s = sim::generate_scenario(cfg, 5);
    IlpqcOptions opts;
    opts.node_budget = 3;  // practically nothing
    const auto plan =
        solve_ilpqc_coverage(s, prune_useless_candidates(s, gac_candidates(s, 20.0)), opts);
    // The greedy fallback should still deliver a feasible cover here.
    ASSERT_TRUE(plan.feasible);
    EXPECT_TRUE(verify_coverage_max_power(s, plan).feasible);
}

/// Property sweep: on random instances the ILPQC plan always passes the
/// independent verifier and is no larger than the subscriber count.
class IlpqcProperty : public ::testing::TestWithParam<int> {};

TEST_P(IlpqcProperty, PlansVerifyEndToEnd) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 14;
    const Scenario s = sim::generate_scenario(cfg, GetParam());
    const auto plan = solve_ilpqc_coverage(s, iac_candidates(s));
    if (!plan.feasible) GTEST_SKIP() << "instance infeasible under IAC";
    EXPECT_LE(plan.rs_count(), s.subscriber_count());
    const auto report = verify_coverage_max_power(s, plan);
    EXPECT_TRUE(report.feasible) << report.violations << " violations";
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpqcProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace sag::core
