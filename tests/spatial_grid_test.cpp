#include <random>

#include <gtest/gtest.h>

#include "sag/geometry/circle.h"
#include "sag/geometry/spatial_grid.h"

namespace sag::geom {
namespace {

TEST(SpatialGridTest, EmptyIndex) {
    const SpatialGrid grid({}, 10.0);
    EXPECT_EQ(grid.size(), 0u);
    EXPECT_TRUE(grid.query_radius({0, 0}, 100.0).empty());
    EXPECT_TRUE(grid.all_pairs_within(100.0).empty());
}

TEST(SpatialGridTest, RejectsBadCellSize) {
    EXPECT_THROW(SpatialGrid({{0, 0}}, 0.0), std::invalid_argument);
    EXPECT_THROW(SpatialGrid({{0, 0}}, -5.0), std::invalid_argument);
}

TEST(SpatialGridTest, QueryRadiusInclusiveBoundary) {
    const SpatialGrid grid({{0, 0}, {10, 0}, {20, 0}}, 7.0);
    const auto hits = grid.query_radius({0, 0}, 10.0);
    EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1}));  // 20 excluded
    EXPECT_EQ(grid.query_radius({0, 0}, 9.99).size(), 1u);
}

TEST(SpatialGridTest, NegativeRadiusEmpty) {
    const SpatialGrid grid({{0, 0}}, 5.0);
    EXPECT_TRUE(grid.query_radius({0, 0}, -1.0).empty());
}

TEST(SpatialGridTest, NegativeCoordinatesHandled) {
    const SpatialGrid grid({{-100, -100}, {-95, -100}, {100, 100}}, 8.0);
    const auto hits = grid.query_radius({-100, -100}, 6.0);
    EXPECT_EQ(hits, (std::vector<std::size_t>{0, 1}));
}

TEST(SpatialGridTest, PairsEachReportedOnceSorted) {
    const SpatialGrid grid({{0, 0}, {3, 0}, {6, 0}}, 4.0);
    const auto pairs = grid.all_pairs_within(3.5);
    ASSERT_EQ(pairs.size(), 2u);
    EXPECT_EQ(pairs[0], std::make_pair(std::size_t{0}, std::size_t{1}));
    EXPECT_EQ(pairs[1], std::make_pair(std::size_t{1}, std::size_t{2}));
}

/// Property: results match the brute-force scan for random point sets and
/// several cell sizes (including pathological ones).
class SpatialGridProperty : public ::testing::TestWithParam<double> {};

TEST_P(SpatialGridProperty, MatchesBruteForce) {
    const double cell = GetParam();
    std::mt19937_64 rng(101);
    std::uniform_real_distribution<double> coord(-500.0, 500.0);
    std::vector<Vec2> pts;
    for (int i = 0; i < 200; ++i) pts.push_back({coord(rng), coord(rng)});
    const SpatialGrid grid(pts, cell);

    for (const double radius : {0.0, 12.0, 80.0, 400.0}) {
        // query_radius vs brute force at a few probes.
        for (int probe = 0; probe < 10; ++probe) {
            const Vec2 c{coord(rng), coord(rng)};
            std::vector<std::size_t> brute;
            for (std::size_t i = 0; i < pts.size(); ++i) {
                if (distance_sq(pts[i], c) <= radius * radius + kEps) brute.push_back(i);
            }
            EXPECT_EQ(grid.query_radius(c, radius), brute)
                << "cell " << cell << " radius " << radius;
        }
        // all_pairs_within vs brute force.
        std::vector<std::pair<std::size_t, std::size_t>> brute_pairs;
        for (std::size_t i = 0; i < pts.size(); ++i) {
            for (std::size_t j = i + 1; j < pts.size(); ++j) {
                if (distance_sq(pts[i], pts[j]) <= radius * radius + kEps) {
                    brute_pairs.emplace_back(i, j);
                }
            }
        }
        EXPECT_EQ(grid.all_pairs_within(radius), brute_pairs)
            << "cell " << cell << " radius " << radius;
    }
}

INSTANTIATE_TEST_SUITE_P(CellSizes, SpatialGridProperty,
                         ::testing::Values(1.0, 25.0, 150.0, 2000.0));

}  // namespace
}  // namespace sag::geom
