#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "sag/sim/paper_presets.h"
#include "sag/exec/thread_pool.h"

namespace sag::sim {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
    exec::ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturnsImmediately) {
    exec::ThreadPool pool(2);
    pool.wait_idle();  // must not hang
    SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsPicksHardwareConcurrency) {
    exec::ThreadPool pool(0);
    EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
    exec::ThreadPool pool(3);
    std::atomic<int> counter{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 20; ++i) {
            pool.submit([&counter] { counter.fetch_add(1); });
        }
        pool.wait_idle();
        EXPECT_EQ(counter.load(), (wave + 1) * 20);
    }
}

TEST(ParallelForTest, EachIndexWritesItsSlot) {
    exec::ThreadPool pool(4);
    std::vector<std::size_t> out(257, 0);
    exec::parallel_for_index(pool, out.size(),
                       [&](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelForTest, ZeroCountIsNoop) {
    exec::ThreadPool pool(2);
    exec::parallel_for_index(pool, 0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ParallelForTest, DeterministicReductionViaSlots) {
    // The pattern benches use: evaluate seeds in parallel into slots,
    // reduce serially -> identical result regardless of thread count.
    const auto compute = [](std::size_t threads) {
        exec::ThreadPool pool(threads);
        std::vector<double> slot(40);
        exec::parallel_for_index(pool, slot.size(), [&](std::size_t i) {
            double acc = 0.0;
            for (std::size_t k = 0; k <= i; ++k) acc += std::sqrt(double(k + 1));
            slot[i] = acc;
        });
        return std::accumulate(slot.begin(), slot.end(), 0.0);
    };
    EXPECT_DOUBLE_EQ(compute(1), compute(7));
}

TEST(PaperPresetsTest, MatchSectionFourSettings) {
    const auto base = presets::evaluation_base();
    EXPECT_DOUBLE_EQ(base.min_distance_request, 30.0);
    EXPECT_DOUBLE_EQ(base.max_distance_request, 40.0);
    EXPECT_DOUBLE_EQ(base.snr_threshold_db.db(), -15.0);
    EXPECT_EQ(base.base_station_count, 4u);

    EXPECT_DOUBLE_EQ(presets::field500(20).field_side, 500.0);
    EXPECT_EQ(presets::field500(20).subscriber_count, 20u);
    EXPECT_DOUBLE_EQ(presets::field800(70).field_side, 800.0);
    EXPECT_DOUBLE_EQ(presets::field800_relaxed(50).snr_threshold_db.db(), -40.0);
    EXPECT_DOUBLE_EQ(presets::field300(10).field_side, 300.0);
    EXPECT_DOUBLE_EQ(presets::snr_sweep_point(units::Decibel{-11.55}).snr_threshold_db.db(), -11.55);
    EXPECT_EQ(presets::topology_showcase().bs_layout, BsLayout::Corners);
}

TEST(PaperPresetsTest, PresetsGenerateValidScenarios) {
    for (const auto& cfg :
         {presets::field500(20), presets::field800(70), presets::field300(10),
          presets::topology_showcase()}) {
        EXPECT_NO_THROW((void)generate_scenario(cfg, 1));
    }
}

}  // namespace
}  // namespace sag::sim
