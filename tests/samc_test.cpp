#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/samc.h"
#include "sag/ids/ids.h"
#include "sag/core/snr.h"
#include "sag/opt/hitting_set.h"
#include "sag/sim/scenario_gen.h"

namespace sag::core {
namespace {

using ids::RsId;
using ids::SsId;

using samc_detail::coverage_link_escape;
using samc_detail::sliding_movement;

Scenario base_scenario(double side = 500.0) {
    Scenario s;
    s.field = geom::Rect::centered_square(side);
    s.base_stations = {{{0.0, 0.0}}};
    s.snr_threshold_db = units::Decibel{-15.0};
    // Hand-constructed cases reason about pure interference geometry;
    // generator-based integration tests below keep the default noise.
    s.radio.snr_ambient_noise = units::Watt{0.0};
    return s;
}

TEST(CoverageLinkEscapeTest, AssignsEverySubscriberExactlyOnce) {
    Scenario s = base_scenario();
    s.subscribers = {{{-30.0, 0.0}, 35.0}, {{30.0, 0.0}, 35.0}, {{0.0, 30.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}, SsId{2}};
    const geom::Vec2 points[] = {{0.0, 0.0}, {100.0, 100.0}};
    const auto za = coverage_link_escape(s, subs, points);
    ASSERT_EQ(za.serving.size(), 3u);
    for (const RsId p : za.serving) EXPECT_EQ(p, RsId{0});  // all reach point 0
}

TEST(CoverageLinkEscapeTest, HighDegreePointClaimsFirst) {
    Scenario s = base_scenario();
    // Point 0 covers subs 0,1; point 1 covers all three (degree 3) and
    // must claim every subscriber first.
    s.subscribers = {{{-10.0, 0.0}, 35.0}, {{10.0, 0.0}, 35.0}, {{60.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}, SsId{2}};
    const geom::Vec2 points[] = {{0.0, 0.0}, {25.0, 0.0}};
    const auto za = coverage_link_escape(s, subs, points);
    // Point 1 covers all three -> claims them all; point 0 ends one-on-none.
    EXPECT_EQ(za.serving[SsId{0}], RsId{1});
    EXPECT_EQ(za.serving[SsId{1}], RsId{1});
    EXPECT_EQ(za.serving[SsId{2}], RsId{1});
}

TEST(CoverageLinkEscapeTest, RespectsDistanceRequests) {
    Scenario s = base_scenario();
    s.subscribers = {{{-100.0, 0.0}, 30.0}, {{100.0, 0.0}, 30.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    const geom::Vec2 points[] = {{-100.0, 0.0}, {100.0, 0.0}};
    const auto za = coverage_link_escape(s, subs, points);
    EXPECT_EQ(za.serving[SsId{0}], RsId{0});
    EXPECT_EQ(za.serving[SsId{1}], RsId{1});
}

TEST(SlidingMovementTest, OneOnOneRsMovesOntoSubscriber) {
    Scenario s = base_scenario();
    s.subscribers = {{{-100.0, 0.0}, 30.0}, {{100.0, 0.0}, 30.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    samc_detail::ZoneAssignment za;
    za.points = {{-90.0, 0.0}, {110.0, 0.0}};  // inside circles but offset
    za.serving = {RsId{0}, RsId{1}};
    const auto slide = sliding_movement(s, subs, za, {});
    ASSERT_TRUE(slide.feasible);
    EXPECT_EQ(slide.points[0], s.subscribers[0].pos);
    EXPECT_EQ(slide.points[1], s.subscribers[1].pos);
}

TEST(SlidingMovementTest, MultiCoverRsStaysWhenSnrHolds) {
    Scenario s = base_scenario();
    s.subscribers = {{{-20.0, 0.0}, 35.0}, {{20.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    samc_detail::ZoneAssignment za;
    za.points = {{0.0, 0.0}};
    za.serving = {RsId{0}, RsId{0}};
    const auto slide = sliding_movement(s, subs, za, {});
    ASSERT_TRUE(slide.feasible);
    EXPECT_EQ(slide.points[0], (geom::Vec2{0.0, 0.0}));  // untouched
}

TEST(SlidingMovementTest, RepairsSnrViolationByRelocation) {
    Scenario s = base_scenario();
    s.snr_threshold_db = units::Decibel{20.0};  // strict: forces separation
    // Sub 0 one-on-one (RS slides onto it); subs 1,2 share an RS placed
    // badly close to sub 0's RS -> sub 0's SNR initially violated.
    s.subscribers = {{{-80.0, 0.0}, 35.0}, {{40.0, 0.0}, 35.0}, {{100.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}, SsId{2}};
    samc_detail::ZoneAssignment za;
    za.points = {{-80.0, 0.0}, {68.0, 5.0}};
    za.serving = {RsId{0}, RsId{1}, RsId{1}};
    const auto slide = sliding_movement(s, subs, za, {});
    EXPECT_TRUE(slide.feasible);
    // Relocated RS must still cover both its subscribers.
    EXPECT_LE(geom::distance(slide.points[1], s.subscribers[1].pos), 35.0 + 1e-6);
    EXPECT_LE(geom::distance(slide.points[1], s.subscribers[2].pos), 35.0 + 1e-6);
}

TEST(SlidingMovementTest, ImpossibleSnrReportsInfeasible) {
    Scenario s = base_scenario();
    s.snr_threshold_db = units::Decibel{60.0};  // cannot hold with two radiators nearby
    s.subscribers = {{{-45.0, 0.0}, 35.0}, {{45.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    samc_detail::ZoneAssignment za;
    za.points = {{-45.0, 0.0}, {45.0, 0.0}};
    za.serving = {RsId{0}, RsId{1}};
    const auto slide = sliding_movement(s, subs, za, {});
    EXPECT_FALSE(slide.feasible);
}

TEST(SamcTest, EmptyScenario) {
    Scenario s = base_scenario();
    const auto result = solve_samc(s);
    EXPECT_TRUE(result.plan.feasible);
    EXPECT_EQ(result.plan.rs_count(), 0u);
    EXPECT_TRUE(result.zones.empty());
}

TEST(SamcTest, SingleSubscriberGetsDedicatedRs) {
    Scenario s = base_scenario();
    s.subscribers = {{{50.0, 50.0}, 35.0}};
    const auto result = solve_samc(s);
    ASSERT_TRUE(result.plan.feasible);
    EXPECT_EQ(result.plan.rs_count(), 1u);
    EXPECT_TRUE(verify_coverage_max_power(s, result.plan).feasible);
}

TEST(SamcTest, RsCountEqualsHittingSetCount) {
    // The paper's key property: SAMC never adds/removes RSs while fixing
    // SNR, so its count equals the per-zone hitting set's.
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 18;
    const Scenario s = sim::generate_scenario(cfg, 71);
    const auto result = solve_samc(s);
    std::size_t hitting_total = 0;
    for (const auto& zone : result.zones) {
        std::vector<geom::Circle> disks;
        for (const SsId j : zone) disks.push_back(s.feasible_circle(j));
        hitting_total += opt::geometric_hitting_set(disks, {}).size();
    }
    EXPECT_EQ(result.plan.rs_count(), hitting_total);
}

TEST(SamcTest, AssignmentsRespectDistanceRequests) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 800.0;
    cfg.subscriber_count = 25;
    const Scenario s = sim::generate_scenario(cfg, 17);
    const auto result = solve_samc(s);
    ASSERT_TRUE(result.plan.feasible);
    for (const SsId j : s.ss_ids()) {
        const auto& rs =
            result.plan.rs_positions[result.plan.assignment[j].index()];
        EXPECT_LE(geom::distance(rs, s.subscriber(j).pos),
                  s.subscriber(j).distance_request + 1e-6);
    }
}

/// Property: SAMC plans verify end-to-end (distance, rate, SNR) on random
/// instances across field sizes and seeds.
class SamcProperty
    : public ::testing::TestWithParam<std::tuple<int, double, std::size_t>> {};

TEST_P(SamcProperty, PlanVerifies) {
    const auto [seed, side, n] = GetParam();
    sim::GeneratorConfig cfg;
    cfg.field_side = side;
    cfg.subscriber_count = n;
    const Scenario s = sim::generate_scenario(cfg, seed);
    const auto result = solve_samc(s);
    ASSERT_TRUE(result.plan.feasible) << "SAMC infeasible";
    const auto report = verify_coverage_max_power(s, result.plan);
    EXPECT_TRUE(report.feasible) << report.violations << " violations";
    EXPECT_LE(result.plan.rs_count(), s.subscriber_count());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SamcProperty,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(500.0, 800.0),
                       ::testing::Values(std::size_t{10}, std::size_t{25})));

}  // namespace
}  // namespace sag::core
