// Pinned-output regression tests: exact solver outputs for fixed seeds.
// These WILL break when an algorithm changes behaviour — that is the
// point: any diff here must be explained (and EXPERIMENTS.md re-run)
// rather than slipping silently into the benchmark numbers.
//
// Environment: 500x500 field, 20 subscribers, 4 BSs, SNR -15 dB, default
// RadioParams (alpha 3, Pmax 50, ambient noise 0.065).
#include <gtest/gtest.h>

#include "sag/core/candidates.h"
#include "sag/core/ilpqc.h"
#include "sag/core/sag.h"
#include "sag/sim/scenario_gen.h"

namespace sag::core {
namespace {

struct Anchor {
    int seed;
    std::size_t samc_rs;
    std::size_t connectivity_rs;
    double lower_power;
    double upper_power;
    std::size_t iac_rs;
};

constexpr Anchor kAnchors[] = {
    {1, 14, 34, 300.009471, 1035.531176, 14},
    {2, 13, 28, 250.009543, 904.452404, 13},
    {3, 15, 34, 200.013230, 1029.232184, 15},
};

class RegressionAnchors : public ::testing::TestWithParam<Anchor> {};

TEST_P(RegressionAnchors, PipelineOutputsPinned) {
    const Anchor& a = GetParam();
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 20;
    cfg.base_station_count = 4;
    const auto s = sim::generate_scenario(cfg, a.seed);

    const auto result = solve_sag(s);
    ASSERT_TRUE(result.feasible);
    EXPECT_EQ(result.coverage_rs_count(), a.samc_rs);
    EXPECT_EQ(result.connectivity_rs_count(), a.connectivity_rs);
    EXPECT_NEAR(result.lower_tier_power(), a.lower_power, 1e-4);
    EXPECT_NEAR(result.upper_tier_power(), a.upper_power, 1e-4);
}

TEST_P(RegressionAnchors, IlpqcOutputsPinned) {
    const Anchor& a = GetParam();
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 20;
    cfg.base_station_count = 4;
    const auto s = sim::generate_scenario(cfg, a.seed);
    const auto plan = solve_ilpqc_coverage(s, iac_candidates(s));
    ASSERT_TRUE(plan.feasible);
    EXPECT_TRUE(plan.proven_optimal);
    EXPECT_EQ(plan.rs_count(), a.iac_rs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegressionAnchors, ::testing::ValuesIn(kAnchors),
                         [](const auto& info) {
                             return "seed" + std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace sag::core
