#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "sag/core/candidates.h"
#include "sag/core/scenario.h"
#include "sag/core/zone_partition.h"
#include "sag/sim/scenario_gen.h"
#include "sag/units/units.h"
#include "sag/wireless/two_ray.h"

namespace sag::core {
namespace {

Scenario tiny_scenario() {
    Scenario s;
    s.field = geom::Rect::centered_square(500.0);
    s.subscribers = {{{0.0, 0.0}, 30.0}, {{100.0, 0.0}, 40.0}};
    s.base_stations = {{{-200.0, -200.0}}};
    s.snr_threshold_db = units::Decibel{-15.0};
    return s;
}

TEST(ScenarioTest, SnrThresholdConversion) {
    Scenario s = tiny_scenario();
    EXPECT_NEAR(s.snr_threshold_linear(),
                units::from_db(units::Decibel{-15.0}).ratio(), 1e-15);
}

TEST(ScenarioTest, FeasibleCircleMatchesSubscriber) {
    Scenario s = tiny_scenario();
    const auto c = s.feasible_circle(ids::SsId{1});
    EXPECT_EQ(c.center, (geom::Vec2{100.0, 0.0}));
    EXPECT_DOUBLE_EQ(c.radius, 40.0);
    EXPECT_EQ(s.feasible_circles().size(), 2u);
}

TEST(ScenarioTest, MinRxPowerIsPowerAtDistanceRequest) {
    Scenario s = tiny_scenario();
    const units::Watt expect =
        wireless::received_power(s.radio, s.radio.max_power, units::Meters{30.0});
    EXPECT_NEAR(s.min_rx_power(ids::SsId{0}).watts(), expect.watts(), 1e-15);
    // Larger distance request -> weaker demanded power.
    EXPECT_LT(s.min_rx_power(ids::SsId{1}), s.min_rx_power(ids::SsId{0}));
}

TEST(ScenarioTest, MinDistanceRequest) {
    EXPECT_DOUBLE_EQ(tiny_scenario().min_distance_request(), 30.0);
}

TEST(ScenarioTest, ValidateAcceptsGoodInstance) {
    EXPECT_NO_THROW(tiny_scenario().validate());
}

TEST(ScenarioTest, ValidateRejectsBadInstances) {
    Scenario s = tiny_scenario();
    s.base_stations.clear();
    EXPECT_THROW(s.validate(), std::invalid_argument);

    s = tiny_scenario();
    s.subscribers[0].distance_request = 0.0;
    EXPECT_THROW(s.validate(), std::invalid_argument);

    s = tiny_scenario();
    s.subscribers[0].pos = {400.0, 0.0};  // outside field
    EXPECT_THROW(s.validate(), std::invalid_argument);

    s = tiny_scenario();
    s.base_stations[0].pos = {0.0, 9999.0};
    EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(ZonePartitionTest, DmaxMatchesNmaxDefinition) {
    Scenario s = tiny_scenario();
    const double dmax = zone_partition_dmax(s);
    EXPECT_NEAR(wireless::received_power(s.radio, s.radio.max_power,
                                         units::Meters{dmax})
                    .watts(),
                s.radio.ignorable_noise.watts(), 1e-12);
}

TEST(ZonePartitionTest, NearbySubscribersShareAZone) {
    Scenario s = tiny_scenario();  // 100 apart, d_eff = 60 < dmax(~150)
    const auto zones = zone_partition(s);
    ASSERT_EQ(zones.size(), 1u);
    EXPECT_EQ(zones[ids::ZoneId{0}].size(), 2u);
}

TEST(ZonePartitionTest, FarSubscribersSplit) {
    Scenario s = tiny_scenario();
    s.field = geom::Rect::centered_square(2000.0);
    s.subscribers[1].pos = {900.0, 0.0};  // d_eff = 860 >> dmax
    const auto zones = zone_partition(s);
    EXPECT_EQ(zones.size(), 2u);
}

TEST(ZonePartitionTest, ZonesPartitionTheSubscribers) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 2000.0;
    cfg.subscriber_count = 40;
    const Scenario s = sim::generate_scenario(cfg, 3);
    const auto zones = zone_partition(s);
    std::set<ids::SsId> seen;
    for (const auto& z : zones) {
        EXPECT_FALSE(z.empty());
        for (const ids::SsId j : z) EXPECT_TRUE(seen.insert(j).second);
    }
    EXPECT_EQ(seen.size(), s.subscriber_count());
}

TEST(ZonePartitionTest, InterZoneStationsCannotInterfereAboveNmax) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 3000.0;
    cfg.subscriber_count = 30;
    const Scenario s = sim::generate_scenario(cfg, 9);
    const double dmax = zone_partition_dmax(s);
    const auto zones = zone_partition(s);
    // For subscribers in different zones: any RS within s_i's circle is
    // at least dmax from s_j.
    for (std::size_t a = 0; a < zones.size(); ++a) {
        for (std::size_t b = a + 1; b < zones.size(); ++b) {
            for (const ids::SsId i : zones[ids::ZoneId{a}]) {
                for (const ids::SsId j : zones[ids::ZoneId{b}]) {
                    const double dist = geom::distance(s.subscriber(i).pos,
                                                       s.subscriber(j).pos);
                    const double d_eff =
                        std::min(dist - s.subscriber(i).distance_request,
                                 dist - s.subscriber(j).distance_request);
                    EXPECT_GT(d_eff, dmax);
                }
            }
        }
    }
}

TEST(CandidatesTest, IacContainsIntersectionsOfOverlappingCircles) {
    Scenario s = tiny_scenario();
    s.subscribers = {{{0.0, 0.0}, 40.0}, {{50.0, 0.0}, 40.0}};
    const auto cands = iac_candidates(s);
    EXPECT_EQ(cands.size(), 2u);  // two boundary intersections
    for (const auto& p : cands) {
        EXPECT_TRUE(s.feasible_circle(ids::SsId{0}).on_boundary(p, 1e-6));
        EXPECT_TRUE(s.feasible_circle(ids::SsId{1}).on_boundary(p, 1e-6));
    }
}

TEST(CandidatesTest, IacAddsCenterForIsolatedSubscriber) {
    Scenario s = tiny_scenario();
    s.subscribers = {{{0.0, 0.0}, 30.0}, {{200.0, 0.0}, 30.0}};
    const auto cands = iac_candidates(s);
    ASSERT_EQ(cands.size(), 2u);  // both isolated: centers only
    EXPECT_EQ(cands[0], (geom::Vec2{0.0, 0.0}));
    EXPECT_EQ(cands[1], (geom::Vec2{200.0, 0.0}));
}

TEST(CandidatesTest, GacDensityTracksGridSize) {
    Scenario s = tiny_scenario();
    const auto coarse = gac_candidates(s, 50.0);
    const auto fine = gac_candidates(s, 20.0);
    EXPECT_EQ(coarse.size(), 100u);
    EXPECT_EQ(fine.size(), 625u);
    for (const auto& p : fine) EXPECT_TRUE(s.field.contains(p));
}

TEST(CandidatesTest, PruneRemovesUncoveringPositions) {
    Scenario s = tiny_scenario();
    auto cands = gac_candidates(s, 25.0);
    const std::size_t before = cands.size();
    cands = prune_useless_candidates(s, std::move(cands));
    EXPECT_LT(cands.size(), before);
    for (const auto& p : cands) {
        const bool covers_some =
            s.feasible_circle(ids::SsId{0}).contains(p, 1e-6) ||
            s.feasible_circle(ids::SsId{1}).contains(p, 1e-6);
        EXPECT_TRUE(covers_some);
    }
}

TEST(GeneratorTest, Deterministic) {
    sim::GeneratorConfig cfg;
    cfg.subscriber_count = 15;
    const Scenario a = sim::generate_scenario(cfg, 42);
    const Scenario b = sim::generate_scenario(cfg, 42);
    ASSERT_EQ(a.subscriber_count(), b.subscriber_count());
    for (std::size_t i = 0; i < a.subscriber_count(); ++i) {
        EXPECT_EQ(a.subscribers[i].pos, b.subscribers[i].pos);
        EXPECT_EQ(a.subscribers[i].distance_request, b.subscribers[i].distance_request);
    }
    const Scenario c = sim::generate_scenario(cfg, 43);
    EXPECT_NE(a.subscribers[0].pos, c.subscribers[0].pos);
}

TEST(GeneratorTest, RespectsConfig) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 800.0;
    cfg.subscriber_count = 25;
    cfg.base_station_count = 3;
    cfg.snr_threshold_db = units::Decibel{-20.0};
    const Scenario s = sim::generate_scenario(cfg, 1);
    EXPECT_EQ(s.subscriber_count(), 25u);
    EXPECT_EQ(s.base_stations.size(), 3u);
    EXPECT_DOUBLE_EQ(s.snr_threshold_db.db(), -20.0);
    EXPECT_DOUBLE_EQ(s.field.width(), 800.0);
    for (const auto& sub : s.subscribers) {
        EXPECT_GE(sub.distance_request, 30.0);
        EXPECT_LE(sub.distance_request, 40.0);
        EXPECT_TRUE(s.field.contains(sub.pos));
    }
}

TEST(GeneratorTest, CornersLayoutPlacesBsAtInsetCorners) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 600.0;
    cfg.base_station_count = 4;
    cfg.bs_layout = sim::BsLayout::Corners;
    const Scenario s = sim::generate_scenario(cfg, 8);
    ASSERT_EQ(s.base_stations.size(), 4u);
    for (const auto& b : s.base_stations) {
        EXPECT_NEAR(std::abs(b.pos.x), 240.0, 1e-9);
        EXPECT_NEAR(std::abs(b.pos.y), 240.0, 1e-9);
    }
}

TEST(GeneratorTest, RejectsBadConfig) {
    sim::GeneratorConfig cfg;
    cfg.field_side = -5.0;
    EXPECT_THROW((void)sim::generate_scenario(cfg, 1), std::invalid_argument);
    cfg = {};
    cfg.base_station_count = 0;
    EXPECT_THROW((void)sim::generate_scenario(cfg, 1), std::invalid_argument);
    cfg = {};
    cfg.max_distance_request = 10.0;  // below min
    EXPECT_THROW((void)sim::generate_scenario(cfg, 1), std::invalid_argument);
}

}  // namespace
}  // namespace sag::core
