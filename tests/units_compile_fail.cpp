// Negative compile test: each guarded block below must FAIL to compile.
// tests/CMakeLists.txt runs this file through the compiler once per
// SAG_CF_* macro with WILL_FAIL set, so a unit-safety hole that makes any
// of these expressions legal turns into a test failure. A final
// no-macro pass must succeed, proving the harness itself compiles.
//
// Keep each block to ONE ill-formed expression so a failure pinpoints
// exactly which operation regressed.

#include "sag/units/units.h"

namespace {

using sag::units::Decibel;
using sag::units::DecibelMilliwatt;
using sag::units::Meters;
using sag::units::SnrRatio;
using sag::units::Watt;

void must_not_compile() {
#if defined(SAG_CF_WATT_PLUS_DB)
    // Linear power plus a log-domain ratio is dimensionally meaningless.
    const auto bad = Watt{1.0} + Decibel{3.0};
    (void)bad;
#elif defined(SAG_CF_WATT_FROM_DOUBLE)
    // No implicit double -> Watt: a bare scalar must name its unit.
    const Watt bad = 50.0;
    (void)bad;
#elif defined(SAG_CF_WATT_TO_DOUBLE)
    // No implicit Watt -> double: leaving the type system is explicit.
    const double bad = Watt{50.0};
    (void)bad;
#elif defined(SAG_CF_WATT_PLUS_MILLIWATT)
    // Same dimension, different scale: convert explicitly first.
    const auto bad = Watt{1.0} + sag::units::Milliwatt{1.0};
    (void)bad;
#elif defined(SAG_CF_DB_PLUS_DBM)
    // dBm + dBm would multiply two absolute powers: nonsense.
    const auto bad = DecibelMilliwatt{10.0} + DecibelMilliwatt{10.0};
    (void)bad;
#elif defined(SAG_CF_METERS_TIMES_WATT)
    // There is no meter-watt quantity in this codebase.
    const auto bad = Meters{40.0} * Watt{50.0};
    (void)bad;
#elif defined(SAG_CF_CROSS_TYPE_COMPARE)
    // Comparing a distance against a power must not compile.
    const bool bad = Meters{40.0} < Watt{50.0};
    (void)bad;
#else
    // Positive control: with no SAG_CF_* macro the file is well-formed,
    // so a broken include path can't masquerade as "all negatives pass".
    const Watt ok = Watt{1.0} + SnrRatio{2.0} * Watt{3.0};
    (void)ok;
#endif
}

}  // namespace

int main() {
    must_not_compile();
    return 0;
}
