// serve::Session — the online churn-serving engine. The load-bearing
// contract under test is the never-silently-wrong invariant: after
// *every* event the outcome is either independently verified or
// explicitly degraded (`verified || degraded`), whatever the ladder
// did, whatever faults were injected, and at whatever thread count.
#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/io/event_io.h"
#include "sag/serve/event.h"
#include "sag/serve/fault.h"
#include "sag/serve/session.h"
#include "sag/sim/scenario_gen.h"

namespace sag::serve {
namespace {

core::Scenario make_scenario(int seed, std::size_t subscribers = 20) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = subscribers;
    cfg.base_station_count = 4;
    return sim::generate_scenario(cfg, seed);
}

Event ss_join(std::uint64_t key, geom::Vec2 pos, double d) {
    Event e;
    e.kind = EventKind::SsJoin;
    e.key = key;
    e.pos = pos;
    e.distance_request = d;
    return e;
}

Event ss_leave(std::uint64_t key) {
    Event e;
    e.kind = EventKind::SsLeave;
    e.key = key;
    return e;
}

Event ss_move(std::uint64_t key, geom::Vec2 pos) {
    Event e;
    e.kind = EventKind::SsMove;
    e.key = key;
    e.pos = pos;
    return e;
}

Event rs_event(EventKind kind, std::size_t slot, double factor = 1.0) {
    Event e;
    e.kind = kind;
    e.rs = ids::RsId{slot};
    e.factor = factor;
    return e;
}

/// The per-event robustness contract, asserted after every apply().
void expect_contract(const EventOutcome& out) {
    EXPECT_TRUE(out.verified || out.degraded)
        << "event " << out.event_index << " (" << to_string(out.level)
        << "): neither verified nor flagged degraded";
}

/// Seeded churn stream over a session's key/slot space. Rejected events
/// (stale keys and slots are generated on purpose) are part of the
/// stream: the session must answer them, not die on them.
std::vector<Event> churn_stream(int seed, std::size_t initial_subscribers,
                                std::size_t rs_slots, std::size_t count,
                                double field_side = 500.0) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    std::uniform_real_distribution<double> coord(0.0, field_side);
    std::uniform_real_distribution<double> rate(28.0, 42.0);
    std::uniform_real_distribution<double> factor(0.4, 1.0);
    std::vector<std::uint64_t> live(initial_subscribers);
    for (std::size_t k = 0; k < initial_subscribers; ++k) live[k] = k;
    std::uint64_t next_key = initial_subscribers;

    std::vector<Event> events;
    events.reserve(count);
    const std::size_t target = initial_subscribers;
    while (events.size() < count) {
        const int kind = static_cast<int>(rng() % 10);
        Event e;
        if (kind < 4) {  // population churn, regulated toward `target`
            if (live.size() < target ||
                (live.size() == target && rng() % 2 == 0)) {
                e = ss_join(next_key++, {coord(rng), coord(rng)}, rate(rng));
                live.push_back(e.key);
            } else {
                const std::size_t at = rng() % live.size();
                e = ss_leave(live[at]);
                live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
            }
        } else if (kind < 7 && !live.empty()) {  // move
            e = ss_move(live[rng() % live.size()], {coord(rng), coord(rng)});
        } else if (kind < 8 && !live.empty()) {  // rate change
            e.kind = EventKind::SsRate;
            e.key = live[rng() % live.size()];
            e.distance_request = rate(rng);
        } else if (kind < 9) {  // fail (may be rejected: already failed)
            e = rs_event(EventKind::RsFail, rng() % rs_slots);
        } else if (rng() % 2 == 0) {  // recover (may be rejected)
            e = rs_event(EventKind::RsRecover, rng() % rs_slots);
        } else {  // degrade (may be rejected)
            e = rs_event(EventKind::RsDegrade, rng() % rs_slots, factor(rng));
        }
        events.push_back(e);
    }
    return events;
}

// --- Lifecycle ---------------------------------------------------------------

TEST(ServeSessionTest, SeededDeploymentStartsHealthy) {
    const core::Scenario scenario = make_scenario(3);
    const core::SagResult deployment = core::solve_sag(scenario);
    ASSERT_TRUE(deployment.feasible);
    Session session(scenario, deployment);
    EXPECT_EQ(session.event_count(), 0u);
    EXPECT_EQ(session.live_subscriber_count(), scenario.subscriber_count());
    EXPECT_EQ(session.unserved_count(), 0u);
    EXPECT_GT(session.active_rs_count(), 0u);
    EXPECT_GT(session.total_power(), 0.0);
    const Session::Snapshot snap = session.snapshot();
    EXPECT_TRUE(snap.verified);
    EXPECT_FALSE(snap.degraded);
    EXPECT_TRUE(core::verify_coverage(snap.covered_scenario, snap.plan,
                                      snap.powers)
                    .feasible);
}

TEST(ServeSessionTest, JoinServeLeaveRoundTrip) {
    const core::Scenario scenario = make_scenario(5);
    Session session(scenario);
    const std::size_t before = session.live_subscriber_count();

    // Join at subscriber 0's exact position: coverable, so the repair
    // either re-homes it onto the existing plan or patches a relay in.
    const EventOutcome joined = session.apply(
        ss_join(100, scenario.subscribers[0].pos,
                scenario.subscribers[0].distance_request));
    expect_contract(joined);
    EXPECT_NE(joined.level, RepairLevel::Rejected);
    EXPECT_EQ(session.live_subscriber_count(), before + 1);
    EXPECT_EQ(session.unserved_count(), 0u);
    EXPECT_GE(joined.rehomed + joined.patched, 1u);

    const EventOutcome left = session.apply(ss_leave(100));
    expect_contract(left);
    EXPECT_EQ(session.live_subscriber_count(), before);
    EXPECT_EQ(session.unserved_count(), 0u);
    EXPECT_EQ(session.event_count(), 2u);
}

TEST(ServeSessionTest, MoveWithinReachStaysVerified) {
    const core::Scenario scenario = make_scenario(7);
    Session session(scenario);
    // A no-op move (same position) must keep the plan fully verified.
    const EventOutcome out =
        session.apply(ss_move(0, scenario.subscribers[0].pos));
    expect_contract(out);
    EXPECT_EQ(out.level, RepairLevel::Full);
    EXPECT_TRUE(out.verified);
    EXPECT_EQ(out.unserved, 0u);
}

// --- Validation: bad events are Rejected, never a crash or a mutation --------

TEST(ServeSessionTest, InvalidEventsAreRejectedWithoutMutation) {
    const core::Scenario scenario = make_scenario(11);
    Session session(scenario);
    const std::size_t live = session.live_subscriber_count();
    const std::size_t pool = session.pool_rs_count();
    const double power = session.total_power();

    const struct {
        Event event;
        const char* reason;
    } cases[] = {
        {ss_leave(9999), "unknown subscriber key"},
        {ss_join(0, {1.0, 1.0}, 30.0), "duplicate subscriber key"},
        {ss_join(200, {std::numeric_limits<double>::quiet_NaN(), 0.0}, 30.0),
         "non-finite position"},
        {ss_join(200, {1.0, 1.0}, -5.0), "non-positive distance request"},
        {ss_move(9999, {1.0, 1.0}), "unknown subscriber key"},
        {rs_event(EventKind::RsFail, pool + 7), "RS slot out of range"},
        {rs_event(EventKind::RsRecover, 0), "RS is not failed"},
        {rs_event(EventKind::RsDegrade, 0, 1.5),
         "degradation factor outside (0, 1]"},
        {rs_event(EventKind::RsDegrade, 0, 0.0),
         "degradation factor outside (0, 1]"},
    };
    for (const auto& c : cases) {
        const EventOutcome out = session.apply(c.event);
        EXPECT_EQ(out.level, RepairLevel::Rejected);
        EXPECT_EQ(out.reject_reason, c.reason);
        expect_contract(out);
    }
    EXPECT_EQ(session.live_subscriber_count(), live);
    EXPECT_EQ(session.pool_rs_count(), pool);
    EXPECT_EQ(session.total_power(), power);
    EXPECT_EQ(session.event_count(), std::size(cases));
}

TEST(ServeSessionTest, DoubleFailAndDegradeDeadAreRejected) {
    const core::Scenario scenario = make_scenario(11);
    Session session(scenario);
    expect_contract(session.apply(rs_event(EventKind::RsFail, 0)));
    EXPECT_EQ(session.apply(rs_event(EventKind::RsFail, 0)).reject_reason,
              "RS already failed");
    EXPECT_EQ(session.apply(rs_event(EventKind::RsDegrade, 0, 0.5)).reject_reason,
              "cannot degrade a failed RS");
}

// --- Failure repair ----------------------------------------------------------

TEST(ServeSessionTest, RsFailureRepairsOrFlags) {
    const core::Scenario scenario = make_scenario(13, 25);
    Session session(scenario);
    const std::size_t pool = session.pool_rs_count();
    for (std::size_t slot = 0; slot < pool; ++slot) {
        const EventOutcome out = session.apply(rs_event(EventKind::RsFail, slot));
        if (out.level == RepairLevel::Rejected) continue;
        expect_contract(out);
        // FailureSet semantics: the failure is tracked until recovery.
        const auto& down = session.outstanding_failures().coverage_down;
        EXPECT_TRUE(std::find(down.begin(), down.end(), ids::RsId{slot}) !=
                    down.end());
        // Every SS is either re-homed/patched back in or explicitly
        // flagged unserved — never silently kept on a dead server.
        EXPECT_EQ(out.unserved, session.unserved_keys().size());
        session.apply(rs_event(EventKind::RsRecover, slot));
    }
}

TEST(ServeSessionTest, DegradeThenRecoverRestoresHealth) {
    const core::Scenario scenario = make_scenario(17);
    Session session(scenario);
    const EventOutcome degraded =
        session.apply(rs_event(EventKind::RsDegrade, 0, 0.3));
    expect_contract(degraded);
    EXPECT_EQ(session.outstanding_failures().degraded.size(), 1u);

    // Recovery means replaced hardware: the degradation history clears.
    expect_contract(session.apply(rs_event(EventKind::RsFail, 0)));
    const EventOutcome recovered =
        session.apply(rs_event(EventKind::RsRecover, 0));
    expect_contract(recovered);
    EXPECT_TRUE(session.outstanding_failures().coverage_down.empty());
    EXPECT_TRUE(session.outstanding_failures().degraded.empty());
}

TEST(ServeSessionTest, UnreachableJoinIsFlaggedWhenPatchDisabled) {
    const core::Scenario scenario = make_scenario(19);
    ServeOptions opts;
    opts.max_new_relays_per_event = 0;
    // Flagged SSs trigger the drift re-solve; push it out of this test.
    opts.resolve_horizon = 1000;
    Session session(scenario, opts);
    const EventOutcome out =
        session.apply(ss_join(500, {50000.0, 50000.0}, 30.0));
    EXPECT_NE(out.level, RepairLevel::Rejected);
    expect_contract(out);
    EXPECT_TRUE(out.degraded);
    EXPECT_EQ(out.unserved, 1u);
    EXPECT_EQ(session.unserved_keys(), std::vector<std::uint64_t>{500});
    EXPECT_TRUE(out.resolve_triggered);  // flagged SS fires the budget
}

TEST(ServeSessionTest, UnreachableJoinIsPatchedFromCandidatePool) {
    const core::Scenario scenario = make_scenario(19);
    ServeOptions opts;
    opts.drift_excess_rs = 1000;     // keep the re-solve out of the way
    opts.drift_power_ratio = 1e9;
    Session session(scenario, opts);
    const std::size_t pool = session.pool_rs_count();
    // An isolated far-away SS: its own disc center is an IAC candidate,
    // so the patch stage can always reach it.
    const EventOutcome out =
        session.apply(ss_join(500, {50000.0, 50000.0}, 30.0));
    expect_contract(out);
    EXPECT_EQ(out.patched, 1u);
    EXPECT_EQ(out.unserved, 0u);
    EXPECT_EQ(session.pool_rs_count(), pool + 1);
}

// --- Injected faults exercise the ladder -------------------------------------

TEST(ServeSessionTest, InjectedRehomeTimeoutDegradesEveryEvent) {
    const core::Scenario scenario = make_scenario(23);
    ServeOptions opts;
    FaultOptions faults;
    faults.stage_timeout_probability = 1.0;  // every stage, every event
    faults.seed = 5;
    opts.faults = FaultPlan(faults);
    Session session(scenario, opts);
    for (const Event& e : churn_stream(23, 20, session.pool_rs_count(), 30)) {
        const EventOutcome out = session.apply(e);
        expect_contract(out);
        if (out.level != RepairLevel::Rejected) {
            EXPECT_EQ(out.level, RepairLevel::Degraded);
        }
    }
}

TEST(ServeSessionTest, PartialInjectionWalksTheWholeLadder) {
    const core::Scenario scenario = make_scenario(29);
    ServeOptions opts;
    FaultOptions faults;
    faults.stage_timeout_probability = 0.4;
    faults.seed = 7;
    opts.faults = FaultPlan(faults);
    Session session(scenario, opts);
    std::size_t full = 0, rehome_only = 0, degraded = 0;
    for (const Event& e : churn_stream(29, 20, session.pool_rs_count(), 80)) {
        const EventOutcome out = session.apply(e);
        expect_contract(out);
        full += out.level == RepairLevel::Full ? 1 : 0;
        rehome_only += out.level == RepairLevel::RehomeOnly ? 1 : 0;
        degraded += out.level == RepairLevel::Degraded ? 1 : 0;
    }
    // With p=0.4 per stage over 80 events every rung must have fired.
    EXPECT_GT(full, 0u);
    EXPECT_GT(rehome_only, 0u);
    EXPECT_GT(degraded, 0u);
}

// --- Drift-triggered background re-solve -------------------------------------

TEST(ServeSessionTest, DriftTriggersResolveAndAdoptsAtHorizon) {
    const core::Scenario scenario = make_scenario(31);
    ServeOptions opts;
    opts.drift_excess_rs = 0;  // any patched relay counts as drift
    opts.resolve_horizon = 2;
    Session session(scenario, opts);
    const EventOutcome trigger =
        session.apply(ss_join(500, {50000.0, 50000.0}, 30.0));
    expect_contract(trigger);
    EXPECT_EQ(trigger.patched, 1u);
    EXPECT_TRUE(trigger.resolve_triggered);
    EXPECT_TRUE(session.resolve_pending());

    const EventOutcome pad = session.apply(ss_move(0, scenario.subscribers[0].pos));
    expect_contract(pad);
    EXPECT_FALSE(pad.resolve_adopted);

    // Horizon reached: the snapshot solve swaps in atomically.
    const EventOutcome adopt =
        session.apply(ss_move(1, scenario.subscribers[1].pos));
    expect_contract(adopt);
    EXPECT_TRUE(adopt.resolve_adopted);
    EXPECT_FALSE(session.resolve_pending());
    EXPECT_EQ(session.unserved_count(), 0u);
    // Adoption is a re-deployment: outstanding failures clear.
    EXPECT_TRUE(session.outstanding_failures().coverage_down.empty());
}

TEST(ServeSessionTest, InjectedResolveTimeoutRetriesWithBackoff) {
    const core::Scenario scenario = make_scenario(31);
    ServeOptions opts;
    opts.drift_excess_rs = 0;
    opts.resolve_horizon = 1;
    opts.resolve_backoff_start = 2;
    FaultOptions faults;
    faults.resolve_timeout_probability = 1.0;  // every solve "times out"
    opts.faults = FaultPlan(faults);
    Session session(scenario, opts);
    const EventOutcome trigger =
        session.apply(ss_join(500, {50000.0, 50000.0}, 30.0));
    EXPECT_TRUE(trigger.resolve_triggered);

    // The injected-timeout solve fails at its horizon; no adoption, and
    // the session keeps serving (degraded where it must).
    bool adopted = false;
    std::size_t retriggers = 0;
    for (int i = 0; i < 12; ++i) {
        const EventOutcome out =
            session.apply(ss_move(0, scenario.subscribers[0].pos));
        expect_contract(out);
        adopted = adopted || out.resolve_adopted;
        retriggers += out.resolve_triggered ? 1 : 0;
    }
    EXPECT_FALSE(adopted);
    // Backoff gates the retries: more than one, fewer than every event.
    EXPECT_GE(retriggers, 2u);
    EXPECT_LT(retriggers, 12u);
}

// --- Thread-count determinism ------------------------------------------------

std::string outcome_fingerprint(Session& session,
                                const std::vector<Event>& events) {
    std::string fingerprint;
    for (const Event& e : events) {
        const EventOutcome out = session.apply(e);
        expect_contract(out);
        fingerprint += io::event_outcome_to_json(out).dump();
        fingerprint.push_back('\n');
    }
    return fingerprint;
}

TEST(ServeSessionTest, ThreadedReplayIsByteIdenticalToSerial) {
    const core::Scenario scenario = make_scenario(37, 24);
    const core::SagResult deployment = core::solve_sag(scenario);
    ASSERT_TRUE(deployment.feasible);
    ServeOptions opts;
    opts.drift_excess_rs = 1;   // tight budget: force re-solves to happen
    opts.resolve_horizon = 4;
    FaultOptions faults;
    faults.stage_timeout_probability = 0.1;
    faults.resolve_timeout_probability = 0.3;
    faults.seed = 41;
    opts.faults = FaultPlan(faults);
    const std::vector<Event> events =
        churn_stream(37, 24, deployment.coverage.rs_count(), 60);

    opts.threads = 1;
    Session serial(scenario, deployment, opts);
    const std::string a = outcome_fingerprint(serial, events);

    opts.threads = 2;
    Session threaded(scenario, deployment, opts);
    const std::string b = outcome_fingerprint(threaded, events);

    EXPECT_EQ(a, b);
    EXPECT_EQ(serial.event_count(), threaded.event_count());
    EXPECT_EQ(serial.unserved_keys(), threaded.unserved_keys());
}

}  // namespace
}  // namespace sag::serve
