#include <cmath>
#include <numbers>
#include <random>

#include <gtest/gtest.h>

#include "sag/geometry/circle.h"
#include "sag/geometry/grid.h"
#include "sag/geometry/region.h"
#include "sag/geometry/vec2.h"

namespace sag::geom {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Vec2Test, ArithmeticOperators) {
    const Vec2 a{1.0, 2.0}, b{3.0, -4.0};
    EXPECT_EQ(a + b, (Vec2{4.0, -2.0}));
    EXPECT_EQ(a - b, (Vec2{-2.0, 6.0}));
    EXPECT_EQ(a * 2.0, (Vec2{2.0, 4.0}));
    EXPECT_EQ(2.0 * a, (Vec2{2.0, 4.0}));
    EXPECT_EQ(b / 2.0, (Vec2{1.5, -2.0}));
}

TEST(Vec2Test, CompoundAssignment) {
    Vec2 v{1.0, 1.0};
    v += {2.0, 3.0};
    EXPECT_EQ(v, (Vec2{3.0, 4.0}));
    v -= {1.0, 1.0};
    EXPECT_EQ(v, (Vec2{2.0, 3.0}));
    v *= 2.0;
    EXPECT_EQ(v, (Vec2{4.0, 6.0}));
}

TEST(Vec2Test, DotAndCross) {
    const Vec2 a{1.0, 0.0}, b{0.0, 1.0};
    EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
    EXPECT_DOUBLE_EQ(a.cross(b), 1.0);   // b is CCW of a
    EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
    EXPECT_DOUBLE_EQ(a.dot(a), 1.0);
}

TEST(Vec2Test, NormAndDistance) {
    const Vec2 v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.norm_sq(), 25.0);
    EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, v), 5.0);
    EXPECT_DOUBLE_EQ(distance_sq({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

TEST(Vec2Test, NormalizedUnitLength) {
    const Vec2 v{3.0, 4.0};
    EXPECT_NEAR(v.normalized().norm(), 1.0, 1e-12);
    // Zero vector normalizes to a deterministic unit vector, not NaN.
    EXPECT_EQ((Vec2{0.0, 0.0}).normalized(), (Vec2{1.0, 0.0}));
}

TEST(Vec2Test, RotationPreservesNormAndQuarterTurn) {
    const Vec2 v{1.0, 0.0};
    const Vec2 r = v.rotated(kPi / 2.0);
    EXPECT_NEAR(r.x, 0.0, 1e-12);
    EXPECT_NEAR(r.y, 1.0, 1e-12);
    EXPECT_NEAR(v.rotated(1.234).norm(), 1.0, 1e-12);
}

TEST(Vec2Test, LerpEndpointsAndMidpoint) {
    const Vec2 a{0.0, 0.0}, b{10.0, -6.0};
    EXPECT_EQ(lerp(a, b, 0.0), a);
    EXPECT_EQ(lerp(a, b, 1.0), b);
    EXPECT_EQ(lerp(a, b, 0.5), (Vec2{5.0, -3.0}));
}

TEST(CircleTest, ContainsInteriorBoundaryExterior) {
    const Circle c{{0.0, 0.0}, 5.0};
    EXPECT_TRUE(c.contains({1.0, 1.0}));
    EXPECT_TRUE(c.contains({5.0, 0.0}));            // boundary
    EXPECT_TRUE(c.contains({5.0 + 1e-10, 0.0}));    // inside eps slack
    EXPECT_FALSE(c.contains({5.1, 0.0}));
}

TEST(CircleTest, OnBoundary) {
    const Circle c{{2.0, 3.0}, 4.0};
    EXPECT_TRUE(c.on_boundary({6.0, 3.0}));
    EXPECT_FALSE(c.on_boundary({2.0, 3.0}));
    EXPECT_FALSE(c.on_boundary({6.5, 3.0}));
}

TEST(CircleTest, PointAtAngle) {
    const Circle c{{1.0, 1.0}, 2.0};
    const Vec2 p = c.point_at_angle(kPi);
    EXPECT_NEAR(p.x, -1.0, 1e-12);
    EXPECT_NEAR(p.y, 1.0, 1e-12);
    EXPECT_TRUE(c.on_boundary(c.point_at_angle(0.37)));
}

TEST(CircleIntersectionTest, DisjointCirclesNoIntersection) {
    EXPECT_TRUE(circle_intersections({{0, 0}, 1.0}, {{10, 0}, 2.0}).empty());
}

TEST(CircleIntersectionTest, ContainedCircleNoIntersection) {
    EXPECT_TRUE(circle_intersections({{0, 0}, 10.0}, {{1, 0}, 2.0}).empty());
}

TEST(CircleIntersectionTest, ConcentricCirclesNoIntersection) {
    EXPECT_TRUE(circle_intersections({{0, 0}, 2.0}, {{0, 0}, 2.0}).empty());
    EXPECT_TRUE(circle_intersections({{0, 0}, 2.0}, {{0, 0}, 3.0}).empty());
}

TEST(CircleIntersectionTest, ExternallyTangentSinglePoint) {
    const auto pts = circle_intersections({{0, 0}, 2.0}, {{5, 0}, 3.0});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_NEAR(pts[0].x, 2.0, 1e-9);
    EXPECT_NEAR(pts[0].y, 0.0, 1e-9);
}

TEST(CircleIntersectionTest, InternallyTangentSinglePoint) {
    const auto pts = circle_intersections({{0, 0}, 5.0}, {{2, 0}, 3.0});
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_NEAR(pts[0].x, 5.0, 1e-9);
}

TEST(CircleIntersectionTest, TwoPointsSymmetricAboutCenterLine) {
    const Circle a{{0, 0}, 5.0}, b{{6, 0}, 5.0};
    const auto pts = circle_intersections(a, b);
    ASSERT_EQ(pts.size(), 2u);
    EXPECT_NEAR(pts[0].x, 3.0, 1e-9);
    EXPECT_NEAR(pts[1].x, 3.0, 1e-9);
    EXPECT_NEAR(pts[0].y, -pts[1].y, 1e-9);
    EXPECT_NEAR(pts[0].y * pts[0].y, 16.0, 1e-6);  // 5^2 - 3^2
}

/// Property sweep: intersection points of random circle pairs lie on both
/// boundaries.
class CircleIntersectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(CircleIntersectionProperty, PointsLieOnBothCircles) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> coord(-100.0, 100.0);
    std::uniform_real_distribution<double> radius(1.0, 60.0);
    for (int trial = 0; trial < 100; ++trial) {
        const Circle a{{coord(rng), coord(rng)}, radius(rng)};
        const Circle b{{coord(rng), coord(rng)}, radius(rng)};
        for (const Vec2& p : circle_intersections(a, b)) {
            EXPECT_TRUE(a.on_boundary(p, 1e-5)) << "on a, trial " << trial;
            EXPECT_TRUE(b.on_boundary(p, 1e-5)) << "on b, trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircleIntersectionProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DisksOverlapTest, TouchingAndSeparated) {
    EXPECT_TRUE(disks_overlap({{0, 0}, 2.0}, {{4, 0}, 2.0}));   // touching
    EXPECT_TRUE(disks_overlap({{0, 0}, 3.0}, {{4, 0}, 2.0}));
    EXPECT_FALSE(disks_overlap({{0, 0}, 1.0}, {{4, 0}, 2.0}));
}

TEST(RectTest, GeometryAccessors) {
    const Rect r{{-10.0, -20.0}, {30.0, 20.0}};
    EXPECT_DOUBLE_EQ(r.width(), 40.0);
    EXPECT_DOUBLE_EQ(r.height(), 40.0);
    EXPECT_EQ(r.center(), (Vec2{10.0, 0.0}));
    EXPECT_TRUE(r.contains({0.0, 0.0}));
    EXPECT_TRUE(r.contains({30.0, 20.0}));
    EXPECT_FALSE(r.contains({31.0, 0.0}));
}

TEST(RectTest, CenteredSquareMatchesPaperAxes) {
    const Rect r = Rect::centered_square(600.0);
    EXPECT_EQ(r.min, (Vec2{-300.0, -300.0}));
    EXPECT_EQ(r.max, (Vec2{300.0, 300.0}));
}

TEST(RectTest, BoundingBox) {
    const Rect r = bounding_box({{1, 5}, {-2, 3}, {4, -1}});
    EXPECT_EQ(r.min, (Vec2{-2.0, -1.0}));
    EXPECT_EQ(r.max, (Vec2{4.0, 5.0}));
    const Rect empty = bounding_box({});
    EXPECT_EQ(empty.min, (Vec2{0.0, 0.0}));
}

TEST(GridTest, CountsAndContainment) {
    const Rect field = Rect::centered_square(100.0);
    const auto centers = grid_centers(field, 10.0);
    EXPECT_EQ(centers.size(), 100u);
    EXPECT_EQ(grid_center_count(field, 10.0), 100u);
    for (const Vec2& p : centers) EXPECT_TRUE(field.contains(p));
}

TEST(GridTest, NonDividingCellSizeCoversWholeField) {
    const Rect field = Rect::centered_square(100.0);
    const auto centers = grid_centers(field, 30.0);  // 100/30 -> 4 cells/axis
    EXPECT_EQ(centers.size(), 16u);
    for (const Vec2& p : centers) EXPECT_TRUE(field.contains(p));
    // Every field point is within half a cell diagonal of some center.
    std::mt19937_64 rng(99);
    std::uniform_real_distribution<double> coord(-50.0, 50.0);
    const double max_gap = 30.0 * std::sqrt(2.0) / 2.0 + 1e-9;
    for (int trial = 0; trial < 200; ++trial) {
        const Vec2 q{coord(rng), coord(rng)};
        double best = 1e18;
        for (const Vec2& p : centers) best = std::min(best, distance(p, q));
        EXPECT_LE(best, max_gap);
    }
}

TEST(GridTest, RejectsNonPositiveCellSize) {
    const Rect field = Rect::centered_square(10.0);
    EXPECT_THROW((void)grid_centers(field, 0.0), std::invalid_argument);
    EXPECT_THROW((void)grid_center_count(field, -1.0), std::invalid_argument);
}

TEST(RegionTest, SingleDiskReturnsPointInside) {
    const Circle disks[] = {{{3.0, 4.0}, 2.0}};
    const auto p = common_point_of_disks(disks);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(disks[0].contains(*p, 1e-6));
}

TEST(RegionTest, EmptyFamilyIsTriviallyCommon) {
    EXPECT_TRUE(common_point_of_disks({}).has_value());
}

TEST(RegionTest, TwoOverlappingDisks) {
    const Circle disks[] = {{{0, 0}, 5.0}, {{6, 0}, 5.0}};
    const auto p = common_point_of_disks(disks);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(disks[0].contains(*p, 1e-6));
    EXPECT_TRUE(disks[1].contains(*p, 1e-6));
}

TEST(RegionTest, DisjointDisksHaveNoCommonPoint) {
    const Circle disks[] = {{{0, 0}, 1.0}, {{10, 0}, 1.0}};
    EXPECT_FALSE(common_point_of_disks(disks).has_value());
}

TEST(RegionTest, ThreeDisksSharingLensCorner) {
    // Three unit-ish disks arranged so the intersection is small but real.
    const Circle disks[] = {{{0, 0}, 2.0}, {{3, 0}, 2.0}, {{1.5, 2.0}, 2.0}};
    const auto p = common_point_of_disks(disks);
    ASSERT_TRUE(p.has_value());
    for (const Circle& d : disks) EXPECT_TRUE(d.contains(*p, 1e-6));
}

TEST(RegionTest, ThreePairwiseOverlappingButNoCommonPoint) {
    // Classic Helly counterexample: pairwise lenses, empty triple.
    const Circle disks[] = {{{0, 0}, 1.05}, {{2, 0}, 1.05}, {{1, 1.7}, 1.05}};
    EXPECT_TRUE(disks_overlap(disks[0], disks[1]));
    EXPECT_TRUE(disks_overlap(disks[0], disks[2]));
    EXPECT_TRUE(disks_overlap(disks[1], disks[2]));
    EXPECT_FALSE(common_point_of_disks(disks).has_value());
}

TEST(RegionTest, DeepestPointOfConcentricFamilyIsCenter) {
    const Circle disks[] = {{{5, 5}, 3.0}, {{5, 5}, 2.0}, {{5, 5}, 1.0}};
    const auto w = deepest_point_of_disks(disks);
    EXPECT_LE(w.violation, -0.9);  // ~ -1 (deepest point = common center)
    EXPECT_NEAR(w.point.x, 5.0, 0.1);
    EXPECT_NEAR(w.point.y, 5.0, 0.1);
}

/// Property: whenever all random disks contain a known witness point, the
/// solver must find some common point.
class RegionProperty : public ::testing::TestWithParam<int> {};

TEST_P(RegionProperty, FindsCommonPointWhenWitnessExists) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> coord(-50.0, 50.0);
    std::uniform_real_distribution<double> extra(0.1, 30.0);
    for (int trial = 0; trial < 60; ++trial) {
        const Vec2 witness{coord(rng), coord(rng)};
        std::vector<Circle> disks;
        for (int i = 0; i < 6; ++i) {
            const Vec2 center{coord(rng), coord(rng)};
            disks.push_back({center, distance(center, witness) + extra(rng)});
        }
        const auto p = common_point_of_disks(disks);
        ASSERT_TRUE(p.has_value()) << "trial " << trial;
        for (const Circle& d : disks) {
            EXPECT_TRUE(d.contains(*p, 1e-5)) << "trial " << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionProperty, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace sag::geom
