// Fault-injected churn soak: thousands of events — joins, leaves,
// moves, rate changes, RS failures/degradations/recoveries, corrupted
// inputs, injected stage and solver timeouts — through one live
// Session. The soak asserts the serving contract on every single
// event: never a crash, never a silently wrong plan (`verified ||
// degraded`), rejected events leave the state untouched, and the whole
// run replays byte-identically (including at a different thread count).
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/sag.h"
#include "sag/io/event_io.h"
#include "sag/serve/event.h"
#include "sag/serve/fault.h"
#include "sag/serve/session.h"
#include "sag/sim/scenario_gen.h"

namespace sag::serve {
namespace {

core::Scenario make_scenario(int seed, std::size_t subscribers) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = subscribers;
    cfg.base_station_count = 4;
    return sim::generate_scenario(cfg, seed);
}

/// Seeded churn stream mixing every event kind, including deliberately
/// stale keys/slots the session must reject.
std::vector<Event> churn_stream(int seed, std::size_t initial_subscribers,
                                std::size_t rs_slots, std::size_t count) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed));
    std::uniform_real_distribution<double> coord(0.0, 500.0);
    std::uniform_real_distribution<double> rate(28.0, 42.0);
    std::uniform_real_distribution<double> factor(0.4, 1.0);
    std::vector<std::uint64_t> live(initial_subscribers);
    for (std::size_t k = 0; k < initial_subscribers; ++k) live[k] = k;
    std::uint64_t next_key = initial_subscribers;

    std::vector<Event> events;
    events.reserve(count);
    const std::size_t target = initial_subscribers;
    while (events.size() < count) {
        const int kind = static_cast<int>(rng() % 10);
        Event e;
        if (kind < 4) {
            // Regulated toward the initial population: an unregulated
            // join/leave mix drifts linearly and makes the soak quadratic.
            if (live.size() < target ||
                (live.size() == target && rng() % 2 == 0)) {
                e.kind = EventKind::SsJoin;
                e.key = next_key++;
                e.pos = {coord(rng), coord(rng)};
                e.distance_request = rate(rng);
                live.push_back(e.key);
            } else {
                e.kind = EventKind::SsLeave;
                const std::size_t at = rng() % live.size();
                e.key = live[at];
                live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
            }
        } else if (kind < 7 && !live.empty()) {
            e.kind = EventKind::SsMove;
            e.key = live[rng() % live.size()];
            e.pos = {coord(rng), coord(rng)};
        } else if (kind < 8 && !live.empty()) {
            e.kind = EventKind::SsRate;
            e.key = live[rng() % live.size()];
            e.distance_request = rate(rng);
        } else if (kind < 9) {
            e.kind = EventKind::RsFail;
            e.rs = ids::RsId{rng() % rs_slots};
        } else if (rng() % 2 == 0) {
            e.kind = EventKind::RsRecover;
            e.rs = ids::RsId{rng() % rs_slots};
        } else {
            e.kind = EventKind::RsDegrade;
            e.rs = ids::RsId{rng() % rs_slots};
            e.factor = factor(rng);
        }
        events.push_back(e);
    }
    return events;
}

struct SoakStats {
    std::size_t rejected = 0;
    std::size_t degraded_events = 0;
    std::size_t resolves_adopted = 0;
    std::string fingerprint;
};

SoakStats soak(Session& session, const std::vector<Event>& events) {
    SoakStats stats;
    for (const Event& e : events) {
        const EventOutcome out = session.apply(e);
        // The contract, event by event: verified or explicitly flagged.
        EXPECT_TRUE(out.verified || out.degraded)
            << "event " << out.event_index << " (" << to_string(out.level)
            << ")";
        if (out.level == RepairLevel::Rejected) {
            EXPECT_FALSE(out.reject_reason.empty());
            ++stats.rejected;
        }
        stats.degraded_events += out.degraded ? 1 : 0;
        stats.resolves_adopted += out.resolve_adopted ? 1 : 0;
        EXPECT_EQ(out.unserved, session.unserved_keys().size());
        stats.fingerprint += io::event_outcome_to_json(out).dump();
        stats.fingerprint.push_back('\n');
    }
    return stats;
}

TEST(ServeSoakTest, FaultInjectedChurnNeverBreaksTheContract) {
    const core::Scenario scenario = make_scenario(101, 24);
    const core::SagResult deployment = core::solve_sag(scenario);
    ASSERT_TRUE(deployment.feasible);

    ServeOptions opts;
    opts.resolve_horizon = 8;
    opts.resolve_backoff_start = 8;
    FaultOptions fopts;
    fopts.stage_timeout_probability = 0.05;
    fopts.resolve_timeout_probability = 0.25;
    fopts.corrupt_probability = 0.05;
    fopts.seed = 103;
    opts.faults = FaultPlan(fopts);

    // 1200 events keeps the soak inside its declared ctest budget even
    // under TSan's ~10x slowdown; bench_churn is the 10^5-event tier.
    const FaultPlan corrupter(fopts);
    const std::vector<Event> events = corrupter.corrupt(
        churn_stream(101, 24, deployment.coverage.rs_count(), 1200));

    Session session(scenario, deployment, opts);
    const SoakStats stats = soak(session, events);

    // Corruption guarantees rejected events; churn guarantees repairs;
    // the drift budget guarantees adopted re-solves over 2000 events.
    EXPECT_GT(stats.rejected, 0u);
    EXPECT_GT(stats.resolves_adopted, 0u);
    EXPECT_EQ(session.event_count(), events.size());

    // The session must end the soak still functional: a final verified
    // state is reachable via its own snapshot.
    const Session::Snapshot snap = session.snapshot();
    if (snap.verified) {
        EXPECT_TRUE(core::verify_coverage(snap.covered_scenario, snap.plan,
                                          snap.powers)
                        .feasible);
    } else {
        EXPECT_TRUE(snap.degraded);
    }
}

TEST(ServeSoakTest, SoakReplayIsByteIdenticalAcrossRunsAndThreads) {
    const core::Scenario scenario = make_scenario(107, 20);
    const core::SagResult deployment = core::solve_sag(scenario);
    ASSERT_TRUE(deployment.feasible);

    ServeOptions opts;
    opts.drift_excess_rs = 2;
    opts.resolve_horizon = 8;
    FaultOptions fopts;
    fopts.stage_timeout_probability = 0.05;
    fopts.resolve_timeout_probability = 0.25;
    fopts.corrupt_probability = 0.05;
    fopts.seed = 109;
    opts.faults = FaultPlan(fopts);
    const std::vector<Event> events = FaultPlan(fopts).corrupt(
        churn_stream(107, 20, deployment.coverage.rs_count(), 600));

    opts.threads = 1;
    Session serial_a(scenario, deployment, opts);
    Session serial_b(scenario, deployment, opts);
    const SoakStats a = soak(serial_a, events);
    const SoakStats b = soak(serial_b, events);
    EXPECT_EQ(a.fingerprint, b.fingerprint);  // run-to-run determinism

    opts.threads = 4;
    Session threaded(scenario, deployment, opts);
    const SoakStats c = soak(threaded, events);
    EXPECT_EQ(a.fingerprint, c.fingerprint);  // thread-count determinism
}

}  // namespace
}  // namespace sag::serve
