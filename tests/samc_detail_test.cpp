// Deeper tests of the paper-pseudocode internals: Coverage Link Escape
// (Algorithm 3), RS Sliding Movement / Update RS Topology (Algorithms
// 4-5) including the reassignment-repair extension, and MBMC's
// subtree-minimum feasible distances (Algorithm 7 Steps 6-7).
#include <functional>
#include <set>

#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/samc.h"
#include "sag/ids/ids.h"
#include "sag/core/ucra.h"
#include "sag/core/zone_partition.h"
#include "sag/sim/scenario_gen.h"

namespace sag::core {
namespace {

using ids::RsId;
using ids::SsId;

using samc_detail::coverage_link_escape;
using samc_detail::sliding_movement;
using samc_detail::ZoneAssignment;

Scenario base(double side = 500.0) {
    Scenario s;
    s.field = geom::Rect::centered_square(side);
    s.base_stations = {{{0.0, 0.0}}};
    s.snr_threshold_db = units::Decibel{-15.0};
    s.radio.snr_ambient_noise = units::Watt{0.0};
    return s;
}

TEST(CoverageLinkEscapeDetail, EmptyInputs) {
    Scenario s = base();
    const auto za_no_subs = coverage_link_escape(s, {}, {});
    EXPECT_TRUE(za_no_subs.serving.empty());

    s.subscribers = {{{0.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}};
    const auto za_no_points = coverage_link_escape(s, subs, {});
    // No points: the subscriber keeps the "unassigned" sentinel, which
    // callers must treat as uncoverable.
    ASSERT_EQ(za_no_points.serving.size(), 1u);
    EXPECT_FALSE(za_no_points.serving[SsId{0}].valid());
}

TEST(CoverageLinkEscapeDetail, UncoverableSubscriberKeepsSentinel) {
    Scenario s = base();
    s.subscribers = {{{0.0, 0.0}, 35.0}, {{200.0, 0.0}, 30.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    const geom::Vec2 points[] = {{5.0, 0.0}};  // covers only sub 0
    const auto za = coverage_link_escape(s, subs, points);
    EXPECT_EQ(za.serving[SsId{0}], RsId{0});
    EXPECT_FALSE(za.serving[SsId{1}].valid());  // uncoverable sentinel
}

TEST(CoverageLinkEscapeDetail, BoundaryPointCountsAsCovering) {
    Scenario s = base();
    s.subscribers = {{{0.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}};
    const geom::Vec2 points[] = {{35.0, 0.0}};  // exactly on the circle
    const auto za = coverage_link_escape(s, subs, points);
    EXPECT_EQ(za.serving[SsId{0}], RsId{0});
}

TEST(CoverageLinkEscapeDetail, DeterministicOnTies) {
    // Two points with identical coverage: the algorithm must pick the
    // same one every run (lowest index wins the max-degree scan).
    Scenario s = base();
    s.subscribers = {{{0.0, 0.0}, 35.0}, {{10.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    const geom::Vec2 points[] = {{5.0, 0.0}, {5.0, 1.0}};
    const auto a = coverage_link_escape(s, subs, points);
    const auto b = coverage_link_escape(s, subs, points);
    EXPECT_EQ(a.serving, b.serving);
    EXPECT_EQ(a.serving[SsId{0}], RsId{0});
}

TEST(SlidingMovementDetail, FixedOneOnOneRsDoesNotMoveAgain) {
    Scenario s = base();
    s.snr_threshold_db = units::Decibel{10.0};  // strict enough to trigger repair rounds
    s.subscribers = {{{-80.0, 0.0}, 35.0}, {{60.0, 0.0}, 35.0}, {{120.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}, SsId{2}};
    ZoneAssignment za;
    za.points = {{-75.0, 0.0}, {90.0, 5.0}};
    za.serving = {RsId{0}, RsId{1}, RsId{1}};
    const auto slide = sliding_movement(s, subs, za, {});
    // The one-on-one RS must sit exactly on subscriber 0 regardless of
    // what the multi-cover repair did afterwards.
    EXPECT_EQ(slide.points[0], s.subscribers[0].pos);
}

TEST(SlidingMovementDetail, ServingPreservedWithoutReassignment) {
    Scenario s = base();
    s.subscribers = {{{-20.0, 0.0}, 35.0}, {{20.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    ZoneAssignment za;
    za.points = {{0.0, 0.0}};
    za.serving = {RsId{0}, RsId{0}};
    SamcOptions opts;
    opts.allow_reassignment = false;
    const auto slide = sliding_movement(s, subs, za, opts);
    EXPECT_EQ(slide.serving, za.serving);  // paper's algorithm never reassigns
}

TEST(SlidingMovementDetail, ReassignmentRescuesMisassignedSubscriber) {
    // Subscriber 1 is (badly) assigned to the far point although a near
    // point covers it; under a tight threshold the far service violates
    // SNR. The paper's algorithm cannot fix this (relocation regions are
    // empty because the far RS must keep covering its own subscriber);
    // the reassignment repair trivially can.
    Scenario s = base();
    s.snr_threshold_db = units::Decibel{14.0};
    s.subscribers = {{{0.0, 0.0}, 35.0}, {{40.0, 0.0}, 35.0}};
    const SsId subs[] = {SsId{0}, SsId{1}};
    ZoneAssignment za;
    za.points = {{5.0, 0.0}, {42.0, 0.0}};
    za.serving = {RsId{0}, RsId{0}};  // sub 1 served from ~35 away; point 1 at 2 away idle

    SamcOptions paper;
    paper.allow_reassignment = false;
    SamcOptions repaired;
    repaired.allow_reassignment = true;
    const auto without = sliding_movement(s, subs, za, paper);
    const auto with = sliding_movement(s, subs, za, repaired);
    EXPECT_TRUE(with.feasible);
    EXPECT_EQ(with.serving[SsId{1}], RsId{1});  // switched to the near point
    // And the paper variant must not silently claim success either way:
    // its serving stays as given.
    EXPECT_EQ(without.serving[SsId{1}], RsId{0});
}

TEST(SlidingMovementDetail, DeterministicAcrossRuns) {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 20;
    cfg.snr_threshold_db = units::Decibel{-12.0};
    const auto s = sim::generate_scenario(cfg, 31);
    const auto a = solve_samc(s);
    const auto b = solve_samc(s);
    ASSERT_EQ(a.plan.rs_count(), b.plan.rs_count());
    for (std::size_t i = 0; i < a.plan.rs_count(); ++i) {
        EXPECT_EQ(a.plan.rs_positions[i], b.plan.rs_positions[i]);
    }
    EXPECT_EQ(a.plan.assignment, b.plan.assignment);
}

TEST(MbmcSubtreeDetail, ParentEdgeUsesChildsStricterDistance) {
    // Child coverage RS serves a subscriber with a 20 m request; parent's
    // own subscriber allows 40 m. The edge *above the parent* carries the
    // child's traffic, so its hops must respect 20 m.
    Scenario s = base(900.0);
    s.subscribers = {{{50.0, 0.0}, 40.0}, {{350.0, 0.0}, 20.0}};
    s.base_stations = {{{-250.0, 0.0}}};
    CoveragePlan cov;
    cov.rs_positions = {{50.0, 0.0}, {350.0, 0.0}};
    cov.assignment = {RsId{0}, RsId{1}};
    cov.feasible = true;
    const auto plan = solve_mbmc(s, cov);
    ASSERT_TRUE(plan.feasible);
    // Every hop on the parent's trunk (between node 1 and the BS) must be
    // <= 20 + eps because the subtree minimum is 20.
    std::size_t cur = 1;  // coverage RS 0's node (bs_count == 1)
    cur = plan.parent[1 + 0];
    geom::Vec2 prev = plan.positions[1 + 0];
    while (true) {
        const double hop = geom::distance(prev, plan.positions[cur]);
        EXPECT_LE(hop, 20.0 + 1e-6);
        if (plan.parent[cur] == cur) break;
        prev = plan.positions[cur];
        cur = plan.parent[cur];
    }
    EXPECT_TRUE(verify_connectivity(s, cov, plan).feasible);
}

TEST(MbmcSubtreeDetail, IndependentBranchesKeepOwnDistances) {
    // Two independent coverage RSs (no chaining: each sits closer to the
    // BS than to the other RS): each trunk only obeys its own
    // subscriber's request — the lax one gets longer hops.
    Scenario s = base(900.0);
    s.subscribers = {{{0.0, 300.0}, 40.0}, {{0.0, -300.0}, 20.0}};
    s.base_stations = {{{0.0, 0.0}}};
    CoveragePlan cov;
    cov.rs_positions = {{0.0, 300.0}, {0.0, -300.0}};
    cov.assignment = {RsId{0}, RsId{1}};
    cov.feasible = true;
    const auto plan = solve_mbmc(s, cov);
    const auto count_chain = [&](std::size_t cov_idx) {
        std::size_t cur = plan.parent[1 + cov_idx], n = 0;
        while (plan.kinds[cur] == NodeKind::ConnectivityRs) {
            ++n;
            cur = plan.parent[cur];
        }
        return n;
    };
    // Same edge length (~447), hop limits 40 vs 20 -> the strict branch
    // needs roughly twice the relays.
    EXPECT_GT(count_chain(1), count_chain(0));
}

TEST(ZonePartitionDetail, SpatialIndexMatchesBruteForce) {
    // The spatial-grid fast path must produce the same zones as the
    // definitional all-pairs construction.
    sim::GeneratorConfig cfg;
    cfg.field_side = 2500.0;
    cfg.subscriber_count = 80;
    const auto s = sim::generate_scenario(cfg, 77);
    const double dmax = zone_partition_dmax(s);

    // Brute-force union-find over the d_eff predicate.
    std::vector<std::size_t> parent(s.subscriber_count());
    for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
    const std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
    };
    for (std::size_t i = 0; i < s.subscriber_count(); ++i) {
        for (std::size_t j = i + 1; j < s.subscriber_count(); ++j) {
            const double dist =
                geom::distance(s.subscribers[i].pos, s.subscribers[j].pos);
            const double d_eff = std::min(dist - s.subscribers[i].distance_request,
                                          dist - s.subscribers[j].distance_request);
            if (d_eff <= dmax) parent[find(i)] = find(j);
        }
    }
    const auto zones = zone_partition(s);
    for (const auto& zone : zones) {
        for (const SsId j : zone) {
            EXPECT_EQ(find(j.index()), find(zone.front().index()));
        }
    }
    std::set<std::size_t> roots;
    for (std::size_t i = 0; i < parent.size(); ++i) roots.insert(find(i));
    EXPECT_EQ(zones.size(), roots.size());
}

}  // namespace
}  // namespace sag::core
