#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "sag/core/sag.h"
#include "sag/io/scenario_io.h"
#include "sag/sim/paper_presets.h"
#include "sag/sim/scenario_gen.h"
#include "sag/wireless/propagation.h"

namespace sag::io {
namespace {

core::Scenario sample_scenario() {
    sim::GeneratorConfig cfg;
    cfg.field_side = 500.0;
    cfg.subscriber_count = 12;
    cfg.base_station_count = 2;
    cfg.snr_threshold_db = units::Decibel{-17.5};
    cfg.radio.alpha = 2.5;  // non-default to prove it round-trips
    return sim::generate_scenario(cfg, 5);
}

TEST(ScenarioIoTest, JsonRoundTripIsExact) {
    const core::Scenario original = sample_scenario();
    const core::Scenario copy = scenario_from_json(scenario_to_json(original));
    ASSERT_EQ(copy.subscriber_count(), original.subscriber_count());
    for (std::size_t j = 0; j < original.subscriber_count(); ++j) {
        EXPECT_EQ(copy.subscribers[j].pos, original.subscribers[j].pos);
        EXPECT_EQ(copy.subscribers[j].distance_request,
                  original.subscribers[j].distance_request);
    }
    ASSERT_EQ(copy.base_stations.size(), original.base_stations.size());
    EXPECT_EQ(copy.base_stations[1].pos, original.base_stations[1].pos);
    EXPECT_EQ(copy.snr_threshold_db, original.snr_threshold_db);
    EXPECT_EQ(copy.radio.alpha, original.radio.alpha);
    EXPECT_EQ(copy.radio.snr_ambient_noise, original.radio.snr_ambient_noise);
    EXPECT_EQ(copy.field.min, original.field.min);
}

TEST(ScenarioIoTest, TextualRoundTripThroughParser) {
    const core::Scenario original = sample_scenario();
    const std::string text = scenario_to_json(original).dump(2);
    const core::Scenario copy = scenario_from_json(Json::parse(text));
    EXPECT_EQ(copy.subscribers[3].pos, original.subscribers[3].pos);
}

TEST(ScenarioIoTest, RejectsUnknownFormatVersion) {
    Json j = scenario_to_json(sample_scenario());
    j["format"] = Json(99);
    EXPECT_THROW((void)scenario_from_json(j), std::runtime_error);
}

TEST(ScenarioIoTest, RejectsMalformedPoint) {
    Json j = scenario_to_json(sample_scenario());
    j["base_stations"].as_array()[0] = Json(Json::Array{Json(1.0)});  // 1-element
    EXPECT_THROW((void)scenario_from_json(j), std::runtime_error);
}

// --- Negative paths: well-formed JSON carrying a non-physical scenario
// must throw ScenarioFormatError naming the offending field, never crash
// or silently construct a poisoned Scenario.

TEST(ScenarioIoTest, RejectsNanSubscriberCoordinate) {
    Json j = scenario_to_json(sample_scenario());
    j["subscribers"].as_array()[3].as_object()["pos"] =
        Json(Json::Array{Json(std::nan("")), Json(0.0)});
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "subscribers[3].pos[0]");
    }
}

TEST(ScenarioIoTest, RejectsInfiniteBaseStationCoordinate) {
    Json j = scenario_to_json(sample_scenario());
    j["base_stations"].as_array()[1] = Json(
        Json::Array{Json(std::numeric_limits<double>::infinity()), Json(0.0)});
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "base_stations[1][0]");
    }
}

TEST(ScenarioIoTest, RejectsNanFieldCorner) {
    Json j = scenario_to_json(sample_scenario());
    j["field"].as_object()["max"] =
        Json(Json::Array{Json(250.0), Json(std::nan(""))});
    EXPECT_THROW((void)scenario_from_json(j), ScenarioFormatError);
}

TEST(ScenarioIoTest, RejectsNegativeMaxPower) {
    Json j = scenario_to_json(sample_scenario());
    j["radio"].as_object()["max_power"] = Json(-50.0);
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "radio.max_power");
    }
}

TEST(ScenarioIoTest, RejectsNanMaxPower) {
    // RadioParams::validate cannot catch this one itself: every NaN
    // comparison is false, so "max_power <= 0" passes vacuously.
    Json j = scenario_to_json(sample_scenario());
    j["radio"].as_object()["max_power"] = Json(std::nan(""));
    EXPECT_THROW((void)scenario_from_json(j), ScenarioFormatError);
}

TEST(ScenarioIoTest, RejectsNegativeDistanceRequest) {
    Json j = scenario_to_json(sample_scenario());
    j["subscribers"].as_array()[0].as_object()["distance_request"] = Json(-5.0);
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "subscribers[0].distance_request");
    }
}

TEST(ScenarioIoTest, RejectsDuplicateSubscriberPositions) {
    Json j = scenario_to_json(sample_scenario());
    auto& subs = j["subscribers"].as_array();
    subs[4].as_object()["pos"] = subs[1].as_object()["pos"];
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "subscribers[4]");
    }
}

TEST(ScenarioIoTest, RejectsDuplicateBaseStationPositions) {
    Json j = scenario_to_json(sample_scenario());
    auto& bss = j["base_stations"].as_array();
    bss[1] = bss[0];
    EXPECT_THROW((void)scenario_from_json(j), ScenarioFormatError);
}

// --- Schema strictness: a typo'd key must throw with its JSON path, not
// be silently ignored (the file would otherwise lie about what loaded).

TEST(ScenarioIoTest, RejectsUnknownTopLevelKey) {
    Json j = scenario_to_json(sample_scenario());
    j["radioparams"] = Json(1.0);  // typo of "radio"
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "radioparams");
    }
}

TEST(ScenarioIoTest, RejectsUnknownRadioKey) {
    Json j = scenario_to_json(sample_scenario());
    j["radio"].as_object()["tx_power"] = Json(5.0);  // typo of "max_power"
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "radio.tx_power");
    }
}

TEST(ScenarioIoTest, RejectsUnknownSubscriberKey) {
    Json j = scenario_to_json(sample_scenario());
    j["subscribers"].as_array()[2].as_object()["nickname"] = Json(1.0);
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "subscribers[2].nickname");
    }
}

TEST(ScenarioIoTest, RejectsFormat2BlocksInFormat1File) {
    // "profiles" in a format-1 file is a typo/corruption, not an extension.
    Json j = scenario_to_json(sample_scenario());
    ASSERT_EQ(static_cast<int>(j.at("format").as_number()), 1);
    j["profiles"] = Json(Json::Array{});
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "profiles");
    }
}

// --- Format 2: propagation + profile blocks -------------------------------

core::Scenario lora_scenario() {
    return sim::generate_scenario(sim::presets::lora_field(8), 4);
}

TEST(ScenarioIoTest, PlainScenarioStillEmitsFormat1) {
    // Byte-compat guard: scenarios that don't use the extensions keep the
    // original schema, so archived goldens and external tooling still parse.
    const Json j = scenario_to_json(sample_scenario());
    EXPECT_EQ(static_cast<int>(j.at("format").as_number()), 1);
    EXPECT_FALSE(j.contains("propagation"));
    EXPECT_FALSE(j.contains("profiles"));
    EXPECT_FALSE(j.contains("relay_profile"));
    EXPECT_FALSE(j.at("subscribers").as_array()[0].contains("profile"));
}

TEST(ScenarioIoTest, Format2RoundTripLoRa) {
    const core::Scenario original = lora_scenario();
    const Json j = scenario_to_json(original);
    EXPECT_EQ(static_cast<int>(j.at("format").as_number()), 2);
    const core::Scenario copy = scenario_from_json(j);

    ASSERT_TRUE(copy.propagation);
    const auto& lora =
        dynamic_cast<const wireless::LoRaLinkBudgetModel&>(*copy.propagation);
    const auto& orig =
        dynamic_cast<const wireless::LoRaLinkBudgetModel&>(*original.propagation);
    EXPECT_EQ(lora.spreading_factor, orig.spreading_factor);
    EXPECT_EQ(lora.bandwidth_hz, orig.bandwidth_hz);
    EXPECT_EQ(lora.noise_figure.db(), orig.noise_figure.db());
    EXPECT_EQ(lora.path_exponent, orig.path_exponent);
    EXPECT_EQ(lora.frequency_hz, orig.frequency_hz);

    ASSERT_EQ(copy.profiles.size(), original.profiles.size());
    for (std::size_t i = 0; i < copy.profiles.size(); ++i) {
        EXPECT_EQ(copy.profiles[i].name, original.profiles[i].name);
        EXPECT_EQ(copy.profiles[i].max_power.has_value(),
                  original.profiles[i].max_power.has_value());
        EXPECT_EQ(copy.profiles[i].noise_figure.db(),
                  original.profiles[i].noise_figure.db());
        EXPECT_EQ(copy.profiles[i].duty_cycle, original.profiles[i].duty_cycle);
    }
    EXPECT_EQ(copy.relay_profile, original.relay_profile);
    for (std::size_t k = 0; k < copy.subscriber_count(); ++k) {
        EXPECT_EQ(copy.subscribers[k].profile, original.subscribers[k].profile);
    }
    // The physics survive the trip: same sensitivity-floored requirements.
    for (const ids::SsId k : original.ss_ids()) {
        EXPECT_EQ(copy.min_rx_power(k).watts(), original.min_rx_power(k).watts());
    }
}

TEST(ScenarioIoTest, Format2RoundTripShadowedLogDistance) {
    const core::Scenario original = sim::generate_scenario(
        sim::presets::log_distance_shadowed(10, units::Decibel{8.0}, 424242), 6);
    const core::Scenario copy = scenario_from_json(scenario_to_json(original));
    ASSERT_TRUE(copy.propagation);
    const auto& ld =
        dynamic_cast<const wireless::LogDistanceModel&>(*copy.propagation);
    const auto& orig =
        dynamic_cast<const wireless::LogDistanceModel&>(*original.propagation);
    EXPECT_EQ(ld.path_loss_at_ref.db(), orig.path_loss_at_ref.db());
    EXPECT_EQ(ld.exponent, orig.exponent);
    EXPECT_EQ(ld.ref_distance.meters(), orig.ref_distance.meters());
    EXPECT_EQ(ld.shadowing_sigma.db(), orig.shadowing_sigma.db());
    EXPECT_EQ(ld.shadowing_seed, orig.shadowing_seed);
    // Seed round-trip exactness is what makes a reloaded scenario replay
    // the identical shadowing realization.
    const geom::Vec2 a{10.0, 20.0}, b{-120.0, 55.0};
    EXPECT_EQ(copy.received_power(copy.radio.max_power, a, b).watts(),
              original.received_power(original.radio.max_power, a, b).watts());
}

TEST(ScenarioIoTest, RejectsUnknownPropagationKey) {
    Json j = scenario_to_json(sim::generate_scenario(
        sim::presets::log_distance_shadowed(6, units::Decibel{4.0}, 1), 2));
    j["propagation"].as_object()["sigma"] = Json(2.0);  // typo of shadowing_sigma_db
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "propagation.sigma");
    }
}

TEST(ScenarioIoTest, RejectsUnknownPropagationModel) {
    Json j = scenario_to_json(lora_scenario());
    j["propagation"].as_object().clear();
    j["propagation"].as_object()["model"] = Json(std::string("okumura_hata"));
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "propagation.model");
    }
}

TEST(ScenarioIoTest, RejectsUnknownProfileKey) {
    Json j = scenario_to_json(lora_scenario());
    j["profiles"].as_array()[1].as_object()["tx_cap"] = Json(0.5);
    try {
        (void)scenario_from_json(j);
        FAIL() << "expected ScenarioFormatError";
    } catch (const ScenarioFormatError& e) {
        EXPECT_EQ(e.path(), "profiles[1].tx_cap");
    }
}

TEST(ScenarioIoTest, RejectsDanglingRelayProfile) {
    Json j = scenario_to_json(lora_scenario());
    j["relay_profile"] = Json(17.0);
    EXPECT_THROW((void)scenario_from_json(j), std::invalid_argument);
}

TEST(ScenarioIoTest, FileSaveLoad) {
    const std::string path =
        (std::filesystem::temp_directory_path() / "sag_io_test_scenario.json").string();
    const core::Scenario original = sample_scenario();
    save_scenario(path, original);
    const core::Scenario loaded = load_scenario(path);
    EXPECT_EQ(loaded.subscribers[0].pos, original.subscribers[0].pos);
    std::remove(path.c_str());
}

TEST(ScenarioIoTest, LoadMissingFileThrows) {
    EXPECT_THROW((void)load_scenario("/nonexistent/sag.json"), std::runtime_error);
}

TEST(SagResultIoTest, ReportContainsBothTiers) {
    const core::Scenario s = sample_scenario();
    const auto result = core::solve_sag(s);
    ASSERT_TRUE(result.feasible);
    const Json j = sag_result_to_json(result);
    EXPECT_TRUE(j.at("feasible").as_bool());
    EXPECT_EQ(static_cast<std::size_t>(j.at("coverage_rs_count").as_number()),
              result.coverage_rs_count());
    EXPECT_EQ(j.at("coverage_rs").size(), result.coverage_rs_count());
    EXPECT_EQ(j.at("assignment").size(), s.subscriber_count());
    EXPECT_EQ(j.at("relay_tree").size(), result.connectivity.node_count());
    EXPECT_NEAR(j.at("total_power").as_number(), result.total_power(), 1e-9);
    // Report text parses back.
    EXPECT_NO_THROW((void)Json::parse(j.dump(2)));
}

TEST(DeploymentCsvTest, RowsMatchNodeAndSubscriberCounts) {
    const core::Scenario s = sample_scenario();
    const auto result = core::solve_sag(s);
    ASSERT_TRUE(result.feasible);
    std::ostringstream os;
    write_deployment_csv(os, s, result.coverage, result.connectivity);
    std::istringstream is(os.str());
    std::string line;
    std::size_t rows = 0;
    std::getline(is, line);
    EXPECT_EQ(line, "kind,x,y,power,parent_x,parent_y");
    while (std::getline(is, line)) ++rows;
    EXPECT_EQ(rows, s.subscriber_count() + result.connectivity.node_count());
}

}  // namespace
}  // namespace sag::io
