#include <cmath>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "sag/opt/lp.h"

namespace sag::opt {
namespace {

using Rel = LinearProgram::Relation;

TEST(LpTest, SimpleTwoVariableMaximizationAsMinimization) {
    // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic Dantzig)
    // as min -3x - 5y; optimum at (2, 6), objective -36.
    LinearProgram lp;
    lp.objective = {-3.0, -5.0};
    lp.add_constraint({1.0, 0.0}, Rel::LessEq, 4.0);
    lp.add_constraint({0.0, 2.0}, Rel::LessEq, 12.0);
    lp.add_constraint({3.0, 2.0}, Rel::LessEq, 18.0);
    const auto r = solve_lp(lp);
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.objective, -36.0, 1e-9);
    EXPECT_NEAR(r.x[0], 2.0, 1e-9);
    EXPECT_NEAR(r.x[1], 6.0, 1e-9);
}

TEST(LpTest, GreaterEqConstraintsNeedPhase1) {
    // min x + y s.t. x + y >= 4, x - y >= -2  -> optimum 4.
    LinearProgram lp;
    lp.objective = {1.0, 1.0};
    lp.add_constraint({1.0, 1.0}, Rel::GreaterEq, 4.0);
    lp.add_constraint({1.0, -1.0}, Rel::GreaterEq, -2.0);
    const auto r = solve_lp(lp);
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.objective, 4.0, 1e-9);
}

TEST(LpTest, EqualityConstraint) {
    // min 2x + 3y s.t. x + y = 10, x <= 6 -> x=6, y=4, obj=24.
    LinearProgram lp;
    lp.objective = {2.0, 3.0};
    lp.add_constraint({1.0, 1.0}, Rel::Equal, 10.0);
    lp.add_constraint({1.0, 0.0}, Rel::LessEq, 6.0);
    const auto r = solve_lp(lp);
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.objective, 24.0, 1e-9);
    EXPECT_NEAR(r.x[0], 6.0, 1e-9);
}

TEST(LpTest, InfeasibleDetected) {
    LinearProgram lp;
    lp.objective = {1.0};
    lp.add_constraint({1.0}, Rel::GreaterEq, 5.0);
    lp.add_constraint({1.0}, Rel::LessEq, 3.0);
    EXPECT_EQ(solve_lp(lp).status, LpResult::Status::Infeasible);
}

TEST(LpTest, UnboundedDetected) {
    LinearProgram lp;
    lp.objective = {-1.0};  // min -x with x >= 0 unbounded below
    const auto r = solve_lp(lp);
    EXPECT_EQ(r.status, LpResult::Status::Unbounded);
}

TEST(LpTest, UpperBoundsRespected) {
    LinearProgram lp;
    lp.objective = {-1.0, -1.0};
    lp.upper_bounds = {3.0, std::numeric_limits<double>::infinity()};
    lp.add_constraint({0.0, 1.0}, Rel::LessEq, 2.0);
    const auto r = solve_lp(lp);
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.x[0], 3.0, 1e-9);
    EXPECT_NEAR(r.x[1], 2.0, 1e-9);
}

TEST(LpTest, NegativeRhsNormalization) {
    // min x s.t. -x <= -5  (i.e. x >= 5)
    LinearProgram lp;
    lp.objective = {1.0};
    lp.add_constraint({-1.0}, Rel::LessEq, -5.0);
    const auto r = solve_lp(lp);
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.x[0], 5.0, 1e-9);
}

TEST(LpTest, DegenerateProblemTerminates) {
    // Known cycling-prone structure (Beale); Bland fallback must save us.
    LinearProgram lp;
    lp.objective = {-0.75, 150.0, -0.02, 6.0};
    lp.add_constraint({0.25, -60.0, -0.04, 9.0}, Rel::LessEq, 0.0);
    lp.add_constraint({0.5, -90.0, -0.02, 3.0}, Rel::LessEq, 0.0);
    lp.add_constraint({0.0, 0.0, 1.0, 0.0}, Rel::LessEq, 1.0);
    const auto r = solve_lp(lp);
    ASSERT_TRUE(r.optimal());
    EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(LpTest, ZeroVariablesTrivial) {
    LinearProgram lp;  // empty objective: optimum 0 with empty x
    const auto r = solve_lp(lp);
    ASSERT_TRUE(r.optimal());
    EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(LpTest, RejectsMismatchedUpperBounds) {
    LinearProgram lp;
    lp.objective = {1.0, 1.0};
    lp.upper_bounds = {1.0};
    EXPECT_THROW((void)solve_lp(lp), std::invalid_argument);
}

/// Property: on random feasible-by-construction LPs the simplex solution
/// satisfies every constraint and beats (or ties) a feasible witness.
class LpRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(LpRandomProperty, OptimalIsFeasibleAndNoWorseThanWitness) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> coeff(-3.0, 3.0);
    std::uniform_real_distribution<double> witness_val(0.0, 5.0);
    std::uniform_real_distribution<double> slackness(0.0, 4.0);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t n = 2 + static_cast<std::size_t>(trial % 4);
        const std::size_t m = 3 + static_cast<std::size_t>(trial % 5);
        std::vector<double> witness(n);
        for (double& w : witness) w = witness_val(rng);

        LinearProgram lp;
        lp.objective.resize(n);
        for (double& c : lp.objective) c = std::abs(coeff(rng)) + 0.1;  // bounded
        for (std::size_t r = 0; r < m; ++r) {
            std::vector<double> a(n);
            double dot = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                a[j] = coeff(rng);
                dot += a[j] * witness[j];
            }
            // Constraint satisfied by the witness with a margin.
            lp.add_constraint(std::move(a), Rel::LessEq, dot + slackness(rng));
        }
        const auto r = solve_lp(lp);
        ASSERT_TRUE(r.optimal()) << "trial " << trial;
        // Feasibility of returned point.
        for (const auto& c : lp.constraints) {
            double dot = 0.0;
            for (std::size_t j = 0; j < n; ++j) dot += c.coeffs[j] * r.x[j];
            EXPECT_LE(dot, c.rhs + 1e-7) << "trial " << trial;
        }
        for (const double x : r.x) EXPECT_GE(x, -1e-9);
        // Optimality vs witness.
        double witness_obj = 0.0;
        for (std::size_t j = 0; j < n; ++j) witness_obj += lp.objective[j] * witness[j];
        EXPECT_LE(r.objective, witness_obj + 1e-7) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpRandomProperty, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace sag::opt
