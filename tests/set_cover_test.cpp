#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "sag/opt/set_cover.h"

namespace sag::opt {
namespace {

bool covers_all(const SetCoverInstance& inst, const std::vector<std::size_t>& chosen) {
    std::vector<bool> hit(inst.element_count, false);
    for (const std::size_t s : chosen) {
        for (const std::size_t e : inst.sets[s]) hit[e] = true;
    }
    return std::all_of(hit.begin(), hit.end(), [](bool b) { return b; });
}

/// Brute-force minimum cover size (elements <= ~20, sets <= ~16).
std::size_t brute_force_min_cover(const SetCoverInstance& inst,
                                  const CoverOracle& oracle = nullptr) {
    const std::size_t m = inst.sets.size();
    std::size_t best = SIZE_MAX;
    for (std::uint64_t mask = 0; mask < (1ull << m); ++mask) {
        std::vector<std::size_t> chosen;
        for (std::size_t s = 0; s < m; ++s) {
            if (mask & (1ull << s)) chosen.push_back(s);
        }
        if (chosen.size() >= best) continue;
        if (!covers_all(inst, chosen)) continue;
        if (oracle && !oracle(chosen)) continue;
        best = chosen.size();
    }
    return best;
}

TEST(SetCoverInstanceTest, CoveringSetsInverseIndex) {
    SetCoverInstance inst{3, {{0, 1}, {1, 2}, {0}}};
    const auto cov = inst.covering_sets();
    EXPECT_EQ(cov[0], (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(cov[1], (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(cov[2], (std::vector<std::size_t>{1}));
}

TEST(SetCoverInstanceTest, CoverableDetection) {
    EXPECT_TRUE((SetCoverInstance{2, {{0}, {1}}}).coverable());
    EXPECT_FALSE((SetCoverInstance{3, {{0}, {1}}}).coverable());
    EXPECT_TRUE((SetCoverInstance{0, {}}).coverable());
}

TEST(GreedySetCoverTest, FindsACover) {
    SetCoverInstance inst{4, {{0, 1}, {2}, {2, 3}, {1, 3}}};
    const auto chosen = greedy_set_cover(inst);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_TRUE(covers_all(inst, *chosen));
}

TEST(GreedySetCoverTest, UncoverableReturnsNullopt) {
    SetCoverInstance inst{3, {{0}, {1}}};
    EXPECT_FALSE(greedy_set_cover(inst).has_value());
}

TEST(GreedySetCoverTest, EmptyInstanceEmptyCover) {
    SetCoverInstance inst{0, {{}, {}}};
    const auto chosen = greedy_set_cover(inst);
    ASSERT_TRUE(chosen.has_value());
    EXPECT_TRUE(chosen->empty());
}

TEST(DisjointLowerBoundTest, TightOnDisjointElements) {
    // Three elements, each coverable by its own set only.
    SetCoverInstance inst{3, {{0}, {1}, {2}}};
    EXPECT_EQ(disjoint_elements_lower_bound(inst), 3u);
}

TEST(DisjointLowerBoundTest, SharedSetGivesOne) {
    SetCoverInstance inst{3, {{0, 1, 2}}};
    EXPECT_EQ(disjoint_elements_lower_bound(inst), 1u);
}

TEST(BnBTest, ExactOnSmallInstanceWithoutOracle) {
    SetCoverInstance inst{5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {0, 1, 2, 3, 4}}};
    const auto r = solve_set_cover_bnb(inst, nullptr);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(r.proven_optimal);
    EXPECT_EQ(r.chosen.size(), 1u);  // the universal set
}

TEST(BnBTest, InfeasibleWhenUncoverable) {
    SetCoverInstance inst{2, {{0}}};
    const auto r = solve_set_cover_bnb(inst, nullptr);
    EXPECT_FALSE(r.feasible);
}

TEST(BnBTest, EmptyUniverseTrivial) {
    SetCoverInstance inst{0, {{}}};
    const auto r = solve_set_cover_bnb(inst, nullptr);
    EXPECT_TRUE(r.feasible);
    EXPECT_TRUE(r.chosen.empty());
}

TEST(BnBTest, OracleRejectsMinimalCoverForcesLarger) {
    // Universe {0,1}: set 2 covers both but the oracle vetoes it; the
    // solver must fall back to the two singletons.
    SetCoverInstance inst{2, {{0}, {1}, {0, 1}}};
    const CoverOracle oracle = [](std::span<const std::size_t> chosen) {
        return !(chosen.size() == 1 && chosen[0] == 2);
    };
    const auto r = solve_set_cover_bnb(inst, oracle);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.chosen.size(), 2u);
}

TEST(BnBTest, PaddingFindsOversizedFeasibleSolution) {
    // Oracle demands set 1 be present, although set 0 alone covers all:
    // only a padded cover {0,1} (or {1}) can pass. Set 1 covers nothing,
    // so pure cover enumeration would never include it without padding.
    SetCoverInstance inst{1, {{0}, {}}};
    const CoverOracle oracle = [](std::span<const std::size_t> chosen) {
        return std::find(chosen.begin(), chosen.end(), 1u) != chosen.end();
    };
    SetCoverBnBOptions opts;
    opts.allow_padding = true;
    const auto r = solve_set_cover_bnb(inst, oracle, opts);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.chosen.size(), 2u);
    EXPECT_TRUE(covers_all(inst, r.chosen));
}

TEST(BnBTest, AlwaysRejectingOracleReportsInfeasible) {
    SetCoverInstance inst{2, {{0, 1}, {0}, {1}}};
    const CoverOracle never = [](std::span<const std::size_t>) { return false; };
    SetCoverBnBOptions opts;
    opts.node_budget = 100000;
    const auto r = solve_set_cover_bnb(inst, never, opts);
    EXPECT_FALSE(r.feasible);
}

TEST(BnBTest, NodeBudgetFallsBackToGreedy) {
    // Tiny budget: the search cannot finish but the greedy cover passes
    // the (absent) oracle, so we get an anytime answer.
    SetCoverInstance inst{6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}};
    SetCoverBnBOptions opts;
    opts.node_budget = 1;
    const auto r = solve_set_cover_bnb(inst, nullptr, opts);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(covers_all(inst, r.chosen));
}

TEST(BnBTest, ChosenIndicesAreSortedAndUnique) {
    SetCoverInstance inst{4, {{0, 1}, {2}, {3}, {1, 2, 3}}};
    const auto r = solve_set_cover_bnb(inst, nullptr);
    ASSERT_TRUE(r.feasible);
    EXPECT_TRUE(std::is_sorted(r.chosen.begin(), r.chosen.end()));
    EXPECT_EQ(std::adjacent_find(r.chosen.begin(), r.chosen.end()), r.chosen.end());
}

/// Property sweep: B&B matches brute force on random instances, with and
/// without a parity-style oracle.
class BnBRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(BnBRandomProperty, MatchesBruteForce) {
    std::mt19937_64 rng(GetParam());
    std::uniform_int_distribution<std::size_t> n_elems(1, 10);
    std::uniform_int_distribution<std::size_t> n_sets(1, 12);
    std::uniform_real_distribution<double> p(0.0, 1.0);
    for (int trial = 0; trial < 30; ++trial) {
        SetCoverInstance inst;
        inst.element_count = n_elems(rng);
        inst.sets.resize(n_sets(rng));
        for (auto& s : inst.sets) {
            for (std::size_t e = 0; e < inst.element_count; ++e) {
                if (p(rng) < 0.35) s.push_back(e);
            }
        }
        const std::size_t brute = brute_force_min_cover(inst);
        const auto r = solve_set_cover_bnb(inst, nullptr);
        if (brute == SIZE_MAX) {
            EXPECT_FALSE(r.feasible) << "trial " << trial;
        } else {
            ASSERT_TRUE(r.feasible) << "trial " << trial;
            EXPECT_TRUE(r.proven_optimal);
            EXPECT_EQ(r.chosen.size(), brute) << "trial " << trial;
            EXPECT_TRUE(covers_all(inst, r.chosen));
        }
    }
}

TEST_P(BnBRandomProperty, MatchesBruteForceWithOracle) {
    std::mt19937_64 rng(GetParam() * 977);
    std::uniform_real_distribution<double> p(0.0, 1.0);
    // Oracle: total index sum must be even — arbitrary, deterministic,
    // non-monotone, exercising both padding and rejection paths.
    const CoverOracle parity = [](std::span<const std::size_t> chosen) {
        std::size_t sum = 0;
        for (const std::size_t s : chosen) sum += s;
        return sum % 2 == 0;
    };
    for (int trial = 0; trial < 25; ++trial) {
        SetCoverInstance inst;
        inst.element_count = 1 + (trial % 7);
        inst.sets.resize(2 + (trial % 9));
        for (auto& s : inst.sets) {
            for (std::size_t e = 0; e < inst.element_count; ++e) {
                if (p(rng) < 0.4) s.push_back(e);
            }
        }
        const std::size_t brute = brute_force_min_cover(inst, parity);
        const auto r = solve_set_cover_bnb(inst, parity);
        if (brute == SIZE_MAX) {
            EXPECT_FALSE(r.feasible) << "trial " << trial;
        } else {
            ASSERT_TRUE(r.feasible) << "trial " << trial;
            EXPECT_EQ(r.chosen.size(), brute) << "trial " << trial;
            EXPECT_TRUE(covers_all(inst, r.chosen));
            EXPECT_TRUE(parity(r.chosen));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnBRandomProperty,
                         ::testing::Values(5, 17, 29, 43, 59));

}  // namespace
}  // namespace sag::opt
