#include <random>

#include <gtest/gtest.h>

#include "sag/opt/hitting_set.h"

namespace sag::opt {
namespace {

using geom::Circle;
using geom::Vec2;

bool hits_all(std::span<const Circle> disks, std::span<const Vec2> points) {
    for (const Circle& d : disks) {
        bool hit = false;
        for (const Vec2& p : points) {
            if (d.contains(p, 1e-6)) hit = true;
        }
        if (!hit) return false;
    }
    return true;
}

TEST(CandidatesTest, IncludeCentersAndIntersections) {
    const Circle disks[] = {{{0, 0}, 5.0}, {{6, 0}, 5.0}};
    const auto cands = disk_hitting_candidates(disks);
    // 2 centers + 2 intersection points.
    EXPECT_EQ(cands.size(), 4u);
}

TEST(CandidatesTest, DeduplicatesCoincidentPoints) {
    // Two identical disks: centers coincide, no boundary intersections.
    const Circle disks[] = {{{1, 1}, 3.0}, {{1, 1}, 3.0}};
    const auto cands = disk_hitting_candidates(disks);
    EXPECT_EQ(cands.size(), 1u);
}

TEST(HittingSetTest, EmptyInputEmptyOutput) {
    EXPECT_TRUE(geometric_hitting_set({}).empty());
}

TEST(HittingSetTest, SingleDiskSinglePoint) {
    const Circle disks[] = {{{4, 2}, 3.0}};
    const auto pts = geometric_hitting_set(disks);
    ASSERT_EQ(pts.size(), 1u);
    EXPECT_TRUE(disks[0].contains(pts[0], 1e-6));
}

TEST(HittingSetTest, TwoOverlappingDisksOnePoint) {
    const Circle disks[] = {{{0, 0}, 5.0}, {{6, 0}, 5.0}};
    const auto pts = geometric_hitting_set(disks);
    EXPECT_EQ(pts.size(), 1u);
    EXPECT_TRUE(hits_all(disks, pts));
}

TEST(HittingSetTest, TwoDisjointDisksTwoPoints) {
    const Circle disks[] = {{{0, 0}, 2.0}, {{100, 0}, 2.0}};
    const auto pts = geometric_hitting_set(disks);
    EXPECT_EQ(pts.size(), 2u);
    EXPECT_TRUE(hits_all(disks, pts));
}

TEST(HittingSetTest, CliqueOfDisksSharingCommonAreaOnePoint) {
    // Four disks all containing the origin.
    const Circle disks[] = {
        {{3, 0}, 4.0}, {{-3, 0}, 4.0}, {{0, 3}, 4.0}, {{0, -3}, 4.0}};
    const auto pts = geometric_hitting_set(disks);
    EXPECT_EQ(pts.size(), 1u);
    EXPECT_TRUE(hits_all(disks, pts));
}

TEST(HittingSetTest, ChainNeedsEverySecondPoint) {
    // Disks in a line, consecutive ones overlapping: optimal hits pairs.
    std::vector<Circle> disks;
    for (int i = 0; i < 6; ++i) {
        disks.push_back({{static_cast<double>(12 * i), 0.0}, 7.0});
    }
    const auto pts = geometric_hitting_set(disks);
    EXPECT_EQ(pts.size(), 3u);  // one per overlapping pair
    EXPECT_TRUE(hits_all(disks, pts));
}

TEST(HittingSetTest, LocalSearchImprovesOnGreedyTriangle) {
    // Three disks pairwise overlapping with a common core: 1 point enough.
    const Circle disks[] = {{{0, 0}, 3.0}, {{4, 0}, 3.0}, {{2, 3}, 3.0}};
    HittingSetOptions opts;
    opts.max_swap = 3;
    const auto pts = geometric_hitting_set(disks, opts);
    EXPECT_EQ(pts.size(), 1u);
}

TEST(HittingSetTest, SwapDisabledStillHitsAll) {
    std::mt19937_64 rng(5);
    std::uniform_real_distribution<double> coord(-80.0, 80.0);
    std::vector<Circle> disks;
    for (int i = 0; i < 15; ++i) disks.push_back({{coord(rng), coord(rng)}, 20.0});
    HittingSetOptions opts;
    opts.max_swap = 1;  // prune-only local search
    const auto pts = geometric_hitting_set(disks, opts);
    EXPECT_TRUE(hits_all(disks, pts));
}

/// Property sweep over seeds and swap depth: result always hits all disks,
/// never exceeds the disk count, and deeper swaps never do worse.
class HittingSetProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(HittingSetProperty, HitsAllAndBoundedSize) {
    const auto [seed, n_disks] = GetParam();
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> coord(-200.0, 200.0);
    std::uniform_real_distribution<double> radius(30.0, 40.0);
    std::vector<Circle> disks;
    for (int i = 0; i < n_disks; ++i) {
        disks.push_back({{coord(rng), coord(rng)}, radius(rng)});
    }
    HittingSetOptions shallow, deep;
    shallow.max_swap = 1;
    deep.max_swap = 3;
    const auto pts1 = geometric_hitting_set(disks, shallow);
    const auto pts3 = geometric_hitting_set(disks, deep);
    EXPECT_TRUE(hits_all(disks, pts1));
    EXPECT_TRUE(hits_all(disks, pts3));
    EXPECT_LE(pts1.size(), disks.size());
    EXPECT_LE(pts3.size(), pts1.size());  // deeper search is never worse
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSizes, HittingSetProperty,
    ::testing::Combine(::testing::Values(1, 12, 123, 1234),
                       ::testing::Values(5, 12, 25)));

}  // namespace
}  // namespace sag::opt
