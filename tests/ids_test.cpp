// sag::ids behavioural tests: sentinel semantics, ordering, hashing,
// IdVec/IdSpan container contracts (including the debug bounds checks),
// and a randomized equivalence property showing the typed-ID solver
// surfaces are a pure re-labelling of the raw-index ones.
#include <cstdint>
#include <set>
#include <sstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "sag/core/feasibility.h"
#include "sag/core/samc.h"
#include "sag/core/ucra.h"
#include "sag/ids/ids.h"
#include "sag/sim/scenario_gen.h"

namespace sag::core {
namespace {

using ids::BsId;
using ids::CandId;
using ids::IdSpan;
using ids::IdVec;
using ids::RsId;
using ids::SsId;
using ids::ZoneId;

TEST(EntityIdTest, DefaultConstructedIsInvalidSentinel) {
    EXPECT_FALSE(SsId{}.valid());
    EXPECT_EQ(SsId{}, SsId::invalid());
    EXPECT_FALSE(RsId::invalid().valid());
    EXPECT_TRUE(RsId{0}.valid());
    EXPECT_TRUE(RsId{123}.valid());
}

TEST(EntityIdTest, OrderingAndIncrementFollowTheUnderlyingIndex) {
    EXPECT_LT(SsId{1}, SsId{2});
    EXPECT_GE(SsId{5}, SsId{5});
    SsId i{7};
    EXPECT_EQ(++i, SsId{8});
    EXPECT_EQ(--i, SsId{7});
    EXPECT_EQ(i.index(), 7u);
}

TEST(EntityIdTest, HashMatchesValueAndWorksInUnorderedSet) {
    EXPECT_EQ(std::hash<RsId>{}(RsId{42}),
              std::hash<std::uint32_t>{}(std::uint32_t{42}));
    std::unordered_set<SsId> seen;
    seen.insert(SsId{1});
    seen.insert(SsId{2});
    seen.insert(SsId{1});  // duplicate
    EXPECT_EQ(seen.size(), 2u);
    EXPECT_TRUE(seen.contains(SsId{2}));
    EXPECT_FALSE(seen.contains(SsId{3}));
}

TEST(EntityIdTest, StreamInsertionPrintsIndexOrSentinel) {
    std::ostringstream os;
    os << ZoneId{4} << " " << ZoneId::invalid();
    EXPECT_EQ(os.str(), "4 invalid");
}

TEST(IdRangeTest, FirstIdsEnumeratesInOrder) {
    std::vector<CandId> got;
    for (const CandId c : ids::first_ids<CandId>(3)) got.push_back(c);
    EXPECT_EQ(got, (std::vector<CandId>{CandId{0}, CandId{1}, CandId{2}}));
    EXPECT_EQ(ids::all_ids<BsId>(2), (std::vector<BsId>{BsId{0}, BsId{1}}));
    EXPECT_TRUE(ids::all_ids<BsId>(0).empty());
}

TEST(IdVecTest, PushBackReturnsTheNewId) {
    IdVec<RsId, double> powers;
    EXPECT_EQ(powers.push_back(1.5), RsId{0});
    EXPECT_EQ(powers.push_back(2.5), RsId{1});
    EXPECT_EQ(powers[RsId{1}], 2.5);
    EXPECT_EQ(powers.size(), 2u);
}

TEST(IdVecTest, RawRoundTripPreservesOrder) {
    IdVec<SsId, int> v{10, 20, 30};
    EXPECT_EQ(v.raw(), (std::vector<int>{10, 20, 30}));
    const IdVec<SsId, int> adopted{std::vector<int>{10, 20, 30}};
    EXPECT_EQ(v, adopted);
}

TEST(IdSpanTest, ViewsTheVectorWithoutCopying) {
    IdVec<SsId, RsId> serving(3, RsId{0});
    IdSpan<SsId, RsId> view = serving;
    view[SsId{2}] = RsId{9};
    EXPECT_EQ(serving[SsId{2}], RsId{9});
    const IdSpan<SsId, const RsId> cview = serving;
    EXPECT_EQ(cview.size(), 3u);
    EXPECT_EQ(cview[SsId{2}], RsId{9});
}

// The debug bounds contract: out-of-range typed access (including the
// invalid() sentinel) asserts in !NDEBUG builds. Release builds compile
// the check away, so the death expectation only runs when asserts live.
TEST(IdVecDeathTest, OutOfRangeAccessAssertsInDebug) {
#ifdef NDEBUG
    GTEST_SKIP() << "asserts compiled out (NDEBUG)";
#else
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    IdVec<SsId, int> v(2, 0);
    EXPECT_DEATH((void)v[SsId{2}], "IdVec index out of range");
    EXPECT_DEATH((void)v[SsId::invalid()], "IdVec index out of range");
    IdSpan<SsId, int> view = v;
    EXPECT_DEATH((void)view[SsId{5}], "IdSpan index out of range");
#endif
}

/// Equivalence property: the typed SAMC -> MBMC pipeline is a pure
/// re-labelling of raw indices — every typed surface (assignment IdVec,
/// zone membership, per-RS groupings) must agree bit-for-bit with its
/// .raw()/.index() view, and a second run must reproduce the first
/// exactly (the refactor introduced no iteration-order or sentinel
/// drift).
TEST(IdEquivalenceTest, SamcMbmcTypedSurfacesMatchRawViews) {
    for (const unsigned seed : {3u, 19u, 57u}) {
        sim::GeneratorConfig cfg;
        cfg.field_side = 500.0;
        cfg.subscriber_count = 24;
        cfg.base_station_count = 2;
        const Scenario s = sim::generate_scenario(cfg, seed);

        const auto a = solve_samc(s);
        const auto b = solve_samc(s);
        ASSERT_TRUE(a.plan.feasible) << "seed " << seed;
        EXPECT_EQ(a.plan.assignment, b.plan.assignment) << "seed " << seed;
        EXPECT_EQ(a.plan.rs_positions, b.plan.rs_positions) << "seed " << seed;

        // Typed indexing == raw indexing, element for element.
        const std::vector<RsId>& raw_assign = a.plan.assignment.raw();
        ASSERT_EQ(raw_assign.size(), s.subscriber_count());
        for (const SsId j : s.ss_ids()) {
            EXPECT_EQ(a.plan.assignment[j], raw_assign[j.index()]);
            EXPECT_EQ(a.plan.rs_position(a.plan.assignment[j]),
                      a.plan.rs_positions[a.plan.assignment[j].index()]);
        }

        // Zones partition the subscriber set exactly once.
        std::set<SsId> seen;
        for (const ZoneId z : a.zones.ids()) {
            for (const SsId j : a.zones[z]) {
                EXPECT_TRUE(seen.insert(j).second) << "seed " << seed;
            }
        }
        EXPECT_EQ(seen.size(), s.subscriber_count());

        // served_by() inverts the assignment map.
        for (const RsId i : a.plan.rs_ids()) {
            for (const SsId j : a.plan.served_by(i)) {
                EXPECT_EQ(a.plan.assignment[j], i);
            }
        }

        // Downstream MBMC consumes the typed plan and stays deterministic
        // and verifiable end-to-end.
        const auto mbmc_a = solve_mbmc(s, a.plan);
        const auto mbmc_b = solve_mbmc(s, b.plan);
        ASSERT_TRUE(mbmc_a.feasible) << "seed " << seed;
        EXPECT_EQ(mbmc_a.positions, mbmc_b.positions);
        EXPECT_EQ(mbmc_a.parent, mbmc_b.parent);
        EXPECT_TRUE(verify_connectivity(s, a.plan, mbmc_a).feasible);
    }
}

}  // namespace
}  // namespace sag::core
