#include <cmath>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "sag/units/units.h"
#include "sag/wireless/link.h"
#include "sag/wireless/radio_params.h"
#include "sag/wireless/two_ray.h"

namespace sag::wireless {
namespace {

using units::Decibel;
using units::Meters;
using units::SnrRatio;
using units::Watt;

TEST(UnitsTest, KnownDbConversions) {
    EXPECT_DOUBLE_EQ(units::from_db(Decibel{0.0}).ratio(), 1.0);
    EXPECT_DOUBLE_EQ(units::from_db(Decibel{10.0}).ratio(), 10.0);
    EXPECT_DOUBLE_EQ(units::from_db(Decibel{-10.0}).ratio(), 0.1);
    EXPECT_NEAR(units::from_db(Decibel{-15.0}).ratio(), 0.0316227766, 1e-9);
    EXPECT_DOUBLE_EQ(units::to_db(SnrRatio{100.0}).db(), 20.0);
}

TEST(UnitsTest, RoundTrip) {
    for (double db = -40.0; db <= 40.0; db += 3.7) {
        EXPECT_NEAR(units::to_db(units::from_db(Decibel{db})).db(), db, 1e-9);
    }
}

TEST(RadioParamsTest, CombinedGainMatchesTwoRayFormula) {
    RadioParams p;
    p.tx_gain = 2.0;
    p.rx_gain = 3.0;
    p.tx_height = Meters{1.5};
    p.rx_height = Meters{2.0};
    EXPECT_DOUBLE_EQ(p.combined_gain(), 2.0 * 3.0 * 1.5 * 1.5 * 2.0 * 2.0);
}

TEST(RadioParamsTest, DefaultsValidate) {
    EXPECT_NO_THROW(RadioParams{}.validate());
}

TEST(RadioParamsTest, RejectsNonPhysicalValues) {
    RadioParams p;
    p.alpha = 0.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.max_power = Watt{0.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.noise_floor = Watt{-1.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.reference_distance = Meters{0.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.rx_height = Meters{-2.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(RadioParamsTest, RejectsAmbientNoiseBelowFloorOrAboveMax) {
    // A positive ambient-noise level below the receiver noise floor is a
    // units slip (e.g. milliwatts written where watts were meant).
    RadioParams p;
    p.snr_ambient_noise = Watt{p.noise_floor.watts() / 2.0};
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.snr_ambient_noise = p.max_power;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.snr_ambient_noise = Watt{0.0};  // "no ambient noise" stays legal
    EXPECT_NO_THROW(p.validate());
}

TEST(TwoRayTest, ReceivedPowerMatchesEquation21) {
    RadioParams p;  // G = 5.0625, alpha = 3
    const Watt pr = received_power(p, Watt{50.0}, Meters{40.0});
    EXPECT_NEAR(pr.watts(), 50.0 * 5.0625 / (40.0 * 40.0 * 40.0), 1e-12);
}

TEST(TwoRayTest, PowerDecreasesWithDistance) {
    RadioParams p;
    double prev = std::numeric_limits<double>::infinity();
    for (double d = 2.0; d <= 200.0; d *= 1.7) {
        const Watt pr = received_power(p, Watt{10.0}, Meters{d});
        EXPECT_LT(pr.watts(), prev);
        prev = pr.watts();
    }
}

TEST(TwoRayTest, DistanceClampedAtReferenceDistance) {
    RadioParams p;
    // Below the reference distance the model saturates instead of diverging.
    EXPECT_EQ(received_power(p, Watt{10.0}, Meters{0.0}),
              received_power(p, Watt{10.0}, Meters{1.0}));
    EXPECT_EQ(received_power(p, Watt{10.0}, Meters{0.5}),
              received_power(p, Watt{10.0}, Meters{1.0}));
}

TEST(TwoRayTest, TxPowerForInvertsReceivedPower) {
    RadioParams p;
    for (double d : {5.0, 33.3, 140.0}) {
        const Watt target{1e-4};
        const Watt pt = tx_power_for(p, target, Meters{d});
        EXPECT_NEAR(received_power(p, pt, Meters{d}).watts(), target.watts(), 1e-12);
    }
}

TEST(TwoRayTest, RangeForInvertsReceivedPower) {
    RadioParams p;
    const Watt pr{1e-4};
    const Meters d = range_for(p, p.max_power, pr);
    EXPECT_NEAR(received_power(p, p.max_power, d).watts(), pr.watts(), 1e-12);
}

TEST(TwoRayTest, IgnorableNoiseDistanceDefinition) {
    RadioParams p;
    const Meters dmax = ignorable_noise_distance(p);
    // At dmax a max-power transmitter delivers exactly N_max.
    EXPECT_NEAR(received_power(p, p.max_power, dmax).watts(),
                p.ignorable_noise.watts(), 1e-12);
}

TEST(TwoRayTest, AlphaControlsDecayRate) {
    RadioParams fast, slow;
    fast.alpha = 4.0;
    slow.alpha = 2.0;
    // Same at the reference distance, steeper decay for larger alpha.
    EXPECT_GT(received_power(slow, Watt{10.0}, Meters{50.0}),
              received_power(fast, Watt{10.0}, Meters{50.0}));
}

TEST(LinkTest, ShannonCapacityAndInverse) {
    RadioParams p;
    const Watt rx{3.2e-5};
    const double c = shannon_capacity(p, rx);
    EXPECT_GT(c, 0.0);
    EXPECT_NEAR(min_rx_power_for_rate(p, c).watts(), rx.watts(), 1e-12);
}

TEST(LinkTest, CapacityMonotoneInPower) {
    RadioParams p;
    EXPECT_LT(shannon_capacity(p, Watt{1e-6}), shannon_capacity(p, Watt{1e-5}));
    EXPECT_DOUBLE_EQ(shannon_capacity(p, Watt{0.0}), 0.0);
}

TEST(LinkTest, RateOverDistanceDecreases) {
    RadioParams p;
    EXPECT_GT(rate_over_distance(p, Watt{50.0}, Meters{30.0}),
              rate_over_distance(p, Watt{50.0}, Meters{40.0}));
}

TEST(LinkTest, TotalReceivedPowerSumsContributions) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, Watt{10.0}}, {{30.0, 0.0}, Watt{20.0}}};
    const geom::Vec2 rx{10.0, 0.0};
    const Watt expected = received_power(p, Watt{10.0}, Meters{10.0}) +
                          received_power(p, Watt{20.0}, Meters{20.0});
    EXPECT_NEAR(total_received_power(p, txs, rx).watts(), expected.watts(), 1e-12);
}

TEST(LinkTest, InterferenceSnrMatchesDefinition2) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, Watt{10.0}}, {{30.0, 0.0}, Watt{20.0}}};
    const geom::Vec2 rx{10.0, 0.0};
    const SnrRatio s0 = received_power(p, Watt{10.0}, Meters{10.0}) /
                        received_power(p, Watt{20.0}, Meters{20.0});
    EXPECT_NEAR(interference_snr(p, txs, 0, rx).ratio(), s0.ratio(), 1e-12);
    EXPECT_NEAR(interference_snr(p, txs, 1, rx).ratio(), 1.0 / s0.ratio(), 1e-12);
}

TEST(LinkTest, SingleTransmitterSnrIsInfinite) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, Watt{10.0}}};
    EXPECT_TRUE(std::isinf(interference_snr(p, txs, 0, {5.0, 0.0}).ratio()));
}

TEST(LinkTest, ExtraNoiseLowersSnr) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, Watt{10.0}}, {{30.0, 0.0}, Watt{20.0}}};
    const geom::Vec2 rx{10.0, 0.0};
    EXPECT_LT(interference_snr(p, txs, 0, rx, Watt{1e-5}),
              interference_snr(p, txs, 0, rx, Watt{0.0}));
}

/// Property: at a fixed receiver, SNR is increasing in the serving power
/// and decreasing in any interferer's power.
class SnrMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(SnrMonotoneProperty, MonotoneInPowers) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> coord(-100.0, 100.0);
    std::uniform_real_distribution<double> power(1.0, 50.0);
    RadioParams p;
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<Transmitter> txs;
        for (int i = 0; i < 4; ++i) {
            txs.push_back({{coord(rng), coord(rng)}, Watt{power(rng)}});
        }
        const geom::Vec2 rx{coord(rng), coord(rng)};
        const SnrRatio base = interference_snr(p, txs, 0, rx);

        auto boosted = txs;
        boosted[0].power = boosted[0].power * 2.0;
        EXPECT_GT(interference_snr(p, boosted, 0, rx), base) << "trial " << trial;

        auto noisier = txs;
        noisier[2].power = noisier[2].power * 2.0;
        EXPECT_LT(interference_snr(p, noisier, 0, rx), base) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnrMonotoneProperty, ::testing::Values(3, 7, 13));

}  // namespace
}  // namespace sag::wireless
