#include <cmath>
#include <limits>
#include <random>

#include <gtest/gtest.h>

#include "sag/wireless/link.h"
#include "sag/wireless/radio_params.h"
#include "sag/wireless/two_ray.h"
#include "sag/wireless/units.h"

namespace sag::wireless {
namespace {

TEST(UnitsTest, KnownDbConversions) {
    EXPECT_DOUBLE_EQ(db_to_linear(0.0), 1.0);
    EXPECT_DOUBLE_EQ(db_to_linear(10.0), 10.0);
    EXPECT_DOUBLE_EQ(db_to_linear(-10.0), 0.1);
    EXPECT_NEAR(db_to_linear(-15.0), 0.0316227766, 1e-9);
    EXPECT_DOUBLE_EQ(linear_to_db(100.0), 20.0);
}

TEST(UnitsTest, RoundTrip) {
    for (double db = -40.0; db <= 40.0; db += 3.7) {
        EXPECT_NEAR(linear_to_db(db_to_linear(db)), db, 1e-9);
    }
}

TEST(RadioParamsTest, CombinedGainMatchesTwoRayFormula) {
    RadioParams p;
    p.tx_gain = 2.0;
    p.rx_gain = 3.0;
    p.tx_height = 1.5;
    p.rx_height = 2.0;
    EXPECT_DOUBLE_EQ(p.combined_gain(), 2.0 * 3.0 * 1.5 * 1.5 * 2.0 * 2.0);
}

TEST(RadioParamsTest, DefaultsValidate) {
    EXPECT_NO_THROW(RadioParams{}.validate());
}

TEST(RadioParamsTest, RejectsNonPhysicalValues) {
    RadioParams p;
    p.alpha = 0.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.max_power = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.noise_floor = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.reference_distance = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = {};
    p.rx_height = -2.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(TwoRayTest, ReceivedPowerMatchesEquation21) {
    RadioParams p;  // G = 5.0625, alpha = 3
    const double pr = received_power(p, 50.0, 40.0);
    EXPECT_NEAR(pr, 50.0 * 5.0625 / (40.0 * 40.0 * 40.0), 1e-12);
}

TEST(TwoRayTest, PowerDecreasesWithDistance) {
    RadioParams p;
    double prev = std::numeric_limits<double>::infinity();
    for (double d = 2.0; d <= 200.0; d *= 1.7) {
        const double pr = received_power(p, 10.0, d);
        EXPECT_LT(pr, prev);
        prev = pr;
    }
}

TEST(TwoRayTest, DistanceClampedAtReferenceDistance) {
    RadioParams p;
    // Below the reference distance the model saturates instead of diverging.
    EXPECT_DOUBLE_EQ(received_power(p, 10.0, 0.0), received_power(p, 10.0, 1.0));
    EXPECT_DOUBLE_EQ(received_power(p, 10.0, 0.5), received_power(p, 10.0, 1.0));
}

TEST(TwoRayTest, TxPowerForInvertsReceivedPower) {
    RadioParams p;
    for (double d : {5.0, 33.3, 140.0}) {
        const double target = 1e-4;
        const double pt = tx_power_for(p, target, d);
        EXPECT_NEAR(received_power(p, pt, d), target, 1e-12);
    }
}

TEST(TwoRayTest, RangeForInvertsReceivedPower) {
    RadioParams p;
    const double pr = 1e-4;
    const double d = range_for(p, p.max_power, pr);
    EXPECT_NEAR(received_power(p, p.max_power, d), pr, 1e-12);
}

TEST(TwoRayTest, IgnorableNoiseDistanceDefinition) {
    RadioParams p;
    const double dmax = ignorable_noise_distance(p);
    // At dmax a max-power transmitter delivers exactly N_max.
    EXPECT_NEAR(received_power(p, p.max_power, dmax), p.ignorable_noise, 1e-12);
}

TEST(TwoRayTest, AlphaControlsDecayRate) {
    RadioParams fast, slow;
    fast.alpha = 4.0;
    slow.alpha = 2.0;
    // Same at the reference distance, steeper decay for larger alpha.
    EXPECT_GT(received_power(slow, 10.0, 50.0), received_power(fast, 10.0, 50.0));
}

TEST(LinkTest, ShannonCapacityAndInverse) {
    RadioParams p;
    const double rx = 3.2e-5;
    const double c = shannon_capacity(p, rx);
    EXPECT_GT(c, 0.0);
    EXPECT_NEAR(min_rx_power_for_rate(p, c), rx, 1e-12);
}

TEST(LinkTest, CapacityMonotoneInPower) {
    RadioParams p;
    EXPECT_LT(shannon_capacity(p, 1e-6), shannon_capacity(p, 1e-5));
    EXPECT_DOUBLE_EQ(shannon_capacity(p, 0.0), 0.0);
}

TEST(LinkTest, RateOverDistanceDecreases) {
    RadioParams p;
    EXPECT_GT(rate_over_distance(p, 50.0, 30.0), rate_over_distance(p, 50.0, 40.0));
}

TEST(LinkTest, TotalReceivedPowerSumsContributions) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, 10.0}, {{30.0, 0.0}, 20.0}};
    const geom::Vec2 rx{10.0, 0.0};
    const double expected = received_power(p, 10.0, 10.0) + received_power(p, 20.0, 20.0);
    EXPECT_NEAR(total_received_power(p, txs, rx), expected, 1e-12);
}

TEST(LinkTest, InterferenceSnrMatchesDefinition2) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, 10.0}, {{30.0, 0.0}, 20.0}};
    const geom::Vec2 rx{10.0, 0.0};
    const double s0 = received_power(p, 10.0, 10.0);
    const double s1 = received_power(p, 20.0, 20.0);
    EXPECT_NEAR(interference_snr(p, txs, 0, rx), s0 / s1, 1e-12);
    EXPECT_NEAR(interference_snr(p, txs, 1, rx), s1 / s0, 1e-12);
}

TEST(LinkTest, SingleTransmitterSnrIsInfinite) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, 10.0}};
    EXPECT_TRUE(std::isinf(interference_snr(p, txs, 0, {5.0, 0.0})));
}

TEST(LinkTest, ExtraNoiseLowersSnr) {
    RadioParams p;
    const Transmitter txs[] = {{{0.0, 0.0}, 10.0}, {{30.0, 0.0}, 20.0}};
    const geom::Vec2 rx{10.0, 0.0};
    EXPECT_LT(interference_snr(p, txs, 0, rx, 1e-5),
              interference_snr(p, txs, 0, rx, 0.0));
}

/// Property: at a fixed receiver, SNR is increasing in the serving power
/// and decreasing in any interferer's power.
class SnrMonotoneProperty : public ::testing::TestWithParam<int> {};

TEST_P(SnrMonotoneProperty, MonotoneInPowers) {
    std::mt19937_64 rng(GetParam());
    std::uniform_real_distribution<double> coord(-100.0, 100.0);
    std::uniform_real_distribution<double> power(1.0, 50.0);
    RadioParams p;
    for (int trial = 0; trial < 60; ++trial) {
        std::vector<Transmitter> txs;
        for (int i = 0; i < 4; ++i) {
            txs.push_back({{coord(rng), coord(rng)}, power(rng)});
        }
        const geom::Vec2 rx{coord(rng), coord(rng)};
        const double base = interference_snr(p, txs, 0, rx);

        auto boosted = txs;
        boosted[0].power *= 2.0;
        EXPECT_GT(interference_snr(p, boosted, 0, rx), base) << "trial " << trial;

        auto noisier = txs;
        noisier[2].power *= 2.0;
        EXPECT_LT(interference_snr(p, noisier, 0, rx), base) << "trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnrMonotoneProperty, ::testing::Values(3, 7, 13));

}  // namespace
}  // namespace sag::wireless
